// Ablation: batched kernel-row fetch. The SMO prefetch pipeline,
// batch_predict and cross-validation all fetch kernel rows through
// RowKernelSource::compute_rows, which streams the data matrix once per
// block of B right-hand sides (multiply_dense_batch) instead of once per
// row. This bench measures the per-row win of that batching against the
// per-row compute_row loop, per format and per batch size.
//
// The win is pure memory-traffic amortisation: gather/scatter and the
// kernel map cost the same on both paths, but the matrix (values + index
// structures) is read B times less often. Formats that stream the most
// bytes per row (DEN, ELL, DIA, BCSR) gain the most.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/csv.hpp"
#include "data/profiles.hpp"
#include "svm/kernel_engine.hpp"

namespace {

using namespace ls;

/// Per-row seconds for fetching `rows` kernel rows through the batched
/// entry point (one multiply_dense_batch per block of kMaxSmsvBatch).
double batched_row_seconds(FormatKernelEngine& engine,
                           std::span<const index_t> rows,
                           std::vector<real_t>& out) {
  const double secs =
      time_best([&] { engine.compute_rows(rows, out); }, 3, 0.002);
  return secs / static_cast<double>(rows.size());
}

/// Per-row seconds for the pre-batching baseline: one compute_row call
/// (gather + scatter + single-rhs SMSV + kernel map) per requested row.
double loop_row_seconds(FormatKernelEngine& engine,
                        std::span<const index_t> rows,
                        std::vector<real_t>& out) {
  const auto n = static_cast<std::size_t>(engine.num_rows());
  const double secs = time_best(
      [&] {
        for (std::size_t k = 0; k < rows.size(); ++k) {
          engine.compute_row(rows[k],
                             std::span<real_t>(out.data() + k * n, n));
        }
      },
      3, 0.002);
  return secs / static_cast<double>(rows.size());
}

}  // namespace

int main() {
  bench::banner("Ablation: batched kernel rows",
                "compute_rows (blocked SpMM) vs per-row compute_row loop");

  const std::vector<index_t> batch_sizes = {2, 4, 8, 16, 32};
  KernelParams kernel;
  kernel.type = KernelType::kLinear;  // keeps the (shared) map cost minimal

  Table table({"Dataset", "Format", "B", "us/row (loop)", "us/row (batch)",
               "speedup"});
  CsvWriter csv(bench::csv_path("ablation_batch_rows"),
                {"dataset", "format", "batch_rows", "seconds_per_row_loop",
                 "seconds_per_row_batched", "speedup"});

  // One profile per structure class: sparse rows, dense, banded.
  for (const char* name : {"adult", "mnist", "trefethen"}) {
    const Dataset ds = profile_by_name(name).generate();
    Rng rng(0xBA7C4ull);

    for (Format f : kExtendedFormats) {
      const AnyMatrix mat = AnyMatrix::from_coo(ds.X, f);
      FormatKernelEngine engine(mat, kernel);
      const auto n = static_cast<std::size_t>(engine.num_rows());

      for (index_t b : batch_sizes) {
        std::vector<index_t> rows(static_cast<std::size_t>(b));
        for (index_t& r : rows) r = rng.uniform_int(0, ds.rows() - 1);
        std::vector<real_t> out(static_cast<std::size_t>(b) * n);

        const double batched = batched_row_seconds(engine, rows, out);
        const double loop = loop_row_seconds(engine, rows, out);
        const double speedup = batched > 0 ? loop / batched : 0.0;

        table.add_row({name, std::string(format_name(f)), std::to_string(b),
                       fmt_double(loop * 1e6, 2),
                       fmt_double(batched * 1e6, 2),
                       bench::speedup_cell(speedup, speedup >= 1.5)});
        csv.write_row({name, std::string(format_name(f)), std::to_string(b),
                       fmt_double(loop, 9), fmt_double(batched, 9),
                       fmt_double(speedup, 3)});
      }
    }
  }
  std::printf("%s\n", table.str().c_str());
  std::printf(
      "Batching streams the matrix once per B rows instead of once per "
      "row;\nformats with the highest bytes/row (DEN, ELL, DIA, BCSR) gain "
      "the most.\n'*' marks >= 1.5x.\n");
  bench::finish(csv, "ablation_batch_rows");
  return 0;
}
