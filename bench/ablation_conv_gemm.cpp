// Ablation: GEMM-lowered convolution vs naive loops, and throughput vs
// batch size — the real-code counterpart of Section IV-C's argument that
// "a larger batch size means the BLAS functions can process a larger
// matrix [which] often can improve the processors' throughput".
#include <cstdio>

#include "bench_common.hpp"
#include "common/csv.hpp"
#include "dnn/conv_gemm.hpp"

int main() {
  using namespace ls;
  bench::banner("Ablation: conv lowering",
                "naive convolution vs im2col+GEMM, throughput vs batch");

  Rng rng(0xC0701);
  Conv2d naive(3, 16, 5, 2, rng);
  Rng rng2(0xC0701);
  Conv2dGemm gemm(3, 16, 5, 2, rng2);

  Table table({"Batch", "naive samples/s", "gemm samples/s", "gemm speedup"});
  CsvWriter csv(bench::csv_path("ablation_conv_gemm"),
                {"batch", "naive_sps", "gemm_sps", "speedup"});

  Rng data_rng(0xC0702);
  for (index_t batch : {1, 2, 4, 8, 16, 32}) {
    Tensor in(batch, 3, 16, 16);
    for (index_t i = 0; i < in.size(); ++i) {
      in[i] = data_rng.uniform(-1.0, 1.0);
    }
    Tensor out_a = naive.make_output(in);
    Tensor out_b = gemm.make_output(in);

    const double t_naive =
        time_best([&] { naive.forward(in, out_a); }, 3, 0.02);
    const double t_gemm = time_best([&] { gemm.forward(in, out_b); }, 3, 0.02);
    const double sps_naive = static_cast<double>(batch) / t_naive;
    const double sps_gemm = static_cast<double>(batch) / t_gemm;

    table.add_row({std::to_string(batch), fmt_double(sps_naive, 0),
                   fmt_double(sps_gemm, 0),
                   fmt_speedup(t_naive / t_gemm)});
    csv.write_row({std::to_string(batch), fmt_double(sps_naive, 1),
                   fmt_double(sps_gemm, 1), fmt_double(t_naive / t_gemm, 3)});
  }
  std::printf("%s\n", table.str().c_str());
  std::printf("Both implementations compute identical outputs (asserted in "
              "the test suite);\nthe GEMM lowering restructures the same "
              "flops into long unit-stride streams.\nPer-sample throughput "
              "improving (or holding) with batch size is the effect the\n"
              "paper's batch-size tuning (Section IV-C) exploits at GPU "
              "scale.\n");
  bench::finish(csv, "ablation_conv_gemm");
  return 0;
}
