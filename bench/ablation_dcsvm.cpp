// Ablation: divide-and-conquer SVM scaling — the CA-SVM combination the
// paper's related-work section proposes, swept over partition counts.
// Reports the simulated-cluster critical path (max per-node time), the
// per-partition layouts, and the accuracy cost of localisation.
#include <cstdio>

#include "bench_common.hpp"
#include "common/csv.hpp"
#include "data/profiles.hpp"
#include "svm/dcsvm.hpp"

int main() {
  using namespace ls;
  bench::banner("Ablation: DC-SVM scaling",
                "divide-and-conquer SVM with per-partition layouts");

  const Dataset full = profile_by_name("adult").generate();
  const auto [train, test] = full.split(0.8);

  SvmParams params;
  params.c = 1.0;
  params.tolerance = 1e-2;
  params.max_iterations = 4000;

  // Baseline: one machine, whole dataset.
  SchedulerOptions sched;
  sched.policy = SchedulePolicy::kEmpirical;
  const TrainResult whole = train_adaptive(train, params, sched);
  const double whole_acc = whole.model.accuracy(test);
  std::printf("monolithic baseline: %.3f s train, %.3f test accuracy\n\n",
              whole.solve_seconds, whole_acc);

  Table table({"P", "strategy", "serial (s)", "critical path (s)",
               "parallel speedup", "test acc", "acc delta", "layouts"});
  CsvWriter csv(bench::csv_path("ablation_dcsvm"),
                {"partitions", "strategy", "serial_seconds",
                 "critical_seconds", "speedup", "accuracy"});

  for (PartitionStrategy strategy :
       {PartitionStrategy::kRandom, PartitionStrategy::kCluster}) {
    const char* tag =
        strategy == PartitionStrategy::kRandom ? "random" : "cluster";
    for (index_t p : {2, 4, 8}) {
      DcSvmOptions options;
      options.partitions = p;
      options.strategy = strategy;
      options.params = params;
      options.sched = sched;
      const DcSvmResult r = train_dc_svm(train, options);
      const double acc = r.model.accuracy(test);
      std::string layouts;
      for (Format f : r.partition_formats) {
        if (!layouts.empty()) layouts += "/";
        layouts += format_name(f);
      }
      const double speedup =
          r.total_seconds / std::max(1e-12, r.critical_seconds);
      table.add_row({std::to_string(p), tag,
                     fmt_seconds(r.total_seconds),
                     fmt_seconds(r.critical_seconds), fmt_speedup(speedup),
                     fmt_double(acc, 3), fmt_double(acc - whole_acc, 3),
                     layouts});
      csv.write_row({std::to_string(p), tag,
                     fmt_double(r.total_seconds, 6),
                     fmt_double(r.critical_seconds, 6),
                     fmt_double(speedup, 3), fmt_double(acc, 4)});
    }
  }
  std::printf("%s\n", table.str().c_str());
  std::printf("Divide-and-conquer trades a small accuracy delta for "
              "near-linear critical-path\nspeedup (SMO is superlinear in "
              "n, so P subproblems are cheaper than 1/P of the\nwhole); "
              "each partition gets its own layout decision — the CA-SVM "
              "integration\nthe paper proposes in Section VI.\n");
  bench::finish(csv, "ablation_dcsvm");
  return 0;
}
