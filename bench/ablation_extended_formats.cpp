// Ablation: do the derived formats (CSC, BCSR — Section III-A's "other
// storage formats") ever beat the basic five? Measures the SMSV cost of
// all seven formats on structures chosen to favour each candidate, and
// reports what the extended autotuner picks.
#include <cstdio>

#include "bench_common.hpp"
#include "common/csv.hpp"
#include "data/synthetic.hpp"
#include "sched/selector.hpp"

namespace {

using namespace ls;

/// Dense tile chain: 4x4 dense blocks along the diagonal (BCSR's regime).
CooMatrix make_block_chain(index_t blocks, Rng& rng) {
  std::vector<Triplet> t;
  for (index_t b = 0; b < blocks; ++b) {
    for (index_t r = 0; r < 4; ++r) {
      for (index_t c = 0; c < 4; ++c) {
        t.push_back({b * 4 + r, b * 4 + c, rng.uniform(0.1, 1.0)});
      }
    }
  }
  return CooMatrix(blocks * 4, blocks * 4, std::move(t));
}

/// Column-concentrated matrix: most nonzeros live in a few hot columns, so
/// a sparse right-hand side lets CSC skip nearly everything.
CooMatrix make_hot_columns(index_t m, index_t n, Rng& rng) {
  std::vector<Triplet> t;
  for (index_t i = 0; i < m; ++i) {
    for (index_t c = 0; c < 8; ++c) {
      t.push_back({i, c, rng.uniform(0.1, 1.0)});  // 8 hot columns
    }
    t.push_back({i, rng.uniform_int(8, n - 1), rng.uniform(0.1, 1.0)});
  }
  return CooMatrix(m, n, std::move(t));
}

}  // namespace

int main() {
  using namespace ls;
  bench::banner("Ablation: extended formats",
                "CSC and BCSR vs the paper's basic five");

  Rng rng(0xE87E);
  struct Workload {
    std::string name;
    CooMatrix coo;
  };
  std::vector<Workload> workloads;
  workloads.push_back({"block chain (4x4 tiles)", make_block_chain(512, rng)});
  workloads.push_back({"hot columns (8 of 2048)",
                       make_hot_columns(2048, 2048, rng)});
  {
    std::vector<index_t> lens(2048, 16);
    workloads.push_back({"scattered sparse",
                         make_random_sparse(2048, 1024, lens, rng)});
  }
  workloads.push_back({"banded (5 diagonals)",
                       make_banded(2048, 2048, {0, 1, -1, 2, -2}, 1.0, rng)});

  Table table({"Workload", "DEN", "CSR", "COO", "ELL", "DIA", "CSC", "BCSR",
               "HYB", "JDS", "autotune pick"});
  CsvWriter csv(bench::csv_path("ablation_extended_formats"),
                {"workload", "format", "seconds", "picked"});

  AutotuneOptions opts;
  opts.include_extended = true;
  opts.sample_rows = 0;

  for (const Workload& w : workloads) {
    std::vector<std::string> row = {w.name};
    double best = 1e300;
    for (Format f : kExtendedFormats) {
      const double s = bench::smsv_seconds(w.coo, f);
      best = std::min(best, s);
      row.push_back(fmt_seconds(s));
      csv.write_row({w.name, std::string(format_name(f)), fmt_double(s, 9),
                     ""});
    }
    const ScheduleDecision d = EmpiricalAutotuner(opts).choose(w.coo);
    row.push_back(std::string(format_name(d.format)));
    table.add_row(row);
  }
  std::printf("%s\n", table.str().c_str());
  std::printf(
      "BCSR pays off when nonzeros cluster into dense tiles (fill ratio "
      "~1); CSC when\nthe SMSV right-hand side is sparse (it skips every "
      "column outside the gathered\nrow's support — a structural win the "
      "paper's five formats cannot express); HYB\nbounds ELL's padding "
      "under skewed rows; JDS streams like ELL with zero padding.\n");
  bench::finish(csv, "ablation_extended_formats");
  return 0;
}
