// Ablation: the LRU kernel-row cache. SMO revisits a small working set of
// rows; this bench trains the same problems with a generous cache and with
// an effectively-disabled cache (2-row minimum) and reports kernel rows
// computed, hit rate and wall time.
#include <cstdio>

#include "bench_common.hpp"
#include "common/csv.hpp"
#include "data/profiles.hpp"
#include "svm/trainer.hpp"

int main() {
  using namespace ls;
  bench::banner("Ablation: kernel cache", "LRU kernel-row cache on vs off");

  SvmParams base;
  base.c = 1.0;
  base.tolerance = 1e-2;
  base.max_iterations = 1200;

  Table table({"Dataset", "iters", "rows computed (cache)",
               "rows computed (none)", "hit rate", "time (cache)",
               "time (none)", "speedup"});
  CsvWriter csv(bench::csv_path("ablation_kernel_cache"),
                {"dataset", "iterations", "rows_cached", "rows_uncached",
                 "hit_rate", "seconds_cached", "seconds_uncached"});

  for (const char* name : {"adult", "aloi", "mnist", "connect-4",
                           "trefethen"}) {
    const Dataset ds = profile_by_name(name).generate();

    SvmParams cached = base;
    cached.cache_bytes = 256ull << 20;
    const TrainResult with_cache =
        train_fixed_format(ds, cached, Format::kCSR);

    SvmParams uncached = base;
    uncached.cache_bytes = 0;  // clamps to the 2-row minimum
    const TrainResult no_cache =
        train_fixed_format(ds, uncached, Format::kCSR);

    table.add_row(
        {name, std::to_string(with_cache.stats.iterations),
         std::to_string(with_cache.stats.kernel_rows_computed),
         std::to_string(no_cache.stats.kernel_rows_computed),
         fmt_double(with_cache.stats.cache_hit_rate * 100.0, 1) + "%",
         fmt_seconds(with_cache.solve_seconds),
         fmt_seconds(no_cache.solve_seconds),
         fmt_speedup(no_cache.solve_seconds / with_cache.solve_seconds)});
    csv.write_row({name, std::to_string(with_cache.stats.iterations),
                   std::to_string(with_cache.stats.kernel_rows_computed),
                   std::to_string(no_cache.stats.kernel_rows_computed),
                   fmt_double(with_cache.stats.cache_hit_rate, 4),
                   fmt_double(with_cache.solve_seconds, 6),
                   fmt_double(no_cache.solve_seconds, 6)});
  }
  std::printf("%s\n", table.str().c_str());
  std::printf("The cache converts repeated working-set rows into O(1) hits; "
              "the win grows\nwith iteration count and row cost (LIBSVM "
              "ships the same mechanism).\n");
  bench::finish(csv, "ablation_kernel_cache");
  return 0;
}
