// Ablation: multi-GPU data-parallel scaling vs batch size (Section IV-B).
//
// Reproduces the paper's observation chain: the naive DGX port (4x P100,
// B = 100) gives only ~1.3x over one P100 because 25 samples per GPU
// under-saturates and the allreduce is pure overhead; tuning B toward 512+
// recovers most of the 4x.
#include <cstdio>

#include "bench_common.hpp"
#include "common/csv.hpp"
#include "hw/multigpu.hpp"

int main() {
  using namespace ls;
  bench::banner("Ablation: multi-GPU scaling",
                "DGX speedup over one P100 as a function of batch size");

  const MultiGpuModel model = paper_dgx_model();
  std::printf("model: c=%.1f us/sample, h_gpu=%.1f, allreduce(P=4)=%.2f ms\n\n",
              model.c * 1e6, model.h_gpu, model.allreduce0 * 1e3);

  Table table({"Batch", "t/iter 1 GPU", "t/iter 2 GPUs", "t/iter 4 GPUs",
               "4-GPU scaling", "efficiency"});
  CsvWriter csv(bench::csv_path("ablation_multigpu"),
                {"batch", "t1", "t2", "t4", "scaling4", "efficiency4"});
  for (index_t b : {64, 100, 128, 256, 512, 1024, 2048, 4096}) {
    const double t1 = model.seconds_per_iteration(1, b);
    const double t2 = model.seconds_per_iteration(2, b);
    const double t4 = model.seconds_per_iteration(4, b);
    const double s4 = model.scaling(4, b);
    table.add_row({std::to_string(b), fmt_seconds(t1), fmt_seconds(t2),
                   fmt_seconds(t4), fmt_speedup(s4),
                   fmt_double(s4 / 4.0 * 100.0, 0) + "%"});
    csv.write_row({std::to_string(b), fmt_double(t1, 6), fmt_double(t2, 6),
                   fmt_double(t4, 6), fmt_double(s4, 3),
                   fmt_double(s4 / 4.0, 3)});
  }
  std::printf("%s\n", table.str().c_str());
  std::printf("Paper anchors: 4-GPU scaling at B=100 is ~1.3x (\"the "
              "straightforward porting\nfrom one P100 GPU to one DGX "
              "station only brings 1.3x speedup\"); larger\nbatches "
              "approach the expected ~4x, which is why Section IV-C tunes "
              "B first.\n");
  bench::finish(csv, "ablation_multigpu");
  return 0;
}
