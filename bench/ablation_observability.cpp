// Overhead characterisation for the observability layer (DESIGN.md §10):
// per-call cost of the recording primitives with collection disabled vs
// enabled, plus the end-to-end impact of a fully metered adaptive SVM
// train. The disabled numbers back the "near-zero overhead when off"
// claim — one relaxed atomic load per call site.
#include <cstdio>

#include "bench_common.hpp"
#include "common/metrics.hpp"
#include "common/trace.hpp"
#include "data/profiles.hpp"
#include "svm/trainer.hpp"

namespace {

template <class Fn>
double ns_per_call(Fn&& fn) {
  constexpr int kBatch = 4096;
  const double s = ls::time_best([&] {
    for (int i = 0; i < kBatch; ++i) fn();
  }, 5, 0.02);
  return s / kBatch * 1e9;
}

double train_seconds(const ls::Dataset& ds) {
  ls::SvmParams params;
  return ls::train_adaptive(ds, params).total_seconds;
}

}  // namespace

int main() {
  using namespace ls;
  bench::banner("ablation", "observability overhead, disabled vs enabled");
  Table table({"Primitive", "disabled (ns)", "enabled (ns)"});
  CsvWriter csv(bench::csv_path("ablation_observability"),
                {"primitive", "disabled_ns", "enabled_ns"});

  metrics::set_enabled(false);
  trace::set_enabled(false);
  const double counter_off =
      ns_per_call([] { metrics::counter_add("bench.counter_total"); });
  const double timer_off =
      ns_per_call([] { metrics::ScopedTimer t("bench.timer_seconds"); });
  const double trace_off =
      ns_per_call([] { trace::emit_counter("bench.series", 1.0); });

  metrics::set_enabled(true);
  trace::set_enabled(true);
  const double counter_on =
      ns_per_call([] { metrics::counter_add("bench.counter_total"); });
  const double timer_on =
      ns_per_call([] { metrics::ScopedTimer t("bench.timer_seconds"); });
  const double trace_on =
      ns_per_call([] { trace::emit_counter("bench.series", 1.0); });
  metrics::reset();
  trace::reset();
  metrics::set_enabled(false);
  trace::set_enabled(false);

  const auto row = [&](const char* name, double off, double on) {
    table.add_row({name, fmt_double(off, 1), fmt_double(on, 1)});
    csv.write_row({name, fmt_double(off, 2), fmt_double(on, 2)});
  };
  row("metrics counter_add", counter_off, counter_on);
  row("metrics ScopedTimer", timer_off, timer_on);
  row("trace emit_counter", trace_off, trace_on);

  // End-to-end: a small adaptive train with every hot path instrumented.
  const Dataset ds = profile_by_name("breast_cancer").generate();
  const double e2e_off = time_best([&] { train_seconds(ds); }, 3, 0.1);
  metrics::set_enabled(true);
  const double e2e_on = time_best([&] { train_seconds(ds); }, 3, 0.1);
  metrics::reset();
  metrics::set_enabled(false);
  table.add_separator();
  table.add_row({"adaptive train (s)", fmt_double(e2e_off, 4),
                 fmt_double(e2e_on, 4)});
  csv.write_row({"adaptive_train_seconds", fmt_double(e2e_off, 5),
                 fmt_double(e2e_on, 5)});

  std::printf("%s\n", table.str().c_str());
  std::printf("Disabled-path cost is the atomic-load guard; end-to-end "
              "delta should sit\nwithin run-to-run noise (the acceptance "
              "bar for 'no measurable slowdown').\n");
  bench::finish(csv, "ablation_observability");
  return 0;
}
