// Ablation: mid-training layout re-scheduling.
//
// Scenario: the initial layout decision is wrong (here: forced to each
// dataset's *worst* format, emulating a stale or misled decision). We
// compare (a) riding out the bad layout, (b) re-scheduling after a short
// warm-up, and (c) the oracle (training on the measured-best format from
// the start). The gap between (b) and (c) is the cost of the late switch:
// the warm-up rows plus one re-materialisation.
#include <cstdio>

#include "bench_common.hpp"
#include "common/csv.hpp"
#include "data/profiles.hpp"
#include "svm/reschedule.hpp"
#include "svm/trainer.hpp"

int main() {
  using namespace ls;
  bench::banner("Ablation: runtime re-scheduling",
                "recovering from a wrong initial layout mid-training");

  SvmParams params;
  params.c = 1.0;
  params.tolerance = 1e-2;
  params.max_iterations = 1200;

  RescheduleOptions resched;
  resched.check_after_rows = 32;

  Table table({"Dataset", "bad layout", "stuck (s)", "rescheduled (s)",
               "final layout", "oracle (s)", "recovered"});
  CsvWriter csv(bench::csv_path("ablation_reschedule"),
                {"dataset", "bad_format", "stuck_seconds",
                 "rescheduled_seconds", "final_format", "oracle_seconds"});

  for (const char* name : {"adult", "mnist", "sector", "trefethen"}) {
    const Dataset ds = profile_by_name(name).generate();

    // Identify worst and best formats by the SMO-row probe.
    KernelParams kernel;
    Format worst = Format::kCSR, best = Format::kCSR;
    double worst_s = 0.0, best_s = 1e300;
    for (Format f : kAllFormats) {
      const double s = bench::smo_row_seconds(ds.X, f, kernel, 3);
      if (s > worst_s) {
        worst_s = s;
        worst = f;
      }
      if (s < best_s) {
        best_s = s;
        best = f;
      }
    }

    const TrainResult stuck = train_fixed_format(ds, params, worst);
    const TrainResult rescheduled =
        train_reschedulable(ds, params, worst, resched);
    const TrainResult oracle = train_fixed_format(ds, params, best);

    // Recovery: how much of the stuck-to-oracle gap the switch reclaimed.
    const double gap = stuck.solve_seconds - oracle.solve_seconds;
    const double reclaimed =
        gap > 0 ? (stuck.solve_seconds - rescheduled.solve_seconds) / gap
                : 1.0;
    table.add_row({name, std::string(format_name(worst)),
                   fmt_seconds(stuck.solve_seconds),
                   fmt_seconds(rescheduled.solve_seconds),
                   std::string(format_name(rescheduled.decision.format)),
                   fmt_seconds(oracle.solve_seconds),
                   fmt_double(reclaimed * 100.0, 0) + "%"});
    csv.write_row({name, std::string(format_name(worst)),
                   fmt_double(stuck.solve_seconds, 6),
                   fmt_double(rescheduled.solve_seconds, 6),
                   std::string(format_name(rescheduled.decision.format)),
                   fmt_double(oracle.solve_seconds, 6)});
  }
  std::printf("%s\n", table.str().c_str());
  std::printf("Re-scheduling converts a wrong pre-training decision into a "
              "bounded warm-up\ncost: the switch reclaims most of the "
              "stuck-vs-oracle gap because SMO still\nhas thousands of "
              "iterations ahead when the check fires.\n");
  bench::finish(csv, "ablation_reschedule");
  return 0;
}
