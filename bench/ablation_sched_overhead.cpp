// Ablation: what does runtime scheduling itself cost?
//
// The paper's pitch depends on the decision being cheap relative to
// training. This bench measures, per dataset: feature-extraction time,
// decision time for each policy, materialisation time, and the SMO solve
// time they amortise against.
#include <cstdio>

#include "bench_common.hpp"
#include "common/csv.hpp"
#include "data/features.hpp"
#include "data/profiles.hpp"
#include "sched/learned.hpp"
#include "svm/trainer.hpp"

int main() {
  using namespace ls;
  bench::banner("Ablation: scheduling overhead",
                "decision cost vs the training time it optimises");

  // Realistic training configuration (LIBSVM-default tolerance) so the
  // solve times are representative of real runs, not truncated probes.
  SvmParams params;
  params.c = 1.0;
  params.tolerance = 1e-3;
  params.max_iterations = 20000;

  // One-time costs shared by every dataset.
  Timer cal_timer;
  (void)CostCalibration::instance();
  const double calibration_s = cal_timer.seconds();
  Timer learn_timer;
  const LearnedSelector& learned = LearnedSelector::instance();
  const double learned_train_s = learn_timer.seconds();
  std::printf("one-time: machine calibration %.1f ms, learned-selector "
              "training %.2f s\n\n", calibration_s * 1e3, learned_train_s);

  Table table({"Dataset", "features (ms)", "heuristic (ms)",
               "empirical (ms)", "materialise (ms)", "solve (ms)",
               "empirical overhead"});
  CsvWriter csv(bench::csv_path("ablation_sched_overhead"),
                {"dataset", "features_ms", "heuristic_ms", "empirical_ms",
                 "materialize_ms", "solve_ms"});

  for (const DatasetProfile& profile : evaluated_profiles()) {
    const Dataset ds = profile.generate();

    Timer t_feat;
    const MatrixFeatures feats = extract_features(ds.X);
    const double feat_ms = t_feat.millis();

    Timer t_heur;
    (void)HeuristicSelector().choose(feats);
    const double heur_ms = t_heur.millis();

    Timer t_emp;
    const ScheduleDecision decision = EmpiricalAutotuner().choose(ds.X);
    const double emp_ms = t_emp.millis();

    Timer t_mat;
    const AnyMatrix mat = AnyMatrix::from_coo(ds.X, decision.format);
    const double mat_ms = t_mat.millis();
    (void)mat;
    (void)learned;

    const TrainResult run = train_fixed_format(ds, params, decision.format);
    const double solve_ms = run.solve_seconds * 1e3;

    table.add_row({profile.name, fmt_double(feat_ms, 2),
                   fmt_double(heur_ms, 3), fmt_double(emp_ms, 1),
                   fmt_double(mat_ms, 2), fmt_double(solve_ms, 1),
                   fmt_double((emp_ms + mat_ms) / solve_ms * 100.0, 1) +
                       "%"});
    csv.write_row({profile.name, fmt_double(feat_ms, 4),
                   fmt_double(heur_ms, 4), fmt_double(emp_ms, 4),
                   fmt_double(mat_ms, 4), fmt_double(solve_ms, 4)});
  }
  std::printf("%s\n", table.str().c_str());
  std::printf(
      "Feature extraction and the heuristic decision cost microseconds —\n"
      "effectively free. The measurement-based autotuner costs tens of\n"
      "milliseconds: small next to a full training run on the larger\n"
      "datasets, but NOT free on tiny problems (breast_cancer/leukemia,\n"
      "38 samples), where it can exceed the solve itself — exactly when\n"
      "the heuristic or learned policy should be preferred. Grid search,\n"
      "cross validation and one-vs-one reuse the decision, amortising it\n"
      "further.\n");
  bench::finish(csv, "ablation_sched_overhead");
  return 0;
}
