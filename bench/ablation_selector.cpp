// Ablation: heuristic selector vs empirical autotuner.
//
// For every evaluated dataset we compare (a) the decision each policy makes,
// (b) how close that decision is to the measured-optimal format (regret),
// and (c) how long the decision itself takes — the trade-off DESIGN.md
// calls out: the heuristic is O(1) after feature extraction, the empirical
// tuner materialises candidates but is exact.
#include <cstdio>

#include "bench_common.hpp"
#include "common/csv.hpp"
#include "common/stats.hpp"
#include "data/profiles.hpp"
#include "sched/learned.hpp"
#include "sched/scheduler.hpp"

int main() {
  using namespace ls;
  bench::banner("Ablation: selector", "heuristic cost model vs empirical "
                                      "autotuner");

  KernelParams kernel;
  Table table({"Dataset", "optimal", "heuristic", "empirical", "learned",
               "heur regret", "emp regret", "lrn regret", "heur ms",
               "emp ms"});
  CsvWriter csv(bench::csv_path("ablation_selector"),
                {"dataset", "optimal", "heuristic_pick", "empirical_pick",
                 "learned_pick", "heuristic_regret", "empirical_regret",
                 "learned_regret", "heuristic_decide_ms",
                 "empirical_decide_ms"});

  // Train the learned selector once up front (its one-time cost).
  Timer train_timer;
  const LearnedSelector& learned = LearnedSelector::instance();
  const double learned_train_s = train_timer.seconds();

  std::vector<double> heur_regret, emp_regret, lrn_regret;
  for (const DatasetProfile& profile : evaluated_profiles()) {
    const Dataset ds = profile.generate();

    // Ground truth: measured cost per format.
    std::array<double, kNumFormats> secs{};
    Format optimal = Format::kCSR;
    for (Format f : kAllFormats) {
      secs[static_cast<std::size_t>(f)] =
          bench::smo_row_seconds(ds.X, f, kernel);
      if (secs[static_cast<std::size_t>(f)] <
          secs[static_cast<std::size_t>(optimal)]) {
        optimal = f;
      }
    }

    SchedulerOptions heur_opts;
    heur_opts.policy = SchedulePolicy::kHeuristic;
    Timer t1;
    const ScheduleDecision heur = LayoutScheduler(heur_opts).decide(ds.X);
    const double heur_ms = t1.millis();

    SchedulerOptions emp_opts;
    emp_opts.policy = SchedulePolicy::kEmpirical;
    Timer t2;
    const ScheduleDecision emp = LayoutScheduler(emp_opts).decide(ds.X);
    const double emp_ms = t2.millis();

    const ScheduleDecision lrn = learned.choose(extract_features(ds.X));

    // Regret = chosen cost / optimal cost (1.0 = perfect). Near-tied
    // formats can measure on either side of the "optimal" sample, so the
    // ratio is clamped at 1.0 (a sub-1.0 value is a tie, not a win).
    const double hr =
        std::max(1.0, secs[static_cast<std::size_t>(heur.format)] /
                          secs[static_cast<std::size_t>(optimal)]);
    const double er =
        std::max(1.0, secs[static_cast<std::size_t>(emp.format)] /
                          secs[static_cast<std::size_t>(optimal)]);
    const double lr =
        std::max(1.0, secs[static_cast<std::size_t>(lrn.format)] /
                          secs[static_cast<std::size_t>(optimal)]);
    heur_regret.push_back(hr);
    emp_regret.push_back(er);
    lrn_regret.push_back(lr);

    table.add_row({profile.name, std::string(format_name(optimal)),
                   std::string(format_name(heur.format)),
                   std::string(format_name(emp.format)),
                   std::string(format_name(lrn.format)), fmt_double(hr, 2),
                   fmt_double(er, 2), fmt_double(lr, 2),
                   fmt_double(heur_ms, 2), fmt_double(emp_ms, 1)});
    csv.write_row({profile.name, std::string(format_name(optimal)),
                   std::string(format_name(heur.format)),
                   std::string(format_name(emp.format)),
                   std::string(format_name(lrn.format)), fmt_double(hr, 4),
                   fmt_double(er, 4), fmt_double(lr, 4),
                   fmt_double(heur_ms, 3), fmt_double(emp_ms, 3)});
  }
  std::printf("%s\n", table.str().c_str());
  std::printf("Mean regret: heuristic %.2fx, empirical %.2fx, learned %.2fx "
              "(1.0 = always optimal).\n",
              mean(heur_regret), mean(emp_regret), mean(lrn_regret));
  std::printf("Learned selector one-time training: %.1f s (corpus of "
              "measured matrices);\nper-decision cost afterwards is "
              "O(tree depth). The empirical tuner's per-dataset\ncost is "
              "amortised over thousands of SMO iterations; the heuristic is "
              "free.\n", learned_train_s);
  bench::finish(csv, "ablation_selector");
  return 0;
}
