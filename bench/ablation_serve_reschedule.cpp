// Ablation: online layout re-scheduling in the serving engine.
//
// Scenario: a model is deployed with a wrong layout decision (here: forced
// to the measured-worst basic format, emulating a stale deployment hint or
// a misleading load-time probe). We compare three engines on the same
// request stream:
//
//   stuck        worst layout, rescheduling off — rides out the mistake
//   rescheduled  worst layout, bandit on — should detect and swap off-path
//   oracle       measured-best layout from the start
//
// Each run has a warm-up phase (where the rescheduled engine's bandit
// gathers telemetry and performs its swaps) and a measured steady-state
// phase. The claim: the rescheduled engine's steady-state throughput lands
// within ~10% of the oracle, with zero lost responses — the swap is
// invisible to clients.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "common/cli.hpp"
#include "common/csv.hpp"
#include "common/metrics.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "serve/engine.hpp"
#include "svm/serialize.hpp"

namespace {

using ls::index_t;
using ls::real_t;

/// Hand-built Gaussian model (mirrors serve_load's synthetic_model).
ls::SvmModel synthetic_model(index_t n_sv, index_t d, double density,
                             std::uint64_t seed) {
  ls::Rng rng(seed);
  ls::SvmModel model;
  model.kernel.type = ls::KernelType::kGaussian;
  model.kernel.gamma = 0.5;
  model.rho = 0.0;
  model.num_features = d;
  for (index_t s = 0; s < n_sv; ++s) {
    std::vector<index_t> idx;
    std::vector<real_t> val;
    for (index_t c = 0; c < d; ++c) {
      if (rng.bernoulli(density)) {
        idx.push_back(c);
        val.push_back(rng.normal());
      }
    }
    if (idx.empty()) {
      idx.push_back(rng.uniform_int(0, d - 1));
      val.push_back(1.0);
    }
    model.support_vectors.emplace_back(std::move(idx), std::move(val));
    model.coef.push_back(s % 2 == 0 ? 1.0 : -1.0);
  }
  return model;
}

std::vector<ls::SparseVector> synthetic_requests(index_t count, index_t d,
                                                 double density,
                                                 std::uint64_t seed) {
  ls::Rng rng(seed);
  std::vector<ls::SparseVector> rows;
  rows.reserve(static_cast<std::size_t>(count));
  for (index_t r = 0; r < count; ++r) {
    std::vector<index_t> idx;
    std::vector<real_t> val;
    for (index_t c = 0; c < d; ++c) {
      if (rng.bernoulli(density)) {
        idx.push_back(c);
        val.push_back(rng.normal());
      }
    }
    if (idx.empty()) {
      idx.push_back(0);
      val.push_back(1.0);
    }
    rows.emplace_back(std::move(idx), std::move(val));
  }
  return rows;
}

struct RunResult {
  double steady_rps = 0.0;       ///< measured phase only
  std::int64_t lost = 0;         ///< non-kOk responses across both phases
  std::int64_t reschedules = 0;
  std::string final_format;
};

/// Closed loop in two phases: `warm` requests (bandit telemetry + swaps
/// happen here for the rescheduled engine), then `measured` requests whose
/// wall time defines the steady-state throughput.
RunResult run_serve(const ls::serve::ServeOptions& opts,
                    const std::string& model_path,
                    const std::vector<ls::SparseVector>& requests,
                    int concurrency, std::size_t warm,
                    std::size_t measured) {
  ls::serve::ServeEngine engine(opts);
  engine.load_model("bench", model_path);
  engine.start();

  std::atomic<std::int64_t> lost{0};
  const auto phase = [&](std::size_t total) {
    std::vector<std::thread> threads;
    for (int t = 0; t < concurrency; ++t) {
      threads.emplace_back([&, t] {
        for (std::size_t r = static_cast<std::size_t>(t); r < total;
             r += static_cast<std::size_t>(concurrency)) {
          const ls::serve::PredictResult res =
              engine.predict("bench", requests[r % requests.size()]);
          if (res.status != ls::serve::Status::kOk) lost.fetch_add(1);
        }
      });
    }
    for (std::thread& th : threads) th.join();
  };

  phase(warm);
  const ls::Timer wall;
  phase(measured);
  const double wall_s = wall.seconds();

  RunResult r;
  r.steady_rps =
      wall_s > 0 ? static_cast<double>(measured) / wall_s : 0.0;
  r.lost = lost.load();
  r.reschedules = engine.stats().reschedules_total;
  r.final_format =
      std::string(ls::format_name(engine.model("bench")->predictor.layout()));
  engine.stop();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  ls::CliParser cli("ablation_serve_reschedule",
                    "Online serving-side layout re-scheduling: recovering "
                    "from a wrong deployment layout with zero downtime");
  cli.add_flag("warm", "600", "warm-up requests (bandit converges here)");
  cli.add_flag("measured", "600", "steady-state requests timed per run");
  cli.add_flag("sv", "1500", "support vectors in the synthetic model");
  cli.add_flag("features", "1024", "feature dimension");
  cli.add_flag("density", "0.05", "nonzero fraction per row");
  cli.add_flag("concurrency", "8", "closed-loop client threads");
  cli.add_flag("workers", "2", "engine worker threads");
  if (!cli.parse(argc, argv)) return 0;

  ls::metrics::set_enabled(true);
  ls::bench::banner("ablation_serve_reschedule",
                    "bandit-driven online layout swaps in the serving "
                    "engine");

  const auto warm = static_cast<std::size_t>(cli.get_int("warm"));
  const auto measured = static_cast<std::size_t>(cli.get_int("measured"));
  const auto n_sv = static_cast<index_t>(cli.get_int("sv"));
  const auto d = static_cast<index_t>(cli.get_int("features"));
  const double density = cli.get_double("density");
  const int conc = static_cast<int>(cli.get_int("concurrency"));
  const int workers = static_cast<int>(cli.get_int("workers"));

  const std::string model_path =
      "bench_results/serve_reschedule_model.txt";
  std::filesystem::create_directories("bench_results");
  const ls::SvmModel model = synthetic_model(n_sv, d, density, 0xBAD);
  ls::save_model_file(model_path, model);
  const std::vector<ls::SparseVector> requests =
      synthetic_requests(256, d, density, 0x4E0);

  // Measure per-format batched scoring cost directly to pick the worst
  // and best basic layouts for this support-vector matrix.
  ls::Format worst = ls::Format::kCSR, best = ls::Format::kCSR;
  {
    double worst_s = 0.0, best_s = 1e300;
    std::vector<real_t> out(requests.size());
    for (ls::Format f : ls::kAllFormats) {
      ls::SchedulerOptions sched;
      sched.policy = ls::SchedulePolicy::kFixed;
      sched.fixed_format = f;
      const ls::BatchPredictor bp(model, sched, 64);
      const double s = ls::time_best(
          [&] {
            bp.decision_values(
                std::span<const ls::SparseVector>(requests.data(),
                                                  requests.size()),
                std::span<real_t>(out.data(), out.size()));
          },
          2, 0.01);
      std::printf("  probe %-4s %.6fs per %zu-row block\n",
                  std::string(ls::format_name(f)).c_str(), s,
                  requests.size());
      if (s > worst_s) {
        worst_s = s;
        worst = f;
      }
      if (s < best_s) {
        best_s = s;
        best = f;
      }
    }
  }
  std::printf("  worst layout %s, oracle layout %s\n\n",
              std::string(ls::format_name(worst)).c_str(),
              std::string(ls::format_name(best)).c_str());

  const auto engine_opts = [&](ls::Format start, bool reschedule) {
    ls::serve::ServeOptions opts;
    opts.workers = workers;
    opts.batcher.max_batch = 64;
    opts.batcher.deadline_ms = 0.0;
    opts.sched.policy = ls::SchedulePolicy::kFixed;
    opts.sched.fixed_format = start;
    opts.reschedule.enabled = reschedule;
    opts.reschedule.interval_ms = 10.0;
    opts.reschedule.min_observations = 4;
    opts.reschedule.switch_threshold = 1.05;
    opts.reschedule.max_switches = 4;
    opts.reschedule.hysteresis_ms = 50.0;
    return opts;
  };

  const RunResult stuck =
      run_serve(engine_opts(worst, false), model_path, requests, conc,
                warm, measured);
  const RunResult resched =
      run_serve(engine_opts(worst, true), model_path, requests, conc,
                warm, measured);
  const RunResult oracle =
      run_serve(engine_opts(best, false), model_path, requests, conc,
                warm, measured);

  ls::Table table({"config", "start", "final", "swaps", "steady rps",
                   "vs oracle", "lost"});
  ls::CsvWriter csv(ls::bench::csv_path("ablation_serve_reschedule"),
                    {"config", "start_format", "final_format",
                     "reschedules", "steady_rps", "vs_oracle", "lost"});
  const auto emit = [&](const char* label, ls::Format start,
                        const RunResult& r) {
    const double vs =
        oracle.steady_rps > 0 ? r.steady_rps / oracle.steady_rps : 0.0;
    table.add_row({label, std::string(ls::format_name(start)),
                   r.final_format, std::to_string(r.reschedules),
                   ls::fmt_double(r.steady_rps, 0),
                   ls::fmt_double(vs * 100.0, 0) + "%",
                   std::to_string(r.lost)});
    csv.write_row({label, std::string(ls::format_name(start)),
                   r.final_format, std::to_string(r.reschedules),
                   ls::fmt_double(r.steady_rps, 2), ls::fmt_double(vs, 4),
                   std::to_string(r.lost)});
  };
  emit("stuck", worst, stuck);
  emit("rescheduled", worst, resched);
  emit("oracle", best, oracle);
  std::printf("%s\n", table.str().c_str());

  std::printf(
      "The bandit samples live per-layout timings during warm-up, swaps "
      "the model\noff-path and serves the measured phase in the new "
      "layout: steady-state lands\nnear the oracle while the stuck engine "
      "keeps paying for the wrong decision.\nNo request is lost across "
      "the swap (lost column).\n");
  ls::bench::finish(csv, "ablation_serve_reschedule");
  return 0;
}
