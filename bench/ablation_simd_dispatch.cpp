// Ablation: the SIMD kernel dispatch layer (src/kernels). Measures the
// single-thread speedup of each supported LS_SIMD level over the scalar
// reference kernels on the two paths the paper's per-iteration cost is
// dominated by: the DEN row dot (contiguous streams + FMA) and the CSR
// SMSV (gather-dot), single-rhs and batched. Acceptance bar: on a host
// whose best level is at least AVX2, the native table must run the
// dense-gather paths and the batched CSR SMSV path (the one the serve
// batcher and compute_rows drive) at least 2x faster than the scalar
// table, or the bench exits non-zero. The single-rhs CSR gather-dot is
// reported but not gated: its rows are independent, so out-of-order
// execution already extracts the ILP on the scalar side and the vector
// win collapses to the host's gather throughput (see DESIGN.md §16) —
// near 1x on machines that microcode vgatherqpd, 2x+ where it is fast.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/parallel.hpp"
#include "data/synthetic.hpp"
#include "kernels/simd.hpp"

namespace {

using namespace ls;
using simd::SimdLevel;

struct PathTiming {
  double den_single;   ///< seconds per DEN multiply
  double den_batch;    ///< seconds per DEN batched multiply
  double csr_single;   ///< seconds per CSR multiply
  double csr_batch;    ///< seconds per CSR batched multiply
};

/// Times the four hot paths at the given level. Shapes are sized so the
/// working set streams from cache (the dispatch win is compute-bound):
/// one dense 256x1024 block and one 4096x1024 CSR matrix with 64-long
/// rows, batch width 16.
PathTiming time_level(SimdLevel level, const AnyMatrix& den,
                      const AnyMatrix& csr) {
  simd::ScopedSimdLevel guard(level);
  constexpr index_t kBatch = 16;
  PathTiming t{};

  std::vector<real_t> w(static_cast<std::size_t>(den.cols()));
  Rng rng(0x51D7ull);
  for (auto& x : w) x = rng.uniform(-1.0, 1.0);
  std::vector<real_t> wb(w.size() * kBatch);
  for (auto& x : wb) x = rng.uniform(-1.0, 1.0);

  std::vector<real_t> y(static_cast<std::size_t>(den.rows()));
  std::vector<real_t> yb(y.size() * kBatch);
  t.den_single = time_best([&] { den.multiply_dense(w, y); }, 5, 0.05);
  t.den_batch =
      time_best([&] { den.multiply_dense_batch(wb, kBatch, yb); }, 5, 0.05);

  std::vector<real_t> yc(static_cast<std::size_t>(csr.rows()));
  std::vector<real_t> ycb(yc.size() * kBatch);
  t.csr_single = time_best([&] { csr.multiply_dense(w, yc); }, 5, 0.05);
  t.csr_batch =
      time_best([&] { csr.multiply_dense_batch(wb, kBatch, ycb); }, 5, 0.05);
  return t;
}

}  // namespace

int main() {
  bench::banner("Ablation: SIMD kernel dispatch",
                "per-LS_SIMD-level speedup over the scalar kernel table");
  set_num_threads(1);  // isolate the kernel win from threading

  Rng rng(0xD15Aull);
  const CooMatrix den_coo = make_dense_matrix(256, 1024, rng);
  std::vector<index_t> lens(4096, 64);
  const CooMatrix csr_coo = make_random_sparse(4096, 1024, lens, rng);
  const AnyMatrix den = AnyMatrix::from_coo(den_coo, Format::kDEN);
  const AnyMatrix csr = AnyMatrix::from_coo(csr_coo, Format::kCSR);

  const PathTiming scalar = time_level(SimdLevel::kScalar, den, csr);

  Table table({"Level", "W", "DEN x1", "DEN x16", "CSR x1", "CSR x16"});
  CsvWriter csv(bench::csv_path("ablation_simd_dispatch"),
                {"level", "width", "den_single_speedup", "den_batch_speedup",
                 "csr_single_speedup", "csr_batch_speedup",
                 "den_single_seconds", "csr_single_seconds"});

  double native_den = 1.0;
  double native_denb = 1.0;
  double native_csr = 1.0;
  double native_csrb = 1.0;
  for (int l = 0; l < simd::kNumSimdLevels; ++l) {
    const auto level = static_cast<SimdLevel>(l);
    if (!simd::level_supported(level)) continue;
    const PathTiming t = time_level(level, den, csr);
    const double s_den = scalar.den_single / t.den_single;
    const double s_denb = scalar.den_batch / t.den_batch;
    const double s_csr = scalar.csr_single / t.csr_single;
    const double s_csrb = scalar.csr_batch / t.csr_batch;
    if (level == simd::best_supported()) {
      native_den = s_den;
      native_denb = s_denb;
      native_csr = s_csr;
      native_csrb = s_csrb;
    }
    int width = 1;
    {
      simd::ScopedSimdLevel guard(level);
      width = simd::kernels().width;
    }
    table.add_row({std::string(simd::level_name(level)), std::to_string(width),
                   bench::speedup_cell(s_den, s_den >= 2.0),
                   bench::speedup_cell(s_denb, s_denb >= 2.0),
                   bench::speedup_cell(s_csr, s_csr >= 2.0),
                   bench::speedup_cell(s_csrb, s_csrb >= 2.0)});
    csv.write_row({std::string(simd::level_name(level)), std::to_string(width),
                   fmt_double(s_den, 3), fmt_double(s_denb, 3),
                   fmt_double(s_csr, 3), fmt_double(s_csrb, 3),
                   fmt_double(t.den_single, 9), fmt_double(t.csr_single, 9)});
  }

  std::printf("%s\n", table.str().c_str());
  std::printf(
      "Speedups are single-thread wall time vs the scalar table on the same\n"
      "data. '*' marks >= 2.0x — the acceptance bar for the native level on\n"
      "the dense-gather paths and the batched CSR SMSV path. The single-rhs\n"
      "CSR dot is gather-throughput-bound (rows are independent, so OOO\n"
      "already parallelises the scalar chain) and is reported, not gated.\n");
  bench::finish(csv, "ablation_simd_dispatch");

  const bool vector_host = simd::best_supported() >= SimdLevel::kAVX2;
  if (vector_host &&
      (native_den < 2.0 || native_denb < 2.0 || native_csrb < 2.0)) {
    std::printf(
        "FAIL: native level below the 2x bar "
        "(DEN %.2fx, DEN batch %.2fx, CSR batch %.2fx)\n",
        native_den, native_denb, native_csrb);
    return 1;
  }
  std::printf(
      "native level: DEN %.2fx (batch %.2fx), CSR %.2fx (batch %.2fx) vs "
      "scalar\n",
      native_den, native_denb, native_csr, native_csrb);
  return 0;
}
