// Ablation: scatter-workspace SMSV (our kernel-row engine) versus the
// per-pair merge-join dot (LIBSVM's Kernel::dot) on the same CSR data.
// This isolates where the paper's "our CSR is ~1.3x faster than LIBSVM's
// CSR" comes from, independent of layout selection. Uses google-benchmark
// with a sweep over average row length.
#include <benchmark/benchmark.h>

#include <vector>

#include "common/rng.hpp"
#include "data/synthetic.hpp"
#include "formats/any_matrix.hpp"
#include "svm/kernel_engine.hpp"

namespace {

using namespace ls;

CooMatrix make_input(index_t adim) {
  Rng rng(0xAB1A7E);
  std::vector<index_t> lens(1024, adim);
  return make_random_sparse(1024, 512, lens, rng);
}

void BM_ScatterSmsvRow(benchmark::State& state) {
  const CooMatrix coo = make_input(state.range(0));
  const AnyMatrix mat = AnyMatrix::from_coo(coo, Format::kCSR);
  KernelParams params;
  FormatKernelEngine engine(mat, params);
  std::vector<real_t> row(static_cast<std::size_t>(coo.rows()));
  index_t i = 0;
  for (auto _ : state) {
    engine.compute_row(i, row);
    i = (i + 17) % coo.rows();
    benchmark::DoNotOptimize(row.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          coo.nnz());
}

void BM_MergeJoinRow(benchmark::State& state) {
  const CooMatrix coo = make_input(state.range(0));
  KernelParams params;
  LibsvmKernelEngine engine(coo, params);
  std::vector<real_t> row(static_cast<std::size_t>(coo.rows()));
  index_t i = 0;
  for (auto _ : state) {
    engine.compute_row(i, row);
    i = (i + 17) % coo.rows();
    benchmark::DoNotOptimize(row.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          coo.nnz());
}

BENCHMARK(BM_ScatterSmsvRow)->Arg(4)->Arg(16)->Arg(64)->Arg(256);
BENCHMARK(BM_MergeJoinRow)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

}  // namespace

BENCHMARK_MAIN();
