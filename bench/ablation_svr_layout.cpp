// Ablation: does layout scheduling help regression too?
//
// Section II-A: "The data structure of the regression problem is identical
// to that of the classification problem" — so the SMSV bottleneck, and
// therefore the layout decision, carries over to epsilon-SVR unchanged.
// This bench trains SVR on regression versions of the evaluated datasets
// under the worst format, fixed CSR, and the adaptive scheduler.
#include <cstdio>

#include "bench_common.hpp"
#include "common/csv.hpp"
#include "common/stats.hpp"
#include "data/profiles.hpp"
#include "svm/svr.hpp"

namespace {

using namespace ls;

/// Converts a profile's matrix into a regression problem with planted
/// linear targets + noise.
Dataset regression_version(const DatasetProfile& profile) {
  Dataset ds = profile.generate();
  Rng rng(0x5124 + ds.rows());
  std::vector<real_t> w(static_cast<std::size_t>(ds.cols()));
  for (auto& wi : w) wi = rng.normal(0.0, 0.3);
  SparseVector row;
  for (index_t i = 0; i < ds.rows(); ++i) {
    ds.X.gather_row(i, row);
    ds.y[static_cast<std::size_t>(i)] =
        row.dot_dense(w) + rng.normal(0.0, 0.05);
  }
  ds.name += ".regression";
  return ds;
}

}  // namespace

int main() {
  using namespace ls;
  bench::banner("Ablation: SVR layout",
                "layout scheduling applied to epsilon-SVR training");

  SvrParams params;
  params.epsilon = 0.1;
  params.svm.c = 1.0;
  params.svm.tolerance = 1e-2;
  params.svm.max_iterations = 800;

  Table table({"Dataset", "worst fmt", "worst (s)", "CSR (s)",
               "adaptive (s)", "adaptive fmt", "speedup vs worst"});
  CsvWriter csv(bench::csv_path("ablation_svr_layout"),
                {"dataset", "worst_format", "worst_seconds", "csr_seconds",
                 "adaptive_seconds", "adaptive_format", "speedup"});

  std::vector<double> speedups;
  for (const char* name : {"adult", "aloi", "mnist", "trefethen",
                           "connect-4"}) {
    const Dataset ds = regression_version(profile_by_name(name));

    // Worst format per the same SMSV probe the classifier benches use.
    KernelParams kernel;
    Format worst = Format::kCSR;
    double worst_probe = 0.0;
    for (Format f : kAllFormats) {
      const double s = bench::smo_row_seconds(ds.X, f, kernel, 3);
      if (s > worst_probe) {
        worst_probe = s;
        worst = f;
      }
    }

    SchedulerOptions fixed_worst;
    fixed_worst.policy = SchedulePolicy::kFixed;
    fixed_worst.fixed_format = worst;
    const SvrResult r_worst = train_svr(ds, params, fixed_worst);

    SchedulerOptions fixed_csr;
    fixed_csr.policy = SchedulePolicy::kFixed;
    fixed_csr.fixed_format = Format::kCSR;
    const SvrResult r_csr = train_svr(ds, params, fixed_csr);

    SchedulerOptions adaptive;
    adaptive.policy = SchedulePolicy::kEmpirical;
    const SvrResult r_ada = train_svr(ds, params, adaptive);

    const double speedup = r_worst.total_seconds / r_ada.total_seconds;
    speedups.push_back(speedup);
    table.add_row({name, std::string(format_name(worst)),
                   fmt_seconds(r_worst.total_seconds),
                   fmt_seconds(r_csr.total_seconds),
                   fmt_seconds(r_ada.total_seconds),
                   std::string(format_name(r_ada.decision.format)),
                   fmt_speedup(speedup)});
    csv.write_row({name, std::string(format_name(worst)),
                   fmt_double(r_worst.total_seconds, 6),
                   fmt_double(r_csr.total_seconds, 6),
                   fmt_double(r_ada.total_seconds, 6),
                   std::string(format_name(r_ada.decision.format)),
                   fmt_double(speedup, 3)});
  }
  std::printf("%s\n", table.str().c_str());
  std::printf("Adaptive-over-worst speedup for SVR: %.1fx average — the "
              "paper's layout\nscheduling transfers to regression unchanged "
              "because the kernel-row SMSV is\nthe same operation.\n",
              mean(speedups));
  bench::finish(csv, "ablation_svr_layout");
  return 0;
}
