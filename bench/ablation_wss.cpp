// Ablation: working-set selection policy. First-order selection is the
// paper's Algorithm 1 (maximal violating pair); second-order is Fan et
// al.'s WSS2 (LIBSVM's default). Second-order usually needs fewer
// iterations at the same per-iteration cost, since the K_high row it needs
// is already being computed.
#include <cstdio>

#include "bench_common.hpp"
#include "common/csv.hpp"
#include "data/profiles.hpp"
#include "svm/trainer.hpp"

int main() {
  using namespace ls;
  bench::banner("Ablation: WSS", "first-order (Alg. 1) vs second-order "
                                 "(WSS2) working-set selection");

  SvmParams base;
  base.c = 1.0;
  base.tolerance = 1e-3;
  base.max_iterations = 20000;

  Table table({"Dataset", "iters (1st)", "iters (2nd)", "time (1st)",
               "time (2nd)", "objective gap", "iter ratio"});
  CsvWriter csv(bench::csv_path("ablation_wss"),
                {"dataset", "iters_first", "iters_second", "seconds_first",
                 "seconds_second", "objective_first", "objective_second"});

  // Convergence trajectories (objective + optimality gap per iteration)
  // for re-plotting, sampled every 25 iterations.
  CsvWriter trace_csv(bench::csv_path("ablation_wss_trace"),
                      {"dataset", "policy", "iteration", "objective", "gap"});

  for (const char* name : {"adult", "aloi", "mnist", "connect-4",
                           "trefethen"}) {
    const Dataset ds = profile_by_name(name).generate();

    auto traced = [&](WssPolicy wss, const char* tag) {
      SvmParams params = base;
      params.wss = wss;
      params.trace_interval = 25;
      params.on_trace = [&](const IterationTrace& t) {
        trace_csv.write_row({name, tag, std::to_string(t.iteration),
                             fmt_double(t.objective, 6),
                             fmt_double(t.gap(), 6)});
      };
      return train_fixed_format(ds, params, Format::kCSR);
    };
    const TrainResult r1 = traced(WssPolicy::kFirstOrder, "first");
    const TrainResult r2 = traced(WssPolicy::kSecondOrder, "second");

    const double gap =
        std::abs(r1.stats.objective - r2.stats.objective) /
        std::max(1.0, std::abs(r2.stats.objective));
    table.add_row({name, std::to_string(r1.stats.iterations),
                   std::to_string(r2.stats.iterations),
                   fmt_seconds(r1.solve_seconds),
                   fmt_seconds(r2.solve_seconds),
                   fmt_double(gap * 100.0, 2) + "%",
                   fmt_double(static_cast<double>(r1.stats.iterations) /
                                  static_cast<double>(r2.stats.iterations),
                              2)});
    csv.write_row({name, std::to_string(r1.stats.iterations),
                   std::to_string(r2.stats.iterations),
                   fmt_double(r1.solve_seconds, 6),
                   fmt_double(r2.solve_seconds, 6),
                   fmt_double(r1.stats.objective, 6),
                   fmt_double(r2.stats.objective, 6)});
  }
  std::printf("%s\n", table.str().c_str());
  std::printf("Both policies reach the same dual objective (gap column); "
              "second-order\ntypically needs fewer iterations, which is why "
              "LIBSVM adopted it.\n");
  trace_csv.close();
  bench::finish(csv, "ablation_wss");
  return 0;
}
