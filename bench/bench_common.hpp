// Shared helpers for the paper-reproduction bench harness.
//
// Every bench binary prints (a) a human-readable table with the paper's
// reported values side by side with ours, and (b) a machine-readable CSV
// under ./bench_results/ for re-plotting.
#pragma once

#include <filesystem>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/csv.hpp"
#include "common/metrics.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "common/trace.hpp"
#include "data/dataset.hpp"
#include "formats/any_matrix.hpp"
#include "svm/kernel_engine.hpp"

namespace ls::bench {

/// Creates ./bench_results/ (if needed) and returns the CSV path for `name`.
inline std::string csv_path(const std::string& name) {
  std::filesystem::create_directories("bench_results");
  return "bench_results/" + name + ".csv";
}

/// Seconds per SMO kernel-row computation (gather + scatter + SMSV +
/// kernel map) for `x` stored in format `f` — the paper's per-iteration
/// bottleneck. Uses `probes` random rows; returns the mean of the best
/// timing per row (noise-rejected).
inline double smo_row_seconds(const CooMatrix& x, Format f,
                              const KernelParams& kernel, int probes = 6,
                              std::uint64_t seed = 0xBE9C4) {
  const AnyMatrix mat = AnyMatrix::from_coo(x, f);
  FormatKernelEngine engine(mat, kernel);
  std::vector<real_t> row(static_cast<std::size_t>(x.rows()));
  Rng rng(seed);
  double total = 0.0;
  for (int p = 0; p < probes; ++p) {
    const index_t i = rng.uniform_int(0, x.rows() - 1);
    total += time_best([&] { engine.compute_row(i, row); }, 3, 0.002);
  }
  return total / probes;
}

/// Seconds per raw SMSV (multiply only) with a scattered-row workspace.
inline double smsv_seconds(const CooMatrix& x, Format f, int reps = 3,
                           std::uint64_t seed = 0x5EED) {
  const AnyMatrix mat = AnyMatrix::from_coo(x, f);
  std::vector<real_t> w(static_cast<std::size_t>(x.cols()), 0.0);
  std::vector<real_t> y(static_cast<std::size_t>(x.rows()), 0.0);
  Rng rng(seed);
  SparseVector row;
  x.gather_row(rng.uniform_int(0, x.rows() - 1), row);
  row.scatter(w);
  return time_best([&] { mat.multiply_dense(w, y); }, reps, 0.005);
}

/// Pretty "12.3x" with a trailing marker for the winner.
inline std::string speedup_cell(double v, bool winner) {
  std::string s = fmt_speedup(v);
  if (winner) s += " *";
  return s;
}

/// Standard bench banner.
inline void banner(const std::string& id, const std::string& what) {
  std::printf("=== %s — %s ===\n", id.c_str(), what.c_str());
  std::printf("(synthetic stand-in datasets; relative shape is the claim,\n"
              " absolute times are machine-specific. See EXPERIMENTS.md.)\n\n");
}

/// Standard bench epilogue: closes the CSV — verifying every buffered row
/// actually reached the disk, so a full filesystem fails the bench instead
/// of leaving a silently truncated file — and, when metrics/trace
/// collection is on (LS_METRICS / LS_TRACE), exports the run's registry
/// next to the CSV through the same atomic writers the tools use.
inline void finish(CsvWriter& csv, const std::string& name) {
  csv.close();
  if (metrics::enabled()) {
    metrics::write_json("bench_results/" + name + ".metrics.json");
    std::printf("metrics: bench_results/%s.metrics.json\n", name.c_str());
  }
  if (trace::enabled()) {
    trace::write_chrome_json("bench_results/" + name + ".trace.json");
    std::printf("trace:   bench_results/%s.trace.json\n", name.c_str());
  }
}

}  // namespace ls::bench
