// Figure 1 reproduction: performance of the five storage formats under the
// SMO kernel, normalised to the slowest format per dataset, for the five
// datasets the paper plots (adult, aloi, mnist, gisette, trefethen).
#include <cstdio>

#include "bench_common.hpp"
#include "common/csv.hpp"
#include "data/profiles.hpp"

int main() {
  using namespace ls;
  bench::banner("Fig. 1", "per-dataset format speedups (normalised to the "
                          "slowest format)");

  const std::vector<std::string> datasets = {"adult", "aloi", "mnist",
                                             "gisette", "trefethen"};
  KernelParams kernel;  // linear: the common SMO configuration

  Table table({"Dataset", "ELL", "CSR", "COO", "DEN", "DIA", "best", "worst"});
  CsvWriter csv(bench::csv_path("fig1"),
                {"dataset", "format", "seconds_per_row", "speedup_vs_worst"});

  for (const std::string& name : datasets) {
    const Dataset ds = profile_by_name(name).generate();
    std::array<double, kNumFormats> secs{};
    double worst = 0.0;
    for (Format f : kAllFormats) {
      const double s = bench::smo_row_seconds(ds.X, f, kernel);
      secs[static_cast<std::size_t>(f)] = s;
      worst = std::max(worst, s);
    }
    double best_speedup = 0.0;
    Format best_fmt = Format::kCSR, worst_fmt = Format::kCSR;
    for (Format f : kAllFormats) {
      const double sp = worst / secs[static_cast<std::size_t>(f)];
      if (sp > best_speedup) {
        best_speedup = sp;
        best_fmt = f;
      }
      if (secs[static_cast<std::size_t>(f)] == worst) worst_fmt = f;
      csv.write_row({name, std::string(format_name(f)),
                     fmt_double(secs[static_cast<std::size_t>(f)], 9),
                     fmt_double(sp, 3)});
    }
    // Paper column order: ELL CSR COO DEN DIA.
    auto cell = [&](Format f) {
      const double sp = worst / secs[static_cast<std::size_t>(f)];
      return bench::speedup_cell(sp, f == best_fmt);
    };
    table.add_row({name, cell(Format::kELL), cell(Format::kCSR),
                   cell(Format::kCOO), cell(Format::kDEN), cell(Format::kDIA),
                   std::string(format_name(best_fmt)),
                   std::string(format_name(worst_fmt))});
  }

  std::printf("%s\n", table.str().c_str());
  std::printf("Paper's observation: the best and worst formats vary per "
              "dataset\n(Table III: best-over-worst spans 3.7x-14.3x on "
              "their Ivy Bridge).\n");
  bench::finish(csv, "fig1");
  return 0;
}
