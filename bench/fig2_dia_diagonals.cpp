// Figure 2 reproduction: DIA-format SMSV performance versus the number of
// diagonals, with M = N = 4096 and nnz = 4096 held fixed (the paper's
// construction: the more diagonals, the more padding, the slower).
// Speedups are normalised to the 4096-diagonal worst case.
#include <cstdio>

#include "bench_common.hpp"
#include "common/csv.hpp"
#include "data/synthetic.hpp"

int main() {
  using namespace ls;
  bench::banner("Fig. 2", "DIA performance vs number of diagonals "
                          "(M = N = 4096, nnz = 4096)");

  const index_t m = 4096, n = 4096, nnz = 4096;
  std::vector<index_t> ndigs;
  for (index_t d = 2; d <= 4096; d *= 2) ndigs.push_back(d);

  Rng rng(0xF162);
  std::vector<double> seconds;
  for (index_t ndig : ndigs) {
    const CooMatrix coo = make_diag_spread(m, n, nnz, ndig, rng);
    seconds.push_back(bench::smsv_seconds(coo, Format::kDIA));
  }
  const double worst = seconds.back();  // 4096 diagonals = paper baseline

  Table table({"# diagonals", "nnz/diag", "stored slots", "time/SMSV",
               "speedup vs 4096-diag"});
  CsvWriter csv(bench::csv_path("fig2"),
                {"ndig", "seconds", "speedup_vs_worst"});
  for (std::size_t i = 0; i < ndigs.size(); ++i) {
    const index_t ndig = ndigs[i];
    table.add_row({std::to_string(ndig), std::to_string(nnz / ndig),
                   std::to_string(ndig * std::min(m, n)),
                   fmt_seconds(seconds[i]),
                   fmt_speedup(worst / seconds[i])});
    csv.write_row({std::to_string(ndig), fmt_double(seconds[i], 9),
                   fmt_double(worst / seconds[i], 3)});
  }
  std::printf("%s\n", table.str().c_str());
  std::printf("Expected shape (paper Fig. 2): monotonically decreasing "
              "speedup as the\ndiagonal count grows — each diagonal pads to "
              "a full stripe of %lld slots.\n", static_cast<long long>(m));
  bench::finish(csv, "fig2");
  return 0;
}
