// Figure 3 reproduction: ELL-format SMSV performance versus mdim (the
// maximum row length), with M = N = 4096 and nnz = 8192 held fixed.
// As mdim grows, every one of the 4096 rows pads to mdim slots, so both
// storage and work balloon; vdim grows alongside (the paper's mat2 vs
// mat4096 discussion). Speedups are normalised to the worst case.
#include <cstdio>

#include "bench_common.hpp"
#include "common/csv.hpp"
#include "data/features.hpp"
#include "data/synthetic.hpp"

int main() {
  using namespace ls;
  bench::banner("Fig. 3", "ELL performance vs mdim "
                          "(M = N = 4096, nnz = 8192)");

  const index_t m = 4096, n = 4096, nnz = 8192;
  std::vector<index_t> mdims;
  for (index_t d = 2; d <= 4096; d *= 2) mdims.push_back(d);

  Rng rng(0xF163);
  std::vector<double> seconds;
  std::vector<double> vdims;
  for (index_t mdim : mdims) {
    const CooMatrix coo = make_mdim_spread(m, n, nnz, mdim, rng);
    seconds.push_back(bench::smsv_seconds(coo, Format::kELL));
    vdims.push_back(extract_features(coo).vdim);
  }
  const double worst = *std::max_element(seconds.begin(), seconds.end());

  Table table({"mdim", "vdim", "padded slots", "time/SMSV",
               "speedup vs worst"});
  CsvWriter csv(bench::csv_path("fig3"),
                {"mdim", "vdim", "seconds", "speedup_vs_worst"});
  for (std::size_t i = 0; i < mdims.size(); ++i) {
    table.add_row({std::to_string(mdims[i]), fmt_double(vdims[i], 1),
                   std::to_string(m * mdims[i]), fmt_seconds(seconds[i]),
                   fmt_speedup(worst / seconds[i])});
    csv.write_row({std::to_string(mdims[i]), fmt_double(vdims[i], 3),
                   fmt_double(seconds[i], 9),
                   fmt_double(worst / seconds[i], 3)});
  }
  std::printf("%s\n", table.str().c_str());
  std::printf("Expected shape (paper Fig. 3): speedup decreases as mdim "
              "(and with it vdim)\ngrows — ELL pays M * mdim slots "
              "regardless of nnz.\n");
  bench::finish(csv, "fig3");
  return 0;
}
