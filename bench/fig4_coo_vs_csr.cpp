// Figure 4 reproduction: speedup of COO over CSR as vdim (row-length
// variance) grows, with M, N and nnz held fixed.
//
// The paper measured this on a 61-core Xeon Phi, where the effect is a
// load-balance phenomenon: CSR parallelises over rows (a static block
// containing one giant row stalls its thread) while COO parallelises over
// nonzeros. We report both:
//   * the measured single-thread ratio on this machine (near-flat — the
//     imbalance effect needs many cores), and
//   * the simulated 61-thread makespan ratio from the calibrated parallel
//     model (DESIGN.md section 3 substitution), which reproduces the
//     paper's rising curve.
#include <cstdio>

#include "bench_common.hpp"
#include "common/csv.hpp"
#include "data/features.hpp"
#include "data/synthetic.hpp"
#include "formats/csr.hpp"
#include "sched/parallel_model.hpp"

int main() {
  using namespace ls;
  bench::banner("Fig. 4", "COO-over-CSR speedup vs vdim "
                          "(simulated 61-thread Xeon Phi makespan)");

  const index_t m = 4096, n = 4096, nnz = 65536;
  const int threads = 61;  // the paper's KNC core count
  const std::vector<double> shares = {0.0, 0.1, 0.2, 0.35, 0.5, 0.65, 0.8};

  Rng rng(0xF164);
  const CostCalibration& cal = CostCalibration::instance();

  Table table({"vdim", "COO/CSR (1 thread, measured)",
               "COO/CSR (61 threads, simulated)", "CSR imbalance"});
  CsvWriter csv(bench::csv_path("fig4"),
                {"vdim", "ratio_measured_1t", "ratio_simulated_61t",
                 "csr_imbalance"});

  for (double share : shares) {
    // 16 heavy rows can absorb up to 16 * n = nnz nonzeros, so no share in
    // the sweep saturates (each point gets a distinct vdim).
    const CooMatrix coo = make_vdim_spread(m, n, nnz, 16, share, rng);
    const MatrixFeatures feat = extract_features(coo);

    const double csr_1t = bench::smsv_seconds(coo, Format::kCSR);
    const double coo_1t = bench::smsv_seconds(coo, Format::kCOO);

    // Per-row nonzero counts for the makespan model.
    const CsrMatrix csr(coo);
    std::vector<index_t> row_nnz(static_cast<std::size_t>(m));
    for (index_t i = 0; i < m; ++i) {
      row_nnz[static_cast<std::size_t>(i)] = csr.row_nnz(i);
    }
    const MakespanResult csr_sim =
        simulate_makespan(Format::kCSR, row_nnz, n, feat.ndig, threads, cal);
    const MakespanResult coo_sim =
        simulate_makespan(Format::kCOO, row_nnz, n, feat.ndig, threads, cal);

    const double ratio_1t = csr_1t / coo_1t;
    const double ratio_sim = csr_sim.seconds / coo_sim.seconds;
    table.add_row({fmt_double(feat.vdim, 1), fmt_speedup(ratio_1t),
                   fmt_speedup(ratio_sim), fmt_double(csr_sim.imbalance, 2)});
    csv.write_row({fmt_double(feat.vdim, 3), fmt_double(ratio_1t, 4),
                   fmt_double(ratio_sim, 4),
                   fmt_double(csr_sim.imbalance, 4)});
  }
  std::printf("%s\n", table.str().c_str());
  std::printf("Expected shape (paper Fig. 4): the COO-over-CSR speedup "
              "rises with vdim\non a many-core machine; the single-thread "
              "ratio stays near 1x, confirming\nthe effect is load balance, "
              "not per-element cost.\n");
  bench::finish(csv, "fig4");
  return 0;
}
