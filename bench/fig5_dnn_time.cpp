// Figure 5 reproduction: time to reach 0.8 CIFAR-10 test accuracy for the
// eight methods (five platforms at Caffe defaults + three DGX tuning
// stages), from the calibrated hardware + convergence models.
#include <cstdio>

#include "bench_common.hpp"
#include "common/csv.hpp"
#include "table7_rows.hpp"

int main() {
  using namespace ls;
  bench::banner("Fig. 5", "time for 0.8 CIFAR-10 accuracy by method");

  const auto rows = bench::table_vii_rows();
  Table table({"Method", "Time (model)", "Time (paper)", "delta"});
  CsvWriter csv(bench::csv_path("fig5"),
                {"method", "seconds_model", "seconds_paper"});
  for (const auto& r : rows) {
    const double delta = (r.seconds - r.paper_seconds) / r.paper_seconds;
    table.add_row({r.method, fmt_seconds(r.seconds),
                   fmt_seconds(r.paper_seconds),
                   fmt_double(delta * 100.0, 1) + "%"});
    csv.write_row({r.method, fmt_double(r.seconds, 2),
                   fmt_double(r.paper_seconds, 2)});
  }
  std::printf("%s\n", table.str().c_str());
  std::printf("Headline: 8-core CPU %.1f h -> tuned DGX %.0f s (paper: "
              "8.2 h -> ~83 s, \"roughly 1 minute\").\n",
              rows.front().seconds / 3600.0, rows.back().seconds);
  bench::finish(csv, "fig5");
  return 0;
}
