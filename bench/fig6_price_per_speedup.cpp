// Figure 6 reproduction: price (dollars) per unit of speedup for the eight
// methods, with the 8-core CPU as the 1x baseline. Lower is better; the
// paper's conclusion is that the P100 is the most efficient platform and
// the 8-core CPU the least.
#include <cstdio>

#include "bench_common.hpp"
#include "common/csv.hpp"
#include "table7_rows.hpp"

int main() {
  using namespace ls;
  bench::banner("Fig. 6", "price per speedup for 0.8 CIFAR-10 accuracy");

  const auto rows = bench::table_vii_rows();
  const double base = rows.front().seconds;  // 8-core CPU baseline

  // Paper's Price/Speedup column for reference.
  const double paper_pps[] = {1571, 813, 493, 196, 1039, 963, 371, 223};

  Table table({"Method", "Price ($)", "Speedup", "$/speedup (model)",
               "$/speedup (paper)"});
  CsvWriter csv(bench::csv_path("fig6"),
                {"method", "price", "speedup", "pps_model", "pps_paper"});

  std::string best_method, worst_method;
  double best = 1e300, worst = 0.0;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    const double sp = speedup_vs_baseline(r.seconds, base);
    const double pps = price_per_speedup(r.price, sp);
    table.add_row({r.method, fmt_double(r.price, 0), fmt_speedup(sp),
                   fmt_double(pps, 0), fmt_double(paper_pps[i], 0)});
    csv.write_row({r.method, fmt_double(r.price, 0), fmt_double(sp, 2),
                   fmt_double(pps, 1), fmt_double(paper_pps[i], 0)});
    // Platform comparison (first five rows, untuned).
    if (i < 5) {
      if (pps < best) {
        best = pps;
        best_method = r.method;
      }
      if (pps > worst) {
        worst = pps;
        worst_method = r.method;
      }
    }
  }
  std::printf("%s\n", table.str().c_str());
  std::printf("Most efficient platform: %s ($%.0f/x)\n", best_method.c_str(),
              best);
  std::printf("Least efficient platform: %s ($%.0f/x)\n",
              worst_method.c_str(), worst);
  std::printf("(Paper: \"Tesla P100 GPU is the most efficient platform and "
              "the 8-core CPU\nis the least efficient platform.\")\n");
  bench::finish(csv, "fig6");
  return 0;
}
