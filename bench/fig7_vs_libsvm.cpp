// Figure 7 reproduction: speedup of the adaptive SVM (HPC-SVM) over
// parallel LIBSVM on the nine evaluated datasets — full end-to-end SMO
// training runs, not just kernel microbenches.
//
// The paper reports 1.2x-16.5x (4x average) over parallel LIBSVM, and
// ~1.3x average over its own fixed-CSR implementation (showing how much of
// the win is the kernel engine vs the layout choice). We print all three
// columns.
#include <cstdio>

#include "bench_common.hpp"
#include "common/csv.hpp"
#include "common/stats.hpp"
#include "data/profiles.hpp"
#include "svm/trainer.hpp"

int main() {
  using namespace ls;
  bench::banner("Fig. 7", "adaptive SVM speedup over parallel LIBSVM "
                          "(end-to-end training)");

  SvmParams params;
  params.c = 1.0;
  params.tolerance = 1e-2;       // coarse tolerance keeps runs short
  params.max_iterations = 1500;  // identical cap for every engine

  SchedulerOptions sched;
  sched.policy = SchedulePolicy::kEmpirical;

  Table table({"Dataset", "LIBSVM (s)", "fixed-CSR (s)", "adaptive (s)",
               "layout", "vs LIBSVM", "vs fixed-CSR"});
  CsvWriter csv(bench::csv_path("fig7"),
                {"dataset", "libsvm_seconds", "csr_seconds",
                 "adaptive_seconds", "chosen_format", "speedup_vs_libsvm",
                 "speedup_vs_csr"});

  std::vector<double> vs_libsvm, vs_csr;
  for (const DatasetProfile& profile : evaluated_profiles()) {
    const Dataset ds = profile.generate();

    const TrainResult baseline = train_libsvm_baseline(ds, params);
    const TrainResult fixed_csr =
        train_fixed_format(ds, params, Format::kCSR);
    const TrainResult adaptive = train_adaptive(ds, params, sched);

    const double sp_libsvm =
        baseline.solve_seconds / adaptive.solve_seconds;
    const double sp_csr = fixed_csr.solve_seconds / adaptive.solve_seconds;
    vs_libsvm.push_back(sp_libsvm);
    vs_csr.push_back(sp_csr);

    table.add_row({profile.name, fmt_seconds(baseline.solve_seconds),
                   fmt_seconds(fixed_csr.solve_seconds),
                   fmt_seconds(adaptive.solve_seconds),
                   std::string(format_name(adaptive.decision.format)),
                   fmt_speedup(sp_libsvm), fmt_speedup(sp_csr)});
    csv.write_row({profile.name, fmt_double(baseline.solve_seconds, 6),
                   fmt_double(fixed_csr.solve_seconds, 6),
                   fmt_double(adaptive.solve_seconds, 6),
                   std::string(format_name(adaptive.decision.format)),
                   fmt_double(sp_libsvm, 3), fmt_double(sp_csr, 3)});
  }
  std::printf("%s\n", table.str().c_str());
  std::printf("Average speedup vs parallel LIBSVM: %.1fx (paper: 4x, range "
              "1.2x-16.5x)\n", mean(vs_libsvm));
  std::printf("Average speedup vs our fixed-CSR:   %.2fx (paper: ~1.3x)\n",
              mean(vs_csr));
  bench::finish(csv, "fig7");
  return 0;
}
