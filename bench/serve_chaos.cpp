// serve_chaos — socket chaos soak test of the serving stack.
//
// The question: does the hardened server/client pair survive sustained
// hostile weather — torn frames, half-frame stalls (slow loris), abrupt
// disconnects, injected read delays and a full server restart mid-run —
// with zero caller-visible errors and a bounded shed rate?
//
// Three populations share one daemon:
//   - worker threads: well-behaved ServeClients with per-request deadlines
//     and retries, issuing --requests predicts in a closed loop;
//   - a chaos thread: raw sockets cycling through attack scenarios
//     (garbage bytes, half a header then stall, connect-and-slam,
//     valid ping followed by garbage) plus periodic failpoint pulses that
//     tear frames and delay reads inside the server itself;
//   - a monitor thread: health + stats probes, the way an operator's
//     liveness checker would poll.
//
// With --restart 1 the socket server is stopped, destroyed and rebuilt on
// the same path halfway through; client retries must bridge the gap.
//
// With --replicas N the same populations instead hit a consistent-hash
// router (src/route) fronting N replica servers on their own sockets.
// The killer thread then plays operator: it SIGKILL-equivalently bounces
// one replica a quarter of the way in, and performs a full rolling
// restart of every replica at the halfway mark. Router failover plus
// client retries must hide all of it.
//
// The bench FAILS (nonzero exit) if any well-behaved request errors, if
// requests go missing (ok + shed != total), or if the shed rate exceeds
// --max-shed-rate. A hang shows up as the bench never finishing — which
// is the point: scripts/check.sh runs this under a timeout and under TSan.
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "common/cli.hpp"
#include "common/csv.hpp"
#include "common/failpoint.hpp"
#include "common/metrics.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "route/router.hpp"
#include "serve/client.hpp"
#include "serve/engine.hpp"
#include "serve/server.hpp"
#include "svm/serialize.hpp"

namespace {

using ls::index_t;
using ls::real_t;

ls::SvmModel synthetic_model(index_t n_sv, index_t d, double density,
                             std::uint64_t seed) {
  ls::Rng rng(seed);
  ls::SvmModel model;
  model.kernel.type = ls::KernelType::kGaussian;
  model.kernel.gamma = 0.5;
  model.rho = 0.0;
  model.num_features = d;
  for (index_t s = 0; s < n_sv; ++s) {
    std::vector<index_t> idx;
    std::vector<real_t> val;
    for (index_t c = 0; c < d; ++c) {
      if (rng.bernoulli(density)) {
        idx.push_back(c);
        val.push_back(rng.normal());
      }
    }
    if (idx.empty()) {
      idx.push_back(rng.uniform_int(0, d - 1));
      val.push_back(1.0);
    }
    model.support_vectors.emplace_back(std::move(idx), std::move(val));
    model.coef.push_back(s % 2 == 0 ? 1.0 : -1.0);
  }
  return model;
}

std::vector<ls::SparseVector> synthetic_requests(index_t count, index_t d,
                                                 double density,
                                                 std::uint64_t seed) {
  ls::Rng rng(seed);
  std::vector<ls::SparseVector> rows;
  rows.reserve(static_cast<std::size_t>(count));
  for (index_t r = 0; r < count; ++r) {
    std::vector<index_t> idx;
    std::vector<real_t> val;
    for (index_t c = 0; c < d; ++c) {
      if (rng.bernoulli(density)) {
        idx.push_back(c);
        val.push_back(rng.normal());
      }
    }
    if (idx.empty()) {
      idx.push_back(0);
      val.push_back(1.0);
    }
    rows.emplace_back(std::move(idx), std::move(val));
  }
  return rows;
}

int raw_connect(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

void raw_send(int fd, const void* data, std::size_t n) {
  (void)!::send(fd, data, n, MSG_NOSIGNAL);
}

/// One hostile connection. `scenario` cycles; returns true when a
/// connection was actually made (the server may be mid-restart).
bool chaos_attack(const std::string& path, int scenario, ls::Rng& rng,
                  double loris_hold_ms) {
  const int fd = raw_connect(path);
  if (fd < 0) return false;
  switch (scenario % 4) {
    case 0: {
      // Garbage: bytes that can never be a valid frame header.
      unsigned char junk[12];
      for (unsigned char& b : junk) {
        b = static_cast<unsigned char>(rng.uniform_int(0, 255) | 0x80);
      }
      raw_send(fd, junk, sizeof(junk));
      break;
    }
    case 1: {
      // Half a valid header, then vanish mid-frame.
      const unsigned char half[6] = {0x4C, 0x53, 0x52, 0x56, 2, 1};
      raw_send(fd, half, sizeof(half));
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      break;
    }
    case 2:
      // Connect-and-slam: no bytes at all.
      break;
    case 3: {
      // Slow loris: half a header held open past the server's read
      // timeout — the eviction/timeout machinery must free the worker.
      const unsigned char half[6] = {0x4C, 0x53, 0x52, 0x56, 2, 1};
      raw_send(fd, half, sizeof(half));
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(loris_hold_ms));
      break;
    }
  }
  ::shutdown(fd, SHUT_RDWR);
  ::close(fd);
  return true;
}

/// Replicated mode: --replicas N serve servers behind a src/route router.
/// One shared engine stands in for N identical model-hosting processes —
/// the chaos here is all transport-level (replicas dying and coming back),
/// which is exactly the layer the router owns.
int run_replicated(const ls::CliParser& cli) {
  std::signal(SIGPIPE, SIG_IGN);
  ls::metrics::set_enabled(true);

  const auto total = static_cast<std::size_t>(cli.get_int("requests"));
  const int concurrency =
      std::max(1, static_cast<int>(cli.get_int("concurrency")));
  const int n_replicas =
      std::max(1, static_cast<int>(cli.get_int("replicas")));
  const bool chaos = cli.get_int("chaos") != 0;
  const bool restart = cli.get_int("restart") != 0;
  const double timeout_ms = cli.get_double("timeout-ms");
  const double read_timeout_ms = cli.get_double("read-timeout-ms");
  const double max_shed_rate = cli.get_double("max-shed-rate");

  ls::bench::banner("serve_chaos",
                    "replica kills + rolling restart behind the router — "
                    "zero lost requests");

  const std::string model_path = "bench_results/serve_chaos_model.txt";
  std::filesystem::create_directories("bench_results");
  ls::save_model_file(
      model_path,
      synthetic_model(static_cast<index_t>(cli.get_int("sv")),
                      static_cast<index_t>(cli.get_int("features")),
                      cli.get_double("density"), 0xC4A05));
  const std::vector<ls::SparseVector> requests = synthetic_requests(
      256, static_cast<index_t>(cli.get_int("features")),
      cli.get_double("density"), 0x5EED5);

  ls::serve::ServeOptions eopts;
  eopts.workers = static_cast<int>(cli.get_int("workers"));
  eopts.batcher.max_batch = 64;
  eopts.batcher.deadline_ms = 1.0;
  eopts.batcher.max_queue = 2048;
  ls::serve::ServeEngine engine(eopts);
  engine.load_model("chaos", model_path);
  engine.start();

  const std::string base =
      "/tmp/ls_route_chaos_" + std::to_string(::getpid());

  // The replica fleet: one ServeServer per socket, all over the shared
  // engine. Guarded by a mutex because the killer thread destroys and
  // rebuilds entries while teardown may race the end of the run.
  std::vector<ls::serve::ServerOptions> rep_listen(
      static_cast<std::size_t>(n_replicas));
  std::vector<std::unique_ptr<ls::serve::ServeServer>> reps(
      static_cast<std::size_t>(n_replicas));
  std::mutex reps_mu;
  std::vector<ls::route::ReplicaEndpoint> endpoints;
  for (int i = 0; i < n_replicas; ++i) {
    auto& listen = rep_listen[static_cast<std::size_t>(i)];
    listen.unix_path = base + "_r" + std::to_string(i) + ".sock";
    listen.max_connections = 64;
    listen.read_timeout_ms = read_timeout_ms;
    listen.write_timeout_ms = read_timeout_ms;
    listen.idle_timeout_ms = 2000.0;
    reps[static_cast<std::size_t>(i)] =
        std::make_unique<ls::serve::ServeServer>(engine, listen);
    reps[static_cast<std::size_t>(i)]->start();
    endpoints.push_back(
        ls::route::ReplicaEndpoint{listen.unix_path, -1});
  }

  // Aggressive prober/breaker settings: a dead replica must leave the
  // rotation within a few tens of ms, or the kill windows eat the retry
  // budget of every request hashed to it.
  ls::route::RouterOptions ropts;
  ropts.probe.interval_ms = 50.0;
  ropts.probe.probe_timeout_ms = 200.0;
  ropts.probe.backoff_max_ms = 400.0;
  ropts.breaker.failure_threshold = 3;
  ropts.breaker.open_ms = 150.0;
  ropts.upstream_connect_timeout_ms = 250.0;
  ropts.upstream_request_timeout_ms = timeout_ms;
  ls::route::Router router(endpoints, ropts);
  router.start();

  ls::serve::ServerOptions front_listen;
  front_listen.unix_path = base + "_router.sock";
  front_listen.max_connections = 64;
  front_listen.read_timeout_ms = read_timeout_ms;
  front_listen.write_timeout_ms = read_timeout_ms;
  front_listen.idle_timeout_ms = 2000.0;
  ls::serve::ServeServer front(router, front_listen);
  front.start();
  const std::string& socket_path = front_listen.unix_path;

  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done_count{0};
  std::atomic<bool> workers_done{false};
  std::atomic<std::size_t> ok{0}, shed{0}, errors{0};
  std::atomic<std::int64_t> retries_used{0};
  std::atomic<std::size_t> chaos_conns{0};
  std::atomic<std::size_t> health_probes{0};
  std::atomic<int> kills_done{0};
  std::atomic<int> rolling_done{0};

  const ls::Timer wall;

  // --- well-behaved population (aimed at the router) ---
  std::vector<std::thread> workers;
  for (int t = 0; t < concurrency; ++t) {
    workers.emplace_back([&, t] {
      ls::serve::ClientOptions copts;
      copts.request_timeout_ms = timeout_ms;
      copts.max_retries = static_cast<int>(cli.get_int("retries"));
      copts.backoff_base_ms = 5.0;
      copts.backoff_max_ms = 100.0;
      copts.jitter_seed = 0x2017ul + static_cast<std::uint64_t>(t);
      std::optional<ls::serve::ServeClient> client;
      std::int64_t observed = 0;
      for (;;) {
        const std::size_t i = next.fetch_add(1);
        if (i >= total) break;
        try {
          if (!client) {
            client =
                ls::serve::ServeClient::connect_unix(socket_path, copts);
            observed = 0;
          }
          const ls::serve::PredictResult r =
              client->predict("chaos", requests[i % requests.size()]);
          retries_used.fetch_add(client->retries_observed() - observed);
          observed = client->retries_observed();
          if (r.status == ls::serve::Status::kOk) {
            ok.fetch_add(1);
          } else if (r.status == ls::serve::Status::kOverloaded ||
                     r.status == ls::serve::Status::kShuttingDown) {
            shed.fetch_add(1);
          } else {
            errors.fetch_add(1);
          }
        } catch (const std::exception&) {
          errors.fetch_add(1);
          client.reset();
        }
        done_count.fetch_add(1);
      }
    });
  }

  // --- hostile population (also aimed at the router) ---
  std::thread chaos_thread;
  if (chaos) {
    chaos_thread = std::thread([&] {
      ls::Rng rng(0xBADF00D);
      int scenario = 0;
      while (!workers_done.load(std::memory_order_acquire)) {
        if (chaos_attack(socket_path, scenario, rng,
                         read_timeout_ms + 150.0)) {
          chaos_conns.fetch_add(1);
        }
        ++scenario;
        std::this_thread::sleep_for(std::chrono::milliseconds(3));
      }
    });
  }

  // --- operator population ---
  std::thread monitor([&] {
    ls::serve::ClientOptions copts;
    copts.request_timeout_ms = 500.0;
    copts.max_retries = 3;
    copts.jitter_seed = 0x4EA17;
    while (!workers_done.load(std::memory_order_acquire)) {
      try {
        ls::serve::ServeClient probe =
            ls::serve::ServeClient::connect_unix(socket_path, copts);
        (void)probe.health();
        (void)probe.stats();
        health_probes.fetch_add(1);
      } catch (const std::exception&) {
        // Router restarting is not part of this scenario, but be lenient.
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(40));
    }
  });

  // --- the killer: one replica bounce, then a full rolling restart ---
  std::thread killer([&] {
    if (!restart) return;
    auto progressed_past = [&](std::size_t target) {
      while (done_count.load(std::memory_order_acquire) < target &&
             !workers_done.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
      return !workers_done.load(std::memory_order_acquire);
    };
    auto bounce = [&](int i, int down_ms) {
      const auto idx = static_cast<std::size_t>(i);
      {
        std::lock_guard<std::mutex> lock(reps_mu);
        reps[idx]->stop();
        reps[idx].reset();
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(down_ms));
      {
        std::lock_guard<std::mutex> lock(reps_mu);
        reps[idx] = std::make_unique<ls::serve::ServeServer>(
            engine, rep_listen[idx]);
        reps[idx]->start();
      }
    };
    if (progressed_past(total / 4)) {
      bounce(0, 150);
      kills_done.fetch_add(1);
    }
    if (progressed_past(total / 2)) {
      // Rolling restart: every replica in sequence, with a gap long
      // enough for the prober to notice each one coming back before the
      // next goes down — the way an operator would actually roll a fleet.
      for (int i = 0; i < n_replicas; ++i) {
        bounce(i, 80);
        std::this_thread::sleep_for(std::chrono::milliseconds(150));
      }
      rolling_done.fetch_add(1);
    }
  });

  for (std::thread& th : workers) th.join();
  workers_done.store(true, std::memory_order_release);
  killer.join();
  if (chaos_thread.joinable()) chaos_thread.join();
  monitor.join();
  const double wall_s = wall.seconds();

  const bool drained = front.drain(5000.0);
  const ls::serve::ServerStats fstats = front.server_stats();
  const ls::route::RouterStats rstats = router.stats();
  const std::string router_text = router.stats_text();
  front.stop();
  router.stop();
  {
    std::lock_guard<std::mutex> lock(reps_mu);
    for (auto& rep : reps) {
      if (rep) rep->stop();
      rep.reset();
    }
  }
  engine.stop();

  const std::size_t accounted = ok.load() + shed.load() + errors.load();
  const double shed_rate =
      total > 0
          ? static_cast<double>(shed.load()) / static_cast<double>(total)
          : 0.0;

  ls::Table table({"metric", "value"});
  table.add_row({"replicas", std::to_string(n_replicas)});
  table.add_row({"requests", std::to_string(total)});
  table.add_row({"ok", std::to_string(ok.load())});
  table.add_row({"shed", std::to_string(shed.load())});
  table.add_row({"errors", std::to_string(errors.load())});
  table.add_row({"client retries", std::to_string(retries_used.load())});
  table.add_row({"shed rate", ls::fmt_double(shed_rate, 4)});
  table.add_row({"rps", ls::fmt_double(
                            wall_s > 0 ? static_cast<double>(total) / wall_s
                                       : 0.0,
                            1)});
  table.add_row({"chaos connections", std::to_string(chaos_conns.load())});
  table.add_row({"health probes", std::to_string(health_probes.load())});
  table.add_row({"replica kills", std::to_string(kills_done.load())});
  table.add_row({"rolling restarts", std::to_string(rolling_done.load())});
  table.add_row({"router failovers", std::to_string(rstats.failover_total)});
  table.add_row(
      {"router exhausted", std::to_string(rstats.exhausted_total)});
  table.add_row({"breaker short circuits",
                 std::to_string(rstats.breaker_short_circuit_total)});
  table.add_row(
      {"open connections", std::to_string(fstats.connections_open)});
  table.add_row({"drained", drained ? "yes" : "NO"});
  std::printf("%s", table.str().c_str());
  std::printf("--- router ---\n%s", router_text.c_str());

  ls::CsvWriter csv(ls::bench::csv_path("serve_chaos_replicated"),
                    {"replicas", "requests", "ok", "shed", "errors",
                     "retries", "shed_rate", "rps", "failovers",
                     "exhausted", "kills", "rolling"});
  csv.write_row(
      {std::to_string(n_replicas), std::to_string(total),
       std::to_string(ok.load()), std::to_string(shed.load()),
       std::to_string(errors.load()), std::to_string(retries_used.load()),
       ls::fmt_double(shed_rate, 4),
       ls::fmt_double(
           wall_s > 0 ? static_cast<double>(total) / wall_s : 0.0, 1),
       std::to_string(rstats.failover_total),
       std::to_string(rstats.exhausted_total),
       std::to_string(kills_done.load()),
       std::to_string(rolling_done.load())});
  ls::bench::finish(csv, "serve_chaos");

  bool pass = true;
  if (errors.load() != 0) {
    std::printf("FAIL: %zu well-behaved requests errored (want 0)\n",
                errors.load());
    pass = false;
  }
  if (accounted != total) {
    std::printf("FAIL: accounted %zu of %zu requests (lost %zd)\n",
                accounted, total,
                static_cast<std::ptrdiff_t>(total) -
                    static_cast<std::ptrdiff_t>(accounted));
    pass = false;
  }
  if (shed_rate > max_shed_rate) {
    std::printf("FAIL: shed rate %.4f exceeds bound %.4f\n", shed_rate,
                max_shed_rate);
    pass = false;
  }
  if (restart && kills_done.load() != 1) {
    std::printf("FAIL: replica kill never happened (run too short?)\n");
    pass = false;
  }
  if (restart && rolling_done.load() != 1) {
    std::printf("FAIL: rolling restart never happened (run too short?)\n");
    pass = false;
  }
  if (!drained) {
    std::printf("FAIL: router did not quiesce within the drain bound\n");
    pass = false;
  }
  std::printf("%s\n",
              pass ? "serve_chaos(replicated): PASS"
                   : "serve_chaos(replicated): FAIL");
  for (const auto& listen : rep_listen) ::unlink(listen.unix_path.c_str());
  ::unlink(socket_path.c_str());
  return pass ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  ls::CliParser cli("serve_chaos",
                    "Socket chaos soak: fault-injected serving must lose "
                    "nothing and hang never");
  cli.add_flag("requests", "10000", "well-behaved predict requests");
  cli.add_flag("concurrency", "8", "well-behaved client threads");
  cli.add_flag("workers", "2", "engine scoring threads");
  cli.add_flag("sv", "400", "support vectors in the synthetic model");
  cli.add_flag("features", "256", "feature dimension");
  cli.add_flag("density", "0.05", "nonzero fraction per row");
  cli.add_flag("chaos", "1", "run the hostile-socket + failpoint thread");
  cli.add_flag("restart", "1", "restart the socket server mid-run");
  cli.add_flag("replicas", "0",
               "run N replica servers behind the consistent-hash router "
               "instead of one bare server (replica kill + rolling "
               "restart replace the single-server restart)");
  cli.add_flag("retries", "8", "client retries per request");
  cli.add_flag("timeout-ms", "500",
               "per-request client budget (also the propagated deadline)");
  cli.add_flag("read-timeout-ms", "300", "server per-frame read budget");
  cli.add_flag("max-shed-rate", "0.2",
               "fail if shed/total exceeds this fraction");
  if (!cli.parse(argc, argv)) return 0;

  if (cli.get_int("replicas") > 0) return run_replicated(cli);

  // Torn-frame writes hit dead sockets on purpose; that must be an error
  // return, not a process-killing signal.
  std::signal(SIGPIPE, SIG_IGN);
  ls::metrics::set_enabled(true);

  const auto total = static_cast<std::size_t>(cli.get_int("requests"));
  const int concurrency =
      std::max(1, static_cast<int>(cli.get_int("concurrency")));
  const bool chaos = cli.get_int("chaos") != 0;
  const bool restart = cli.get_int("restart") != 0;
  const double timeout_ms = cli.get_double("timeout-ms");
  const double read_timeout_ms = cli.get_double("read-timeout-ms");
  const double max_shed_rate = cli.get_double("max-shed-rate");

  ls::bench::banner("serve_chaos",
                    "torn frames, slow loris, restarts — zero lost requests");

  const std::string model_path = "bench_results/serve_chaos_model.txt";
  std::filesystem::create_directories("bench_results");
  ls::save_model_file(
      model_path,
      synthetic_model(static_cast<index_t>(cli.get_int("sv")),
                      static_cast<index_t>(cli.get_int("features")),
                      cli.get_double("density"), 0xC4A05));
  const std::vector<ls::SparseVector> requests = synthetic_requests(
      256, static_cast<index_t>(cli.get_int("features")),
      cli.get_double("density"), 0x5EED5);

  const std::string socket_path =
      "/tmp/ls_serve_chaos_" + std::to_string(::getpid()) + ".sock";

  ls::serve::ServeOptions eopts;
  eopts.workers = static_cast<int>(cli.get_int("workers"));
  eopts.batcher.max_batch = 64;
  eopts.batcher.deadline_ms = 1.0;
  eopts.batcher.max_queue = 2048;
  ls::serve::ServeEngine engine(eopts);
  engine.load_model("chaos", model_path);
  engine.start();

  ls::serve::ServerOptions listen;
  listen.unix_path = socket_path;
  listen.max_connections = 64;
  listen.read_timeout_ms = read_timeout_ms;
  listen.write_timeout_ms = read_timeout_ms;
  listen.idle_timeout_ms = 2000.0;
  auto server = std::make_unique<ls::serve::ServeServer>(engine, listen);
  server->start();

  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done_count{0};
  std::atomic<bool> workers_done{false};
  std::atomic<std::size_t> ok{0}, shed{0}, errors{0};
  std::atomic<std::int64_t> retries_used{0};
  std::atomic<std::size_t> chaos_conns{0};
  std::atomic<std::size_t> health_probes{0};
  std::atomic<int> restarts_done{0};

  const ls::Timer wall;

  // --- well-behaved population ---
  std::vector<std::thread> workers;
  for (int t = 0; t < concurrency; ++t) {
    workers.emplace_back([&, t] {
      ls::serve::ClientOptions copts;
      copts.request_timeout_ms = timeout_ms;
      copts.max_retries = static_cast<int>(cli.get_int("retries"));
      copts.backoff_base_ms = 5.0;
      copts.backoff_max_ms = 100.0;
      copts.jitter_seed = 0xC1A05u + static_cast<std::uint64_t>(t);
      std::optional<ls::serve::ServeClient> client;
      std::int64_t observed = 0;
      for (;;) {
        const std::size_t i = next.fetch_add(1);
        if (i >= total) break;
        try {
          if (!client) {
            client =
                ls::serve::ServeClient::connect_unix(socket_path, copts);
            observed = 0;
          }
          const ls::serve::PredictResult r =
              client->predict("chaos", requests[i % requests.size()]);
          retries_used.fetch_add(client->retries_observed() - observed);
          observed = client->retries_observed();
          if (r.status == ls::serve::Status::kOk) {
            ok.fetch_add(1);
          } else if (r.status == ls::serve::Status::kOverloaded ||
                     r.status == ls::serve::Status::kShuttingDown) {
            // kShuttingDown past the retry budget counts as shed: the
            // request was refused, not corrupted.
            shed.fetch_add(1);
          } else {
            errors.fetch_add(1);
          }
        } catch (const std::exception&) {
          errors.fetch_add(1);
          client.reset();
        }
        done_count.fetch_add(1);
      }
    });
  }

  // --- hostile population ---
  std::thread chaos_thread;
  if (chaos) {
    chaos_thread = std::thread([&] {
      ls::Rng rng(0xBADF00D);
      int scenario = 0;
      while (!workers_done.load(std::memory_order_acquire)) {
        if (chaos_attack(socket_path, scenario, rng,
                         read_timeout_ms + 150.0)) {
          chaos_conns.fetch_add(1);
        }
        // Failpoint pulses: one torn frame, then later a burst of read
        // delays. limit bounds each pulse so retries always converge.
        if (scenario % 5 == 1) {
          ls::failpoint::activate(
              "serve.frame.partial",
              {ls::failpoint::Action::kError, 0, 0, 1});
        }
        if (scenario % 7 == 3) {
          ls::failpoint::activate(
              "serve.conn.read",
              {ls::failpoint::Action::kDelay, 3, 0, 8});
        }
        ++scenario;
        std::this_thread::sleep_for(std::chrono::milliseconds(3));
      }
      ls::failpoint::clear();
    });
  }

  // --- operator population ---
  std::thread monitor([&] {
    ls::serve::ClientOptions copts;
    copts.request_timeout_ms = 500.0;
    copts.max_retries = 3;
    copts.jitter_seed = 0x4EA17;
    while (!workers_done.load(std::memory_order_acquire)) {
      try {
        ls::serve::ServeClient probe =
            ls::serve::ServeClient::connect_unix(socket_path, copts);
        (void)probe.health();
        (void)probe.stats();
        health_probes.fetch_add(1);
      } catch (const std::exception&) {
        // Mid-restart: the next probe will find the successor.
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(40));
    }
  });

  // --- mid-run restart ---
  std::thread restarter([&] {
    if (!restart) return;
    while (done_count.load(std::memory_order_acquire) < total / 2 &&
           !workers_done.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    if (workers_done.load(std::memory_order_acquire)) return;
    server->stop();
    server.reset();
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    server = std::make_unique<ls::serve::ServeServer>(engine, listen);
    server->start();
    restarts_done.fetch_add(1);
  });

  for (std::thread& th : workers) th.join();
  workers_done.store(true, std::memory_order_release);
  restarter.join();
  if (chaos_thread.joinable()) chaos_thread.join();
  monitor.join();
  const double wall_s = wall.seconds();

  // Graceful teardown exercised on every run: drain must quiesce quickly
  // once the load stops.
  const bool drained = server->drain(5000.0);
  const ls::serve::ServerStats sstats = server->server_stats();
  server->stop();
  engine.stop();
  ls::failpoint::clear();

  const std::size_t accounted = ok.load() + shed.load() + errors.load();
  const double shed_rate =
      total > 0 ? static_cast<double>(shed.load()) /
                      static_cast<double>(total)
                : 0.0;

  ls::Table table({"metric", "value"});
  table.add_row({"requests", std::to_string(total)});
  table.add_row({"ok", std::to_string(ok.load())});
  table.add_row({"shed", std::to_string(shed.load())});
  table.add_row({"errors", std::to_string(errors.load())});
  table.add_row({"client retries", std::to_string(retries_used.load())});
  table.add_row({"shed rate", ls::fmt_double(shed_rate, 4)});
  table.add_row({"rps", ls::fmt_double(
                            wall_s > 0 ? static_cast<double>(total) / wall_s
                                       : 0.0,
                            1)});
  table.add_row({"chaos connections", std::to_string(chaos_conns.load())});
  table.add_row({"health probes", std::to_string(health_probes.load())});
  table.add_row({"restarts", std::to_string(restarts_done.load())});
  table.add_row({"evictions", std::to_string(sstats.evictions_total)});
  table.add_row({"read timeouts", std::to_string(sstats.read_timeouts_total)});
  table.add_row(
      {"idle timeouts", std::to_string(sstats.idle_timeouts_total)});
  table.add_row({"protocol errors",
                 std::to_string(sstats.protocol_errors_total)});
  table.add_row({"open connections", std::to_string(sstats.connections_open)});
  table.add_row({"drained", drained ? "yes" : "NO"});
  std::printf("%s", table.str().c_str());

  ls::CsvWriter csv(ls::bench::csv_path("serve_chaos"),
                    {"requests", "ok", "shed", "errors", "retries",
                     "shed_rate", "rps", "chaos_conns", "restarts",
                     "evictions", "read_timeouts", "protocol_errors"});
  csv.write_row({std::to_string(total), std::to_string(ok.load()),
                 std::to_string(shed.load()), std::to_string(errors.load()),
                 std::to_string(retries_used.load()),
                 ls::fmt_double(shed_rate, 4),
                 ls::fmt_double(wall_s > 0
                                    ? static_cast<double>(total) / wall_s
                                    : 0.0,
                                1),
                 std::to_string(chaos_conns.load()),
                 std::to_string(restarts_done.load()),
                 std::to_string(sstats.evictions_total),
                 std::to_string(sstats.read_timeouts_total),
                 std::to_string(sstats.protocol_errors_total)});
  ls::bench::finish(csv, "serve_chaos");

  bool pass = true;
  if (errors.load() != 0) {
    std::printf("FAIL: %zu well-behaved requests errored (want 0)\n",
                errors.load());
    pass = false;
  }
  if (accounted != total) {
    std::printf("FAIL: accounted %zu of %zu requests (lost %zd)\n",
                accounted, total,
                static_cast<std::ptrdiff_t>(total) -
                    static_cast<std::ptrdiff_t>(accounted));
    pass = false;
  }
  if (shed_rate > max_shed_rate) {
    std::printf("FAIL: shed rate %.4f exceeds bound %.4f\n", shed_rate,
                max_shed_rate);
    pass = false;
  }
  if (!drained) {
    std::printf("FAIL: server did not quiesce within the drain bound\n");
    pass = false;
  }
  std::printf("%s\n", pass ? "serve_chaos: PASS" : "serve_chaos: FAIL");
  ::unlink(socket_path.c_str());
  return pass ? 0 : 1;
}
