// serve_load — closed-loop load test of the serving engine.
//
// The question: does micro-batching buy throughput once requests are
// concurrent? Each configuration serves the same synthetic Gaussian model
// in-process; C client threads issue requests back-to-back (closed loop)
// and we compare requests/second against the batch=1 baseline at the same
// concurrency. Batching amortises the support-vector matrix stream across
// the coalesced requests (one multiply_dense_batch instead of one SMSV per
// request), so the win should appear as soon as the queue holds more than
// one request — i.e. whenever concurrency exceeds the worker count.
//
// The model is built by hand (not trained): enough support vectors and
// features to make a single-row score measurably expensive, so the bench
// measures the serving pipeline rather than queueing noise.
#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "common/cli.hpp"
#include "common/csv.hpp"
#include "common/metrics.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "serve/engine.hpp"
#include "svm/serialize.hpp"

namespace {

using ls::index_t;
using ls::real_t;

/// Hand-built Gaussian model: `n_sv` random sparse support vectors over
/// `d` features. Coefficients sum to zero-ish so decisions stay bounded.
ls::SvmModel synthetic_model(index_t n_sv, index_t d, double density,
                             std::uint64_t seed) {
  ls::Rng rng(seed);
  ls::SvmModel model;
  model.kernel.type = ls::KernelType::kGaussian;
  model.kernel.gamma = 0.5;
  model.rho = 0.0;
  model.num_features = d;
  for (index_t s = 0; s < n_sv; ++s) {
    std::vector<index_t> idx;
    std::vector<real_t> val;
    for (index_t c = 0; c < d; ++c) {
      if (rng.bernoulli(density)) {
        idx.push_back(c);
        val.push_back(rng.normal());
      }
    }
    if (idx.empty()) {  // every SV needs at least one nonzero
      idx.push_back(rng.uniform_int(0, d - 1));
      val.push_back(1.0);
    }
    model.support_vectors.emplace_back(std::move(idx), std::move(val));
    model.coef.push_back(s % 2 == 0 ? 1.0 : -1.0);
  }
  return model;
}

/// Random request vectors with the same shape as the support vectors.
std::vector<ls::SparseVector> synthetic_requests(index_t count, index_t d,
                                                 double density,
                                                 std::uint64_t seed) {
  ls::Rng rng(seed);
  std::vector<ls::SparseVector> rows;
  rows.reserve(static_cast<std::size_t>(count));
  for (index_t r = 0; r < count; ++r) {
    std::vector<index_t> idx;
    std::vector<real_t> val;
    for (index_t c = 0; c < d; ++c) {
      if (rng.bernoulli(density)) {
        idx.push_back(c);
        val.push_back(rng.normal());
      }
    }
    if (idx.empty()) {
      idx.push_back(0);
      val.push_back(1.0);
    }
    rows.emplace_back(std::move(idx), std::move(val));
  }
  return rows;
}

struct RunResult {
  double rps = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double occupancy = 0.0;
  std::int64_t shed = 0;
};

/// One closed-loop run: `concurrency` threads send `total` requests
/// through a fresh engine configured with `opts`.
RunResult run_config(const ls::serve::ServeOptions& opts,
                     const std::string& model_path,
                     const std::vector<ls::SparseVector>& requests,
                     int concurrency, std::size_t total) {
  ls::serve::ServeEngine engine(opts);
  engine.load_model("bench", model_path);
  engine.start();

  std::vector<std::vector<double>> lat(
      static_cast<std::size_t>(concurrency));
  std::vector<std::thread> threads;
  const ls::Timer wall;
  for (int t = 0; t < concurrency; ++t) {
    threads.emplace_back([&, t] {
      std::vector<double>& mine = lat[static_cast<std::size_t>(t)];
      for (std::size_t r = static_cast<std::size_t>(t); r < total;
           r += static_cast<std::size_t>(concurrency)) {
        const ls::Timer timer;
        const ls::serve::PredictResult res =
            engine.predict("bench", requests[r % requests.size()]);
        if (res.status == ls::serve::Status::kOk) {
          mine.push_back(timer.millis());
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  const double wall_s = wall.seconds();
  const ls::serve::ServeStats stats = engine.stats();
  engine.stop();

  std::vector<double> all;
  for (const auto& v : lat) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  RunResult r;
  r.rps = wall_s > 0 ? static_cast<double>(all.size()) / wall_s : 0.0;
  if (!all.empty()) {
    r.p50_ms = all[all.size() / 2];
    r.p95_ms = all[static_cast<std::size_t>(
        0.95 * static_cast<double>(all.size() - 1))];
  }
  r.occupancy = stats.mean_batch_occupancy();
  r.shed = stats.shed_total();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  ls::CliParser cli("serve_load",
                    "Closed-loop serving throughput: micro-batching vs "
                    "batch=1");
  cli.add_flag("requests", "1000", "requests per configuration");
  cli.add_flag("sv", "4000", "support vectors in the synthetic model");
  cli.add_flag("features", "2048", "feature dimension");
  cli.add_flag("density", "0.05", "nonzero fraction per row");
  cli.add_flag("workers", "2", "engine worker threads");
  if (!cli.parse(argc, argv)) return 0;

  // Always-on metrics: the exported JSON carries the serve.request_seconds
  // latency distribution (p50/p95) next to the CSV.
  ls::metrics::set_enabled(true);

  const auto total = static_cast<std::size_t>(cli.get_int("requests"));
  const auto n_sv = static_cast<index_t>(cli.get_int("sv"));
  const auto d = static_cast<index_t>(cli.get_int("features"));
  const double density = cli.get_double("density");
  const int workers = static_cast<int>(cli.get_int("workers"));

  ls::bench::banner("serve_load",
                    "micro-batched serving vs per-request scoring");

  const std::string model_path = "bench_results/serve_load_model.txt";
  std::filesystem::create_directories("bench_results");
  ls::save_model_file(model_path,
                      synthetic_model(n_sv, d, density, 0xBA7C4));
  const std::vector<ls::SparseVector> requests =
      synthetic_requests(256, d, density, 0x5E44E);

  struct Config {
    const char* label;
    index_t max_batch;
    double deadline_ms;
  };
  const Config configs[] = {
      {"batch=1", 1, 0.0},
      {"batch=64 greedy", 64, 0.0},
      {"batch=64 deadline=2ms", 64, 2.0},
  };
  const int concurrencies[] = {1, 2, 4, 8, 16};

  ls::CsvWriter csv(ls::bench::csv_path("serve_load"),
                    {"config", "concurrency", "requests", "rps", "p50_ms",
                     "p95_ms", "mean_batch_occupancy", "shed",
                     "speedup_vs_batch1"});

  ls::Table table({"config", "conc", "rps", "p50 ms", "p95 ms", "occup",
                   "speedup"});
  for (int conc : concurrencies) {
    double baseline_rps = 0.0;
    for (const Config& c : configs) {
      ls::serve::ServeOptions opts;
      opts.workers = workers;
      opts.batcher.max_batch = c.max_batch;
      opts.batcher.deadline_ms = c.deadline_ms;
      opts.batcher.max_queue = 4096;
      const RunResult r =
          run_config(opts, model_path, requests, conc, total);
      if (std::string(c.label) == "batch=1") baseline_rps = r.rps;
      const double speedup = baseline_rps > 0 ? r.rps / baseline_rps : 1.0;
      table.add_row({c.label, std::to_string(conc), ls::fmt_double(r.rps, 1),
                     ls::fmt_double(r.p50_ms, 3), ls::fmt_double(r.p95_ms, 3),
                     ls::fmt_double(r.occupancy, 2),
                     ls::bench::speedup_cell(speedup, speedup >= 2.0)});
      csv.write_row({c.label, std::to_string(conc), std::to_string(total),
                     ls::fmt_double(r.rps, 1), ls::fmt_double(r.p50_ms, 3),
                     ls::fmt_double(r.p95_ms, 3),
                     ls::fmt_double(r.occupancy, 2), std::to_string(r.shed),
                     ls::fmt_double(speedup, 2)});
    }
    table.add_separator();
  }
  std::printf("%s", table.str().c_str());

  ls::bench::finish(csv, "serve_load");
  return 0;
}
