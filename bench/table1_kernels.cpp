// Table I microbenchmark: cost of the four standard kernel functions per
// element, on top of a precomputed dot product (the form the SMSV engine
// evaluates them in). Uses google-benchmark.
#include <benchmark/benchmark.h>

#include <vector>

#include "common/rng.hpp"
#include "svm/kernel.hpp"

namespace {

using ls::KernelParams;
using ls::KernelType;

void run_kernel(benchmark::State& state, KernelType type) {
  KernelParams p;
  p.type = type;
  p.gamma = 0.5;
  p.coef0 = 1.0;
  p.degree = 3;

  ls::Rng rng(0x7AB1E1);
  const std::size_t n = 4096;
  std::vector<double> dots(n), norms(n);
  for (std::size_t i = 0; i < n; ++i) {
    dots[i] = rng.uniform(-1.0, 1.0);
    norms[i] = rng.uniform(0.0, 2.0);
  }
  const double norm_i = 1.3;

  for (auto _ : state) {
    double acc = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      acc += ls::kernel_from_dot(p, dots[j], norm_i, norms[j]);
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}

void BM_LinearKernel(benchmark::State& s) { run_kernel(s, KernelType::kLinear); }
void BM_PolynomialKernel(benchmark::State& s) {
  run_kernel(s, KernelType::kPolynomial);
}
void BM_GaussianKernel(benchmark::State& s) {
  run_kernel(s, KernelType::kGaussian);
}
void BM_SigmoidKernel(benchmark::State& s) {
  run_kernel(s, KernelType::kSigmoid);
}

BENCHMARK(BM_LinearKernel);
BENCHMARK(BM_PolynomialKernel);
BENCHMARK(BM_GaussianKernel);
BENCHMARK(BM_SigmoidKernel);

}  // namespace

BENCHMARK_MAIN();
