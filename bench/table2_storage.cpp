// Table II reproduction: storage space comparison for the five formats —
// the analytic Min/Max formulas plus measured storage for representative
// matrices at three density regimes (validating the formulas against the
// concrete containers).
#include <cstdio>

#include "bench_common.hpp"
#include "common/csv.hpp"
#include "data/synthetic.hpp"
#include "formats/any_matrix.hpp"
#include "formats/storage.hpp"

int main() {
  using namespace ls;
  bench::banner("Table II", "storage space comparison for various formats");

  const index_t m = 1024, n = 768;
  std::printf("Analytic bounds for an M x N = %lld x %lld matrix (element "
              "words):\n\n", static_cast<long long>(m),
              static_cast<long long>(n));

  Table bounds({"Format", "Min (formula)", "Max (formula)"});
  for (Format f : kAllFormats) {
    bounds.add_row({std::string(format_name(f)),
                    std::to_string(storage_words_min(f, m, n)),
                    std::to_string(storage_words_max(f, m, n))});
  }
  std::printf("%s\n", bounds.str().c_str());

  std::printf("Measured storage (bytes) at three density regimes:\n\n");
  Rng rng(0x7AB2);
  struct Regime {
    const char* name;
    CooMatrix coo;
  };
  std::vector<index_t> sparse_lens(static_cast<std::size_t>(m), 4);
  std::vector<Regime> regimes;
  regimes.push_back({"sparse scattered (adim 4)",
                     make_random_sparse(m, n, sparse_lens, rng)});
  regimes.push_back({"banded (8 diagonals)",
                     make_banded(m, n, {0, 1, -1, 2, -2, 3, -3, 4}, 1.0,
                                 rng)});
  regimes.push_back({"fully dense", make_dense_matrix(256, 192, rng)});

  Table measured({"Matrix", "DEN", "CSR", "COO", "ELL", "DIA"});
  CsvWriter csv(bench::csv_path("table2"),
                {"matrix", "format", "bytes", "stored_elements"});
  for (const Regime& r : regimes) {
    std::vector<std::string> row = {r.name};
    for (Format f : {Format::kDEN, Format::kCSR, Format::kCOO, Format::kELL,
                     Format::kDIA}) {
      const AnyMatrix mat = AnyMatrix::from_coo(r.coo, f);
      row.push_back(fmt_bytes(static_cast<double>(mat.storage_bytes())));
      csv.write_row({r.name, std::string(format_name(f)),
                     std::to_string(mat.storage_bytes()),
                     std::to_string(mat.stored_elements())});
    }
    measured.add_row(row);
  }
  std::printf("%s\n", measured.str().c_str());
  std::printf("Shape check (paper Table II): COO/CSR smallest when "
              "scattered-sparse, DIA\nsmallest when banded, DEN smallest "
              "when fully dense (2-3x less than the\nindex-carrying "
              "formats).\n");
  bench::finish(csv, "table2");
  return 0;
}
