// Table III reproduction: per-dataset speedup of every format over that
// dataset's worst format, side by side with the paper's Ivy Bridge numbers.
#include <cstdio>

#include "bench_common.hpp"
#include "common/csv.hpp"
#include "data/profiles.hpp"

int main() {
  using namespace ls;
  bench::banner("Table III", "performance comparison among formats "
                             "(speedup over each dataset's worst format)");

  // Paper Table III values for reference printing (ELL CSR COO DEN DIA).
  struct PaperRow {
    const char* name;
    double v[5];
  };
  const PaperRow paper_rows[] = {
      {"adult", {14, 13, 8.6, 13, 1.0}},
      {"aloi", {2.8, 6.6, 1.0, 3.8, 1.7}},
      {"mnist", {1.0, 4.8, 5.1, 1.5, 1.1}},
      {"gisette", {1.9, 1.9, 1.2, 3.7, 1.0}},
      {"trefethen", {3.1, 3.6, 3.9, 1.0, 4.1}},
  };

  KernelParams kernel;
  Table table({"Dataset", "ELL", "CSR", "COO", "DEN", "DIA",
               "paper (ELL/CSR/COO/DEN/DIA)"});
  CsvWriter csv(bench::csv_path("table3"),
                {"dataset", "format", "speedup_ours", "speedup_paper"});

  const Format order[] = {Format::kELL, Format::kCSR, Format::kCOO,
                          Format::kDEN, Format::kDIA};
  for (const PaperRow& pr : paper_rows) {
    const Dataset ds = profile_by_name(pr.name).generate();
    std::array<double, kNumFormats> secs{};
    double worst = 0.0;
    for (Format f : kAllFormats) {
      secs[static_cast<std::size_t>(f)] =
          bench::smo_row_seconds(ds.X, f, kernel);
      worst = std::max(worst, secs[static_cast<std::size_t>(f)]);
    }
    std::vector<std::string> row = {pr.name};
    std::string paper_cell;
    for (int k = 0; k < 5; ++k) {
      const double sp = worst / secs[static_cast<std::size_t>(order[k])];
      row.push_back(fmt_speedup(sp));
      paper_cell += fmt_speedup(pr.v[k]);
      if (k != 4) paper_cell += "/";
      csv.write_row({pr.name, std::string(format_name(order[k])),
                     fmt_double(sp, 3), fmt_double(pr.v[k], 2)});
    }
    row.push_back(paper_cell);
    table.add_row(row);
  }
  std::printf("%s\n", table.str().c_str());
  std::printf("Shape claim: best-over-worst spans several x per dataset and "
              "the winning\nformat differs per dataset (paper: 3.7x-14.3x "
              "spans on Ivy Bridge + KNC;\nexact winners are architecture-"
              "dependent, which is the paper's motivation\nfor *runtime* "
              "scheduling).\n");
  bench::finish(csv, "table3");
  return 0;
}
