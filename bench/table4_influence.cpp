// Table IV reproduction: the sign of the correlation between each
// influencing parameter and per-format SMSV efficiency.
//
// For each (parameter, format) pair the paper marks +, -, +/- or x. We
// regenerate the controlled sweeps (one parameter varied, the rest held),
// measure throughput (nonzeros processed per second), and report the
// Pearson correlation, checking the paper's signed cells.
#include <cstdio>

#include "bench_common.hpp"
#include "common/csv.hpp"
#include "common/stats.hpp"
#include "data/features.hpp"
#include "data/synthetic.hpp"

int main() {
  using namespace ls;
  bench::banner("Table IV", "influencing-parameter correlation signs");

  Rng rng(0x7AB4);
  CsvWriter csv(bench::csv_path("table4"),
                {"sweep", "format", "pearson", "effect_size", "paper_sign"});
  Table table({"Sweep", "Format", "Pearson", "effect (max/min tp)", "paper",
               "agree?"});

  // Throughput = useful nonzeros per second (higher is better).
  auto throughput = [&](const CooMatrix& coo, Format f) {
    return static_cast<double>(coo.nnz()) / bench::smsv_seconds(coo, f);
  };

  // Agreement uses both the correlation sign and the effect size: the
  // paper's 'x' means the parameter has no *decisive* effect on that
  // format (small effect here), while '+'/'-' cells are order-of-magnitude
  // effects (padding, density). Residual small-but-nonzero correlations on
  // 'x' cells are microarchitecture-specific (see the footnote).
  auto record = [&](const std::string& sweep, Format f,
                    const std::vector<double>& xs,
                    const std::vector<double>& ys, char paper_sign) {
    const double r = pearson(xs, ys);
    const double effect = max_value(ys) / min_value(ys);
    const bool agree = (paper_sign == '-' && r < -0.3 && effect >= 1.5) ||
                       (paper_sign == '+' && r > 0.3 && effect >= 1.5) ||
                       (paper_sign == 'x' && effect < 3.0);
    table.add_row({sweep, std::string(format_name(f)), fmt_double(r, 2),
                   fmt_double(effect, 1) + "x", std::string(1, paper_sign),
                   agree ? "yes" : "NO"});
    csv.write_row({sweep, std::string(format_name(f)), fmt_double(r, 4),
                   fmt_double(effect, 3), std::string(1, paper_sign)});
  };

  // Sweep 1: ndig at fixed M, N, nnz — paper: DIA '-', others 'x'.
  {
    std::vector<double> ndigs, dia_tp, csr_tp;
    for (index_t d = 4; d <= 1024; d *= 4) {
      const CooMatrix coo = make_diag_spread(2048, 2048, 8192, d, rng);
      ndigs.push_back(static_cast<double>(d));
      dia_tp.push_back(throughput(coo, Format::kDIA));
      csr_tp.push_back(throughput(coo, Format::kCSR));
    }
    record("ndig", Format::kDIA, ndigs, dia_tp, '-');
    record("ndig", Format::kCSR, ndigs, csr_tp, 'x');
  }

  // Sweep 2: mdim at fixed M, N, nnz — paper: ELL '-', COO 'x'.
  // nnz is large enough that COO's fixed per-multiply overheads (output
  // zeroing) amortise away and only the mdim-driven ELL padding remains.
  {
    std::vector<double> mdims, ell_tp, coo_tp;
    for (index_t d = 32; d <= 2048; d *= 4) {
      const CooMatrix coo = make_mdim_spread(2048, 2048, 65536, d, rng);
      mdims.push_back(static_cast<double>(d));
      ell_tp.push_back(throughput(coo, Format::kELL));
      coo_tp.push_back(throughput(coo, Format::kCOO));
    }
    record("mdim", Format::kELL, mdims, ell_tp, '-');
    record("mdim", Format::kCOO, mdims, coo_tp, 'x');
  }

  // Sweep 3: density at fixed M, N — paper: DEN '+'.
  {
    std::vector<double> densities, den_tp;
    for (double target : {0.02, 0.08, 0.3, 1.0}) {
      const index_t per_row = std::max<index_t>(1,
          static_cast<index_t>(target * 512));
      std::vector<index_t> lens(1024, per_row);
      const CooMatrix coo = make_random_sparse(1024, 512, lens, rng);
      densities.push_back(extract_features(coo).density);
      den_tp.push_back(throughput(coo, Format::kDEN));
    }
    record("density", Format::kDEN, densities, den_tp, '+');
  }

  // Sweep 4: adim (nnz per row) at fixed M, N — paper: ELL '+', DEN '+'.
  // Wider matrix so the per-multiply fixed costs (output zeroing, lane
  // setup) are visible at low adim and amortise as adim grows.
  {
    std::vector<double> adims, ell_tp, den_tp;
    for (index_t per_row : {4, 16, 64, 256, 1024}) {
      std::vector<index_t> lens(2048, per_row);
      const CooMatrix coo = make_random_sparse(2048, 2048, lens, rng);
      adims.push_back(static_cast<double>(per_row));
      ell_tp.push_back(throughput(coo, Format::kELL));
      den_tp.push_back(throughput(coo, Format::kDEN));
    }
    record("adim", Format::kELL, adims, ell_tp, '+');
    record("adim", Format::kDEN, adims, den_tp, '+');
  }

  // Sweep 5: vdim at fixed M, N, nnz — paper: ELL '-', CSR '-', COO '+'.
  // (CSR '-' and COO '+' are many-core load-balance effects; on one thread
  // they flatten toward 'x'. We report the 61-thread simulated makespan
  // correlation for those two in fig4; here the measured single-thread ELL
  // padding effect must still show '-'.)
  {
    std::vector<double> vdims, ell_tp;
    for (double share : {0.0, 0.25, 0.5, 0.75}) {
      const CooMatrix coo = make_vdim_spread(2048, 2048, 32768, 4, share,
                                             rng);
      vdims.push_back(extract_features(coo).vdim);
      ell_tp.push_back(throughput(coo, Format::kELL));
    }
    record("vdim", Format::kELL, vdims, ell_tp, '-');
  }

  std::printf("%s\n", table.str().c_str());
  std::printf(
      "Legend: '+' efficiency rises with the parameter, '-' falls, 'x' "
      "uncorrelated\n(paper Table IV). Agreement = matching sign with a "
      ">=1.5x effect, or a <3x\neffect for 'x' cells.\n\n"
      "Architecture notes for residual disagreements:\n"
      " * ELL-adim: the paper's '+' reflects SIMD-lane amortisation on "
      "Xeon Phi; on a\n   cache-bound scalar CPU the growing working set "
      "can flip the sign mildly.\n"
      " * COO-mdim: long same-row runs serialise the accumulator through "
      "memory on\n   out-of-order CPUs (a <2x effect) — invisible on the "
      "paper's platform.\n");
  bench::finish(csv, "table4");
  return 0;
}
