// Table V reproduction: the nine influencing parameters of all eleven
// datasets — the paper's published statistics next to the statistics
// extracted from our synthetic stand-ins (at generation scale).
#include <cstdio>

#include "bench_common.hpp"
#include "common/csv.hpp"
#include "data/profiles.hpp"

int main() {
  using namespace ls;
  bench::banner("Table V", "evaluated datasets: paper statistics vs "
                           "extracted statistics of the synthetic stand-ins");

  Table table({"Dataset", "Who", "M", "N", "nnz", "ndig", "dnnz", "mdim",
               "adim", "vdim", "density"});
  CsvWriter csv(bench::csv_path("table5"),
                {"dataset", "source", "m", "n", "nnz", "ndig", "dnnz",
                 "mdim", "adim", "vdim", "density"});

  auto add = [&](const std::string& name, const char* who,
                 const MatrixFeatures& f, bool scaled) {
    std::string label = name;
    if (scaled && std::string(who) == "ours") label += " (scaled)";
    table.add_row({label, who, std::to_string(f.m), std::to_string(f.n),
                   std::to_string(f.nnz), std::to_string(f.ndig),
                   fmt_double(f.dnnz, 2), std::to_string(f.mdim),
                   fmt_double(f.adim, 2), fmt_double(f.vdim, 3),
                   fmt_double(f.density, 3)});
    csv.write_row({name, who, std::to_string(f.m), std::to_string(f.n),
                   std::to_string(f.nnz), std::to_string(f.ndig),
                   fmt_double(f.dnnz, 3), std::to_string(f.mdim),
                   fmt_double(f.adim, 3), fmt_double(f.vdim, 4),
                   fmt_double(f.density, 4)});
  };

  for (const DatasetProfile& p : all_profiles()) {
    add(p.name, "paper", p.paper, p.scaled);
    const Dataset ds = p.generate();
    add(p.name, "ours", extract_features(ds.X), p.scaled);
    table.add_separator();
  }
  std::printf("%s\n", table.str().c_str());
  std::printf("Scaled profiles (gisette, sector, epsilon, dna) keep the "
              "aspect ratio and\ndensity of the original; see DESIGN.md "
              "section 3 for the substitution rule.\n");
  bench::finish(csv, "table5");
  return 0;
}
