// Table VI reproduction: effects of the adaptive system. For each of the
// nine evaluated datasets: the measured worst format, the scheduler's
// selection, the average speedup of the selection over the other four
// formats and the maximum speedup over the worst format — next to the
// paper's selections and speedups.
#include <cstdio>

#include "bench_common.hpp"
#include "common/csv.hpp"
#include "common/stats.hpp"
#include "data/profiles.hpp"
#include "sched/scheduler.hpp"

int main() {
  using namespace ls;
  bench::banner("Table VI", "effects of the adaptive system");

  KernelParams kernel;
  SchedulerOptions sched;
  sched.policy = SchedulePolicy::kEmpirical;
  const LayoutScheduler scheduler(sched);

  Table table({"Dataset", "Worst", "Selection", "Avg & Max speedup",
               "paper: worst", "paper: sel", "paper: avg & max"});
  CsvWriter csv(bench::csv_path("table6"),
                {"dataset", "worst", "selection", "avg_speedup",
                 "max_speedup", "paper_selection", "paper_avg", "paper_max",
                 "selection_optimal"});

  std::vector<double> avg_speedups, max_speedups;
  int optimal_picks = 0, total = 0;
  for (const DatasetProfile& profile : evaluated_profiles()) {
    const Dataset ds = profile.generate();

    // Measure every format's SMO-row cost.
    std::array<double, kNumFormats> secs{};
    for (Format f : kAllFormats) {
      secs[static_cast<std::size_t>(f)] =
          bench::smo_row_seconds(ds.X, f, kernel);
    }
    Format worst = Format::kCSR, best = Format::kCSR;
    for (Format f : kAllFormats) {
      if (secs[static_cast<std::size_t>(f)] >
          secs[static_cast<std::size_t>(worst)]) {
        worst = f;
      }
      if (secs[static_cast<std::size_t>(f)] <
          secs[static_cast<std::size_t>(best)]) {
        best = f;
      }
    }

    // The scheduler's pick.
    const ScheduleDecision decision = scheduler.decide(ds.X);
    const double sel_secs = secs[static_cast<std::size_t>(decision.format)];

    double others_sum = 0.0;
    for (Format f : kAllFormats) {
      if (f != decision.format) {
        others_sum += secs[static_cast<std::size_t>(f)] / sel_secs;
      }
    }
    const double avg_speedup = others_sum / (kNumFormats - 1);
    const double max_speedup =
        secs[static_cast<std::size_t>(worst)] / sel_secs;
    avg_speedups.push_back(avg_speedup);
    max_speedups.push_back(max_speedup);
    const bool optimal = decision.format == best;
    optimal_picks += optimal;
    ++total;

    const auto& ref = profile.reference;
    table.add_row({profile.name, std::string(format_name(worst)),
                   std::string(format_name(decision.format)),
                   fmt_speedup(avg_speedup) + " & " + fmt_speedup(max_speedup),
                   std::string(format_name(*ref.worst)),
                   std::string(format_name(*ref.selection)),
                   fmt_speedup(ref.avg_speedup) + " & " +
                       fmt_speedup(ref.max_speedup)});
    csv.write_row({profile.name, std::string(format_name(worst)),
                   std::string(format_name(decision.format)),
                   fmt_double(avg_speedup, 3), fmt_double(max_speedup, 3),
                   std::string(format_name(*ref.selection)),
                   fmt_double(ref.avg_speedup, 2),
                   fmt_double(ref.max_speedup, 2), optimal ? "1" : "0"});
  }
  std::printf("%s\n", table.str().c_str());
  std::printf("Adaptive-over-worst speedup: %.1fx average, %.1fx max "
              "(paper: 6.8x average,\nrange 1.7x-16.2x over the worst "
              "format).\n", mean(max_speedups), max_value(max_speedups));
  std::printf("Scheduler picked the measured-optimal format on %d/%d "
              "datasets.\n", optimal_picks, total);
  bench::finish(csv, "table6");
  return 0;
}
