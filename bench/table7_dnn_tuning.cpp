// Table VII reproduction: full rows (B, eta, mu, iterations, epochs, time,
// price, speedup, price/speedup) for the eight methods.
#include <cstdio>

#include "bench_common.hpp"
#include "common/csv.hpp"
#include "table7_rows.hpp"

int main() {
  using namespace ls;
  bench::banner("Table VII", "time and speedup for 0.8 CIFAR-10 accuracy");

  const auto rows = bench::table_vii_rows();
  const double base = rows.front().seconds;

  Table table({"Method", "B", "eta", "mu", "Iterations", "Epochs", "Time (s)",
               "Price ($)", "Speedup", "Price/Speedup"});
  CsvWriter csv(bench::csv_path("table7"),
                {"method", "batch", "eta", "mu", "iterations", "epochs",
                 "seconds", "price", "speedup", "price_per_speedup"});
  for (const auto& r : rows) {
    const double sp = speedup_vs_baseline(r.seconds, base);
    const double pps = price_per_speedup(r.price, sp);
    table.add_row({r.method, std::to_string(r.config.batch),
                   fmt_double(r.config.eta, 3), fmt_double(r.config.mu, 2),
                   std::to_string(r.iterations), fmt_double(r.epochs, 0),
                   fmt_double(r.seconds, 0), fmt_double(r.price, 0),
                   fmt_speedup(sp), fmt_double(pps, 0)});
    csv.write_row({r.method, std::to_string(r.config.batch),
                   fmt_double(r.config.eta, 4), fmt_double(r.config.mu, 2),
                   std::to_string(r.iterations), fmt_double(r.epochs, 1),
                   fmt_double(r.seconds, 1), fmt_double(r.price, 0),
                   fmt_double(sp, 2), fmt_double(pps, 1)});
  }
  std::printf("%s\n", table.str().c_str());
  std::printf(
      "Notes vs the paper's Table VII (soundness caveats, see DESIGN.md):\n"
      " * The paper's \"Tune B\" row prints 387 epochs, but 30,000 iterations"
      " x 512\n   batch / 50,000 samples = 307.2 epochs; we print the"
      " computed value.\n"
      " * Our times come from the calibrated device model (t100 anchored to"
      " the\n   paper's B=100 rows; DGX saturation anchored to its B=512"
      " row).\n");
  bench::finish(csv, "table7");
  return 0;
}
