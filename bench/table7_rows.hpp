// The eight Table VII methods, evaluated on the hardware + convergence
// models. Shared by fig5 (time), fig6 (price per speedup) and table7 (full
// rows).
#pragma once

#include <string>
#include <vector>

#include "dnn/convergence.hpp"
#include "hw/autotune.hpp"
#include "hw/device.hpp"

namespace ls::bench {

struct TableVIIRow {
  std::string method;
  DnnConfig config;
  index_t iterations = 0;
  double epochs = 0.0;
  double seconds = 0.0;
  double price = 0.0;
  double paper_seconds = 0.0;  ///< Table VII "Time (s)" column
};

/// Builds all eight rows: the five platforms at Caffe defaults plus the
/// three DGX tuning stages.
inline std::vector<TableVIIRow> table_vii_rows() {
  std::vector<TableVIIRow> rows;
  const DnnConfig defaults{100, 0.001, 0.90};

  const struct {
    const char* id;
    double paper_seconds;
  } platforms[] = {{"cpu8", 29427}, {"knl", 4922}, {"haswell", 1997},
                   {"p100", 503},   {"dgx", 387}};
  for (const auto& p : platforms) {
    const DeviceSpec& dev = device_by_id(p.id);
    const auto eval = evaluate_config(dev, defaults);
    TableVIIRow row;
    row.method = dev.display;
    row.config = defaults;
    row.iterations = eval->iterations;
    row.epochs = eval->epochs;
    row.seconds = eval->seconds;
    row.price = dev.price_usd;
    row.paper_seconds = p.paper_seconds;
    rows.push_back(row);
  }

  const DeviceSpec& dgx = device_by_id("dgx");
  const auto stages = tune_sequential(dgx, defaults);
  const char* stage_names[] = {"Tune B on DGX station",
                               "Tune eta on DGX station",
                               "Tune M on DGX station"};
  const double stage_paper[] = {361, 138, 83};
  for (std::size_t s = 0; s < stages.size(); ++s) {
    TableVIIRow row;
    row.method = stage_names[s];
    row.config = stages[s].config;
    row.iterations = stages[s].iterations;
    row.epochs = stages[s].epochs;
    row.seconds = stages[s].seconds;
    row.price = dgx.price_usd;
    row.paper_seconds = stage_paper[s];
    rows.push_back(row);
  }
  return rows;
}

}  // namespace ls::bench
