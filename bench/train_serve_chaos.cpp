// train_serve_chaos — the continuous train-and-serve loop under fire.
//
// The question: does the closed loop (ingest -> windowed retrain ->
// checkpointed SMO -> atomic model publish -> live reload into a serving
// engine) survive the failures it was designed for, with zero lost
// requests and strictly monotone served model content?
//
// Four phases, one verdict:
//
//   A  bootstrap    stream the first examples into a ContinuousTrainer,
//                   train once, host the accepted model file in a
//                   ServeEngine behind a real unix-socket ServeServer;
//   B  live loop    predict-burst threads hammer the socket while the
//                   ingest stream keeps flowing and the trainer's cadence
//                   thread retrains and publishes reloads into the same
//                   socket mid-burst. A monitor thread samples the served
//                   (version, content generation) pair continuously.
//                   Asserts: zero errored/lost predicts, >=1 reload landed
//                   during the burst, and the sampled pairs never go
//                   backwards;
//   C  crash+resume a checkpoint-save failpoint kills a retrain mid-save.
//                   The trainer object is destroyed ("process death") and
//                   a fresh one replays the identical stream — the ids
//                   sidecar matches, so the solve resumes from the last
//                   CRC-valid checkpoint instead of starting cold;
//   D  fairness     weighted-fair batcher, one worker, slowed scoring:
//                   tenant A floods 20x tenant B's traffic up front,
//                   tenant B's paced requests must still meet their
//                   latency budget (no starvation in either direction);
//   E  durable      a journaling trainer is SIGKILLed mid-ingest (forked
//      ingest       child; in-process stand-in under TSan, where fork is
//                   unsafe). A fresh trainer on the same journal replays:
//                   zero acked examples lost, the rebuilt window's content
//                   digest matches a no-crash control run, and retried
//                   ingests of already-acked ids are absorbed as
//                   duplicates with the digest unchanged;
//   F  disk full    every journal append fails (wal.append failpoint =
//                   ENOSPC stand-in). Ingest keeps acking in a counted
//                   degraded memory-only mode — no crash — and once
//                   writes succeed the journal re-arms by rewriting
//                   itself from the live window, proven by a restart
//                   replaying everything including the degraded-era
//                   examples.
//
// Exit is nonzero on any failed assertion; scripts/check.sh runs this
// under a timeout, plain and under TSan.
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <csignal>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "common/cli.hpp"
#include "common/csv.hpp"
#include "common/failpoint.hpp"
#include "common/fs_atomic.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "serve/client.hpp"
#include "serve/engine.hpp"
#include "serve/server.hpp"
#include "svm/serialize.hpp"
#include "train/continuous_trainer.hpp"

namespace {

using ls::index_t;
using ls::real_t;

int g_failures = 0;

#define EXPECT_MSG(cond, ...)                  \
  do {                                         \
    if (!(cond)) {                             \
      ++g_failures;                            \
      std::printf("FAIL: " __VA_ARGS__);       \
      std::printf("  [%s]\n", #cond);          \
    }                                          \
  } while (0)

struct Example {
  ls::SparseVector x;
  real_t label;
};

/// Deterministic two-class stream. The clusters overlap on purpose: a
/// noisy margin keeps many support vectors active, so the SMO solve runs
/// long enough to write several mid-solve checkpoints (phase C needs at
/// least three saves before the injected failure).
std::vector<Example> make_stream(std::size_t n, index_t d,
                                 std::uint64_t seed) {
  ls::Rng rng(seed);
  std::vector<Example> out;
  out.reserve(n);
  for (std::size_t r = 0; r < n; ++r) {
    const real_t label = rng.bernoulli(0.5) ? 1.0 : -1.0;
    std::vector<index_t> idx;
    std::vector<real_t> val;
    for (index_t c = 0; c < d; ++c) {
      if (!rng.bernoulli(0.5)) continue;
      idx.push_back(c);
      val.push_back(rng.normal() + 0.3 * label);
    }
    if (idx.empty()) {
      idx.push_back(0);
      val.push_back(label);
    }
    out.push_back({ls::SparseVector(std::move(idx), std::move(val)), label});
  }
  return out;
}

void ingest_all(ls::train::ContinuousTrainer& trainer,
                const std::string& name, const std::vector<Example>& stream,
                std::size_t from, std::size_t to) {
  for (std::size_t r = from; r < to && r < stream.size(); ++r) {
    std::string message;
    const ls::serve::Status s =
        trainer.ingest(name, stream[r].x, stream[r].label, &message);
    EXPECT_MSG(s == ls::serve::Status::kOk, "ingest %zu rejected: %s %s\n",
               r, ls::serve::status_name(s), message.c_str());
  }
}

double percentile(std::vector<double>& ms, double p) {
  if (ms.empty()) return 0.0;
  std::sort(ms.begin(), ms.end());
  return ms[static_cast<std::size_t>(p * static_cast<double>(ms.size() - 1))];
}

int run(int argc, char** argv) {
  ls::CliParser cli("train_serve_chaos",
                    "Chaos soak of the continuous train-and-serve loop");
  cli.add_flag("features", "24", "stream dimensionality");
  cli.add_flag("bootstrap", "128", "examples before the first train");
  cli.add_flag("stream", "600", "examples streamed during the burst");
  cli.add_flag("concurrency", "4", "predict-burst client threads");
  cli.add_flag("publishes", "2", "reloads that must land mid-burst");
  cli.add_flag("flood", "800", "tenant A requests in the fairness phase");
  cli.add_flag("paced", "40", "tenant B requests in the fairness phase");
  cli.add_flag("b-p95-budget-ms", "400",
               "tenant B p95 bound in the fairness phase");
  cli.add_flag("seed", "42", "stream RNG seed");
  cli.add_flag("kill", "auto",
               "phase E kill mode: fork (real SIGKILL) | inproc (destroy "
               "the trainer object) | auto (fork, except under TSan)");
  if (!cli.parse(argc, argv)) return 0;

  const auto d = static_cast<index_t>(cli.get_int("features"));
  const auto bootstrap = static_cast<std::size_t>(cli.get_int("bootstrap"));
  const auto stream_n = static_cast<std::size_t>(cli.get_int("stream"));
  const int concurrency =
      std::max(1, static_cast<int>(cli.get_int("concurrency")));
  const auto want_publishes =
      static_cast<std::int64_t>(cli.get_int("publishes"));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  const auto dir =
      std::filesystem::temp_directory_path() /
      ("ls_train_serve_chaos." + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  const std::string model_path = (dir / "stream_model.txt").string();
  const std::string socket_path = (dir / "serve.sock").string();

  // ---- Phase A: bootstrap the loop -------------------------------------
  std::printf("[A] bootstrap: %zu examples -> first model\n", bootstrap);
  const std::vector<Example> stream =
      make_stream(bootstrap + stream_n, d, seed);

  ls::train::TrainerOptions topts;
  topts.svm.kernel.type = ls::KernelType::kGaussian;
  topts.svm.kernel.gamma = 0.5;
  topts.svm.c = 4.0;
  topts.svm.tolerance = 1e-3;
  topts.layout = ls::Format::kCSR;
  topts.retrain_interval_ms = 50.0;
  topts.min_new_examples = 10;
  topts.checkpoint_interval = 64;
  topts.publish_unix = socket_path;
  topts.publish_timeout_ms = 2000.0;

  auto trainer = std::make_unique<ls::train::ContinuousTrainer>(topts);
  {
    ls::train::TrainerModelConfig cfg;
    cfg.name = "stream";
    cfg.model_path = model_path;
    cfg.window_capacity = 512;
    trainer->add_model(cfg);
  }
  ingest_all(*trainer, "stream", stream, 0, bootstrap);
  // The serve tier is not up yet, so this first publish fails — that is
  // the expected cold-start order (trainer first, then serve), and the
  // failure is counted, not fatal.
  EXPECT_MSG(trainer->train_once("stream"), "bootstrap train failed\n");
  EXPECT_MSG(ls::file_exists(model_path),
             "bootstrap produced no model file\n");

  ls::serve::ServeOptions sopts;
  sopts.workers = 2;
  sopts.batcher.max_batch = 16;
  sopts.batcher.deadline_ms = 1.0;
  sopts.batcher.max_queue = 4096;
  auto engine = std::make_unique<ls::serve::ServeEngine>(sopts);
  engine->load_model("stream", model_path);
  engine->start();
  ls::serve::ServerOptions lopts;
  lopts.unix_path = socket_path;
  auto server = std::make_unique<ls::serve::ServeServer>(*engine, lopts);
  server->start();

  // ---- Phase B: predict burst vs live retrain-and-publish --------------
  std::printf("[B] burst: %d clients vs cadence retrains publishing "
              "reloads into the same socket\n", concurrency);
  const std::int64_t gen0 = engine->model("stream")->content_gen;
  std::atomic<bool> burst_on{true};
  std::atomic<bool> monotone{true};
  std::atomic<std::int64_t> last_seen_gen{0};

  // Monitor: the served (version, content generation) pair must never go
  // backwards while reloads land mid-burst.
  std::thread monitor([&] {
    std::int64_t last_version = 0, last_gen = 0;
    while (burst_on.load(std::memory_order_acquire)) {
      const auto m = engine->model("stream");
      if (m) {
        if (m->version < last_version || m->content_gen < last_gen) {
          monotone.store(false, std::memory_order_release);
        }
        last_version = m->version;
        last_gen = m->content_gen;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    last_seen_gen.store(last_gen, std::memory_order_release);
  });

  std::thread ingester([&] {
    for (std::size_t r = bootstrap; r < stream.size(); ++r) {
      (void)trainer->ingest("stream", stream[r].x, stream[r].label);
      if (r % 8 == 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
  });
  trainer->start();

  struct BurstCounts {
    std::size_t ok = 0, shed = 0, errors = 0, lost = 0;
    std::vector<double> latencies_ms;
  };
  std::vector<BurstCounts> burst(static_cast<std::size_t>(concurrency));
  std::vector<std::thread> clients;
  for (int t = 0; t < concurrency; ++t) {
    clients.emplace_back([&, t] {
      BurstCounts& mine = burst[static_cast<std::size_t>(t)];
      ls::serve::ClientOptions copts;
      copts.max_retries = 5;
      copts.request_timeout_ms = 2000.0;
      copts.jitter_seed ^= static_cast<std::uint64_t>(t + 1) * 0x9E37ULL;
      try {
        ls::serve::ServeClient client =
            ls::serve::ServeClient::connect_unix(socket_path, copts);
        std::size_t r = static_cast<std::size_t>(t);
        while (burst_on.load(std::memory_order_acquire)) {
          const ls::Timer timer;
          try {
            const ls::serve::PredictResult res =
                client.predict("stream", stream[r % stream.size()].x);
            mine.latencies_ms.push_back(timer.millis());
            if (res.status == ls::serve::Status::kOk) {
              ++mine.ok;
            } else if (res.status == ls::serve::Status::kOverloaded) {
              ++mine.shed;
            } else {
              ++mine.errors;
            }
          } catch (const std::exception&) {
            ++mine.lost;
          }
          r += static_cast<std::size_t>(concurrency);
        }
      } catch (const std::exception&) {
        ++mine.lost;  // could not even connect
      }
    });
  }

  // Run the burst until enough publishes landed (each one is a live
  // reload arriving through the same socket the clients hammer).
  const ls::Timer burst_wall;
  while (trainer->model_stats("stream").publishes_total < want_publishes &&
         burst_wall.seconds() < 30.0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ingester.join();
  // One more beat so a reload that just landed overlaps live predicts.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  burst_on.store(false, std::memory_order_release);
  for (std::thread& th : clients) th.join();
  monitor.join();
  trainer->stop();

  std::size_t ok = 0, shed = 0, errors = 0, lost = 0;
  std::vector<double> all_ms;
  for (const BurstCounts& b : burst) {
    ok += b.ok;
    shed += b.shed;
    errors += b.errors;
    lost += b.lost;
    all_ms.insert(all_ms.end(), b.latencies_ms.begin(),
                  b.latencies_ms.end());
  }
  const ls::train::TrainerModelStats tstats =
      trainer->model_stats("stream");
  std::printf("[B] predicts ok=%zu shed=%zu errors=%zu lost=%zu  "
              "trains=%lld publishes=%lld publish_failures=%lld\n",
              ok, shed, errors, lost,
              static_cast<long long>(tstats.trains_total),
              static_cast<long long>(tstats.publishes_total),
              static_cast<long long>(tstats.publish_failures_total));
  EXPECT_MSG(errors == 0, "burst predicts errored: %zu\n", errors);
  EXPECT_MSG(lost == 0, "burst predicts lost: %zu\n", lost);
  EXPECT_MSG(ok > 0, "burst scored nothing\n");
  EXPECT_MSG(tstats.publishes_total >= want_publishes,
             "only %lld publishes landed (want >= %lld)\n",
             static_cast<long long>(tstats.publishes_total),
             static_cast<long long>(want_publishes));
  EXPECT_MSG(monotone.load(), "served version/generation went backwards\n");
  EXPECT_MSG(last_seen_gen.load() > gen0,
             "no reload landed during the burst (gen %lld -> %lld)\n",
             static_cast<long long>(gen0),
             static_cast<long long>(last_seen_gen.load()));

  // ---- Phase C: kill mid-save, restart, resume from checkpoint ---------
  std::printf("[C] crash the trainer mid-checkpoint-save, restart, "
              "replay, resume\n");
  ls::train::TrainerOptions copts_c;
  copts_c.svm.kernel.type = ls::KernelType::kGaussian;
  copts_c.svm.kernel.gamma = 0.5;
  copts_c.svm.c = 8.0;
  copts_c.svm.tolerance = 1e-4;
  copts_c.checkpoint_interval = 5;  // several saves before the kill
  const std::string resume_path = (dir / "resume_model.txt").string();
  const std::string control_path = (dir / "control_model.txt").string();
  const std::string ckpt_path = resume_path + ".ckpt";
  const std::vector<Example> stream_c = make_stream(300, d, seed + 1);

  const auto add_resume_model = [&](ls::train::ContinuousTrainer& t,
                                    const std::string& path) {
    ls::train::TrainerModelConfig cfg;
    cfg.name = "resume";
    cfg.model_path = path;
    cfg.window_capacity = 512;
    t.add_model(cfg);
  };

  index_t cold_iterations = 0;
  {
    ls::train::ContinuousTrainer control(copts_c);
    add_resume_model(control, control_path);
    ingest_all(control, "resume", stream_c, 0, stream_c.size());
    EXPECT_MSG(control.train_once("resume"), "control solve failed\n");
    cold_iterations = control.model_stats("resume").last_iterations;
  }

  {
    ls::train::ContinuousTrainer victim(copts_c);
    add_resume_model(victim, resume_path);
    ingest_all(victim, "resume", stream_c, 0, stream_c.size());
    ls::failpoint::Spec spec;
    spec.action = ls::failpoint::Action::kError;
    spec.skip = 2;   // let two checkpoint saves land, kill the third
    spec.limit = 1;
    ls::failpoint::Scoped fp("svm.checkpoint.save", spec);
    EXPECT_MSG(!victim.train_once("resume"),
               "train survived the mid-save kill\n");
    EXPECT_MSG(ls::failpoint::trigger_count("svm.checkpoint.save") == 1,
               "checkpoint-save failpoint never fired (solve too short?)\n");
    EXPECT_MSG(victim.model_stats("resume").train_failures_total == 1,
               "mid-save kill not counted as a train failure\n");
    EXPECT_MSG(ls::file_exists(ckpt_path),
               "no CRC-valid checkpoint survived the kill\n");
  }  // "process death": the trainer object and all its state are gone

  {
    ls::train::ContinuousTrainer reborn(copts_c);
    add_resume_model(reborn, resume_path);
    // Replay the identical stream: ids are deterministic (k-th append to a
    // fresh window gets id k), so the ids sidecar written before the
    // killed solve matches and the checkpoint is accepted.
    ingest_all(reborn, "resume", stream_c, 0, stream_c.size());
    EXPECT_MSG(reborn.train_once("resume"), "post-restart train failed\n");
    const ls::train::TrainerModelStats rs = reborn.model_stats("resume");
    EXPECT_MSG(rs.last_resumed_from_checkpoint,
               "restart did not resume from the checkpoint\n");
    EXPECT_MSG(rs.last_iterations <= cold_iterations,
               "resumed solve cost more than cold (%lld > %lld)\n",
               static_cast<long long>(rs.last_iterations),
               static_cast<long long>(cold_iterations));
    EXPECT_MSG(!ls::file_exists(ckpt_path),
               "converged solve left its checkpoint behind\n");
    try {
      (void)ls::load_model_file(resume_path);
    } catch (const std::exception& e) {
      EXPECT_MSG(false, "resumed model file unreadable: %s\n", e.what());
    }
  }

  // ---- Phase D: weighted-fair queuing under a tenant flood -------------
  const auto flood = static_cast<std::size_t>(cli.get_int("flood"));
  const auto paced = static_cast<std::size_t>(cli.get_int("paced"));
  const double b_budget_ms = cli.get_double("b-p95-budget-ms");
  std::printf("[D] fairness: tenant A floods %zu, tenant B paces %zu "
              "(B p95 budget %.0fms)\n", flood, paced, b_budget_ms);
  server->stop();
  server.reset();
  engine->stop();
  engine.reset();

  ls::serve::ServeOptions fopts;
  fopts.workers = 1;  // one scoring lane: extraction order IS the policy
  fopts.batcher.max_batch = 8;
  fopts.batcher.deadline_ms = 1.0;
  fopts.batcher.max_queue = 8192;
  fopts.batcher.fair = true;
  ls::serve::ServeEngine fair_engine(fopts);
  fair_engine.load_model("tenantA", model_path);
  fair_engine.load_model("tenantB", model_path);
  fair_engine.start();

  std::vector<std::future<ls::serve::PredictResult>> flood_futures;
  std::vector<double> b_ms;
  std::size_t b_ok = 0;
  {
    // Slow every batch down so queueing policy, not compute, dominates.
    ls::failpoint::Spec slow;
    slow.action = ls::failpoint::Action::kDelay;
    slow.delay_ms = 10;
    ls::failpoint::Scoped fp("serve.batch.compute", slow);

    flood_futures.reserve(flood);
    for (std::size_t r = 0; r < flood; ++r) {
      flood_futures.push_back(fair_engine.predict_async(
          "tenantA", stream[r % stream.size()].x));
    }
    for (std::size_t r = 0; r < paced; ++r) {
      const ls::Timer timer;
      const ls::serve::PredictResult res = fair_engine.predict(
          "tenantB", stream[r % stream.size()].x);
      b_ms.push_back(timer.millis());
      if (res.status == ls::serve::Status::kOk) ++b_ok;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    std::size_t a_ok = 0;
    for (auto& f : flood_futures) {
      if (f.get().status == ls::serve::Status::kOk) ++a_ok;
    }
    const double b_p95 = percentile(b_ms, 0.95);
    std::printf("[D] tenantA ok=%zu/%zu  tenantB ok=%zu/%zu p95=%.1fms\n",
                a_ok, flood, b_ok, paced, b_p95);
    EXPECT_MSG(b_ok == paced, "tenant B starved: %zu of %zu ok\n", b_ok,
               paced);
    EXPECT_MSG(a_ok == flood, "tenant A starved: %zu of %zu ok\n", a_ok,
               flood);
    EXPECT_MSG(b_p95 < b_budget_ms,
               "tenant B p95 %.1fms blew its %.0fms budget under the "
               "tenant A flood\n", b_p95, b_budget_ms);
  }
  fair_engine.stop();

  // ---- Phase E: SIGKILL mid-ingest, restart, durable replay ------------
  std::string kill_mode = cli.get("kill");
  if (kill_mode == "auto") {
#if defined(__SANITIZE_THREAD__)
    kill_mode = "inproc";
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
    kill_mode = "inproc";
#else
    kill_mode = "fork";
#endif
#else
    kill_mode = "fork";
#endif
  }
  EXPECT_MSG(kill_mode == "fork" || kill_mode == "inproc",
             "--kill must be fork|inproc|auto\n");
  std::printf("[E] durable ingest: %s-kill a journaling trainer "
              "mid-burst, restart, replay\n", kill_mode.c_str());

  const std::vector<Example> stream_e = make_stream(400, d, seed + 2);
  constexpr std::size_t kDurableWindow = 128;
  const std::string durable_path = (dir / "durable_model.txt").string();
  ls::train::TrainerOptions eopts;
  eopts.svm = topts.svm;
  // Tiny segments force rotation + retention inside the kill window, so
  // replay also covers a journal whose oldest records were retired.
  eopts.wal_segment_bytes = 4096;
  const auto add_durable_model = [&](ls::train::ContinuousTrainer& t) {
    ls::train::TrainerModelConfig cfg;
    cfg.name = "durable";
    cfg.model_path = durable_path;
    cfg.window_capacity = kDurableWindow;
    cfg.wal_dir = durable_path + ".wal";
    t.add_model(cfg);
  };
  const auto ingest_with_id = [&](ls::train::ContinuousTrainer& t,
                                  std::size_t r, std::string* msg) {
    return t.ingest("durable", stream_e[r].x, stream_e[r].label, msg,
                    static_cast<std::int64_t>(r));
  };

  std::size_t acked = 0;  // lower bound on acked-and-confirmed examples
  if (kill_mode == "fork") {
    int ack_pipe[2] = {-1, -1};
    EXPECT_MSG(::pipe(ack_pipe) == 0, "pipe() failed\n");
    const ::pid_t child = ::fork();
    if (child == 0) {
      // Child: plain sequential ingest, one ack byte per kOk — the byte
      // is the client's proof the example was acknowledged. SIGKILL can
      // land between any two steps; no cleanup runs.
      ::close(ack_pipe[0]);
      ls::train::ContinuousTrainer victim(eopts);
      add_durable_model(victim);
      for (std::size_t r = 0; r < stream_e.size(); ++r) {
        if (ingest_with_id(victim, r, nullptr) == ls::serve::Status::kOk) {
          (void)!::write(ack_pipe[1], "a", 1);
        }
      }
      ::close(ack_pipe[1]);
      ::_exit(0);
    }
    ::close(ack_pipe[1]);
    // Kill mid-burst: wait for a healthy chunk of acks, then SIGKILL with
    // the stream still flowing.
    constexpr std::size_t kKillAfter = 150;
    char buf[64];
    while (acked < kKillAfter) {
      const ::ssize_t n = ::read(ack_pipe[0], buf, sizeof(buf));
      if (n <= 0) break;
      acked += static_cast<std::size_t>(n);
    }
    EXPECT_MSG(acked >= kKillAfter,
               "child finished before the kill (%zu acks)\n", acked);
    ::kill(child, SIGKILL);
    int wstatus = 0;
    ::waitpid(child, &wstatus, 0);
    EXPECT_MSG(WIFSIGNALED(wstatus) && WTERMSIG(wstatus) == SIGKILL,
               "child did not die from SIGKILL\n");
    // Acks already in flight in the pipe were acked before death — count
    // every one of them; "zero acked examples lost" is measured against
    // this total.
    for (;;) {
      const ::ssize_t n = ::read(ack_pipe[0], buf, sizeof(buf));
      if (n <= 0) break;
      acked += static_cast<std::size_t>(n);
    }
    ::close(ack_pipe[0]);
  } else {
    // In-process stand-in (fork is unsafe under TSan): ingest a prefix,
    // then drop the trainer object with no orderly journal close.
    constexpr std::size_t kInprocAcked = 200;
    ls::train::ContinuousTrainer victim(eopts);
    add_durable_model(victim);
    for (std::size_t r = 0; r < kInprocAcked; ++r) {
      if (ingest_with_id(victim, r, nullptr) == ls::serve::Status::kOk) {
        ++acked;
      }
    }
  }

  std::int64_t wal_replayed = 0;
  {
    ls::train::ContinuousTrainer reborn(eopts);
    add_durable_model(reborn);
    ls::train::TrainerModelStats rs = reborn.model_stats("durable");
    wal_replayed = rs.journal_replayed;
    // Zero acked examples lost: every confirmed ack is in the rebuilt
    // window (the journal may hold a final un-acked straggler too).
    EXPECT_MSG(rs.journal_replayed >= static_cast<std::int64_t>(acked),
               "replay lost acked examples: %lld rebuilt < %zu acked\n",
               static_cast<long long>(rs.journal_replayed), acked);
    EXPECT_MSG(rs.journal_quarantines_total == 0,
               "replay quarantined a journal the crash should not have "
               "corrupted\n");
    EXPECT_MSG(!rs.journal_degraded, "replayed trainer came up degraded\n");

    // Digest check: a no-crash control run over the same prefix must land
    // on the identical window content.
    const auto replayed_n = static_cast<std::size_t>(rs.journal_replayed);
    ls::train::ContinuousTrainer control(topts);
    {
      ls::train::TrainerModelConfig cfg;
      cfg.name = "durable";
      cfg.model_path = (dir / "durable_control.txt").string();
      cfg.window_capacity = kDurableWindow;
      control.add_model(cfg);
    }
    for (std::size_t r = 0; r < replayed_n; ++r) {
      (void)control.ingest("durable", stream_e[r].x, stream_e[r].label);
    }
    const std::uint64_t control_digest =
        control.model_stats("durable").window_digest;
    EXPECT_MSG(rs.window_digest == control_digest,
               "rebuilt window digest %llx != no-crash digest %llx\n",
               static_cast<unsigned long long>(rs.window_digest),
               static_cast<unsigned long long>(control_digest));

    // Idempotent retries: re-sending the last window's worth of acked ids
    // is absorbed — every one a duplicate, digest untouched.
    const std::size_t dup_from =
        replayed_n > kDurableWindow ? replayed_n - kDurableWindow : 0;
    std::size_t dup_absorbed = 0;
    for (std::size_t r = dup_from; r < replayed_n; ++r) {
      std::string msg;
      if (ingest_with_id(reborn, r, &msg) == ls::serve::Status::kOk &&
          msg == "duplicate") {
        ++dup_absorbed;
      }
    }
    rs = reborn.model_stats("durable");
    EXPECT_MSG(dup_absorbed == replayed_n - dup_from,
               "retried acked ids not all deduped: %zu of %zu\n",
               dup_absorbed, replayed_n - dup_from);
    EXPECT_MSG(rs.window_digest == control_digest,
               "duplicate retries changed the window digest\n");
    EXPECT_MSG(rs.duplicates_total >=
                   static_cast<std::int64_t>(dup_absorbed),
               "duplicates_total undercounts\n");
    // And the rebuilt window trains.
    EXPECT_MSG(reborn.train_once("durable"),
               "post-crash rebuilt window failed to train\n");
    std::printf("[E] acked>=%zu replayed=%lld duplicates=%lld digest ok\n",
                acked, static_cast<long long>(wal_replayed),
                static_cast<long long>(rs.duplicates_total));
  }

  // ---- Phase F: disk full — degraded ingest, re-arm, full recovery -----
  std::printf("[F] ENOSPC: journal appends fail, ingest must keep acking "
              "(degraded), then re-arm\n");
  const std::string enospc_path = (dir / "enospc_model.txt").string();
  ls::train::TrainerOptions fopts_wal = eopts;
  std::uint64_t live_digest = 0;
  std::size_t live_size = 0;
  {
    ls::train::ContinuousTrainer t(fopts_wal);
    ls::train::TrainerModelConfig cfg;
    cfg.name = "durable";
    cfg.model_path = enospc_path;
    cfg.window_capacity = kDurableWindow;
    cfg.wal_dir = enospc_path + ".wal";
    t.add_model(cfg);
    for (std::size_t r = 0; r < 20; ++r) {
      EXPECT_MSG(ingest_with_id(t, r, nullptr) == ls::serve::Status::kOk,
                 "pre-ENOSPC ingest %zu failed\n", r);
    }
    {
      ls::failpoint::Scoped fp("wal.append");
      for (std::size_t r = 20; r < 40; ++r) {
        EXPECT_MSG(ingest_with_id(t, r, nullptr) == ls::serve::Status::kOk,
                   "ingest %zu failed under ENOSPC (must ack degraded)\n",
                   r);
      }
      EXPECT_MSG(t.journal_degraded(),
                 "trainer not degraded while every append fails\n");
      EXPECT_MSG(t.model_stats("durable").journal_failures_total >= 1,
                 "degraded mode not counted\n");
    }
    // Space is back: the next ingest re-arms (journal rewritten from the
    // live window) and the degraded flag clears.
    EXPECT_MSG(ingest_with_id(t, 40, nullptr) == ls::serve::Status::kOk,
               "post-ENOSPC ingest failed\n");
    EXPECT_MSG(!t.journal_degraded(), "journal did not re-arm\n");
    const ls::train::TrainerModelStats fs = t.model_stats("durable");
    EXPECT_MSG(fs.journal_rearms_total >= 1, "re-arm not counted\n");
    live_digest = fs.window_digest;
    live_size = fs.window_size;
  }
  {
    // Restart: the rewritten journal holds everything, including the
    // examples acked while the disk was full.
    ls::train::ContinuousTrainer t(fopts_wal);
    ls::train::TrainerModelConfig cfg;
    cfg.name = "durable";
    cfg.model_path = enospc_path;
    cfg.window_capacity = kDurableWindow;
    cfg.wal_dir = enospc_path + ".wal";
    t.add_model(cfg);
    const ls::train::TrainerModelStats fs = t.model_stats("durable");
    EXPECT_MSG(fs.window_size == live_size,
               "post-ENOSPC replay lost examples: %zu != %zu\n",
               fs.window_size, live_size);
    EXPECT_MSG(fs.window_digest == live_digest,
               "post-ENOSPC replay digest mismatch\n");
    std::printf("[F] degraded acked=20 rearmed, restart replayed %zu "
                "examples, digest ok\n", fs.window_size);
  }

  // ---- Verdict ---------------------------------------------------------
  ls::CsvWriter csv(ls::bench::csv_path("train_serve_chaos"),
                    {"burst_ok", "burst_shed", "burst_errors", "burst_lost",
                     "publishes", "cold_iterations", "b_p95_ms",
                     "wal_acked", "wal_replayed", "failures"});
  csv.write_row({std::to_string(ok), std::to_string(shed),
                 std::to_string(errors), std::to_string(lost),
                 std::to_string(tstats.publishes_total),
                 std::to_string(cold_iterations),
                 ls::fmt_double(percentile(b_ms, 0.95), 1),
                 std::to_string(acked), std::to_string(wal_replayed),
                 std::to_string(g_failures)});
  ls::bench::finish(csv, "train_serve_chaos");

  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  std::printf("train_serve_chaos: %s (%d failed assertions)\n",
              g_failures == 0 ? "PASS" : "FAIL", g_failures);
  return g_failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "train_serve_chaos: %s\n", e.what());
    return 1;
  }
}
