file(REMOVE_RECURSE
  "CMakeFiles/ablation_conv_gemm.dir/ablation_conv_gemm.cpp.o"
  "CMakeFiles/ablation_conv_gemm.dir/ablation_conv_gemm.cpp.o.d"
  "ablation_conv_gemm"
  "ablation_conv_gemm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_conv_gemm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
