# Empty dependencies file for ablation_conv_gemm.
# This may be replaced when dependencies are built.
