file(REMOVE_RECURSE
  "CMakeFiles/ablation_dcsvm.dir/ablation_dcsvm.cpp.o"
  "CMakeFiles/ablation_dcsvm.dir/ablation_dcsvm.cpp.o.d"
  "ablation_dcsvm"
  "ablation_dcsvm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_dcsvm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
