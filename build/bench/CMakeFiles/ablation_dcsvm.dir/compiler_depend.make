# Empty compiler generated dependencies file for ablation_dcsvm.
# This may be replaced when dependencies are built.
