file(REMOVE_RECURSE
  "CMakeFiles/ablation_extended_formats.dir/ablation_extended_formats.cpp.o"
  "CMakeFiles/ablation_extended_formats.dir/ablation_extended_formats.cpp.o.d"
  "ablation_extended_formats"
  "ablation_extended_formats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_extended_formats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
