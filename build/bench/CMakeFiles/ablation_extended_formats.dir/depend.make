# Empty dependencies file for ablation_extended_formats.
# This may be replaced when dependencies are built.
