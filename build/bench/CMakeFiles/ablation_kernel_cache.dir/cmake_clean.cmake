file(REMOVE_RECURSE
  "CMakeFiles/ablation_kernel_cache.dir/ablation_kernel_cache.cpp.o"
  "CMakeFiles/ablation_kernel_cache.dir/ablation_kernel_cache.cpp.o.d"
  "ablation_kernel_cache"
  "ablation_kernel_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_kernel_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
