file(REMOVE_RECURSE
  "CMakeFiles/ablation_multigpu_scaling.dir/ablation_multigpu_scaling.cpp.o"
  "CMakeFiles/ablation_multigpu_scaling.dir/ablation_multigpu_scaling.cpp.o.d"
  "ablation_multigpu_scaling"
  "ablation_multigpu_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_multigpu_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
