# Empty compiler generated dependencies file for ablation_multigpu_scaling.
# This may be replaced when dependencies are built.
