file(REMOVE_RECURSE
  "CMakeFiles/ablation_reschedule.dir/ablation_reschedule.cpp.o"
  "CMakeFiles/ablation_reschedule.dir/ablation_reschedule.cpp.o.d"
  "ablation_reschedule"
  "ablation_reschedule.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_reschedule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
