file(REMOVE_RECURSE
  "CMakeFiles/ablation_sched_overhead.dir/ablation_sched_overhead.cpp.o"
  "CMakeFiles/ablation_sched_overhead.dir/ablation_sched_overhead.cpp.o.d"
  "ablation_sched_overhead"
  "ablation_sched_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_sched_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
