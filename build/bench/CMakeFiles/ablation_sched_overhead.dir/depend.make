# Empty dependencies file for ablation_sched_overhead.
# This may be replaced when dependencies are built.
