file(REMOVE_RECURSE
  "CMakeFiles/ablation_smsv_kernels.dir/ablation_smsv_kernels.cpp.o"
  "CMakeFiles/ablation_smsv_kernels.dir/ablation_smsv_kernels.cpp.o.d"
  "ablation_smsv_kernels"
  "ablation_smsv_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_smsv_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
