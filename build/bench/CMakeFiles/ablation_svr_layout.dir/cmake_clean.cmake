file(REMOVE_RECURSE
  "CMakeFiles/ablation_svr_layout.dir/ablation_svr_layout.cpp.o"
  "CMakeFiles/ablation_svr_layout.dir/ablation_svr_layout.cpp.o.d"
  "ablation_svr_layout"
  "ablation_svr_layout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_svr_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
