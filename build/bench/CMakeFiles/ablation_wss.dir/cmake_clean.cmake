file(REMOVE_RECURSE
  "CMakeFiles/ablation_wss.dir/ablation_wss.cpp.o"
  "CMakeFiles/ablation_wss.dir/ablation_wss.cpp.o.d"
  "ablation_wss"
  "ablation_wss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_wss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
