file(REMOVE_RECURSE
  "CMakeFiles/fig1_format_comparison.dir/fig1_format_comparison.cpp.o"
  "CMakeFiles/fig1_format_comparison.dir/fig1_format_comparison.cpp.o.d"
  "fig1_format_comparison"
  "fig1_format_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_format_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
