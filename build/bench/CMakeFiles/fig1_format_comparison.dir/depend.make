# Empty dependencies file for fig1_format_comparison.
# This may be replaced when dependencies are built.
