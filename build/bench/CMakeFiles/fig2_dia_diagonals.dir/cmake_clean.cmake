file(REMOVE_RECURSE
  "CMakeFiles/fig2_dia_diagonals.dir/fig2_dia_diagonals.cpp.o"
  "CMakeFiles/fig2_dia_diagonals.dir/fig2_dia_diagonals.cpp.o.d"
  "fig2_dia_diagonals"
  "fig2_dia_diagonals.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_dia_diagonals.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
