# Empty dependencies file for fig2_dia_diagonals.
# This may be replaced when dependencies are built.
