file(REMOVE_RECURSE
  "CMakeFiles/fig3_ell_mdim.dir/fig3_ell_mdim.cpp.o"
  "CMakeFiles/fig3_ell_mdim.dir/fig3_ell_mdim.cpp.o.d"
  "fig3_ell_mdim"
  "fig3_ell_mdim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_ell_mdim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
