# Empty compiler generated dependencies file for fig3_ell_mdim.
# This may be replaced when dependencies are built.
