file(REMOVE_RECURSE
  "CMakeFiles/fig4_coo_vs_csr.dir/fig4_coo_vs_csr.cpp.o"
  "CMakeFiles/fig4_coo_vs_csr.dir/fig4_coo_vs_csr.cpp.o.d"
  "fig4_coo_vs_csr"
  "fig4_coo_vs_csr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_coo_vs_csr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
