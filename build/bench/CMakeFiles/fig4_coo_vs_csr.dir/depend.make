# Empty dependencies file for fig4_coo_vs_csr.
# This may be replaced when dependencies are built.
