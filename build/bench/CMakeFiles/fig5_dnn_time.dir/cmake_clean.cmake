file(REMOVE_RECURSE
  "CMakeFiles/fig5_dnn_time.dir/fig5_dnn_time.cpp.o"
  "CMakeFiles/fig5_dnn_time.dir/fig5_dnn_time.cpp.o.d"
  "fig5_dnn_time"
  "fig5_dnn_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_dnn_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
