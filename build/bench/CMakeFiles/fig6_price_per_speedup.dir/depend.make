# Empty dependencies file for fig6_price_per_speedup.
# This may be replaced when dependencies are built.
