file(REMOVE_RECURSE
  "CMakeFiles/fig7_vs_libsvm.dir/fig7_vs_libsvm.cpp.o"
  "CMakeFiles/fig7_vs_libsvm.dir/fig7_vs_libsvm.cpp.o.d"
  "fig7_vs_libsvm"
  "fig7_vs_libsvm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_vs_libsvm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
