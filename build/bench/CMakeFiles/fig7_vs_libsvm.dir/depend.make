# Empty dependencies file for fig7_vs_libsvm.
# This may be replaced when dependencies are built.
