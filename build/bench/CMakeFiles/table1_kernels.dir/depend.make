# Empty dependencies file for table1_kernels.
# This may be replaced when dependencies are built.
