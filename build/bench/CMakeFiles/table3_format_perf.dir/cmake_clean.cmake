file(REMOVE_RECURSE
  "CMakeFiles/table3_format_perf.dir/table3_format_perf.cpp.o"
  "CMakeFiles/table3_format_perf.dir/table3_format_perf.cpp.o.d"
  "table3_format_perf"
  "table3_format_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_format_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
