# Empty compiler generated dependencies file for table3_format_perf.
# This may be replaced when dependencies are built.
