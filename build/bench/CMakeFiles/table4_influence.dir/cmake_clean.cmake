file(REMOVE_RECURSE
  "CMakeFiles/table4_influence.dir/table4_influence.cpp.o"
  "CMakeFiles/table4_influence.dir/table4_influence.cpp.o.d"
  "table4_influence"
  "table4_influence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_influence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
