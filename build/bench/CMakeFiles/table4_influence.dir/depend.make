# Empty dependencies file for table4_influence.
# This may be replaced when dependencies are built.
