file(REMOVE_RECURSE
  "CMakeFiles/table5_datasets.dir/table5_datasets.cpp.o"
  "CMakeFiles/table5_datasets.dir/table5_datasets.cpp.o.d"
  "table5_datasets"
  "table5_datasets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_datasets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
