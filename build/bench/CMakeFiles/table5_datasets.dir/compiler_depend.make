# Empty compiler generated dependencies file for table5_datasets.
# This may be replaced when dependencies are built.
