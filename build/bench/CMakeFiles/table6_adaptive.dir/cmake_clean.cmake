file(REMOVE_RECURSE
  "CMakeFiles/table6_adaptive.dir/table6_adaptive.cpp.o"
  "CMakeFiles/table6_adaptive.dir/table6_adaptive.cpp.o.d"
  "table6_adaptive"
  "table6_adaptive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_adaptive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
