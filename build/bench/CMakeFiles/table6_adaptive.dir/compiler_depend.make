# Empty compiler generated dependencies file for table6_adaptive.
# This may be replaced when dependencies are built.
