file(REMOVE_RECURSE
  "CMakeFiles/table7_dnn_tuning.dir/table7_dnn_tuning.cpp.o"
  "CMakeFiles/table7_dnn_tuning.dir/table7_dnn_tuning.cpp.o.d"
  "table7_dnn_tuning"
  "table7_dnn_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_dnn_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
