# Empty dependencies file for table7_dnn_tuning.
# This may be replaced when dependencies are built.
