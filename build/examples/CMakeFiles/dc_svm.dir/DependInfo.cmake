
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/dc_svm.cpp" "examples/CMakeFiles/dc_svm.dir/dc_svm.cpp.o" "gcc" "examples/CMakeFiles/dc_svm.dir/dc_svm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/svm/CMakeFiles/ls_svm.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/ls_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/ls_data.dir/DependInfo.cmake"
  "/root/repo/build/src/formats/CMakeFiles/ls_formats.dir/DependInfo.cmake"
  "/root/repo/build/src/dnn/CMakeFiles/ls_dnn.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/ls_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ls_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
