file(REMOVE_RECURSE
  "CMakeFiles/dc_svm.dir/dc_svm.cpp.o"
  "CMakeFiles/dc_svm.dir/dc_svm.cpp.o.d"
  "dc_svm"
  "dc_svm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dc_svm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
