# Empty dependencies file for dc_svm.
# This may be replaced when dependencies are built.
