file(REMOVE_RECURSE
  "CMakeFiles/dnn_autotune.dir/dnn_autotune.cpp.o"
  "CMakeFiles/dnn_autotune.dir/dnn_autotune.cpp.o.d"
  "dnn_autotune"
  "dnn_autotune.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dnn_autotune.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
