# Empty dependencies file for dnn_autotune.
# This may be replaced when dependencies are built.
