file(REMOVE_RECURSE
  "CMakeFiles/format_advisor.dir/format_advisor.cpp.o"
  "CMakeFiles/format_advisor.dir/format_advisor.cpp.o.d"
  "format_advisor"
  "format_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/format_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
