# Empty compiler generated dependencies file for format_advisor.
# This may be replaced when dependencies are built.
