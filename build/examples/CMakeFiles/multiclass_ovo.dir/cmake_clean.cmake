file(REMOVE_RECURSE
  "CMakeFiles/multiclass_ovo.dir/multiclass_ovo.cpp.o"
  "CMakeFiles/multiclass_ovo.dir/multiclass_ovo.cpp.o.d"
  "multiclass_ovo"
  "multiclass_ovo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multiclass_ovo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
