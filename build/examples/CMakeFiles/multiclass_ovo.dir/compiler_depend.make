# Empty compiler generated dependencies file for multiclass_ovo.
# This may be replaced when dependencies are built.
