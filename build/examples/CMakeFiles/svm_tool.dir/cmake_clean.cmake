file(REMOVE_RECURSE
  "CMakeFiles/svm_tool.dir/svm_tool.cpp.o"
  "CMakeFiles/svm_tool.dir/svm_tool.cpp.o.d"
  "svm_tool"
  "svm_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svm_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
