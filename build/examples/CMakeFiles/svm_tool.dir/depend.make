# Empty dependencies file for svm_tool.
# This may be replaced when dependencies are built.
