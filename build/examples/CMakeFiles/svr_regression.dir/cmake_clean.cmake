file(REMOVE_RECURSE
  "CMakeFiles/svr_regression.dir/svr_regression.cpp.o"
  "CMakeFiles/svr_regression.dir/svr_regression.cpp.o.d"
  "svr_regression"
  "svr_regression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svr_regression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
