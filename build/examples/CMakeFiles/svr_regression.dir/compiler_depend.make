# Empty compiler generated dependencies file for svr_regression.
# This may be replaced when dependencies are built.
