file(REMOVE_RECURSE
  "CMakeFiles/ls_common.dir/cli.cpp.o"
  "CMakeFiles/ls_common.dir/cli.cpp.o.d"
  "CMakeFiles/ls_common.dir/table.cpp.o"
  "CMakeFiles/ls_common.dir/table.cpp.o.d"
  "libls_common.a"
  "libls_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ls_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
