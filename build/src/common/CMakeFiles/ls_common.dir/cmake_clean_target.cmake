file(REMOVE_RECURSE
  "libls_common.a"
)
