# Empty dependencies file for ls_common.
# This may be replaced when dependencies are built.
