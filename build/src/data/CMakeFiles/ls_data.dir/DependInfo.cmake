
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/dataset.cpp" "src/data/CMakeFiles/ls_data.dir/dataset.cpp.o" "gcc" "src/data/CMakeFiles/ls_data.dir/dataset.cpp.o.d"
  "/root/repo/src/data/features.cpp" "src/data/CMakeFiles/ls_data.dir/features.cpp.o" "gcc" "src/data/CMakeFiles/ls_data.dir/features.cpp.o.d"
  "/root/repo/src/data/libsvm_io.cpp" "src/data/CMakeFiles/ls_data.dir/libsvm_io.cpp.o" "gcc" "src/data/CMakeFiles/ls_data.dir/libsvm_io.cpp.o.d"
  "/root/repo/src/data/profiles.cpp" "src/data/CMakeFiles/ls_data.dir/profiles.cpp.o" "gcc" "src/data/CMakeFiles/ls_data.dir/profiles.cpp.o.d"
  "/root/repo/src/data/scaling.cpp" "src/data/CMakeFiles/ls_data.dir/scaling.cpp.o" "gcc" "src/data/CMakeFiles/ls_data.dir/scaling.cpp.o.d"
  "/root/repo/src/data/synthetic.cpp" "src/data/CMakeFiles/ls_data.dir/synthetic.cpp.o" "gcc" "src/data/CMakeFiles/ls_data.dir/synthetic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/formats/CMakeFiles/ls_formats.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ls_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
