file(REMOVE_RECURSE
  "CMakeFiles/ls_data.dir/dataset.cpp.o"
  "CMakeFiles/ls_data.dir/dataset.cpp.o.d"
  "CMakeFiles/ls_data.dir/features.cpp.o"
  "CMakeFiles/ls_data.dir/features.cpp.o.d"
  "CMakeFiles/ls_data.dir/libsvm_io.cpp.o"
  "CMakeFiles/ls_data.dir/libsvm_io.cpp.o.d"
  "CMakeFiles/ls_data.dir/profiles.cpp.o"
  "CMakeFiles/ls_data.dir/profiles.cpp.o.d"
  "CMakeFiles/ls_data.dir/scaling.cpp.o"
  "CMakeFiles/ls_data.dir/scaling.cpp.o.d"
  "CMakeFiles/ls_data.dir/synthetic.cpp.o"
  "CMakeFiles/ls_data.dir/synthetic.cpp.o.d"
  "libls_data.a"
  "libls_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ls_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
