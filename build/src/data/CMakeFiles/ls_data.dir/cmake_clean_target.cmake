file(REMOVE_RECURSE
  "libls_data.a"
)
