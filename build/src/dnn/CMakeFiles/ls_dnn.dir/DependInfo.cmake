
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dnn/cifar.cpp" "src/dnn/CMakeFiles/ls_dnn.dir/cifar.cpp.o" "gcc" "src/dnn/CMakeFiles/ls_dnn.dir/cifar.cpp.o.d"
  "/root/repo/src/dnn/conv_gemm.cpp" "src/dnn/CMakeFiles/ls_dnn.dir/conv_gemm.cpp.o" "gcc" "src/dnn/CMakeFiles/ls_dnn.dir/conv_gemm.cpp.o.d"
  "/root/repo/src/dnn/convergence.cpp" "src/dnn/CMakeFiles/ls_dnn.dir/convergence.cpp.o" "gcc" "src/dnn/CMakeFiles/ls_dnn.dir/convergence.cpp.o.d"
  "/root/repo/src/dnn/layers.cpp" "src/dnn/CMakeFiles/ls_dnn.dir/layers.cpp.o" "gcc" "src/dnn/CMakeFiles/ls_dnn.dir/layers.cpp.o.d"
  "/root/repo/src/dnn/metrics.cpp" "src/dnn/CMakeFiles/ls_dnn.dir/metrics.cpp.o" "gcc" "src/dnn/CMakeFiles/ls_dnn.dir/metrics.cpp.o.d"
  "/root/repo/src/dnn/net.cpp" "src/dnn/CMakeFiles/ls_dnn.dir/net.cpp.o" "gcc" "src/dnn/CMakeFiles/ls_dnn.dir/net.cpp.o.d"
  "/root/repo/src/dnn/net_spec.cpp" "src/dnn/CMakeFiles/ls_dnn.dir/net_spec.cpp.o" "gcc" "src/dnn/CMakeFiles/ls_dnn.dir/net_spec.cpp.o.d"
  "/root/repo/src/dnn/trainer.cpp" "src/dnn/CMakeFiles/ls_dnn.dir/trainer.cpp.o" "gcc" "src/dnn/CMakeFiles/ls_dnn.dir/trainer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ls_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
