file(REMOVE_RECURSE
  "CMakeFiles/ls_dnn.dir/cifar.cpp.o"
  "CMakeFiles/ls_dnn.dir/cifar.cpp.o.d"
  "CMakeFiles/ls_dnn.dir/conv_gemm.cpp.o"
  "CMakeFiles/ls_dnn.dir/conv_gemm.cpp.o.d"
  "CMakeFiles/ls_dnn.dir/convergence.cpp.o"
  "CMakeFiles/ls_dnn.dir/convergence.cpp.o.d"
  "CMakeFiles/ls_dnn.dir/layers.cpp.o"
  "CMakeFiles/ls_dnn.dir/layers.cpp.o.d"
  "CMakeFiles/ls_dnn.dir/metrics.cpp.o"
  "CMakeFiles/ls_dnn.dir/metrics.cpp.o.d"
  "CMakeFiles/ls_dnn.dir/net.cpp.o"
  "CMakeFiles/ls_dnn.dir/net.cpp.o.d"
  "CMakeFiles/ls_dnn.dir/net_spec.cpp.o"
  "CMakeFiles/ls_dnn.dir/net_spec.cpp.o.d"
  "CMakeFiles/ls_dnn.dir/trainer.cpp.o"
  "CMakeFiles/ls_dnn.dir/trainer.cpp.o.d"
  "libls_dnn.a"
  "libls_dnn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ls_dnn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
