file(REMOVE_RECURSE
  "libls_dnn.a"
)
