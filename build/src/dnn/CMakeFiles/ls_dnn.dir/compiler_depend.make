# Empty compiler generated dependencies file for ls_dnn.
# This may be replaced when dependencies are built.
