
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/formats/bcsr.cpp" "src/formats/CMakeFiles/ls_formats.dir/bcsr.cpp.o" "gcc" "src/formats/CMakeFiles/ls_formats.dir/bcsr.cpp.o.d"
  "/root/repo/src/formats/coo.cpp" "src/formats/CMakeFiles/ls_formats.dir/coo.cpp.o" "gcc" "src/formats/CMakeFiles/ls_formats.dir/coo.cpp.o.d"
  "/root/repo/src/formats/csc.cpp" "src/formats/CMakeFiles/ls_formats.dir/csc.cpp.o" "gcc" "src/formats/CMakeFiles/ls_formats.dir/csc.cpp.o.d"
  "/root/repo/src/formats/csr.cpp" "src/formats/CMakeFiles/ls_formats.dir/csr.cpp.o" "gcc" "src/formats/CMakeFiles/ls_formats.dir/csr.cpp.o.d"
  "/root/repo/src/formats/dense.cpp" "src/formats/CMakeFiles/ls_formats.dir/dense.cpp.o" "gcc" "src/formats/CMakeFiles/ls_formats.dir/dense.cpp.o.d"
  "/root/repo/src/formats/dia.cpp" "src/formats/CMakeFiles/ls_formats.dir/dia.cpp.o" "gcc" "src/formats/CMakeFiles/ls_formats.dir/dia.cpp.o.d"
  "/root/repo/src/formats/ell.cpp" "src/formats/CMakeFiles/ls_formats.dir/ell.cpp.o" "gcc" "src/formats/CMakeFiles/ls_formats.dir/ell.cpp.o.d"
  "/root/repo/src/formats/hyb.cpp" "src/formats/CMakeFiles/ls_formats.dir/hyb.cpp.o" "gcc" "src/formats/CMakeFiles/ls_formats.dir/hyb.cpp.o.d"
  "/root/repo/src/formats/jds.cpp" "src/formats/CMakeFiles/ls_formats.dir/jds.cpp.o" "gcc" "src/formats/CMakeFiles/ls_formats.dir/jds.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ls_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
