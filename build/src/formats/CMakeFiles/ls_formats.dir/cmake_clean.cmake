file(REMOVE_RECURSE
  "CMakeFiles/ls_formats.dir/bcsr.cpp.o"
  "CMakeFiles/ls_formats.dir/bcsr.cpp.o.d"
  "CMakeFiles/ls_formats.dir/coo.cpp.o"
  "CMakeFiles/ls_formats.dir/coo.cpp.o.d"
  "CMakeFiles/ls_formats.dir/csc.cpp.o"
  "CMakeFiles/ls_formats.dir/csc.cpp.o.d"
  "CMakeFiles/ls_formats.dir/csr.cpp.o"
  "CMakeFiles/ls_formats.dir/csr.cpp.o.d"
  "CMakeFiles/ls_formats.dir/dense.cpp.o"
  "CMakeFiles/ls_formats.dir/dense.cpp.o.d"
  "CMakeFiles/ls_formats.dir/dia.cpp.o"
  "CMakeFiles/ls_formats.dir/dia.cpp.o.d"
  "CMakeFiles/ls_formats.dir/ell.cpp.o"
  "CMakeFiles/ls_formats.dir/ell.cpp.o.d"
  "CMakeFiles/ls_formats.dir/hyb.cpp.o"
  "CMakeFiles/ls_formats.dir/hyb.cpp.o.d"
  "CMakeFiles/ls_formats.dir/jds.cpp.o"
  "CMakeFiles/ls_formats.dir/jds.cpp.o.d"
  "libls_formats.a"
  "libls_formats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ls_formats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
