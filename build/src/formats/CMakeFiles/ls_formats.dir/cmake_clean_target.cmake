file(REMOVE_RECURSE
  "libls_formats.a"
)
