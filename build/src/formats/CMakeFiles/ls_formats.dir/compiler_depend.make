# Empty compiler generated dependencies file for ls_formats.
# This may be replaced when dependencies are built.
