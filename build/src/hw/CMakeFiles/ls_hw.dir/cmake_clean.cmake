file(REMOVE_RECURSE
  "CMakeFiles/ls_hw.dir/autotune.cpp.o"
  "CMakeFiles/ls_hw.dir/autotune.cpp.o.d"
  "CMakeFiles/ls_hw.dir/device.cpp.o"
  "CMakeFiles/ls_hw.dir/device.cpp.o.d"
  "CMakeFiles/ls_hw.dir/multigpu.cpp.o"
  "CMakeFiles/ls_hw.dir/multigpu.cpp.o.d"
  "libls_hw.a"
  "libls_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ls_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
