file(REMOVE_RECURSE
  "libls_hw.a"
)
