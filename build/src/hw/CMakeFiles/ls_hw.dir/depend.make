# Empty dependencies file for ls_hw.
# This may be replaced when dependencies are built.
