
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/cost_model.cpp" "src/sched/CMakeFiles/ls_sched.dir/cost_model.cpp.o" "gcc" "src/sched/CMakeFiles/ls_sched.dir/cost_model.cpp.o.d"
  "/root/repo/src/sched/learned.cpp" "src/sched/CMakeFiles/ls_sched.dir/learned.cpp.o" "gcc" "src/sched/CMakeFiles/ls_sched.dir/learned.cpp.o.d"
  "/root/repo/src/sched/parallel_model.cpp" "src/sched/CMakeFiles/ls_sched.dir/parallel_model.cpp.o" "gcc" "src/sched/CMakeFiles/ls_sched.dir/parallel_model.cpp.o.d"
  "/root/repo/src/sched/scheduler.cpp" "src/sched/CMakeFiles/ls_sched.dir/scheduler.cpp.o" "gcc" "src/sched/CMakeFiles/ls_sched.dir/scheduler.cpp.o.d"
  "/root/repo/src/sched/selector.cpp" "src/sched/CMakeFiles/ls_sched.dir/selector.cpp.o" "gcc" "src/sched/CMakeFiles/ls_sched.dir/selector.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/data/CMakeFiles/ls_data.dir/DependInfo.cmake"
  "/root/repo/build/src/formats/CMakeFiles/ls_formats.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ls_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
