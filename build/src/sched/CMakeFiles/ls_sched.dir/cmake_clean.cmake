file(REMOVE_RECURSE
  "CMakeFiles/ls_sched.dir/cost_model.cpp.o"
  "CMakeFiles/ls_sched.dir/cost_model.cpp.o.d"
  "CMakeFiles/ls_sched.dir/learned.cpp.o"
  "CMakeFiles/ls_sched.dir/learned.cpp.o.d"
  "CMakeFiles/ls_sched.dir/parallel_model.cpp.o"
  "CMakeFiles/ls_sched.dir/parallel_model.cpp.o.d"
  "CMakeFiles/ls_sched.dir/scheduler.cpp.o"
  "CMakeFiles/ls_sched.dir/scheduler.cpp.o.d"
  "CMakeFiles/ls_sched.dir/selector.cpp.o"
  "CMakeFiles/ls_sched.dir/selector.cpp.o.d"
  "libls_sched.a"
  "libls_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ls_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
