file(REMOVE_RECURSE
  "libls_sched.a"
)
