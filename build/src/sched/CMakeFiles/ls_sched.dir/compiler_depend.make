# Empty compiler generated dependencies file for ls_sched.
# This may be replaced when dependencies are built.
