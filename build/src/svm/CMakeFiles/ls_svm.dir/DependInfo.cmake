
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/svm/batch_predict.cpp" "src/svm/CMakeFiles/ls_svm.dir/batch_predict.cpp.o" "gcc" "src/svm/CMakeFiles/ls_svm.dir/batch_predict.cpp.o.d"
  "/root/repo/src/svm/cache.cpp" "src/svm/CMakeFiles/ls_svm.dir/cache.cpp.o" "gcc" "src/svm/CMakeFiles/ls_svm.dir/cache.cpp.o.d"
  "/root/repo/src/svm/dcsvm.cpp" "src/svm/CMakeFiles/ls_svm.dir/dcsvm.cpp.o" "gcc" "src/svm/CMakeFiles/ls_svm.dir/dcsvm.cpp.o.d"
  "/root/repo/src/svm/grid_search.cpp" "src/svm/CMakeFiles/ls_svm.dir/grid_search.cpp.o" "gcc" "src/svm/CMakeFiles/ls_svm.dir/grid_search.cpp.o.d"
  "/root/repo/src/svm/kernel_engine.cpp" "src/svm/CMakeFiles/ls_svm.dir/kernel_engine.cpp.o" "gcc" "src/svm/CMakeFiles/ls_svm.dir/kernel_engine.cpp.o.d"
  "/root/repo/src/svm/model.cpp" "src/svm/CMakeFiles/ls_svm.dir/model.cpp.o" "gcc" "src/svm/CMakeFiles/ls_svm.dir/model.cpp.o.d"
  "/root/repo/src/svm/multiclass.cpp" "src/svm/CMakeFiles/ls_svm.dir/multiclass.cpp.o" "gcc" "src/svm/CMakeFiles/ls_svm.dir/multiclass.cpp.o.d"
  "/root/repo/src/svm/reschedule.cpp" "src/svm/CMakeFiles/ls_svm.dir/reschedule.cpp.o" "gcc" "src/svm/CMakeFiles/ls_svm.dir/reschedule.cpp.o.d"
  "/root/repo/src/svm/serialize.cpp" "src/svm/CMakeFiles/ls_svm.dir/serialize.cpp.o" "gcc" "src/svm/CMakeFiles/ls_svm.dir/serialize.cpp.o.d"
  "/root/repo/src/svm/smo.cpp" "src/svm/CMakeFiles/ls_svm.dir/smo.cpp.o" "gcc" "src/svm/CMakeFiles/ls_svm.dir/smo.cpp.o.d"
  "/root/repo/src/svm/svr.cpp" "src/svm/CMakeFiles/ls_svm.dir/svr.cpp.o" "gcc" "src/svm/CMakeFiles/ls_svm.dir/svr.cpp.o.d"
  "/root/repo/src/svm/trainer.cpp" "src/svm/CMakeFiles/ls_svm.dir/trainer.cpp.o" "gcc" "src/svm/CMakeFiles/ls_svm.dir/trainer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sched/CMakeFiles/ls_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/ls_data.dir/DependInfo.cmake"
  "/root/repo/build/src/formats/CMakeFiles/ls_formats.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ls_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
