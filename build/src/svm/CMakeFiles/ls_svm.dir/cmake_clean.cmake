file(REMOVE_RECURSE
  "CMakeFiles/ls_svm.dir/batch_predict.cpp.o"
  "CMakeFiles/ls_svm.dir/batch_predict.cpp.o.d"
  "CMakeFiles/ls_svm.dir/cache.cpp.o"
  "CMakeFiles/ls_svm.dir/cache.cpp.o.d"
  "CMakeFiles/ls_svm.dir/dcsvm.cpp.o"
  "CMakeFiles/ls_svm.dir/dcsvm.cpp.o.d"
  "CMakeFiles/ls_svm.dir/grid_search.cpp.o"
  "CMakeFiles/ls_svm.dir/grid_search.cpp.o.d"
  "CMakeFiles/ls_svm.dir/kernel_engine.cpp.o"
  "CMakeFiles/ls_svm.dir/kernel_engine.cpp.o.d"
  "CMakeFiles/ls_svm.dir/model.cpp.o"
  "CMakeFiles/ls_svm.dir/model.cpp.o.d"
  "CMakeFiles/ls_svm.dir/multiclass.cpp.o"
  "CMakeFiles/ls_svm.dir/multiclass.cpp.o.d"
  "CMakeFiles/ls_svm.dir/reschedule.cpp.o"
  "CMakeFiles/ls_svm.dir/reschedule.cpp.o.d"
  "CMakeFiles/ls_svm.dir/serialize.cpp.o"
  "CMakeFiles/ls_svm.dir/serialize.cpp.o.d"
  "CMakeFiles/ls_svm.dir/smo.cpp.o"
  "CMakeFiles/ls_svm.dir/smo.cpp.o.d"
  "CMakeFiles/ls_svm.dir/svr.cpp.o"
  "CMakeFiles/ls_svm.dir/svr.cpp.o.d"
  "CMakeFiles/ls_svm.dir/trainer.cpp.o"
  "CMakeFiles/ls_svm.dir/trainer.cpp.o.d"
  "libls_svm.a"
  "libls_svm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ls_svm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
