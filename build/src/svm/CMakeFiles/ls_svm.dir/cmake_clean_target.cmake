file(REMOVE_RECURSE
  "libls_svm.a"
)
