# Empty compiler generated dependencies file for ls_svm.
# This may be replaced when dependencies are built.
