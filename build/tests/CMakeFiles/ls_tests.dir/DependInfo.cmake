
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_common.cpp" "tests/CMakeFiles/ls_tests.dir/test_common.cpp.o" "gcc" "tests/CMakeFiles/ls_tests.dir/test_common.cpp.o.d"
  "/root/repo/tests/test_data.cpp" "tests/CMakeFiles/ls_tests.dir/test_data.cpp.o" "gcc" "tests/CMakeFiles/ls_tests.dir/test_data.cpp.o.d"
  "/root/repo/tests/test_dnn.cpp" "tests/CMakeFiles/ls_tests.dir/test_dnn.cpp.o" "gcc" "tests/CMakeFiles/ls_tests.dir/test_dnn.cpp.o.d"
  "/root/repo/tests/test_extensions.cpp" "tests/CMakeFiles/ls_tests.dir/test_extensions.cpp.o" "gcc" "tests/CMakeFiles/ls_tests.dir/test_extensions.cpp.o.d"
  "/root/repo/tests/test_formats.cpp" "tests/CMakeFiles/ls_tests.dir/test_formats.cpp.o" "gcc" "tests/CMakeFiles/ls_tests.dir/test_formats.cpp.o.d"
  "/root/repo/tests/test_hw.cpp" "tests/CMakeFiles/ls_tests.dir/test_hw.cpp.o" "gcc" "tests/CMakeFiles/ls_tests.dir/test_hw.cpp.o.d"
  "/root/repo/tests/test_netspec.cpp" "tests/CMakeFiles/ls_tests.dir/test_netspec.cpp.o" "gcc" "tests/CMakeFiles/ls_tests.dir/test_netspec.cpp.o.d"
  "/root/repo/tests/test_runtime.cpp" "tests/CMakeFiles/ls_tests.dir/test_runtime.cpp.o" "gcc" "tests/CMakeFiles/ls_tests.dir/test_runtime.cpp.o.d"
  "/root/repo/tests/test_sched.cpp" "tests/CMakeFiles/ls_tests.dir/test_sched.cpp.o" "gcc" "tests/CMakeFiles/ls_tests.dir/test_sched.cpp.o.d"
  "/root/repo/tests/test_stress.cpp" "tests/CMakeFiles/ls_tests.dir/test_stress.cpp.o" "gcc" "tests/CMakeFiles/ls_tests.dir/test_stress.cpp.o.d"
  "/root/repo/tests/test_svm.cpp" "tests/CMakeFiles/ls_tests.dir/test_svm.cpp.o" "gcc" "tests/CMakeFiles/ls_tests.dir/test_svm.cpp.o.d"
  "/root/repo/tests/test_svr.cpp" "tests/CMakeFiles/ls_tests.dir/test_svr.cpp.o" "gcc" "tests/CMakeFiles/ls_tests.dir/test_svr.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/svm/CMakeFiles/ls_svm.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/ls_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/ls_data.dir/DependInfo.cmake"
  "/root/repo/build/src/formats/CMakeFiles/ls_formats.dir/DependInfo.cmake"
  "/root/repo/build/src/dnn/CMakeFiles/ls_dnn.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/ls_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ls_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
