file(REMOVE_RECURSE
  "CMakeFiles/ls_tests.dir/test_common.cpp.o"
  "CMakeFiles/ls_tests.dir/test_common.cpp.o.d"
  "CMakeFiles/ls_tests.dir/test_data.cpp.o"
  "CMakeFiles/ls_tests.dir/test_data.cpp.o.d"
  "CMakeFiles/ls_tests.dir/test_dnn.cpp.o"
  "CMakeFiles/ls_tests.dir/test_dnn.cpp.o.d"
  "CMakeFiles/ls_tests.dir/test_extensions.cpp.o"
  "CMakeFiles/ls_tests.dir/test_extensions.cpp.o.d"
  "CMakeFiles/ls_tests.dir/test_formats.cpp.o"
  "CMakeFiles/ls_tests.dir/test_formats.cpp.o.d"
  "CMakeFiles/ls_tests.dir/test_hw.cpp.o"
  "CMakeFiles/ls_tests.dir/test_hw.cpp.o.d"
  "CMakeFiles/ls_tests.dir/test_netspec.cpp.o"
  "CMakeFiles/ls_tests.dir/test_netspec.cpp.o.d"
  "CMakeFiles/ls_tests.dir/test_runtime.cpp.o"
  "CMakeFiles/ls_tests.dir/test_runtime.cpp.o.d"
  "CMakeFiles/ls_tests.dir/test_sched.cpp.o"
  "CMakeFiles/ls_tests.dir/test_sched.cpp.o.d"
  "CMakeFiles/ls_tests.dir/test_stress.cpp.o"
  "CMakeFiles/ls_tests.dir/test_stress.cpp.o.d"
  "CMakeFiles/ls_tests.dir/test_svm.cpp.o"
  "CMakeFiles/ls_tests.dir/test_svm.cpp.o.d"
  "CMakeFiles/ls_tests.dir/test_svr.cpp.o"
  "CMakeFiles/ls_tests.dir/test_svr.cpp.o.d"
  "ls_tests"
  "ls_tests.pdb"
  "ls_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ls_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
