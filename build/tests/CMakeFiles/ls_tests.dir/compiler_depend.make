# Empty compiler generated dependencies file for ls_tests.
# This may be replaced when dependencies are built.
