// Divide-and-conquer SVM on a simulated cluster, with per-partition layout
// scheduling — the CA-SVM + layout-scheduling combination the paper's
// related-work section proposes.
//
//   ./dc_svm --dataset adult --partitions 4 --strategy cluster
#include <cstdio>
#include <map>

#include "common/cli.hpp"
#include "common/observability.hpp"
#include "data/profiles.hpp"
#include "svm/dcsvm.hpp"

int main(int argc, char** argv) {
  using namespace ls;
  CliParser cli("dc_svm",
                "divide-and-conquer SVM with per-partition layout scheduling");
  cli.add_flag("dataset", "adult", "Table V profile name");
  cli.add_flag("partitions", "4", "number of simulated cluster nodes");
  cli.add_flag("strategy", "cluster", "cluster | random partitioning");
  cli.add_flag("c", "1.0", "SVM regularisation constant");
  add_observability_flags(cli);
  if (!cli.parse(argc, argv)) return 0;
  const ObservabilityScope observability(cli);

  const Dataset full = profile_by_name(cli.get("dataset")).generate();
  const auto [train, test] = full.split(0.8);

  DcSvmOptions options;
  options.partitions = static_cast<index_t>(cli.get_int("partitions"));
  const std::string strategy = cli.get("strategy");
  if (strategy == "cluster") {
    options.strategy = PartitionStrategy::kCluster;
  } else if (strategy == "random") {
    options.strategy = PartitionStrategy::kRandom;
  } else {
    throw Error("unknown strategy '" + strategy + "'");
  }
  options.params.c = cli.get_double("c");
  options.params.tolerance = 1e-2;
  options.sched.policy = SchedulePolicy::kEmpirical;

  const DcSvmResult r = train_dc_svm(train, options);

  std::printf("dataset %s: %lld train / %lld test samples, %lld partitions "
              "(%s)\n",
              full.name.c_str(), static_cast<long long>(train.rows()),
              static_cast<long long>(test.rows()),
              static_cast<long long>(options.partitions), strategy.c_str());
  for (std::size_t p = 0; p < r.partition_sizes.size(); ++p) {
    std::printf("  partition %zu: %lld samples, layout %s\n", p,
                static_cast<long long>(r.partition_sizes[p]),
                std::string(format_name(r.partition_formats[p])).c_str());
  }
  std::printf("total SMO iterations: %lld\n",
              static_cast<long long>(r.total_iterations));
  std::printf("serial time (1 node):   %.3f s\n", r.total_seconds);
  std::printf("critical path (%lld nodes): %.3f s (%.1fx parallel speedup)\n",
              static_cast<long long>(options.partitions), r.critical_seconds,
              r.total_seconds / std::max(1e-12, r.critical_seconds));
  std::printf("train accuracy: %.3f\n", r.model.accuracy(train));
  std::printf("test accuracy:  %.3f\n", r.model.accuracy(test));
  return 0;
}
