// DNN hyper-parameter auto-tuning (the paper's Section IV), two ways:
//
//   1. Paper-scale: the three-stage B / eta / mu tuning on the modelled DGX
//      station, reproducing Table VII's tuning rows.
//   2. Real training: the same tuning loop executed for real on the bundled
//      mini conv-net and synthetic CIFAR stand-in (small scale), showing
//      the identical code path actually learning.
//
//   ./dnn_autotune --device dgx --real true
#include <cstdio>

#include "common/cli.hpp"
#include "common/observability.hpp"
#include "common/timer.hpp"
#include "dnn/cifar.hpp"
#include "dnn/net.hpp"
#include "dnn/trainer.hpp"
#include "hw/autotune.hpp"

namespace {

void run_model_tuning(const ls::DeviceSpec& device) {
  using namespace ls;
  std::printf("--- modelled tuning on %s (price $%.0f) ---\n",
              device.display.c_str(), device.price_usd);
  const DnnConfig defaults{100, 0.001, 0.90};
  const auto start = evaluate_config(device, defaults);
  std::printf("defaults  B=%-5lld eta=%.3f mu=%.2f -> %6lld iters, %7.1f s\n",
              static_cast<long long>(defaults.batch), defaults.eta,
              defaults.mu, static_cast<long long>(start->iterations),
              start->seconds);

  const auto stages = tune_sequential(device, defaults);
  const char* names[] = {"tune B  ", "tune eta", "tune mu "};
  for (std::size_t s = 0; s < stages.size(); ++s) {
    std::printf("%s  B=%-5lld eta=%.3f mu=%.2f -> %6lld iters, %7.1f s "
                "(%.1fx vs defaults)\n",
                names[s], static_cast<long long>(stages[s].config.batch),
                stages[s].config.eta, stages[s].config.mu,
                static_cast<long long>(stages[s].iterations),
                stages[s].seconds, start->seconds / stages[s].seconds);
  }
  const TunedConfig joint = tune_joint(device);
  std::printf("joint     B=%-5lld eta=%.3f mu=%.2f -> %6lld iters, %7.1f s "
              "(exhaustive grid)\n\n",
              static_cast<long long>(joint.config.batch), joint.config.eta,
              joint.config.mu, static_cast<long long>(joint.iterations),
              joint.seconds);
}

void run_real_tuning() {
  using namespace ls;
  std::printf("--- real training sweep (mini net, synthetic CIFAR) ---\n");
  CifarConfig cfg;
  cfg.classes = 4;
  cfg.dim = 8;
  cfg.train_size = 512;
  cfg.test_size = 256;
  cfg.noise = 0.5;
  const CifarData data = make_synthetic_cifar(cfg);

  // Tune the batch size for real: same epochs budget, measure accuracy and
  // wall time — small-scale analogue of Section IV-C.
  double best_score = 0.0;
  index_t best_batch = 0;
  for (index_t batch : {16, 32, 64, 128}) {
    Rng rng(0xD2312);  // identical init per candidate
    Net net = make_cifar10_small(cfg.classes, cfg.channels, cfg.dim, rng);
    DnnTrainConfig tc;
    tc.batch_size = batch;
    tc.learning_rate = 0.02 * static_cast<double>(batch) / 32.0;  // linear
    tc.momentum = 0.9;
    tc.max_epochs = 4;
    Timer t;
    const DnnTrainResult r = train_dnn(net, data, tc);
    const double score = r.test_accuracy / t.seconds();
    std::printf("B=%-4lld eta=%.3f: acc %.3f in %.2f s (%lld iters) "
                "accuracy/second %.3f\n",
                static_cast<long long>(batch), tc.learning_rate,
                r.test_accuracy, t.seconds(),
                static_cast<long long>(r.iterations), score);
    if (score > best_score) {
      best_score = score;
      best_batch = batch;
    }
  }
  std::printf("real-training pick: B=%lld (best accuracy per second)\n",
              static_cast<long long>(best_batch));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ls;
  CliParser cli("dnn_autotune", "B/eta/mu auto-tuning (paper Section IV)");
  cli.add_flag("device", "dgx", "cpu8 | knl | haswell | p100 | dgx");
  cli.add_flag("real", "true", "also run the real-training sweep");
  add_observability_flags(cli);
  if (!cli.parse(argc, argv)) return 0;
  const ObservabilityScope observability(cli);

  run_model_tuning(device_by_id(cli.get("device")));
  if (cli.get_bool("real")) run_real_tuning();
  return 0;
}
