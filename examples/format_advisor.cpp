// Format advisor: the paper's decision system as a standalone tool.
//
//   ./format_advisor --file data.libsvm
//   ./format_advisor --dataset sector
//
// Reads a dataset (a real libsvm file or a Table V profile), extracts the
// nine influencing parameters, prints the per-format storage and predicted
// SMSV cost, and reports both the heuristic and the empirical decision —
// useful for understanding *why* a format was chosen.
#include <cstdio>

#include "common/cli.hpp"
#include "common/observability.hpp"
#include "data/features.hpp"
#include "data/libsvm_io.hpp"
#include "data/profiles.hpp"
#include "common/table.hpp"
#include "formats/storage.hpp"
#include "sched/scheduler.hpp"

int main(int argc, char** argv) {
  using namespace ls;
  CliParser cli("format_advisor", "recommend a storage format for a dataset");
  cli.add_flag("file", "", "libsvm-format input file (overrides --dataset)");
  cli.add_flag("dataset", "mnist", "Table V profile name when no --file");
  cli.add_flag("extended", "false",
               "also consider the derived formats (CSC/BCSR/HYB/JDS)");
  add_observability_flags(cli);
  if (!cli.parse(argc, argv)) return 0;
  const ObservabilityScope observability(cli);

  Dataset ds;
  if (!cli.get("file").empty()) {
    ds = read_libsvm_file(cli.get("file"));
  } else {
    ds = profile_by_name(cli.get("dataset")).generate();
  }
  std::printf("dataset: %s\n", ds.name.c_str());

  const MatrixFeatures f = extract_features(ds.X);
  std::printf("influencing parameters (Table IV):\n  %s\n\n",
              f.to_string().c_str());

  // Per-format storage + predicted cost table.
  const CostCalibration& cal = CostCalibration::instance();
  std::printf("machine calibration: %s\n\n", cal.to_string().c_str());
  const CostPrediction pred = predict_cost(f, cal);

  Table table({"Format", "storage (words)", "modelled flops/SMSV",
               "predicted time/SMSV"});
  StorageShape shape{f.m, f.n, f.nnz, f.ndig, f.mdim};
  for (Format fmt : kAllFormats) {
    const auto i = static_cast<std::size_t>(fmt);
    table.add_row({std::string(format_name(fmt)),
                   std::to_string(storage_words(fmt, shape)),
                   fmt_double(pred.flops[i], 0),
                   fmt_seconds(pred.seconds[i])});
  }
  std::printf("%s\n", table.str().c_str());

  const ScheduleDecision heuristic = HeuristicSelector(cal).choose(f);
  std::printf("heuristic decision: %s\n", heuristic.rationale.c_str());

  AutotuneOptions tune_opts;
  tune_opts.include_extended = cli.get_bool("extended");
  const ScheduleDecision empirical = EmpiricalAutotuner(tune_opts).choose(ds.X);
  std::printf("empirical decision: %s\n", empirical.rationale.c_str());
  std::printf("  measured seconds/SMSV per format:");
  for (Format fmt : cli.get_bool("extended")
                        ? std::vector<Format>(kExtendedFormats.begin(),
                                              kExtendedFormats.end())
                        : std::vector<Format>(kAllFormats.begin(),
                                              kAllFormats.end())) {
    const double s = empirical.score_of(fmt);
    if (std::isfinite(s)) {
      std::printf(" %s=%s", std::string(format_name(fmt)).c_str(),
                  fmt_seconds(s).c_str());
    } else {
      std::printf(" %s=(skipped)", std::string(format_name(fmt)).c_str());
    }
  }
  std::printf("\n");
  return 0;
}
