// Multiclass one-vs-one training with per-pair layout scheduling.
//
//   ./multiclass_ovo --classes 4 --samples 400
//
// Section II-A1 of the paper: multiclass SVMs decompose into independent
// binary machines. Each pairwise subproblem has its own sparsity profile,
// so the scheduler may pick *different* layouts for different pairs — this
// example makes that visible.
#include <cstdio>
#include <map>

#include "common/cli.hpp"
#include "common/observability.hpp"
#include "common/rng.hpp"
#include "svm/multiclass.hpp"

int main(int argc, char** argv) {
  using namespace ls;
  CliParser cli("multiclass_ovo",
                "multiclass SVM: one-vs-one (per-pair layouts) or one-vs-rest (shared layout + cache)");
  cli.add_flag("classes", "4", "number of classes");
  cli.add_flag("samples", "400", "total samples");
  cli.add_flag("features", "32", "feature-space dimension");
  cli.add_flag("c", "5.0", "SVM regularisation constant");
  cli.add_flag("strategy", "ovo", "ovo (one-vs-one) | ovr (one-vs-rest)");
  add_observability_flags(cli);
  if (!cli.parse(argc, argv)) return 0;
  const ObservabilityScope observability(cli);

  const auto k = static_cast<index_t>(cli.get_int("classes"));
  const auto n = static_cast<index_t>(cli.get_int("samples"));
  const auto d = static_cast<index_t>(cli.get_int("features"));

  // Gaussian blobs: class c centred at a random sparse point; samples keep
  // the sparsity pattern of their centre (so per-pair profiles differ).
  Rng rng(0x0501234);
  std::vector<std::vector<std::pair<index_t, real_t>>> centers(
      static_cast<std::size_t>(k));
  for (auto& center : centers) {
    const index_t active = rng.uniform_int(4, d / 2);
    std::vector<char> used(static_cast<std::size_t>(d), 0);
    for (index_t a = 0; a < active; ++a) {
      index_t j;
      do {
        j = rng.uniform_int(0, d - 1);
      } while (used[static_cast<std::size_t>(j)]);
      used[static_cast<std::size_t>(j)] = 1;
      center.push_back({j, rng.uniform(-4.0, 4.0)});
    }
  }
  std::vector<Triplet> triplets;
  std::vector<real_t> labels;
  for (index_t i = 0; i < n; ++i) {
    const auto c = static_cast<std::size_t>(i % k);
    for (const auto& [j, v] : centers[c]) {
      triplets.push_back({i, j, v + rng.normal(0.0, 0.4)});
    }
    labels.push_back(static_cast<real_t>(c));
  }
  Dataset ds{"blobs", CooMatrix(n, d, std::move(triplets)),
             std::move(labels)};
  const auto [train, test] = ds.split(0.75);

  SvmParams params;
  params.c = cli.get_double("c");
  SchedulerOptions sched;
  sched.policy = SchedulePolicy::kHeuristic;

  if (cli.get("strategy") == "ovr") {
    // One-vs-rest: k machines over the SAME matrix — one layout decision
    // and a shared kernel cache (kernel rows are label-independent).
    const OvrResult ovr = train_one_vs_rest(train, params, sched);
    std::printf("trained %zu one-vs-rest machines (%lld iterations, "
                "%.3f s, shared layout %s, cross-machine cache hit rate "
                "%.1f%%)\n",
                ovr.model.machines.size(),
                static_cast<long long>(ovr.total_iterations),
                ovr.total_seconds,
                std::string(format_name(ovr.layout)).c_str(),
                ovr.cache_hit_rate * 100.0);
    std::printf("train accuracy: %.3f\n", ovr.model.accuracy(train));
    std::printf("test accuracy:  %.3f\n", ovr.model.accuracy(test));
    return 0;
  }

  const MulticlassResult result = train_one_vs_one(train, params, sched);
  std::printf("trained %zu pairwise machines (%lld total SMO iterations, "
              "%.3f s)\n",
              result.model.machines.size(),
              static_cast<long long>(result.total_iterations),
              result.total_seconds);

  std::map<Format, int> layout_histogram;
  for (Format f : result.chosen_formats) ++layout_histogram[f];
  std::printf("layouts chosen per pair:");
  for (const auto& [fmt, count] : layout_histogram) {
    std::printf(" %s x%d", std::string(format_name(fmt)).c_str(), count);
  }
  std::printf("\n");
  std::printf("train accuracy: %.3f\n", result.model.accuracy(train));
  std::printf("test accuracy:  %.3f\n", result.model.accuracy(test));
  return 0;
}
