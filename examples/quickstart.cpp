// Quickstart: train a binary SVM with runtime data-layout scheduling.
//
//   ./quickstart --dataset adult --kernel linear --c 1.0
//
// Shows the whole public-API flow: load (here: synthesise) a dataset,
// extract its influencing parameters, let the scheduler pick a storage
// format, train with SMO, and evaluate on a held-out split.
#include <cstdio>

#include "common/cli.hpp"
#include "common/observability.hpp"
#include "data/features.hpp"
#include "data/profiles.hpp"
#include "svm/trainer.hpp"

int main(int argc, char** argv) {
  using namespace ls;
  CliParser cli("quickstart",
                "train a binary SVM with runtime layout scheduling");
  cli.add_flag("dataset", "adult", "Table V profile name (e.g. adult, aloi)");
  cli.add_flag("kernel", "linear", "linear | polynomial | gaussian | sigmoid");
  cli.add_flag("c", "1.0", "SVM regularisation constant C");
  cli.add_flag("gamma", "0.5", "kernel gamma / a parameter");
  cli.add_flag("policy", "empirical", "empirical | heuristic | learned | fixed");
  cli.add_flag("tolerance", "1e-3", "SMO convergence tolerance");
  add_observability_flags(cli);
  if (!cli.parse(argc, argv)) return 0;
  const ObservabilityScope observability(cli);

  // 1. Obtain a dataset (synthetic stand-in matching the paper's stats).
  const Dataset full = profile_by_name(cli.get("dataset")).generate();
  const auto [train, test] = full.split(0.8);
  std::printf("dataset %s: %lld samples x %lld features, %lld nonzeros\n",
              full.name.c_str(), static_cast<long long>(full.rows()),
              static_cast<long long>(full.cols()),
              static_cast<long long>(full.X.nnz()));

  // 2. Inspect the nine influencing parameters (Table IV).
  const MatrixFeatures feats = extract_features(train.X);
  std::printf("features: %s\n", feats.to_string().c_str());

  // 3. Configure and train. The scheduler decides the layout at runtime.
  SvmParams params;
  params.kernel.type = parse_kernel(cli.get("kernel"));
  params.kernel.gamma = cli.get_double("gamma");
  params.c = cli.get_double("c");
  params.tolerance = cli.get_double("tolerance");

  SchedulerOptions sched;
  sched.policy = parse_policy(cli.get("policy"));

  const TrainResult result = train_adaptive(train, params, sched);

  // 4. Report.
  std::printf("\nlayout decision: %s\n", result.decision.rationale.c_str());
  std::printf("schedule time:   %.3f ms\n", result.schedule_seconds * 1e3);
  std::printf("solve time:      %.3f s (%lld iterations, %lld kernel rows, "
              "%.1f%% cache hits)\n",
              result.solve_seconds,
              static_cast<long long>(result.stats.iterations),
              static_cast<long long>(result.stats.kernel_rows_computed),
              result.stats.cache_hit_rate * 100.0);
  std::printf("support vectors: %lld / %lld\n",
              static_cast<long long>(result.stats.support_vectors),
              static_cast<long long>(train.rows()));
  std::printf("dual objective:  %.6f (converged: %s)\n",
              result.stats.objective,
              result.stats.converged ? "yes" : "no");
  std::printf("train accuracy:  %.3f\n", result.model.accuracy(train));
  std::printf("test accuracy:   %.3f\n", result.model.accuracy(test));
  return 0;
}
