// route_tool — the replicated-serving router daemon.
//
// Fronts N serve_tool replicas behind one socket speaking the unchanged
// LSRV protocol: clients need no changes, they just point at the router.
// A consistent-hash ring gives each (model, client) stream a sticky
// replica, a background prober tracks replica health, per-replica circuit
// breakers trip on transport failures, and idempotent requests fail over
// along the ring — a rolling restart of every replica in sequence loses
// zero requests.
//
//   # three replicas (separate terminals or a supervisor)
//   ./serve_tool --socket /tmp/ls_r1.sock --models demo=/tmp/ls_demo_model.txt
//   ./serve_tool --socket /tmp/ls_r2.sock --models demo=/tmp/ls_demo_model.txt
//   ./serve_tool --socket /tmp/ls_r3.sock --models demo=/tmp/ls_demo_model.txt
//
//   # the router in front of them
//   ./route_tool --socket /tmp/ls_router.sock
//       --replicas unix:/tmp/ls_r1.sock,unix:/tmp/ls_r2.sock,unix:/tmp/ls_r3.sock
//       (one line)
//
//   # clients talk to the router exactly like to a single daemon
//   ./serve_client --socket /tmp/ls_router.sock --mode ping
//   ./serve_client --socket /tmp/ls_router.sock --mode bench --model demo
//       --data /tmp/ls_demo_test.libsvm --retries 8 --timeout-ms 2000   (one line)
//
// SIGTERM/SIGINT drain the router (stop accepting, finish in-flight
// frames) exactly like serve_tool; `--mode shutdown` stops the router
// only, never the replicas.
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "common/cli.hpp"
#include "common/error.hpp"
#include "common/observability.hpp"
#include "route/router.hpp"
#include "serve/server.hpp"

namespace {

int g_signal_pipe[2] = {-1, -1};

extern "C" void on_terminate_signal(int) {
  const char byte = 1;
  (void)!::write(g_signal_pipe[1], &byte, 1);
}

int run(int argc, char** argv) {
  ls::CliParser cli("route_tool",
                    "Consistent-hash router over N serve_tool replicas "
                    "with health probing, circuit breakers and failover");
  cli.add_flag("replicas", "",
               "comma-separated replica endpoints: unix:PATH or tcp:PORT");
  cli.add_flag("socket", "", "unix-domain socket path to listen on");
  cli.add_flag("port", "-1",
               "loopback TCP port to listen on instead of --socket "
               "(0 = kernel-assigned, printed at startup)");
  cli.add_flag("vnodes", "64", "virtual ring points per replica");
  cli.add_flag("probe-interval-ms", "200",
               "base health-probe cadence per replica (jittered)");
  cli.add_flag("probe-timeout-ms", "250",
               "hard per-probe deadline (connect and request)");
  cli.add_flag("probe-backoff-max-ms", "2000",
               "cap of the per-replica probe backoff after failures");
  cli.add_flag("breaker-failures", "5",
               "consecutive transport failures that open a breaker");
  cli.add_flag("breaker-open-ms", "1000",
               "breaker cooldown before a half-open trial");
  cli.add_flag("upstream-timeout-ms", "2000",
               "per-attempt upstream request budget (0 = unbounded)");
  cli.add_flag("max-failover", "0",
               "max distinct replicas tried per request (0 = all)");
  cli.add_flag("max-connections", "256",
               "downstream connection cap (0 = unlimited)");
  cli.add_flag("read-timeout-ms", "5000",
               "per-frame receive budget (0 = unbounded)");
  cli.add_flag("write-timeout-ms", "5000",
               "per-frame send budget (0 = unbounded)");
  cli.add_flag("idle-timeout-ms", "0",
               "close connections idle this long (0 = keep forever)");
  cli.add_flag("drain-ms", "5000",
               "bound on finishing in-flight work after SIGTERM/SIGINT");
  ls::add_observability_flags(cli);
  if (!cli.parse(argc, argv)) return 0;
  const ls::ObservabilityScope observability(cli);

  ls::route::RouterOptions ropts;
  ropts.ring.vnodes = static_cast<int>(cli.get_int("vnodes"));
  ropts.probe.interval_ms = cli.get_double("probe-interval-ms");
  ropts.probe.probe_timeout_ms = cli.get_double("probe-timeout-ms");
  ropts.probe.backoff_max_ms = cli.get_double("probe-backoff-max-ms");
  ropts.probe.seed ^= static_cast<std::uint64_t>(::getpid());
  ropts.breaker.failure_threshold =
      static_cast<int>(cli.get_int("breaker-failures"));
  ropts.breaker.open_ms = cli.get_double("breaker-open-ms");
  ropts.upstream_request_timeout_ms = cli.get_double("upstream-timeout-ms");
  ropts.max_failover = static_cast<int>(cli.get_int("max-failover"));

  ls::serve::ServerOptions listen;
  listen.unix_path = cli.get("socket");
  listen.tcp_port = static_cast<int>(cli.get_int("port"));
  listen.max_connections =
      static_cast<std::size_t>(cli.get_int("max-connections"));
  listen.read_timeout_ms = cli.get_double("read-timeout-ms");
  listen.write_timeout_ms = cli.get_double("write-timeout-ms");
  listen.idle_timeout_ms = cli.get_double("idle-timeout-ms");
  const double drain_ms = cli.get_double("drain-ms");
  LS_CHECK(!listen.unix_path.empty() || listen.tcp_port >= 0,
           "pass --socket PATH or --port N (0 = kernel-assigned)");

  const std::vector<ls::route::ReplicaEndpoint> replicas =
      ls::route::parse_replica_list(cli.get("replicas"));
  ls::route::Router router(replicas, ropts);
  router.start();

  ls::serve::ServeServer server(router, listen);
  server.start();
  if (!listen.unix_path.empty()) {
    std::printf("routing on unix:%s -> %zu replicas\n",
                listen.unix_path.c_str(), replicas.size());
  } else {
    std::printf("routing on tcp:127.0.0.1:%d -> %zu replicas\n",
                server.port(), replicas.size());
  }
  for (const auto& ep : replicas) {
    std::printf("  replica %s\n", ep.id().c_str());
  }
  std::fflush(stdout);

  std::signal(SIGPIPE, SIG_IGN);
  LS_CHECK(::pipe(g_signal_pipe) == 0, "route_tool: pipe() failed");
  struct sigaction sa{};
  sa.sa_handler = on_terminate_signal;
  sigemptyset(&sa.sa_mask);
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);

  std::thread signal_watcher([&] {
    char byte = 0;
    ssize_t n;
    do {
      n = ::read(g_signal_pipe[0], &byte, 1);
    } while (n < 0 && errno == EINTR);
    if (n <= 0) return;  // write end closed: normal shutdown
    std::printf("signal received, draining (bound %gms)...\n", drain_ms);
    std::fflush(stdout);
    const bool quiesced = server.drain(drain_ms);
    std::printf("drain %s in %.3fs\n", quiesced ? "complete" : "timed out",
                server.server_stats().drain_seconds);
    std::fflush(stdout);
    server.stop();
  });

  server.wait();  // until kShutdownReq, SIGTERM/SIGINT drain, or stop()

  ::close(g_signal_pipe[1]);
  g_signal_pipe[1] = -1;
  signal_watcher.join();
  ::close(g_signal_pipe[0]);
  g_signal_pipe[0] = -1;

  server.stop();
  router.stop();

  std::printf("--- final stats ---\n%s%s", router.stats_text().c_str(),
              server.stats_text().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "route_tool: %s\n", e.what());
    return 1;
  }
}
