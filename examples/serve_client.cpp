// serve_client — command-line client for a running serve_tool daemon.
//
// Modes:
//   ping      round-trip liveness check
//   health    lifecycle probe: live / ready / draining / degraded
//   predict   score row --row of --data against --model, print the result
//   bench     closed-loop load: --concurrency connections send --count
//             requests total, cycling through the rows of --data; prints a
//             parseable summary line (requests= ok= shed= errors= lost=
//             p50_ms= p95_ms= rps= retries=) plus an error-kind breakdown,
//             and exits non-zero when any request errored or was lost
//             (retries exhausted with no definitive answer) — so CI can
//             use a bench run as a zero-loss assertion
//   stats     fetch and print the engine + socket-layer stats block
//   models    list loaded models (name, version, content generation,
//             active layout) — or, against a trainer, each training stream
//   ingest    stream labeled rows of --data into a trainer daemon's
//             sliding window (--count total, cycling; 0 = one pass);
//             prints ingested= duplicates= rejected= and exits non-zero
//             on any transport error. Each row carries the dedup id
//             --id-base + r, so sends are idempotent and retried with
//             backoff like every other verb — even across a trainer
//             restart (the journal-backed dedup set survives it). Pass
//             --id-base -1 to opt out of dedup; then nothing is retried
//   reload    ask the server to hot-reload --model from its source path
//   shutdown  stop the daemon
//
// --retries and --timeout-ms feed the client library's resilience layer:
// idempotent requests are retried with exponential backoff across
// reconnects, and the timeout doubles as the server-side deadline carried
// in the predict header.
#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/cli.hpp"
#include "common/error.hpp"
#include "common/timer.hpp"
#include "data/libsvm_io.hpp"
#include "formats/sparse_vector.hpp"
#include "serve/client.hpp"

namespace {

using ls::serve::ServeClient;

ls::serve::ClientOptions client_options(const ls::CliParser& cli,
                                        std::uint64_t seed_salt = 0) {
  ls::serve::ClientOptions opts;
  opts.max_retries = static_cast<int>(cli.get_int("retries"));
  opts.request_timeout_ms = cli.get_double("timeout-ms");
  opts.connect_timeout_ms = cli.get_double("connect-timeout-ms");
  opts.jitter_seed ^= seed_salt * 0x9E3779B97F4A7C15ULL;
  return opts;
}

ServeClient connect(const ls::CliParser& cli, std::uint64_t seed_salt = 0) {
  const std::string path = cli.get("socket");
  const int port = static_cast<int>(cli.get_int("port"));
  LS_CHECK(!path.empty() || port >= 0, "pass --socket PATH or --port N");
  const ls::serve::ClientOptions opts = client_options(cli, seed_salt);
  return path.empty() ? ServeClient::connect_tcp(port, opts)
                      : ServeClient::connect_unix(path, opts);
}

/// Gathers every row of a libsvm file into standalone sparse vectors.
std::vector<ls::SparseVector> load_rows(const std::string& path) {
  LS_CHECK(!path.empty(), "this mode needs --data FILE.libsvm");
  const ls::Dataset ds = ls::read_libsvm_file(path);
  std::vector<ls::SparseVector> rows(static_cast<std::size_t>(ds.rows()));
  for (ls::index_t i = 0; i < ds.rows(); ++i) {
    ds.X.gather_row(i, rows[static_cast<std::size_t>(i)]);
  }
  LS_CHECK(!rows.empty(), "dataset '" << path << "' has no rows");
  return rows;
}

double percentile(std::vector<double>& sorted_ms, double p) {
  if (sorted_ms.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted_ms.size() - 1));
  return sorted_ms[idx];
}

int run_bench(const ls::CliParser& cli) {
  const std::string model = cli.get("model");
  const auto count = static_cast<std::size_t>(cli.get_int("count"));
  const int concurrency =
      std::max(1, static_cast<int>(cli.get_int("concurrency")));
  const std::vector<ls::SparseVector> rows = load_rows(cli.get("data"));

  // The distinction the exit code hinges on:
  //   errors  the server answered, but with a non-retryable error status
  //           (unknown model, bad dimension, ...) — a bug in the request
  //           or the deployment, not in delivery;
  //   lost    the request ultimately got NO definitive answer: retries
  //           exhausted on transport failures or on shutting_down
  //           refusals, or the connection never came up. Under a rolling
  //           restart with enough --retries this must be zero.
  struct PerThread {
    std::vector<double> latencies_ms;
    std::size_t ok = 0, shed = 0, errors = 0, lost = 0;
    std::int64_t retries = 0;
    std::map<std::string, std::size_t> by_kind;
  };
  std::vector<PerThread> results(static_cast<std::size_t>(concurrency));
  std::vector<std::thread> threads;
  const ls::Timer wall;
  for (int t = 0; t < concurrency; ++t) {
    threads.emplace_back([&, t] {
      PerThread& mine = results[static_cast<std::size_t>(t)];
      try {
        ServeClient client =
            connect(cli, static_cast<std::uint64_t>(t) + 1);
        // Thread t sends requests t, t+C, t+2C, ... of the closed loop.
        for (std::size_t r = static_cast<std::size_t>(t); r < count;
             r += static_cast<std::size_t>(concurrency)) {
          const ls::SparseVector& x = rows[r % rows.size()];
          const ls::Timer timer;
          try {
            const ls::serve::PredictResult res = client.predict(model, x);
            mine.latencies_ms.push_back(timer.millis());
            if (res.status == ls::serve::Status::kOk) {
              ++mine.ok;
            } else if (res.status == ls::serve::Status::kOverloaded) {
              ++mine.shed;
            } else if (res.status == ls::serve::Status::kShuttingDown) {
              // Retries exhausted against a fleet that only ever said
              // "come back later": nobody answered this request.
              ++mine.lost;
              ++mine.by_kind["status_shutting_down"];
            } else {
              ++mine.errors;
              ++mine.by_kind[std::string("status_") +
                             ls::serve::status_name(res.status)];
            }
          } catch (const ls::serve::IoError& e) {
            // Retries exhausted on transport: count it and keep the loop
            // alive — a bench thread dying would understate the loss rate.
            mine.latencies_ms.push_back(timer.millis());
            ++mine.lost;
            ++mine.by_kind[std::string("io_") +
                           ls::serve::io_error_kind_name(e.kind())];
          } catch (const std::exception&) {
            mine.latencies_ms.push_back(timer.millis());
            ++mine.lost;
            ++mine.by_kind["exception"];
          }
        }
        mine.retries = client.retries_observed();
      } catch (const std::exception&) {
        // Could not even connect: everything this thread would have sent
        // is lost.
        for (std::size_t r = static_cast<std::size_t>(t); r < count;
             r += static_cast<std::size_t>(concurrency)) {
          ++mine.lost;
          ++mine.by_kind["connect"];
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  const double wall_s = wall.seconds();

  std::vector<double> all_ms;
  std::size_t ok = 0, shed = 0, errors = 0, lost = 0;
  std::int64_t retries = 0;
  std::map<std::string, std::size_t> by_kind;
  for (const PerThread& r : results) {
    all_ms.insert(all_ms.end(), r.latencies_ms.begin(),
                  r.latencies_ms.end());
    ok += r.ok;
    shed += r.shed;
    errors += r.errors;
    lost += r.lost;
    retries += r.retries;
    for (const auto& [kind, n] : r.by_kind) by_kind[kind] += n;
  }
  std::sort(all_ms.begin(), all_ms.end());
  std::printf("requests=%zu ok=%zu shed=%zu errors=%zu lost=%zu "
              "p50_ms=%.3f p95_ms=%.3f rps=%.1f retries=%lld\n",
              ok + shed + errors + lost, ok, shed, errors, lost,
              percentile(all_ms, 0.50), percentile(all_ms, 0.95),
              wall_s > 0 ? static_cast<double>(all_ms.size()) / wall_s : 0.0,
              static_cast<long long>(retries));
  std::printf("retries_observed=%lld error_breakdown:",
              static_cast<long long>(retries));
  if (by_kind.empty()) std::printf(" none");
  for (const auto& [kind, n] : by_kind) {
    std::printf(" %s=%zu", kind.c_str(), n);
  }
  std::printf("\n");
  return (errors == 0 && lost == 0) ? 0 : 1;
}

int run_ingest(const ls::CliParser& cli) {
  const std::string model = cli.get("model");
  const std::string path = cli.get("data");
  LS_CHECK(!path.empty(), "ingest mode needs --data FILE.libsvm");
  const ls::Dataset ds = ls::read_libsvm_file(path);
  LS_CHECK(ds.rows() > 0, "dataset '" << path << "' has no rows");
  const auto rows = static_cast<std::size_t>(ds.rows());
  auto count = static_cast<std::size_t>(cli.get_int("count"));
  if (count == 0) count = rows;

  const std::int64_t id_base = cli.get_int("id-base");
  ServeClient client = connect(cli);
  std::size_t ingested = 0, duplicates = 0, rejected = 0;
  ls::SparseVector x;
  for (std::size_t r = 0; r < count; ++r) {
    const auto i = static_cast<ls::index_t>(r % rows);
    ds.X.gather_row(i, x);
    // id-base -1 disables dedup AND retries (see ServeClient::ingest);
    // any other base makes example r globally identifiable as base + r.
    const std::int64_t id =
        id_base < 0 ? -1 : id_base + static_cast<std::int64_t>(r);
    std::string message;
    const ls::serve::Status s = client.ingest(
        model, id, ds.y[static_cast<std::size_t>(i)], x, &message);
    if (s == ls::serve::Status::kOk) {
      if (message == "duplicate") {
        ++duplicates;
      } else {
        ++ingested;
      }
    } else {
      ++rejected;
      std::fprintf(stderr, "ingest row %zu: status=%s %s\n", r,
                   ls::serve::status_name(s), message.c_str());
    }
  }
  std::printf("ingested=%zu duplicates=%zu rejected=%zu retries=%lld\n",
              ingested, duplicates, rejected,
              static_cast<long long>(client.retries_observed()));
  return rejected == 0 ? 0 : 1;
}

int run(int argc, char** argv) {
  ls::CliParser cli("serve_client",
                    "Client for the serve_tool prediction daemon");
  cli.add_flag("mode", "ping",
               "ping | health | predict | bench | stats | models | ingest | "
               "reload | shutdown");
  cli.add_flag("socket", "", "unix-domain socket path of the server");
  cli.add_flag("port", "-1", "loopback TCP port of the server");
  cli.add_flag("model", "demo", "model name for predict/bench/reload");
  cli.add_flag("data", "", "libsvm file providing request vectors");
  cli.add_flag("row", "0", "row of --data to score in predict mode");
  cli.add_flag("count", "1000",
               "total requests in bench mode; examples to stream in ingest "
               "mode (0 = one pass over --data)");
  cli.add_flag("concurrency", "8", "concurrent connections in bench mode");
  cli.add_flag("id-base", "0",
               "ingest mode: dedup id of the first streamed example "
               "(example r gets id-base + r; -1 = no dedup, no retries)");
  cli.add_flag("retries", "0",
               "retry idempotent requests up to N times across reconnects");
  cli.add_flag("timeout-ms", "0",
               "per-request budget, also sent as the server-side deadline "
               "(0 = unbounded)");
  cli.add_flag("connect-timeout-ms", "5000",
               "budget for establishing one connection");
  if (!cli.parse(argc, argv)) return 0;
  const std::string mode = cli.get("mode");

  if (mode == "bench") return run_bench(cli);
  if (mode == "ingest") return run_ingest(cli);

  ServeClient client = connect(cli);
  if (mode == "ping") {
    const bool alive = client.ping();
    std::printf("%s\n", alive ? "pong" : "no pong");
    return alive ? 0 : 1;
  }
  if (mode == "health") {
    const std::string state = client.health();
    std::printf("%s\n", state.c_str());
    // "draining" and "degraded" are truthful answers, not probe failures:
    // the daemon is up and talking. Operators grep the text.
    return 0;
  }
  if (mode == "predict") {
    const std::vector<ls::SparseVector> rows = load_rows(cli.get("data"));
    const auto row = static_cast<std::size_t>(cli.get_int("row"));
    LS_CHECK(row < rows.size(),
             "--row " << row << " out of range (dataset has " << rows.size()
                      << " rows)");
    const ls::serve::PredictResult res =
        client.predict(cli.get("model"), rows[row]);
    std::printf("status=%s decision=%+.6f label=%+g\n",
                ls::serve::status_name(res.status), res.decision, res.label);
    return res.status == ls::serve::Status::kOk ? 0 : 1;
  }
  if (mode == "stats") {
    std::printf("%s", client.stats().c_str());
    return 0;
  }
  if (mode == "models") {
    std::printf("%s", client.models().c_str());
    return 0;
  }
  if (mode == "reload") {
    std::string message;
    const ls::serve::Status s = client.reload(cli.get("model"), &message);
    std::printf("status=%s %s\n", ls::serve::status_name(s),
                message.c_str());
    return s == ls::serve::Status::kOk ? 0 : 1;
  }
  if (mode == "shutdown") {
    const ls::serve::Status s = client.shutdown_server();
    std::printf("status=%s\n", ls::serve::status_name(s));
    return s == ls::serve::Status::kOk ? 0 : 1;
  }
  throw ls::Error("unknown --mode '" + mode + "'");
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "serve_client: %s\n", e.what());
    return 1;
  }
}
