// serve_tool — the standalone prediction-serving daemon.
//
// Hosts one or more trained SVM model files behind the framed socket
// protocol (see src/serve/protocol.hpp) and serves predict / reload /
// stats / ping / health / shutdown requests until a client asks it to stop
// or the process receives SIGTERM/SIGINT — either way it drains first:
// the listener closes, in-flight requests finish (bounded by --drain-ms)
// and only then do the worker pool and the handler threads come down.
//
//   # train something first (writes /tmp/ls_demo_model.txt)
//   ./svm_tool --mode demo --dataset breast_cancer
//
//   # serve it on a unix socket
//   ./serve_tool --socket /tmp/ls_serve.sock --models demo=/tmp/ls_demo_model.txt
//
//   # talk to it from another terminal
//   ./serve_client --socket /tmp/ls_serve.sock --mode ping
//   ./serve_client --socket /tmp/ls_serve.sock --mode health
//   ./serve_client --socket /tmp/ls_serve.sock --mode bench --model demo
//       --data /tmp/ls_demo_test.libsvm   (one line)
//   ./serve_client --socket /tmp/ls_serve.sock --mode shutdown
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "common/cli.hpp"
#include "common/error.hpp"
#include "common/observability.hpp"
#include "sched/scheduler.hpp"
#include "serve/engine.hpp"
#include "serve/server.hpp"

namespace {

/// Self-pipe for SIGTERM/SIGINT: the handler only writes one byte (the
/// single async-signal-safe thing worth doing) and a watcher thread runs
/// the actual drain sequence outside signal context.
int g_signal_pipe[2] = {-1, -1};

extern "C" void on_terminate_signal(int) {
  const char byte = 1;
  // Best-effort: if the pipe is already closed we are shutting down anyway.
  (void)!::write(g_signal_pipe[1], &byte, 1);
}

/// Parses "name=path[,name=path...]" into (name, path) pairs.
std::vector<std::pair<std::string, std::string>> parse_models(
    const std::string& spec) {
  std::vector<std::pair<std::string, std::string>> out;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string item = spec.substr(pos, comma - pos);
    const std::size_t eq = item.find('=');
    LS_CHECK(eq != std::string::npos && eq > 0 && eq + 1 < item.size(),
             "--models expects name=path[,name=path...], got '" << item
                                                                << "'");
    out.emplace_back(item.substr(0, eq), item.substr(eq + 1));
    pos = comma + 1;
  }
  LS_CHECK(!out.empty(), "--models must name at least one model");
  return out;
}

int run(int argc, char** argv) {
  ls::CliParser cli("serve_tool",
                    "Persistent prediction-serving daemon with request "
                    "batching, admission control, graceful drain and hot "
                    "model reload");
  cli.add_flag("models", "", "models to host: name=path[,name=path...]");
  cli.add_flag("socket", "", "unix-domain socket path to listen on");
  cli.add_flag("port", "-1",
               "loopback TCP port to listen on instead of --socket "
               "(0 = kernel-assigned, printed at startup)");
  cli.add_flag("workers", "2", "scoring worker threads");
  cli.add_flag("max-batch", "64", "requests coalesced per SMSV flush");
  cli.add_flag("deadline-ms", "2",
               "micro-batch flush deadline in ms (0 = greedy flush)");
  cli.add_flag("max-queue", "1024",
               "admission limit: queued requests beyond this are shed");
  cli.add_flag("latency-budget-ms", "0",
               "shed requests older than this at dequeue (0 = off)");
  cli.add_flag("max-connections", "256",
               "connection cap; at the cap the oldest idle connection is "
               "evicted (0 = unlimited)");
  cli.add_flag("read-timeout-ms", "5000",
               "per-frame receive budget once the first byte arrived "
               "(0 = unbounded)");
  cli.add_flag("write-timeout-ms", "5000",
               "per-frame send budget (0 = unbounded)");
  cli.add_flag("idle-timeout-ms", "0",
               "close connections idle between frames for this long "
               "(0 = keep forever)");
  cli.add_flag("drain-ms", "5000",
               "bound on finishing in-flight work after SIGTERM/SIGINT");
  cli.add_flag("policy", "empirical",
               "layout policy: empirical|heuristic|learned|fixed");
  cli.add_flag("fixed-format", "CSR",
               "layout used when --policy fixed (DEN|CSR|COO|ELL|DIA|CSC|"
               "BCSR|HYB|JDS)");
  cli.add_flag("hint", "throughput",
               "deployment hint for load-time layout probes: "
               "latency|throughput");
  cli.add_flag("reschedule", "false",
               "enable the online layout bandit: sample live per-layout "
               "timings and re-materialise models in a decisively better "
               "layout off-path");
  cli.add_flag("reschedule-interval-ms", "100",
               "cadence of the background layout-policy thread");
  cli.add_flag("reschedule-threshold", "1.2",
               "switch only when the candidate layout is at least this "
               "factor faster than the current one");
  cli.add_flag("reschedule-min-obs", "8",
               "batches observed on the current layout before the bandit "
               "may switch away from it");
  cli.add_flag("reschedule-max-switches", "4",
               "per-model lifetime budget of online layout switches");
  cli.add_flag("reschedule-hysteresis-ms", "500",
               "minimum dwell time between switches of the same model");
  cli.add_flag("reschedule-extended", "false",
               "bandit arms cover all nine formats instead of the basic "
               "five");
  ls::add_observability_flags(cli);
  if (!cli.parse(argc, argv)) return 0;
  const ls::ObservabilityScope observability(cli);

  ls::serve::ServeOptions opts;
  opts.workers = static_cast<int>(cli.get_int("workers"));
  opts.batcher.max_batch = static_cast<ls::index_t>(cli.get_int("max-batch"));
  opts.batcher.deadline_ms = cli.get_double("deadline-ms");
  opts.batcher.max_queue =
      static_cast<std::size_t>(cli.get_int("max-queue"));
  opts.latency_budget_ms = cli.get_double("latency-budget-ms");
  opts.sched.policy = ls::parse_policy(cli.get("policy"));
  opts.sched.fixed_format = ls::parse_format(cli.get("fixed-format"));
  opts.hint = ls::parse_deployment_hint(cli.get("hint"));
  opts.reschedule.enabled = cli.get_bool("reschedule");
  opts.reschedule.interval_ms = cli.get_double("reschedule-interval-ms");
  opts.reschedule.switch_threshold = cli.get_double("reschedule-threshold");
  opts.reschedule.min_observations = cli.get_int("reschedule-min-obs");
  opts.reschedule.max_switches =
      static_cast<ls::index_t>(cli.get_int("reschedule-max-switches"));
  opts.reschedule.hysteresis_ms = cli.get_double("reschedule-hysteresis-ms");
  opts.reschedule.include_extended = cli.get_bool("reschedule-extended");

  ls::serve::ServerOptions listen;
  listen.unix_path = cli.get("socket");
  listen.tcp_port = static_cast<int>(cli.get_int("port"));
  listen.max_connections =
      static_cast<std::size_t>(cli.get_int("max-connections"));
  listen.read_timeout_ms = cli.get_double("read-timeout-ms");
  listen.write_timeout_ms = cli.get_double("write-timeout-ms");
  listen.idle_timeout_ms = cli.get_double("idle-timeout-ms");
  const double drain_ms = cli.get_double("drain-ms");
  LS_CHECK(!listen.unix_path.empty() || listen.tcp_port >= 0,
           "pass --socket PATH or --port N (0 = kernel-assigned)");

  ls::serve::ServeEngine engine(opts);
  for (const auto& [name, path] : parse_models(cli.get("models"))) {
    engine.load_model(name, path);
    const auto m = engine.model(name);
    std::printf("loaded %-16s v%lld  layout=%s  from %s\n", name.c_str(),
                static_cast<long long>(m->version),
                std::string(ls::format_name(m->predictor.layout())).c_str(),
                path.c_str());
  }
  engine.start();

  ls::serve::ServeServer server(engine, listen);
  server.start();
  if (!listen.unix_path.empty()) {
    std::printf("serving on unix:%s  (workers=%d batch=%d deadline=%gms "
                "queue=%zu hint=%s)\n",
                listen.unix_path.c_str(), opts.workers,
                static_cast<int>(opts.batcher.max_batch),
                opts.batcher.deadline_ms, opts.batcher.max_queue,
                ls::deployment_hint_name(opts.hint));
  } else {
    std::printf("serving on tcp:127.0.0.1:%d  (workers=%d batch=%d "
                "deadline=%gms queue=%zu hint=%s)\n",
                server.port(), opts.workers,
                static_cast<int>(opts.batcher.max_batch),
                opts.batcher.deadline_ms, opts.batcher.max_queue,
                ls::deployment_hint_name(opts.hint));
  }
  if (opts.reschedule.enabled) {
    std::printf("online rescheduling on (interval=%gms threshold=%g "
                "min-obs=%lld max-switches=%d hysteresis=%gms arms=%s)\n",
                opts.reschedule.interval_ms,
                opts.reschedule.switch_threshold,
                static_cast<long long>(opts.reschedule.min_observations),
                static_cast<int>(opts.reschedule.max_switches),
                opts.reschedule.hysteresis_ms,
                opts.reschedule.include_extended ? "extended" : "basic");
  }
  std::fflush(stdout);

  // A dead peer must surface as a write error on its own connection, not
  // kill the whole daemon.
  std::signal(SIGPIPE, SIG_IGN);
  LS_CHECK(::pipe(g_signal_pipe) == 0, "serve_tool: pipe() failed");
  struct sigaction sa{};
  sa.sa_handler = on_terminate_signal;
  sigemptyset(&sa.sa_mask);
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);

  std::thread signal_watcher([&] {
    char byte = 0;
    ssize_t n;
    do {
      n = ::read(g_signal_pipe[0], &byte, 1);
    } while (n < 0 && errno == EINTR);
    if (n <= 0) return;  // write end closed: normal shutdown, nothing to do
    std::printf("signal received, draining (bound %gms)...\n", drain_ms);
    std::fflush(stdout);
    const bool quiesced = server.drain(drain_ms);
    std::printf("drain %s in %.3fs\n",
                quiesced ? "complete" : "timed out",
                server.server_stats().drain_seconds);
    std::fflush(stdout);
    server.stop();  // wakes server.wait() below
  });

  server.wait();  // until kShutdownReq, SIGTERM/SIGINT drain, or stop()

  // Unblock the watcher if it is still parked on the pipe (shutdown came
  // through the protocol verb), then finish teardown in one place.
  ::close(g_signal_pipe[1]);
  g_signal_pipe[1] = -1;
  signal_watcher.join();
  ::close(g_signal_pipe[0]);
  g_signal_pipe[0] = -1;

  server.stop();
  engine.stop();

  std::printf("--- final stats ---\n%s%s", engine.stats_text().c_str(),
              server.stats_text().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "serve_tool: %s\n", e.what());
    return 1;
  }
}
