// serve_tool — the standalone prediction-serving daemon.
//
// Hosts one or more trained SVM model files behind the framed socket
// protocol (see src/serve/protocol.hpp) and serves predict / reload /
// stats / ping / shutdown requests until a client asks it to stop:
//
//   # train something first (writes /tmp/ls_demo_model.txt)
//   ./svm_tool --mode demo --dataset breast_cancer
//
//   # serve it on a unix socket
//   ./serve_tool --socket /tmp/ls_serve.sock --models demo=/tmp/ls_demo_model.txt
//
//   # talk to it from another terminal
//   ./serve_client --socket /tmp/ls_serve.sock --mode ping
//   ./serve_client --socket /tmp/ls_serve.sock --mode bench --model demo
//       --data /tmp/ls_demo_test.libsvm   (one line)
//   ./serve_client --socket /tmp/ls_serve.sock --mode shutdown
#include <cstdio>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/error.hpp"
#include "common/observability.hpp"
#include "sched/scheduler.hpp"
#include "serve/engine.hpp"
#include "serve/server.hpp"

namespace {

/// Parses "name=path[,name=path...]" into (name, path) pairs.
std::vector<std::pair<std::string, std::string>> parse_models(
    const std::string& spec) {
  std::vector<std::pair<std::string, std::string>> out;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string item = spec.substr(pos, comma - pos);
    const std::size_t eq = item.find('=');
    LS_CHECK(eq != std::string::npos && eq > 0 && eq + 1 < item.size(),
             "--models expects name=path[,name=path...], got '" << item
                                                                << "'");
    out.emplace_back(item.substr(0, eq), item.substr(eq + 1));
    pos = comma + 1;
  }
  LS_CHECK(!out.empty(), "--models must name at least one model");
  return out;
}

int run(int argc, char** argv) {
  ls::CliParser cli("serve_tool",
                    "Persistent prediction-serving daemon with request "
                    "batching, admission control and hot model reload");
  cli.add_flag("models", "", "models to host: name=path[,name=path...]");
  cli.add_flag("socket", "", "unix-domain socket path to listen on");
  cli.add_flag("port", "-1",
               "loopback TCP port to listen on instead of --socket "
               "(0 = kernel-assigned, printed at startup)");
  cli.add_flag("workers", "2", "scoring worker threads");
  cli.add_flag("max-batch", "64", "requests coalesced per SMSV flush");
  cli.add_flag("deadline-ms", "2",
               "micro-batch flush deadline in ms (0 = greedy flush)");
  cli.add_flag("max-queue", "1024",
               "admission limit: queued requests beyond this are shed");
  cli.add_flag("latency-budget-ms", "0",
               "shed requests older than this at dequeue (0 = off)");
  cli.add_flag("policy", "empirical",
               "layout policy: empirical|heuristic|learned|fixed");
  cli.add_flag("hint", "throughput",
               "deployment hint for load-time layout probes: "
               "latency|throughput");
  ls::add_observability_flags(cli);
  if (!cli.parse(argc, argv)) return 0;
  const ls::ObservabilityScope observability(cli);

  ls::serve::ServeOptions opts;
  opts.workers = static_cast<int>(cli.get_int("workers"));
  opts.batcher.max_batch = static_cast<ls::index_t>(cli.get_int("max-batch"));
  opts.batcher.deadline_ms = cli.get_double("deadline-ms");
  opts.batcher.max_queue =
      static_cast<std::size_t>(cli.get_int("max-queue"));
  opts.latency_budget_ms = cli.get_double("latency-budget-ms");
  opts.sched.policy = ls::parse_policy(cli.get("policy"));
  opts.hint = ls::parse_deployment_hint(cli.get("hint"));

  ls::serve::ServerOptions listen;
  listen.unix_path = cli.get("socket");
  listen.tcp_port = static_cast<int>(cli.get_int("port"));
  LS_CHECK(!listen.unix_path.empty() || listen.tcp_port >= 0,
           "pass --socket PATH or --port N (0 = kernel-assigned)");

  ls::serve::ServeEngine engine(opts);
  for (const auto& [name, path] : parse_models(cli.get("models"))) {
    engine.load_model(name, path);
    const auto m = engine.model(name);
    std::printf("loaded %-16s v%lld  layout=%s  from %s\n", name.c_str(),
                static_cast<long long>(m->version),
                std::string(ls::format_name(m->predictor.layout())).c_str(),
                path.c_str());
  }
  engine.start();

  ls::serve::ServeServer server(engine, listen);
  server.start();
  if (!listen.unix_path.empty()) {
    std::printf("serving on unix:%s  (workers=%d batch=%d deadline=%gms "
                "queue=%zu hint=%s)\n",
                listen.unix_path.c_str(), opts.workers,
                static_cast<int>(opts.batcher.max_batch),
                opts.batcher.deadline_ms, opts.batcher.max_queue,
                ls::deployment_hint_name(opts.hint));
  } else {
    std::printf("serving on tcp:127.0.0.1:%d  (workers=%d batch=%d "
                "deadline=%gms queue=%zu hint=%s)\n",
                server.port(), opts.workers,
                static_cast<int>(opts.batcher.max_batch),
                opts.batcher.deadline_ms, opts.batcher.max_queue,
                ls::deployment_hint_name(opts.hint));
  }
  std::fflush(stdout);

  server.wait();  // until a client sends kShutdownReq
  server.stop();
  engine.stop();

  std::printf("--- final stats ---\n%s", engine.stats_text().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "serve_tool: %s\n", e.what());
    return 1;
  }
}
