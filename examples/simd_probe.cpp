// Reports the SIMD dispatch state of this host. Used by scripts/check.sh
// to enumerate the levels worth re-running the suite under, and handy for
// ops ("which kernels does this box actually run?").
//
//   simd_probe            human-readable report
//   simd_probe --levels   one supported level name per line (script food)
#include <cstdio>
#include <cstring>
#include <string>

#include "kernels/simd.hpp"

int main(int argc, char** argv) {
  const bool levels_only = argc > 1 && std::strcmp(argv[1], "--levels") == 0;
  using ls::simd::SimdLevel;
  if (levels_only) {
    for (int l = 0; l < ls::simd::kNumSimdLevels; ++l) {
      const auto level = static_cast<SimdLevel>(l);
      if (ls::simd::level_supported(level)) {
        std::printf("%s\n", std::string(ls::simd::level_name(level)).c_str());
      }
    }
    return 0;
  }
  std::printf("active:  %s (width %d)\n",
              std::string(ls::simd::level_name(ls::simd::active_level())).c_str(),
              ls::simd::kernels().width);
  std::printf("native:  %s\n",
              std::string(ls::simd::level_name(ls::simd::best_supported())).c_str());
  for (int l = 0; l < ls::simd::kNumSimdLevels; ++l) {
    const auto level = static_cast<SimdLevel>(l);
    std::printf("%-7s  compiled=%s supported=%s\n",
                std::string(ls::simd::level_name(level)).c_str(),
                ls::simd::level_compiled(level) ? "yes" : "no",
                ls::simd::level_supported(level) ? "yes" : "no");
  }
  std::printf("fallback_events: %lld\n",
              static_cast<long long>(ls::simd::fallback_events()));
  return 0;
}
