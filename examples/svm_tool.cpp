// svm_tool — a LIBSVM-style command-line workflow on top of the library:
//
//   # train on a libsvm file (or a built-in profile), save the model
//   ./svm_tool --mode train --data train.libsvm --model model.txt
//
//   # predict a libsvm file with a saved model
//   ./svm_tool --mode predict --data test.libsvm --model model.txt
//
//   # end-to-end demo on a synthetic profile (writes files to /tmp)
//   ./svm_tool --mode demo --dataset adult
//
// Demonstrates the full production path: read -> scale -> schedule ->
// train -> serialise -> reload -> predict.
#include <cstdio>

#include "common/cli.hpp"
#include "common/observability.hpp"
#include "data/libsvm_io.hpp"
#include "data/profiles.hpp"
#include "data/scaling.hpp"
#include "svm/serialize.hpp"
#include "svm/trainer.hpp"

namespace {

using namespace ls;

void train_mode(const std::string& data_path, const std::string& model_path,
                SvmParams params, const std::string& policy, bool scale,
                const std::string& checkpoint_path = "") {
  params.checkpoint_path = checkpoint_path;
  Dataset ds = read_libsvm_file(data_path);
  if (scale) {
    ds = apply_scaling(ds, fit_scaling(ds));
  }
  SchedulerOptions sched;
  sched.policy = parse_policy(policy);
  const TrainResult r = train_adaptive(ds, params, sched);
  std::printf("%s\n", r.decision.rationale.c_str());
  std::printf("trained in %.3f s: %lld iterations, %lld SVs, objective "
              "%.6f\n", r.total_seconds,
              static_cast<long long>(r.stats.iterations),
              static_cast<long long>(r.stats.support_vectors),
              r.stats.objective);
  save_model_file(model_path, r.model);
  std::printf("model saved to %s\n", model_path.c_str());
}

void predict_mode(const std::string& data_path,
                  const std::string& model_path) {
  const SvmModel model = load_model_file(model_path);
  const Dataset ds = read_libsvm_file(data_path, model.num_features);
  SparseVector row;
  index_t correct = 0;
  for (index_t i = 0; i < ds.rows(); ++i) {
    ds.X.gather_row(i, row);
    const real_t pred = model.predict(row);
    std::printf("%g\n", pred);
    correct += pred == ds.y[static_cast<std::size_t>(i)];
  }
  std::fprintf(stderr, "accuracy: %.4f (%lld/%lld)\n",
               static_cast<double>(correct) / static_cast<double>(ds.rows()),
               static_cast<long long>(correct),
               static_cast<long long>(ds.rows()));
}

void demo_mode(const std::string& profile, const SvmParams& params) {
  const Dataset full = profile_by_name(profile).generate();
  const auto [train, test] = full.split(0.8);

  const std::string train_path = "/tmp/ls_demo_train.libsvm";
  const std::string test_path = "/tmp/ls_demo_test.libsvm";
  const std::string model_path = "/tmp/ls_demo_model.txt";
  write_libsvm_file(train_path, train);
  write_libsvm_file(test_path, test);
  std::printf("wrote %s and %s\n", train_path.c_str(), test_path.c_str());

  train_mode(train_path, model_path, params, "empirical", false);

  const SvmModel model = load_model_file(model_path);
  const Dataset reloaded = read_libsvm_file(test_path, model.num_features);
  std::printf("reloaded model accuracy on the test split: %.4f\n",
              model.accuracy(reloaded));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ls;
  CliParser cli("svm_tool", "train / predict with libsvm files");
  cli.add_flag("mode", "demo", "train | predict | demo");
  cli.add_flag("data", "", "libsvm data file (train/predict modes)");
  cli.add_flag("model", "/tmp/ls_model.txt", "model file path");
  cli.add_flag("dataset", "adult", "profile name for demo mode");
  cli.add_flag("kernel", "linear", "kernel type");
  cli.add_flag("c", "1.0", "regularisation constant");
  cli.add_flag("gamma", "0.5", "kernel gamma");
  cli.add_flag("policy", "empirical", "layout policy");
  cli.add_flag("scale", "false", "apply [0,1] feature scaling before train");
  cli.add_flag("checkpoint", "",
               "checkpoint file: save snapshots while training and resume "
               "from an interrupted run (train mode)");
  add_observability_flags(cli);
  if (!cli.parse(argc, argv)) return 0;
  const ObservabilityScope observability(cli);

  SvmParams params;
  params.kernel.type = parse_kernel(cli.get("kernel"));
  params.kernel.gamma = cli.get_double("gamma");
  params.c = cli.get_double("c");

  const std::string mode = cli.get("mode");
  if (mode == "train") {
    train_mode(cli.get("data"), cli.get("model"), params, cli.get("policy"),
               cli.get_bool("scale"), cli.get("checkpoint"));
  } else if (mode == "predict") {
    predict_mode(cli.get("data"), cli.get("model"));
  } else if (mode == "demo") {
    demo_mode(cli.get("dataset"), params);
  } else {
    throw Error("unknown mode '" + mode + "'");
  }
  return 0;
}
