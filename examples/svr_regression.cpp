// Epsilon-SVR with runtime layout scheduling: fit a noisy nonlinear
// function, report the tube/support-vector trade-off, and show the layout
// decision carrying over from classification (Section II-A: regression
// shares the data structure, hence the SMSV bottleneck).
//
//   ./svr_regression --samples 200 --epsilon 0.05 --gamma 4.0
#include <cmath>
#include <cstdio>

#include "common/cli.hpp"
#include "common/observability.hpp"
#include "common/rng.hpp"
#include "svm/svr.hpp"

int main(int argc, char** argv) {
  using namespace ls;
  CliParser cli("svr_regression", "epsilon-SVR on a noisy 1-D function");
  cli.add_flag("samples", "200", "training samples");
  cli.add_flag("epsilon", "0.05", "insensitive-tube half width");
  cli.add_flag("c", "50.0", "regularisation constant");
  cli.add_flag("gamma", "4.0", "Gaussian kernel width");
  cli.add_flag("noise", "0.05", "target noise stddev");
  add_observability_flags(cli);
  if (!cli.parse(argc, argv)) return 0;
  const ObservabilityScope observability(cli);

  const auto n = static_cast<index_t>(cli.get_int("samples"));
  const real_t noise = cli.get_double("noise");

  // Targets z = sin(2x) + 0.5 cos(5x) on x in [0, 3].
  Rng rng(0x53B);
  std::vector<Triplet> t;
  std::vector<real_t> y;
  for (index_t i = 0; i < n; ++i) {
    const real_t x = static_cast<real_t>(i) / n * 3.0;
    if (x != 0.0) t.push_back({i, 0, x});
    y.push_back(std::sin(2.0 * x) + 0.5 * std::cos(5.0 * x) +
                rng.normal(0.0, noise));
  }
  Dataset ds{"waves", CooMatrix(n, 1, std::move(t)), std::move(y)};

  SvrParams params;
  params.epsilon = cli.get_double("epsilon");
  params.svm.c = cli.get_double("c");
  params.svm.kernel.type = KernelType::kGaussian;
  params.svm.kernel.gamma = cli.get_double("gamma");

  SchedulerOptions sched;
  sched.policy = SchedulePolicy::kEmpirical;
  sched.autotune.sample_rows = 0;
  const SvrResult r = train_svr(ds, params, sched);

  std::printf("%s\n", r.decision.rationale.c_str());
  std::printf("converged: %s in %lld iterations (%.3f s)\n",
              r.stats.converged ? "yes" : "no",
              static_cast<long long>(r.stats.iterations), r.total_seconds);
  std::printf("support vectors: %zu / %lld (tube epsilon = %g)\n",
              r.model.support_vectors.size(), static_cast<long long>(n),
              params.epsilon);
  std::printf("training MAE: %.4f, MSE: %.5f\n", r.model.mae(ds),
              r.model.mse(ds));

  // A few predictions along the curve.
  std::printf("\n    x     target   predicted\n");
  for (real_t x : {0.3, 0.9, 1.5, 2.1, 2.7}) {
    SparseVector probe({0}, {x});
    const real_t truth = std::sin(2.0 * x) + 0.5 * std::cos(5.0 * x);
    std::printf("  %.2f   %+.4f    %+.4f\n", x, truth,
                r.model.predict(probe));
  }
  return 0;
}
