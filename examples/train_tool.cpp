// train_tool — the streaming trainer daemon.
//
// Ingests labeled examples over the framed socket protocol (kIngest verb),
// keeps a bounded sliding window per model, retrains on a steady-clock
// cadence with the SMO solver warm-started from the previous alpha vector,
// writes each accepted model atomically (CRC-verified), and publishes it
// into the serve tier with a reload — against a single serve daemon or a
// router (fleet-wide fan-out). The full walkthrough lives in README.md
// ("Continuous learning").
//
//   # trainer listening on one socket, publishing into a serve daemon
//   ./train_tool --socket /tmp/ls_train.sock --models demo=/tmp/model.txt
//       --publish-socket /tmp/ls_serve.sock --retrain-interval-ms 500
//
//   # stream examples into it
//   ./serve_client --socket /tmp/ls_train.sock --mode ingest --model demo
//       --data /tmp/ls_demo_train.libsvm
//
//   # watch versions move
//   ./serve_client --socket /tmp/ls_train.sock --mode models
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "common/cli.hpp"
#include "common/error.hpp"
#include "common/observability.hpp"
#include "formats/format.hpp"
#include "serve/server.hpp"
#include "train/continuous_trainer.hpp"
#include "train/handler.hpp"

namespace {

int g_signal_pipe[2] = {-1, -1};

extern "C" void on_terminate_signal(int) {
  const char byte = 1;
  (void)!::write(g_signal_pipe[1], &byte, 1);
}

/// Parses "name=path[,name=path...]" into (name, model_path) pairs.
std::vector<std::pair<std::string, std::string>> parse_models(
    const std::string& spec) {
  std::vector<std::pair<std::string, std::string>> out;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string item = spec.substr(pos, comma - pos);
    const std::size_t eq = item.find('=');
    LS_CHECK(eq != std::string::npos && eq > 0 && eq + 1 < item.size(),
             "--models expects name=path[,name=path...], got '" << item
                                                                << "'");
    out.emplace_back(item.substr(0, eq), item.substr(eq + 1));
    pos = comma + 1;
  }
  LS_CHECK(!out.empty(), "--models must name at least one model");
  return out;
}

int run(int argc, char** argv) {
  ls::CliParser cli("train_tool",
                    "Streaming trainer daemon: ingests labeled examples, "
                    "retrains on a cadence with warm-started SMO, writes "
                    "CRC-verified checkpoints and publishes accepted models "
                    "into the serve tier via reload");
  cli.add_flag("models", "",
               "training streams: name=model_path[,name=model_path...] "
               "(model_path is where accepted models are written — host "
               "the same path in serve_tool)");
  cli.add_flag("socket", "", "unix-domain socket path to listen on");
  cli.add_flag("port", "-1",
               "loopback TCP port to listen on instead of --socket "
               "(0 = kernel-assigned)");
  cli.add_flag("window", "4096", "sliding-window capacity in examples");
  cli.add_flag("retrain-interval-ms", "1000",
               "retrain cadence per model (steady clock)");
  cli.add_flag("min-new", "1",
               "skip a cadence tick unless at least this many new examples "
               "arrived since the last retrain");
  cli.add_flag("checkpoint-interval", "256",
               "solver iterations between mid-solve checkpoint saves");
  cli.add_flag("no-wal", "false",
               "disable the ingest journal: acked examples are memory-only "
               "and a crash loses the window (by default every model "
               "journals to <model_path>.wal and replays it on startup)");
  cli.add_flag("wal-sync", "always",
               "journal fsync policy: always (acked implies durable) | "
               "rotate (fsync per segment) | never (OS decides)");
  cli.add_flag("wal-segment-bytes", "262144", "journal segment size");
  cli.add_flag("publish-socket", "",
               "serve daemon or router unix socket to publish reloads to");
  cli.add_flag("publish-port", "-1",
               "serve daemon or router TCP port to publish reloads to");
  cli.add_flag("publish-timeout-ms", "5000", "per-publish request budget");
  cli.add_flag("kernel", "linear", "kernel type (linear|poly|gaussian|...)");
  cli.add_flag("gamma", "0.5", "kernel gamma");
  cli.add_flag("c", "1", "SVM box constraint C");
  cli.add_flag("tolerance", "0.001", "KKT tolerance");
  cli.add_flag("layout", "CSR", "training-matrix layout");
  cli.add_flag("max-connections", "256", "connection cap (0 = unlimited)");
  cli.add_flag("read-timeout-ms", "5000", "per-frame receive budget");
  cli.add_flag("write-timeout-ms", "5000", "per-frame send budget");
  cli.add_flag("idle-timeout-ms", "0",
               "close connections idle this long (0 = keep forever)");
  cli.add_flag("drain-ms", "5000",
               "bound on finishing in-flight work after SIGTERM/SIGINT");
  ls::add_observability_flags(cli);
  if (!cli.parse(argc, argv)) return 0;
  const ls::ObservabilityScope observability(cli);

  ls::train::TrainerOptions opts;
  opts.svm.kernel.type = ls::parse_kernel(cli.get("kernel"));
  opts.svm.kernel.gamma = cli.get_double("gamma");
  opts.svm.c = cli.get_double("c");
  opts.svm.tolerance = cli.get_double("tolerance");
  opts.layout = ls::parse_format(cli.get("layout"));
  opts.retrain_interval_ms = cli.get_double("retrain-interval-ms");
  opts.min_new_examples = static_cast<std::size_t>(cli.get_int("min-new"));
  opts.checkpoint_interval =
      static_cast<ls::index_t>(cli.get_int("checkpoint-interval"));
  opts.publish_unix = cli.get("publish-socket");
  opts.publish_tcp = static_cast<int>(cli.get_int("publish-port"));
  opts.publish_timeout_ms = cli.get_double("publish-timeout-ms");
  const std::string wal_sync = cli.get("wal-sync");
  if (wal_sync == "always") {
    opts.wal_sync = ls::WalSyncPolicy::kAlways;
  } else if (wal_sync == "rotate") {
    opts.wal_sync = ls::WalSyncPolicy::kRotate;
  } else if (wal_sync == "never") {
    opts.wal_sync = ls::WalSyncPolicy::kNever;
  } else {
    LS_CHECK(false, "--wal-sync must be always|rotate|never, got '"
                        << wal_sync << "'");
  }
  opts.wal_segment_bytes =
      static_cast<std::size_t>(cli.get_int("wal-segment-bytes"));

  ls::serve::ServerOptions listen;
  listen.unix_path = cli.get("socket");
  listen.tcp_port = static_cast<int>(cli.get_int("port"));
  listen.max_connections =
      static_cast<std::size_t>(cli.get_int("max-connections"));
  listen.read_timeout_ms = cli.get_double("read-timeout-ms");
  listen.write_timeout_ms = cli.get_double("write-timeout-ms");
  listen.idle_timeout_ms = cli.get_double("idle-timeout-ms");
  const double drain_ms = cli.get_double("drain-ms");
  LS_CHECK(!listen.unix_path.empty() || listen.tcp_port >= 0,
           "pass --socket PATH or --port N (0 = kernel-assigned)");

  ls::train::ContinuousTrainer trainer(opts);
  const auto window = static_cast<std::size_t>(cli.get_int("window"));
  const bool no_wal = cli.get_bool("no-wal");
  for (const auto& [name, path] : parse_models(cli.get("models"))) {
    ls::train::TrainerModelConfig cfg;
    cfg.name = name;
    cfg.model_path = path;
    cfg.window_capacity = window;
    if (!no_wal) cfg.wal_dir = path + ".wal";
    trainer.add_model(cfg);
    const ls::train::TrainerModelStats ms = trainer.model_stats(name);
    std::printf("training %-16s -> %s  (window=%zu journal=%s replayed=%lld)\n",
                name.c_str(), path.c_str(), window,
                no_wal ? "off"
                       : ms.journal_degraded ? "degraded" : cfg.wal_dir.c_str(),
                static_cast<long long>(ms.journal_replayed));
  }
  trainer.start();

  ls::train::TrainFrameHandler handler(trainer);
  ls::serve::ServeServer server(handler, listen);
  server.start();
  if (!listen.unix_path.empty()) {
    std::printf("ingesting on unix:%s  (retrain=%gms min-new=%zu "
                "publish=%s)\n",
                listen.unix_path.c_str(), opts.retrain_interval_ms,
                opts.min_new_examples,
                opts.publish_unix.empty()
                    ? (opts.publish_tcp >= 0 ? "tcp" : "off")
                    : opts.publish_unix.c_str());
  } else {
    std::printf("ingesting on tcp:127.0.0.1:%d  (retrain=%gms min-new=%zu)\n",
                server.port(), opts.retrain_interval_ms,
                opts.min_new_examples);
  }
  std::fflush(stdout);

  std::signal(SIGPIPE, SIG_IGN);
  LS_CHECK(::pipe(g_signal_pipe) == 0, "train_tool: pipe() failed");
  struct sigaction sa{};
  sa.sa_handler = on_terminate_signal;
  sigemptyset(&sa.sa_mask);
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);

  std::thread signal_watcher([&] {
    char byte = 0;
    ssize_t n;
    do {
      n = ::read(g_signal_pipe[0], &byte, 1);
    } while (n < 0 && errno == EINTR);
    if (n <= 0) return;
    std::printf("signal received, draining (bound %gms)...\n", drain_ms);
    std::fflush(stdout);
    const bool quiesced = server.drain(drain_ms);
    std::printf("drain %s in %.3fs\n", quiesced ? "complete" : "timed out",
                server.server_stats().drain_seconds);
    std::fflush(stdout);
    server.stop();
  });

  server.wait();

  ::close(g_signal_pipe[1]);
  g_signal_pipe[1] = -1;
  signal_watcher.join();
  ::close(g_signal_pipe[0]);
  g_signal_pipe[0] = -1;

  server.stop();
  trainer.stop();

  std::printf("--- final stats ---\n%s%s", trainer.stats_text().c_str(),
              server.stats_text().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "train_tool: %s\n", e.what());
    return 1;
  }
}
