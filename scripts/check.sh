#!/usr/bin/env bash
# Tier-1 gate: build and run the full test suite three times — a plain
# Release build (run twice: serial and OMP_NUM_THREADS=2, which must agree),
# an AddressSanitizer + UBSan build (-DLS_SANITIZE=ON), and a
# ThreadSanitizer build (-DLS_SANITIZE=thread) that checks the kernel-cache
# prefetch pipeline's std::thread machinery. All must be green before a
# change lands.
#
# Usage: scripts/check.sh [--plain-only|--sanitize-only|--tsan-only]
set -euo pipefail

cd "$(dirname "$0")/.."

run_suite() {
  local build_dir="$1"
  shift
  echo "==> configuring ${build_dir} ($*)"
  cmake -B "${build_dir}" -S . "$@"
  echo "==> building ${build_dir}"
  cmake --build "${build_dir}" -j
  echo "==> testing ${build_dir}"
  ctest --test-dir "${build_dir}" --output-on-failure -j "$(nproc)"
}

metrics_smoke() {
  # Observability smoke: a real tool run with collection on must produce
  # a parseable metrics report with the scheduler's decision in it.
  local out
  out="$(mktemp /tmp/ls_metrics_smoke.XXXXXX.json)"
  echo "==> metrics smoke (LS_METRICS=${out})"
  LS_METRICS="${out}" ./build/examples/quickstart \
    --dataset breast_cancer >/dev/null
  python3 - "${out}" <<'PY'
import json, sys
with open(sys.argv[1]) as f:
    report = json.load(f)
for key in ("schema", "counters", "timers", "annotations"):
    assert key in report, f"missing {key!r} in metrics report"
assert report["counters"].get("svm.smo.iterations_total", 0) > 0
assert "sched.chosen_format" in report["annotations"]
print("metrics report OK:", report["annotations"]["sched.chosen_format"])
PY
  rm -f "${out}"
}

mode="${1:-all}"

if [[ "${mode}" == "all" || "${mode}" == "--plain-only" ]]; then
  run_suite build
  # Thread-count invariance gate: the same suite must pass with OpenMP
  # parallel regions actually running multiple threads (the deterministic
  # WSS folds and the bit-identical-model tests do the real checking).
  echo "==> re-testing build with OMP_NUM_THREADS=2"
  OMP_NUM_THREADS=2 ctest --test-dir build --output-on-failure -j "$(nproc)"
  metrics_smoke
fi

if [[ "${mode}" == "all" || "${mode}" == "--sanitize-only" ]]; then
  # ASan's allocator dislikes being re-run in a dirty tree configured
  # without sanitizers, so it gets its own build directory.
  run_suite build-asan -DLS_SANITIZE=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo
fi

if [[ "${mode}" == "all" || "${mode}" == "--tsan-only" ]]; then
  # TSan stage: compiled without OpenMP (libgomp is not TSan-instrumented,
  # see the top-level CMakeLists), so this exercises the std::thread code —
  # the prefetch pipeline, its atomic counters and the worker join paths.
  run_suite build-tsan -DLS_SANITIZE=thread -DCMAKE_BUILD_TYPE=RelWithDebInfo
fi

echo "==> all checks passed"
