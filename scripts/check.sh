#!/usr/bin/env bash
# Tier-1 gate: build and run the full test suite several times — a plain
# Release build (run serially, with OMP_NUM_THREADS=2, and once per
# LS_SIMD level the host supports, all of which must agree), an
# AddressSanitizer + UBSan build (-DLS_SANITIZE=ON), and a
# ThreadSanitizer build (-DLS_SANITIZE=thread) that checks the kernel-cache
# prefetch pipeline's std::thread machinery. All must be green before a
# change lands.
#
# Usage: scripts/check.sh [--plain-only|--sanitize-only|--tsan-only]
set -euo pipefail

cd "$(dirname "$0")/.."

run_suite() {
  local build_dir="$1"
  shift
  echo "==> configuring ${build_dir} ($*)"
  cmake -B "${build_dir}" -S . "$@"
  echo "==> building ${build_dir}"
  cmake --build "${build_dir}" -j
  echo "==> testing ${build_dir}"
  ctest --test-dir "${build_dir}" --output-on-failure -j "$(nproc)"
}

metrics_smoke() {
  # Observability smoke: a real tool run with collection on must produce
  # a parseable metrics report with the scheduler's decision in it.
  local out
  out="$(mktemp /tmp/ls_metrics_smoke.XXXXXX.json)"
  echo "==> metrics smoke (LS_METRICS=${out})"
  LS_METRICS="${out}" ./build/examples/quickstart \
    --dataset breast_cancer >/dev/null
  python3 - "${out}" <<'PY'
import json, sys
with open(sys.argv[1]) as f:
    report = json.load(f)
for key in ("schema", "counters", "timers", "annotations"):
    assert key in report, f"missing {key!r} in metrics report"
assert report["counters"].get("svm.smo.iterations_total", 0) > 0
assert "sched.chosen_format" in report["annotations"]
print("metrics report OK:", report["annotations"]["sched.chosen_format"])
PY
  rm -f "${out}"
}

serve_smoke() {
  # Serving smoke: the whole daemon lifecycle against a real trained model.
  # Train the demo model, start serve_tool on a unix socket, push 1k
  # requests through serve_client, assert nothing was shed and the p95 is
  # sane, then shut the daemon down over the wire. Runs again in the TSan
  # stage so the batcher/worker/reload threading is race-checked end to end.
  local build_dir="$1"
  local sock
  sock="$(mktemp -u /tmp/ls_serve_smoke.XXXXXX.sock)"
  echo "==> serve smoke (${build_dir}, socket ${sock})"
  "./${build_dir}/examples/svm_tool" --mode demo \
    --dataset breast_cancer >/dev/null
  "./${build_dir}/examples/serve_tool" --socket "${sock}" \
    --models demo=/tmp/ls_demo_model.txt --workers 2 >/dev/null &
  local serve_pid=$!
  # The daemon creates the socket file once it is accepting connections.
  for _ in $(seq 1 100); do
    [[ -S "${sock}" ]] && break
    sleep 0.1
  done
  [[ -S "${sock}" ]] || { echo "serve_tool never came up"; exit 1; }
  "./${build_dir}/examples/serve_client" --socket "${sock}" --mode ping
  local bench_out
  bench_out="$("./${build_dir}/examples/serve_client" --socket "${sock}" \
    --mode bench --model demo --data /tmp/ls_demo_test.libsvm \
    --count 1000 --concurrency 8)"
  echo "${bench_out}"
  local line
  line="$(grep -E 'requests=[0-9]+ ok=' <<<"${bench_out}")"
  python3 - "${line}" <<'PY'
import sys
fields = dict(kv.split("=") for kv in sys.argv[1].split())
assert int(fields["ok"]) == int(fields["requests"]), fields
assert int(fields["shed"]) == 0, f"requests shed under smoke load: {fields}"
assert int(fields["errors"]) == 0, fields
assert int(fields["lost"]) == 0, fields
assert 0.0 < float(fields["p95_ms"]) < 1000.0, fields
print("serve bench OK: p95_ms=%s rps=%s" % (fields["p95_ms"], fields["rps"]))
PY
  "./${build_dir}/examples/serve_client" --socket "${sock}" --mode shutdown
  wait "${serve_pid}"
  rm -f "${sock}"
}

chaos_smoke() {
  # Robustness smoke, two layers:
  #   1. the in-process chaos soak (bench/serve_chaos): concurrent clients,
  #      garbage/torn/slow-loris connections, injected read faults and a
  #      mid-run server restart must end with zero errors, a bounded shed
  #      rate and a clean drain (the binary asserts all of it and exits 1
  #      otherwise);
  #   2. the real daemon under failpoint-injected socket faults: a
  #      retrying bench run must see zero caller-visible errors, and
  #      SIGTERM must drain the daemon to zero open connections.
  local build_dir="$1"
  echo "==> chaos smoke (${build_dir})"
  "./${build_dir}/bench/serve_chaos" --requests 2000 --concurrency 6
  local sock log
  sock="$(mktemp -u /tmp/ls_serve_chaos.XXXXXX.sock)"
  log="$(mktemp /tmp/ls_serve_chaos.XXXXXX.log)"
  [[ -f /tmp/ls_demo_model.txt ]] || "./${build_dir}/examples/svm_tool" \
    --mode demo --dataset breast_cancer >/dev/null
  # Daemon-side faults only (env is per-process): 1 ms stutter on the
  # first 100 connection reads, plus three torn response frames that the
  # client's retry loop must absorb.
  LS_FAILPOINTS='serve.conn.read=delay:1*100;serve.frame.partial=error@40*3' \
    "./${build_dir}/examples/serve_tool" --socket "${sock}" \
    --models demo=/tmp/ls_demo_model.txt --workers 2 \
    --read-timeout-ms 2000 --idle-timeout-ms 10000 \
    --drain-ms 5000 >"${log}" &
  local serve_pid=$!
  for _ in $(seq 1 100); do
    [[ -S "${sock}" ]] && break
    sleep 0.1
  done
  [[ -S "${sock}" ]] || { echo "serve_tool never came up"; cat "${log}"; exit 1; }
  # serve_client exits non-zero when any request failed after retries.
  "./${build_dir}/examples/serve_client" --socket "${sock}" \
    --mode bench --model demo --data /tmp/ls_demo_test.libsvm \
    --count 500 --concurrency 4 --retries 8 --timeout-ms 2000
  "./${build_dir}/examples/serve_client" --socket "${sock}" --mode health
  kill -TERM "${serve_pid}"
  if ! wait "${serve_pid}"; then
    echo "daemon exited non-zero after SIGTERM"; cat "${log}"; exit 1
  fi
  grep -q 'drain complete' "${log}" || {
    echo "daemon did not drain cleanly"; cat "${log}"; exit 1; }
  grep -q 'connections_open 0' "${log}" || {
    echo "daemon leaked connections"; cat "${log}"; exit 1; }
  echo "chaos smoke OK: daemon drained clean under injected socket faults"
  rm -f "${sock}" "${log}"
}

reschedule_smoke() {
  # Online-reschedule smoke: the daemon deliberately starts with a bad
  # fixed layout (DIA) and the bandit enabled. Live traffic must make the
  # rescheduler swap the model off that layout with zero lost requests,
  # the stats verb must report the swap and the bandit arms, and SIGTERM
  # must still drain the daemon cleanly. Runs again in the TSan stage so
  # the policy thread / worker / stats-reader interleavings are race-
  # checked end to end.
  local build_dir="$1"
  local sock log
  sock="$(mktemp -u /tmp/ls_resched_smoke.XXXXXX.sock)"
  log="$(mktemp /tmp/ls_resched_smoke.XXXXXX.log)"
  echo "==> reschedule smoke (${build_dir}, socket ${sock})"
  [[ -f /tmp/ls_demo_model.txt ]] || "./${build_dir}/examples/svm_tool" \
    --mode demo --dataset breast_cancer >/dev/null
  "./${build_dir}/examples/serve_tool" --socket "${sock}" \
    --models demo=/tmp/ls_demo_model.txt --workers 2 \
    --policy fixed --fixed-format DIA \
    --reschedule true --reschedule-interval-ms 10 \
    --reschedule-threshold 1.05 --reschedule-min-obs 4 \
    --reschedule-hysteresis-ms 50 --drain-ms 5000 >"${log}" &
  local serve_pid=$!
  for _ in $(seq 1 100); do
    [[ -S "${sock}" ]] && break
    sleep 0.1
  done
  [[ -S "${sock}" ]] || { echo "serve_tool never came up"; cat "${log}"; exit 1; }
  local bench_out
  bench_out="$("./${build_dir}/examples/serve_client" --socket "${sock}" \
    --mode bench --model demo --data /tmp/ls_demo_test.libsvm \
    --count 1000 --concurrency 8)"
  echo "${bench_out}"
  local line
  line="$(grep -E 'requests=[0-9]+ ok=' <<<"${bench_out}")"
  python3 - "${line}" <<'PY'
import sys
fields = dict(kv.split("=") for kv in sys.argv[1].split())
assert int(fields["ok"]) == int(fields["requests"]), fields
assert int(fields["shed"]) == 0, fields
assert int(fields["errors"]) == 0, fields
assert int(fields["lost"]) == 0, fields
print("reschedule bench OK: all %s requests served, none lost" % fields["requests"])
PY
  # The swap may land after the bench finishes (the policy thread keeps
  # judging the measured arms); poll the stats verb until it reports one.
  local stats="" swapped=""
  for _ in $(seq 1 100); do
    stats="$("./${build_dir}/examples/serve_client" --socket "${sock}" \
      --mode stats)"
    if grep -qE 'reschedules_total [1-9]' <<<"${stats}"; then
      swapped=1
      break
    fi
    sleep 0.1
  done
  [[ -n "${swapped}" ]] || {
    echo "bandit never rescheduled off the bad layout:"
    echo "${stats}"; cat "${log}"; exit 1; }
  grep -E 'reschedules_total|model demo|bandit demo' <<<"${stats}"
  if grep -qE 'model demo .*format DIA' <<<"${stats}"; then
    echo "model still serving the bad DIA layout"; echo "${stats}"; exit 1
  fi
  grep -q 'bandit demo' <<<"${stats}" || {
    echo "stats verb missing bandit arm lines"; echo "${stats}"; exit 1; }
  kill -TERM "${serve_pid}"
  if ! wait "${serve_pid}"; then
    echo "daemon exited non-zero after SIGTERM"; cat "${log}"; exit 1
  fi
  grep -q 'drain complete' "${log}" || {
    echo "daemon did not drain cleanly"; cat "${log}"; exit 1; }
  grep -q 'connections_open 0' "${log}" || {
    echo "daemon leaked connections"; cat "${log}"; exit 1; }
  echo "reschedule smoke OK: bandit swapped off DIA, zero lost, clean drain"
  rm -f "${sock}" "${log}"
}

route_smoke() {
  # Replicated-serving smoke: three real serve_tool daemons behind a real
  # route_tool, with router-side failpoints armed (slow probes plus two
  # forced breaker-opens mid-run). A retrying bench pushes 1k requests
  # through the router while one replica is SIGTERMed mid-run; the bench
  # must lose nothing (its exit code asserts lost=0), the router must
  # answer health/stats afterwards, and SIGTERM must drain it to zero
  # open connections.
  local build_dir="$1"
  echo "==> route smoke (${build_dir})"
  [[ -f /tmp/ls_demo_model.txt ]] || "./${build_dir}/examples/svm_tool" \
    --mode demo --dataset breast_cancer >/dev/null
  local base
  base="$(mktemp -u /tmp/ls_route_smoke.XXXXXX)"
  local rep_pids=() rep_socks=()
  local i
  for i in 0 1 2; do
    "./${build_dir}/examples/serve_tool" --socket "${base}_r${i}.sock" \
      --models demo=/tmp/ls_demo_model.txt --workers 2 \
      >"${base}_r${i}.log" &
    rep_pids+=($!)
    rep_socks+=("${base}_r${i}.sock")
  done
  local sock
  for sock in "${rep_socks[@]}"; do
    for _ in $(seq 1 100); do
      [[ -S "${sock}" ]] && break
      sleep 0.1
    done
    [[ -S "${sock}" ]] || { echo "replica ${sock} never came up"; exit 1; }
  done
  local router_sock="${base}_router.sock" router_log="${base}_router.log"
  LS_FAILPOINTS='route.probe.delay=delay:1*20;route.breaker.force_open=error@50*2' \
    "./${build_dir}/examples/route_tool" --socket "${router_sock}" \
    --replicas "unix:${rep_socks[0]},unix:${rep_socks[1]},unix:${rep_socks[2]}" \
    --probe-interval-ms 100 --drain-ms 5000 >"${router_log}" &
  local router_pid=$!
  for _ in $(seq 1 100); do
    [[ -S "${router_sock}" ]] && break
    sleep 0.1
  done
  [[ -S "${router_sock}" ]] || {
    echo "route_tool never came up"; cat "${router_log}"; exit 1; }
  "./${build_dir}/examples/serve_client" --socket "${router_sock}" --mode ping
  local bench_out="${base}_bench.out"
  "./${build_dir}/examples/serve_client" --socket "${router_sock}" \
    --mode bench --model demo --data /tmp/ls_demo_test.libsvm \
    --count 1000 --concurrency 6 --retries 8 --timeout-ms 2000 \
    >"${bench_out}" &
  local bench_pid=$!
  sleep 0.2
  # Rolling-restart rehearsal: take one replica down mid-bench. serve_tool
  # drains on SIGTERM; router failover + client retries must hide it.
  kill -TERM "${rep_pids[1]}"
  if ! wait "${bench_pid}"; then
    echo "bench lost requests during the replica kill:"
    cat "${bench_out}"; cat "${router_log}"; exit 1
  fi
  cat "${bench_out}"
  local line
  line="$(grep -E 'requests=[0-9]+ ok=' "${bench_out}")"
  python3 - "${line}" <<'PY'
import sys
fields = dict(kv.split("=") for kv in sys.argv[1].split())
assert int(fields["errors"]) == 0, fields
assert int(fields["lost"]) == 0, fields
assert int(fields["ok"]) + int(fields["shed"]) == int(fields["requests"]), fields
print("route bench OK: p95_ms=%s retries=%s" % (fields["p95_ms"], fields["retries"]))
PY
  wait "${rep_pids[1]}" || { echo "killed replica exited non-zero"; exit 1; }
  "./${build_dir}/examples/serve_client" --socket "${router_sock}" --mode health
  "./${build_dir}/examples/serve_client" --socket "${router_sock}" --mode stats \
    | grep -q 'route_requests_total' || {
    echo "router stats missing route counters"; exit 1; }
  kill -TERM "${router_pid}"
  if ! wait "${router_pid}"; then
    echo "router exited non-zero after SIGTERM"; cat "${router_log}"; exit 1
  fi
  grep -q 'drain complete' "${router_log}" || {
    echo "router did not drain cleanly"; cat "${router_log}"; exit 1; }
  grep -q 'connections_open 0' "${router_log}" || {
    echo "router leaked connections"; cat "${router_log}"; exit 1; }
  kill -TERM "${rep_pids[0]}" "${rep_pids[2]}"
  wait "${rep_pids[0]}" "${rep_pids[2]}" || {
    echo "replica exited non-zero after SIGTERM"; exit 1; }
  echo "route smoke OK: replica killed mid-run, zero lost requests"
  rm -f "${base}"_*
}

train_serve_smoke() {
  # Continuous-learning smoke: the full train-and-serve loop with real
  # daemons. First the in-process chaos soak (bench/train_serve_chaos):
  # mid-save trainer kill + checkpoint resume, reloads landing mid-burst,
  # weighted-fair queuing under a tenant flood (the binary asserts all of
  # it and exits 1 otherwise). Then a real train_tool ingests a 500-example
  # stream over the wire, retrains on its cadence and publishes live
  # reloads into a real serve_tool while a retrying predict bench hammers
  # the same socket; >=1 reload must land (served version moves past the
  # initial load), the bench must lose nothing, and SIGTERM must drain
  # both daemons to zero open connections.
  local build_dir="$1"
  echo "==> train-serve smoke (${build_dir})"
  "./${build_dir}/bench/train_serve_chaos"
  local base tsock ssock tlog slog model
  base="$(mktemp -u /tmp/ls_train_smoke.XXXXXX)"
  tsock="${base}_trainer.sock"
  ssock="${base}_serve.sock"
  tlog="${base}_trainer.log"
  slog="${base}_serve.log"
  model="${base}_model.txt"
  # Generate the stream deterministically rather than reusing whatever
  # /tmp/ls_demo_*.libsvm a previous run left behind — a stale
  # high-dimensional file would balloon every retrain solve (painful
  # under TSan) and make the smoke's timing non-reproducible.
  python3 - "${base}" <<'PY'
import random, sys
base = sys.argv[1]
rng = random.Random(0xC0FFEE)
def emit(path, n):
    with open(path, "w") as f:
        for _ in range(n):
            label = 1 if rng.random() < 0.5 else -1
            cols = sorted(rng.sample(range(1, 25), 12))
            row = " ".join(f"{c}:{rng.gauss(0.4 * label, 1.0):.6f}"
                           for c in cols)
            f.write(f"{label} {row}\n")
emit(base + "_train.libsvm", 500)
emit(base + "_test.libsvm", 100)
PY
  "./${build_dir}/examples/train_tool" --socket "${tsock}" \
    --models demo="${model}" --window 600 --retrain-interval-ms 200 \
    --min-new 50 --publish-socket "${ssock}" --drain-ms 5000 >"${tlog}" &
  local trainer_pid=$!
  for _ in $(seq 1 100); do
    [[ -S "${tsock}" ]] && break
    sleep 0.1
  done
  [[ -S "${tsock}" ]] || { echo "train_tool never came up"; cat "${tlog}"; exit 1; }
  # First half of the stream: the trainer must produce its first accepted
  # model on its own cadence. Publishes fail until the serve tier exists —
  # the cold-start order is trainer first, and the failures are counted,
  # not fatal.
  "./${build_dir}/examples/serve_client" --socket "${tsock}" --mode ingest \
    --model demo --data "${base}_train.libsvm" --count 250
  for _ in $(seq 1 150); do
    [[ -f "${model}" ]] && break
    sleep 0.1
  done
  [[ -f "${model}" ]] || { echo "trainer never wrote a model"; cat "${tlog}"; exit 1; }
  "./${build_dir}/examples/serve_tool" --socket "${ssock}" \
    --models demo="${model}" --workers 2 --drain-ms 5000 >"${slog}" &
  local serve_pid=$!
  for _ in $(seq 1 100); do
    [[ -S "${ssock}" ]] && break
    sleep 0.1
  done
  [[ -S "${ssock}" ]] || { echo "serve_tool never came up"; cat "${slog}"; exit 1; }
  # Second half of the stream drives fresh retrains whose accepted models
  # are published as live reloads, while a retrying predict bench hammers
  # the same serving socket — its exit code asserts zero lost requests.
  # Ids continue from the first batch: ingest is deduped by id now, so a
  # reused id range would be absorbed as duplicates and starve the
  # retrain cadence.
  "./${build_dir}/examples/serve_client" --socket "${tsock}" --mode ingest \
    --model demo --data "${base}_train.libsvm" --count 250 --id-base 250 &
  local ingest_pid=$!
  "./${build_dir}/examples/serve_client" --socket "${ssock}" \
    --mode bench --model demo --data "${base}_test.libsvm" \
    --count 500 --concurrency 4 --retries 8 --timeout-ms 2000
  wait "${ingest_pid}" || { echo "ingest stream was rejected"; cat "${tlog}"; exit 1; }
  # >=1 published reload must land: the served version moves past the
  # initial load (reloads mint fresh versions; the models verb is exactly
  # the observability hook for this).
  local models=""
  for _ in $(seq 1 150); do
    models="$("./${build_dir}/examples/serve_client" --socket "${ssock}" \
      --mode models)"
    grep -qE 'model demo version ([2-9]|[0-9]{2,})' <<<"${models}" && break
    models=""
    sleep 0.1
  done
  [[ -n "${models}" ]] || {
    echo "no published reload ever landed in the serve tier:"
    "./${build_dir}/examples/serve_client" --socket "${ssock}" --mode models
    cat "${tlog}"; exit 1; }
  echo "${models}"
  "./${build_dir}/examples/serve_client" --socket "${tsock}" --mode models \
    | grep -qE ' publishes [1-9]' || {
    echo "trainer reports no successful publishes"; cat "${tlog}"; exit 1; }
  kill -TERM "${trainer_pid}" "${serve_pid}"
  if ! wait "${trainer_pid}"; then
    echo "trainer exited non-zero after SIGTERM"; cat "${tlog}"; exit 1
  fi
  if ! wait "${serve_pid}"; then
    echo "serve daemon exited non-zero after SIGTERM"; cat "${slog}"; exit 1
  fi
  local log
  for log in "${tlog}" "${slog}"; do
    grep -q 'drain complete' "${log}" || {
      echo "daemon did not drain cleanly (${log})"; cat "${log}"; exit 1; }
    grep -q 'connections_open 0' "${log}" || {
      echo "daemon leaked connections (${log})"; cat "${log}"; exit 1; }
  done
  echo "train-serve smoke OK: stream ingested, reload published live, zero lost"
  # -r: the trainer's default ingest journal is a directory (<model>.wal).
  rm -rf "${base}"_*
}

wal_smoke() {
  # Durable-ingest smoke (DESIGN.md §18) with real processes: SIGKILL a
  # journaling train_tool mid-ingest-burst, restart it on the same
  # journal, and prove (1) every acked example was replayed into the
  # rebuilt window, (2) retried sends of acked ids are absorbed as
  # duplicates, and (3) the revived loop still retrains and publishes a
  # live reload into a serve daemon.
  local build_dir="$1"
  echo "==> wal smoke (${build_dir})"
  local base tsock ssock tlog t2log slog blog model
  base="$(mktemp -u /tmp/ls_wal_smoke.XXXXXX)"
  tsock="${base}_trainer.sock"
  ssock="${base}_serve.sock"
  tlog="${base}_trainer.log"
  t2log="${base}_trainer2.log"
  slog="${base}_serve.log"
  blog="${base}_burst.log"
  model="${base}_model.txt"
  python3 - "${base}" <<'PY'
import random, sys
base = sys.argv[1]
rng = random.Random(0xD00D5EED)
with open(base + "_train.libsvm", "w") as f:
    for _ in range(500):
        label = 1 if rng.random() < 0.5 else -1
        cols = sorted(rng.sample(range(1, 25), 12))
        row = " ".join(f"{c}:{rng.gauss(0.4 * label, 1.0):.6f}"
                       for c in cols)
        f.write(f"{label} {row}\n")
PY
  local trainer_flags=(--models demo="${model}" --window 600
                       --retrain-interval-ms 200 --min-new 50
                       --publish-socket "${ssock}" --drain-ms 5000)
  "./${build_dir}/examples/train_tool" --socket "${tsock}" \
    "${trainer_flags[@]}" >"${tlog}" &
  local trainer_pid=$!
  for _ in $(seq 1 100); do
    [[ -S "${tsock}" ]] && break
    sleep 0.1
  done
  [[ -S "${tsock}" ]] || { echo "train_tool never came up"; cat "${tlog}"; exit 1; }
  grep -q "journal=${model}.wal" "${tlog}" || {
    echo "train_tool did not open its journal"; cat "${tlog}"; exit 1; }
  # Burst 1 completes: 250 examples, every one acked (and therefore,
  # under the default --wal-sync always, durable).
  "./${build_dir}/examples/serve_client" --socket "${tsock}" --mode ingest \
    --model demo --data "${base}_train.libsvm" --count 250 \
    | grep -q 'ingested=250 duplicates=0 rejected=0' || {
    echo "burst 1 was not fully acked"; cat "${tlog}"; exit 1; }
  # Burst 2 is in flight when the trainer takes a SIGKILL: no drain, no
  # flush, no destructors. The client loses its connection mid-retry and
  # exits non-zero — expected. The burst cycles the stream (500 sends)
  # so the kill reliably lands with ingest traffic on the wire.
  "./${build_dir}/examples/serve_client" --socket "${tsock}" --mode ingest \
    --model demo --data "${base}_train.libsvm" --count 500 --id-base 250 \
    --retries 2 >"${blog}" 2>&1 &
  local burst_pid=$!
  sleep 0.05
  kill -KILL "${trainer_pid}" 2>/dev/null || true
  wait "${trainer_pid}" 2>/dev/null || true
  wait "${burst_pid}" 2>/dev/null || true
  # The SIGKILLed trainer leaves its socket file behind; remove it so the
  # readiness loop below waits for the *restarted* trainer's bind (which
  # happens only after journal replay) instead of passing on the corpse.
  rm -f "${tsock}"
  # Restart on the same journal: the startup banner reports the replay.
  "./${build_dir}/examples/train_tool" --socket "${tsock}" \
    "${trainer_flags[@]}" >"${t2log}" &
  trainer_pid=$!
  for _ in $(seq 1 100); do
    [[ -S "${tsock}" ]] && break
    sleep 0.1
  done
  [[ -S "${tsock}" ]] || { echo "train_tool never came back"; cat "${t2log}"; exit 1; }
  local replayed
  replayed="$(grep -oE 'replayed=[0-9]+' "${t2log}" | head -1 | cut -d= -f2 || true)"
  [[ -n "${replayed}" && "${replayed}" -ge 250 ]] || {
    echo "replay lost acked examples (replayed=${replayed:-none}, want >=250)"
    cat "${t2log}"; exit 1; }
  "./${build_dir}/examples/serve_client" --socket "${tsock}" --mode health \
    | grep -q ready || { echo "revived trainer not ready"; exit 1; }
  # Retrying burst 1 verbatim: every id was acked before the kill, so all
  # 250 must be absorbed as duplicates — the idempotency the wire-level
  # retry policy is built on.
  "./${build_dir}/examples/serve_client" --socket "${tsock}" --mode ingest \
    --model demo --data "${base}_train.libsvm" --count 250 \
    | grep -q 'ingested=0 duplicates=250 rejected=0' || {
    echo "acked ids were not deduplicated after the restart"; exit 1; }
  # Re-sending burst 2 finishes the stream: whatever was acked pre-kill
  # dedupes, the rest ingests fresh — either way nothing is rejected, and
  # the fresh examples drive a retrain that must publish into a live
  # serve tier.
  for _ in $(seq 1 150); do
    [[ -f "${model}" ]] && break
    sleep 0.1
  done
  [[ -f "${model}" ]] || { echo "revived trainer never wrote a model"; cat "${t2log}"; exit 1; }
  "./${build_dir}/examples/serve_tool" --socket "${ssock}" \
    --models demo="${model}" --workers 2 --drain-ms 5000 >"${slog}" &
  local serve_pid=$!
  for _ in $(seq 1 100); do
    [[ -S "${ssock}" ]] && break
    sleep 0.1
  done
  [[ -S "${ssock}" ]] || { echo "serve_tool never came up"; cat "${slog}"; exit 1; }
  "./${build_dir}/examples/serve_client" --socket "${tsock}" --mode ingest \
    --model demo --data "${base}_train.libsvm" --count 500 --id-base 250 \
    | grep -q ' rejected=0' || { echo "burst 2 retry was rejected"; exit 1; }
  local models=""
  for _ in $(seq 1 150); do
    models="$("./${build_dir}/examples/serve_client" --socket "${ssock}" \
      --mode models)"
    grep -qE 'model demo version ([2-9]|[0-9]{2,})' <<<"${models}" && break
    models=""
    sleep 0.1
  done
  [[ -n "${models}" ]] || {
    echo "no post-crash reload ever landed in the serve tier:"
    "./${build_dir}/examples/serve_client" --socket "${ssock}" --mode models
    cat "${t2log}"; exit 1; }
  kill -TERM "${trainer_pid}" "${serve_pid}"
  if ! wait "${trainer_pid}"; then
    echo "revived trainer exited non-zero after SIGTERM"; cat "${t2log}"; exit 1
  fi
  if ! wait "${serve_pid}"; then
    echo "serve daemon exited non-zero after SIGTERM"; cat "${slog}"; exit 1
  fi
  echo "wal smoke OK: SIGKILL mid-burst, ${replayed} examples replayed, acked ids deduped, reload published"
  rm -rf "${base}"_* "${model}.wal"
}

mode="${1:-all}"

if [[ "${mode}" == "all" || "${mode}" == "--plain-only" ]]; then
  run_suite build
  # Thread-count invariance gate: the same suite must pass with OpenMP
  # parallel regions actually running multiple threads (the deterministic
  # WSS folds and the bit-identical-model tests do the real checking).
  echo "==> re-testing build with OMP_NUM_THREADS=2"
  OMP_NUM_THREADS=2 ctest --test-dir build --output-on-failure -j "$(nproc)"
  # SIMD dispatch-matrix gate: the whole suite must pass at every kernel
  # level this host supports, not just the native one — the scalar and
  # AVX2 runs are what catch a vector kernel that only agrees with itself.
  # simd_probe --levels enumerates what the cpuid path actually detected.
  for level in $(./build/examples/simd_probe --levels); do
    echo "==> re-testing build with LS_SIMD=${level}"
    LS_SIMD="${level}" ctest --test-dir build --output-on-failure -j "$(nproc)"
  done
  metrics_smoke
  serve_smoke build
  reschedule_smoke build
  chaos_smoke build
  route_smoke build
  train_serve_smoke build
  wal_smoke build
fi

if [[ "${mode}" == "all" || "${mode}" == "--sanitize-only" ]]; then
  # ASan's allocator dislikes being re-run in a dirty tree configured
  # without sanitizers, so it gets its own build directory.
  run_suite build-asan -DLS_SANITIZE=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo
fi

if [[ "${mode}" == "all" || "${mode}" == "--tsan-only" ]]; then
  # TSan stage: compiled without OpenMP (libgomp is not TSan-instrumented,
  # see the top-level CMakeLists), so this exercises the std::thread code —
  # the prefetch pipeline, its atomic counters and the worker join paths.
  run_suite build-tsan -DLS_SANITIZE=thread -DCMAKE_BUILD_TYPE=RelWithDebInfo
  serve_smoke build-tsan
  reschedule_smoke build-tsan
  chaos_smoke build-tsan
  route_smoke build-tsan
  train_serve_smoke build-tsan
  wal_smoke build-tsan
fi

echo "==> all checks passed"
