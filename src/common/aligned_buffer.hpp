// A cache-line / SIMD aligned, value-initialised array.
//
// The format kernels stream long contiguous arrays (data, indices, ptr);
// 64-byte alignment keeps loads aligned for the compiler's autovectoriser
// (the paper's implementation relied on Xeon Phi vector instructions and
// Cilk array notation; here we give GCC the same opportunity).
#pragma once

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <new>
#include <utility>

#include "common/error.hpp"
#include "common/types.hpp"

namespace ls {

/// Fixed-capacity aligned array of trivially-copyable T with value semantics.
///
/// Unlike std::vector this guarantees 64-byte alignment of the first element
/// and never over-allocates; resize discards contents (the substrate only
/// ever sizes buffers once per matrix).
template <class T>
class AlignedBuffer {
  static_assert(std::is_trivially_copyable_v<T>,
                "AlignedBuffer requires trivially copyable element types");

 public:
  static constexpr std::size_t kAlignment = 64;

  // The SIMD dispatch layer (src/kernels) assumes buffers it streams are at
  // least 64-byte aligned — one full AVX-512 vector / x86 cache line — and
  // std::aligned_alloc requires a power-of-two alignment that also satisfies
  // the element type.
  static_assert(kAlignment >= 64, "SIMD kernels assume 64-byte alignment");
  static_assert((kAlignment & (kAlignment - 1)) == 0,
                "alignment must be a power of two");
  static_assert(alignof(T) <= kAlignment,
                "element alignment exceeds buffer alignment");

  AlignedBuffer() = default;

  explicit AlignedBuffer(std::size_t n) { resize(n); }

  AlignedBuffer(std::size_t n, T fill) {
    resize(n);
    std::fill(begin(), end(), fill);
  }

  AlignedBuffer(const AlignedBuffer& other) {
    resize(other.size_);
    std::memcpy(data_, other.data_, size_ * sizeof(T));
  }

  AlignedBuffer& operator=(const AlignedBuffer& other) {
    if (this != &other) {
      resize(other.size_);
      std::memcpy(data_, other.data_, size_ * sizeof(T));
    }
    return *this;
  }

  AlignedBuffer(AlignedBuffer&& other) noexcept
      : data_(std::exchange(other.data_, nullptr)),
        size_(std::exchange(other.size_, 0)) {}

  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept {
    if (this != &other) {
      release();
      data_ = std::exchange(other.data_, nullptr);
      size_ = std::exchange(other.size_, 0);
    }
    return *this;
  }

  ~AlignedBuffer() { release(); }

  /// Reallocates to exactly n value-initialised elements (contents lost).
  void resize(std::size_t n) {
    release();
    if (n == 0) return;
    // Round the byte size up to a multiple of the alignment as required by
    // std::aligned_alloc.
    const std::size_t bytes =
        ((n * sizeof(T) + kAlignment - 1) / kAlignment) * kAlignment;
    data_ = static_cast<T*>(std::aligned_alloc(kAlignment, bytes));
    if (data_ == nullptr) throw std::bad_alloc{};
    std::memset(data_, 0, bytes);
    size_ = n;
  }

  T* data() noexcept { return data_; }
  const T* data() const noexcept { return data_; }
  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  T& operator[](std::size_t i) noexcept { return data_[i]; }
  const T& operator[](std::size_t i) const noexcept { return data_[i]; }

  T* begin() noexcept { return data_; }
  T* end() noexcept { return data_ + size_; }
  const T* begin() const noexcept { return data_; }
  const T* end() const noexcept { return data_ + size_; }

  /// Bytes actually occupied by live elements (storage accounting).
  std::size_t size_bytes() const noexcept { return size_ * sizeof(T); }

 private:
  void release() noexcept {
    std::free(data_);
    data_ = nullptr;
    size_ = 0;
  }

  T* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace ls
