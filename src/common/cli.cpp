#include "common/cli.hpp"

#include <cstdio>

namespace ls {

void CliParser::print_help() const {
  std::printf("%s — %s\n\nFlags:\n", program_.c_str(), description_.c_str());
  for (const auto& name : order_) {
    const Flag& f = flags_.at(name);
    std::printf("  --%-18s %s (default: %s)\n", name.c_str(), f.help.c_str(),
                f.value.empty() ? "<empty>" : f.value.c_str());
  }
  std::printf("  --%-18s %s\n", "help", "show this message");
}

}  // namespace ls
