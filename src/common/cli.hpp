// Tiny command-line flag parser used by the examples and bench harnesses.
//
// Supports `--name value` and `--name=value` forms plus boolean switches.
// Unknown flags are an error so typos in experiment scripts fail loudly.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace ls {

/// Declarative command-line parser.
///
///   CliParser cli("quickstart", "Train an SVM with layout scheduling");
///   cli.add_flag("dataset", "adult", "dataset profile name");
///   cli.add_flag("c", "1.0", "SVM regularisation constant");
///   cli.parse(argc, argv);
///   double C = cli.get_double("c");
class CliParser {
 public:
  CliParser(std::string program, std::string description)
      : program_(std::move(program)), description_(std::move(description)) {}

  /// Registers a flag with a default value (pass "" for required-ish flags).
  void add_flag(const std::string& name, const std::string& default_value,
                const std::string& help) {
    LS_CHECK(!flags_.count(name), "duplicate flag --" << name);
    flags_[name] = {default_value, help};
    order_.push_back(name);
  }

  /// Parses argv; prints help and returns false if --help was given.
  bool parse(int argc, const char* const* argv) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg == "--help" || arg == "-h") {
        print_help();
        return false;
      }
      LS_CHECK(arg.rfind("--", 0) == 0, "expected --flag, got '" << arg << "'");
      arg = arg.substr(2);
      std::string value;
      const auto eq = arg.find('=');
      if (eq != std::string::npos) {
        value = arg.substr(eq + 1);
        arg = arg.substr(0, eq);
      } else {
        LS_CHECK(i + 1 < argc, "flag --" << arg << " expects a value");
        value = argv[++i];
      }
      auto it = flags_.find(arg);
      LS_CHECK(it != flags_.end(), "unknown flag --" << arg);
      it->second.value = value;
    }
    return true;
  }

  const std::string& get(const std::string& name) const {
    auto it = flags_.find(name);
    LS_CHECK(it != flags_.end(), "flag --" << name << " not registered");
    return it->second.value;
  }

  /// Parses the flag as a double. The whole value must be numeric:
  /// std::stod alone would silently accept "1.5x" as 1.5.
  double get_double(const std::string& name) const {
    const std::string& v = get(name);
    try {
      std::size_t consumed = 0;
      const double parsed = std::stod(v, &consumed);
      if (consumed != v.size()) {
        throw Error("flag --" + name + " has trailing garbage: '" + v + "'");
      }
      return parsed;
    } catch (const Error&) {
      throw;
    } catch (const std::exception&) {
      throw Error("flag --" + name + " is not a number: '" + v + "'");
    }
  }

  /// Parses the flag as an integer, rejecting partial parses like "12abc".
  long long get_int(const std::string& name) const {
    const std::string& v = get(name);
    try {
      std::size_t consumed = 0;
      const long long parsed = std::stoll(v, &consumed);
      if (consumed != v.size()) {
        throw Error("flag --" + name + " has trailing garbage: '" + v + "'");
      }
      return parsed;
    } catch (const Error&) {
      throw;
    } catch (const std::exception&) {
      throw Error("flag --" + name + " is not an integer: '" + v + "'");
    }
  }

  bool get_bool(const std::string& name) const {
    const std::string& v = get(name);
    if (v == "true" || v == "1" || v == "yes") return true;
    if (v == "false" || v == "0" || v == "no") return false;
    throw Error("flag --" + name + " is not a boolean: '" + v + "'");
  }

  void print_help() const;

 private:
  struct Flag {
    std::string value;
    std::string help;
  };

  std::string program_;
  std::string description_;
  std::map<std::string, Flag> flags_;
  std::vector<std::string> order_;
};

}  // namespace ls
