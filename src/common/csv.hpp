// Minimal CSV writer so every bench can dump machine-readable series next to
// its human-readable table (useful for re-plotting the paper's figures).
#pragma once

#include <fstream>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace ls {

/// Streams rows of a CSV file; fields containing commas/quotes are quoted.
///
/// Write failures after construction (full disk, closed stream) are loud:
/// write_row checks the stream after every row, and close() verifies the
/// flush so callers cannot report success over a truncated file. The
/// destructor closes silently for backwards compatibility — benches call
/// close() (via bench::finish) to get the verification.
class CsvWriter {
 public:
  /// Opens (truncates) `path` and writes the header row.
  CsvWriter(const std::string& path, const std::vector<std::string>& header)
      : path_(path), out_(path) {
    LS_CHECK(out_.good(), "cannot open CSV output file: " << path);
    write_row(header);
  }

  /// Writes one data row; throws ls::Error if the bytes did not take.
  void write_row(const std::vector<std::string>& fields) {
    LS_CHECK(!closed_, "write_row on closed CSV file: " << path_);
    for (std::size_t i = 0; i < fields.size(); ++i) {
      if (i) out_ << ',';
      out_ << escape(fields[i]);
    }
    out_ << '\n';
    LS_CHECK(out_.good(),
             "CSV write failed (disk full or stream error): " << path_);
  }

  /// Flushes and closes, verifying every buffered row reached the file.
  /// Idempotent; throws ls::Error when the stream reports a failure.
  void close() {
    if (closed_) return;
    out_.flush();
    LS_CHECK(out_.good(),
             "CSV flush failed (disk full or stream error): " << path_);
    out_.close();
    LS_CHECK(!out_.fail(), "CSV close failed: " << path_);
    closed_ = true;
  }

  const std::string& path() const { return path_; }

 private:
  static std::string escape(const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string q = "\"";
    for (char c : s) {
      if (c == '"') q += "\"\"";
      else q += c;
    }
    q += '"';
    return q;
  }

  std::string path_;
  std::ofstream out_;
  bool closed_ = false;
};

}  // namespace ls
