// Minimal CSV writer so every bench can dump machine-readable series next to
// its human-readable table (useful for re-plotting the paper's figures).
#pragma once

#include <fstream>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace ls {

/// Streams rows of a CSV file; fields containing commas/quotes are quoted.
class CsvWriter {
 public:
  /// Opens (truncates) `path` and writes the header row.
  CsvWriter(const std::string& path, const std::vector<std::string>& header)
      : out_(path) {
    LS_CHECK(out_.good(), "cannot open CSV output file: " << path);
    write_row(header);
  }

  /// Writes one data row.
  void write_row(const std::vector<std::string>& fields) {
    for (std::size_t i = 0; i < fields.size(); ++i) {
      if (i) out_ << ',';
      out_ << escape(fields[i]);
    }
    out_ << '\n';
  }

 private:
  static std::string escape(const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string q = "\"";
    for (char c : s) {
      if (c == '"') q += "\"\"";
      else q += c;
    }
    q += '"';
    return q;
  }

  std::ofstream out_;
};

}  // namespace ls
