// Error handling: a library-wide exception type plus check macros.
//
// Following the C++ Core Guidelines (E.2, E.3) errors that callers can
// reasonably handle are reported with exceptions; programming errors inside
// hot kernels use LS_ASSERT which compiles away in release builds.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace ls {

/// Exception thrown for all recoverable library errors (bad input files,
/// inconsistent matrix dimensions, invalid configuration values, ...).
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void throw_error(const char* cond, const char* file,
                                     int line, const std::string& msg) {
  std::ostringstream os;
  os << file << ":" << line << ": check failed (" << cond << ")";
  if (!msg.empty()) os << ": " << msg;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace ls

/// Always-on invariant check; throws ls::Error with location info.
#define LS_CHECK(cond, msg)                                              \
  do {                                                                   \
    if (!(cond)) {                                                       \
      ::ls::detail::throw_error(#cond, __FILE__, __LINE__,               \
                                (std::ostringstream{} << msg).str());    \
    }                                                                    \
  } while (0)

/// Debug-only check for hot paths; disabled when NDEBUG is defined.
#ifdef NDEBUG
#define LS_ASSERT(cond, msg) ((void)0)
#else
#define LS_ASSERT(cond, msg) LS_CHECK(cond, msg)
#endif
