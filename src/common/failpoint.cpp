#include "common/failpoint.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <new>
#include <thread>
#include <unordered_map>

#include "common/error.hpp"

namespace ls::failpoint {

namespace detail {
std::atomic<int> g_active{0};
}  // namespace detail

namespace {

struct State {
  Spec spec;
  int hits = 0;      // evaluate() calls since activation
  int triggers = 0;  // actions actually injected
  bool armed = true;
};

struct Registry {
  std::mutex mu;
  std::unordered_map<std::string, State> sites;
  // Trigger counts survive deactivation so tests can assert a site fired.
  std::unordered_map<std::string, std::size_t> history;
};

Registry& registry() {
  static Registry r;
  return r;
}

Action parse_action(const std::string& word) {
  if (word == "error") return Action::kError;
  if (word == "oom") return Action::kOom;
  if (word == "delay") return Action::kDelay;
  throw Error("LS_FAILPOINTS: unknown action '" + word +
              "' (expected error, oom or delay)");
}

// One-time activation from the LS_FAILPOINTS environment variable. A static
// initializer (rather than a lazy check in evaluate()) keeps the inactive
// fast path down to the single atomic load.
struct EnvInit {
  EnvInit() {
    const char* env = std::getenv("LS_FAILPOINTS");
    if (env == nullptr || *env == '\0') return;
    try {
      configure(env);
    } catch (const Error& e) {
      // A malformed diagnostic knob must not abort the program from a
      // static initializer — warn and run with no failpoints armed.
      std::fprintf(stderr, "warning: ignoring LS_FAILPOINTS: %s\n",
                   e.what());
      clear();
    }
  }
};
const EnvInit g_env_init;

}  // namespace

void activate(const std::string& name, const Spec& spec) {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mu);
  const auto [it, inserted] = r.sites.insert_or_assign(name, State{spec});
  (void)it;
  if (inserted) {
    detail::g_active.fetch_add(1, std::memory_order_relaxed);
  }
}

void deactivate(const std::string& name) {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mu);
  if (r.sites.erase(name) > 0) {
    detail::g_active.fetch_sub(1, std::memory_order_relaxed);
  }
}

void clear() {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mu);
  detail::g_active.fetch_sub(static_cast<int>(r.sites.size()),
                             std::memory_order_relaxed);
  r.sites.clear();
}

std::size_t trigger_count(const std::string& name) {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mu);
  const auto it = r.history.find(name);
  return it == r.history.end() ? 0 : it->second;
}

void configure(const std::string& spec) {
  std::size_t begin = 0;
  while (begin <= spec.size()) {
    std::size_t end = spec.find_first_of(";,", begin);
    if (end == std::string::npos) end = spec.size();
    const std::string entry = spec.substr(begin, end - begin);
    begin = end + 1;
    if (entry.empty()) continue;

    const auto eq = entry.find('=');
    LS_CHECK(eq != std::string::npos && eq > 0,
             "LS_FAILPOINTS: entry '" << entry << "' is not name=action");
    const std::string name = entry.substr(0, eq);
    std::string rest = entry.substr(eq + 1);

    Spec s;
    // Optional suffixes, in any order: *limit then @skip then :ms — parse
    // from the back so the action word is whatever remains.
    const auto take_int_suffix = [&rest](char mark, int fallback) {
      const auto pos = rest.find(mark);
      if (pos == std::string::npos) return fallback;
      const std::string digits = rest.substr(pos + 1);
      rest.resize(pos);
      LS_CHECK(!digits.empty() &&
                   digits.find_first_not_of("0123456789") == std::string::npos,
               "LS_FAILPOINTS: bad '" << mark << "' suffix value '" << digits
                                      << "'");
      return std::atoi(digits.c_str());
    };
    s.limit = take_int_suffix('*', -1);
    s.skip = take_int_suffix('@', 0);
    s.delay_ms = take_int_suffix(':', 0);
    s.action = parse_action(rest);
    activate(name, s);
  }
}

namespace detail {

void hit(const char* name) {
  Spec to_run;
  bool fire = false;
  {
    Registry& r = registry();
    const std::lock_guard<std::mutex> lock(r.mu);
    const auto it = r.sites.find(name);
    if (it == r.sites.end()) return;
    State& st = it->second;
    ++st.hits;
    if (!st.armed || st.hits <= st.spec.skip) return;
    if (st.spec.limit >= 0 && st.triggers >= st.spec.limit) return;
    ++st.triggers;
    ++r.history[name];
    to_run = st.spec;
    fire = true;
  }
  if (!fire) return;
  switch (to_run.action) {
    case Action::kError:
      throw Error(std::string("failpoint '") + name + "' injected error");
    case Action::kOom:
      throw std::bad_alloc{};
    case Action::kDelay:
      std::this_thread::sleep_for(std::chrono::milliseconds(to_run.delay_ms));
      return;
  }
}

bool hit_check(const char* name) {
  Spec to_run;
  {
    Registry& r = registry();
    const std::lock_guard<std::mutex> lock(r.mu);
    const auto it = r.sites.find(name);
    if (it == r.sites.end()) return false;
    State& st = it->second;
    ++st.hits;
    if (!st.armed || st.hits <= st.spec.skip) return false;
    if (st.spec.limit >= 0 && st.triggers >= st.spec.limit) return false;
    ++st.triggers;
    ++r.history[name];
    to_run = st.spec;
  }
  if (to_run.action == Action::kDelay) {
    std::this_thread::sleep_for(std::chrono::milliseconds(to_run.delay_ms));
    return false;
  }
  return true;
}

}  // namespace detail

}  // namespace ls::failpoint
