// Named failpoints for fault-injection testing.
//
// Library code tags fragile sites (file IO, allocations, long loops) with
// LS_FAILPOINT("area.site"). Tests — or an operator via the LS_FAILPOINTS
// environment variable — activate a site to inject an ls::Error, an
// std::bad_alloc, or a delay, and thereby exercise the recovery paths
// (checkpoint resume, scheduler degradation, atomic-save rollback) without
// faking streams or mocking allocators.
//
// When nothing is activated the macro costs one relaxed atomic load and a
// predictable branch, so tagged hot paths stay hot.
//
// Environment syntax (';'- or ','-separated):
//
//   LS_FAILPOINTS="svm.serialize.save=error;svm.cache.alloc=oom@2"
//
// Each entry is  name=action[:ms][@skip][*limit]  where action is one of
// `error` (throw ls::Error), `oom` (throw std::bad_alloc) or `delay`
// (sleep `ms` milliseconds); `@skip` arms the site only after `skip` hits
// and `*limit` disarms it after `limit` triggers (-1 = unlimited).
#pragma once

#include <atomic>
#include <cstddef>
#include <string>

namespace ls::failpoint {

/// What an armed failpoint injects when hit.
enum class Action {
  kError,  ///< throw ls::Error
  kOom,    ///< throw std::bad_alloc
  kDelay,  ///< sleep delay_ms, then continue normally
};

/// Activation parameters for one named site.
struct Spec {
  Action action = Action::kError;
  int delay_ms = 0;  ///< sleep duration for kDelay
  int skip = 0;      ///< number of hits to pass through before triggering
  int limit = -1;    ///< max triggers before auto-disarm (-1 = unlimited)
};

namespace detail {
/// Count of currently activated failpoints; 0 makes evaluate() a no-op.
extern std::atomic<int> g_active;
/// Slow path: looks `name` up and triggers its action if armed.
void hit(const char* name);
/// Slow path for boolean sites: consumes a trigger like hit() but reports
/// it as a return value instead of throwing (kDelay still sleeps and
/// reports false — a slow IO is not a failed IO).
bool hit_check(const char* name);
}  // namespace detail

/// Arms `name` (replacing any previous activation of the same site).
void activate(const std::string& name, const Spec& spec = {});

/// Disarms `name`; unknown names are ignored.
void deactivate(const std::string& name);

/// Disarms every failpoint.
void clear();

/// Number of times `name` actually triggered its action so far.
std::size_t trigger_count(const std::string& name);

/// Parses and activates an LS_FAILPOINTS-syntax spec string.
/// Throws ls::Error on malformed input.
void configure(const std::string& spec);

/// Evaluated at every tagged site; free when nothing is activated.
inline void evaluate(const char* name) {
  if (detail::g_active.load(std::memory_order_relaxed) == 0) return;
  detail::hit(name);
}

/// Boolean form for sites that model an errno-style failure rather than an
/// exception — e.g. a short write under ENOSPC, where the caller's own
/// error handling (not an injected throw) must take over. Returns true
/// when the armed site fires; false (without side effects) when disarmed.
inline bool fails(const char* name) {
  if (detail::g_active.load(std::memory_order_relaxed) == 0) return false;
  return detail::hit_check(name);
}

/// RAII activation for tests: arms in the constructor, disarms in the
/// destructor so a failed EXPECT cannot leak an armed site into later tests.
class Scoped {
 public:
  explicit Scoped(std::string name, const Spec& spec = {})
      : name_(std::move(name)) {
    activate(name_, spec);
  }
  ~Scoped() { deactivate(name_); }
  Scoped(const Scoped&) = delete;
  Scoped& operator=(const Scoped&) = delete;

 private:
  std::string name_;
};

}  // namespace ls::failpoint

/// Tags a potential failure site. `name` must be a string literal.
#define LS_FAILPOINT(name) ::ls::failpoint::evaluate(name)

/// Tags an errno-style failure site: evaluates to true when armed and
/// firing, so the caller's own failure handling runs (no injected throw).
#define LS_FAILPOINT_FAILS(name) ::ls::failpoint::fails(name)
