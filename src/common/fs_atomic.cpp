#include "common/fs_atomic.hpp"

#include <array>
#include <cstdio>
#include <fstream>
#include <sstream>

#include <sys/stat.h>
#include <unistd.h>

#include "common/error.hpp"
#include "common/failpoint.hpp"

namespace ls {

namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

/// Removes the temp file on every exit path of atomic_write_file.
struct TempGuard {
  std::string path;
  bool armed = true;
  ~TempGuard() {
    if (armed) std::remove(path.c_str());
  }
};

std::string footer_line(std::uint32_t crc) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%s%08x\n", kCrcFooterTag, crc);
  return buf;
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t size, std::uint32_t seed) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

std::uint32_t crc32(const std::string& bytes) {
  return crc32(bytes.data(), bytes.size());
}

void atomic_write_file(const std::string& path, const std::string& content,
                       bool with_crc_footer) {
  const std::string tmp = path + ".tmp." + std::to_string(::getpid());
  TempGuard guard{tmp};

  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  LS_CHECK(f != nullptr, "cannot create temp file: " << tmp);
  bool ok = std::fwrite(content.data(), 1, content.size(), f) ==
            content.size();
  // ENOSPC stand-in: a full disk surfaces as fwrite/fflush reporting fewer
  // bytes than asked, which must flow through the same `ok` bookkeeping as
  // the real thing — cleanup of the temp file, destination untouched.
  ok = ok && !LS_FAILPOINT_FAILS("fs.atomic.short_write");
  // Crash simulation point: payload written, rename not yet performed — a
  // failure here must leave the destination file untouched.
  LS_FAILPOINT("fs.atomic.write");
  if (ok && with_crc_footer) {
    const std::string footer = footer_line(crc32(content));
    ok = std::fwrite(footer.data(), 1, footer.size(), f) == footer.size();
  }
  ok = (std::fflush(f) == 0) && ok;
  ok = (::fsync(::fileno(f)) == 0) && ok;
  ok = (std::fclose(f) == 0) && ok;
  LS_CHECK(ok, "failed writing temp file: " << tmp);

  LS_FAILPOINT("fs.atomic.rename");
  LS_CHECK(std::rename(tmp.c_str(), path.c_str()) == 0,
           "failed renaming " << tmp << " over " << path);
  guard.armed = false;  // the temp file no longer exists under its old name
}

void atomic_write_file(const std::string& path,
                       const std::function<void(std::ostream&)>& producer,
                       bool with_crc_footer) {
  std::ostringstream os;
  os.precision(17);
  producer(os);
  atomic_write_file(path, os.str(), with_crc_footer);
}

std::string read_file_verified(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  LS_CHECK(in.good(), "cannot open file: " << path);
  std::ostringstream os;
  os << in.rdbuf();
  LS_CHECK(!in.bad(), "failed reading file: " << path);
  std::string bytes = os.str();

  // The footer, when present, is the final "#crc32 xxxxxxxx\n" line.
  constexpr std::size_t kFooterLen = 16;  // 7 tag + 8 hex + '\n'
  if (bytes.size() >= kFooterLen) {
    const std::size_t at = bytes.size() - kFooterLen;
    if (bytes.compare(at, 7, kCrcFooterTag) == 0) {
      const std::string hex = bytes.substr(at + 7, 8);
      LS_CHECK(hex.find_first_not_of("0123456789abcdef") == std::string::npos,
               "malformed CRC footer in " << path);
      const std::uint32_t stored =
          static_cast<std::uint32_t>(std::stoul(hex, nullptr, 16));
      bytes.resize(at);
      const std::uint32_t actual = crc32(bytes);
      LS_CHECK(stored == actual,
               "CRC mismatch in " << path << ": footer says " << stored
                                  << ", content hashes to " << actual
                                  << " — file is corrupt");
    }
  }
  return bytes;
}

bool file_exists(const std::string& path) {
  struct ::stat st {};
  return ::stat(path.c_str(), &st) == 0 && S_ISREG(st.st_mode);
}

}  // namespace ls
