// Crash-safe file writes and integrity-checked reads.
//
// atomic_write_file() implements the classic tmp + fsync + rename protocol:
// the payload (plus a CRC32 footer line) goes to <path>.tmp.<pid>, is
// flushed to disk, and only then renamed over <path>. POSIX rename is
// atomic, so readers — and a process that crashes mid-save — observe either
// the complete old file or the complete new file, never a truncated mix.
//
// read_file_verified() is the matching reader: it recomputes the CRC32 over
// the payload and throws ls::Error when the footer does not match, turning
// silent corruption (bit rot, partial copies) into a loud, recoverable
// error. Files written before the footer existed load unchanged.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>

namespace ls {

/// CRC32 (IEEE 802.3 reflected polynomial, zlib-compatible) of a byte
/// range. `seed` chains multi-buffer checksums: pass the previous result.
std::uint32_t crc32(const void* data, std::size_t size,
                    std::uint32_t seed = 0);
std::uint32_t crc32(const std::string& bytes);

/// Footer line appended by atomic_write_file when `with_crc_footer` is set:
/// "#crc32 <8 lowercase hex digits>\n" covering every preceding byte.
inline constexpr const char* kCrcFooterTag = "#crc32 ";

/// Atomically replaces `path` with `content` (+ optional CRC footer).
/// On any failure the previous file is untouched and the temp file is
/// removed; throws ls::Error describing the failed step.
void atomic_write_file(const std::string& path, const std::string& content,
                       bool with_crc_footer = true);

/// Streaming flavour: `producer` writes the payload into the given stream
/// (17-digit precision preset for full double round-trips).
void atomic_write_file(const std::string& path,
                       const std::function<void(std::ostream&)>& producer,
                       bool with_crc_footer = true);

/// Reads the whole file. A trailing CRC footer is verified and stripped
/// (ls::Error on mismatch); a file without a footer is returned verbatim.
std::string read_file_verified(const std::string& path);

/// True when `path` names an existing regular file.
bool file_exists(const std::string& path);

}  // namespace ls
