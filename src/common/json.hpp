// Minimal JSON emission helpers shared by the metrics and trace exporters.
//
// Emission only — the library never needs to *parse* JSON; the test suite
// carries its own tiny syntax checker to validate what these produce.
#pragma once

#include <cmath>
#include <cstdio>
#include <string>

namespace ls::json {

/// Escapes and double-quotes `s` as a JSON string literal.
inline std::string quote(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  out += '"';
  return out;
}

/// Formats a double as a JSON number; JSON has no inf/nan, so non-finite
/// values become null (consumers treat null as "not measured").
inline std::string number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace ls::json
