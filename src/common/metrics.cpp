#include "common/metrics.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <memory>
#include <mutex>
#include <vector>

#include "common/fs_atomic.hpp"
#include "common/json.hpp"

namespace ls::metrics {

namespace detail {
std::atomic<bool> g_enabled{false};
}  // namespace detail

namespace {

/// Per-thread sample cap per timer; beyond it only count/total/min/max stay
/// exact and the percentiles become an estimate over the retained prefix.
constexpr std::size_t kMaxSamplesPerTimer = 4096;

struct TimerShard {
  std::int64_t count = 0;
  double total = 0.0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
  std::vector<double> samples;
};

/// One thread's slice of the registry. The mutex is only ever contended by
/// snapshot()/reset(), so recording stays at uncontended-lock cost.
struct Shard {
  std::mutex mu;
  std::map<std::string, std::int64_t, std::less<>> counters;
  std::map<std::string, TimerShard, std::less<>> timers;
};

struct Registry {
  std::mutex mu;  // guards shards, gauges, annotations
  std::vector<std::shared_ptr<Shard>> shards;
  std::map<std::string, double, std::less<>> gauges;
  std::map<std::string, std::string, std::less<>> annotations;
};

Registry& registry() {
  static Registry* r = new Registry;  // leaked: usable during static dtors
  return *r;
}

Shard& local_shard() {
  thread_local std::shared_ptr<Shard> shard = [] {
    auto s = std::make_shared<Shard>();
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    r.shards.push_back(s);  // registry keeps data alive past thread exit
    return s;
  }();
  return *shard;
}

double percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(rank, sorted.size() - 1)];
}

/// Reads LS_METRICS once at startup: "" / "0" off, "1"/"true"/"on"/"yes"
/// collect-only, anything else = collect + auto-export to that path at exit.
const bool g_env_initialised = [] {
  const char* env = std::getenv("LS_METRICS");
  if (env == nullptr) return true;
  const std::string value(env);
  if (value.empty() || value == "0" || value == "false" || value == "off") {
    return true;
  }
  detail::g_enabled.store(true, std::memory_order_relaxed);
  if (value != "1" && value != "true" && value != "on" && value != "yes") {
    static std::string export_path;
    export_path = value;
    std::atexit([] {
      try {
        write_report(export_path);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "LS_METRICS export to %s failed: %s\n",
                     export_path.c_str(), e.what());
      }
    });
  }
  return true;
}();

}  // namespace

namespace detail {

void counter_add_slow(std::string_view name, std::int64_t delta) {
  Shard& s = local_shard();
  std::lock_guard<std::mutex> lock(s.mu);
  const auto it = s.counters.find(name);
  if (it != s.counters.end()) {
    it->second += delta;
  } else {
    s.counters.emplace(std::string(name), delta);
  }
}

void gauge_set_slow(std::string_view name, double value) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  const auto it = r.gauges.find(name);
  if (it != r.gauges.end()) {
    it->second = value;
  } else {
    r.gauges.emplace(std::string(name), value);
  }
}

void timer_record_slow(std::string_view name, double seconds) {
  Shard& s = local_shard();
  std::lock_guard<std::mutex> lock(s.mu);
  auto it = s.timers.find(name);
  if (it == s.timers.end()) {
    it = s.timers.emplace(std::string(name), TimerShard{}).first;
  }
  TimerShard& t = it->second;
  ++t.count;
  t.total += seconds;
  t.min = std::min(t.min, seconds);
  t.max = std::max(t.max, seconds);
  if (t.samples.size() < kMaxSamplesPerTimer) t.samples.push_back(seconds);
}

void annotate_slow(std::string_view name, std::string_view value) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  const auto it = r.annotations.find(name);
  if (it != r.annotations.end()) {
    it->second = std::string(value);
  } else {
    r.annotations.emplace(std::string(name), std::string(value));
  }
}

}  // namespace detail

void set_enabled(bool on) {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

void reset() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.gauges.clear();
  r.annotations.clear();
  for (const std::shared_ptr<Shard>& shard : r.shards) {
    std::lock_guard<std::mutex> shard_lock(shard->mu);
    shard->counters.clear();
    shard->timers.clear();
  }
}

Report snapshot() {
  Report report;
  report.wall_us = std::chrono::duration<double, std::micro>(
                       std::chrono::system_clock::now().time_since_epoch())
                       .count();
  report.steady_us = std::chrono::duration<double, std::micro>(
                         std::chrono::steady_clock::now().time_since_epoch())
                         .count();
  std::map<std::string, TimerShard, std::less<>> merged;
  {
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    report.gauges.insert(r.gauges.begin(), r.gauges.end());
    report.annotations.insert(r.annotations.begin(), r.annotations.end());
    for (const std::shared_ptr<Shard>& shard : r.shards) {
      std::lock_guard<std::mutex> shard_lock(shard->mu);
      for (const auto& [name, value] : shard->counters) {
        report.counters[name] += value;
      }
      for (const auto& [name, t] : shard->timers) {
        TimerShard& m = merged[name];
        m.count += t.count;
        m.total += t.total;
        m.min = std::min(m.min, t.min);
        m.max = std::max(m.max, t.max);
        m.samples.insert(m.samples.end(), t.samples.begin(), t.samples.end());
      }
    }
  }
  for (auto& [name, t] : merged) {
    if (t.count == 0) continue;
    TimerStats stats;
    stats.count = t.count;
    stats.total = t.total;
    stats.min = t.min;
    stats.max = t.max;
    stats.mean = t.total / static_cast<double>(t.count);
    std::sort(t.samples.begin(), t.samples.end());
    stats.p50 = percentile(t.samples, 0.50);
    stats.p95 = percentile(t.samples, 0.95);
    report.timers.emplace(name, stats);
  }
  return report;
}

std::string to_json(const Report& report) {
  std::string out = "{\n  \"schema\": \"ls.metrics.v1\",\n  \"clock\": "
                    "{\"wall_us\": " + json::number(report.wall_us) +
                    ", \"steady_us\": " + json::number(report.steady_us) +
                    "},\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : report.counters) {
    out += first ? "\n" : ",\n";
    out += "    " + json::quote(name) + ": " + std::to_string(value);
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : report.gauges) {
    out += first ? "\n" : ",\n";
    out += "    " + json::quote(name) + ": " + json::number(value);
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"timers\": {";
  first = true;
  for (const auto& [name, t] : report.timers) {
    out += first ? "\n" : ",\n";
    out += "    " + json::quote(name) + ": {\"count\": " +
           std::to_string(t.count) + ", \"total\": " + json::number(t.total) +
           ", \"min\": " + json::number(t.min) +
           ", \"mean\": " + json::number(t.mean) +
           ", \"p50\": " + json::number(t.p50) +
           ", \"p95\": " + json::number(t.p95) +
           ", \"max\": " + json::number(t.max) + "}";
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"annotations\": {";
  first = true;
  for (const auto& [name, value] : report.annotations) {
    out += first ? "\n" : ",\n";
    out += "    " + json::quote(name) + ": " + json::quote(value);
    first = false;
  }
  out += first ? "}\n}\n" : "\n  }\n}\n";
  return out;
}

namespace {

std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string q = "\"";
  for (char c : s) {
    if (c == '"') q += "\"\"";
    else q += c;
  }
  q += '"';
  return q;
}

std::string csv_num(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

std::string to_csv(const Report& report) {
  std::string out = "kind,name,value,count,total,min,mean,p50,p95,max\n";
  out += "clock,wall_us," + csv_num(report.wall_us) + ",,,,,,,\n";
  out += "clock,steady_us," + csv_num(report.steady_us) + ",,,,,,,\n";
  for (const auto& [name, value] : report.counters) {
    out += "counter," + csv_escape(name) + "," + std::to_string(value) +
           ",,,,,,,\n";
  }
  for (const auto& [name, value] : report.gauges) {
    out += "gauge," + csv_escape(name) + "," + csv_num(value) + ",,,,,,,\n";
  }
  for (const auto& [name, t] : report.timers) {
    out += "timer," + csv_escape(name) + ",," + std::to_string(t.count) +
           "," + csv_num(t.total) + "," + csv_num(t.min) + "," +
           csv_num(t.mean) + "," + csv_num(t.p50) + "," + csv_num(t.p95) +
           "," + csv_num(t.max) + "\n";
  }
  for (const auto& [name, value] : report.annotations) {
    out += "annotation," + csv_escape(name) + "," + csv_escape(value) +
           ",,,,,,,\n";
  }
  return out;
}

void write_json(const std::string& path) {
  atomic_write_file(path, to_json(snapshot()), /*with_crc_footer=*/false);
}

void write_csv(const std::string& path) {
  atomic_write_file(path, to_csv(snapshot()), /*with_crc_footer=*/false);
}

void write_report(const std::string& path) {
  const bool csv = path.size() >= 4 && path.rfind(".csv") == path.size() - 4;
  if (csv) {
    write_csv(path);
  } else {
    write_json(path);
  }
}

}  // namespace ls::metrics
