// Process-wide metrics registry: counters, gauges, scoped-timer histograms
// and string annotations, exported as an atomic JSON (or CSV) report.
//
// Collection is off by default and every recording call starts with one
// relaxed atomic load, so instrumented hot paths stay hot when nobody is
// measuring. Enable with the LS_METRICS environment variable or
// metrics::set_enabled(true) (the tools wire --metrics-out to the latter):
//
//   LS_METRICS=1                collect; caller exports explicitly
//   LS_METRICS=/tmp/run.json    collect and auto-export there at exit
//
// Thread safety: counters and timer samples go to per-thread shards (each
// with an uncontended mutex) that are aggregated on snapshot(); gauges and
// annotations are last-write-wins under one registry mutex. Naming scheme:
// dotted lower-case `component.metric`, with `_total` for counters and
// `_seconds` for timers (see DESIGN.md §10).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>

namespace ls::metrics {

namespace detail {
/// Collection switch; read on every recording call, so keep it relaxed.
extern std::atomic<bool> g_enabled;
void counter_add_slow(std::string_view name, std::int64_t delta);
void gauge_set_slow(std::string_view name, double value);
void timer_record_slow(std::string_view name, double seconds);
void annotate_slow(std::string_view name, std::string_view value);
}  // namespace detail

/// True when the registry is recording.
inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

/// Turns collection on or off (does not clear recorded values).
void set_enabled(bool on);

/// Drops every recorded value (tests; shards stay registered).
void reset();

/// Adds `delta` to a monotonically increasing counter.
inline void counter_add(std::string_view name, std::int64_t delta = 1) {
  if (enabled()) detail::counter_add_slow(name, delta);
}

/// Sets a gauge to its latest observed value (last write wins).
inline void gauge_set(std::string_view name, double value) {
  if (enabled()) detail::gauge_set_slow(name, value);
}

/// Records one duration sample into a timer histogram.
inline void timer_record(std::string_view name, double seconds) {
  if (enabled()) detail::timer_record_slow(name, seconds);
}

/// Attaches a string fact (provenance, chosen format, rationale) to the
/// report. Last write wins.
inline void annotate(std::string_view name, std::string_view value) {
  if (enabled()) detail::annotate_slow(name, value);
}

/// Aggregated statistics of one timer histogram.
struct TimerStats {
  std::int64_t count = 0;
  double total = 0.0;
  double min = 0.0;
  double mean = 0.0;
  double p50 = 0.0;  ///< from retained samples (capped per thread)
  double p95 = 0.0;
  double max = 0.0;
};

/// One aggregated, point-in-time view of the registry. Snapshots carry
/// both clocks of DESIGN.md §17: `steady_us` (monotonic, since process
/// start) orders reports from one process run; `wall_us` (system clock,
/// since the Unix epoch) pins the snapshot to real time so reports taken
/// before and after a crash/restart never appear to time-travel.
struct Report {
  double wall_us = 0.0;
  double steady_us = 0.0;
  std::map<std::string, std::int64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, TimerStats> timers;
  std::map<std::string, std::string> annotations;
};

/// Aggregates all shards into one report (safe to call while recording).
Report snapshot();

/// Renders a report as pretty-printed JSON (schema "ls.metrics.v1").
std::string to_json(const Report& report);

/// Renders a report as CSV (kind,name,value,count,total,min,mean,p50,p95,max).
std::string to_csv(const Report& report);

/// Atomically writes snapshot() as JSON to `path` (no CRC footer, so the
/// file is directly parseable by any JSON reader).
void write_json(const std::string& path);

/// Atomically writes snapshot() as CSV to `path`.
void write_csv(const std::string& path);

/// Writes CSV when `path` ends in ".csv", JSON otherwise.
void write_report(const std::string& path);

/// RAII timer: records the scope's duration into `name` on destruction.
/// Arming is decided at construction, so enabling metrics mid-scope does
/// not record a partially measured interval.
class ScopedTimer {
 public:
  explicit ScopedTimer(std::string_view name) : armed_(enabled()) {
    // The name copy and the clock read both wait behind the gate so a
    // disabled timer costs one relaxed atomic load, nothing more.
    if (armed_) {
      name_ = name;
      start_ = std::chrono::steady_clock::now();
    }
  }
  ~ScopedTimer() {
    if (armed_) detail::timer_record_slow(name_, elapsed());
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  /// Records now instead of at scope exit (idempotent).
  void stop() {
    if (armed_) detail::timer_record_slow(name_, elapsed());
    armed_ = false;
  }

 private:
  double elapsed() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

  bool armed_;
  std::string name_;
  std::chrono::steady_clock::time_point start_{};
};

}  // namespace ls::metrics
