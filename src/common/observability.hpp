// Glue between the CLI tools and the metrics/trace subsystems: every
// example binary registers --metrics-out / --trace-out via
// add_observability_flags() and holds an ObservabilityScope for the
// duration of its run, so one flag turns a normal run into a measured one:
//
//   ./svm_tool --mode demo --metrics-out run.json --trace-out run.trace.json
//
// The LS_METRICS / LS_TRACE environment variables work independently of
// the flags (see metrics.hpp / trace.hpp for their syntax).
#pragma once

#include <cstdio>
#include <exception>
#include <string>

#include "common/cli.hpp"
#include "common/metrics.hpp"
#include "common/trace.hpp"

namespace ls {

/// Registers the standard observability flags on a tool's CLI parser.
inline void add_observability_flags(CliParser& cli) {
  cli.add_flag("metrics-out", "",
               "write a metrics report here on exit (JSON, or CSV when the "
               "path ends in .csv); implies collection");
  cli.add_flag("trace-out", "",
               "write a chrome://tracing JSON (or .csv) trace here on exit; "
               "implies collection");
}

/// RAII observability session for a tool run: enables collection for every
/// requested output and exports the reports atomically on destruction.
/// Export failures are reported on stderr rather than thrown — a full disk
/// must not turn a finished training run into a crash.
class ObservabilityScope {
 public:
  explicit ObservabilityScope(const CliParser& cli)
      : metrics_path_(cli.get("metrics-out")),
        trace_path_(cli.get("trace-out")) {
    if (!metrics_path_.empty()) metrics::set_enabled(true);
    if (!trace_path_.empty()) trace::set_enabled(true);
  }

  ~ObservabilityScope() {
    try {
      if (!metrics_path_.empty()) {
        metrics::write_report(metrics_path_);
        std::fprintf(stderr, "metrics report written to %s\n",
                     metrics_path_.c_str());
      }
      if (!trace_path_.empty()) {
        trace::write_report(trace_path_);
        std::fprintf(stderr, "trace written to %s (%zu events)\n",
                     trace_path_.c_str(), trace::event_count());
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "observability export failed: %s\n", e.what());
    }
  }

  ObservabilityScope(const ObservabilityScope&) = delete;
  ObservabilityScope& operator=(const ObservabilityScope&) = delete;

 private:
  std::string metrics_path_;
  std::string trace_path_;
};

}  // namespace ls
