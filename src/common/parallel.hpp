// Shared-memory parallelism helpers.
//
// The paper's kernels were parallelised with OpenMP on Ivy Bridge + Xeon Phi;
// we use the same model. All hot loops in src/formats and src/svm go through
// these helpers so thread count, scheduling and the no-OpenMP fallback live
// in exactly one place.
#pragma once

#ifdef _OPENMP
#include <omp.h>
#endif

#include "common/types.hpp"

namespace ls {

/// Number of threads OpenMP will use for parallel regions (1 without OpenMP).
inline int num_threads() {
#ifdef _OPENMP
  return omp_get_max_threads();
#else
  return 1;
#endif
}

/// Sets the OpenMP thread count (no-op without OpenMP).
inline void set_num_threads(int n) {
#ifdef _OPENMP
  omp_set_num_threads(n > 0 ? n : 1);
#else
  (void)n;
#endif
}

/// Index of the calling thread inside a parallel region (0 without OpenMP).
inline int thread_id() {
#ifdef _OPENMP
  return omp_get_thread_num();
#else
  return 0;
#endif
}

/// Static-schedule parallel loop over [0, n). `fn(i)` must be thread-safe
/// for distinct i. Falls back to a serial loop without OpenMP.
template <class Fn>
void parallel_for(index_t n, Fn&& fn) {
#ifdef _OPENMP
#pragma omp parallel for schedule(static)
  for (index_t i = 0; i < n; ++i) fn(i);
#else
  for (index_t i = 0; i < n; ++i) fn(i);
#endif
}

/// Parallel sum-reduction of fn(i) over [0, n).
template <class Fn>
real_t parallel_sum(index_t n, Fn&& fn) {
  real_t total = 0.0;
#ifdef _OPENMP
#pragma omp parallel for schedule(static) reduction(+ : total)
  for (index_t i = 0; i < n; ++i) total += fn(i);
#else
  for (index_t i = 0; i < n; ++i) total += fn(i);
#endif
  return total;
}

}  // namespace ls
