// Shared-memory parallelism helpers.
//
// The paper's kernels were parallelised with OpenMP on Ivy Bridge + Xeon Phi;
// we use the same model. All hot loops in src/formats and src/svm go through
// these helpers so thread count, scheduling and the no-OpenMP fallback live
// in exactly one place.
#pragma once

#ifdef _OPENMP
#include <omp.h>
#endif

#include <algorithm>
#include <limits>
#include <vector>

#include "common/types.hpp"

namespace ls {

/// Number of threads OpenMP will use for parallel regions (1 without OpenMP).
inline int num_threads() {
#ifdef _OPENMP
  return omp_get_max_threads();
#else
  return 1;
#endif
}

/// Sets the OpenMP thread count (no-op without OpenMP).
inline void set_num_threads(int n) {
#ifdef _OPENMP
  omp_set_num_threads(n > 0 ? n : 1);
#else
  (void)n;
#endif
}

/// Index of the calling thread inside a parallel region (0 without OpenMP).
inline int thread_id() {
#ifdef _OPENMP
  return omp_get_thread_num();
#else
  return 0;
#endif
}

/// Static-schedule parallel loop over [0, n). `fn(i)` must be thread-safe
/// for distinct i. Falls back to a serial loop without OpenMP.
template <class Fn>
void parallel_for(index_t n, Fn&& fn) {
#ifdef _OPENMP
#pragma omp parallel for schedule(static)
  for (index_t i = 0; i < n; ++i) fn(i);
#else
  for (index_t i = 0; i < n; ++i) fn(i);
#endif
}

/// Static-schedule parallel loop over [0, n) in contiguous blocks:
/// `fn(lo, hi)` is called once per block with lo < hi and the blocks
/// partition [0, n). Block boundaries depend only on n and the thread
/// count, matching parallel_for's static schedule. Used where the body
/// hands a whole contiguous range to a SIMD kernel instead of visiting
/// one index at a time.
template <class Fn>
void parallel_for_blocks(index_t n, Fn&& fn) {
  if (n <= 0) return;
  const index_t chunks = std::min<index_t>(static_cast<index_t>(num_threads()), n);
  parallel_for(chunks, [&](index_t c) {
    const index_t lo = n * c / chunks;
    const index_t hi = n * (c + 1) / chunks;
    if (lo < hi) fn(lo, hi);
  });
}

/// Parallel sum-reduction of fn(i) over [0, n).
template <class Fn>
real_t parallel_sum(index_t n, Fn&& fn) {
  real_t total = 0.0;
#ifdef _OPENMP
#pragma omp parallel for schedule(static) reduction(+ : total)
  for (index_t i = 0; i < n; ++i) total += fn(i);
#else
  for (index_t i = 0; i < n; ++i) total += fn(i);
#endif
  return total;
}

/// Deterministic parallel reduction of fn(i) over [0, n): each of the T
/// chunks folds its range serially in index order, then the T partials are
/// combined left to right. For an associative `combine` the result is
/// independent of the thread count — unlike an OpenMP `reduction`, whose
/// combine order is unspecified. Used by the WSS scans, where the SVM
/// model must come out bit-identical at any OMP_NUM_THREADS.
template <class T, class Fn, class Combine>
T parallel_reduce(index_t n, T init, Fn&& fn, Combine&& combine) {
  const int t = num_threads();
  if (t <= 1 || n < 4096) {
    T acc = init;
    for (index_t i = 0; i < n; ++i) acc = combine(acc, fn(i));
    return acc;
  }
  const index_t chunks = static_cast<index_t>(t);
  std::vector<T> partial(static_cast<std::size_t>(chunks), init);
  parallel_for(chunks, [&](index_t c) {
    const index_t lo = n * c / chunks;
    const index_t hi = n * (c + 1) / chunks;
    T acc = init;
    for (index_t i = lo; i < hi; ++i) acc = combine(acc, fn(i));
    partial[static_cast<std::size_t>(c)] = acc;
  });
  T acc = init;
  for (const T& p : partial) acc = combine(acc, p);
  return acc;
}

/// Deterministic parallel argmax: the smallest index attaining the maximum
/// of score(i) over [0, n), or -1 when n == 0 or no score exceeds `floor`.
/// Ties and chunk merging both keep the first (lowest-index) winner, so the
/// result matches the serial loop for any thread count.
template <class Score>
index_t parallel_argmax(index_t n, Score&& score,
                        real_t floor = -std::numeric_limits<real_t>::infinity()) {
  struct Best {
    real_t value;
    index_t index;
  };
  const Best init{floor, -1};
  const Best best = parallel_reduce(
      n, init,
      [&](index_t i) -> Best { return {score(i), i}; },
      [](const Best& a, const Best& b) -> Best {
        if (b.index < 0) return a;
        // Strictly greater: on ties the earlier index wins, which makes the
        // fold invariant to how [0, n) was chunked.
        return b.value > a.value ? b : a;
      });
  return best.index;
}

}  // namespace ls
