// Deterministic pseudo-random number generation.
//
// Every synthetic dataset and every stochastic solver in this repository is
// seeded explicitly so experiments are bit-reproducible run to run. The
// engine is SplitMix64 feeding xoshiro256**, which is fast, has a 256-bit
// state, and is trivially portable (no libstdc++ distribution differences).
#pragma once

#include <cmath>
#include <cstdint>

#include "common/error.hpp"
#include "common/types.hpp"

namespace ls {

/// xoshiro256** seeded via SplitMix64. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) {
    // SplitMix64 expansion of the seed into the 4-word xoshiro state.
    std::uint64_t z = seed;
    for (auto& s : state_) {
      z += 0x9E3779B97F4A7C15ull;
      std::uint64_t w = z;
      w = (w ^ (w >> 30)) * 0xBF58476D1CE4E5B9ull;
      w = (w ^ (w >> 27)) * 0x94D049BB133111EBull;
      s = w ^ (w >> 31);
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [lo, hi] inclusive. Uses rejection to avoid modulo
  /// bias (matters for the permutation-based generators).
  index_t uniform_int(index_t lo, index_t hi) {
    LS_ASSERT(lo <= hi, "empty integer range");
    const std::uint64_t range = static_cast<std::uint64_t>(hi - lo) + 1;
    if (range == 0) return static_cast<index_t>((*this)());  // full 64-bit
    const std::uint64_t limit = max() - max() % range;
    std::uint64_t v;
    do {
      v = (*this)();
    } while (v >= limit);
    return lo + static_cast<index_t>(v % range);
  }

  /// Standard normal via Box-Muller (cached second value).
  double normal() {
    if (has_cached_) {
      has_cached_ = false;
      return cached_;
    }
    double u1 = uniform();
    double u2 = uniform();
    // Guard against log(0).
    if (u1 < 1e-300) u1 = 1e-300;
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * 3.14159265358979323846 * u2;
    cached_ = r * std::sin(theta);
    has_cached_ = true;
    return r * std::cos(theta);
  }

  /// Normal with given mean and standard deviation.
  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Bernoulli trial with probability p of returning true.
  bool bernoulli(double p) { return uniform() < p; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
  double cached_ = 0.0;
  bool has_cached_ = false;
};

/// Fisher-Yates shuffle of [first, last) using our deterministic Rng.
template <class It>
void shuffle(It first, It last, Rng& rng) {
  const auto n = last - first;
  for (auto i = n - 1; i > 0; --i) {
    const auto j = rng.uniform_int(0, i);
    using std::swap;
    swap(first[i], first[j]);
  }
}

}  // namespace ls
