// Small descriptive-statistics helpers shared by the feature extractor
// (Table IV parameters such as vdim are variances) and the benchmark
// harness (mean / geometric-mean speedups as reported in the paper).
#pragma once

#include <algorithm>
#include <cmath>
#include <limits>
#include <span>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"

namespace ls {

/// Arithmetic mean; 0 for an empty range.
inline double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

/// Population variance (divide by N, matching the paper's vdim formula
/// sum((dim_i - adim)^2) / M); 0 for an empty range.
inline double variance(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return s / static_cast<double>(xs.size());
}

/// Population standard deviation.
inline double stddev(std::span<const double> xs) {
  return std::sqrt(variance(xs));
}

/// Geometric mean; requires strictly positive values.
inline double geometric_mean(std::span<const double> xs) {
  LS_CHECK(!xs.empty(), "geometric_mean of empty range");
  double log_sum = 0.0;
  for (double x : xs) {
    LS_CHECK(x > 0.0, "geometric_mean requires positive values, got " << x);
    log_sum += std::log(x);
  }
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

/// Median (copies and partially sorts); 0 for an empty range.
inline double median(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  std::vector<double> v(xs.begin(), xs.end());
  const std::size_t mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid),
                   v.end());
  if (v.size() % 2 == 1) return v[mid];
  const double hi = v[mid];
  const double lo = *std::max_element(
      v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid));
  return 0.5 * (lo + hi);
}

/// Minimum; +inf for an empty range.
inline double min_value(std::span<const double> xs) {
  double m = std::numeric_limits<double>::infinity();
  for (double x : xs) m = std::min(m, x);
  return m;
}

/// Maximum; -inf for an empty range.
inline double max_value(std::span<const double> xs) {
  double m = -std::numeric_limits<double>::infinity();
  for (double x : xs) m = std::max(m, x);
  return m;
}

/// Pearson correlation coefficient of two equally-sized samples.
/// Used by the Table IV reproduction to verify correlation signs between
/// influencing parameters and kernel throughput.
inline double pearson(std::span<const double> xs, std::span<const double> ys) {
  LS_CHECK(xs.size() == ys.size(), "pearson: size mismatch");
  LS_CHECK(xs.size() >= 2, "pearson: need at least two samples");
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

}  // namespace ls
