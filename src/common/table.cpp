#include "common/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "common/error.hpp"

namespace ls {

namespace {
const std::string kSeparatorSentinel = "\x01";
}  // namespace

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  LS_CHECK(!header_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> row) {
  LS_CHECK(row.size() == header_.size(),
           "row arity " << row.size() << " != header arity " << header_.size());
  rows_.push_back(std::move(row));
}

void Table::add_separator() { rows_.push_back({kSeparatorSentinel}); }

std::string Table::str() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    if (row.size() == 1 && row[0] == kSeparatorSentinel) continue;
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream os;
  auto print_rule = [&] {
    os << '+';
    for (std::size_t w : widths) {
      for (std::size_t i = 0; i < w + 2; ++i) os << '-';
      os << '+';
    }
    os << '\n';
  };
  auto print_row = [&](const std::vector<std::string>& row) {
    os << '|';
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << ' ' << row[c];
      for (std::size_t i = row[c].size(); i < widths[c] + 1; ++i) os << ' ';
      os << '|';
    }
    os << '\n';
  };

  print_rule();
  print_row(header_);
  print_rule();
  for (const auto& row : rows_) {
    if (row.size() == 1 && row[0] == kSeparatorSentinel) {
      print_rule();
    } else {
      print_row(row);
    }
  }
  print_rule();
  return os.str();
}

std::string fmt_double(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  std::string s(buf);
  // Trim trailing zeros but keep at least one decimal ("1.0").
  if (s.find('.') != std::string::npos) {
    while (s.size() > 1 && s.back() == '0') s.pop_back();
    if (s.back() == '.') s.push_back('0');
  }
  return s;
}

std::string fmt_speedup(double v) {
  char buf[64];
  if (v >= 100.0) {
    std::snprintf(buf, sizeof(buf), "%.0fx", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1fx", v);
  }
  return buf;
}

std::string fmt_bytes(double bytes) {
  static const char* units[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  int u = 0;
  while (bytes >= 1024.0 && u < 4) {
    bytes /= 1024.0;
    ++u;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f %s", bytes, units[u]);
  return buf;
}

std::string fmt_seconds(double s) {
  char buf[64];
  if (s >= 3600.0) {
    std::snprintf(buf, sizeof(buf), "%.1f h", s / 3600.0);
  } else if (s >= 1.0) {
    std::snprintf(buf, sizeof(buf), "%.1f s", s);
  } else if (s >= 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.2f ms", s * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f us", s * 1e6);
  }
  return buf;
}

}  // namespace ls
