// ASCII table rendering for the benchmark harness.
//
// Every bench binary prints paper-style rows; this formatter keeps them
// aligned and readable without pulling in an external dependency.
#pragma once

#include <string>
#include <vector>

namespace ls {

/// Column-aligned ASCII table builder.
///
/// Usage:
///   Table t({"Dataset", "Best", "Speedup"});
///   t.add_row({"adult", "ELL", "14.3x"});
///   std::cout << t.str();
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends a row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Appends a horizontal separator line at this position.
  void add_separator();

  /// Renders the table, ending with a newline.
  std::string str() const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  // A row with the sentinel value {"\x01"} renders as a separator.
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` significant decimals, trimming zeros.
std::string fmt_double(double v, int digits = 3);

/// Formats a speedup value the way the paper prints them ("14.3x").
std::string fmt_speedup(double v);

/// Formats a byte count with binary units ("1.5 MiB").
std::string fmt_bytes(double bytes);

/// Formats seconds adaptively ("83 s", "1.2 ms").
std::string fmt_seconds(double s);

}  // namespace ls
