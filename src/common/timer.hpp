// Wall-clock timing utilities for the benchmark harness and the empirical
// autotuner. steady_clock is used so NTP adjustments cannot corrupt
// measurements inside a tuning run.
#pragma once

#include <chrono>
#include <cstdint>
#include <limits>

namespace ls {

/// Simple wall-clock stopwatch.
class Timer {
 public:
  Timer() : start_(clock::now()) {}

  /// Restarts the stopwatch.
  void reset() { start_ = clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last reset().
  double millis() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Runs `fn` repeatedly until at least `min_seconds` elapsed (and at least
/// `min_reps` repetitions), returning the best (minimum) time per rep in
/// seconds. Minimum-of-reps is the standard noise-rejection policy for
/// micro-benchmarks on shared machines.
template <class Fn>
double time_best(Fn&& fn, int min_reps = 3, double min_seconds = 0.01) {
  double best = std::numeric_limits<double>::infinity();
  double total = 0.0;
  int reps = 0;
  while (reps < min_reps || total < min_seconds) {
    Timer t;
    fn();
    const double s = t.seconds();
    best = s < best ? s : best;
    total += s;
    ++reps;
    if (reps > 1000) break;  // pathological fast functions
  }
  return best;
}

}  // namespace ls
