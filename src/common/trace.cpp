#include "common/trace.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>

#include "common/fs_atomic.hpp"
#include "common/json.hpp"

namespace ls::trace {

namespace detail {
std::atomic<bool> g_enabled{false};
}  // namespace detail

namespace {

/// Per-thread event cap — bounds memory on pathological runs (a 20k-
/// iteration SMO solve tracing the gap every iteration stays well under it).
constexpr std::size_t kMaxEventsPerShard = 1 << 20;

struct Event {
  char phase;  // 'X' complete, 'C' counter, 'i' instant
  std::string name;
  const char* cat;
  double ts_us;
  double dur_us;
  double value;  // counter events only
  Args args;
};

struct Shard {
  std::mutex mu;
  int tid = 0;
  std::vector<Event> events;
  std::size_t dropped = 0;
};

struct Recorder {
  std::mutex mu;
  std::vector<std::shared_ptr<Shard>> shards;
  int next_tid = 1;
};

Recorder& recorder() {
  static Recorder* r = new Recorder;  // leaked: usable during static dtors
  return *r;
}

Shard& local_shard() {
  thread_local std::shared_ptr<Shard> shard = [] {
    auto s = std::make_shared<Shard>();
    Recorder& r = recorder();
    std::lock_guard<std::mutex> lock(r.mu);
    s->tid = r.next_tid++;
    r.shards.push_back(s);
    return s;
  }();
  return *shard;
}

const std::chrono::steady_clock::time_point g_anchor =
    std::chrono::steady_clock::now();

/// Wall-clock reading taken at (effectively) the same instant as the
/// steady anchor — the bridge that lets exports pin steady timestamps to
/// real time without making wall time a timebase.
const double g_wall_anchor_us =
    std::chrono::duration<double, std::micro>(
        std::chrono::system_clock::now().time_since_epoch())
        .count();

/// LS_TRACE startup hook, same syntax as LS_METRICS (see metrics.cpp).
const bool g_env_initialised = [] {
  const char* env = std::getenv("LS_TRACE");
  if (env == nullptr) return true;
  const std::string value(env);
  if (value.empty() || value == "0" || value == "false" || value == "off") {
    return true;
  }
  detail::g_enabled.store(true, std::memory_order_relaxed);
  if (value != "1" && value != "true" && value != "on" && value != "yes") {
    static std::string export_path;
    export_path = value;
    std::atexit([] {
      try {
        write_report(export_path);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "LS_TRACE export to %s failed: %s\n",
                     export_path.c_str(), e.what());
      }
    });
  }
  return true;
}();

std::string args_json(const Event& e) {
  std::string out = "{";
  bool first = true;
  if (e.phase == 'C') {
    out += json::quote(e.name) + ": " + json::number(e.value);
    first = false;
  }
  for (const auto& [key, value] : e.args) {
    if (!first) out += ", ";
    out += json::quote(key) + ": " + json::quote(value);
    first = false;
  }
  out += "}";
  return out;
}

}  // namespace

namespace detail {

void emit_slow(char phase, std::string name, const char* cat, double ts_us,
               double dur_us, double value, Args args) {
  Shard& s = local_shard();
  std::lock_guard<std::mutex> lock(s.mu);
  if (s.events.size() >= kMaxEventsPerShard) {
    ++s.dropped;
    return;
  }
  s.events.push_back(Event{phase, std::move(name), cat, ts_us, dur_us, value,
                           std::move(args)});
}

}  // namespace detail

void set_enabled(bool on) {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

void reset() {
  Recorder& r = recorder();
  std::lock_guard<std::mutex> lock(r.mu);
  for (const std::shared_ptr<Shard>& shard : r.shards) {
    std::lock_guard<std::mutex> shard_lock(shard->mu);
    shard->events.clear();
    shard->dropped = 0;
  }
}

double now_us() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - g_anchor)
      .count();
}

double wall_anchor_us() { return g_wall_anchor_us; }

std::size_t event_count() {
  Recorder& r = recorder();
  std::lock_guard<std::mutex> lock(r.mu);
  std::size_t n = 0;
  for (const std::shared_ptr<Shard>& shard : r.shards) {
    std::lock_guard<std::mutex> shard_lock(shard->mu);
    n += shard->events.size();
  }
  return n;
}

std::size_t dropped_count() {
  Recorder& r = recorder();
  std::lock_guard<std::mutex> lock(r.mu);
  std::size_t n = 0;
  for (const std::shared_ptr<Shard>& shard : r.shards) {
    std::lock_guard<std::mutex> shard_lock(shard->mu);
    n += shard->dropped;
  }
  return n;
}

std::string to_chrome_json() {
  // otherData pins the steady timebase to wall time: every event's "ts"
  // is steady micros since process start, and its wall time is
  // wall_anchor_us + ts. Two trace files from a crash/restart pair can be
  // ordered by their anchors even though both start at ts 0.
  std::string out = "{\"displayTimeUnit\": \"ms\", \"otherData\": "
                    "{\"clock\": \"steady_us_since_process_start\", "
                    "\"wall_anchor_us\": " + json::number(g_wall_anchor_us) +
                    "}, \"traceEvents\": [";
  bool first = true;
  Recorder& r = recorder();
  std::lock_guard<std::mutex> lock(r.mu);
  for (const std::shared_ptr<Shard>& shard : r.shards) {
    std::lock_guard<std::mutex> shard_lock(shard->mu);
    for (const Event& e : shard->events) {
      out += first ? "\n" : ",\n";
      out += "  {\"name\": " + json::quote(e.name) + ", \"cat\": " +
             json::quote(e.cat) + ", \"ph\": \"" + e.phase +
             "\", \"ts\": " + json::number(e.ts_us) +
             ", \"pid\": 1, \"tid\": " + std::to_string(shard->tid);
      if (e.phase == 'X') {
        out += ", \"dur\": " + json::number(e.dur_us);
      }
      if (e.phase == 'i') {
        out += ", \"s\": \"t\"";  // thread-scoped instant
      }
      if (e.phase == 'C' || !e.args.empty()) {
        out += ", \"args\": " + args_json(e);
      }
      out += "}";
      first = false;
    }
  }
  out += first ? "]}\n" : "\n]}\n";
  return out;
}

std::string to_csv() {
  // ts_us is the steady timebase; wall_us = wall anchor + ts_us is the
  // same instant on the wall clock, carried per row so replay tooling
  // never has to join against a side channel.
  std::string out = "phase,name,cat,ts_us,wall_us,dur_us,value,tid,args\n";
  const auto escape = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string q = "\"";
    for (char c : s) {
      if (c == '"') q += "\"\"";
      else q += c;
    }
    q += '"';
    return q;
  };
  char num[32];
  Recorder& r = recorder();
  std::lock_guard<std::mutex> lock(r.mu);
  for (const std::shared_ptr<Shard>& shard : r.shards) {
    std::lock_guard<std::mutex> shard_lock(shard->mu);
    for (const Event& e : shard->events) {
      std::string args;
      for (const auto& [key, value] : e.args) {
        if (!args.empty()) args += ';';
        args += key + "=" + value;
      }
      out += e.phase;
      out += ',' + escape(e.name) + ',' + escape(e.cat) + ',';
      std::snprintf(num, sizeof(num), "%.3f", e.ts_us);
      out += num;
      out += ',';
      std::snprintf(num, sizeof(num), "%.3f", g_wall_anchor_us + e.ts_us);
      out += num;
      out += ',';
      std::snprintf(num, sizeof(num), "%.3f", e.dur_us);
      out += num;
      out += ',';
      std::snprintf(num, sizeof(num), "%.17g", e.value);
      out += num;
      out += ',' + std::to_string(shard->tid) + ',' + escape(args) + '\n';
    }
  }
  return out;
}

void write_chrome_json(const std::string& path) {
  atomic_write_file(path, to_chrome_json(), /*with_crc_footer=*/false);
}

void write_csv(const std::string& path) {
  atomic_write_file(path, to_csv(), /*with_crc_footer=*/false);
}

void write_report(const std::string& path) {
  const bool csv = path.size() >= 4 && path.rfind(".csv") == path.size() - 4;
  if (csv) {
    write_csv(path);
  } else {
    write_chrome_json(path);
  }
}

}  // namespace ls::trace
