// Structured trace-event recorder with chrome://tracing JSON export.
//
// Instrumented code emits *complete* events (a named span with start and
// duration), *counter* events (a named time series — the SMO KKT gap, the
// DNN loss curve) and *instant* events (point markers such as a layout
// reschedule). The export is the Trace Event Format consumed by
// chrome://tracing / Perfetto, written atomically; a flat CSV flavour is
// available for spreadsheet work.
//
// Like the metrics registry (metrics.hpp), recording is off by default and
// costs one relaxed atomic load per call site when disabled. Enable with
// LS_TRACE (same syntax as LS_METRICS: "1" = collect, a path = collect and
// auto-export at exit) or trace::set_enabled(true); the tools wire
// --trace-out to the latter. Events go to per-thread buffers (bounded;
// overflow counts as dropped) merged on export.
#pragma once

#include <atomic>
#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace ls::trace {

/// Key/value pairs attached to an event's "args" object.
using Args = std::vector<std::pair<std::string, std::string>>;

namespace detail {
extern std::atomic<bool> g_enabled;
void emit_slow(char phase, std::string name, const char* cat, double ts_us,
               double dur_us, double value, Args args);
}  // namespace detail

/// True when the recorder is collecting events.
inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

/// Turns collection on or off (does not clear recorded events).
void set_enabled(bool on);

/// Drops every recorded event and the dropped-event count (tests).
void reset();

/// Microseconds since process start (steady clock — the trace timebase).
double now_us();

/// Wall-clock (system_clock) microseconds since the Unix epoch at the
/// moment the steady timebase was anchored. Exports carry it so a trace's
/// steady timestamps can be pinned to real time: wall(event) =
/// wall_anchor_us() + ts. Keeping events on the steady clock means a
/// post-crash replay (or an NTP step mid-run) can never produce
/// time-travelling spans; the wall anchor is metadata, not a timebase
/// (DESIGN.md §17).
double wall_anchor_us();

/// Records a complete ("X") event: a span that started at `ts_us` and
/// lasted `dur_us`. `cat` must be a string literal.
inline void emit_complete(std::string name, const char* cat, double ts_us,
                          double dur_us, Args args = {}) {
  if (enabled()) {
    detail::emit_slow('X', std::move(name), cat, ts_us, dur_us, 0.0,
                      std::move(args));
  }
}

/// Records a counter ("C") sample of `name` at the current time.
inline void emit_counter(std::string name, double value) {
  if (enabled()) detail::emit_slow('C', std::move(name), "counter", now_us(), 0.0, value, {});
}

/// Records an instant ("i") marker at the current time.
inline void emit_instant(std::string name, const char* cat, Args args = {}) {
  if (enabled()) {
    detail::emit_slow('i', std::move(name), cat, now_us(), 0.0, 0.0,
                      std::move(args));
  }
}

/// Number of events currently buffered across all threads.
std::size_t event_count();

/// Events discarded because a thread buffer hit its cap.
std::size_t dropped_count();

/// Renders the buffered events as a chrome://tracing JSON document.
std::string to_chrome_json();

/// Renders the buffered events as CSV (phase,name,cat,ts_us,dur_us,tid,...).
std::string to_csv();

/// Atomically writes to_chrome_json() to `path` (no CRC footer).
void write_chrome_json(const std::string& path);

/// Atomically writes to_csv() to `path`.
void write_csv(const std::string& path);

/// Writes CSV when `path` ends in ".csv", chrome JSON otherwise.
void write_report(const std::string& path);

/// RAII span: emits a complete event covering the scope's lifetime.
/// Arming is decided at construction.
class ScopedEvent {
 public:
  ScopedEvent(std::string name, const char* cat)
      : armed_(enabled()), name_(std::move(name)), cat_(cat),
        start_us_(armed_ ? now_us() : 0.0) {}
  ~ScopedEvent() {
    if (armed_) {
      detail::emit_slow('X', std::move(name_), cat_, start_us_,
                        now_us() - start_us_, 0.0, std::move(args_));
    }
  }
  ScopedEvent(const ScopedEvent&) = delete;
  ScopedEvent& operator=(const ScopedEvent&) = delete;

  /// Attaches a key/value pair to the event emitted at scope exit.
  void arg(std::string key, std::string value) {
    if (armed_) args_.emplace_back(std::move(key), std::move(value));
  }

 private:
  bool armed_;
  std::string name_;
  const char* cat_;
  double start_us_;
  Args args_;
};

}  // namespace ls::trace
