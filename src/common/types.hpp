// Fundamental scalar and index types used across the library.
//
// All matrix dimensions and nonzero counts use `index_t` (a 64-bit signed
// integer so that intermediate products like M*N never overflow for the
// dataset sizes in the paper, e.g. dna: 3.6e6 x 200), and all numeric data
// uses `real_t` (double, matching LIBSVM's precision so SMO convergence
// behaviour is comparable).
#pragma once

#include <cstdint>
#include <cstddef>

namespace ls {

using index_t = std::int64_t;
using real_t = double;

/// Number of bytes in one `real_t` element; used by the storage cost model.
inline constexpr std::size_t kRealBytes = sizeof(real_t);
/// Number of bytes in one `index_t` element; used by the storage cost model.
inline constexpr std::size_t kIndexBytes = sizeof(index_t);

}  // namespace ls
