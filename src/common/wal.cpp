#include "common/wal.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include "common/failpoint.hpp"
#include "common/fs_atomic.hpp"

namespace ls {

namespace {

constexpr std::size_t kHeaderBytes = 8;  // u32 len + u32 crc
constexpr char kSegPrefix[] = "wal-";
constexpr char kSegSuffix[] = ".seg";

std::string seg_name(std::uint64_t seq) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%s%016llx%s", kSegPrefix,
                static_cast<unsigned long long>(seq), kSegSuffix);
  return buf;
}

/// Parses "wal-<16 hex>.seg"; returns false for anything else so stray
/// files (editor droppings, quarantined copies) never join the log.
bool parse_seg_name(const std::string& name, std::uint64_t* seq) {
  const std::size_t prefix = sizeof(kSegPrefix) - 1;
  const std::size_t suffix = sizeof(kSegSuffix) - 1;
  if (name.size() != prefix + 16 + suffix) return false;
  if (name.compare(0, prefix, kSegPrefix) != 0) return false;
  if (name.compare(prefix + 16, suffix, kSegSuffix) != 0) return false;
  const std::string hex = name.substr(prefix, 16);
  if (hex.find_first_not_of("0123456789abcdef") != std::string::npos) {
    return false;
  }
  *seq = std::strtoull(hex.c_str(), nullptr, 16);
  return true;
}

std::vector<std::uint64_t> list_segments(const std::string& dir) {
  std::vector<std::uint64_t> seqs;
  ::DIR* d = ::opendir(dir.c_str());
  LS_CHECK(d != nullptr,
           "cannot open wal directory " << dir << ": " << std::strerror(errno));
  while (struct ::dirent* e = ::readdir(d)) {
    std::uint64_t seq = 0;
    if (parse_seg_name(e->d_name, &seq)) seqs.push_back(seq);
  }
  ::closedir(d);
  std::sort(seqs.begin(), seqs.end());
  return seqs;
}

std::string read_whole_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  LS_CHECK(in.good(), "cannot open wal segment: " << path);
  std::ostringstream os;
  os << in.rdbuf();
  LS_CHECK(!in.bad(), "failed reading wal segment: " << path);
  return os.str();
}

void ensure_dir(const std::string& dir) {
  if (::mkdir(dir.c_str(), 0777) == 0 || errno == EEXIST) return;
  throw Error("cannot create wal directory " + dir + ": " +
              std::strerror(errno));
}

std::uint32_t load_u32(const char* p) {
  std::uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

[[noreturn]] void throw_corrupt(const std::string& path, std::size_t offset,
                                const char* why) {
  std::ostringstream os;
  os << "wal corruption in " << path << " at offset " << offset << ": " << why
     << " — refusing replay (records after the damage would be silently "
        "reordered against their acks)";
  throw WalCorruption(os.str());
}

}  // namespace

std::vector<std::pair<std::uint64_t, std::size_t>> WriteAheadLog::recover_dir(
    const std::string& dir,
    const std::function<void(std::string_view)>& on_record,
    std::int64_t* torn_tail_bytes, std::size_t max_record_bytes) {
  std::vector<std::pair<std::uint64_t, std::size_t>> out;
  const std::vector<std::uint64_t> seqs = list_segments(dir);
  for (std::size_t si = 0; si < seqs.size(); ++si) {
    const bool last_segment = (si + 1 == seqs.size());
    const std::string path = dir + "/" + seg_name(seqs[si]);
    const std::string bytes = read_whole_file(path);
    std::size_t off = 0;
    std::size_t records = 0;
    while (off < bytes.size()) {
      // Decide whether the damage (if any) at `off` is a torn tail. Only
      // the final segment may be torn, and only when the broken record's
      // claimed span swallows the rest of the file — readable bytes after
      // a bad record mean acked records would vanish mid-stream.
      const std::size_t avail = bytes.size() - off;
      if (avail < kHeaderBytes) {
        if (!last_segment) throw_corrupt(path, off, "truncated record header");
        break;  // torn header
      }
      const std::size_t len = load_u32(bytes.data() + off);
      const std::uint32_t want_crc = load_u32(bytes.data() + off + 4);
      if (len == 0 || len > max_record_bytes) {
        if (last_segment && kHeaderBytes + len >= avail) break;  // torn
        throw_corrupt(path, off, "impossible record length");
      }
      if (kHeaderBytes + len > avail) {
        if (!last_segment) throw_corrupt(path, off, "truncated record body");
        break;  // torn body
      }
      const char* payload = bytes.data() + off + kHeaderBytes;
      if (crc32(payload, len) != want_crc) {
        if (last_segment && kHeaderBytes + len == avail) break;  // torn crc
        throw_corrupt(path, off, "record checksum mismatch");
      }
      if (on_record) on_record(std::string_view(payload, len));
      off += kHeaderBytes + len;
      ++records;
    }
    if (off < bytes.size()) {
      // Torn tail on the last segment: cut it so future appends land
      // right after the final durable record.
      LS_CHECK(::truncate(path.c_str(), static_cast<::off_t>(off)) == 0,
               "cannot truncate torn wal tail in " << path << ": "
                                                   << std::strerror(errno));
      if (torn_tail_bytes) {
        *torn_tail_bytes += static_cast<std::int64_t>(bytes.size() - off);
      }
    }
    out.emplace_back(seqs[si], records);
  }
  return out;
}

WriteAheadLog::WriteAheadLog(
    std::string dir, WalOptions opts,
    const std::function<void(std::string_view)>& on_record)
    : dir_(std::move(dir)), opts_(opts) {
  LS_CHECK(opts_.segment_bytes > 0, "wal segment_bytes must be positive");
  LS_CHECK(opts_.max_record_bytes > 0, "wal max_record_bytes must be positive");
  ensure_dir(dir_);
  const auto recovered =
      recover_dir(dir_, on_record, &stats_.torn_tail_bytes,
                  opts_.max_record_bytes);
  for (const auto& [seq, records] : recovered) {
    struct ::stat st {};
    LS_CHECK(::stat(segment_path(seq).c_str(), &st) == 0,
             "cannot stat wal segment " << segment_path(seq));
    segments_.push_back(
        Segment{seq, records, static_cast<std::size_t>(st.st_size)});
    stats_.recovered_records += static_cast<std::int64_t>(records);
  }
  if (segments_.empty()) segments_.push_back(Segment{1, 0, 0});
  open_active(segments_.back().seq);
  stats_.segments = segments_.size();
  stats_.records = static_cast<std::size_t>(stats_.recovered_records);
}

WriteAheadLog::~WriteAheadLog() { close_active(); }

std::string WriteAheadLog::segment_path(std::uint64_t seq) const {
  return dir_ + "/" + seg_name(seq);
}

void WriteAheadLog::open_active(std::uint64_t seq) {
  close_active();
  const std::string path = segment_path(seq);
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0666);
  LS_CHECK(fd_ >= 0,
           "cannot open wal segment " << path << ": " << std::strerror(errno));
}

void WriteAheadLog::close_active() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void WriteAheadLog::sync() {
  LS_FAILPOINT("wal.sync");
  if (fd_ < 0) return;
  LS_CHECK(::fsync(fd_) == 0, "wal fsync failed on segment "
                                  << segments_.back().seq << ": "
                                  << std::strerror(errno));
}

void WriteAheadLog::append(std::string_view payload) {
  LS_CHECK(!payload.empty(), "wal records must be non-empty");
  LS_CHECK(payload.size() <= opts_.max_record_bytes,
           "wal record of " << payload.size() << " bytes exceeds max_record_bytes "
                            << opts_.max_record_bytes);
  if (segments_.back().bytes >= opts_.segment_bytes &&
      segments_.back().records > 0) {
    rotate();
  }
  if (fd_ < 0) open_active(segments_.back().seq);

  LS_FAILPOINT("wal.append");

  std::string frame;
  frame.resize(kHeaderBytes + payload.size());
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  const std::uint32_t crc = crc32(payload.data(), payload.size());
  std::memcpy(&frame[0], &len, 4);
  std::memcpy(&frame[4], &crc, 4);
  std::memcpy(&frame[kHeaderBytes], payload.data(), payload.size());

  std::size_t written = 0;
  while (written < frame.size()) {
    const ::ssize_t n =
        ::write(fd_, frame.data() + written, frame.size() - written);
    if (n > 0) {
      written += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    // Short or failed write: scrub the partial frame so the in-process log
    // stays parseable — leaving it would turn the *next* append into
    // mid-stream corruption. Truncating down needs no free space, so this
    // holds even under the ENOSPC that caused the failure.
    const int saved = errno;
    ::ftruncate(fd_, static_cast<::off_t>(segments_.back().bytes));
    throw Error("wal append failed on segment " +
                std::to_string(segments_.back().seq) + ": " +
                std::strerror(saved));
  }
  if (opts_.sync == WalSyncPolicy::kAlways) sync();

  segments_.back().bytes += frame.size();
  segments_.back().records += 1;
  ++stats_.appended_total;
  ++stats_.records;
}

void WriteAheadLog::rotate() {
  LS_FAILPOINT("wal.rotate");
  if (fd_ >= 0 && opts_.sync != WalSyncPolicy::kNever) {
    LS_CHECK(::fsync(fd_) == 0,
             "wal fsync failed rotating segment " << segments_.back().seq
                                                  << ": "
                                                  << std::strerror(errno));
  }
  const std::uint64_t next = segments_.back().seq + 1;
  open_active(next);
  segments_.push_back(Segment{next, 0, 0});
  ++stats_.rotations_total;
  apply_retention();
  stats_.segments = segments_.size();
}

void WriteAheadLog::apply_retention() {
  if (opts_.retain_records == 0) return;
  while (segments_.size() > 1 &&
         stats_.records - segments_.front().records >= opts_.retain_records) {
    const Segment& oldest = segments_.front();
    LS_CHECK(std::remove(segment_path(oldest.seq).c_str()) == 0,
             "cannot retire wal segment " << segment_path(oldest.seq) << ": "
                                          << std::strerror(errno));
    stats_.records -= oldest.records;
    ++stats_.retired_segments;
    segments_.erase(segments_.begin());
  }
}

void WriteAheadLog::reset() {
  close_active();
  std::uint64_t next = 1;
  // Remove every segment on disk, tracked or stray, so a reset log holds
  // exactly what gets rewritten into it.
  for (const std::uint64_t seq : list_segments(dir_)) {
    next = std::max(next, seq + 1);
    LS_CHECK(std::remove(segment_path(seq).c_str()) == 0,
             "cannot remove wal segment " << segment_path(seq) << ": "
                                          << std::strerror(errno));
  }
  segments_.clear();
  segments_.push_back(Segment{next, 0, 0});
  open_active(next);
  stats_.records = 0;
  stats_.segments = 1;
}

void WriteAheadLog::remove_dir(const std::string& dir) {
  ::DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return;
  std::vector<std::string> names;
  while (struct ::dirent* e = ::readdir(d)) {
    const std::string name = e->d_name;
    if (name != "." && name != "..") names.push_back(name);
  }
  ::closedir(d);
  for (const std::string& name : names) {
    std::remove((dir + "/" + name).c_str());
  }
  ::rmdir(dir.c_str());
}

}  // namespace ls
