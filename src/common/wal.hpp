// Segment-based write-ahead log: the durability substrate of the ingest
// stream (DESIGN.md §18).
//
// A WriteAheadLog is a directory of numbered segment files
// (`wal-<%016llx>.seg`), each a run of length-prefixed CRC32-framed
// records:
//
//   [u32 payload_len][u32 crc32(payload)][payload_len bytes]
//
// append() journals one opaque payload into the active segment and — per
// the configured fsync policy — flushes it to disk before returning, so a
// caller that acks only after append() returns can promise the ack
// survives SIGKILL and power loss. Segments rotate at `segment_bytes`;
// rotation drops the oldest segments once the surviving ones still hold at
// least `retain_records` records, which bounds disk usage by the sliding
// window the log exists to rebuild.
//
// recover() (called by open()) replays the surviving records oldest-first
// and draws a hard line between the two kinds of damage a crash can leave:
//
//   - a *torn tail* — the final record of the final segment is truncated
//     or fails its CRC with nothing readable after it. That is the
//     expected signature of dying mid-append; the tail is truncated away
//     and the log reopens for appending at the last durable record.
//   - *mid-stream corruption* — a record fails its CRC (or is
//     structurally impossible) with more data behind it, or any damage in
//     a non-final segment. Replaying around it would silently drop acked
//     records while pretending completeness, so recovery throws
//     WalCorruption and refuses the log; the caller decides whether to
//     quarantine or crash.
//
// Failpoints `wal.append`, `wal.rotate` and `wal.sync` stand in for
// ENOSPC/EIO at each stage; the trainer uses them to rehearse its
// memory-only degraded mode.
//
// Thread-compatibility: not internally synchronised — callers serialize
// access (the trainer holds its per-model mutex across append()).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "common/error.hpp"

namespace ls {

/// Recovery refusal: the journal is damaged in a way replay cannot prove
/// harmless (mid-stream CRC mismatch, impossible framing before the tail,
/// damage in a non-final segment).
class WalCorruption : public Error {
 public:
  explicit WalCorruption(const std::string& what) : Error(what) {}
};

/// When append() pushes bytes to the kernel vs to the platter.
enum class WalSyncPolicy : std::uint8_t {
  kAlways,   ///< fsync every append — acked implies durable (the default)
  kRotate,   ///< fsync only on segment rotation and sync() — fast, but the
             ///< records since the last rotation are best-effort
  kNever,    ///< never fsync — crash durability is whatever the OS flushed
};

struct WalOptions {
  /// Rotate the active segment once it holds at least this many bytes.
  std::size_t segment_bytes = 1 << 20;
  /// After a rotation, drop the oldest segments as long as the remaining
  /// ones still hold >= retain_records records (0 = keep everything).
  /// Callers rebuilding a bounded window set this to the window capacity.
  std::size_t retain_records = 0;
  /// Sanity bound on one record; recovery treats a larger length prefix as
  /// damage, append() refuses to write one.
  std::size_t max_record_bytes = 16u << 20;
  WalSyncPolicy sync = WalSyncPolicy::kAlways;
};

/// Counters over the log's lifetime (this process).
struct WalStats {
  std::int64_t appended_total = 0;    ///< records appended by this process
  std::int64_t rotations_total = 0;
  std::int64_t retired_segments = 0;  ///< segments dropped by retention
  std::int64_t recovered_records = 0; ///< records replayed by recover()
  std::int64_t torn_tail_bytes = 0;   ///< bytes truncated off the tail
  std::size_t segments = 0;           ///< live segment count
  std::size_t records = 0;            ///< records across live segments
};

class WriteAheadLog {
 public:
  /// Opens (creating the directory if needed) and recovers `dir`,
  /// replaying every surviving record into `on_record` oldest-first.
  /// Throws WalCorruption on mid-stream damage — the directory is left
  /// untouched for forensics — and ls::Error on I/O failures. On return
  /// the log is ready for append().
  WriteAheadLog(
      std::string dir, WalOptions opts,
      const std::function<void(std::string_view)>& on_record = nullptr);
  ~WriteAheadLog();

  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  /// Journals one record. When this returns under WalSyncPolicy::kAlways,
  /// the record is on disk. Throws ls::Error on any write/sync failure
  /// (failpoints wal.append / wal.rotate / wal.sync inject these); after a
  /// failed append the log stays usable — the next append retries against
  /// a freshly (re)opened active segment.
  void append(std::string_view payload);

  /// Flushes the active segment to disk regardless of policy.
  void sync();

  /// Deletes every segment and starts a fresh one. Destroys history —
  /// callers that still need the old records (e.g. a re-arm whose rewrite
  /// may yet fail) must rebuild into a side directory and swap instead.
  void reset();

  /// Removes a journal directory and everything in it (best-effort;
  /// a missing directory is fine). The re-arm swap's cleanup primitive.
  static void remove_dir(const std::string& dir);

  const WalStats& stats() const { return stats_; }
  const std::string& dir() const { return dir_; }

  /// Lowest-level recovery primitive, shared with tests: scans the
  /// segment files under `dir` oldest-first, invokes `on_record` per valid
  /// record, truncates a torn tail in place, throws WalCorruption on
  /// mid-stream damage. Returns per-segment record counts keyed by
  /// segment sequence number (empty when the directory has no segments).
  /// `torn_tail_bytes`, when non-null, reports how many bytes were cut.
  static std::vector<std::pair<std::uint64_t, std::size_t>> recover_dir(
      const std::string& dir,
      const std::function<void(std::string_view)>& on_record,
      std::int64_t* torn_tail_bytes = nullptr,
      std::size_t max_record_bytes = 16u << 20);

 private:
  struct Segment {
    std::uint64_t seq = 0;
    std::size_t records = 0;
    std::size_t bytes = 0;
  };

  std::string segment_path(std::uint64_t seq) const;
  /// Opens (appending) the segment with sequence `seq`, creating it empty
  /// when absent.
  void open_active(std::uint64_t seq);
  void close_active();
  /// Starts a new active segment and applies retention to the old ones.
  void rotate();
  void apply_retention();

  std::string dir_;
  WalOptions opts_;
  std::vector<Segment> segments_;  // oldest first; back() is active
  int fd_ = -1;
  WalStats stats_;
};

}  // namespace ls
