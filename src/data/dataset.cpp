#include "data/dataset.hpp"

#include <algorithm>
#include <numeric>
#include <set>

namespace ls {

index_t Dataset::num_classes() const {
  std::set<real_t> classes(y.begin(), y.end());
  return static_cast<index_t>(classes.size());
}

Dataset Dataset::subset(const std::vector<index_t>& row_ids,
                        const std::string& suffix) const {
  validate();
  std::vector<Triplet> triplets;
  std::vector<real_t> labels;
  labels.reserve(row_ids.size());

  // Map original row id -> new row id.
  SparseVector row;
  for (std::size_t new_i = 0; new_i < row_ids.size(); ++new_i) {
    const index_t old_i = row_ids[new_i];
    LS_CHECK(old_i >= 0 && old_i < rows(),
             "subset row " << old_i << " out of range");
    X.gather_row(old_i, row);
    const auto idx = row.indices();
    const auto val = row.values();
    for (index_t k = 0; k < row.nnz(); ++k) {
      triplets.push_back({static_cast<index_t>(new_i),
                          idx[static_cast<std::size_t>(k)],
                          val[static_cast<std::size_t>(k)]});
    }
    labels.push_back(y[static_cast<std::size_t>(old_i)]);
  }

  Dataset out;
  out.name = name + suffix;
  out.X = CooMatrix(static_cast<index_t>(row_ids.size()), cols(),
                    std::move(triplets));
  out.y = std::move(labels);
  return out;
}

std::pair<Dataset, Dataset> Dataset::split(double train_fraction,
                                           std::uint64_t seed) const {
  validate();
  LS_CHECK(train_fraction > 0.0 && train_fraction < 1.0,
           "train_fraction must be in (0, 1), got " << train_fraction);
  std::vector<index_t> ids(static_cast<std::size_t>(rows()));
  std::iota(ids.begin(), ids.end(), index_t{0});
  Rng rng(seed);
  shuffle(ids.begin(), ids.end(), rng);

  const auto n_train = static_cast<std::size_t>(
      train_fraction * static_cast<double>(rows()) + 0.5);
  LS_CHECK(n_train >= 1 && n_train < ids.size(),
           "split leaves an empty train or test set");

  std::vector<index_t> train_ids(ids.begin(),
                                 ids.begin() + static_cast<std::ptrdiff_t>(n_train));
  std::vector<index_t> test_ids(ids.begin() + static_cast<std::ptrdiff_t>(n_train),
                                ids.end());
  return {subset(train_ids, ".train"), subset(test_ids, ".test")};
}

}  // namespace ls
