// A labelled machine-learning dataset: the n x d matrix X plus the label
// vector y from the paper's Section II. X is held in canonical COO (the
// conversion hub); the layout scheduler decides its materialised format.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "formats/coo.hpp"

namespace ls {

/// Labelled dataset. Labels are +1 / -1 for binary classification tasks and
/// arbitrary small integers for multiclass (the one-vs-one trainer splits
/// them into binary problems, as the paper notes in Section II-A1).
struct Dataset {
  std::string name;
  CooMatrix X;
  std::vector<real_t> y;

  index_t rows() const { return X.rows(); }
  index_t cols() const { return X.cols(); }

  /// Throws unless X and y agree and labels are present.
  void validate() const {
    LS_CHECK(static_cast<index_t>(y.size()) == X.rows(),
             "dataset '" << name << "': " << y.size() << " labels for "
                         << X.rows() << " samples");
  }

  /// Number of distinct classes.
  index_t num_classes() const;

  /// Splits into train/test by a deterministic shuffled partition.
  /// `train_fraction` of the rows go to the first returned dataset.
  std::pair<Dataset, Dataset> split(double train_fraction,
                                    std::uint64_t seed = 42) const;

  /// Returns a new dataset containing the given rows (in order).
  Dataset subset(const std::vector<index_t>& row_ids,
                 const std::string& suffix) const;
};

}  // namespace ls
