#include "data/features.hpp"

#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/error.hpp"

namespace ls {

std::string MatrixFeatures::to_string() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "M=%lld N=%lld nnz=%lld ndig=%lld dnnz=%.2f mdim=%lld "
                "adim=%.2f vdim=%.3f density=%.3f",
                static_cast<long long>(m), static_cast<long long>(n),
                static_cast<long long>(nnz), static_cast<long long>(ndig),
                dnnz, static_cast<long long>(mdim), adim, vdim, density);
  return buf;
}

MatrixFeatures extract_features(const CooMatrix& coo) {
  MatrixFeatures f;
  f.m = coo.rows();
  f.n = coo.cols();
  f.nnz = coo.nnz();

  const auto rows = coo.row_indices();
  const auto cols = coo.col_indices();

  // dim_i (per-row nonzero counts) for mdim / adim / vdim.
  std::vector<index_t> dim(static_cast<std::size_t>(f.m), 0);
  // Occupied-diagonal bitmap: offset (col - row) shifted by (M - 1) so the
  // range is [0, M + N - 1).
  std::vector<char> diag_hit(
      static_cast<std::size_t>(f.m + f.n > 0 ? f.m + f.n - 1 : 0), 0);

  for (std::size_t k = 0; k < rows.size(); ++k) {
    ++dim[static_cast<std::size_t>(rows[k])];
    diag_hit[static_cast<std::size_t>(cols[k] - rows[k] + f.m - 1)] = 1;
  }

  f.ndig = 0;
  for (char hit : diag_hit) f.ndig += hit;
  f.dnnz = f.ndig > 0 ? static_cast<double>(f.nnz) / static_cast<double>(f.ndig)
                      : 0.0;

  f.mdim = 0;
  for (index_t d : dim) f.mdim = std::max(f.mdim, d);
  f.adim = f.m > 0 ? static_cast<double>(f.nnz) / static_cast<double>(f.m) : 0.0;

  // Population variance of dim_i, the paper's vdim = sum (dim_i - adim)^2 / M.
  double v = 0.0;
  for (index_t d : dim) {
    const double delta = static_cast<double>(d) - f.adim;
    v += delta * delta;
  }
  f.vdim = f.m > 0 ? v / static_cast<double>(f.m) : 0.0;

  const double cells = static_cast<double>(f.m) * static_cast<double>(f.n);
  f.density = cells > 0.0 ? static_cast<double>(f.nnz) / cells : 0.0;
  return f;
}

}  // namespace ls
