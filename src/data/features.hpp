// The nine influencing parameters of a data matrix (the paper's Table IV).
//
// These features fully drive the layout scheduler: the paper's claim is that
// (M, N, nnz, ndig, dnnz, mdim, adim, vdim, density) determine which storage
// format processes a dataset fastest under SMO.
#pragma once

#include <string>

#include "common/types.hpp"
#include "formats/coo.hpp"

namespace ls {

/// Extracted matrix features; field names match Table IV.
struct MatrixFeatures {
  index_t m = 0;        ///< number of rows (samples)
  index_t n = 0;        ///< number of columns (max feature index)
  index_t nnz = 0;      ///< number of nonzero elements
  index_t ndig = 0;     ///< number of occupied diagonals
  double dnnz = 0.0;    ///< nonzeros per diagonal: nnz / ndig
  index_t mdim = 0;     ///< max nonzeros in a row: max_i dim_i
  double adim = 0.0;    ///< average nonzeros per row: nnz / M
  double vdim = 0.0;    ///< population variance of dim_i
  double density = 0.0; ///< nnz / (M * N)

  /// One-line summary for logs and the Table V bench.
  std::string to_string() const;
};

/// Extracts all nine parameters in one pass over a canonical COO matrix.
/// Cost: O(nnz + M + min(M,N)) time, O(M + M + N) scratch.
MatrixFeatures extract_features(const CooMatrix& coo);

}  // namespace ls
