#include "data/libsvm_io.hpp"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "common/error.hpp"
#include "common/failpoint.hpp"
#include "formats/sparse_vector.hpp"

namespace ls {

namespace {

/// Checked double parse: rejects trailing junk, overflow (strtod signals
/// ERANGE and saturates to ±HUGE_VAL — previously this slipped through as
/// a silent inf) and explicit non-finite literals.
real_t parse_real(const char* begin, const char* what, index_t line_no) {
  char* end = nullptr;
  errno = 0;
  const real_t value = std::strtod(begin, &end);
  LS_CHECK(end != begin && *end == '\0',
           "libsvm line " << line_no << ": bad " << what << " '" << begin
                          << "'");
  LS_CHECK(errno != ERANGE || std::abs(value) < HUGE_VAL,
           "libsvm line " << line_no << ": " << what << " '" << begin
                          << "' overflows double range");
  LS_CHECK(std::isfinite(value),
           "libsvm line " << line_no << ": " << what << " '" << begin
                          << "' is not finite");
  return value;
}

// Parses one "index:value" token.
void parse_entry(const std::string& token, index_t& index, real_t& value,
                 index_t line_no) {
  const auto colon = token.find(':');
  LS_CHECK(colon != std::string::npos,
           "libsvm line " << line_no << ": bad token '" << token << "'");
  char* end = nullptr;
  errno = 0;
  const long long idx = std::strtoll(token.c_str(), &end, 10);
  LS_CHECK(end == token.c_str() + colon,
           "libsvm line " << line_no << ": bad index in '" << token << "'");
  LS_CHECK(errno != ERANGE && idx >= 1 && idx <= (1ll << 48),
           "libsvm line " << line_no << ": index out of range in '" << token
                          << "'");
  value = parse_real(token.c_str() + colon + 1, "value", line_no);
  index = static_cast<index_t>(idx);
}

}  // namespace

Dataset read_libsvm(std::istream& in, const std::string& name,
                    const LibsvmReadOptions& opts,
                    LibsvmReadReport* report) {
  std::vector<Triplet> triplets;
  std::vector<real_t> labels;
  index_t max_col = 0;
  index_t line_no = 0;
  LibsvmReadReport local_report;
  LibsvmReadReport& rep = report != nullptr ? *report : local_report;

  // Per-line staging: a row only commits once every token parsed, so a
  // permissive skip can never leave behind a half-read sample.
  struct StagedEntry {
    index_t col;
    real_t value;
  };
  std::vector<StagedEntry> staged;

  std::string line;
  while (std::getline(in, line)) {
    ++line_no;
    LS_FAILPOINT("data.libsvm.read");
    // CRLF tolerance: getline keeps the '\r' of Windows line endings, which
    // would otherwise reject the last token of every line as trailing junk.
    if (!line.empty() && line.back() == '\r') line.pop_back();
    // Strip comments and skip blank lines.
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    std::string token;
    if (!(ls >> token)) continue;

    try {
      const real_t label = parse_real(token.c_str(), "label", line_no);
      staged.clear();
      index_t prev_index = 0;
      index_t row_max_col = 0;
      while (ls >> token) {
        index_t idx = 0;
        real_t value = 0.0;
        parse_entry(token, idx, value, line_no);
        LS_CHECK(idx > prev_index,
                 "libsvm line " << line_no
                                << ": indices must be strictly increasing");
        prev_index = idx;
        row_max_col = std::max(row_max_col, idx);
        if (value != 0.0) {
          staged.push_back({idx - 1, value});  // to 0-based
        }
      }
      // Commit the fully parsed row.
      const index_t row = static_cast<index_t>(labels.size());
      labels.push_back(label);
      max_col = std::max(max_col, row_max_col);
      for (const StagedEntry& e : staged) {
        triplets.push_back({row, e.col, e.value});
      }
    } catch (const Error& e) {
      if (!opts.permissive) throw;
      ++rep.lines_skipped;
      if (rep.errors.size() < opts.max_errors) {
        rep.errors.push_back(e.what());
      }
    }
  }

  index_t num_cols = opts.num_cols;
  if (num_cols == 0) {
    num_cols = max_col;
  } else {
    LS_CHECK(max_col <= num_cols, "libsvm data has feature index "
                                      << max_col << " > forced column count "
                                      << num_cols);
  }

  Dataset ds;
  ds.name = name;
  ds.X = CooMatrix(static_cast<index_t>(labels.size()), num_cols,
                   std::move(triplets));
  ds.y = std::move(labels);
  return ds;
}

Dataset read_libsvm(std::istream& in, const std::string& name,
                    index_t num_cols) {
  LibsvmReadOptions opts;
  opts.num_cols = num_cols;
  return read_libsvm(in, name, opts);
}

Dataset read_libsvm_file(const std::string& path,
                         const LibsvmReadOptions& opts,
                         LibsvmReadReport* report) {
  std::ifstream in(path);
  LS_CHECK(in.good(), "cannot open libsvm file: " << path);
  return read_libsvm(in, path, opts, report);
}

Dataset read_libsvm_file(const std::string& path, index_t num_cols) {
  LibsvmReadOptions opts;
  opts.num_cols = num_cols;
  return read_libsvm_file(path, opts);
}

void write_libsvm(std::ostream& out, const Dataset& ds) {
  ds.validate();
  // Full round-trip precision: doubles need 17 significant digits.
  out.precision(17);
  SparseVector row;
  for (index_t i = 0; i < ds.rows(); ++i) {
    out << ds.y[static_cast<std::size_t>(i)];
    ds.X.gather_row(i, row);
    const auto idx = row.indices();
    const auto val = row.values();
    for (index_t k = 0; k < row.nnz(); ++k) {
      out << ' ' << (idx[static_cast<std::size_t>(k)] + 1) << ':'
          << val[static_cast<std::size_t>(k)];
    }
    out << '\n';
  }
}

void write_libsvm_file(const std::string& path, const Dataset& ds) {
  std::ofstream out(path);
  LS_CHECK(out.good(), "cannot open libsvm output file: " << path);
  write_libsvm(out, ds);
}

}  // namespace ls
