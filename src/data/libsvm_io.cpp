#include "data/libsvm_io.hpp"

#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "common/error.hpp"
#include "formats/sparse_vector.hpp"

namespace ls {

namespace {

// Parses one "index:value" token; returns false for blank/comment tails.
bool parse_entry(const std::string& token, index_t& index, real_t& value,
                 index_t line_no) {
  const auto colon = token.find(':');
  LS_CHECK(colon != std::string::npos,
           "libsvm line " << line_no << ": bad token '" << token << "'");
  char* end = nullptr;
  errno = 0;
  const long long idx = std::strtoll(token.c_str(), &end, 10);
  LS_CHECK(end == token.c_str() + colon,
           "libsvm line " << line_no << ": bad index in '" << token << "'");
  LS_CHECK(errno != ERANGE && idx >= 1 && idx <= (1ll << 48),
           "libsvm line " << line_no << ": index out of range in '" << token
                          << "'");
  const char* vbegin = token.c_str() + colon + 1;
  value = std::strtod(vbegin, &end);
  LS_CHECK(end != vbegin && *end == '\0',
           "libsvm line " << line_no << ": bad value in '" << token << "'");
  index = static_cast<index_t>(idx);
  return true;
}

}  // namespace

Dataset read_libsvm(std::istream& in, const std::string& name,
                    index_t num_cols) {
  std::vector<Triplet> triplets;
  std::vector<real_t> labels;
  index_t max_col = 0;
  index_t line_no = 0;

  std::string line;
  while (std::getline(in, line)) {
    ++line_no;
    // Strip comments and skip blank lines.
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    std::string token;
    if (!(ls >> token)) continue;

    char* end = nullptr;
    const real_t label = std::strtod(token.c_str(), &end);
    LS_CHECK(end != token.c_str() && *end == '\0',
             "libsvm line " << line_no << ": bad label '" << token << "'");
    const index_t row = static_cast<index_t>(labels.size());
    labels.push_back(label);

    index_t prev_index = 0;
    while (ls >> token) {
      index_t idx = 0;
      real_t value = 0.0;
      parse_entry(token, idx, value, line_no);
      LS_CHECK(idx > prev_index, "libsvm line "
                                     << line_no
                                     << ": indices must be strictly increasing");
      prev_index = idx;
      max_col = std::max(max_col, idx);
      if (value != 0.0) {
        triplets.push_back({row, idx - 1, value});  // to 0-based
      }
    }
  }

  if (num_cols == 0) {
    num_cols = max_col;
  } else {
    LS_CHECK(max_col <= num_cols, "libsvm data has feature index "
                                      << max_col << " > forced column count "
                                      << num_cols);
  }

  Dataset ds;
  ds.name = name;
  ds.X = CooMatrix(static_cast<index_t>(labels.size()), num_cols,
                   std::move(triplets));
  ds.y = std::move(labels);
  return ds;
}

Dataset read_libsvm_file(const std::string& path, index_t num_cols) {
  std::ifstream in(path);
  LS_CHECK(in.good(), "cannot open libsvm file: " << path);
  return read_libsvm(in, path, num_cols);
}

void write_libsvm(std::ostream& out, const Dataset& ds) {
  ds.validate();
  // Full round-trip precision: doubles need 17 significant digits.
  out.precision(17);
  SparseVector row;
  for (index_t i = 0; i < ds.rows(); ++i) {
    out << ds.y[static_cast<std::size_t>(i)];
    ds.X.gather_row(i, row);
    const auto idx = row.indices();
    const auto val = row.values();
    for (index_t k = 0; k < row.nnz(); ++k) {
      out << ' ' << (idx[static_cast<std::size_t>(k)] + 1) << ':'
          << val[static_cast<std::size_t>(k)];
    }
    out << '\n';
  }
}

void write_libsvm_file(const std::string& path, const Dataset& ds) {
  std::ofstream out(path);
  LS_CHECK(out.good(), "cannot open libsvm output file: " << path);
  write_libsvm(out, ds);
}

}  // namespace ls
