// Reader/writer for the LIBSVM text format, the de-facto interchange format
// for all the datasets in the paper's Table V:
//
//   <label> <index>:<value> <index>:<value> ...
//
// Indices are 1-based and strictly increasing per line.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "data/dataset.hpp"

namespace ls {

/// Read behaviour knobs.
struct LibsvmReadOptions {
  index_t num_cols = 0;  ///< forced column count (0 = infer from max index)
  /// Strict mode (default) throws ls::Error on the first malformed line.
  /// Permissive mode skips bad lines — each is rolled back atomically, so
  /// a half-parsed row never leaks into the dataset — and reports them.
  bool permissive = false;
  std::size_t max_errors = 64;  ///< cap on collected error messages
};

/// What a permissive read observed.
struct LibsvmReadReport {
  std::vector<std::string> errors;  ///< first max_errors messages
  std::size_t lines_skipped = 0;    ///< all bad lines, beyond the cap too
  bool errors_truncated() const { return lines_skipped > errors.size(); }
};

/// Parses a dataset from a LIBSVM-format stream.
Dataset read_libsvm(std::istream& in, const std::string& name,
                    const LibsvmReadOptions& opts,
                    LibsvmReadReport* report = nullptr);

/// Strict-mode convenience overload.
/// `num_cols` forces the column count (0 = infer from max index seen).
Dataset read_libsvm(std::istream& in, const std::string& name,
                    index_t num_cols = 0);

/// Parses a dataset from a LIBSVM-format file.
Dataset read_libsvm_file(const std::string& path,
                         const LibsvmReadOptions& opts,
                         LibsvmReadReport* report = nullptr);
Dataset read_libsvm_file(const std::string& path, index_t num_cols = 0);

/// Writes a dataset in LIBSVM format.
void write_libsvm(std::ostream& out, const Dataset& ds);

/// Writes a dataset to a LIBSVM-format file.
void write_libsvm_file(const std::string& path, const Dataset& ds);

}  // namespace ls
