// Reader/writer for the LIBSVM text format, the de-facto interchange format
// for all the datasets in the paper's Table V:
//
//   <label> <index>:<value> <index>:<value> ...
//
// Indices are 1-based and strictly increasing per line.
#pragma once

#include <iosfwd>
#include <string>

#include "data/dataset.hpp"

namespace ls {

/// Parses a dataset from a LIBSVM-format stream.
/// `num_cols` forces the column count (0 = infer from max index seen).
Dataset read_libsvm(std::istream& in, const std::string& name,
                    index_t num_cols = 0);

/// Parses a dataset from a LIBSVM-format file.
Dataset read_libsvm_file(const std::string& path, index_t num_cols = 0);

/// Writes a dataset in LIBSVM format.
void write_libsvm(std::ostream& out, const Dataset& ds);

/// Writes a dataset to a LIBSVM-format file.
void write_libsvm_file(const std::string& path, const Dataset& ds);

}  // namespace ls
