#include "data/profiles.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "data/synthetic.hpp"
#include "formats/csr.hpp"

namespace ls {

namespace {

MatrixFeatures paper_stats(index_t m, index_t n, index_t nnz, index_t ndig,
                           double dnnz, index_t mdim, double adim, double vdim,
                           double density) {
  MatrixFeatures f;
  f.m = m;
  f.n = n;
  f.nnz = nnz;
  f.ndig = ndig;
  f.dnnz = dnnz;
  f.mdim = mdim;
  f.adim = adim;
  f.vdim = vdim;
  f.density = density;
  return f;
}

PaperReference ref(Format worst, Format selection, double avg, double max) {
  return PaperReference{worst, selection, avg, max};
}

std::vector<DatasetProfile> build_profiles() {
  std::vector<DatasetProfile> ps;

  auto add = [&](DatasetProfile p) { ps.push_back(std::move(p)); };

  // Table V rows, in paper order. gen_* sizes are the synthetic generation
  // scale: identical to the paper where feasible, scaled down (keeping the
  // aspect ratio and density) for the giants.
  {
    DatasetProfile p;
    p.name = "adult";
    p.application = "economy";
    p.paper = paper_stats(2265, 119, 31404, 2347, 13.38, 14, 13.87, 0.059,
                          0.119);
    p.kind = GenKind::kRandomSparse;
    p.gen_rows = 2265;
    p.gen_cols = 119;
    p.gen_nnz = 31404;
    p.reference = ref(Format::kDIA, Format::kELL, 3.8, 14.3);
    add(p);
  }
  {
    DatasetProfile p;
    p.name = "breast_cancer";
    p.application = "clinical";
    p.paper = paper_stats(38, 7129, 270902, 7166, 37.80, 7129, 7129, 0.0, 1.0);
    p.kind = GenKind::kDense;
    p.gen_rows = 38;
    p.gen_cols = 7129;
    p.gen_nnz = 38 * 7129;
    p.reference = ref(Format::kELL, Format::kCSR, 16.2, 35.7);
    add(p);
  }
  {
    DatasetProfile p;
    p.name = "aloi";
    p.application = "vision";
    p.paper = paper_stats(1000, 128, 32142, 1125, 28.57, 74, 32.14, 85.22,
                          0.251);
    p.kind = GenKind::kRandomSparse;
    p.gen_rows = 1000;
    p.gen_cols = 128;
    p.gen_nnz = 32142;
    p.reference = ref(Format::kCOO, Format::kCSR, 3.1, 6.6);
    add(p);
  }
  {
    DatasetProfile p;
    p.name = "gisette";
    p.application = "selection";
    p.paper = paper_stats(6000, 5000, 30000000, 10999, 2728, 5000, 5000, 0.0,
                          1.0);
    p.kind = GenKind::kDense;
    p.gen_rows = 1200;  // 1/5 scale in both dimensions; density preserved
    p.gen_cols = 1000;
    p.gen_nnz = 1200 * 1000;
    p.scaled = true;
    p.reference = ref(Format::kDIA, Format::kDEN, 2.4, 3.7);
    add(p);
  }
  {
    DatasetProfile p;
    p.name = "mnist";
    p.application = "recognition";
    p.paper = paper_stats(450, 772, 66825, 1050, 63.64, 291, 148.5, 1594,
                          0.192);
    p.kind = GenKind::kRandomSparse;
    p.gen_rows = 450;
    p.gen_cols = 772;
    p.gen_nnz = 66825;
    p.reference = ref(Format::kELL, Format::kCOO, 3.0, 5.1);
    add(p);
  }
  {
    DatasetProfile p;
    p.name = "sector";
    p.application = "industry";
    p.paper = paper_stats(1500, 55188, 238790, 33770, 7.07, 1819, 159.19,
                          17634, 0.003);
    p.kind = GenKind::kRandomSparse;
    p.gen_rows = 1500;
    p.gen_cols = 5519;  // 1/10 of the feature space; row profile preserved
    p.gen_nnz = 238790;
    p.scaled = true;
    p.reference = ref(Format::kDEN, Format::kCOO, 14.3, 39.6);
    add(p);
  }
  {
    DatasetProfile p;
    p.name = "epsilon";
    p.application = "AI";
    p.paper = paper_stats(390000, 2000, 780000000, 391999, 1990, 2000, 2000,
                          0.0, 1.0);
    p.kind = GenKind::kDense;
    p.gen_rows = 1950;  // 1/200 rows, 1/4 cols: keeps M >> N and density 1
    p.gen_cols = 500;
    p.gen_nnz = 1950 * 500;
    p.scaled = true;
    add(p);  // feature-extraction only (not in Table VI)
  }
  {
    DatasetProfile p;
    p.name = "leukemia";
    p.application = "biology";
    p.paper = paper_stats(38, 7129, 270902, 7166, 37.8, 7129, 7129, 0.0, 1.0);
    p.kind = GenKind::kDense;
    p.gen_rows = 38;
    p.gen_cols = 7129;
    p.gen_nnz = 38 * 7129;
    p.reference = ref(Format::kELL, Format::kDEN, 13.3, 29.0);
    add(p);
  }
  {
    DatasetProfile p;
    p.name = "connect-4";
    p.application = "game";
    p.paper = paper_stats(1800, 125, 75600, 1922, 39.33, 42, 42, 0.0, 0.336);
    p.kind = GenKind::kExactRows;
    p.gen_rows = 1800;
    p.gen_cols = 125;
    p.gen_nnz = 75600;  // exactly 42 per row
    p.reference = ref(Format::kCOO, Format::kDEN, 3.3, 6.4);
    add(p);
  }
  {
    DatasetProfile p;
    p.name = "trefethen";
    p.application = "numerical";
    p.paper = paper_stats(2000, 2000, 21953, 12, 1829, 12, 10.98, 1.25, 0.006);
    p.kind = GenKind::kBanded;
    p.gen_rows = 2000;
    p.gen_cols = 2000;
    p.gen_nnz = 21953;
    p.reference = ref(Format::kDEN, Format::kDIA, 1.7, 4.1);
    add(p);
  }
  {
    DatasetProfile p;
    p.name = "dna";
    p.application = "genomics";
    p.paper = paper_stats(3600000, 200, 720000000, 3600199, 200.0, 200, 200,
                          0.0, 1.0);
    p.kind = GenKind::kDense;
    p.gen_rows = 9000;  // 1/400 rows: keeps M >> N and density 1
    p.gen_cols = 200;
    p.gen_nnz = 9000 * 200;
    p.scaled = true;
    add(p);  // feature-extraction only (not in Table VI)
  }
  return ps;
}

CooMatrix generate_matrix(const DatasetProfile& p, Rng& rng) {
  switch (p.kind) {
    case GenKind::kDense:
      return make_dense_matrix(p.gen_rows, p.gen_cols, rng);
    case GenKind::kRandomSparse: {
      // Cap row lengths at the paper's mdim (but never above N).
      const index_t cap = std::min<index_t>(p.paper.mdim, p.gen_cols);
      auto lens =
          make_row_lengths(p.gen_rows, p.gen_nnz, p.paper.vdim, cap, rng);
      return make_random_sparse(p.gen_rows, p.gen_cols, lens, rng);
    }
    case GenKind::kExactRows: {
      const index_t per_row = p.gen_nnz / p.gen_rows;
      std::vector<index_t> lens(static_cast<std::size_t>(p.gen_rows), per_row);
      return make_random_sparse(p.gen_rows, p.gen_cols, lens, rng);
    }
    case GenKind::kBanded: {
      // ndig offsets in a power-of-two pattern (trefethen-style), fill
      // chosen so the expected nnz matches the target.
      std::vector<index_t> offsets = {0, 1, -1, 2, -2, 4, -4, 8, -8, 16, -16,
                                      32};
      offsets.resize(static_cast<std::size_t>(
          std::min<index_t>(p.paper.ndig, static_cast<index_t>(offsets.size()))));
      index_t span = 0;
      for (index_t off : offsets) {
        span += std::min(p.gen_rows, p.gen_cols - off) -
                std::max<index_t>(0, -off);
      }
      const double fill =
          std::min(1.0, static_cast<double>(p.gen_nnz) /
                            static_cast<double>(span));
      return make_banded(p.gen_rows, p.gen_cols, offsets, fill, rng);
    }
  }
  throw Error("unknown GenKind");
}

}  // namespace

Dataset DatasetProfile::generate(std::uint64_t seed) const {
  // Mix the profile name into the seed so distinct datasets are independent.
  std::uint64_t h = seed;
  for (char c : name) h = h * 1099511628211ull + static_cast<unsigned char>(c);
  Rng rng(h);

  Dataset ds;
  ds.name = name;
  ds.X = generate_matrix(*this, rng);
  ds.y = plant_labels(ds.X, 0.1, h ^ 0xD1B54A32D192ED03ull);
  ds.validate();
  return ds;
}

const std::vector<DatasetProfile>& all_profiles() {
  static const std::vector<DatasetProfile> profiles = build_profiles();
  return profiles;
}

std::vector<DatasetProfile> evaluated_profiles() {
  std::vector<DatasetProfile> out;
  for (const auto& p : all_profiles()) {
    if (p.reference.selection.has_value()) out.push_back(p);
  }
  return out;
}

const DatasetProfile& profile_by_name(const std::string& name) {
  for (const auto& p : all_profiles()) {
    if (p.name == name) return p;
  }
  std::string known;
  for (const auto& p : all_profiles()) {
    known += p.name + " ";
  }
  throw Error("unknown dataset profile '" + name + "' (known: " + known + ")");
}

std::vector<real_t> plant_labels(const CooMatrix& x, double noise,
                                 std::uint64_t seed) {
  Rng rng(seed);
  // Ground-truth weight vector.
  std::vector<real_t> w(static_cast<std::size_t>(x.cols()));
  for (auto& wi : w) wi = rng.normal();

  // Margins via one CSR pass (cheap, reused for the median threshold).
  const CsrMatrix csr(x);
  std::vector<real_t> margin(static_cast<std::size_t>(x.rows()));
  for (index_t i = 0; i < x.rows(); ++i) {
    margin[static_cast<std::size_t>(i)] = csr.row_dot_dense(i, w);
  }

  // Threshold at the median so classes are balanced even for skewed data.
  std::vector<real_t> sorted = margin;
  std::nth_element(sorted.begin(), sorted.begin() + sorted.size() / 2,
                   sorted.end());
  const real_t threshold = sorted[sorted.size() / 2];

  std::vector<real_t> y(margin.size());
  for (std::size_t i = 0; i < y.size(); ++i) {
    real_t label = margin[i] > threshold ? 1.0 : -1.0;
    if (rng.bernoulli(noise)) label = -label;
    y[i] = label;
  }
  // Guarantee both classes (degenerate tiny datasets).
  bool has_pos = false, has_neg = false;
  for (real_t v : y) {
    has_pos |= v > 0;
    has_neg |= v < 0;
  }
  if (!has_pos) y[0] = 1.0;
  if (!has_neg) y[y.size() - 1] = -1.0;
  return y;
}

}  // namespace ls
