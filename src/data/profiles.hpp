// The eleven real-world datasets of the paper's Table V, reproduced as
// synthetic stand-ins.
//
// We do not ship the original data (licensing, size: epsilon alone is 780M
// nonzeros). Instead each profile records the paper's published statistics
// and generates a synthetic matrix matching them — the paper's own thesis is
// that these statistics *determine* format performance, so matching them
// preserves the experimental shape. Large datasets are scaled down
// (gisette, epsilon, dna, sector); the scaled dimensions keep the original
// aspect and density so the format ranking is unchanged.
//
// Labels are produced by a planted linear separator with 10% label noise, so
// the SVM training problem is realistic (support vectors exist, data is not
// perfectly separable).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "data/dataset.hpp"
#include "data/features.hpp"
#include "formats/format.hpp"

namespace ls {

/// Paper-reported per-dataset results used as reference points by benches.
struct PaperReference {
  /// Table VI: the worst format for this dataset.
  std::optional<Format> worst;
  /// Table VI: the format the paper's adaptive system selected.
  std::optional<Format> selection;
  /// Table VI: average speedup of the selection over the other four formats.
  double avg_speedup = 0.0;
  /// Table VI: speedup of the selection over the worst format.
  double max_speedup = 0.0;
};

/// How a profile's synthetic matrix is constructed.
enum class GenKind {
  kDense,        ///< fully dense (breast_cancer, gisette, epsilon, ...)
  kRandomSparse, ///< row lengths ~ N(adim, sqrt(vdim)) capped at mdim
  kExactRows,    ///< every row has exactly adim nonzeros (connect-4)
  kBanded,       ///< nonzeros confined to ndig diagonals (trefethen)
};

/// One Table V dataset profile.
struct DatasetProfile {
  std::string name;
  std::string application;  ///< Table V "Application" column
  MatrixFeatures paper;     ///< statistics as published in Table V

  GenKind kind = GenKind::kRandomSparse;
  index_t gen_rows = 0;     ///< synthetic generation size (scaled)
  index_t gen_cols = 0;
  index_t gen_nnz = 0;      ///< target nonzeros at generation size
  bool scaled = false;      ///< true when gen size != paper size

  PaperReference reference;

  /// Generates the synthetic stand-in dataset (deterministic per seed).
  Dataset generate(std::uint64_t seed = 7) const;
};

/// All eleven Table V profiles, in paper order.
const std::vector<DatasetProfile>& all_profiles();

/// The nine datasets evaluated in Table VI / Fig. 7 (excludes the two
/// feature-extraction-only giants epsilon and dna).
std::vector<DatasetProfile> evaluated_profiles();

/// Looks a profile up by name; throws ls::Error for unknown names.
const DatasetProfile& profile_by_name(const std::string& name);

/// Attaches planted-separator labels to a feature matrix: y = sign(X w* + b)
/// with `noise` fraction of labels flipped. Guarantees both classes occur.
std::vector<real_t> plant_labels(const CooMatrix& x, double noise,
                                 std::uint64_t seed);

}  // namespace ls
