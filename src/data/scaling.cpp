#include "data/scaling.hpp"

#include <limits>

#include "common/error.hpp"

namespace ls {

real_t ScalingParams::scale_value(index_t j, real_t v) const {
  const auto ju = static_cast<std::size_t>(j);
  if (ju >= col_min.size()) return v;  // unseen column: leave unscaled
  const real_t mn = col_min[ju];
  const real_t mx = col_max[ju];
  if (!(mx > mn)) return v == 0.0 ? 0.0 : lo;  // constant column
  return lo + (hi - lo) * (v - mn) / (mx - mn);
}

ScalingParams fit_scaling(const Dataset& ds, real_t lo, real_t hi) {
  ds.validate();
  LS_CHECK(hi > lo, "scaling range must be non-empty");
  ScalingParams params;
  params.lo = lo;
  params.hi = hi;
  params.col_min.assign(static_cast<std::size_t>(ds.cols()),
                        std::numeric_limits<real_t>::infinity());
  params.col_max.assign(static_cast<std::size_t>(ds.cols()),
                        -std::numeric_limits<real_t>::infinity());
  const auto cols = ds.X.col_indices();
  const auto vals = ds.X.values();
  for (std::size_t k = 0; k < vals.size(); ++k) {
    const auto j = static_cast<std::size_t>(cols[k]);
    params.col_min[j] = std::min(params.col_min[j], vals[k]);
    params.col_max[j] = std::max(params.col_max[j], vals[k]);
  }
  // Columns with no explicit entries scale as identity.
  for (std::size_t j = 0; j < params.col_min.size(); ++j) {
    if (params.col_min[j] > params.col_max[j]) {
      params.col_min[j] = 0.0;
      params.col_max[j] = 0.0;
    }
  }
  return params;
}

Dataset apply_scaling(const Dataset& ds, const ScalingParams& params) {
  ds.validate();
  std::vector<Triplet> triplets;
  triplets.reserve(static_cast<std::size_t>(ds.X.nnz()));
  const auto rows = ds.X.row_indices();
  const auto cols = ds.X.col_indices();
  const auto vals = ds.X.values();
  for (std::size_t k = 0; k < vals.size(); ++k) {
    triplets.push_back(
        {rows[k], cols[k], params.scale_value(cols[k], vals[k])});
  }
  Dataset out;
  out.name = ds.name + ".scaled";
  out.X = CooMatrix(ds.rows(), ds.cols(), std::move(triplets));
  out.y = ds.y;
  return out;
}

}  // namespace ls
