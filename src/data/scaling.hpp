// Feature scaling — the svm-scale step of the standard LIBSVM workflow.
//
// Kernel values (and hence SMO conditioning) are sensitive to feature
// ranges; per-column linear scaling to [lo, hi] is the conventional fix.
// The parameters are fitted on the training split and *applied* to the
// test split (fitting on test data would leak), which is why fit and
// apply are separate calls.
//
// Note for the layout scheduler: scaling never changes the sparsity
// pattern when lo = 0 (a zero entry stays an implicit zero), so the nine
// influencing parameters — and therefore the format decision — are
// unaffected. With lo != 0 explicit entries keep their positions; implicit
// zeros remain implicit either way (matching svm-scale's behaviour).
#pragma once

#include <vector>

#include "common/types.hpp"
#include "data/dataset.hpp"

namespace ls {

/// Fitted per-column scaling parameters.
struct ScalingParams {
  real_t lo = 0.0;
  real_t hi = 1.0;
  std::vector<real_t> col_min;  ///< per-column minimum of explicit entries
  std::vector<real_t> col_max;  ///< per-column maximum of explicit entries

  /// Scaled value of `v` in column `j` (columns never seen keep v).
  real_t scale_value(index_t j, real_t v) const;
};

/// Fits scaling parameters on `ds` for the target range [lo, hi].
ScalingParams fit_scaling(const Dataset& ds, real_t lo = 0.0, real_t hi = 1.0);

/// Returns a copy of `ds` with every explicit entry scaled.
Dataset apply_scaling(const Dataset& ds, const ScalingParams& params);

}  // namespace ls
