#include "data/synthetic.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <unordered_set>

#include "common/error.hpp"

namespace ls {

namespace {

real_t random_value(Rng& rng) { return rng.uniform(0.1, 1.0); }

}  // namespace

std::vector<index_t> sample_columns(index_t n, index_t k, Rng& rng) {
  LS_CHECK(k >= 0 && k <= n, "cannot sample " << k << " columns from " << n);
  std::vector<index_t> out;
  out.reserve(static_cast<std::size_t>(k));

  if (k > n / 2) {
    // Dense regime: permute all indices and take a prefix.
    std::vector<index_t> all(static_cast<std::size_t>(n));
    std::iota(all.begin(), all.end(), index_t{0});
    shuffle(all.begin(), all.end(), rng);
    out.assign(all.begin(), all.begin() + static_cast<std::ptrdiff_t>(k));
  } else {
    // Sparse regime: Floyd's algorithm (k hash insertions, no O(n) scan).
    std::unordered_set<index_t> chosen;
    chosen.reserve(static_cast<std::size_t>(k) * 2);
    for (index_t j = n - k; j < n; ++j) {
      const index_t t = rng.uniform_int(0, j);
      if (!chosen.insert(t).second) chosen.insert(j);
    }
    out.assign(chosen.begin(), chosen.end());
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<index_t> make_row_lengths(index_t m, index_t nnz, double vdim,
                                      index_t cap, Rng& rng) {
  LS_CHECK(m > 0, "make_row_lengths: no rows");
  LS_CHECK(cap >= 1, "make_row_lengths: cap must be >= 1");
  LS_CHECK(nnz <= m * cap, "make_row_lengths: nnz " << nnz
                                                    << " exceeds m * cap");
  const double adim = static_cast<double>(nnz) / static_cast<double>(m);
  const double sd = std::sqrt(std::max(0.0, vdim));

  std::vector<index_t> len(static_cast<std::size_t>(m));
  for (auto& l : len) {
    const double draw = rng.normal(adim, sd);
    l = static_cast<index_t>(std::llround(draw));
    l = std::clamp<index_t>(l, std::min<index_t>(1, cap), cap);
  }

  // Repair pass: nudge random rows until the total hits nnz exactly.
  index_t total = std::accumulate(len.begin(), len.end(), index_t{0});
  while (total != nnz) {
    const auto i = static_cast<std::size_t>(rng.uniform_int(0, m - 1));
    if (total < nnz && len[i] < cap) {
      ++len[i];
      ++total;
    } else if (total > nnz && len[i] > 1) {
      --len[i];
      --total;
    }
  }
  return len;
}

CooMatrix make_random_sparse(index_t m, index_t n,
                             const std::vector<index_t>& row_lengths,
                             Rng& rng) {
  LS_CHECK(static_cast<index_t>(row_lengths.size()) == m,
           "row_lengths size != m");
  std::vector<Triplet> triplets;
  index_t total = std::accumulate(row_lengths.begin(), row_lengths.end(),
                                  index_t{0});
  triplets.reserve(static_cast<std::size_t>(total));
  for (index_t i = 0; i < m; ++i) {
    const index_t k = row_lengths[static_cast<std::size_t>(i)];
    for (index_t col : sample_columns(n, k, rng)) {
      triplets.push_back({i, col, random_value(rng)});
    }
  }
  return CooMatrix(m, n, std::move(triplets));
}

CooMatrix make_dense_matrix(index_t m, index_t n, Rng& rng) {
  std::vector<Triplet> triplets;
  triplets.reserve(static_cast<std::size_t>(m) * static_cast<std::size_t>(n));
  for (index_t i = 0; i < m; ++i) {
    for (index_t j = 0; j < n; ++j) {
      triplets.push_back({i, j, random_value(rng)});
    }
  }
  return CooMatrix(m, n, std::move(triplets));
}

CooMatrix make_banded(index_t m, index_t n,
                      const std::vector<index_t>& offsets, double fill,
                      Rng& rng) {
  LS_CHECK(fill > 0.0 && fill <= 1.0, "fill fraction must be in (0, 1]");
  std::vector<Triplet> triplets;
  for (index_t off : offsets) {
    const index_t lo = std::max<index_t>(0, -off);
    const index_t hi = std::min(m, n - off);
    for (index_t i = lo; i < hi; ++i) {
      if (fill >= 1.0 || rng.bernoulli(fill)) {
        triplets.push_back({i, i + off, random_value(rng)});
      }
    }
  }
  return CooMatrix(m, n, std::move(triplets));
}

CooMatrix make_diag_spread(index_t m, index_t n, index_t nnz, index_t ndig,
                           Rng& rng) {
  LS_CHECK(ndig >= 1, "need at least one diagonal");
  LS_CHECK(ndig <= std::min(m, n), "too many diagonals for a guaranteed "
                                   "full-length stripe placement");
  // Use offsets 0..ndig-1 (all full-length when n >= m): every diagonal gets
  // nnz / ndig nonzeros at distinct random positions, matching the paper's
  // "same M, N, nnz but different number of diagonals" construction.
  const index_t per_diag = std::max<index_t>(1, nnz / ndig);
  std::vector<Triplet> triplets;
  triplets.reserve(static_cast<std::size_t>(per_diag * ndig));
  for (index_t d = 0; d < ndig; ++d) {
    const index_t lo = 0;
    const index_t hi = std::min(m, n - d);
    const index_t len = hi - lo;
    const index_t count = std::min(per_diag, len);
    // Guarantee occupancy of the diagonal even when nnz < ndig.
    for (index_t p : sample_columns(len, count, rng)) {
      triplets.push_back({lo + p, lo + p + d, random_value(rng)});
    }
  }
  return CooMatrix(m, n, std::move(triplets));
}

CooMatrix make_mdim_spread(index_t m, index_t n, index_t nnz, index_t mdim,
                           Rng& rng) {
  LS_CHECK(mdim >= 1 && mdim <= n, "mdim must be in [1, n]");
  LS_CHECK(nnz >= mdim, "need nnz >= mdim to realise the target mdim");
  std::vector<index_t> len(static_cast<std::size_t>(m), 0);
  const index_t full_rows = std::min<index_t>(m, nnz / mdim);
  index_t remaining = nnz - full_rows * mdim;
  for (index_t i = 0; i < full_rows; ++i) {
    len[static_cast<std::size_t>(i)] = mdim;
  }
  // Spread the remainder one nonzero per row over the tail rows.
  for (index_t i = full_rows; i < m && remaining > 0; ++i, --remaining) {
    len[static_cast<std::size_t>(i)] = 1;
  }
  return make_random_sparse(m, n, len, rng);
}

CooMatrix make_vdim_spread(index_t m, index_t n, index_t nnz,
                           index_t heavy_rows, double heavy_share, Rng& rng) {
  LS_CHECK(heavy_rows >= 0 && heavy_rows < m, "heavy_rows out of range");
  LS_CHECK(heavy_share >= 0.0 && heavy_share <= 1.0,
           "heavy_share must be in [0, 1]");
  std::vector<index_t> len(static_cast<std::size_t>(m), 0);
  index_t heavy_total =
      heavy_rows > 0
          ? static_cast<index_t>(heavy_share * static_cast<double>(nnz))
          : 0;
  // Cap heavy rows at full width.
  if (heavy_rows > 0) {
    heavy_total = std::min(heavy_total, heavy_rows * n);
    for (index_t i = 0; i < heavy_rows; ++i) {
      len[static_cast<std::size_t>(i)] = heavy_total / heavy_rows;
    }
  }
  const index_t light_rows = m - heavy_rows;
  const index_t light_total = nnz - heavy_total;
  for (index_t i = heavy_rows; i < m; ++i) {
    len[static_cast<std::size_t>(i)] = light_total / light_rows;
  }
  // Distribute rounding leftovers to light rows.
  index_t assigned = std::accumulate(len.begin(), len.end(), index_t{0});
  for (index_t i = heavy_rows; i < m && assigned < nnz; ++i) {
    if (len[static_cast<std::size_t>(i)] < n) {
      ++len[static_cast<std::size_t>(i)];
      ++assigned;
    }
  }
  return make_random_sparse(m, n, len, rng);
}

}  // namespace ls
