// Synthetic sparse-matrix generators.
//
// Two uses in the reproduction:
//  1. The parameter-sweep figures (Fig. 2: ndig sweep, Fig. 3: mdim sweep,
//     Fig. 4: vdim sweep) generate matrices with one influencing parameter
//     varied and the rest held fixed, exactly as the paper describes.
//  2. The Table V dataset profiles (src/data/profiles.*) synthesise stand-ins
//     for the real datasets by matching their published statistics.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "formats/coo.hpp"

namespace ls {

/// Samples `k` distinct column indices from [0, n), sorted ascending.
std::vector<index_t> sample_columns(index_t n, index_t k, Rng& rng);

/// Generates per-row nonzero counts with mean ~adim and population variance
/// ~vdim, each clipped to [min(1, cap), cap]; the total is then adjusted to
/// exactly `nnz` by incrementing/decrementing random rows within bounds.
std::vector<index_t> make_row_lengths(index_t m, index_t nnz, double vdim,
                                      index_t cap, Rng& rng);

/// Builds an m x n matrix from explicit per-row nonzero counts; columns are
/// sampled uniformly without replacement per row, values ~ U[0.1, 1].
CooMatrix make_random_sparse(index_t m, index_t n,
                             const std::vector<index_t>& row_lengths,
                             Rng& rng);

/// Fully dense m x n matrix with values ~ U[0.1, 1].
CooMatrix make_dense_matrix(index_t m, index_t n, Rng& rng);

/// Banded matrix: nonzeros only on the given diagonal offsets, each slot
/// occupied with probability `fill`, values ~ U[0.1, 1].
CooMatrix make_banded(index_t m, index_t n, const std::vector<index_t>& offsets,
                      double fill, Rng& rng);

/// Fig. 2 workload: m x n, ~nnz nonzeros spread evenly over exactly `ndig`
/// distinct diagonals (so dnnz = nnz / ndig).
CooMatrix make_diag_spread(index_t m, index_t n, index_t nnz, index_t ndig,
                           Rng& rng);

/// Fig. 3 workload: m x n with ~nnz nonzeros and max row length exactly
/// `mdim`: floor(nnz / mdim) rows carry mdim nonzeros each, the remainder is
/// spread one-per-row over the remaining rows (so vdim grows with mdim, as
/// the paper's mat2 / mat4096 discussion describes).
CooMatrix make_mdim_spread(index_t m, index_t n, index_t nnz, index_t mdim,
                           Rng& rng);

/// Fig. 4 workload: m x n with exactly-ish nnz nonzeros where `heavy_rows`
/// rows hold `heavy_share` of the nonzeros and the rest are spread evenly;
/// sweeping heavy_share raises vdim while M, N, nnz stay fixed.
CooMatrix make_vdim_spread(index_t m, index_t n, index_t nnz,
                           index_t heavy_rows, double heavy_share, Rng& rng);

}  // namespace ls
