#include "dnn/cifar.hpp"

#include <cmath>

#include "common/error.hpp"

namespace ls {

void ImageDataset::batch(index_t begin, index_t count, Tensor& out,
                         std::vector<index_t>& out_labels) const {
  LS_CHECK(begin >= 0 && begin + count <= size(), "batch range out of bounds");
  if (out.n() != count || out.c() != images.c() || out.h() != images.h() ||
      out.w() != images.w()) {
    out = Tensor(count, images.c(), images.h(), images.w());
  }
  const index_t per_sample = images.sample_size();
  std::copy(images.data() + begin * per_sample,
            images.data() + (begin + count) * per_sample, out.data());
  out_labels.assign(labels.begin() + begin, labels.begin() + begin + count);
}

namespace {

/// Smooth per-class template: a sum of a few random low-frequency waves per
/// channel, so classes differ in global structure (like object categories)
/// rather than single pixels.
Tensor make_templates(const CifarConfig& cfg, Rng& rng) {
  Tensor tpl(cfg.classes, cfg.channels, cfg.dim, cfg.dim);
  for (index_t k = 0; k < cfg.classes; ++k) {
    for (index_t c = 0; c < cfg.channels; ++c) {
      // Three random plane waves per channel.
      for (int wave = 0; wave < 3; ++wave) {
        const double fx = rng.uniform(0.5, 2.5);
        const double fy = rng.uniform(0.5, 2.5);
        const double phase = rng.uniform(0.0, 6.28318);
        const double amp = rng.uniform(0.4, 1.0);
        for (index_t y = 0; y < cfg.dim; ++y) {
          for (index_t x = 0; x < cfg.dim; ++x) {
            const double u = static_cast<double>(x) / cfg.dim;
            const double v = static_cast<double>(y) / cfg.dim;
            tpl.at(k, c, y, x) +=
                amp * std::sin(6.28318 * (fx * u + fy * v) + phase);
          }
        }
      }
    }
  }
  return tpl;
}

ImageDataset sample_split(const CifarConfig& cfg, const Tensor& tpl,
                          index_t count, Rng& rng) {
  ImageDataset ds;
  ds.classes = cfg.classes;
  ds.images = Tensor(count, cfg.channels, cfg.dim, cfg.dim);
  ds.labels.resize(static_cast<std::size_t>(count));
  for (index_t i = 0; i < count; ++i) {
    const index_t k = rng.uniform_int(0, cfg.classes - 1);
    ds.labels[static_cast<std::size_t>(i)] = k;
    const real_t brightness = rng.normal(0.0, 0.2);
    for (index_t c = 0; c < cfg.channels; ++c) {
      for (index_t y = 0; y < cfg.dim; ++y) {
        for (index_t x = 0; x < cfg.dim; ++x) {
          ds.images.at(i, c, y, x) = tpl.at(k, c, y, x) + brightness +
                                     rng.normal(0.0, cfg.noise);
        }
      }
    }
  }
  return ds;
}

}  // namespace

CifarData make_synthetic_cifar(const CifarConfig& cfg) {
  LS_CHECK(cfg.classes >= 2, "need at least two classes");
  LS_CHECK(cfg.dim >= 8, "image dimension too small for cifar10_full pooling");
  Rng rng(cfg.seed);
  const Tensor tpl = make_templates(cfg, rng);
  CifarData data;
  data.train = sample_split(cfg, tpl, cfg.train_size, rng);
  data.test = sample_split(cfg, tpl, cfg.test_size, rng);
  return data;
}

}  // namespace ls
