// Synthetic CIFAR-10 stand-in.
//
// The real CIFAR-10 (60,000 32x32x3 images, 162 MB) cannot be bundled; this
// generator produces a class-conditioned image distribution with the same
// tensor shapes and split sizes: each class k has a smooth random template
// image, and samples are template + per-pixel Gaussian noise + a random
// global brightness shift. The classification problem is learnable but not
// trivial (noise keeps classes overlapping), so real training runs exercise
// the full conv-net code path. See DESIGN.md section 3 for the substitution
// rationale.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "dnn/tensor.hpp"

namespace ls {

/// An image-classification dataset in NCHW layout.
struct ImageDataset {
  Tensor images;                 ///< [n, c, h, w]
  std::vector<index_t> labels;   ///< n entries in [0, classes)
  index_t classes = 0;

  index_t size() const { return images.n(); }

  /// Copies samples [begin, begin+count) into a batch tensor + label list.
  void batch(index_t begin, index_t count, Tensor& out,
             std::vector<index_t>& out_labels) const;
};

/// Generation knobs.
struct CifarConfig {
  index_t classes = 10;
  index_t channels = 3;
  index_t dim = 32;        ///< height = width
  index_t train_size = 50000;
  index_t test_size = 10000;
  real_t noise = 0.6;      ///< per-pixel noise stddev (template scale is 1)
  std::uint64_t seed = 2017;
};

/// Train and test splits drawn from the same class templates.
struct CifarData {
  ImageDataset train;
  ImageDataset test;
};

/// Generates the synthetic CIFAR-10 stand-in.
CifarData make_synthetic_cifar(const CifarConfig& config);

}  // namespace ls
