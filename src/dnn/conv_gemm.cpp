#include "dnn/conv_gemm.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/parallel.hpp"

namespace ls {

Conv2dGemm::Conv2dGemm(index_t in_channels, index_t out_channels,
                       index_t kernel, index_t pad, Rng& rng)
    : in_c_(in_channels), out_c_(out_channels), k_(kernel), pad_(pad) {
  LS_CHECK(in_c_ > 0 && out_c_ > 0 && k_ > 0 && pad_ >= 0,
           "bad conv configuration");
  const std::size_t wsize =
      static_cast<std::size_t>(out_c_) * static_cast<std::size_t>(patch_size());
  weight_.value.resize(wsize);
  weight_.grad.assign(wsize, 0.0);
  const double stddev = std::sqrt(2.0 / static_cast<double>(patch_size()));
  for (auto& w : weight_.value) w = rng.normal(0.0, stddev);
  bias_.value.assign(static_cast<std::size_t>(out_c_), 0.0);
  bias_.grad.assign(static_cast<std::size_t>(out_c_), 0.0);
}

Tensor Conv2dGemm::make_output(const Tensor& in) const {
  LS_CHECK(in.c() == in_c_, "conv input channel mismatch");
  const index_t oh = in.h() + 2 * pad_ - k_ + 1;
  const index_t ow = in.w() + 2 * pad_ - k_ + 1;
  LS_CHECK(oh > 0 && ow > 0, "conv output collapses to zero size");
  return Tensor(in.n(), out_c_, oh, ow);
}

void Conv2dGemm::im2col(const Tensor& in, index_t n, index_t oh,
                        index_t ow) {
  const index_t cols = oh * ow;
  col_.assign(static_cast<std::size_t>(patch_size() * cols), 0.0);
  // Row p of the column matrix = (channel ic, kernel offset kh, kw).
  index_t p = 0;
  for (index_t ic = 0; ic < in_c_; ++ic) {
    for (index_t kh = 0; kh < k_; ++kh) {
      for (index_t kw = 0; kw < k_; ++kw, ++p) {
        real_t* dst = col_.data() + p * cols;
        for (index_t y = 0; y < oh; ++y) {
          const index_t iy = y + kh - pad_;
          if (iy < 0 || iy >= in.h()) continue;  // padded rows stay zero
          for (index_t x = 0; x < ow; ++x) {
            const index_t ix = x + kw - pad_;
            if (ix < 0 || ix >= in.w()) continue;
            dst[y * ow + x] = in.at(n, ic, iy, ix);
          }
        }
      }
    }
  }
}

void Conv2dGemm::col2im(Tensor& grad_in, index_t n, index_t oh,
                        index_t ow) const {
  const index_t cols = oh * ow;
  index_t p = 0;
  for (index_t ic = 0; ic < in_c_; ++ic) {
    for (index_t kh = 0; kh < k_; ++kh) {
      for (index_t kw = 0; kw < k_; ++kw, ++p) {
        const real_t* src = col_.data() + p * cols;
        for (index_t y = 0; y < oh; ++y) {
          const index_t iy = y + kh - pad_;
          if (iy < 0 || iy >= grad_in.h()) continue;
          for (index_t x = 0; x < ow; ++x) {
            const index_t ix = x + kw - pad_;
            if (ix < 0 || ix >= grad_in.w()) continue;
            grad_in.at(n, ic, iy, ix) += src[y * ow + x];
          }
        }
      }
    }
  }
}

void Conv2dGemm::forward(const Tensor& in, Tensor& out) {
  const index_t oh = out.h(), ow = out.w();
  const index_t cols = oh * ow;
  const index_t ps = patch_size();
  for (index_t n = 0; n < in.n(); ++n) {
    im2col(in, n, oh, ow);
    // GEMM: out[n] (out_c x cols) = W (out_c x ps) * col (ps x cols).
    parallel_for(out_c_, [&](index_t oc) {
      real_t* dst = out.data() +
                    ((n * out_c_ + oc) * oh) * ow;
      const real_t b = bias_.value[static_cast<std::size_t>(oc)];
      for (index_t j = 0; j < cols; ++j) dst[j] = b;
      const real_t* wrow = weight_.value.data() + oc * ps;
      for (index_t p = 0; p < ps; ++p) {
        const real_t w = wrow[p];
        if (w == 0.0) continue;
        const real_t* src = col_.data() + p * cols;
        for (index_t j = 0; j < cols; ++j) {
          dst[j] += w * src[j];
        }
      }
    });
  }
}

void Conv2dGemm::backward(const Tensor& in, const Tensor& grad_out,
                          Tensor& grad_in) {
  grad_in.fill(0.0);
  const index_t oh = grad_out.h(), ow = grad_out.w();
  const index_t cols = oh * ow;
  const index_t ps = patch_size();
  std::vector<real_t> col_grad(static_cast<std::size_t>(ps * cols));

  for (index_t n = 0; n < in.n(); ++n) {
    im2col(in, n, oh, ow);
    const real_t* g = grad_out.data() + (n * out_c_ * oh) * ow;

    // dW += G (out_c x cols) * col' (cols x ps);  db += row sums of G.
    for (index_t oc = 0; oc < out_c_; ++oc) {
      const real_t* grow = g + oc * cols;
      real_t* wgrad = weight_.grad.data() + oc * ps;
      real_t bias_acc = 0.0;
      for (index_t j = 0; j < cols; ++j) bias_acc += grow[j];
      bias_.grad[static_cast<std::size_t>(oc)] += bias_acc;
      for (index_t p = 0; p < ps; ++p) {
        const real_t* src = col_.data() + p * cols;
        real_t acc = 0.0;
        for (index_t j = 0; j < cols; ++j) acc += grow[j] * src[j];
        wgrad[p] += acc;
      }
    }

    // dcol = W' (ps x out_c) * G (out_c x cols), then col2im scatter.
    std::fill(col_grad.begin(), col_grad.end(), 0.0);
    for (index_t oc = 0; oc < out_c_; ++oc) {
      const real_t* grow = g + oc * cols;
      const real_t* wrow = weight_.value.data() + oc * ps;
      for (index_t p = 0; p < ps; ++p) {
        const real_t w = wrow[p];
        if (w == 0.0) continue;
        real_t* dst = col_grad.data() + p * cols;
        for (index_t j = 0; j < cols; ++j) {
          dst[j] += w * grow[j];
        }
      }
    }
    col_.swap(col_grad);
    col2im(grad_in, n, oh, ow);
    col_.swap(col_grad);
  }
}

double Conv2dGemm::flops_per_sample(const Tensor& in) const {
  const index_t oh = in.h() + 2 * pad_ - k_ + 1;
  const index_t ow = in.w() + 2 * pad_ - k_ + 1;
  return static_cast<double>(out_c_ * oh * ow) *
         static_cast<double>(patch_size());
}

}  // namespace ls
