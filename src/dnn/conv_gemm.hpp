// im2col + GEMM convolution — the kernel structure the paper's Section
// IV-C reasons about: "the computational kernels of deep learning are
// mainly matrix-matrix multiply ... a larger matrix often can improve the
// processors' throughput". Caffe lowers every convolution to exactly this
// form.
//
// Conv2dGemm computes the same function as Conv2d (asserted by tests) but
// restructures the work: the input patch tensor is unrolled into a
// (in_c * k * k) x (out_h * out_w) column matrix once per sample, then one
// GEMM of the (out_c) x (in_c * k * k) weight matrix against it produces
// all output channels. Larger batches amortise the unroll and keep the
// GEMM inner loops hot — bench/ablation_conv_gemm measures the throughput
// curve that motivates batch-size tuning.
#pragma once

#include "dnn/layers.hpp"

namespace ls {

/// GEMM-lowered 2-D convolution, stride 1, symmetric zero padding.
/// Drop-in replacement for Conv2d (same parameters, same outputs).
class Conv2dGemm : public Layer {
 public:
  Conv2dGemm(index_t in_channels, index_t out_channels, index_t kernel,
             index_t pad, Rng& rng);

  std::string name() const override { return "conv_gemm"; }
  Tensor make_output(const Tensor& in) const override;
  void forward(const Tensor& in, Tensor& out) override;
  void backward(const Tensor& in, const Tensor& grad_out,
                Tensor& grad_in) override;
  std::vector<ParamBlob*> params() override { return {&weight_, &bias_}; }
  double flops_per_sample(const Tensor& in) const override;

 private:
  index_t patch_size() const { return in_c_ * k_ * k_; }

  /// Unrolls sample n of `in` into col_ (patch_size x out_h*out_w).
  void im2col(const Tensor& in, index_t n, index_t oh, index_t ow);

  /// Scatters col-shaped gradients back into grad_in for sample n.
  void col2im(Tensor& grad_in, index_t n, index_t oh, index_t ow) const;

  index_t in_c_, out_c_, k_, pad_;
  ParamBlob weight_;  // [out_c, in_c * k * k] row-major
  ParamBlob bias_;    // [out_c]
  std::vector<real_t> col_;  // im2col scratch, patch_size x (oh * ow)
};

}  // namespace ls
