#include "dnn/convergence.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace ls {

namespace {

// Base epoch-count control points at (eta = 0.001, mu = 0.90), as multiples
// of the B = 100 anchor (120 epochs). The 100 and 512 points are the
// paper's measured rows; the remaining points encode the standard picture:
// mild growth below B = 512, steep sharp-minima growth above.
struct ControlPoint {
  double batch;
  double factor;
};
constexpr ControlPoint kBaseCurve[] = {
    {64, 0.80}, {100, 1.00},  {128, 1.15},  {256, 1.85},  {512, 2.56},
    {1024, 4.8}, {2048, 9.0}, {4096, 17.0}, {8192, 32.0},
};

constexpr double kBaseEpochsAt100 = 120.0;  // Table VII row 1

// Anchored exponents (see header).
constexpr double kEtaExponent = 0.834;       // 307.2 -> 123 for eta x3
constexpr double kMomentumExponent = 0.778;  // 123 -> 72 for (1-mu) x0.5

// Stability bound 1: raw learning rate. eta_max(512, 0.90) = 0.003 — the
// paper's eta sweep at B = 512 found 0.003 best from {0.001..0.016}, i.e.
// 0.004 already overshoots. Scales as sqrt(B) (larger batches average away
// gradient noise) and loosens slightly with momentum (the momentum-SGD
// stability region widens with (1 + mu)).
double eta_bound(index_t batch, double mu) {
  return 0.003 * std::sqrt(static_cast<double>(batch) / 512.0) *
         (1.0 + 5.0 * std::max(0.0, mu - 0.90));
}

// Stability bound 2: effective learning rate eta / (1 - mu).
// eta_eff_max(512) = 0.06 — the paper's momentum sweep at (512, 0.003)
// found 0.95 best from {0.90..0.99}, i.e. 0.96 (eta_eff = 0.075) already
// oscillates. Scales as B^0.25.
double eta_eff_bound(index_t batch) {
  return 0.06 * std::pow(static_cast<double>(batch) / 512.0, 0.25);
}

double base_factor(index_t batch) {
  const double b = static_cast<double>(batch);
  const auto* first = std::begin(kBaseCurve);
  const auto* last = std::end(kBaseCurve);
  if (b <= first->batch) return first->factor;
  if (b >= (last - 1)->batch) {
    // Extrapolate the final log-log slope.
    const auto& p0 = *(last - 2);
    const auto& p1 = *(last - 1);
    const double slope = std::log(p1.factor / p0.factor) /
                         std::log(p1.batch / p0.batch);
    return p1.factor * std::pow(b / p1.batch, slope);
  }
  for (const auto* p = first; p + 1 != last; ++p) {
    if (b <= (p + 1)->batch) {
      const double t = std::log(b / p->batch) /
                       std::log((p + 1)->batch / p->batch);
      return p->factor * std::pow((p + 1)->factor / p->factor, t);
    }
  }
  return (last - 1)->factor;
}

}  // namespace

bool converges(const DnnConfig& cfg) {
  LS_CHECK(cfg.batch >= 1, "batch must be positive");
  LS_CHECK(cfg.eta > 0, "eta must be positive");
  LS_CHECK(cfg.mu >= 0 && cfg.mu < 1, "mu must be in [0, 1)");
  const double tol = 1e-9;  // boundary configs (the paper's optima) converge
  if (cfg.eta > eta_bound(cfg.batch, cfg.mu) + tol) return false;
  if (cfg.eta / (1.0 - cfg.mu) > eta_eff_bound(cfg.batch) + tol) return false;
  return true;
}

std::optional<double> epochs_to_target(const DnnConfig& cfg) {
  if (!converges(cfg)) return std::nullopt;
  const double epochs = kBaseEpochsAt100 * base_factor(cfg.batch) *
                        std::pow(cfg.eta / 0.001, -kEtaExponent) *
                        std::pow((1.0 - cfg.mu) / 0.1, kMomentumExponent);
  return epochs;
}

std::optional<index_t> iterations_to_target(const DnnConfig& cfg) {
  const auto epochs = epochs_to_target(cfg);
  if (!epochs) return std::nullopt;
  const double iters = *epochs * static_cast<double>(kCifarTrainSize) /
                       static_cast<double>(cfg.batch);
  return static_cast<index_t>(std::ceil(iters));
}

std::vector<index_t> batch_tuning_space() {
  return {64, 100, 128, 256, 512, 1024, 2048, 4096, 8192};
}

std::vector<double> lr_tuning_space() {
  std::vector<double> space;
  for (int i = 1; i <= 16; ++i) space.push_back(0.001 * i);
  return space;
}

std::vector<double> momentum_tuning_space() {
  std::vector<double> space;
  for (int i = 0; i <= 9; ++i) space.push_back(0.90 + 0.01 * i);
  return space;
}

}  // namespace ls
