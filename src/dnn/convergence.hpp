// Calibrated convergence model: epochs to reach 0.8 CIFAR-10 test accuracy
// as a function of (batch size B, learning rate eta, momentum mu).
//
// Training the real cifar10_full net to 0.8 on a CIFAR-scale dataset is a
// GPU-day workload the paper ran on a DGX station; this substrate instead
// fits a model through the paper's own published operating points
// (Table VII) and standard SGD phenomenology, and the real (small-scale)
// trainer in dnn/trainer.* validates the qualitative trends:
//
//  * base epoch curve over B: log-interpolated through control points
//    anchored at (B=100 -> 120 epochs) and (B=512 -> 307.2 epochs), rising
//    steeply past B=512 (Keskar et al.'s sharp-minima generalisation gap);
//  * learning-rate factor (eta / 0.001)^-0.834, anchored by the paper's
//    307.2 -> ~123 epochs when eta goes 0.001 -> 0.003 at B=512;
//  * momentum factor ((1 - mu) / 0.1)^0.778, anchored by ~123 -> ~72
//    epochs when mu goes 0.90 -> 0.95;
//  * a stability region: eta must not exceed a B- and mu-dependent bound
//    (otherwise SGD diverges and the target is never reached), calibrated
//    so the paper's tuning outcomes (eta* = 0.003, mu* = 0.95 at B = 512)
//    are the boundary optima the paper found.
//
// Every constant is documented next to its anchor; EXPERIMENTS.md records
// model-vs-paper for each Table VII row.
#pragma once

#include <optional>
#include <vector>

#include "common/types.hpp"

namespace ls {

/// One (B, eta, mu) hyper-parameter configuration.
struct DnnConfig {
  index_t batch = 100;
  double eta = 0.001;
  double mu = 0.90;
};

/// CIFAR-10 training-set size (iterations = epochs * n / B).
inline constexpr index_t kCifarTrainSize = 50000;

/// Whether SGD converges at all for this configuration (stability region).
bool converges(const DnnConfig& cfg);

/// Epochs to reach 0.8 test accuracy; nullopt when the config diverges.
std::optional<double> epochs_to_target(const DnnConfig& cfg);

/// Iterations to reach 0.8 test accuracy (epochs * n / B, rounded up);
/// nullopt when the config diverges.
std::optional<index_t> iterations_to_target(const DnnConfig& cfg);

/// The paper's tuning spaces (Sections IV-C/D/E).
std::vector<index_t> batch_tuning_space();    // {64, 100, 128, ..., 8192}
std::vector<double> lr_tuning_space();        // {0.001, 0.002, ..., 0.016}
std::vector<double> momentum_tuning_space();  // {0.90, 0.91, ..., 0.99}

}  // namespace ls
