#include "dnn/layers.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "common/parallel.hpp"

namespace ls {

// ---------------------------------------------------------------- Conv2d

Conv2d::Conv2d(index_t in_channels, index_t out_channels, index_t kernel,
               index_t pad, Rng& rng)
    : in_c_(in_channels), out_c_(out_channels), k_(kernel), pad_(pad) {
  LS_CHECK(in_c_ > 0 && out_c_ > 0 && k_ > 0 && pad_ >= 0,
           "bad conv configuration");
  const std::size_t wsize =
      static_cast<std::size_t>(out_c_ * in_c_ * k_ * k_);
  weight_.value.resize(wsize);
  weight_.grad.assign(wsize, 0.0);
  // He/MSRA initialisation (what Caffe's cifar10_full uses for conv).
  const double stddev =
      std::sqrt(2.0 / static_cast<double>(in_c_ * k_ * k_));
  for (auto& w : weight_.value) w = rng.normal(0.0, stddev);
  bias_.value.assign(static_cast<std::size_t>(out_c_), 0.0);
  bias_.grad.assign(static_cast<std::size_t>(out_c_), 0.0);
}

Tensor Conv2d::make_output(const Tensor& in) const {
  LS_CHECK(in.c() == in_c_, "conv input channel mismatch");
  const index_t oh = in.h() + 2 * pad_ - k_ + 1;
  const index_t ow = in.w() + 2 * pad_ - k_ + 1;
  LS_CHECK(oh > 0 && ow > 0, "conv output collapses to zero size");
  return Tensor(in.n(), out_c_, oh, ow);
}

void Conv2d::forward(const Tensor& in, Tensor& out) {
  const index_t oh = out.h(), ow = out.w();
  parallel_for(in.n(), [&](index_t n) {
    for (index_t oc = 0; oc < out_c_; ++oc) {
      const real_t b = bias_.value[static_cast<std::size_t>(oc)];
      for (index_t y = 0; y < oh; ++y) {
        for (index_t x = 0; x < ow; ++x) {
          real_t acc = b;
          for (index_t ic = 0; ic < in_c_; ++ic) {
            for (index_t kh = 0; kh < k_; ++kh) {
              const index_t iy = y + kh - pad_;
              if (iy < 0 || iy >= in.h()) continue;
              for (index_t kw = 0; kw < k_; ++kw) {
                const index_t ix = x + kw - pad_;
                if (ix < 0 || ix >= in.w()) continue;
                acc += w_at(oc, ic, kh, kw) * in.at(n, ic, iy, ix);
              }
            }
          }
          out.at(n, oc, y, x) = acc;
        }
      }
    }
  });
}

void Conv2d::backward(const Tensor& in, const Tensor& grad_out,
                      Tensor& grad_in) {
  grad_in.fill(0.0);
  const index_t oh = grad_out.h(), ow = grad_out.w();
  // Serial over batch for deterministic gradient accumulation into the
  // shared weight blob (the data-parallel trainer parallelises across
  // workers one level up instead).
  for (index_t n = 0; n < in.n(); ++n) {
    for (index_t oc = 0; oc < out_c_; ++oc) {
      real_t bias_acc = 0.0;
      for (index_t y = 0; y < oh; ++y) {
        for (index_t x = 0; x < ow; ++x) {
          const real_t g = grad_out.at(n, oc, y, x);
          if (g == 0.0) continue;
          bias_acc += g;
          for (index_t ic = 0; ic < in_c_; ++ic) {
            for (index_t kh = 0; kh < k_; ++kh) {
              const index_t iy = y + kh - pad_;
              if (iy < 0 || iy >= in.h()) continue;
              for (index_t kw = 0; kw < k_; ++kw) {
                const index_t ix = x + kw - pad_;
                if (ix < 0 || ix >= in.w()) continue;
                wgrad_at(oc, ic, kh, kw) += g * in.at(n, ic, iy, ix);
                grad_in.at(n, ic, iy, ix) += g * w_at(oc, ic, kh, kw);
              }
            }
          }
        }
      }
      bias_.grad[static_cast<std::size_t>(oc)] += bias_acc;
    }
  }
}

double Conv2d::flops_per_sample(const Tensor& in) const {
  const index_t oh = in.h() + 2 * pad_ - k_ + 1;
  const index_t ow = in.w() + 2 * pad_ - k_ + 1;
  return static_cast<double>(out_c_ * oh * ow) *
         static_cast<double>(in_c_ * k_ * k_);
}

// -------------------------------------------------------------- MaxPool2d

Tensor MaxPool2d::make_output(const Tensor& in) const {
  LS_CHECK(in.h() >= win_ && in.w() >= win_, "pool window exceeds input");
  return Tensor(in.n(), in.c(), out_dim(in.h()), out_dim(in.w()));
}

void MaxPool2d::forward(const Tensor& in, Tensor& out) {
  argmax_.assign(static_cast<std::size_t>(out.size()), 0);
  const index_t oh = out.h(), ow = out.w();
  index_t flat = 0;
  for (index_t n = 0; n < in.n(); ++n) {
    for (index_t c = 0; c < in.c(); ++c) {
      for (index_t y = 0; y < oh; ++y) {
        for (index_t x = 0; x < ow; ++x, ++flat) {
          real_t best = -std::numeric_limits<real_t>::infinity();
          index_t best_idx = 0;
          for (index_t dy = 0; dy < win_; ++dy) {
            for (index_t dx = 0; dx < win_; ++dx) {
              const index_t iy = y * stride_ + dy;
              const index_t ix = x * stride_ + dx;
              const real_t v = in.at(n, c, iy, ix);
              if (v > best) {
                best = v;
                best_idx = ((n * in.c() + c) * in.h() + iy) * in.w() + ix;
              }
            }
          }
          out.at(n, c, y, x) = best;
          argmax_[static_cast<std::size_t>(flat)] = best_idx;
        }
      }
    }
  }
}

void MaxPool2d::backward(const Tensor& in, const Tensor& grad_out,
                         Tensor& grad_in) {
  (void)in;
  grad_in.fill(0.0);
  for (index_t i = 0; i < grad_out.size(); ++i) {
    grad_in[argmax_[static_cast<std::size_t>(i)]] += grad_out[i];
  }
}

double MaxPool2d::flops_per_sample(const Tensor& in) const {
  return static_cast<double>(in.sample_size());
}

// -------------------------------------------------------------- AvgPool2d

Tensor AvgPool2d::make_output(const Tensor& in) const {
  LS_CHECK(in.h() >= win_ && in.w() >= win_, "pool window exceeds input");
  return Tensor(in.n(), in.c(), out_dim(in.h()), out_dim(in.w()));
}

void AvgPool2d::forward(const Tensor& in, Tensor& out) {
  const real_t inv = 1.0 / static_cast<real_t>(win_ * win_);
  for (index_t n = 0; n < in.n(); ++n) {
    for (index_t c = 0; c < in.c(); ++c) {
      for (index_t y = 0; y < out.h(); ++y) {
        for (index_t x = 0; x < out.w(); ++x) {
          real_t acc = 0.0;
          for (index_t dy = 0; dy < win_; ++dy) {
            for (index_t dx = 0; dx < win_; ++dx) {
              acc += in.at(n, c, y * stride_ + dy, x * stride_ + dx);
            }
          }
          out.at(n, c, y, x) = acc * inv;
        }
      }
    }
  }
}

void AvgPool2d::backward(const Tensor& in, const Tensor& grad_out,
                         Tensor& grad_in) {
  (void)in;
  grad_in.fill(0.0);
  const real_t inv = 1.0 / static_cast<real_t>(win_ * win_);
  for (index_t n = 0; n < grad_out.n(); ++n) {
    for (index_t c = 0; c < grad_out.c(); ++c) {
      for (index_t y = 0; y < grad_out.h(); ++y) {
        for (index_t x = 0; x < grad_out.w(); ++x) {
          const real_t g = grad_out.at(n, c, y, x) * inv;
          for (index_t dy = 0; dy < win_; ++dy) {
            for (index_t dx = 0; dx < win_; ++dx) {
              grad_in.at(n, c, y * stride_ + dy, x * stride_ + dx) += g;
            }
          }
        }
      }
    }
  }
}

double AvgPool2d::flops_per_sample(const Tensor& in) const {
  return static_cast<double>(in.sample_size());
}

// ------------------------------------------------------------------ ReLU

void ReLU::forward(const Tensor& in, Tensor& out) {
  for (index_t i = 0; i < in.size(); ++i) {
    out[i] = in[i] > 0 ? in[i] : 0.0;
  }
}

void ReLU::backward(const Tensor& in, const Tensor& grad_out,
                    Tensor& grad_in) {
  for (index_t i = 0; i < in.size(); ++i) {
    grad_in[i] = in[i] > 0 ? grad_out[i] : 0.0;
  }
}

// ------------------------------------------------------------------- LRN

void Lrn::forward(const Tensor& in, Tensor& out) {
  if (!scale_.same_shape(in)) {
    scale_ = Tensor(in.n(), in.c(), in.h(), in.w());
  }
  const index_t half = size_ / 2;
  const real_t norm = alpha_ / static_cast<real_t>(size_);
  for (index_t n = 0; n < in.n(); ++n) {
    for (index_t y = 0; y < in.h(); ++y) {
      for (index_t x = 0; x < in.w(); ++x) {
        for (index_t c = 0; c < in.c(); ++c) {
          real_t window = 0.0;
          const index_t lo = std::max<index_t>(0, c - half);
          const index_t hi = std::min(in.c() - 1, c + half);
          for (index_t j = lo; j <= hi; ++j) {
            const real_t a = in.at(n, j, y, x);
            window += a * a;
          }
          const real_t s = k_ + norm * window;
          scale_.at(n, c, y, x) = s;
          out.at(n, c, y, x) = in.at(n, c, y, x) * std::pow(s, -beta_);
        }
      }
    }
  }
}

void Lrn::backward(const Tensor& in, const Tensor& grad_out,
                   Tensor& grad_in) {
  LS_CHECK(scale_.same_shape(in), "Lrn::backward requires a prior forward");
  const index_t half = size_ / 2;
  const real_t norm = alpha_ / static_cast<real_t>(size_);
  // grad_a_j = g_j s_j^-beta
  //          - 2 beta norm a_j * sum_{i: j in window(i)} g_i a_i s_i^(-beta-1)
  for (index_t n = 0; n < in.n(); ++n) {
    for (index_t y = 0; y < in.h(); ++y) {
      for (index_t x = 0; x < in.w(); ++x) {
        for (index_t j = 0; j < in.c(); ++j) {
          const real_t sj = scale_.at(n, j, y, x);
          real_t g = grad_out.at(n, j, y, x) * std::pow(sj, -beta_);
          real_t cross = 0.0;
          const index_t lo = std::max<index_t>(0, j - half);
          const index_t hi = std::min(in.c() - 1, j + half);
          for (index_t i = lo; i <= hi; ++i) {
            const real_t si = scale_.at(n, i, y, x);
            cross += grad_out.at(n, i, y, x) * in.at(n, i, y, x) *
                     std::pow(si, -beta_ - 1.0);
          }
          g -= 2.0 * beta_ * norm * in.at(n, j, y, x) * cross;
          grad_in.at(n, j, y, x) = g;
        }
      }
    }
  }
}

// ---------------------------------------------------------------- Linear

Linear::Linear(index_t in_features, index_t out_features, Rng& rng)
    : in_f_(in_features), out_f_(out_features) {
  LS_CHECK(in_f_ > 0 && out_f_ > 0, "bad linear configuration");
  const std::size_t wsize = static_cast<std::size_t>(in_f_ * out_f_);
  weight_.value.resize(wsize);
  weight_.grad.assign(wsize, 0.0);
  const double stddev = std::sqrt(2.0 / static_cast<double>(in_f_));
  for (auto& w : weight_.value) w = rng.normal(0.0, stddev);
  bias_.value.assign(static_cast<std::size_t>(out_f_), 0.0);
  bias_.grad.assign(static_cast<std::size_t>(out_f_), 0.0);
}

void Linear::forward(const Tensor& in, Tensor& out) {
  LS_CHECK(in.sample_size() == in_f_, "linear input size mismatch");
  parallel_for(in.n(), [&](index_t n) {
    const real_t* x = in.data() + n * in_f_;
    for (index_t o = 0; o < out_f_; ++o) {
      const real_t* w = weight_.value.data() + o * in_f_;
      real_t acc = bias_.value[static_cast<std::size_t>(o)];
      for (index_t i = 0; i < in_f_; ++i) acc += w[i] * x[i];
      out[n * out_f_ + o] = acc;
    }
  });
}

void Linear::backward(const Tensor& in, const Tensor& grad_out,
                      Tensor& grad_in) {
  grad_in.fill(0.0);
  for (index_t n = 0; n < in.n(); ++n) {
    const real_t* x = in.data() + n * in_f_;
    real_t* gx = grad_in.data() + n * in_f_;
    for (index_t o = 0; o < out_f_; ++o) {
      const real_t g = grad_out[n * out_f_ + o];
      if (g == 0.0) continue;
      const real_t* w = weight_.value.data() + o * in_f_;
      real_t* gw = weight_.grad.data() + o * in_f_;
      for (index_t i = 0; i < in_f_; ++i) {
        gw[i] += g * x[i];
        gx[i] += g * w[i];
      }
      bias_.grad[static_cast<std::size_t>(o)] += g;
    }
  }
}

// ------------------------------------------------- SoftmaxCrossEntropy

real_t SoftmaxCrossEntropy::forward(const Tensor& logits,
                                    const std::vector<index_t>& labels,
                                    Tensor& probs) const {
  LS_CHECK(static_cast<index_t>(labels.size()) == logits.n(),
           "label count != batch size");
  const index_t classes = logits.sample_size();
  real_t loss = 0.0;
  for (index_t n = 0; n < logits.n(); ++n) {
    const real_t* z = logits.data() + n * classes;
    real_t* p = probs.data() + n * classes;
    real_t zmax = z[0];
    for (index_t k = 1; k < classes; ++k) zmax = std::max(zmax, z[k]);
    real_t sum = 0.0;
    for (index_t k = 0; k < classes; ++k) {
      p[k] = std::exp(z[k] - zmax);
      sum += p[k];
    }
    for (index_t k = 0; k < classes; ++k) p[k] /= sum;
    const index_t label = labels[static_cast<std::size_t>(n)];
    LS_CHECK(label >= 0 && label < classes, "label out of range");
    loss -= std::log(std::max<real_t>(p[label], 1e-300));
  }
  return loss / static_cast<real_t>(logits.n());
}

void SoftmaxCrossEntropy::backward(const Tensor& probs,
                                   const std::vector<index_t>& labels,
                                   Tensor& grad_logits) const {
  const index_t classes = probs.sample_size();
  const real_t inv_batch = 1.0 / static_cast<real_t>(probs.n());
  for (index_t n = 0; n < probs.n(); ++n) {
    const real_t* p = probs.data() + n * classes;
    real_t* g = grad_logits.data() + n * classes;
    for (index_t k = 0; k < classes; ++k) {
      g[k] = p[k] * inv_batch;
    }
    g[labels[static_cast<std::size_t>(n)]] -= inv_batch;
  }
}

}  // namespace ls
