// Neural-network layers: the subset of Caffe needed by `cifar10_full`.
//
// Every layer implements forward and backward with explicit loops (no BLAS
// dependency); gradients are verified against finite differences in the
// test suite. Parameterised layers expose weights/gradients for the SGD
// optimiser through the Layer::params() interface.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "dnn/tensor.hpp"

namespace ls {

/// One trainable parameter blob with its gradient accumulator.
struct ParamBlob {
  std::vector<real_t> value;
  std::vector<real_t> grad;

  void zero_grad() { std::fill(grad.begin(), grad.end(), 0.0); }
};

/// Abstract layer.
class Layer {
 public:
  virtual ~Layer() = default;

  virtual std::string name() const = 0;

  /// Output shape for a given input shape (batch-size preserving).
  virtual Tensor make_output(const Tensor& in) const = 0;

  /// out must have the shape make_output(in) returns.
  virtual void forward(const Tensor& in, Tensor& out) = 0;

  /// grad_in must be shaped like `in`; parameter gradients are accumulated
  /// into params()[k].grad (caller zeroes them per batch).
  virtual void backward(const Tensor& in, const Tensor& grad_out,
                        Tensor& grad_in) = 0;

  /// Trainable parameters (empty for stateless layers).
  virtual std::vector<ParamBlob*> params() { return {}; }

  /// Forward multiply-add count per sample (for the roofline model).
  virtual double flops_per_sample(const Tensor& in) const = 0;
};

/// 2-D convolution, stride 1, symmetric zero padding.
class Conv2d : public Layer {
 public:
  Conv2d(index_t in_channels, index_t out_channels, index_t kernel,
         index_t pad, Rng& rng);

  std::string name() const override { return "conv"; }
  Tensor make_output(const Tensor& in) const override;
  void forward(const Tensor& in, Tensor& out) override;
  void backward(const Tensor& in, const Tensor& grad_out,
                Tensor& grad_in) override;
  std::vector<ParamBlob*> params() override { return {&weight_, &bias_}; }
  double flops_per_sample(const Tensor& in) const override;

  index_t out_channels() const { return out_c_; }

 private:
  real_t w_at(index_t oc, index_t ic, index_t kh, index_t kw) const {
    return weight_.value[static_cast<std::size_t>(
        ((oc * in_c_ + ic) * k_ + kh) * k_ + kw)];
  }
  real_t& wgrad_at(index_t oc, index_t ic, index_t kh, index_t kw) {
    return weight_.grad[static_cast<std::size_t>(
        ((oc * in_c_ + ic) * k_ + kh) * k_ + kw)];
  }

  index_t in_c_, out_c_, k_, pad_;
  ParamBlob weight_;  // [out_c, in_c, k, k]
  ParamBlob bias_;    // [out_c]
};

/// Max pooling with square window and stride = window (Caffe pool1 style
/// uses stride 2 window 3; we support independent stride).
class MaxPool2d : public Layer {
 public:
  MaxPool2d(index_t window, index_t stride) : win_(window), stride_(stride) {}

  std::string name() const override { return "maxpool"; }
  Tensor make_output(const Tensor& in) const override;
  void forward(const Tensor& in, Tensor& out) override;
  void backward(const Tensor& in, const Tensor& grad_out,
                Tensor& grad_in) override;
  double flops_per_sample(const Tensor& in) const override;

 private:
  index_t out_dim(index_t in) const { return (in - win_) / stride_ + 1; }
  index_t win_, stride_;
  std::vector<index_t> argmax_;  // winner index per output element
};

/// Average pooling (used by cifar10_full's pool2 / pool3).
class AvgPool2d : public Layer {
 public:
  AvgPool2d(index_t window, index_t stride) : win_(window), stride_(stride) {}

  std::string name() const override { return "avgpool"; }
  Tensor make_output(const Tensor& in) const override;
  void forward(const Tensor& in, Tensor& out) override;
  void backward(const Tensor& in, const Tensor& grad_out,
                Tensor& grad_in) override;
  double flops_per_sample(const Tensor& in) const override;

 private:
  index_t out_dim(index_t in) const { return (in - win_) / stride_ + 1; }
  index_t win_, stride_;
};

/// Elementwise rectified linear unit.
class ReLU : public Layer {
 public:
  std::string name() const override { return "relu"; }
  Tensor make_output(const Tensor& in) const override {
    return Tensor(in.n(), in.c(), in.h(), in.w());
  }
  void forward(const Tensor& in, Tensor& out) override;
  void backward(const Tensor& in, const Tensor& grad_out,
                Tensor& grad_in) override;
  double flops_per_sample(const Tensor& in) const override {
    return static_cast<double>(in.sample_size());
  }
};

/// Cross-channel local response normalization (Caffe's LRN layer, present
/// in cifar10_full as norm1/norm2):
///   b_i = a_i / (k + (alpha / n) * sum_{j in window(i)} a_j^2)^beta
/// where the window spans `local_size` adjacent channels centred on i.
class Lrn : public Layer {
 public:
  Lrn(index_t local_size = 3, real_t alpha = 5e-5, real_t beta = 0.75,
      real_t k = 1.0)
      : size_(local_size), alpha_(alpha), beta_(beta), k_(k) {}

  std::string name() const override { return "lrn"; }
  Tensor make_output(const Tensor& in) const override {
    return Tensor(in.n(), in.c(), in.h(), in.w());
  }
  void forward(const Tensor& in, Tensor& out) override;
  void backward(const Tensor& in, const Tensor& grad_out,
                Tensor& grad_in) override;
  double flops_per_sample(const Tensor& in) const override {
    return static_cast<double>(in.sample_size()) *
           static_cast<double>(size_ + 2);
  }

 private:
  index_t size_;
  real_t alpha_, beta_, k_;
  Tensor scale_;  // s_i = k + (alpha / n) * window sum, cached by forward
};

/// Fully connected layer: flattens (C, H, W) and applies W x + b.
class Linear : public Layer {
 public:
  Linear(index_t in_features, index_t out_features, Rng& rng);

  std::string name() const override { return "linear"; }
  Tensor make_output(const Tensor& in) const override {
    return Tensor(in.n(), out_f_, 1, 1);
  }
  void forward(const Tensor& in, Tensor& out) override;
  void backward(const Tensor& in, const Tensor& grad_out,
                Tensor& grad_in) override;
  std::vector<ParamBlob*> params() override { return {&weight_, &bias_}; }
  double flops_per_sample(const Tensor& in) const override {
    (void)in;
    return static_cast<double>(in_f_ * out_f_);
  }

 private:
  index_t in_f_, out_f_;
  ParamBlob weight_;  // [out_f, in_f]
  ParamBlob bias_;    // [out_f]
};

/// Softmax + cross-entropy loss head (combined for numerical stability).
class SoftmaxCrossEntropy {
 public:
  /// Returns mean loss over the batch; fills `probs` (shape of logits).
  real_t forward(const Tensor& logits, const std::vector<index_t>& labels,
                 Tensor& probs) const;

  /// grad_logits = (probs - onehot(labels)) / batch.
  void backward(const Tensor& probs, const std::vector<index_t>& labels,
                Tensor& grad_logits) const;
};

}  // namespace ls
