#include "dnn/metrics.hpp"

#include <algorithm>
#include <sstream>

#include "common/error.hpp"

namespace ls {

index_t ConfusionMatrix::total() const {
  index_t t = 0;
  for (index_t c : counts) t += c;
  return t;
}

double ConfusionMatrix::accuracy() const {
  const index_t n = total();
  if (n == 0) return 0.0;
  index_t diag = 0;
  for (index_t k = 0; k < classes; ++k) diag += at(k, k);
  return static_cast<double>(diag) / static_cast<double>(n);
}

std::vector<double> ConfusionMatrix::recall() const {
  std::vector<double> out(static_cast<std::size_t>(classes), 0.0);
  for (index_t k = 0; k < classes; ++k) {
    index_t row = 0;
    for (index_t j = 0; j < classes; ++j) row += at(k, j);
    if (row > 0) {
      out[static_cast<std::size_t>(k)] =
          static_cast<double>(at(k, k)) / static_cast<double>(row);
    }
  }
  return out;
}

std::vector<double> ConfusionMatrix::precision() const {
  std::vector<double> out(static_cast<std::size_t>(classes), 0.0);
  for (index_t k = 0; k < classes; ++k) {
    index_t col = 0;
    for (index_t i = 0; i < classes; ++i) col += at(i, k);
    if (col > 0) {
      out[static_cast<std::size_t>(k)] =
          static_cast<double>(at(k, k)) / static_cast<double>(col);
    }
  }
  return out;
}

std::string ConfusionMatrix::to_string() const {
  std::ostringstream os;
  os << "true\\pred";
  for (index_t j = 0; j < classes; ++j) os << '\t' << j;
  os << '\n';
  for (index_t i = 0; i < classes; ++i) {
    os << i;
    for (index_t j = 0; j < classes; ++j) os << '\t' << at(i, j);
    os << '\n';
  }
  return os.str();
}

ConfusionMatrix evaluate_confusion(Net& net, const ImageDataset& ds,
                                   index_t batch) {
  LS_CHECK(ds.size() > 0, "cannot evaluate on an empty dataset");
  ConfusionMatrix cm;
  cm.classes = ds.classes;
  cm.counts.assign(static_cast<std::size_t>(ds.classes * ds.classes), 0);

  Tensor in;
  std::vector<index_t> labels;
  for (index_t begin = 0; begin < ds.size(); begin += batch) {
    const index_t count = std::min(batch, ds.size() - begin);
    ds.batch(begin, count, in, labels);
    net.forward(in);
    const std::vector<index_t> pred = net.predict();
    for (std::size_t i = 0; i < labels.size(); ++i) {
      LS_CHECK(pred[i] >= 0 && pred[i] < ds.classes,
               "prediction out of class range");
      ++cm.at(labels[i], pred[i]);
    }
  }
  return cm;
}

}  // namespace ls
