// Classification metrics beyond plain accuracy: confusion matrix and
// per-class precision/recall, for the evaluation tooling around the DNN
// trainer.
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"
#include "dnn/cifar.hpp"
#include "dnn/net.hpp"

namespace ls {

/// Row = true class, column = predicted class.
struct ConfusionMatrix {
  index_t classes = 0;
  std::vector<index_t> counts;  ///< classes * classes, row-major

  index_t at(index_t truth, index_t pred) const {
    return counts[static_cast<std::size_t>(truth * classes + pred)];
  }
  index_t& at(index_t truth, index_t pred) {
    return counts[static_cast<std::size_t>(truth * classes + pred)];
  }

  index_t total() const;
  double accuracy() const;

  /// Per-class recall: diagonal / row sum (0 when the class never occurs).
  std::vector<double> recall() const;

  /// Per-class precision: diagonal / column sum (0 when never predicted).
  std::vector<double> precision() const;

  /// ASCII rendering for logs.
  std::string to_string() const;
};

/// Evaluates `net` on `ds` and accumulates the confusion matrix.
ConfusionMatrix evaluate_confusion(Net& net, const ImageDataset& ds,
                                   index_t batch = 256);

}  // namespace ls
