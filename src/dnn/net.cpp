#include "dnn/net.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "dnn/conv_gemm.hpp"

namespace ls {

Net& Net::add(std::unique_ptr<Layer> layer) {
  layers_.push_back(std::move(layer));
  activations_ready_ = false;
  return *this;
}

const Tensor& Net::forward(const Tensor& input) {
  LS_CHECK(!layers_.empty(), "empty network");
  if (!activations_ready_ || cached_batch_ != input.n()) {
    activations_.clear();
    const Tensor* cur = &input;
    for (auto& layer : layers_) {
      activations_.push_back(layer->make_output(*cur));
      cur = &activations_.back();
    }
    probs_ = activations_.back();
    activations_ready_ = true;
    cached_batch_ = input.n();
  }

  const Tensor* cur = &input;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    layers_[i]->forward(*cur, activations_[i]);
    cur = &activations_[i];
  }
  return activations_.back();
}

real_t Net::loss(const std::vector<index_t>& labels) {
  LS_CHECK(activations_ready_, "loss() requires a prior forward()");
  return head_.forward(activations_.back(), labels, probs_);
}

void Net::backward(const Tensor& input, const std::vector<index_t>& labels) {
  LS_CHECK(activations_ready_, "backward() requires a prior forward()");
  // grad w.r.t. logits.
  Tensor grad = activations_.back();
  head_.backward(probs_, labels, grad);

  // Walk layers in reverse; grad_in of layer i is shaped like its input.
  for (std::size_t i = layers_.size(); i-- > 0;) {
    const Tensor& layer_in = (i == 0) ? input : activations_[i - 1];
    Tensor grad_in(layer_in.n(), layer_in.c(), layer_in.h(), layer_in.w());
    layers_[i]->backward(layer_in, grad, grad_in);
    grad = std::move(grad_in);
  }
}

std::vector<ParamBlob*> Net::params() {
  std::vector<ParamBlob*> out;
  for (auto& layer : layers_) {
    for (ParamBlob* p : layer->params()) out.push_back(p);
  }
  return out;
}

void Net::zero_grad() {
  for (ParamBlob* p : params()) p->zero_grad();
}

std::vector<index_t> Net::predict() const {
  LS_CHECK(activations_ready_, "predict() requires a prior forward()");
  const Tensor& logits = activations_.back();
  const index_t classes = logits.sample_size();
  std::vector<index_t> labels(static_cast<std::size_t>(logits.n()));
  for (index_t n = 0; n < logits.n(); ++n) {
    const real_t* z = logits.data() + n * classes;
    labels[static_cast<std::size_t>(n)] = static_cast<index_t>(
        std::max_element(z, z + classes) - z);
  }
  return labels;
}

double Net::flops_per_sample() const {
  LS_CHECK(!layers_.empty(), "empty network");
  double total = 0.0;
  Tensor shape = input_template_;
  for (const auto& layer : layers_) {
    total += layer->flops_per_sample(shape);
    shape = layer->make_output(shape);
  }
  return total;
}

index_t Net::num_parameters() {
  index_t total = 0;
  for (ParamBlob* p : params()) {
    total += static_cast<index_t>(p->value.size());
  }
  return total;
}

namespace {

/// Conv factory switching between the naive and GEMM-lowered kernels.
std::unique_ptr<Layer> make_conv(bool gemm, index_t in_c, index_t out_c,
                                 index_t kernel, index_t pad, Rng& rng) {
  if (gemm) {
    return std::make_unique<Conv2dGemm>(in_c, out_c, kernel, pad, rng);
  }
  return std::make_unique<Conv2d>(in_c, out_c, kernel, pad, rng);
}

}  // namespace

Net make_cifar10_full(index_t classes, index_t channels, index_t dim,
                      Rng& rng, bool gemm_conv) {
  Net net(Tensor(1, channels, dim, dim));
  // Stage 1: conv1 (32 x 5x5, pad 2) -> max pool -> relu1 -> norm1.
  net.add(make_conv(gemm_conv, channels, 32, 5, 2, rng));
  net.add(std::make_unique<MaxPool2d>(2, 2));
  net.add(std::make_unique<ReLU>());
  net.add(std::make_unique<Lrn>());
  // Stage 2: conv2 (32 x 5x5, pad 2) -> relu2 -> norm2 -> avg pool.
  net.add(make_conv(gemm_conv, 32, 32, 5, 2, rng));
  net.add(std::make_unique<ReLU>());
  net.add(std::make_unique<Lrn>());
  net.add(std::make_unique<AvgPool2d>(2, 2));
  // Stage 3: conv3 (64 x 5x5, pad 2) -> relu3 -> avg pool.
  net.add(make_conv(gemm_conv, 32, 64, 5, 2, rng));
  net.add(std::make_unique<ReLU>());
  net.add(std::make_unique<AvgPool2d>(2, 2));
  // Classifier.
  const index_t spatial = dim / 8;
  net.add(std::make_unique<Linear>(64 * spatial * spatial, classes, rng));
  return net;
}

Net make_cifar10_small(index_t classes, index_t channels, index_t dim,
                       Rng& rng, bool gemm_conv) {
  Net net(Tensor(1, channels, dim, dim));
  net.add(make_conv(gemm_conv, channels, 8, 5, 2, rng));
  net.add(std::make_unique<MaxPool2d>(2, 2));
  net.add(std::make_unique<ReLU>());
  net.add(make_conv(gemm_conv, 8, 8, 5, 2, rng));
  net.add(std::make_unique<ReLU>());
  net.add(std::make_unique<AvgPool2d>(2, 2));
  net.add(make_conv(gemm_conv, 8, 16, 5, 2, rng));
  net.add(std::make_unique<ReLU>());
  net.add(std::make_unique<AvgPool2d>(2, 2));
  const index_t spatial = dim / 8;
  net.add(std::make_unique<Linear>(16 * spatial * spatial, classes, rng));
  return net;
}

}  // namespace ls
