// Sequential network container plus the `cifar10_full` architecture factory
// (the Caffe model the paper's Section IV trains on CIFAR-10).
#pragma once

#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "dnn/layers.hpp"

namespace ls {

/// Sequential feed-forward network with a softmax-cross-entropy head.
class Net {
 public:
  explicit Net(Tensor input_template) : input_template_(input_template) {}

  /// Appends a layer; returns *this for chaining.
  Net& add(std::unique_ptr<Layer> layer);

  /// Forward pass; returns the logits tensor.
  const Tensor& forward(const Tensor& input);

  /// Mean loss of the last forward pass against `labels` (also prepares the
  /// softmax probabilities needed by backward).
  real_t loss(const std::vector<index_t>& labels);

  /// Backpropagates through all layers, accumulating parameter gradients.
  void backward(const Tensor& input, const std::vector<index_t>& labels);

  /// All trainable parameter blobs, in layer order.
  std::vector<ParamBlob*> params();

  /// Zeroes every parameter gradient.
  void zero_grad();

  /// Predicted class per sample of the last forward pass.
  std::vector<index_t> predict() const;

  /// Total forward multiply-adds per sample (roofline model input).
  double flops_per_sample() const;

  /// Number of trainable scalars.
  index_t num_parameters();

  index_t num_layers() const { return static_cast<index_t>(layers_.size()); }

 private:
  Tensor input_template_;  // shape reference for activation allocation
  std::vector<std::unique_ptr<Layer>> layers_;
  std::vector<Tensor> activations_;  // activations_[i] = output of layer i
  Tensor probs_;
  SoftmaxCrossEntropy head_;
  bool activations_ready_ = false;
  index_t cached_batch_ = -1;
};

/// Builds the cifar10_full architecture for `classes` classes on inputs of
/// shape (channels, dim, dim): three conv5x5(pad 2)+pool+ReLU stages
/// (32, 32, 64 filters) followed by a fully connected classifier — the
/// layer stack of Caffe's examples/cifar10/cifar10_full_train_test.prototxt.
Net make_cifar10_full(index_t classes, index_t channels, index_t dim,
                      Rng& rng, bool gemm_conv = false);

/// A reduced version of the same topology for fast real-training tests
/// (8/8/16 filters); identical code paths at ~1/20 the flops.
Net make_cifar10_small(index_t classes, index_t channels, index_t dim,
                       Rng& rng, bool gemm_conv = false);

}  // namespace ls
