#include "dnn/net_spec.hpp"

#include <sstream>
#include <vector>

#include "common/error.hpp"
#include "dnn/conv_gemm.hpp"

namespace ls {

namespace {

/// Splits "a,b,c" into doubles; empty string -> empty vector.
std::vector<double> parse_args(const std::string& text, int line_no) {
  std::vector<double> args;
  if (text.empty()) return args;
  std::istringstream in(text);
  std::string token;
  while (std::getline(in, token, ',')) {
    try {
      std::size_t used = 0;
      args.push_back(std::stod(token, &used));
      LS_CHECK(used == token.size(), "net spec line "
                                         << line_no << ": bad number '"
                                         << token << "'");
    } catch (const std::invalid_argument&) {
      throw Error("net spec line " + std::to_string(line_no) +
                  ": bad number '" + token + "'");
    }
  }
  return args;
}

index_t int_arg(const std::vector<double>& args, std::size_t k,
                int line_no) {
  LS_CHECK(k < args.size(),
           "net spec line " << line_no << ": missing argument " << k + 1);
  const double v = args[k];
  LS_CHECK(v == static_cast<index_t>(v) && v > 0,
           "net spec line " << line_no << ": argument " << k + 1
                            << " must be a positive integer");
  return static_cast<index_t>(v);
}

}  // namespace

Net build_net_from_spec(const std::string& spec, index_t channels,
                        index_t dim, Rng& rng) {
  Net net(Tensor(1, channels, dim, dim));
  Tensor shape(1, channels, dim, dim);
  int line_no = 0;
  int layers = 0;

  std::istringstream in(spec);
  std::string line;
  while (std::getline(in, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    // Trim.
    const auto begin = line.find_first_not_of(" \t\r");
    if (begin == std::string::npos) continue;
    const auto end = line.find_last_not_of(" \t\r");
    line = line.substr(begin, end - begin + 1);

    std::string name = line;
    std::string arg_text;
    const auto colon = line.find(':');
    if (colon != std::string::npos) {
      name = line.substr(0, colon);
      arg_text = line.substr(colon + 1);
    }
    const std::vector<double> args = parse_args(arg_text, line_no);

    std::unique_ptr<Layer> layer;
    if (name == "conv" || name == "conv_gemm") {
      const index_t out_c = int_arg(args, 0, line_no);
      const index_t kernel = int_arg(args, 1, line_no);
      const index_t pad =
          args.size() > 2 ? int_arg(args, 2, line_no) : 0;
      if (name == "conv") {
        layer = std::make_unique<Conv2d>(shape.c(), out_c, kernel, pad, rng);
      } else {
        layer =
            std::make_unique<Conv2dGemm>(shape.c(), out_c, kernel, pad, rng);
      }
    } else if (name == "maxpool") {
      layer = std::make_unique<MaxPool2d>(int_arg(args, 0, line_no),
                                          int_arg(args, 1, line_no));
    } else if (name == "avgpool") {
      layer = std::make_unique<AvgPool2d>(int_arg(args, 0, line_no),
                                          int_arg(args, 1, line_no));
    } else if (name == "relu") {
      layer = std::make_unique<ReLU>();
    } else if (name == "lrn") {
      const index_t size = args.empty() ? 3 : int_arg(args, 0, line_no);
      const real_t alpha = args.size() > 1 ? args[1] : 5e-5;
      const real_t beta = args.size() > 2 ? args[2] : 0.75;
      const real_t k = args.size() > 3 ? args[3] : 1.0;
      layer = std::make_unique<Lrn>(size, alpha, beta, k);
    } else if (name == "linear") {
      layer = std::make_unique<Linear>(shape.sample_size(),
                                       int_arg(args, 0, line_no), rng);
    } else {
      throw Error("net spec line " + std::to_string(line_no) +
                  ": unknown layer '" + name + "'");
    }

    shape = layer->make_output(shape);  // shape inference, throws on misfit
    net.add(std::move(layer));
    ++layers;
  }
  LS_CHECK(layers > 0, "net spec defines no layers");
  return net;
}

std::string cifar10_full_spec(index_t classes) {
  std::ostringstream spec;
  spec << "# Caffe cifar10_full (conv stages + norm layers + classifier)\n"
       << "conv:32,5,2\nmaxpool:2,2\nrelu\nlrn\n"
       << "conv:32,5,2\nrelu\nlrn\navgpool:2,2\n"
       << "conv:64,5,2\nrelu\navgpool:2,2\n"
       << "linear:" << classes << "\n";
  return spec.str();
}

}  // namespace ls
