// Text network specifications — a prototxt-lite for this framework.
//
// Caffe models (like the paper's cifar10_full) are defined in text files;
// this parser provides the same config-driven workflow: one layer per
// line, "name:arg,arg,..." syntax, '#' comments.
//
//   conv:32,5,2        # out_channels, kernel, pad
//   conv_gemm:32,5,2   # GEMM-lowered variant, same semantics
//   maxpool:2,2        # window, stride
//   avgpool:2,2
//   relu
//   lrn:3,5e-5,0.75,1  # local_size, alpha, beta, k (all optional)
//   linear:10          # out_features (in_features inferred)
//
// The parser tracks the activation shape through the stack so conv input
// channels and linear input sizes are inferred, exactly like Caffe's shape
// inference.
#pragma once

#include <string>

#include "common/rng.hpp"
#include "dnn/net.hpp"

namespace ls {

/// Builds a network from a spec string for inputs (channels, dim, dim).
/// Throws ls::Error with a line number on malformed specs.
Net build_net_from_spec(const std::string& spec, index_t channels,
                        index_t dim, Rng& rng);

/// The cifar10_full topology as a spec string (norm layers included);
/// build_net_from_spec(cifar10_full_spec(), 3, 32, rng) reproduces
/// make_cifar10_full exactly.
std::string cifar10_full_spec(index_t classes = 10);

}  // namespace ls
