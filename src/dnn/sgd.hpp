// SGD with momentum — the paper's Equations (8) and (9):
//
//   V_{t+1} = mu * V_t - eta * dW_t
//   W_{t+1} = W_t + V_{t+1}
//
// mu = 0 recovers plain SGD (the paper notes the update rule "becomes the
// original version if mu = 0", which the tests assert).
#pragma once

#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"
#include "dnn/layers.hpp"

namespace ls {

/// Momentum-SGD optimiser over a fixed set of parameter blobs.
///
/// Optionally applies L2 weight decay (Caffe's cifar10_full solver uses
/// 0.004): the effective gradient is g + wd * W.
class SgdOptimizer {
 public:
  /// `params` must stay alive and stable for the optimiser's lifetime.
  SgdOptimizer(std::vector<ParamBlob*> params, real_t learning_rate,
               real_t momentum, real_t weight_decay = 0.0)
      : params_(std::move(params)), eta_(learning_rate), mu_(momentum),
        wd_(weight_decay) {
    LS_CHECK(eta_ > 0, "learning rate must be positive");
    LS_CHECK(mu_ >= 0 && mu_ < 1, "momentum must be in [0, 1)");
    LS_CHECK(wd_ >= 0, "weight decay must be non-negative");
    velocity_.resize(params_.size());
    for (std::size_t k = 0; k < params_.size(); ++k) {
      velocity_[k].assign(params_[k]->value.size(), 0.0);
    }
  }

  real_t learning_rate() const { return eta_; }
  real_t momentum() const { return mu_; }
  real_t weight_decay() const { return wd_; }
  void set_learning_rate(real_t eta) {
    LS_CHECK(eta > 0, "learning rate must be positive");
    eta_ = eta;
  }

  /// Momentum state, one vector per parameter blob in blob order — part of
  /// the resumable training state (a resumed run must continue the same
  /// velocity trajectory, not restart it at zero).
  const std::vector<std::vector<real_t>>& velocity() const {
    return velocity_;
  }
  void set_velocity(const std::vector<std::vector<real_t>>& v) {
    LS_CHECK(v.size() == velocity_.size(),
             "velocity blob count " << v.size() << " != " << velocity_.size());
    for (std::size_t k = 0; k < v.size(); ++k) {
      LS_CHECK(v[k].size() == velocity_[k].size(),
               "velocity blob " << k << " has " << v[k].size()
                                << " entries, expected "
                                << velocity_[k].size());
    }
    velocity_ = v;
  }

  /// Applies one update from the currently accumulated gradients.
  void step() {
    for (std::size_t k = 0; k < params_.size(); ++k) {
      ParamBlob& p = *params_[k];
      std::vector<real_t>& v = velocity_[k];
      for (std::size_t i = 0; i < v.size(); ++i) {
        const real_t g = p.grad[i] + wd_ * p.value[i];
        v[i] = mu_ * v[i] - eta_ * g;  // Eq. (8)
        p.value[i] += v[i];            // Eq. (9)
      }
    }
  }

 private:
  std::vector<ParamBlob*> params_;
  real_t eta_;
  real_t mu_;
  real_t wd_;
  std::vector<std::vector<real_t>> velocity_;
};

}  // namespace ls
