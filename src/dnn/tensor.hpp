// Minimal 4-D tensor (N, C, H, W) for the DNN substrate.
//
// The DNN thread of the paper (Section IV) trains Caffe's `cifar10_full`
// model; this tensor plus the layers in layers.hpp reimplement the needed
// subset of such a framework from scratch: NCHW storage, value semantics,
// no views (every layer owns its output buffer).
#pragma once

#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"

namespace ls {

/// Dense NCHW tensor of real_t.
class Tensor {
 public:
  Tensor() = default;

  Tensor(index_t n, index_t c, index_t h, index_t w)
      : n_(n), c_(c), h_(h), w_(w),
        data_(static_cast<std::size_t>(n * c * h * w), 0.0) {
    LS_CHECK(n >= 0 && c >= 0 && h >= 0 && w >= 0, "negative tensor dims");
  }

  /// Flat vector of length n (shape [n, 1, 1, 1]).
  static Tensor flat(index_t n) { return Tensor(n, 1, 1, 1); }

  index_t n() const { return n_; }
  index_t c() const { return c_; }
  index_t h() const { return h_; }
  index_t w() const { return w_; }
  index_t size() const { return static_cast<index_t>(data_.size()); }

  /// Elements per sample (C * H * W).
  index_t sample_size() const { return c_ * h_ * w_; }

  real_t& at(index_t n, index_t c, index_t h, index_t w) {
    return data_[offset(n, c, h, w)];
  }
  real_t at(index_t n, index_t c, index_t h, index_t w) const {
    return data_[offset(n, c, h, w)];
  }

  real_t& operator[](index_t i) { return data_[static_cast<std::size_t>(i)]; }
  real_t operator[](index_t i) const {
    return data_[static_cast<std::size_t>(i)];
  }

  real_t* data() { return data_.data(); }
  const real_t* data() const { return data_.data(); }

  void fill(real_t v) { std::fill(data_.begin(), data_.end(), v); }

  bool same_shape(const Tensor& o) const {
    return n_ == o.n_ && c_ == o.c_ && h_ == o.h_ && w_ == o.w_;
  }

 private:
  std::size_t offset(index_t n, index_t c, index_t h, index_t w) const {
    LS_ASSERT(n >= 0 && n < n_ && c >= 0 && c < c_ && h >= 0 && h < h_ &&
                  w >= 0 && w < w_,
              "tensor index out of range");
    return static_cast<std::size_t>(((n * c_ + c) * h_ + h) * w_ + w);
  }

  index_t n_ = 0, c_ = 0, h_ = 0, w_ = 0;
  std::vector<real_t> data_;
};

}  // namespace ls
