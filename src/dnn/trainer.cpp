#include "dnn/trainer.hpp"

#include <algorithm>
#include <numeric>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"

namespace ls {

double evaluate(Net& net, const ImageDataset& ds, index_t batch) {
  LS_CHECK(ds.size() > 0, "cannot evaluate on an empty dataset");
  index_t correct = 0;
  Tensor in;
  std::vector<index_t> labels;
  for (index_t begin = 0; begin < ds.size(); begin += batch) {
    const index_t count = std::min(batch, ds.size() - begin);
    ds.batch(begin, count, in, labels);
    net.forward(in);
    const std::vector<index_t> pred = net.predict();
    for (std::size_t i = 0; i < labels.size(); ++i) {
      if (pred[i] == labels[i]) ++correct;
    }
  }
  return static_cast<double>(correct) / static_cast<double>(ds.size());
}

double data_parallel_step(Net& net, SgdOptimizer& opt, const Tensor& batch,
                          const std::vector<index_t>& labels,
                          index_t workers) {
  LS_CHECK(workers >= 1, "need at least one worker");
  LS_CHECK(batch.n() % workers == 0,
           "batch size " << batch.n() << " not divisible by " << workers
                         << " workers");
  const index_t shard = batch.n() / workers;

  net.zero_grad();
  double loss_sum = 0.0;
  Tensor shard_in(shard, batch.c(), batch.h(), batch.w());
  std::vector<index_t> shard_labels;
  const index_t per_sample = batch.sample_size();
  for (index_t wkr = 0; wkr < workers; ++wkr) {
    const index_t begin = wkr * shard;
    std::copy(batch.data() + begin * per_sample,
              batch.data() + (begin + shard) * per_sample, shard_in.data());
    shard_labels.assign(labels.begin() + begin,
                        labels.begin() + begin + shard);
    // Each worker computes the mean gradient over its shard; the blob
    // accumulates across workers — that accumulation IS the allreduce sum.
    net.forward(shard_in);
    loss_sum += net.loss(shard_labels) * static_cast<double>(shard);
    net.backward(shard_in, shard_labels);
  }
  // W = W - eta * (sum_i dW_i) / P    (Section IV-B update rule)
  const real_t inv_workers = 1.0 / static_cast<real_t>(workers);
  for (ParamBlob* p : net.params()) {
    for (real_t& g : p->grad) g *= inv_workers;
  }
  opt.step();
  return loss_sum / static_cast<double>(batch.n());
}

DnnTrainResult train_dnn(
    Net& net, const CifarData& data, const DnnTrainConfig& config,
    const std::function<void(index_t, double, double)>& on_epoch) {
  LS_CHECK(config.batch_size >= 1, "batch size must be positive");
  LS_CHECK(config.batch_size % config.workers == 0,
           "batch size must be divisible by the worker count");
  const ImageDataset& train = data.train;
  LS_CHECK(train.size() >= config.batch_size,
           "training set smaller than one batch");

  Timer timer;
  SgdOptimizer opt(net.params(), config.learning_rate, config.momentum,
                   config.weight_decay);
  Rng rng(config.shuffle_seed);

  std::vector<index_t> order(static_cast<std::size_t>(train.size()));
  std::iota(order.begin(), order.end(), index_t{0});

  DnnTrainResult result;
  Tensor batch(config.batch_size, train.images.c(), train.images.h(),
               train.images.w());
  std::vector<index_t> labels(static_cast<std::size_t>(config.batch_size));
  const index_t per_sample = train.images.sample_size();
  const index_t batches_per_epoch = train.size() / config.batch_size;

  for (index_t epoch = 0; epoch < config.max_epochs; ++epoch) {
    // Multistep schedule: drop the learning rate every k epochs (Caffe's
    // cifar10_full solver drops by 10x late in training).
    if (config.lr_drop_every_epochs > 0 && epoch > 0 &&
        epoch % config.lr_drop_every_epochs == 0) {
      opt.set_learning_rate(opt.learning_rate() * config.lr_drop_factor);
    }
    shuffle(order.begin(), order.end(), rng);
    double loss_acc = 0.0;
    for (index_t b = 0; b < batches_per_epoch; ++b) {
      // Gather the shuffled batch.
      for (index_t i = 0; i < config.batch_size; ++i) {
        const index_t src = order[static_cast<std::size_t>(
            b * config.batch_size + i)];
        std::copy(train.images.data() + src * per_sample,
                  train.images.data() + (src + 1) * per_sample,
                  batch.data() + i * per_sample);
        labels[static_cast<std::size_t>(i)] =
            train.labels[static_cast<std::size_t>(src)];
      }
      loss_acc +=
          data_parallel_step(net, opt, batch, labels, config.workers);
      ++result.iterations;

      if (config.eval_every_iters > 0 &&
          result.iterations % config.eval_every_iters == 0 &&
          config.target_accuracy > 0.0) {
        result.test_accuracy = evaluate(net, data.test);
        if (result.test_accuracy >= config.target_accuracy) {
          result.reached_target = true;
          result.final_train_loss = loss_acc / static_cast<double>(b + 1);
          result.epochs_completed = epoch;
          result.seconds = timer.seconds();
          return result;
        }
      }
    }
    result.epochs_completed = epoch + 1;
    result.final_train_loss =
        loss_acc / static_cast<double>(batches_per_epoch);
    result.test_accuracy = evaluate(net, data.test);
    if (on_epoch) {
      on_epoch(epoch + 1, result.final_train_loss, result.test_accuracy);
    }
    if (config.target_accuracy > 0.0 &&
        result.test_accuracy >= config.target_accuracy) {
      result.reached_target = true;
      break;
    }
  }
  result.seconds = timer.seconds();
  return result;
}

}  // namespace ls
