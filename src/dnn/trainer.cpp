#include "dnn/trainer.hpp"

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <sstream>

#include "common/error.hpp"
#include "common/failpoint.hpp"
#include "common/fs_atomic.hpp"
#include "common/metrics.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "common/trace.hpp"

namespace ls {

namespace {

constexpr const char* kDnnCheckpointMagic = "ls_dnn_checkpoint v1";

void write_blob_group(std::ostream& out, const char* name,
                      const std::vector<std::vector<real_t>>& blobs) {
  out << name << ' ' << blobs.size() << '\n';
  for (const std::vector<real_t>& blob : blobs) {
    out << blob.size();
    for (real_t x : blob) out << ' ' << x;
    out << '\n';
  }
}

std::vector<std::vector<real_t>> read_blob_group(std::istream& in,
                                                 const char* name) {
  std::string line;
  LS_CHECK(std::getline(in, line), "dnn checkpoint truncated at " << name);
  std::istringstream header(line);
  std::string key;
  std::size_t count = 0;
  LS_CHECK(static_cast<bool>(header >> key >> count) && key == name,
           "bad dnn checkpoint group header: '" << line << "'");
  std::vector<std::vector<real_t>> blobs(count);
  for (std::size_t k = 0; k < count; ++k) {
    LS_CHECK(std::getline(in, line),
             "dnn checkpoint truncated in group " << name);
    std::istringstream ls(line);
    std::size_t n = 0;
    LS_CHECK(static_cast<bool>(ls >> n), "bad blob header in " << name);
    blobs[k].reserve(n);
    real_t x = 0.0;
    while (ls >> x) blobs[k].push_back(x);
    LS_CHECK(blobs[k].size() == n, "blob " << k << " in group " << name
                                           << " has " << blobs[k].size()
                                           << " entries, expected " << n);
  }
  return blobs;
}

}  // namespace

void save_dnn_checkpoint(const std::string& path, const DnnCheckpoint& ck) {
  LS_FAILPOINT("dnn.checkpoint.save");
  atomic_write_file(path, [&](std::ostream& out) {
    out << kDnnCheckpointMagic << '\n';
    out << "epochs_completed " << ck.epochs_completed << '\n';
    out << "iterations " << ck.iterations << '\n';
    out << "learning_rate " << ck.learning_rate << '\n';
    write_blob_group(out, "params", ck.params);
    write_blob_group(out, "velocity", ck.velocity);
  });
}

DnnCheckpoint load_dnn_checkpoint(const std::string& path) {
  std::istringstream in(read_file_verified(path));
  std::string line;
  LS_CHECK(std::getline(in, line) && line == kDnnCheckpointMagic,
           "bad dnn checkpoint magic in " << path);
  DnnCheckpoint ck;
  const auto read_scalar = [&](const char* name, auto& value) {
    LS_CHECK(std::getline(in, line), "dnn checkpoint truncated at " << name);
    std::istringstream ls(line);
    std::string key;
    LS_CHECK(static_cast<bool>(ls >> key >> value) && key == name,
             "bad dnn checkpoint field: expected '" << name << "', got '"
                                                    << line << "'");
  };
  read_scalar("epochs_completed", ck.epochs_completed);
  read_scalar("iterations", ck.iterations);
  read_scalar("learning_rate", ck.learning_rate);
  LS_CHECK(ck.epochs_completed >= 0 && ck.iterations >= 0 &&
               ck.learning_rate > 0,
           "implausible dnn checkpoint scalars in " << path);
  ck.params = read_blob_group(in, "params");
  ck.velocity = read_blob_group(in, "velocity");
  LS_CHECK(ck.params.size() == ck.velocity.size(),
           "dnn checkpoint params/velocity blob count mismatch");
  return ck;
}

std::optional<DnnCheckpoint> try_load_dnn_checkpoint(const std::string& path) {
  if (!file_exists(path)) return std::nullopt;
  try {
    return load_dnn_checkpoint(path);
  } catch (const Error&) {
    return std::nullopt;  // corrupt snapshot: restart rather than poison
  }
}

double evaluate(Net& net, const ImageDataset& ds, index_t batch) {
  LS_CHECK(ds.size() > 0, "cannot evaluate on an empty dataset");
  index_t correct = 0;
  Tensor in;
  std::vector<index_t> labels;
  for (index_t begin = 0; begin < ds.size(); begin += batch) {
    const index_t count = std::min(batch, ds.size() - begin);
    ds.batch(begin, count, in, labels);
    net.forward(in);
    const std::vector<index_t> pred = net.predict();
    for (std::size_t i = 0; i < labels.size(); ++i) {
      if (pred[i] == labels[i]) ++correct;
    }
  }
  return static_cast<double>(correct) / static_cast<double>(ds.size());
}

double data_parallel_step(Net& net, SgdOptimizer& opt, const Tensor& batch,
                          const std::vector<index_t>& labels,
                          index_t workers) {
  LS_CHECK(workers >= 1, "need at least one worker");
  LS_CHECK(batch.n() % workers == 0,
           "batch size " << batch.n() << " not divisible by " << workers
                         << " workers");
  const index_t shard = batch.n() / workers;

  net.zero_grad();
  double loss_sum = 0.0;
  Tensor shard_in(shard, batch.c(), batch.h(), batch.w());
  std::vector<index_t> shard_labels;
  const index_t per_sample = batch.sample_size();
  for (index_t wkr = 0; wkr < workers; ++wkr) {
    const index_t begin = wkr * shard;
    std::copy(batch.data() + begin * per_sample,
              batch.data() + (begin + shard) * per_sample, shard_in.data());
    shard_labels.assign(labels.begin() + begin,
                        labels.begin() + begin + shard);
    // Each worker computes the mean gradient over its shard; the blob
    // accumulates across workers — that accumulation IS the allreduce sum.
    net.forward(shard_in);
    loss_sum += net.loss(shard_labels) * static_cast<double>(shard);
    net.backward(shard_in, shard_labels);
  }
  // W = W - eta * (sum_i dW_i) / P    (Section IV-B update rule)
  const real_t inv_workers = 1.0 / static_cast<real_t>(workers);
  for (ParamBlob* p : net.params()) {
    for (real_t& g : p->grad) g *= inv_workers;
  }
  opt.step();
  return loss_sum / static_cast<double>(batch.n());
}

DnnTrainResult train_dnn(
    Net& net, const CifarData& data, const DnnTrainConfig& config,
    const std::function<void(index_t, double, double)>& on_epoch) {
  LS_CHECK(config.batch_size >= 1, "batch size must be positive");
  LS_CHECK(config.batch_size % config.workers == 0,
           "batch size must be divisible by the worker count");
  const ImageDataset& train = data.train;
  LS_CHECK(train.size() >= config.batch_size,
           "training set smaller than one batch");

  Timer timer;
  SgdOptimizer opt(net.params(), config.learning_rate, config.momentum,
                   config.weight_decay);
  Rng rng(config.shuffle_seed);

  std::vector<index_t> order(static_cast<std::size_t>(train.size()));
  std::iota(order.begin(), order.end(), index_t{0});

  DnnTrainResult result;

  // Resume from an existing epoch snapshot. The shuffle stream is replayed
  // below (epochs before start_epoch re-shuffle without training), so the
  // resumed run sees the exact batch sequence of an uninterrupted one.
  index_t start_epoch = 0;
  if (!config.checkpoint_path.empty()) {
    if (const auto ck = try_load_dnn_checkpoint(config.checkpoint_path)) {
      const std::vector<ParamBlob*> blobs = net.params();
      bool compatible = ck->params.size() == blobs.size();
      for (std::size_t k = 0; compatible && k < blobs.size(); ++k) {
        compatible = ck->params[k].size() == blobs[k]->value.size();
      }
      if (compatible) {
        for (std::size_t k = 0; k < blobs.size(); ++k) {
          blobs[k]->value = ck->params[k];
        }
        opt.set_velocity(ck->velocity);
        opt.set_learning_rate(ck->learning_rate);
        start_epoch = std::min(ck->epochs_completed, config.max_epochs);
        result.iterations = ck->iterations;
        result.epochs_completed = start_epoch;
      }
    }
  }
  if (start_epoch >= config.max_epochs) {
    // Nothing left to train; report the restored model's quality.
    result.test_accuracy = evaluate(net, data.test);
    result.reached_target = config.target_accuracy > 0.0 &&
                            result.test_accuracy >= config.target_accuracy;
    result.seconds = timer.seconds();
    return result;
  }
  Tensor batch(config.batch_size, train.images.c(), train.images.h(),
               train.images.w());
  std::vector<index_t> labels(static_cast<std::size_t>(config.batch_size));
  const index_t per_sample = train.images.sample_size();
  const index_t batches_per_epoch = train.size() / config.batch_size;

  for (index_t epoch = 0; epoch < config.max_epochs; ++epoch) {
    if (epoch < start_epoch) {
      // Replay epoch: advance the shuffle stream only. The restored
      // learning rate already includes this epoch's multistep drops.
      shuffle(order.begin(), order.end(), rng);
      continue;
    }
    LS_FAILPOINT("dnn.trainer.epoch");
    // Multistep schedule: drop the learning rate every k epochs (Caffe's
    // cifar10_full solver drops by 10x late in training).
    if (config.lr_drop_every_epochs > 0 && epoch > 0 &&
        epoch % config.lr_drop_every_epochs == 0) {
      opt.set_learning_rate(opt.learning_rate() * config.lr_drop_factor);
    }
    shuffle(order.begin(), order.end(), rng);
    Timer epoch_timer;  // training portion only (excludes evaluation)
    const double epoch_start_us = trace::enabled() ? trace::now_us() : 0.0;
    double loss_acc = 0.0;
    for (index_t b = 0; b < batches_per_epoch; ++b) {
      // Gather the shuffled batch.
      for (index_t i = 0; i < config.batch_size; ++i) {
        const index_t src = order[static_cast<std::size_t>(
            b * config.batch_size + i)];
        std::copy(train.images.data() + src * per_sample,
                  train.images.data() + (src + 1) * per_sample,
                  batch.data() + i * per_sample);
        labels[static_cast<std::size_t>(i)] =
            train.labels[static_cast<std::size_t>(src)];
      }
      loss_acc +=
          data_parallel_step(net, opt, batch, labels, config.workers);
      ++result.iterations;

      if (config.eval_every_iters > 0 &&
          result.iterations % config.eval_every_iters == 0 &&
          config.target_accuracy > 0.0) {
        result.test_accuracy = evaluate(net, data.test);
        if (result.test_accuracy >= config.target_accuracy) {
          result.reached_target = true;
          result.final_train_loss = loss_acc / static_cast<double>(b + 1);
          result.epochs_completed = epoch;
          result.seconds = timer.seconds();
          return result;
        }
      }
    }
    const double epoch_seconds = epoch_timer.seconds();
    result.epochs_completed = epoch + 1;
    result.final_train_loss =
        loss_acc / static_cast<double>(batches_per_epoch);
    result.test_accuracy = evaluate(net, data.test);

    if (metrics::enabled()) {
      const double images =
          static_cast<double>(batches_per_epoch * config.batch_size);
      metrics::timer_record("dnn.epoch_seconds", epoch_seconds);
      metrics::counter_add("dnn.images_total",
                           batches_per_epoch * config.batch_size);
      if (epoch_seconds > 0.0) {
        metrics::gauge_set("dnn.images_per_second", images / epoch_seconds);
      }
      metrics::gauge_set("dnn.train_loss", result.final_train_loss);
      metrics::gauge_set("dnn.test_accuracy", result.test_accuracy);
    }
    if (trace::enabled()) {
      trace::emit_complete(
          "epoch:" + std::to_string(epoch + 1), "dnn", epoch_start_us,
          trace::now_us() - epoch_start_us,
          {{"train_loss", std::to_string(result.final_train_loss)},
           {"test_accuracy", std::to_string(result.test_accuracy)}});
      trace::emit_counter("dnn.train_loss", result.final_train_loss);
      trace::emit_counter("dnn.test_accuracy", result.test_accuracy);
    }
    if (!config.checkpoint_path.empty() &&
        config.checkpoint_every_epochs > 0 &&
        (epoch + 1) % config.checkpoint_every_epochs == 0) {
      DnnCheckpoint ck;
      ck.epochs_completed = epoch + 1;
      ck.iterations = result.iterations;
      ck.learning_rate = opt.learning_rate();
      for (ParamBlob* p : net.params()) ck.params.push_back(p->value);
      ck.velocity = opt.velocity();
      save_dnn_checkpoint(config.checkpoint_path, ck);
    }
    if (on_epoch) {
      on_epoch(epoch + 1, result.final_train_loss, result.test_accuracy);
    }
    if (config.target_accuracy > 0.0 &&
        result.test_accuracy >= config.target_accuracy) {
      result.reached_target = true;
      break;
    }
  }
  result.seconds = timer.seconds();
  if (metrics::enabled()) {
    metrics::timer_record("dnn.train_seconds", result.seconds);
    metrics::gauge_set("dnn.iterations",
                       static_cast<double>(result.iterations));
    metrics::gauge_set("dnn.epochs_completed",
                       static_cast<double>(result.epochs_completed));
  }
  return result;
}

}  // namespace ls
