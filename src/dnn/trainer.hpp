// Mini-batch DNN training loop, including the paper's data-parallel scheme
// (Section IV-B): "divide-and-conquer for the data and replication for the
// weights" — each of P workers computes gradients on B/P samples, a global
// sum-reduce combines them, and every worker applies the same update.
//
// On this substrate the P workers are simulated in-process: gradients are
// computed per shard and summed exactly as NCCL's allreduce would. The test
// suite asserts the P-worker result is bit-identical (up to FP associativity
// tolerance) to single-worker training with the same batch.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "dnn/cifar.hpp"
#include "dnn/net.hpp"
#include "dnn/sgd.hpp"

namespace ls {

/// Training hyper-parameters (the paper's B, eta, mu) plus the solver
/// details of Caffe's cifar10_full prototxt (weight decay, multistep LR).
struct DnnTrainConfig {
  index_t batch_size = 100;
  real_t learning_rate = 0.001;
  real_t momentum = 0.9;
  real_t weight_decay = 0.0;      ///< Caffe cifar10_full uses 0.004
  index_t lr_drop_every_epochs = 0;  ///< 0 = constant learning rate
  real_t lr_drop_factor = 0.1;       ///< multiplier at each drop
  index_t max_epochs = 10;
  double target_accuracy = 0.0;  ///< stop early once test accuracy reached
  index_t workers = 1;           ///< simulated data-parallel workers
  index_t eval_every_iters = 0;  ///< 0 = evaluate at epoch boundaries only
  std::uint64_t shuffle_seed = 99;
  /// Fault tolerance: when non-empty, an atomic CRC-protected snapshot
  /// (weights + momentum + progress) is written here every
  /// `checkpoint_every_epochs` epochs, and — if a valid snapshot already
  /// exists — training resumes from it instead of epoch 0. The shuffle
  /// stream is replayed deterministically, so a resumed run follows the
  /// exact batch sequence of an uninterrupted one.
  std::string checkpoint_path;
  index_t checkpoint_every_epochs = 1;
};

/// Outcome of a training run.
struct DnnTrainResult {
  index_t iterations = 0;
  index_t epochs_completed = 0;
  double final_train_loss = 0.0;
  double test_accuracy = 0.0;
  bool reached_target = false;
  double seconds = 0.0;
};

/// Resumable training state captured at an epoch boundary.
struct DnnCheckpoint {
  index_t epochs_completed = 0;
  index_t iterations = 0;
  real_t learning_rate = 0.0;  ///< after any multistep drops so far
  std::vector<std::vector<real_t>> params;    ///< blob values, blob order
  std::vector<std::vector<real_t>> velocity;  ///< momentum state
};

/// Writes a snapshot atomically (tmp + fsync + rename, CRC footer).
void save_dnn_checkpoint(const std::string& path, const DnnCheckpoint& ck);

/// Reads a snapshot; throws ls::Error on missing/corrupt/truncated files.
DnnCheckpoint load_dnn_checkpoint(const std::string& path);

/// Lenient load for resume paths: nullopt when missing or unusable.
std::optional<DnnCheckpoint> try_load_dnn_checkpoint(const std::string& path);

/// Classification accuracy of `net` on `ds` (batched evaluation).
double evaluate(Net& net, const ImageDataset& ds, index_t batch = 256);

/// Trains `net` on `data.train`, evaluating against `data.test`.
/// `on_epoch` (optional) is called after each epoch with (epoch, loss, acc).
DnnTrainResult train_dnn(
    Net& net, const CifarData& data, const DnnTrainConfig& config,
    const std::function<void(index_t, double, double)>& on_epoch = {});

/// One data-parallel gradient step on an explicit batch: splits the batch
/// over `workers` shards, accumulates each shard's gradients, sums (the
/// simulated allreduce), then applies one SGD step scaled to the full batch.
/// Returns the mean loss over the batch. Exposed for the equivalence tests.
double data_parallel_step(Net& net, SgdOptimizer& opt, const Tensor& batch,
                          const std::vector<index_t>& labels, index_t workers);

}  // namespace ls
