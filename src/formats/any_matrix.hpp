// Runtime-polymorphic matrix: the object the layout scheduler actually
// hands to the SVM solver. A std::variant over the five concrete formats
// keeps dispatch branch-predictable (no virtual calls in the SMSV loop —
// one visit per multiply, not per element).
#pragma once

#include <span>
#include <variant>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "common/types.hpp"
#include "formats/bcsr.hpp"
#include "formats/coo.hpp"
#include "formats/csc.hpp"
#include "formats/csr.hpp"
#include "formats/dense.hpp"
#include "formats/dia.hpp"
#include "formats/ell.hpp"
#include "formats/format.hpp"
#include "formats/hyb.hpp"
#include "formats/jds.hpp"
#include "formats/sparse_vector.hpp"

namespace ls {

/// A matrix stored in any of the five paper formats, with a uniform API.
class AnyMatrix {
 public:
  AnyMatrix() = default;
  AnyMatrix(DenseMatrix m) : m_(std::move(m)) {}
  AnyMatrix(CsrMatrix m) : m_(std::move(m)) {}
  AnyMatrix(CooMatrix m) : m_(std::move(m)) {}
  AnyMatrix(EllMatrix m) : m_(std::move(m)) {}
  AnyMatrix(DiaMatrix m) : m_(std::move(m)) {}
  AnyMatrix(CscMatrix m) : m_(std::move(m)) {}
  AnyMatrix(BcsrMatrix m) : m_(std::move(m)) {}
  AnyMatrix(HybMatrix m) : m_(std::move(m)) {}
  AnyMatrix(JdsMatrix m) : m_(std::move(m)) {}

  /// Materialises `coo` in the requested storage format.
  static AnyMatrix from_coo(const CooMatrix& coo, Format f) {
    switch (f) {
      case Format::kDEN: return AnyMatrix(DenseMatrix(coo));
      case Format::kCSR: return AnyMatrix(CsrMatrix(coo));
      case Format::kCOO: return AnyMatrix(coo);
      case Format::kELL: return AnyMatrix(EllMatrix(coo));
      case Format::kDIA: return AnyMatrix(DiaMatrix(coo));
      case Format::kCSC: return AnyMatrix(CscMatrix(coo));
      case Format::kBCSR: return AnyMatrix(BcsrMatrix(coo));
      case Format::kHYB: return AnyMatrix(HybMatrix(coo));
      case Format::kJDS: return AnyMatrix(JdsMatrix(coo));
    }
    throw Error("from_coo: invalid format");
  }

  Format format() const {
    return std::visit([](const auto& m) { return m.format(); }, m_);
  }

  index_t rows() const {
    return std::visit([](const auto& m) { return m.rows(); }, m_);
  }
  index_t cols() const {
    return std::visit([](const auto& m) { return m.cols(); }, m_);
  }
  index_t nnz() const {
    return std::visit([](const auto& m) { return m.nnz(); }, m_);
  }
  index_t stored_elements() const {
    return std::visit([](const auto& m) { return m.stored_elements(); }, m_);
  }
  std::size_t storage_bytes() const {
    return std::visit([](const auto& m) { return m.storage_bytes(); }, m_);
  }
  index_t work_flops() const {
    return std::visit([](const auto& m) { return m.work_flops(); }, m_);
  }

  /// y = A * w (dense workspace w of size cols; y of size rows).
  void multiply_dense(std::span<const real_t> w, std::span<real_t> y) const {
    std::visit([&](const auto& m) { m.multiply_dense(w, y); }, m_);
  }

  /// Batched SMSV: Y = A * W for `b` interleaved right-hand sides
  /// (W[j*b + k] = entry j of rhs k, Y[i*b + k] likewise). One traversal of
  /// the stored matrix serves all b vectors; each output element accumulates
  /// in the same order as multiply_dense, so results match the single-rhs
  /// loop to within at most a -0.0 vs +0.0 difference (CSC dead columns).
  void multiply_dense_batch(std::span<const real_t> w, index_t b,
                            std::span<real_t> y) const {
    LS_CHECK(b >= 1 && b <= kMaxSmsvBatch,
             "multiply_dense_batch: batch size " << b << " out of range [1, "
                                                 << kMaxSmsvBatch << "]");
    LS_CHECK(w.size() == static_cast<std::size_t>(cols()) *
                             static_cast<std::size_t>(b),
             "multiply_dense_batch: w has " << w.size() << " entries, want "
                                            << cols() << " x " << b);
    LS_CHECK(y.size() == static_cast<std::size_t>(rows()) *
                             static_cast<std::size_t>(b),
             "multiply_dense_batch: y has " << y.size() << " entries, want "
                                            << rows() << " x " << b);
    std::visit([&](const auto& m) { m.multiply_dense_batch(w, b, y); }, m_);
  }

  /// Extracts row i as a SparseVector.
  void gather_row(index_t i, SparseVector& out) const {
    std::visit([&](const auto& m) { m.gather_row(i, out); }, m_);
  }

  /// Gathers rows[k] into out[k] for every k, dispatching the format visit
  /// once and parallelising across rows (each SparseVector is private to
  /// its index, so the loop is race-free).
  void gather_rows_batch(std::span<const index_t> rows,
                         std::span<SparseVector> out) const {
    LS_CHECK(rows.size() == out.size(),
             "gather_rows_batch: " << rows.size() << " row indices but "
                                   << out.size() << " outputs");
    std::visit(
        [&](const auto& m) {
          parallel_for(static_cast<index_t>(rows.size()), [&](index_t k) {
            m.gather_row(rows[static_cast<std::size_t>(k)],
                         out[static_cast<std::size_t>(k)]);
          });
        },
        m_);
  }

  /// Lowers to canonical COO regardless of current format.
  CooMatrix to_coo() const {
    if (const auto* coo = std::get_if<CooMatrix>(&m_)) return *coo;
    return std::visit(
        [](const auto& m) -> CooMatrix {
          if constexpr (std::is_same_v<std::decay_t<decltype(m)>, CooMatrix>) {
            return m;
          } else {
            return m.to_coo();
          }
        },
        m_);
  }

  /// Direct access to a concrete format (throws std::bad_variant_access if
  /// the matrix is stored differently).
  template <class M>
  const M& as() const {
    return std::get<M>(m_);
  }

 private:
  std::variant<DenseMatrix, CsrMatrix, CooMatrix, EllMatrix, DiaMatrix,
               CscMatrix, BcsrMatrix, HybMatrix, JdsMatrix>
      m_;
};

}  // namespace ls
