#include "formats/bcsr.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <utility>

#include "common/error.hpp"
#include "common/parallel.hpp"

namespace ls {

BlockShapeChoice choose_block_shape(const CooMatrix& coo, index_t max_rows,
                                    index_t max_cols) {
  LS_CHECK(max_rows >= 1 && max_cols >= 1, "block shape bounds must be >= 1");
  const auto rows = coo.row_indices();
  const auto cols = coo.col_indices();
  const double nnz = static_cast<double>(coo.nnz());

  BlockShapeChoice best;
  double best_cost = 1e300;
  std::set<std::pair<index_t, index_t>> tiles;
  for (index_t r = 1; r <= max_rows; ++r) {
    for (index_t c = 1; c <= max_cols; ++c) {
      tiles.clear();
      for (std::size_t k = 0; k < rows.size(); ++k) {
        tiles.emplace(rows[k] / r, cols[k] / c);
      }
      const double slots =
          static_cast<double>(tiles.size()) * static_cast<double>(r * c);
      const double fill = nnz > 0 ? slots / nnz : 1.0;
      // Estimated cost per nonzero: `fill` multiply-adds, discounted by a
      // per-tile index-load amortisation (one index per r*c slots instead
      // of one per nonzero, as CSR pays). The 0.3 weight approximates the
      // index-load share of CSR's per-element cost.
      const double cost =
          fill * (1.0 + 0.3 / static_cast<double>(r * c)) /
          (1.0 + 0.3);
      if (cost < best_cost) {
        best_cost = cost;
        best = {r, c, fill};
      }
    }
  }
  return best;
}

BcsrMatrix::BcsrMatrix(const CooMatrix& coo, index_t block_rows,
                       index_t block_cols)
    : rows_(coo.rows()), cols_(coo.cols()), nnz_(coo.nnz()),
      br_(block_rows), bc_(block_cols) {
  LS_CHECK(br_ >= 1 && bc_ >= 1, "block shape must be at least 1 x 1");

  const auto rows = coo.row_indices();
  const auto cols = coo.col_indices();
  const auto vals = coo.values();

  // Identify occupied tiles. COO order is row-major, so (block row, block
  // col) pairs arrive nearly sorted; a map keeps them canonical.
  std::map<std::pair<index_t, index_t>, index_t> tile_ids;
  for (std::size_t k = 0; k < vals.size(); ++k) {
    tile_ids.emplace(std::make_pair(rows[k] / br_, cols[k] / bc_), 0);
  }

  const index_t nblocks = static_cast<index_t>(tile_ids.size());
  ptr_.resize(static_cast<std::size_t>(block_row_count()) + 1);
  bcol_.resize(static_cast<std::size_t>(nblocks));
  values_.resize(static_cast<std::size_t>(nblocks * br_ * bc_));

  index_t id = 0;
  for (auto& [key, tile] : tile_ids) {
    tile = id;
    bcol_[static_cast<std::size_t>(id)] = key.second;
    ++ptr_[static_cast<std::size_t>(key.first) + 1];
    ++id;
  }
  for (std::size_t i = 1; i < ptr_.size(); ++i) ptr_[i] += ptr_[i - 1];

  for (std::size_t k = 0; k < vals.size(); ++k) {
    const index_t tile = tile_ids[{rows[k] / br_, cols[k] / bc_}];
    const index_t local =
        (rows[k] % br_) * bc_ + (cols[k] % bc_);
    values_[static_cast<std::size_t>(tile * br_ * bc_ + local)] = vals[k];
  }
}

void BcsrMatrix::multiply_dense(std::span<const real_t> w,
                                std::span<real_t> y) const {
  LS_ASSERT(w.size() == static_cast<std::size_t>(cols_), "w size mismatch");
  LS_ASSERT(y.size() == static_cast<std::size_t>(rows_), "y size mismatch");
  std::fill(y.begin(), y.end(), real_t{0});

  const real_t* __restrict wd = w.data();
  const real_t* __restrict vd = values_.data();
  const index_t* __restrict bcd = bcol_.data();
  const index_t* __restrict pd = ptr_.data();
  const index_t tile_size = br_ * bc_;

  parallel_for(block_row_count(), [&](index_t bi) {
    const index_t row0 = bi * br_;
    const index_t rlim = std::min(br_, rows_ - row0);
    for (index_t t = pd[bi]; t < pd[bi + 1]; ++t) {
      const index_t col0 = bcd[t] * bc_;
      const index_t clim = std::min(bc_, cols_ - col0);
      const real_t* __restrict tile = vd + t * tile_size;
      // Dense r x c micro-kernel: unit-stride over the tile, one column
      // index load per br*bc multiply-adds (the BCSR advantage over CSR).
      for (index_t r = 0; r < rlim; ++r) {
        real_t acc = 0.0;
        const real_t* __restrict trow = tile + r * bc_;
        for (index_t c = 0; c < clim; ++c) {
          acc += trow[c] * wd[col0 + c];
        }
        y[static_cast<std::size_t>(row0 + r)] += acc;
      }
    }
  });
}

void BcsrMatrix::multiply_dense_batch(std::span<const real_t> w, index_t b,
                                      std::span<real_t> y) const {
  LS_ASSERT(b >= 1 && b <= kMaxSmsvBatch, "batch size out of range");
  LS_ASSERT(w.size() == static_cast<std::size_t>(cols_) *
                            static_cast<std::size_t>(b),
            "w size mismatch");
  LS_ASSERT(y.size() == static_cast<std::size_t>(rows_) *
                            static_cast<std::size_t>(b),
            "y size mismatch");
  std::fill(y.begin(), y.end(), real_t{0});

  const real_t* __restrict wd = w.data();
  real_t* __restrict yd = y.data();
  const real_t* __restrict vd = values_.data();
  const index_t* __restrict bcd = bcol_.data();
  const index_t* __restrict pd = ptr_.data();
  const index_t tile_size = br_ * bc_;

  parallel_for(block_row_count(), [&](index_t bi) {
    const index_t row0 = bi * br_;
    const index_t rlim = std::min(br_, rows_ - row0);
    for (index_t t = pd[bi]; t < pd[bi + 1]; ++t) {
      const index_t col0 = bcd[t] * bc_;
      const index_t clim = std::min(bc_, cols_ - col0);
      const real_t* __restrict tile = vd + t * tile_size;
      for (index_t r = 0; r < rlim; ++r) {
        real_t acc[kMaxSmsvBatch] = {};
        const real_t* __restrict trow = tile + r * bc_;
        for (index_t c = 0; c < clim; ++c) {
          const real_t v = trow[c];
          const real_t* __restrict wj =
              wd + static_cast<std::size_t>((col0 + c) * b);
          for (index_t q = 0; q < b; ++q) acc[q] += v * wj[q];
        }
        real_t* __restrict yi =
            yd + static_cast<std::size_t>((row0 + r) * b);
        for (index_t q = 0; q < b; ++q) yi[q] += acc[q];
      }
    }
  });
}

void BcsrMatrix::gather_row(index_t i, SparseVector& out) const {
  LS_CHECK(i >= 0 && i < rows_, "gather_row index out of range");
  out.clear();
  const index_t bi = i / br_;
  const index_t r = i % br_;
  // Block columns within a block row are sorted, so output stays sorted.
  for (index_t t = ptr_[static_cast<std::size_t>(bi)];
       t < ptr_[static_cast<std::size_t>(bi) + 1]; ++t) {
    const index_t col0 = bcol_[static_cast<std::size_t>(t)] * bc_;
    const real_t* tile =
        values_.data() + static_cast<std::size_t>(t * br_ * bc_);
    for (index_t c = 0; c < bc_ && col0 + c < cols_; ++c) {
      const real_t v = tile[r * bc_ + c];
      if (v != 0.0) out.push_back(col0 + c, v);
    }
  }
}

CooMatrix BcsrMatrix::to_coo() const {
  std::vector<Triplet> triplets;
  triplets.reserve(static_cast<std::size_t>(nnz_));
  for (index_t bi = 0; bi < block_row_count(); ++bi) {
    for (index_t t = ptr_[static_cast<std::size_t>(bi)];
         t < ptr_[static_cast<std::size_t>(bi) + 1]; ++t) {
      const index_t row0 = bi * br_;
      const index_t col0 = bcol_[static_cast<std::size_t>(t)] * bc_;
      const real_t* tile =
          values_.data() + static_cast<std::size_t>(t * br_ * bc_);
      for (index_t r = 0; r < br_ && row0 + r < rows_; ++r) {
        for (index_t c = 0; c < bc_ && col0 + c < cols_; ++c) {
          const real_t v = tile[r * bc_ + c];
          if (v != 0.0) triplets.push_back({row0 + r, col0 + c, v});
        }
      }
    }
  }
  return CooMatrix(rows_, cols_, std::move(triplets));
}

}  // namespace ls
