// BCSR (block compressed sparse row) — the second derived format the paper
// names (Section III-A: "block variants like BCSR are often used when there
// are many dense sub-blocks in a sparse matrix").
//
// The matrix is tiled into r x c blocks; any tile containing a nonzero is
// stored densely. Register-blocked SMSV then runs an unrolled dense
// micro-kernel per tile — fewer index loads per nonzero than CSR at the
// price of explicit zero fill. This is OSKI's core trade-off, which the
// related-work section contrasts against; the fill ratio reported by
// fill_ratio() is exactly OSKI's tuning parameter.
#pragma once

#include <span>

#include "common/aligned_buffer.hpp"
#include "common/types.hpp"
#include "formats/coo.hpp"
#include "formats/format.hpp"
#include "formats/sparse_vector.hpp"

namespace ls {

/// Result of the OSKI-style block-shape search.
struct BlockShapeChoice {
  index_t rows = 1;
  index_t cols = 1;
  double fill_ratio = 1.0;  ///< stored slots / nnz at the chosen shape
};

/// Scans block shapes r x c (1 <= r <= max_rows, 1 <= c <= max_cols) and
/// returns the one minimising estimated SMSV cost: fill_ratio divided by a
/// mild per-tile amortisation credit (larger tiles need fewer index loads)
/// — OSKI's register-blocking heuristic. O(nnz) per candidate shape.
BlockShapeChoice choose_block_shape(const CooMatrix& coo,
                                    index_t max_rows = 4,
                                    index_t max_cols = 4);

/// Block-CSR matrix with run-time block shape (default 4 x 4).
class BcsrMatrix {
 public:
  BcsrMatrix() = default;

  /// Builds from canonical COO with the given block shape.
  explicit BcsrMatrix(const CooMatrix& coo, index_t block_rows = 4,
                      index_t block_cols = 4);

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  index_t nnz() const { return nnz_; }
  static constexpr Format format() { return Format::kBCSR; }

  index_t block_rows() const { return br_; }
  index_t block_cols() const { return bc_; }
  index_t num_blocks() const { return static_cast<index_t>(bcol_.size()); }

  /// Stored slots / true nonzeros — OSKI's fill ratio (>= 1).
  double fill_ratio() const {
    return nnz_ > 0 ? static_cast<double>(stored_elements()) /
                          static_cast<double>(nnz_)
                    : 1.0;
  }

  index_t stored_elements() const { return num_blocks() * br_ * bc_; }

  /// Bytes: dense tiles + one column index per tile + block-row pointer.
  std::size_t storage_bytes() const {
    return values_.size_bytes() + bcol_.size_bytes() + ptr_.size_bytes();
  }

  index_t work_flops() const { return stored_elements(); }

  /// y = A * w: block-row-parallel, dense r x c micro-kernel per tile.
  void multiply_dense(std::span<const real_t> w, std::span<real_t> y) const;

  /// Batched SMSV: Y = A * W for `b` interleaved right-hand sides
  /// (W[j*b + k], Y[i*b + k], 1 <= b <= kMaxSmsvBatch); each tile is
  /// applied once to all b vectors via stack accumulators. Accumulation
  /// order per output element matches multiply_dense.
  void multiply_dense_batch(std::span<const real_t> w, index_t b,
                            std::span<real_t> y) const;

  /// Extracts row i (skipping fill zeros).
  void gather_row(index_t i, SparseVector& out) const;

  /// Lowers to canonical COO (fill dropped).
  CooMatrix to_coo() const;

 private:
  index_t block_row_count() const { return (rows_ + br_ - 1) / br_; }

  index_t rows_ = 0;
  index_t cols_ = 0;
  index_t nnz_ = 0;
  index_t br_ = 4;
  index_t bc_ = 4;
  AlignedBuffer<index_t> ptr_;    // block-row pointer (block_row_count + 1)
  AlignedBuffer<index_t> bcol_;   // block-column index per tile
  AlignedBuffer<real_t> values_;  // num_blocks * br * bc dense tiles
};

}  // namespace ls
