#include "formats/coo.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/parallel.hpp"

namespace ls {

CooMatrix::CooMatrix(index_t rows, index_t cols,
                     std::vector<Triplet> triplets)
    : rows_(rows), cols_(cols) {
  LS_CHECK(rows >= 0 && cols >= 0, "negative matrix dimensions");
  for (const Triplet& t : triplets) {
    LS_CHECK(t.row >= 0 && t.row < rows,
             "triplet row " << t.row << " out of range [0, " << rows << ")");
    LS_CHECK(t.col >= 0 && t.col < cols,
             "triplet col " << t.col << " out of range [0, " << cols << ")");
  }
  std::sort(triplets.begin(), triplets.end(),
            [](const Triplet& a, const Triplet& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });

  // Sum duplicates and drop zeros in one compaction pass.
  std::vector<Triplet> compact;
  compact.reserve(triplets.size());
  for (const Triplet& t : triplets) {
    if (!compact.empty() && compact.back().row == t.row &&
        compact.back().col == t.col) {
      compact.back().value += t.value;
    } else {
      compact.push_back(t);
    }
  }
  std::erase_if(compact, [](const Triplet& t) { return t.value == 0.0; });

  row_.resize(compact.size());
  col_.resize(compact.size());
  values_.resize(compact.size());
  for (std::size_t k = 0; k < compact.size(); ++k) {
    row_[k] = compact[k].row;
    col_[k] = compact[k].col;
    values_[k] = compact[k].value;
  }
}

void CooMatrix::multiply_dense(std::span<const real_t> w,
                               std::span<real_t> y) const {
  LS_ASSERT(w.size() == static_cast<std::size_t>(cols_), "w size mismatch");
  LS_ASSERT(y.size() == static_cast<std::size_t>(rows_), "y size mismatch");
  std::fill(y.begin(), y.end(), real_t{0});

  const index_t n = nnz();
  const int t = num_threads();
  if (t <= 1 || n < 4096) {
    // Serial streaming accumulation: one multiply-add per stored nonzero,
    // no per-row loop overhead. This is the property Fig. 4 relies on.
    for (index_t k = 0; k < n; ++k) {
      y[static_cast<std::size_t>(row_[static_cast<std::size_t>(k)])] +=
          values_[static_cast<std::size_t>(k)] *
          w[static_cast<std::size_t>(col_[static_cast<std::size_t>(k)])];
    }
    return;
  }

  // Parallel path: split the nonzero range into chunks, then snap each chunk
  // start forward to a row boundary so no output row is shared by threads.
  // Because COO partitions by *nonzeros* (not rows), the work per thread is
  // balanced even when row lengths are highly skewed — the reason the paper
  // prefers COO for high-vdim matrices.
  std::vector<index_t> starts(static_cast<std::size_t>(t) + 1);
  for (int c = 0; c <= t; ++c) {
    index_t s = n * c / t;
    while (s > 0 && s < n && row_[static_cast<std::size_t>(s)] ==
                                 row_[static_cast<std::size_t>(s - 1)]) {
      ++s;
    }
    starts[static_cast<std::size_t>(c)] = s;
  }
  parallel_for(t, [&](index_t c) {
    const index_t lo = starts[static_cast<std::size_t>(c)];
    const index_t hi = starts[static_cast<std::size_t>(c) + 1];
    for (index_t k = lo; k < hi; ++k) {
      y[static_cast<std::size_t>(row_[static_cast<std::size_t>(k)])] +=
          values_[static_cast<std::size_t>(k)] *
          w[static_cast<std::size_t>(col_[static_cast<std::size_t>(k)])];
    }
  });
}

void CooMatrix::multiply_dense_batch(std::span<const real_t> w, index_t b,
                                     std::span<real_t> y) const {
  LS_ASSERT(b >= 1 && b <= kMaxSmsvBatch, "batch size out of range");
  LS_ASSERT(w.size() == static_cast<std::size_t>(cols_) *
                            static_cast<std::size_t>(b),
            "w size mismatch");
  LS_ASSERT(y.size() == static_cast<std::size_t>(rows_) *
                            static_cast<std::size_t>(b),
            "y size mismatch");
  std::fill(y.begin(), y.end(), real_t{0});

  const real_t* __restrict wd = w.data();
  real_t* __restrict yd = y.data();
  const auto apply = [&](index_t lo, index_t hi) {
    for (index_t k = lo; k < hi; ++k) {
      const real_t v = values_[static_cast<std::size_t>(k)];
      const real_t* __restrict wj =
          wd + static_cast<std::size_t>(col_[static_cast<std::size_t>(k)] * b);
      real_t* __restrict yi =
          yd + static_cast<std::size_t>(row_[static_cast<std::size_t>(k)] * b);
      for (index_t q = 0; q < b; ++q) yi[q] += v * wj[q];
    }
  };

  const index_t n = nnz();
  const int t = num_threads();
  if (t <= 1 || n < 4096) {
    apply(0, n);
    return;
  }

  // Same row-aligned chunking as multiply_dense: no output row is shared.
  std::vector<index_t> starts(static_cast<std::size_t>(t) + 1);
  for (int c = 0; c <= t; ++c) {
    index_t s = n * c / t;
    while (s > 0 && s < n && row_[static_cast<std::size_t>(s)] ==
                                 row_[static_cast<std::size_t>(s - 1)]) {
      ++s;
    }
    starts[static_cast<std::size_t>(c)] = s;
  }
  parallel_for(t, [&](index_t c) {
    apply(starts[static_cast<std::size_t>(c)],
          starts[static_cast<std::size_t>(c) + 1]);
  });
}

void CooMatrix::gather_row(index_t i, SparseVector& out) const {
  LS_CHECK(i >= 0 && i < rows_, "gather_row index out of range");
  out.clear();
  const index_t* begin = row_.data();
  const index_t* end = row_.data() + row_.size();
  const index_t* lo = std::lower_bound(begin, end, i);
  const index_t* hi = std::upper_bound(lo, end, i);
  for (const index_t* p = lo; p != hi; ++p) {
    const std::size_t k = static_cast<std::size_t>(p - begin);
    out.push_back(col_[k], values_[k]);
  }
}

void CooMatrix::gather_rows_batch(std::span<const index_t> rows,
                                  std::span<SparseVector> out) const {
  LS_CHECK(rows.size() == out.size(),
           "gather_rows_batch: " << rows.size() << " row ids but "
                                 << out.size() << " output slots");
  parallel_for(static_cast<index_t>(rows.size()), [&](index_t k) {
    gather_row(rows[static_cast<std::size_t>(k)],
               out[static_cast<std::size_t>(k)]);
  });
}

}  // namespace ls
