// COO (coordinate) format: parallel row/col/value arrays, sorted
// row-major. COO is also the conversion hub — every other format can be
// built from and lowered to canonical COO, which keeps the conversion
// matrix (5x5) at 2*5 implementations instead of 25.
#pragma once

#include <span>
#include <vector>

#include "common/aligned_buffer.hpp"
#include "common/types.hpp"
#include "formats/format.hpp"
#include "formats/sparse_vector.hpp"

namespace ls {

/// One nonzero element during matrix assembly.
struct Triplet {
  index_t row = 0;
  index_t col = 0;
  real_t value = 0.0;
};

/// Canonical coordinate-format sparse matrix (sorted by row then column,
/// duplicates summed, explicit zeros dropped at construction).
class CooMatrix {
 public:
  CooMatrix() = default;

  /// Builds a canonical COO matrix from arbitrary-order triplets.
  /// Duplicate (row, col) entries are summed; zero values are dropped.
  CooMatrix(index_t rows, index_t cols, std::vector<Triplet> triplets);

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  index_t nnz() const { return static_cast<index_t>(values_.size()); }
  static constexpr Format format() { return Format::kCOO; }

  std::span<const index_t> row_indices() const {
    return {row_.data(), row_.size()};
  }
  std::span<const index_t> col_indices() const {
    return {col_.data(), col_.size()};
  }
  std::span<const real_t> values() const {
    return {values_.data(), values_.size()};
  }

  /// Number of stored value slots. COO stores exactly nnz values (plus two
  /// index arrays; see storage_bytes for the Table II accounting).
  index_t stored_elements() const { return nnz(); }

  /// Total bytes of the data + row + col arrays (Table II: 3 * nnz words).
  std::size_t storage_bytes() const {
    return values_.size_bytes() + row_.size_bytes() + col_.size_bytes();
  }

  /// Multiply-add operations performed by one multiply_dense call.
  index_t work_flops() const { return nnz(); }

  /// y = A * w for a dense workspace w (size cols). y must have size rows
  /// and is fully overwritten. Parallelised over row-aligned nonzero chunks
  /// so no two threads write the same output row.
  void multiply_dense(std::span<const real_t> w, std::span<real_t> y) const;

  /// Batched SMSV: Y = A * W for `b` interleaved right-hand sides
  /// (W[j*b + k], Y[i*b + k], 1 <= b <= kMaxSmsvBatch); one pass over the
  /// triplets serves all b vectors. Accumulation order per output element
  /// matches multiply_dense.
  void multiply_dense_batch(std::span<const real_t> w, index_t b,
                            std::span<real_t> y) const;

  /// Extracts row i as a sparse vector (appends into `out` after clearing).
  /// COO row extraction uses binary search over the sorted row array.
  void gather_row(index_t i, SparseVector& out) const;

  /// Gathers rows[k] into out[k] for every k (parallel across rows). The
  /// batched entry point the SVM layers use to amortise per-row dispatch.
  void gather_rows_batch(std::span<const index_t> rows,
                         std::span<SparseVector> out) const;

 private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  AlignedBuffer<index_t> row_;
  AlignedBuffer<index_t> col_;
  AlignedBuffer<real_t> values_;
};

}  // namespace ls
