#include "formats/csc.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace ls {

CscMatrix::CscMatrix(const CooMatrix& coo)
    : rows_(coo.rows()), cols_(coo.cols()) {
  const auto rows = coo.row_indices();
  const auto cols = coo.col_indices();
  const auto vals = coo.values();
  const std::size_t n = vals.size();

  ptr_.resize(static_cast<std::size_t>(cols_) + 1);
  row_.resize(n);
  values_.resize(n);

  for (std::size_t k = 0; k < n; ++k) {
    ++ptr_[static_cast<std::size_t>(cols[k]) + 1];
  }
  for (std::size_t j = 1; j < ptr_.size(); ++j) ptr_[j] += ptr_[j - 1];

  // Fill pass with a moving cursor per column; COO's row-major order makes
  // the row indices within each column come out sorted.
  std::vector<index_t> cursor(ptr_.data(), ptr_.data() + cols_);
  for (std::size_t k = 0; k < n; ++k) {
    const auto slot =
        static_cast<std::size_t>(cursor[static_cast<std::size_t>(cols[k])]++);
    row_[slot] = rows[k];
    values_[slot] = vals[k];
  }
}

void CscMatrix::multiply_dense(std::span<const real_t> w,
                               std::span<real_t> y) const {
  LS_ASSERT(w.size() == static_cast<std::size_t>(cols_), "w size mismatch");
  LS_ASSERT(y.size() == static_cast<std::size_t>(rows_), "y size mismatch");
  std::fill(y.begin(), y.end(), real_t{0});
  const index_t* __restrict rd = row_.data();
  const real_t* __restrict vd = values_.data();
  const index_t* __restrict pd = ptr_.data();
  // Column-outer loop: serial because distinct columns scatter into shared
  // y entries (the data-parallel axis of CSC is the output vector, which
  // would need atomics; the scheduler accounts for that in its makespan
  // model by treating CSC as nonzero-work with scatter cost).
  for (index_t j = 0; j < cols_; ++j) {
    const real_t wj = w[static_cast<std::size_t>(j)];
    if (wj == 0.0) continue;  // sparse right-hand side: skip dead columns
    const index_t b = pd[j];
    const index_t e = pd[j + 1];
    for (index_t k = b; k < e; ++k) {
      y[static_cast<std::size_t>(rd[k])] += vd[k] * wj;
    }
  }
}

void CscMatrix::multiply_dense_batch(std::span<const real_t> w, index_t b,
                                     std::span<real_t> y) const {
  LS_ASSERT(b >= 1 && b <= kMaxSmsvBatch, "batch size out of range");
  LS_ASSERT(w.size() == static_cast<std::size_t>(cols_) *
                            static_cast<std::size_t>(b),
            "w size mismatch");
  LS_ASSERT(y.size() == static_cast<std::size_t>(rows_) *
                            static_cast<std::size_t>(b),
            "y size mismatch");
  std::fill(y.begin(), y.end(), real_t{0});
  const index_t* __restrict rd = row_.data();
  const real_t* __restrict vd = values_.data();
  const index_t* __restrict pd = ptr_.data();
  const real_t* __restrict wd = w.data();
  real_t* __restrict yd = y.data();
  // Column-outer, serial, like multiply_dense. A column is dead only when
  // all b right-hand sides are zero there; live columns update every rhs so
  // each output element sees columns in the same order as the single-rhs
  // loop (zero terms contribute exactly 0 either way).
  for (index_t j = 0; j < cols_; ++j) {
    const real_t* __restrict wj = wd + static_cast<std::size_t>(j * b);
    bool live = false;
    for (index_t q = 0; q < b; ++q) {
      if (wj[q] != 0.0) {
        live = true;
        break;
      }
    }
    if (!live) continue;
    const index_t lo = pd[j];
    const index_t hi = pd[j + 1];
    for (index_t k = lo; k < hi; ++k) {
      const real_t v = vd[k];
      real_t* __restrict yi = yd + static_cast<std::size_t>(rd[k] * b);
      for (index_t q = 0; q < b; ++q) yi[q] += v * wj[q];
    }
  }
}

void CscMatrix::gather_row(index_t i, SparseVector& out) const {
  LS_CHECK(i >= 0 && i < rows_, "gather_row index out of range");
  out.clear();
  for (index_t j = 0; j < cols_; ++j) {
    const index_t* begin = row_.data() + ptr_[static_cast<std::size_t>(j)];
    const index_t* end = row_.data() + ptr_[static_cast<std::size_t>(j) + 1];
    const index_t* hit = std::lower_bound(begin, end, i);
    if (hit != end && *hit == i) {
      out.push_back(j, values_[static_cast<std::size_t>(hit - row_.data())]);
    }
  }
}

CooMatrix CscMatrix::to_coo() const {
  std::vector<Triplet> triplets;
  triplets.reserve(static_cast<std::size_t>(nnz()));
  for (index_t j = 0; j < cols_; ++j) {
    for (index_t k = ptr_[static_cast<std::size_t>(j)];
         k < ptr_[static_cast<std::size_t>(j) + 1]; ++k) {
      triplets.push_back({row_[static_cast<std::size_t>(k)], j,
                          values_[static_cast<std::size_t>(k)]});
    }
  }
  return CooMatrix(rows_, cols_, std::move(triplets));
}

}  // namespace ls
