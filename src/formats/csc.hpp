// CSC (compressed sparse column) — the first of the paper's "derived"
// formats (Section III-A: "the CSC format is similar to the CSR format.
// The only difference is that the columns are used instead of the rows").
//
// For the SMSV y = A * w, CSC iterates columns and scatters AXPY updates
// into y; when the right-hand side is sparse (a gathered row), CSC can skip
// every column where w is zero — an access pattern none of the five basic
// formats offers. The scheduler exposes CSC through the extended format
// list (see format.hpp).
#pragma once

#include <span>

#include "common/aligned_buffer.hpp"
#include "common/types.hpp"
#include "formats/coo.hpp"
#include "formats/format.hpp"
#include "formats/sparse_vector.hpp"

namespace ls {

/// Compressed-sparse-column matrix.
class CscMatrix {
 public:
  CscMatrix() = default;

  /// Builds from canonical COO.
  explicit CscMatrix(const CooMatrix& coo);

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  index_t nnz() const { return static_cast<index_t>(values_.size()); }
  static constexpr Format format() { return Format::kCSC; }

  std::span<const index_t> col_ptr() const { return {ptr_.data(), ptr_.size()}; }
  std::span<const index_t> row_indices() const {
    return {row_.data(), row_.size()};
  }
  std::span<const real_t> values() const {
    return {values_.data(), values_.size()};
  }

  /// Number of nonzeros in column j.
  index_t col_nnz(index_t j) const {
    return ptr_[static_cast<std::size_t>(j) + 1] -
           ptr_[static_cast<std::size_t>(j)];
  }

  index_t stored_elements() const { return nnz(); }

  /// Bytes for data + row indices + column pointer (2*nnz + N + 1 words).
  std::size_t storage_bytes() const {
    return values_.size_bytes() + row_.size_bytes() + ptr_.size_bytes();
  }

  index_t work_flops() const { return nnz(); }

  /// y = A * w: column-outer AXPY accumulation. Columns whose w entry is
  /// exactly zero are skipped entirely — with a gathered-row workspace the
  /// effective work is sum of col_nnz over the row's support only.
  void multiply_dense(std::span<const real_t> w, std::span<real_t> y) const;

  /// Batched SMSV: Y = A * W for `b` interleaved right-hand sides
  /// (W[j*b + k], Y[i*b + k], 1 <= b <= kMaxSmsvBatch). A column is skipped
  /// only when all b of its w entries are zero, so each surviving output
  /// element accumulates in multiply_dense order.
  void multiply_dense_batch(std::span<const real_t> w, index_t b,
                            std::span<real_t> y) const;

  /// Extracts row i (O(nnz of the row) via per-column binary searches —
  /// CSC's weak spot; the kernel engine caches gathered rows).
  void gather_row(index_t i, SparseVector& out) const;

  /// Lowers to canonical COO.
  CooMatrix to_coo() const;

 private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  AlignedBuffer<index_t> ptr_;    // cols + 1 entries
  AlignedBuffer<index_t> row_;    // nnz entries
  AlignedBuffer<real_t> values_;  // nnz entries
};

}  // namespace ls
