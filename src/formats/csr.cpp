#include "formats/csr.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "kernels/simd.hpp"

namespace ls {

CsrMatrix::CsrMatrix(const CooMatrix& coo)
    : rows_(coo.rows()), cols_(coo.cols()) {
  const auto rows = coo.row_indices();
  const auto cols = coo.col_indices();
  const auto vals = coo.values();
  const std::size_t n = vals.size();

  ptr_.resize(static_cast<std::size_t>(rows_) + 1);
  col_.resize(n);
  values_.resize(n);

  // Counting pass: COO is already row-sorted, so a single sweep fills both
  // the pointer array and the per-row segments.
  for (std::size_t k = 0; k < n; ++k) {
    ++ptr_[static_cast<std::size_t>(rows[k]) + 1];
  }
  for (std::size_t i = 1; i < ptr_.size(); ++i) ptr_[i] += ptr_[i - 1];
  for (std::size_t k = 0; k < n; ++k) {
    col_[k] = cols[k];
    values_[k] = vals[k];
  }
}

void CsrMatrix::multiply_dense(std::span<const real_t> w,
                               std::span<real_t> y) const {
  LS_ASSERT(w.size() == static_cast<std::size_t>(cols_), "w size mismatch");
  LS_ASSERT(y.size() == static_cast<std::size_t>(rows_), "y size mismatch");
  const real_t* __restrict wd = w.data();
  const index_t* __restrict cd = col_.data();
  const real_t* __restrict vd = values_.data();
  const index_t* __restrict pd = ptr_.data();
  const auto& kt = simd::kernels();
  parallel_for(rows_, [&](index_t i) {
    const index_t b = pd[i];
    const index_t e = pd[i + 1];
    y[static_cast<std::size_t>(i)] = kt.sparse_row_dot(vd + b, cd + b, e - b, wd);
  });
}

void CsrMatrix::multiply_dense_batch(std::span<const real_t> w, index_t b,
                                     std::span<real_t> y) const {
  LS_ASSERT(b >= 1 && b <= kMaxSmsvBatch, "batch size out of range");
  LS_ASSERT(w.size() == static_cast<std::size_t>(cols_) *
                            static_cast<std::size_t>(b),
            "w size mismatch");
  LS_ASSERT(y.size() == static_cast<std::size_t>(rows_) *
                            static_cast<std::size_t>(b),
            "y size mismatch");
  const real_t* __restrict wd = w.data();
  const index_t* __restrict cd = col_.data();
  const real_t* __restrict vd = values_.data();
  const index_t* __restrict pd = ptr_.data();
  const auto& kt = simd::kernels();
  parallel_for(rows_, [&](index_t i) {
    const index_t lo = pd[i];
    const index_t hi = pd[i + 1];
    real_t* __restrict yi = y.data() + static_cast<std::size_t>(i * b);
    kt.sparse_row_batch(vd + lo, cd + lo, hi - lo, wd, b, yi);
  });
}

real_t CsrMatrix::row_dot_dense(index_t i, std::span<const real_t> w) const {
  LS_ASSERT(i >= 0 && i < rows_, "row index out of range");
  const auto cols = row_cols(i);
  const auto vals = row_values(i);
  return simd::kernels().sparse_row_dot(
      vals.data(), cols.data(), static_cast<index_t>(cols.size()), w.data());
}

void CsrMatrix::gather_row(index_t i, SparseVector& out) const {
  LS_CHECK(i >= 0 && i < rows_, "gather_row index out of range");
  out.clear();
  const auto cols = row_cols(i);
  const auto vals = row_values(i);
  for (std::size_t k = 0; k < cols.size(); ++k) {
    out.push_back(cols[k], vals[k]);
  }
}

CooMatrix CsrMatrix::to_coo() const {
  std::vector<Triplet> triplets;
  triplets.reserve(static_cast<std::size_t>(nnz()));
  for (index_t i = 0; i < rows_; ++i) {
    const auto cols = row_cols(i);
    const auto vals = row_values(i);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      triplets.push_back({i, cols[k], vals[k]});
    }
  }
  return CooMatrix(rows_, cols_, std::move(triplets));
}

}  // namespace ls
