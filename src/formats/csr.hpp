// CSR (compressed sparse row): LIBSVM's fixed choice and the most common
// general-purpose sparse format. Rows are contiguous, so row gathers are
// O(1) views and the SMSV loop parallelises over rows.
#pragma once

#include <span>

#include "common/aligned_buffer.hpp"
#include "common/types.hpp"
#include "formats/coo.hpp"
#include "formats/format.hpp"
#include "formats/sparse_vector.hpp"

namespace ls {

/// Compressed-sparse-row matrix.
class CsrMatrix {
 public:
  CsrMatrix() = default;

  /// Builds from canonical COO (already sorted, deduplicated).
  explicit CsrMatrix(const CooMatrix& coo);

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  index_t nnz() const { return static_cast<index_t>(values_.size()); }
  static constexpr Format format() { return Format::kCSR; }

  std::span<const index_t> row_ptr() const { return {ptr_.data(), ptr_.size()}; }
  std::span<const index_t> col_indices() const {
    return {col_.data(), col_.size()};
  }
  std::span<const real_t> values() const {
    return {values_.data(), values_.size()};
  }

  /// Number of nonzeros in row i (the paper's dim_i).
  index_t row_nnz(index_t i) const {
    return ptr_[static_cast<std::size_t>(i) + 1] -
           ptr_[static_cast<std::size_t>(i)];
  }

  /// Zero-copy view of row i's column indices.
  std::span<const index_t> row_cols(index_t i) const {
    const auto b = static_cast<std::size_t>(ptr_[static_cast<std::size_t>(i)]);
    const auto e =
        static_cast<std::size_t>(ptr_[static_cast<std::size_t>(i) + 1]);
    return {col_.data() + b, e - b};
  }

  /// Zero-copy view of row i's values.
  std::span<const real_t> row_values(index_t i) const {
    const auto b = static_cast<std::size_t>(ptr_[static_cast<std::size_t>(i)]);
    const auto e =
        static_cast<std::size_t>(ptr_[static_cast<std::size_t>(i) + 1]);
    return {values_.data() + b, e - b};
  }

  index_t stored_elements() const { return nnz(); }

  /// Bytes for data + col indices + row pointer (Table II: 2*nnz + M + 1).
  std::size_t storage_bytes() const {
    return values_.size_bytes() + col_.size_bytes() + ptr_.size_bytes();
  }

  index_t work_flops() const { return nnz(); }

  /// y = A * w (dense workspace w, size cols). Row-parallel: one thread owns
  /// a contiguous block of rows, so skewed row lengths (high vdim) directly
  /// cause load imbalance — the effect Fig. 4 measures against COO.
  void multiply_dense(std::span<const real_t> w, std::span<real_t> y) const;

  /// Batched SMSV: Y = A * W for `b` interleaved right-hand sides
  /// (W[j*b + k], Y[i*b + k], 1 <= b <= kMaxSmsvBatch); one sweep of the
  /// row data serves all b vectors. Accumulation order per output element
  /// matches multiply_dense.
  void multiply_dense_batch(std::span<const real_t> w, index_t b,
                            std::span<real_t> y) const;

  /// Row i dot dense workspace w (gather-dot over the row's pattern).
  real_t row_dot_dense(index_t i, std::span<const real_t> w) const;

  /// Extracts row i as a SparseVector (copy; use row_cols/row_values for
  /// zero-copy access).
  void gather_row(index_t i, SparseVector& out) const;

  /// Lowers back to canonical COO (used by format conversion round-trips).
  CooMatrix to_coo() const;

 private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  AlignedBuffer<index_t> ptr_;   // rows + 1 entries
  AlignedBuffer<index_t> col_;   // nnz entries
  AlignedBuffer<real_t> values_;  // nnz entries
};

}  // namespace ls
