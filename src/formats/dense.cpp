#include "formats/dense.hpp"

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "kernels/simd.hpp"

namespace ls {

static_assert(kMaxSmsvBatch == simd::kMaxKernelBatch,
              "batched SIMD kernels block their accumulators at "
              "kMaxKernelBatch rhs lanes");

DenseMatrix::DenseMatrix(index_t rows, index_t cols)
    : rows_(rows), cols_(cols) {
  LS_CHECK(rows >= 0 && cols >= 0, "negative matrix dimensions");
  data_.resize(static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols));
}

DenseMatrix::DenseMatrix(const CooMatrix& coo)
    : DenseMatrix(coo.rows(), coo.cols()) {
  const auto rows = coo.row_indices();
  const auto cols = coo.col_indices();
  const auto vals = coo.values();
  for (std::size_t k = 0; k < vals.size(); ++k) {
    (*this)(rows[k], cols[k]) = vals[k];
  }
  nnz_ = coo.nnz();
}

void DenseMatrix::multiply_dense(std::span<const real_t> w,
                                 std::span<real_t> y) const {
  LS_ASSERT(w.size() == static_cast<std::size_t>(cols_), "w size mismatch");
  LS_ASSERT(y.size() == static_cast<std::size_t>(rows_), "y size mismatch");
  const real_t* __restrict wd = w.data();
  const real_t* __restrict ad = data_.data();
  const index_t n = cols_;
  const auto& kt = simd::kernels();
  parallel_for(rows_, [&](index_t i) {
    const real_t* __restrict r = ad + static_cast<std::size_t>(i * n);
    y[static_cast<std::size_t>(i)] = kt.dense_row_dot(r, wd, n);
  });
}

void DenseMatrix::multiply_dense_batch(std::span<const real_t> w, index_t b,
                                       std::span<real_t> y) const {
  LS_ASSERT(b >= 1 && b <= kMaxSmsvBatch, "batch size out of range");
  LS_ASSERT(w.size() == static_cast<std::size_t>(cols_) *
                            static_cast<std::size_t>(b),
            "w size mismatch");
  LS_ASSERT(y.size() == static_cast<std::size_t>(rows_) *
                            static_cast<std::size_t>(b),
            "y size mismatch");
  const real_t* __restrict wd = w.data();
  const real_t* __restrict ad = data_.data();
  const index_t n = cols_;
  const auto& kt = simd::kernels();
  parallel_for(rows_, [&](index_t i) {
    const real_t* __restrict r = ad + static_cast<std::size_t>(i * n);
    real_t* __restrict yi = y.data() + static_cast<std::size_t>(i * b);
    kt.dense_row_batch(r, n, wd, b, yi);
  });
}

void DenseMatrix::gather_row(index_t i, SparseVector& out) const {
  LS_CHECK(i >= 0 && i < rows_, "gather_row index out of range");
  out.clear();
  const auto r = row(i);
  for (index_t j = 0; j < cols_; ++j) {
    const real_t v = r[static_cast<std::size_t>(j)];
    if (v != 0.0) out.push_back(j, v);
  }
}

CooMatrix DenseMatrix::to_coo() const {
  std::vector<Triplet> triplets;
  triplets.reserve(static_cast<std::size_t>(nnz_));
  for (index_t i = 0; i < rows_; ++i) {
    const auto r = row(i);
    for (index_t j = 0; j < cols_; ++j) {
      const real_t v = r[static_cast<std::size_t>(j)];
      if (v != 0.0) triplets.push_back({i, j, v});
    }
  }
  return CooMatrix(rows_, cols_, std::move(triplets));
}

void DenseMatrix::recount_nnz() {
  index_t n = 0;
  for (real_t v : data_) {
    if (v != 0.0) ++n;
  }
  nnz_ = n;
}

}  // namespace ls
