// DEN (dense) format: row-major M x N array, the format GPUSVM fixes for
// all datasets. Storage and work are M*N regardless of sparsity, but each
// multiply-add streams contiguously with no index indirection, which is why
// DEN wins on dense ML datasets (gisette, epsilon, dna).
#pragma once

#include <span>

#include "common/aligned_buffer.hpp"
#include "common/types.hpp"
#include "formats/coo.hpp"
#include "formats/format.hpp"
#include "formats/sparse_vector.hpp"

namespace ls {

/// Row-major dense matrix.
class DenseMatrix {
 public:
  DenseMatrix() = default;

  /// Creates a zero-filled rows x cols matrix.
  DenseMatrix(index_t rows, index_t cols);

  /// Materialises a COO matrix densely.
  explicit DenseMatrix(const CooMatrix& coo);

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }

  /// Number of nonzero entries (scans; cached at construction from COO).
  index_t nnz() const { return nnz_; }
  static constexpr Format format() { return Format::kDEN; }

  real_t operator()(index_t i, index_t j) const {
    return data_[static_cast<std::size_t>(i * cols_ + j)];
  }
  real_t& operator()(index_t i, index_t j) {
    return data_[static_cast<std::size_t>(i * cols_ + j)];
  }

  /// Zero-copy view of row i.
  std::span<const real_t> row(index_t i) const {
    return {data_.data() + static_cast<std::size_t>(i * cols_),
            static_cast<std::size_t>(cols_)};
  }
  std::span<real_t> row(index_t i) {
    return {data_.data() + static_cast<std::size_t>(i * cols_),
            static_cast<std::size_t>(cols_)};
  }

  std::span<const real_t> data() const { return {data_.data(), data_.size()}; }

  index_t stored_elements() const { return rows_ * cols_; }

  /// Bytes of the value array (Table II: M*N words, no index arrays).
  std::size_t storage_bytes() const { return data_.size_bytes(); }

  index_t work_flops() const { return rows_ * cols_; }

  /// y = A * w, dense GEMV loop (row-parallel, unit-stride inner loop).
  void multiply_dense(std::span<const real_t> w, std::span<real_t> y) const;

  /// Batched SMSV: Y = A * W for `b` interleaved right-hand sides
  /// (W[j*b + k] = entry j of rhs k, Y[i*b + k] likewise, 1 <= b <=
  /// kMaxSmsvBatch). One pass over the matrix serves all b vectors, so the
  /// matrix bytes — the SMSV bottleneck — are amortised b-fold. Each output
  /// element accumulates in the same order as multiply_dense.
  void multiply_dense_batch(std::span<const real_t> w, index_t b,
                            std::span<real_t> y) const;

  /// Extracts the nonzero pattern of row i into a SparseVector.
  void gather_row(index_t i, SparseVector& out) const;

  /// Lowers to canonical COO (zeros dropped).
  CooMatrix to_coo() const;

  /// Recounts nonzeros after in-place edits via operator().
  void recount_nnz();

 private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  index_t nnz_ = 0;
  AlignedBuffer<real_t> data_;
};

}  // namespace ls
