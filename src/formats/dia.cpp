#include "formats/dia.hpp"

#include <algorithm>
#include <map>

#include "common/error.hpp"
#include "common/parallel.hpp"

namespace ls {

DiaMatrix::DiaMatrix(const CooMatrix& coo)
    : rows_(coo.rows()),
      cols_(coo.cols()),
      nnz_(coo.nnz()),
      stripe_len_(std::min(coo.rows(), coo.cols())) {
  const auto rows = coo.row_indices();
  const auto cols = coo.col_indices();
  const auto vals = coo.values();

  // Collect the set of occupied diagonals (std::map keeps offsets sorted).
  std::map<index_t, std::size_t> offset_to_stripe;
  for (std::size_t k = 0; k < vals.size(); ++k) {
    offset_to_stripe.emplace(cols[k] - rows[k], 0);
  }
  offsets_.resize(offset_to_stripe.size());
  std::size_t d = 0;
  for (auto& [off, stripe] : offset_to_stripe) {
    offsets_[d] = off;
    stripe = d;
    ++d;
  }

  values_.resize(offset_to_stripe.size() *
                 static_cast<std::size_t>(stripe_len_));
  for (std::size_t k = 0; k < vals.size(); ++k) {
    const std::size_t stripe = offset_to_stripe[cols[k] - rows[k]];
    values_[slot(stripe, rows[k])] = vals[k];
  }
}

index_t DiaMatrix::work_flops() const {
  index_t total = 0;
  for (std::size_t d = 0; d < offsets_.size(); ++d) {
    total += stripe_end(d) - stripe_base(d);
  }
  return total;
}

void DiaMatrix::multiply_dense(std::span<const real_t> w,
                               std::span<real_t> y) const {
  LS_ASSERT(w.size() == static_cast<std::size_t>(cols_), "w size mismatch");
  LS_ASSERT(y.size() == static_cast<std::size_t>(rows_), "y size mismatch");
  std::fill(y.begin(), y.end(), real_t{0});

  const real_t* __restrict wd = w.data();
  for (std::size_t d = 0; d < offsets_.size(); ++d) {
    const index_t off = offsets_[d];
    const index_t lo = stripe_base(d);
    const index_t hi = stripe_end(d);
    const real_t* __restrict stripe = values_.data() + slot(d, lo);
    // Unit-stride sweep over the full valid range of the diagonal: slots
    // holding padded zeros still cost a multiply-add, which is exactly the
    // ndig-dependent overhead the Fig. 2 sweep measures.
    for (index_t i = lo; i < hi; ++i) {
      y[static_cast<std::size_t>(i)] +=
          stripe[i - lo] * wd[static_cast<std::size_t>(i + off)];
    }
  }
}

void DiaMatrix::multiply_dense_batch(std::span<const real_t> w, index_t b,
                                     std::span<real_t> y) const {
  LS_ASSERT(b >= 1 && b <= kMaxSmsvBatch, "batch size out of range");
  LS_ASSERT(w.size() == static_cast<std::size_t>(cols_) *
                            static_cast<std::size_t>(b),
            "w size mismatch");
  LS_ASSERT(y.size() == static_cast<std::size_t>(rows_) *
                            static_cast<std::size_t>(b),
            "y size mismatch");
  std::fill(y.begin(), y.end(), real_t{0});

  const real_t* __restrict wd = w.data();
  real_t* __restrict yd = y.data();
  for (std::size_t d = 0; d < offsets_.size(); ++d) {
    const index_t off = offsets_[d];
    const index_t lo = stripe_base(d);
    const index_t hi = stripe_end(d);
    const real_t* __restrict stripe = values_.data() + slot(d, lo);
    for (index_t i = lo; i < hi; ++i) {
      const real_t v = stripe[i - lo];
      const real_t* __restrict wj =
          wd + static_cast<std::size_t>((i + off) * b);
      real_t* __restrict yi = yd + static_cast<std::size_t>(i * b);
      for (index_t q = 0; q < b; ++q) yi[q] += v * wj[q];
    }
  }
}

void DiaMatrix::gather_row(index_t i, SparseVector& out) const {
  LS_CHECK(i >= 0 && i < rows_, "gather_row index out of range");
  out.clear();
  // Offsets are sorted, so columns i + off come out strictly increasing.
  for (std::size_t d = 0; d < offsets_.size(); ++d) {
    if (i < stripe_base(d) || i >= stripe_end(d)) continue;
    const real_t v = values_[slot(d, i)];
    if (v != 0.0) out.push_back(i + offsets_[d], v);
  }
}

CooMatrix DiaMatrix::to_coo() const {
  std::vector<Triplet> triplets;
  triplets.reserve(static_cast<std::size_t>(nnz_));
  for (std::size_t d = 0; d < offsets_.size(); ++d) {
    const index_t off = offsets_[d];
    for (index_t i = stripe_base(d); i < stripe_end(d); ++i) {
      const real_t v = values_[slot(d, i)];
      if (v != 0.0) triplets.push_back({i, i + off, v});
    }
  }
  return CooMatrix(rows_, cols_, std::move(triplets));
}

}  // namespace ls
