// DIA (diagonal) format: one padded stripe per occupied diagonal.
//
// Storage and work scale with the number of occupied diagonals (ndig), not
// with nnz: a matrix whose nonzeros are scattered over many diagonals pays
// for full-length padded stripes (Fig. 2). This is why the paper adds ndig
// and dnnz (= nnz / ndig) to the influencing-parameter space — DIA is only
// competitive when dnnz is high (e.g. trefethen: 12 diagonals with ~1829
// nonzeros each).
//
// Stripes are uniformly min(M, N) slots long (matching the paper's Table II
// bound of (min(M,N)+1)*(M+N-1) words for a fully occupied matrix); stripe
// d covers rows [base_d, base_d + len_d) where base_d = max(0, -offset_d).
#pragma once

#include <span>

#include "common/aligned_buffer.hpp"
#include "common/types.hpp"
#include "formats/coo.hpp"
#include "formats/format.hpp"
#include "formats/sparse_vector.hpp"

namespace ls {

/// Diagonal-format matrix. Element (i, i + offset[d]) of the matrix lives
/// at stripe d, slot i - max(0, -offset[d]).
class DiaMatrix {
 public:
  DiaMatrix() = default;

  /// Builds from canonical COO.
  explicit DiaMatrix(const CooMatrix& coo);

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  index_t nnz() const { return nnz_; }
  static constexpr Format format() { return Format::kDIA; }

  /// Number of occupied diagonals (the paper's ndig).
  index_t num_diagonals() const {
    return static_cast<index_t>(offsets_.size());
  }

  std::span<const index_t> offsets() const {
    return {offsets_.data(), offsets_.size()};
  }

  /// Uniform stripe length: min(M, N).
  index_t stripe_len() const { return stripe_len_; }

  index_t stored_elements() const { return num_diagonals() * stripe_len_; }

  /// Bytes for the padded stripes plus the offsets array.
  std::size_t storage_bytes() const {
    return values_.size_bytes() + offsets_.size_bytes();
  }

  /// One multiply-add per in-bounds stripe slot (padded zeros inside the
  /// valid range still cost; slots past the matrix edge are skipped by the
  /// loop bounds).
  index_t work_flops() const;

  /// y = A * w. Stripe-outer loop; each stripe is a unit-stride AXPY-like
  /// update over its valid row range.
  void multiply_dense(std::span<const real_t> w, std::span<real_t> y) const;

  /// Batched SMSV: Y = A * W for `b` interleaved right-hand sides
  /// (W[j*b + k], Y[i*b + k], 1 <= b <= kMaxSmsvBatch); one stripe-outer
  /// sweep serves all b vectors. Accumulation order per output element
  /// matches multiply_dense.
  void multiply_dense_batch(std::span<const real_t> w, index_t b,
                            std::span<real_t> y) const;

  /// Extracts row i (skipping padding zeros).
  void gather_row(index_t i, SparseVector& out) const;

  /// Lowers to canonical COO (padding dropped).
  CooMatrix to_coo() const;

 private:
  /// First row covered by stripe d.
  index_t stripe_base(std::size_t d) const {
    const index_t off = offsets_[d];
    return off < 0 ? -off : 0;
  }

  /// One-past-last row covered by stripe d.
  index_t stripe_end(std::size_t d) const {
    const index_t off = offsets_[d];
    const index_t hi = cols_ - off < rows_ ? cols_ - off : rows_;
    return hi > stripe_base(d) ? hi : stripe_base(d);
  }

  std::size_t slot(std::size_t d, index_t row) const {
    return d * static_cast<std::size_t>(stripe_len_) +
           static_cast<std::size_t>(row - stripe_base(d));
  }

  index_t rows_ = 0;
  index_t cols_ = 0;
  index_t nnz_ = 0;
  index_t stripe_len_ = 0;
  AlignedBuffer<index_t> offsets_;  // sorted diagonal offsets (col - row)
  AlignedBuffer<real_t> values_;    // ndiag * stripe_len slots, pad = 0.0
};

}  // namespace ls
