#include "formats/ell.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "kernels/simd.hpp"

namespace ls {

EllMatrix::EllMatrix(const CooMatrix& coo)
    : rows_(coo.rows()), cols_(coo.cols()), nnz_(coo.nnz()) {
  const auto rows = coo.row_indices();
  const auto cols = coo.col_indices();
  const auto vals = coo.values();

  row_len_.resize(static_cast<std::size_t>(rows_));
  for (std::size_t k = 0; k < vals.size(); ++k) {
    ++row_len_[static_cast<std::size_t>(rows[k])];
  }
  mdim_ = 0;
  for (index_t i = 0; i < rows_; ++i) {
    mdim_ = std::max(mdim_, row_len_[static_cast<std::size_t>(i)]);
  }

  const std::size_t slots =
      static_cast<std::size_t>(rows_) * static_cast<std::size_t>(mdim_);
  col_.resize(slots);
  values_.resize(slots);

  // Fill pass: COO is row-sorted, so the k-th nonzero seen for a row goes
  // into lane k of that row.
  std::vector<index_t> fill(static_cast<std::size_t>(rows_), 0);
  for (std::size_t k = 0; k < vals.size(); ++k) {
    const index_t i = rows[k];
    const index_t lane = fill[static_cast<std::size_t>(i)]++;
    col_[slot(i, lane)] = cols[k];
    values_[slot(i, lane)] = vals[k];
  }
}

void EllMatrix::multiply_dense(std::span<const real_t> w,
                               std::span<real_t> y) const {
  LS_ASSERT(w.size() == static_cast<std::size_t>(cols_), "w size mismatch");
  LS_ASSERT(y.size() == static_cast<std::size_t>(rows_), "y size mismatch");
  std::fill(y.begin(), y.end(), real_t{0});
  if (rows_ == 0 || mdim_ == 0) return;

  const real_t* __restrict wd = w.data();
  real_t* __restrict yd = y.data();
  const auto& kt = simd::kernels();
  // Lane-outer traversal: contiguous streams of length M per lane. Every
  // padding slot still costs a multiply-add (value 0 * w[0]), which is the
  // measured cost of high mdim in Fig. 3.
  for (index_t k = 0; k < mdim_; ++k) {
    const index_t* __restrict ck = col_.data() + slot(0, k);
    const real_t* __restrict vk = values_.data() + slot(0, k);
    parallel_for_blocks(rows_, [&](index_t lo, index_t hi) {
      kt.gather_axpy(vk + lo, ck + lo, hi - lo, wd, yd + lo);
    });
  }
}

void EllMatrix::multiply_dense_batch(std::span<const real_t> w, index_t b,
                                     std::span<real_t> y) const {
  LS_ASSERT(b >= 1 && b <= kMaxSmsvBatch, "batch size out of range");
  LS_ASSERT(w.size() == static_cast<std::size_t>(cols_) *
                            static_cast<std::size_t>(b),
            "w size mismatch");
  LS_ASSERT(y.size() == static_cast<std::size_t>(rows_) *
                            static_cast<std::size_t>(b),
            "y size mismatch");
  std::fill(y.begin(), y.end(), real_t{0});
  if (rows_ == 0 || mdim_ == 0) return;

  const real_t* __restrict wd = w.data();
  real_t* __restrict yd = y.data();
  const auto& kt = simd::kernels();
  for (index_t k = 0; k < mdim_; ++k) {
    const index_t* __restrict ck = col_.data() + slot(0, k);
    const real_t* __restrict vk = values_.data() + slot(0, k);
    parallel_for_blocks(rows_, [&](index_t lo, index_t hi) {
      kt.gather_axpy_batch(vk + lo, ck + lo, hi - lo, wd, b,
                           yd + static_cast<std::size_t>(lo * b));
    });
  }
}

void EllMatrix::gather_row(index_t i, SparseVector& out) const {
  LS_CHECK(i >= 0 && i < rows_, "gather_row index out of range");
  out.clear();
  const index_t len = row_len_[static_cast<std::size_t>(i)];
  for (index_t k = 0; k < len; ++k) {
    out.push_back(col_[slot(i, k)], values_[slot(i, k)]);
  }
}

CooMatrix EllMatrix::to_coo() const {
  std::vector<Triplet> triplets;
  triplets.reserve(static_cast<std::size_t>(nnz_));
  for (index_t i = 0; i < rows_; ++i) {
    const index_t len = row_len_[static_cast<std::size_t>(i)];
    for (index_t k = 0; k < len; ++k) {
      triplets.push_back({i, col_[slot(i, k)], values_[slot(i, k)]});
    }
  }
  return CooMatrix(rows_, cols_, std::move(triplets));
}

}  // namespace ls
