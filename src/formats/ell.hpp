// ELL (ELLPACK/ITPACK) format: every row padded to the maximum row length
// (mdim), stored column-major so that lane k of all rows is contiguous —
// the classic SIMD-across-rows layout from ITPACK.
//
// The padding is exactly why the paper adds mdim / adim / vdim to the
// influencing-parameter space: storage and work are M * mdim, so a single
// long row (high vdim) inflates the whole matrix (Fig. 3).
#pragma once

#include <span>

#include "common/aligned_buffer.hpp"
#include "common/types.hpp"
#include "formats/coo.hpp"
#include "formats/format.hpp"
#include "formats/sparse_vector.hpp"

namespace ls {

/// ELLPACK matrix: M x mdim slots, column-major, zero-padded.
class EllMatrix {
 public:
  EllMatrix() = default;

  /// Builds from canonical COO.
  explicit EllMatrix(const CooMatrix& coo);

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  index_t nnz() const { return nnz_; }
  static constexpr Format format() { return Format::kELL; }

  /// Width of the padded slot array (the paper's mdim = max_i dim_i).
  index_t max_row_nnz() const { return mdim_; }

  index_t stored_elements() const { return rows_ * mdim_; }

  /// Bytes for padded values + padded column indices (Table II: 2*M*mdim).
  std::size_t storage_bytes() const {
    return values_.size_bytes() + col_.size_bytes();
  }

  index_t work_flops() const { return rows_ * mdim_; }

  /// y = A * w. Iterates lanes in the outer loop (column-major streaming):
  /// every row pays for all mdim lanes including padding.
  void multiply_dense(std::span<const real_t> w, std::span<real_t> y) const;

  /// Batched SMSV: Y = A * W for `b` interleaved right-hand sides
  /// (W[j*b + k], Y[i*b + k], 1 <= b <= kMaxSmsvBatch); one lane-outer
  /// sweep serves all b vectors. Accumulation order per output element
  /// matches multiply_dense.
  void multiply_dense_batch(std::span<const real_t> w, index_t b,
                            std::span<real_t> y) const;

  /// Extracts row i (skipping padding slots).
  void gather_row(index_t i, SparseVector& out) const;

  /// Lowers to canonical COO (padding dropped).
  CooMatrix to_coo() const;

 private:
  // Slot (i, k) lives at index k * rows_ + i (column-major).
  std::size_t slot(index_t i, index_t k) const {
    return static_cast<std::size_t>(k * rows_ + i);
  }

  index_t rows_ = 0;
  index_t cols_ = 0;
  index_t nnz_ = 0;
  index_t mdim_ = 0;
  AlignedBuffer<index_t> col_;    // rows * mdim slots, pad = 0
  AlignedBuffer<real_t> values_;  // rows * mdim slots, pad = 0.0
  AlignedBuffer<index_t> row_len_;  // true dim_i per row (for gather)
};

}  // namespace ls
