// Matrix storage format identifiers.
//
// The five *basic* formats are the ones the paper studies (Section III):
// DEN (dense), CSR (compressed sparse row), COO (coordinate),
// ELL (ELLPACK/ITPACK) and DIA (diagonal). The paper notes that "most of
// the other storage formats can be derived from these basic formats" and
// names CSC and BCSR as examples — both are implemented as *extended*
// formats: the empirical autotuner can consider them, while the paper-
// reproduction benches stick to the basic five.
#pragma once

#include <array>
#include <string>
#include <string_view>

#include "common/error.hpp"

namespace ls {

/// Storage format identifier. Values are stable and usable as array indices.
enum class Format : int {
  // The paper's five basic formats.
  kDEN = 0,
  kCSR = 1,
  kCOO = 2,
  kELL = 3,
  kDIA = 4,
  // Derived formats (Section III-A's "other storage formats").
  kCSC = 5,
  kBCSR = 6,
  kHYB = 7,
  kJDS = 8,
};

/// Number of basic (paper) formats.
inline constexpr int kNumBasicFormats = 5;

/// Upper bound on the right-hand-side count of one multiply_dense_batch
/// call (keeps per-thread accumulator blocks on the stack). Callers wanting
/// more rows per batch split into chunks of at most this size.
inline constexpr int kMaxSmsvBatch = 64;

/// Total number of supported formats (arrays indexed by Format use this).
inline constexpr int kNumFormats = 9;

/// The paper's basic formats in Table II column order (DEN CSR COO ELL DIA).
inline constexpr std::array<Format, kNumBasicFormats> kAllFormats = {
    Format::kDEN, Format::kCSR, Format::kCOO, Format::kELL, Format::kDIA};

/// Every supported format, basic + derived.
inline constexpr std::array<Format, kNumFormats> kExtendedFormats = {
    Format::kDEN, Format::kCSR, Format::kCOO,  Format::kELL, Format::kDIA,
    Format::kCSC, Format::kBCSR, Format::kHYB, Format::kJDS};

/// Short upper-case name as printed in the paper's tables.
constexpr std::string_view format_name(Format f) {
  switch (f) {
    case Format::kDEN: return "DEN";
    case Format::kCSR: return "CSR";
    case Format::kCOO: return "COO";
    case Format::kELL: return "ELL";
    case Format::kDIA: return "DIA";
    case Format::kCSC: return "CSC";
    case Format::kBCSR: return "BCSR";
    case Format::kHYB: return "HYB";
    case Format::kJDS: return "JDS";
  }
  return "???";
}

/// Parses a format name (case-sensitive, as printed by format_name).
inline Format parse_format(std::string_view name) {
  for (Format f : kExtendedFormats) {
    if (format_name(f) == name) return f;
  }
  throw Error("unknown format name: '" + std::string(name) +
              "' (expected DEN, CSR, COO, ELL, DIA, CSC, BCSR, HYB or JDS)");
}

}  // namespace ls
