#include "formats/hyb.hpp"

#include <algorithm>
#include <vector>

#include "common/error.hpp"
#include "kernels/simd.hpp"

namespace ls {

HybMatrix::HybMatrix(const CooMatrix& coo, index_t ell_width)
    : rows_(coo.rows()), cols_(coo.cols()), nnz_(coo.nnz()) {
  const auto rows = coo.row_indices();
  const auto cols = coo.col_indices();
  const auto vals = coo.values();

  ell_len_.resize(static_cast<std::size_t>(rows_));
  std::vector<index_t> row_nnz(static_cast<std::size_t>(rows_), 0);
  for (std::size_t k = 0; k < vals.size(); ++k) {
    ++row_nnz[static_cast<std::size_t>(rows[k])];
  }

  if (ell_width <= 0) {
    // Automatic width: ceil(mean row length); 1 at minimum for non-empty
    // matrices so the slab exists.
    width_ = rows_ > 0 ? (nnz_ + rows_ - 1) / rows_ : 0;
    if (nnz_ > 0 && width_ == 0) width_ = 1;
  } else {
    width_ = ell_width;
  }

  const std::size_t slots =
      static_cast<std::size_t>(rows_) * static_cast<std::size_t>(width_);
  ell_vals_.resize(slots);
  ell_cols_.resize(slots);

  // Count overflow, then fill both structures in one sweep (COO order is
  // row-major so overflow naturally stays row-sorted).
  std::size_t overflow = 0;
  for (index_t i = 0; i < rows_; ++i) {
    const index_t extra = row_nnz[static_cast<std::size_t>(i)] - width_;
    if (extra > 0) overflow += static_cast<std::size_t>(extra);
  }
  coo_vals_.resize(overflow);
  coo_rows_.resize(overflow);
  coo_cols_.resize(overflow);

  std::vector<index_t> fill(static_cast<std::size_t>(rows_), 0);
  std::size_t spill = 0;
  for (std::size_t k = 0; k < vals.size(); ++k) {
    const index_t i = rows[k];
    index_t& lane = fill[static_cast<std::size_t>(i)];
    if (lane < width_) {
      ell_vals_[slot(i, lane)] = vals[k];
      ell_cols_[slot(i, lane)] = cols[k];
      ++lane;
    } else {
      coo_vals_[spill] = vals[k];
      coo_rows_[spill] = i;
      coo_cols_[spill] = cols[k];
      ++spill;
    }
  }
  for (index_t i = 0; i < rows_; ++i) {
    ell_len_[static_cast<std::size_t>(i)] =
        std::min(width_, row_nnz[static_cast<std::size_t>(i)]);
  }
}

void HybMatrix::multiply_dense(std::span<const real_t> w,
                               std::span<real_t> y) const {
  LS_ASSERT(w.size() == static_cast<std::size_t>(cols_), "w size mismatch");
  LS_ASSERT(y.size() == static_cast<std::size_t>(rows_), "y size mismatch");
  std::fill(y.begin(), y.end(), real_t{0});
  const real_t* __restrict wd = w.data();

  // ELL slab, lane-outer.
  const auto& kt = simd::kernels();
  for (index_t k = 0; k < width_; ++k) {
    const real_t* __restrict vk = ell_vals_.data() + slot(0, k);
    const index_t* __restrict ck = ell_cols_.data() + slot(0, k);
    kt.gather_axpy(vk, ck, rows_, wd, y.data());
  }
  // COO overflow stays scalar: a row can spill several nonzeros, so the
  // pairwise-distinct-rows precondition of gather_scatter_axpy does not
  // hold here.
  for (std::size_t k = 0; k < coo_vals_.size(); ++k) {
    y[static_cast<std::size_t>(coo_rows_[k])] +=
        coo_vals_[k] * wd[coo_cols_[k]];
  }
}

void HybMatrix::multiply_dense_batch(std::span<const real_t> w, index_t b,
                                     std::span<real_t> y) const {
  LS_ASSERT(b >= 1 && b <= kMaxSmsvBatch, "batch size out of range");
  LS_ASSERT(w.size() == static_cast<std::size_t>(cols_) *
                            static_cast<std::size_t>(b),
            "w size mismatch");
  LS_ASSERT(y.size() == static_cast<std::size_t>(rows_) *
                            static_cast<std::size_t>(b),
            "y size mismatch");
  std::fill(y.begin(), y.end(), real_t{0});
  const real_t* __restrict wd = w.data();
  real_t* __restrict yd = y.data();

  // ELL slab, lane-outer.
  const auto& kt = simd::kernels();
  for (index_t k = 0; k < width_; ++k) {
    const real_t* __restrict vk = ell_vals_.data() + slot(0, k);
    const index_t* __restrict ck = ell_cols_.data() + slot(0, k);
    kt.gather_axpy_batch(vk, ck, rows_, wd, b, yd);
  }
  // COO overflow.
  for (std::size_t k = 0; k < coo_vals_.size(); ++k) {
    const real_t v = coo_vals_[k];
    const real_t* __restrict wj =
        wd + static_cast<std::size_t>(coo_cols_[k] * b);
    real_t* __restrict yi = yd + static_cast<std::size_t>(coo_rows_[k] * b);
    for (index_t q = 0; q < b; ++q) yi[q] += v * wj[q];
  }
}

void HybMatrix::gather_row(index_t i, SparseVector& out) const {
  LS_CHECK(i >= 0 && i < rows_, "gather_row index out of range");
  out.clear();
  // Slab part: lanes hold the row's first nonzeros in ascending column
  // order; overflow holds the tail (strictly larger columns), so a plain
  // concatenation stays sorted.
  const index_t len = ell_len_[static_cast<std::size_t>(i)];
  for (index_t k = 0; k < len; ++k) {
    out.push_back(ell_cols_[slot(i, k)], ell_vals_[slot(i, k)]);
  }
  const index_t* begin = coo_rows_.data();
  const index_t* end = coo_rows_.data() + coo_rows_.size();
  const index_t* lo = std::lower_bound(begin, end, i);
  const index_t* hi = std::upper_bound(lo, end, i);
  for (const index_t* p = lo; p != hi; ++p) {
    const auto k = static_cast<std::size_t>(p - begin);
    out.push_back(coo_cols_[k], coo_vals_[k]);
  }
}

CooMatrix HybMatrix::to_coo() const {
  std::vector<Triplet> triplets;
  triplets.reserve(static_cast<std::size_t>(nnz_));
  for (index_t i = 0; i < rows_; ++i) {
    const index_t len = ell_len_[static_cast<std::size_t>(i)];
    for (index_t k = 0; k < len; ++k) {
      triplets.push_back({i, ell_cols_[slot(i, k)], ell_vals_[slot(i, k)]});
    }
  }
  for (std::size_t k = 0; k < coo_vals_.size(); ++k) {
    triplets.push_back({coo_rows_[k], coo_cols_[k], coo_vals_[k]});
  }
  return CooMatrix(rows_, cols_, std::move(triplets));
}

}  // namespace ls
