// HYB (hybrid ELL + COO) format — the standard cure for ELL's padding
// pathology (cuSPARSE's historical default for irregular matrices, and a
// natural member of the paper's "derived from the basic formats" family):
// store each row's first `ell_width` nonzeros in a regular ELL slab and
// spill the remainder of long rows into a small COO overflow list. Storage
// and work become M * ell_width + overflow instead of M * mdim, so a
// single long row no longer inflates the whole matrix.
#pragma once

#include <span>

#include "common/aligned_buffer.hpp"
#include "common/types.hpp"
#include "formats/coo.hpp"
#include "formats/format.hpp"
#include "formats/sparse_vector.hpp"

namespace ls {

/// Hybrid matrix: ELL slab of width `ell_width` + COO overflow.
class HybMatrix {
 public:
  HybMatrix() = default;

  /// Builds from canonical COO. `ell_width` = 0 chooses the width
  /// automatically (the mean row length, rounded up — the classic rule
  /// that bounds padding by ~1x while keeping most nonzeros regular).
  explicit HybMatrix(const CooMatrix& coo, index_t ell_width = 0);

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  index_t nnz() const { return nnz_; }
  static constexpr Format format() { return Format::kHYB; }

  index_t ell_width() const { return width_; }
  index_t overflow_nnz() const {
    return static_cast<index_t>(coo_vals_.size());
  }

  index_t stored_elements() const {
    return rows_ * width_ + overflow_nnz();
  }

  /// Bytes: padded ELL slab (values + cols + per-row occupancy) + COO
  /// triples of the overflow.
  std::size_t storage_bytes() const {
    return ell_vals_.size_bytes() + ell_cols_.size_bytes() +
           ell_len_.size_bytes() + coo_vals_.size_bytes() +
           coo_rows_.size_bytes() + coo_cols_.size_bytes();
  }

  index_t work_flops() const { return stored_elements(); }

  /// y = A * w: ELL slab (lane-outer) then COO overflow accumulation.
  void multiply_dense(std::span<const real_t> w, std::span<real_t> y) const;

  /// Batched SMSV: Y = A * W for `b` interleaved right-hand sides
  /// (W[j*b + k], Y[i*b + k], 1 <= b <= kMaxSmsvBatch); ELL slab then COO
  /// overflow, each traversed once for all b vectors. Accumulation order
  /// per output element matches multiply_dense.
  void multiply_dense_batch(std::span<const real_t> w, index_t b,
                            std::span<real_t> y) const;

  /// Extracts row i (merging the slab and overflow parts, sorted).
  void gather_row(index_t i, SparseVector& out) const;

  /// Lowers to canonical COO.
  CooMatrix to_coo() const;

 private:
  std::size_t slot(index_t i, index_t k) const {
    return static_cast<std::size_t>(k * rows_ + i);  // column-major slab
  }

  index_t rows_ = 0;
  index_t cols_ = 0;
  index_t nnz_ = 0;
  index_t width_ = 0;
  AlignedBuffer<real_t> ell_vals_;   // rows * width slots, pad = 0
  AlignedBuffer<index_t> ell_cols_;  // rows * width slots, pad = 0
  AlignedBuffer<index_t> ell_len_;   // per-row slab occupancy
  AlignedBuffer<real_t> coo_vals_;   // overflow (row-sorted)
  AlignedBuffer<index_t> coo_rows_;
  AlignedBuffer<index_t> coo_cols_;
};

}  // namespace ls
