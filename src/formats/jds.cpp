#include "formats/jds.hpp"

#include <algorithm>
#include <numeric>
#include <vector>

#include "common/error.hpp"
#include "formats/csr.hpp"
#include "kernels/simd.hpp"

namespace ls {

JdsMatrix::JdsMatrix(const CooMatrix& coo)
    : rows_(coo.rows()), cols_(coo.cols()) {
  const CsrMatrix csr(coo);

  // Stable sort rows by descending nonzero count.
  std::vector<index_t> perm(static_cast<std::size_t>(rows_));
  std::iota(perm.begin(), perm.end(), index_t{0});
  std::stable_sort(perm.begin(), perm.end(), [&](index_t a, index_t b) {
    return csr.row_nnz(a) > csr.row_nnz(b);
  });

  perm_.resize(perm.size());
  inv_perm_.resize(perm.size());
  for (std::size_t p = 0; p < perm.size(); ++p) {
    perm_[p] = perm[p];
    inv_perm_[static_cast<std::size_t>(perm[p])] = static_cast<index_t>(p);
  }

  const index_t mdim = rows_ > 0 ? csr.row_nnz(perm.empty() ? 0 : perm[0]) : 0;
  jd_ptr_.resize(static_cast<std::size_t>(mdim) + 1);
  values_.resize(static_cast<std::size_t>(coo.nnz()));
  col_.resize(static_cast<std::size_t>(coo.nnz()));

  // Jagged diagonal k holds the k-th nonzero of every row with > k
  // nonzeros; rows are sorted, so those rows are exactly the prefix.
  std::size_t cursor = 0;
  for (index_t k = 0; k < mdim; ++k) {
    jd_ptr_[static_cast<std::size_t>(k)] = static_cast<index_t>(cursor);
    for (std::size_t p = 0; p < perm.size(); ++p) {
      const index_t row = perm[p];
      if (csr.row_nnz(row) <= k) break;  // sorted: the rest are shorter
      values_[cursor] = csr.row_values(row)[static_cast<std::size_t>(k)];
      col_[cursor] = csr.row_cols(row)[static_cast<std::size_t>(k)];
      ++cursor;
    }
  }
  jd_ptr_[static_cast<std::size_t>(mdim)] = static_cast<index_t>(cursor);
  LS_CHECK(cursor == values_.size(), "JDS fill mismatch");
}

void JdsMatrix::multiply_dense(std::span<const real_t> w,
                               std::span<real_t> y) const {
  LS_ASSERT(w.size() == static_cast<std::size_t>(cols_), "w size mismatch");
  LS_ASSERT(y.size() == static_cast<std::size_t>(rows_), "y size mismatch");
  std::fill(y.begin(), y.end(), real_t{0});
  const real_t* __restrict wd = w.data();
  const index_t* __restrict pd = perm_.data();
  const auto& kt = simd::kernels();
  for (index_t k = 0; k < num_jagged(); ++k) {
    const index_t b = jd_ptr_[static_cast<std::size_t>(k)];
    const index_t e = jd_ptr_[static_cast<std::size_t>(k) + 1];
    const real_t* __restrict vd = values_.data() + b;
    const index_t* __restrict cd = col_.data() + b;
    // Positions 0..len-1 of this diagonal belong to sorted rows 0..len-1
    // (pairwise distinct — the gather_scatter_axpy precondition).
    kt.gather_scatter_axpy(vd, cd, pd, e - b, wd, y.data());
  }
}

void JdsMatrix::multiply_dense_batch(std::span<const real_t> w, index_t b,
                                     std::span<real_t> y) const {
  LS_ASSERT(b >= 1 && b <= kMaxSmsvBatch, "batch size out of range");
  LS_ASSERT(w.size() == static_cast<std::size_t>(cols_) *
                            static_cast<std::size_t>(b),
            "w size mismatch");
  LS_ASSERT(y.size() == static_cast<std::size_t>(rows_) *
                            static_cast<std::size_t>(b),
            "y size mismatch");
  std::fill(y.begin(), y.end(), real_t{0});
  const real_t* __restrict wd = w.data();
  real_t* __restrict yd = y.data();
  const index_t* __restrict prm = perm_.data();
  const auto& kt = simd::kernels();
  for (index_t k = 0; k < num_jagged(); ++k) {
    const index_t lo = jd_ptr_[static_cast<std::size_t>(k)];
    const index_t hi = jd_ptr_[static_cast<std::size_t>(k) + 1];
    const real_t* __restrict vd = values_.data() + lo;
    const index_t* __restrict cd = col_.data() + lo;
    kt.gather_scatter_axpy_batch(vd, cd, prm, hi - lo, wd, b, yd);
  }
}

void JdsMatrix::gather_row(index_t i, SparseVector& out) const {
  LS_CHECK(i >= 0 && i < rows_, "gather_row index out of range");
  out.clear();
  const index_t p = inv_perm_[static_cast<std::size_t>(i)];
  // The row's k-th nonzero lives at jd_ptr[k] + p while the diagonal is
  // long enough to include sorted position p. Columns ascend with k (CSR
  // row order), so output stays sorted.
  for (index_t k = 0; k < num_jagged(); ++k) {
    const index_t b = jd_ptr_[static_cast<std::size_t>(k)];
    const index_t e = jd_ptr_[static_cast<std::size_t>(k) + 1];
    if (p >= e - b) break;
    const auto slot = static_cast<std::size_t>(b + p);
    out.push_back(col_[slot], values_[slot]);
  }
}

CooMatrix JdsMatrix::to_coo() const {
  std::vector<Triplet> triplets;
  triplets.reserve(values_.size());
  for (index_t k = 0; k < num_jagged(); ++k) {
    const index_t b = jd_ptr_[static_cast<std::size_t>(k)];
    const index_t e = jd_ptr_[static_cast<std::size_t>(k) + 1];
    for (index_t p = 0; p < e - b; ++p) {
      const auto slot = static_cast<std::size_t>(b + p);
      triplets.push_back({perm_[static_cast<std::size_t>(p)], col_[slot],
                          values_[slot]});
    }
  }
  return CooMatrix(rows_, cols_, std::move(triplets));
}

}  // namespace ls
