// JDS (jagged diagonal storage) — the vector-machine cousin of ELL and
// another classic derivative of the basic formats. Rows are sorted by
// nonzero count (descending, via a permutation), and the k-th nonzeros of
// all rows long enough form the k-th "jagged diagonal": a dense stream
// with no padding at all. Work is exactly nnz like CSR, but the inner
// loops are long unit-stride streams like ELL — without ELL's padding
// sensitivity to mdim.
#pragma once

#include <span>

#include "common/aligned_buffer.hpp"
#include "common/types.hpp"
#include "formats/coo.hpp"
#include "formats/format.hpp"
#include "formats/sparse_vector.hpp"

namespace ls {

/// Jagged-diagonal matrix.
class JdsMatrix {
 public:
  JdsMatrix() = default;

  /// Builds from canonical COO.
  explicit JdsMatrix(const CooMatrix& coo);

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  index_t nnz() const { return static_cast<index_t>(values_.size()); }
  static constexpr Format format() { return Format::kJDS; }

  /// Number of jagged diagonals (= mdim of the matrix).
  index_t num_jagged() const {
    return static_cast<index_t>(jd_ptr_.size()) - 1;
  }

  /// perm[p] = original row stored at sorted position p.
  std::span<const index_t> permutation() const {
    return {perm_.data(), perm_.size()};
  }

  index_t stored_elements() const { return nnz(); }

  /// Bytes: values + col indices + jd pointer + both permutation arrays.
  std::size_t storage_bytes() const {
    return values_.size_bytes() + col_.size_bytes() + jd_ptr_.size_bytes() +
           perm_.size_bytes() + inv_perm_.size_bytes();
  }

  index_t work_flops() const { return nnz(); }

  /// y = A * w: one unit-stride stream per jagged diagonal, scattering
  /// into y through the row permutation.
  void multiply_dense(std::span<const real_t> w, std::span<real_t> y) const;

  /// Batched SMSV: Y = A * W for `b` interleaved right-hand sides
  /// (W[j*b + k], Y[i*b + k], 1 <= b <= kMaxSmsvBatch); one sweep of the
  /// jagged-diagonal streams serves all b vectors. Accumulation order per
  /// output element matches multiply_dense.
  void multiply_dense_batch(std::span<const real_t> w, index_t b,
                            std::span<real_t> y) const;

  /// Extracts row i.
  void gather_row(index_t i, SparseVector& out) const;

  /// Lowers to canonical COO.
  CooMatrix to_coo() const;

 private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  AlignedBuffer<index_t> perm_;     // sorted position -> original row
  AlignedBuffer<index_t> inv_perm_; // original row -> sorted position
  AlignedBuffer<index_t> jd_ptr_;   // start of each jagged diagonal
  AlignedBuffer<index_t> col_;      // nnz entries
  AlignedBuffer<real_t> values_;    // nnz entries
};

}  // namespace ls
