// Sparse vector: the right-hand side of the SMSV products that dominate SMO.
//
// In each SMO iteration the two selected vectors X_high and X_low are *rows
// of the data matrix*, so they inherit the matrix's sparsity. The kernel
// engine gathers the selected row into a SparseVector, scatters it into a
// dense workspace, multiplies, and scatters zeros back over the same pattern
// so the workspace stays clean in O(nnz) instead of O(N).
#pragma once

#include <span>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"

namespace ls {

/// Index/value pair list sorted by index with no duplicates.
class SparseVector {
 public:
  SparseVector() = default;

  /// Constructs from parallel index/value arrays (must be sorted, unique).
  SparseVector(std::vector<index_t> indices, std::vector<real_t> values)
      : indices_(std::move(indices)), values_(std::move(values)) {
    LS_CHECK(indices_.size() == values_.size(),
             "sparse vector index/value length mismatch");
    for (std::size_t k = 1; k < indices_.size(); ++k) {
      LS_CHECK(indices_[k - 1] < indices_[k],
               "sparse vector indices must be strictly increasing");
    }
  }

  void clear() {
    indices_.clear();
    values_.clear();
  }

  /// Appends an entry; index must be greater than the last appended index.
  void push_back(index_t index, real_t value) {
    LS_ASSERT(indices_.empty() || indices_.back() < index,
              "push_back indices must be strictly increasing");
    indices_.push_back(index);
    values_.push_back(value);
  }

  index_t nnz() const { return static_cast<index_t>(indices_.size()); }
  bool empty() const { return indices_.empty(); }

  std::span<const index_t> indices() const { return indices_; }
  std::span<const real_t> values() const { return values_; }

  /// Scatters the entries into a dense workspace (workspace[idx] = val).
  void scatter(std::span<real_t> workspace) const {
    for (std::size_t k = 0; k < indices_.size(); ++k) {
      LS_ASSERT(static_cast<std::size_t>(indices_[k]) < workspace.size(),
                "scatter index out of range");
      workspace[static_cast<std::size_t>(indices_[k])] = values_[k];
    }
  }

  /// Zeroes exactly the entries this vector scattered (O(nnz) cleanup).
  void unscatter(std::span<real_t> workspace) const {
    for (index_t idx : indices_) {
      workspace[static_cast<std::size_t>(idx)] = 0.0;
    }
  }

  /// Dot product with a dense vector.
  real_t dot_dense(std::span<const real_t> dense) const {
    real_t s = 0.0;
    for (std::size_t k = 0; k < indices_.size(); ++k) {
      s += values_[k] * dense[static_cast<std::size_t>(indices_[k])];
    }
    return s;
  }

  /// Sparse-sparse dot product by merge join. This is the kernel LIBSVM's
  /// `Kernel::dot` uses per pair; our baseline SVM reuses it verbatim.
  real_t dot_sparse(const SparseVector& other) const {
    real_t s = 0.0;
    std::size_t i = 0, j = 0;
    while (i < indices_.size() && j < other.indices_.size()) {
      if (indices_[i] == other.indices_[j]) {
        s += values_[i] * other.values_[j];
        ++i;
        ++j;
      } else if (indices_[i] < other.indices_[j]) {
        ++i;
      } else {
        ++j;
      }
    }
    return s;
  }

  /// Sum of squared values (||x||^2), used by the Gaussian kernel.
  real_t squared_norm() const {
    real_t s = 0.0;
    for (real_t v : values_) s += v * v;
    return s;
  }

 private:
  std::vector<index_t> indices_;
  std::vector<real_t> values_;
};

}  // namespace ls
