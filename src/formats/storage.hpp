// Analytic storage model (the paper's Table II).
//
// All quantities are *element words* (one stored value or one stored index
// counts as one word), matching the paper's accounting. The measured
// storage_bytes() of each concrete matrix class is validated against these
// formulas in the test suite.
#pragma once

#include <algorithm>

#include "common/types.hpp"
#include "formats/format.hpp"

namespace ls {

/// Shape summary needed by the storage formulas.
struct StorageShape {
  index_t rows = 0;     // M
  index_t cols = 0;     // N
  index_t nnz = 0;      // number of nonzeros
  index_t ndig = 0;     // occupied diagonals (DIA)
  index_t mdim = 0;     // maximum row nnz (ELL)
  index_t nblocks = 0;  // occupied tiles (BCSR)
  index_t block_rows = 4;  // BCSR tile shape
  index_t block_cols = 4;
  index_t hyb_width = 0;     // ELL slab width (HYB)
  index_t hyb_overflow = 0;  // COO overflow nonzeros (HYB)
};

/// Exact stored words for a concrete matrix of this shape.
inline index_t storage_words(Format f, const StorageShape& s) {
  switch (f) {
    case Format::kDEN:
      return s.rows * s.cols;
    case Format::kCSR:
      // data + column indices + row pointer.
      return 2 * s.nnz + s.rows + 1;
    case Format::kCOO:
      // data + row indices + column indices.
      return 3 * s.nnz;
    case Format::kELL:
      // padded data + padded column indices.
      return 2 * s.rows * s.mdim;
    case Format::kDIA:
      // padded stripes of length min(M, N) + offsets array.
      return s.ndig * std::min(s.rows, s.cols) + s.ndig;
    case Format::kCSC:
      // data + row indices + column pointer.
      return 2 * s.nnz + s.cols + 1;
    case Format::kBCSR:
      // dense tiles + one column index per tile + block-row pointer.
      return s.nblocks * (s.block_rows * s.block_cols + 1) +
             (s.rows + s.block_rows - 1) / s.block_rows + 1;
    case Format::kHYB:
      // padded slab (values + cols) + per-row occupancy + overflow triples.
      return 2 * s.rows * s.hyb_width + s.rows + 3 * s.hyb_overflow;
    case Format::kJDS:
      // values + cols + jd pointer (mdim + 1) + two permutation arrays.
      return 2 * s.nnz + s.mdim + 1 + 2 * s.rows;
  }
  return 0;
}

/// Table II "Min" column: the smallest possible storage for an M x N matrix
/// (attained at nnz -> minimal occupancy).
inline index_t storage_words_min(Format f, index_t m, index_t n) {
  switch (f) {
    case Format::kDEN: return m * n;        // M*N regardless of sparsity
    case Format::kCSR: return m + 2;        // O(M + 2): empty data, ptr only
    case Format::kCOO: return 1;            // O(1): empty arrays
    case Format::kELL: return 2 * m;        // O(2M): mdim = 1
    case Format::kDIA: return m + 1;        // O(M + 1): one diagonal
    case Format::kCSC: return n + 2;        // empty data, ptr only
    case Format::kBCSR:
      // One 4x4 tile + its index + the block-row pointer.
      return 17 + (m + 3) / 4 + 1;
    case Format::kHYB: return 3 * m + 3;  // width-1 slab + occupancy
    case Format::kJDS: return 2 * m + 4;  // 1 nnz + pointers + perms
  }
  return 0;
}

/// Table II "Max" column: the worst-case storage for an M x N matrix
/// (attained at full density / adversarial structure).
inline index_t storage_words_max(Format f, index_t m, index_t n) {
  switch (f) {
    case Format::kDEN: return m * n;
    // Table II prints 2MN + M; the exact count includes the row pointer's
    // final sentinel entry (+1).
    case Format::kCSR: return 2 * m * n + m + 1;
    case Format::kCOO: return 3 * m * n;              // 3MN
    case Format::kELL: return 2 * m * n;              // 2MN (mdim = N)
    case Format::kDIA:
      // (min(M,N) + 1) * (M + N - 1): every diagonal occupied.
      return (std::min(m, n) + 1) * (m + n - 1);
    case Format::kCSC: return 2 * m * n + n + 1;
    case Format::kBCSR:
      // Every 4x4 tile occupied.
      return ((m + 3) / 4) * ((n + 3) / 4) * 17 + (m + 3) / 4 + 1;
    case Format::kHYB:
      // Dense: slab width n, no overflow, plus the occupancy array.
      return 2 * m * n + m;
    case Format::kJDS:
      // Dense: nnz = m * n plus pointers and the two permutations.
      return 2 * m * n + n + 1 + 2 * m;
  }
  return 0;
}

}  // namespace ls
