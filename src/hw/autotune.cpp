#include "hw/autotune.hpp"

#include <limits>

#include "common/error.hpp"

namespace ls {

std::optional<TunedConfig> evaluate_config(const DeviceSpec& device,
                                           const DnnConfig& config) {
  const auto epochs = epochs_to_target(config);
  if (!epochs) return std::nullopt;
  TunedConfig out;
  out.config = config;
  out.epochs = *epochs;
  out.iterations = *iterations_to_target(config);
  out.seconds = device.training_seconds(out.iterations, config.batch);
  return out;
}

namespace {

/// Keeps the faster of two candidates (treating nullopt as +inf).
void consider(std::optional<TunedConfig>& best,
              const std::optional<TunedConfig>& candidate) {
  if (!candidate) return;
  if (!best || candidate->seconds < best->seconds) best = candidate;
}

}  // namespace

TunedConfig tune_batch(const DeviceSpec& device, double eta, double mu) {
  std::optional<TunedConfig> best;
  for (index_t b : batch_tuning_space()) {
    consider(best, evaluate_config(device, {b, eta, mu}));
  }
  LS_CHECK(best.has_value(), "no convergent batch size in the tuning space");
  return *best;
}

TunedConfig tune_learning_rate(const DeviceSpec& device, index_t batch,
                               double mu) {
  std::optional<TunedConfig> best;
  for (double eta : lr_tuning_space()) {
    consider(best, evaluate_config(device, {batch, eta, mu}));
  }
  LS_CHECK(best.has_value(),
           "no convergent learning rate in the tuning space");
  return *best;
}

TunedConfig tune_momentum(const DeviceSpec& device, index_t batch,
                          double eta) {
  std::optional<TunedConfig> best;
  for (double mu : momentum_tuning_space()) {
    consider(best, evaluate_config(device, {batch, eta, mu}));
  }
  LS_CHECK(best.has_value(), "no convergent momentum in the tuning space");
  return *best;
}

std::vector<TunedConfig> tune_sequential(const DeviceSpec& device,
                                         const DnnConfig& start) {
  std::vector<TunedConfig> stages;
  // Stage 1: batch size at the starting (eta, mu)  -> Table VII "Tune B".
  stages.push_back(tune_batch(device, start.eta, start.mu));
  // Stage 2: learning rate at the tuned B          -> "Tune eta".
  stages.push_back(tune_learning_rate(device, stages[0].config.batch,
                                      start.mu));
  // Stage 3: momentum at the tuned (B, eta)        -> "Tune M".
  stages.push_back(tune_momentum(device, stages[1].config.batch,
                                 stages[1].config.eta));
  return stages;
}

TunedConfig tune_joint(const DeviceSpec& device) {
  std::optional<TunedConfig> best;
  for (index_t b : batch_tuning_space()) {
    for (double eta : lr_tuning_space()) {
      for (double mu : momentum_tuning_space()) {
        consider(best, evaluate_config(device, {b, eta, mu}));
      }
    }
  }
  LS_CHECK(best.has_value(), "no convergent configuration at all");
  return *best;
}

}  // namespace ls
