// Hyper-parameter auto-tuning over the convergence + hardware models —
// the paper's Sections IV-C (batch), IV-D (learning rate), IV-E (momentum).
//
// The paper tuned sequentially: first B with (eta, mu) at Caffe defaults,
// then eta at the tuned B, then mu at the tuned (B, eta) — producing the
// DGX1 / DGX2 / DGX3 rows of Table VII. tune_sequential() reproduces that
// procedure; tune_joint() searches the full cross-product (an extension the
// paper left open) and verifies the sequential result is globally optimal
// under the calibrated model.
#pragma once

#include <optional>
#include <vector>

#include "dnn/convergence.hpp"
#include "hw/device.hpp"

namespace ls {

/// A fully evaluated configuration on a device.
struct TunedConfig {
  DnnConfig config;
  double epochs = 0.0;
  index_t iterations = 0;
  double seconds = 0.0;
};

/// Evaluates one configuration on a device; nullopt when it diverges.
std::optional<TunedConfig> evaluate_config(const DeviceSpec& device,
                                           const DnnConfig& config);

/// Best batch size from the paper's space, holding (eta, mu) fixed.
TunedConfig tune_batch(const DeviceSpec& device, double eta, double mu);

/// Best learning rate from the paper's space, holding (B, mu) fixed.
TunedConfig tune_learning_rate(const DeviceSpec& device, index_t batch,
                               double mu);

/// Best momentum from the paper's space, holding (B, eta) fixed.
TunedConfig tune_momentum(const DeviceSpec& device, index_t batch,
                          double eta);

/// The paper's three-stage tuning; returns {stage1, stage2, stage3}.
std::vector<TunedConfig> tune_sequential(const DeviceSpec& device,
                                         const DnnConfig& start);

/// Exhaustive search over the full B x eta x mu cross-product.
TunedConfig tune_joint(const DeviceSpec& device);

}  // namespace ls
