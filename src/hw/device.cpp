#include "hw/device.hpp"

#include "common/error.hpp"

namespace ls {

double DeviceSpec::seconds_per_iteration(index_t batch) const {
  LS_CHECK(batch >= 1, "batch must be positive");
  const double h = half_saturation_batch;
  return t100 * (static_cast<double>(batch) + h) / (100.0 + h);
}

const std::vector<DeviceSpec>& device_db() {
  // t100 values are Table VII time / 60,000 iterations for the B = 100 rows.
  static const std::vector<DeviceSpec> db = {
      {"cpu8", "Intel Caffe on 8-core CPUs", 1571.0, 29427.0 / 60000.0, 16.0,
       0},
      {"knl", "Intel Caffe on KNL", 4876.0, 4922.0 / 60000.0, 32.0, 0},
      {"haswell", "Intel Caffe on Haswell", 7400.0, 1997.0 / 60000.0, 32.0,
       0},
      {"p100", "Nvidia Caffe on Tesla P100 GPU", 11571.0, 503.0 / 60000.0,
       128.0, 1},
      // h calibrated from the paper's two DGX operating points:
      // 387 s / 60,000 iters at B=100 and 361 s / 30,000 iters at B=512.
      {"dgx", "Nvidia Caffe on DGX station", 79000.0, 387.0 / 60000.0, 375.7,
       4},
  };
  return db;
}

const DeviceSpec& device_by_id(const std::string& id) {
  for (const DeviceSpec& d : device_db()) {
    if (d.id == id) return d;
  }
  throw Error("unknown device '" + id +
              "' (expected cpu8, knl, haswell, p100 or dgx)");
}

double speedup_vs_baseline(double seconds, double baseline_seconds) {
  LS_CHECK(seconds > 0, "seconds must be positive");
  return baseline_seconds / seconds;
}

double price_per_speedup(double price_usd, double speedup) {
  LS_CHECK(speedup > 0, "speedup must be positive");
  return price_usd / speedup;
}

}  // namespace ls
