// Hardware performance and price model (Section IV-B, Table VII).
//
// The paper compares five platforms we do not have (8-core Xeon, KNL,
// Haswell, P100, DGX station). Each is modelled by two parameters:
//
//   * t100  — measured seconds per training iteration at batch 100, taken
//             directly from Table VII (total time / 60,000 iterations);
//   * half_saturation_batch h — how quickly throughput saturates with
//             batch size: time_per_iter(B) = t100 * (B + h) / (100 + h).
//             h is calibrated for the DGX from the paper's two published
//             DGX operating points (B=100: 6.45 ms, B=512: 12.03 ms
//             => h ~ 376); CPUs saturate almost immediately (small h),
//             single GPUs in between.
//
// Prices are Table VII's "Price ($)" column. The price-per-speedup metric
// (Fig. 6) is price / speedup with the 8-core CPU as the 1x baseline.
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"

namespace ls {

/// One evaluated platform.
struct DeviceSpec {
  std::string id;            ///< short name ("p100")
  std::string display;       ///< Table VII row label
  double price_usd = 0.0;    ///< Table VII price column
  double t100 = 0.0;         ///< seconds per iteration at B = 100
  double half_saturation_batch = 0.0;  ///< h in the saturation model
  int gpus = 0;              ///< device count (0 = CPU platform)

  /// Modelled seconds per training iteration at batch size B.
  double seconds_per_iteration(index_t batch) const;

  /// Modelled seconds for `iterations` iterations at batch size B.
  double training_seconds(index_t iterations, index_t batch) const {
    return static_cast<double>(iterations) * seconds_per_iteration(batch);
  }
};

/// The five Table VII platforms, in paper order.
const std::vector<DeviceSpec>& device_db();

/// Device lookup by id ("cpu8", "knl", "haswell", "p100", "dgx").
const DeviceSpec& device_by_id(const std::string& id);

/// Speedup of `seconds` relative to the 8-core-CPU baseline time.
double speedup_vs_baseline(double seconds, double baseline_seconds);

/// The paper's Fig. 6 metric: dollars per unit of speedup.
double price_per_speedup(double price_usd, double speedup);

}  // namespace ls
