#include "hw/multigpu.hpp"

#include "common/error.hpp"

namespace ls {

double MultiGpuModel::seconds_per_iteration(int gpus, index_t batch) const {
  LS_CHECK(gpus >= 1, "need at least one GPU");
  LS_CHECK(batch >= 1, "batch must be positive");
  const double per_gpu = static_cast<double>(batch) / gpus;
  const double compute = c * (per_gpu + h_gpu);
  // Ring allreduce: volume factor 2 (P - 1) / P, normalised so the stored
  // constant is the P = 4 cost (the DGX's NCCL ring); zero at P = 1.
  const double allreduce =
      gpus == 1 ? 0.0
                : allreduce0 * (4.0 * (gpus - 1) / (3.0 * gpus));
  return compute + allreduce;
}

MultiGpuModel paper_dgx_model() {
  // Anchors (Table VII):
  //   P100, P=1, B=100:  503 s / 60,000 iters  = 8.3833 ms / iter
  //   DGX,  P=4, B=100:  387 s / 60,000 iters  = 6.4500 ms / iter
  //   DGX,  P=4, B=512:  361 s / 30,000 iters  = 12.033 ms / iter
  // Solving t = c (B/P + h) + ar4:
  //   c (128 - 25)  = 12.033e-3 - 6.45e-3   => c   = 54.2e-6 s/sample
  //   c (100 + h)   = 8.3833e-3             => h   = 54.7
  //   c (25 + h) + ar4 = 6.45e-3            => ar4 = 2.13e-3 s
  MultiGpuModel m;
  m.c = (12.033e-3 - 6.45e-3) / 103.0;
  m.h_gpu = 8.3833e-3 / m.c - 100.0;
  m.allreduce0 = 6.45e-3 - m.c * (25.0 + m.h_gpu);
  return m;
}

}  // namespace ls
