// Multi-GPU data-parallel scaling model (Section IV-B).
//
// The paper observes that "the straightforward porting from one P100 GPU
// to one DGX station [4x P100] only brings 1.3x speedup" at B = 100, and
// that tuning the batch size is what unlocks the extra GPUs. The mechanism:
// each of P workers computes on B/P samples (per-GPU batches shrink below
// the saturation point) and every iteration pays an NCCL allreduce on the
// full weight set.
//
//   t_iter(P, B) = c * (B / P + h_gpu) + allreduce(P)
//
// with the single-GPU throughput constants (c, h_gpu) anchored to the
// paper's P100 row and the allreduce term anchored to the DGX B = 100 row.
// bench/ablation_multigpu_scaling sweeps P and B over this model.
#pragma once

#include "common/types.hpp"

namespace ls {

/// Data-parallel GPU cluster model.
struct MultiGpuModel {
  double c = 0.0;          ///< seconds per sample in the linear regime
  double h_gpu = 0.0;      ///< per-GPU half-saturation batch
  double allreduce0 = 0.0; ///< allreduce seconds at P = 2 (ring baseline)

  /// Seconds per training iteration with P workers at global batch B.
  double seconds_per_iteration(int gpus, index_t batch) const;

  /// Speedup of P GPUs over 1 GPU at the same global batch size.
  double scaling(int gpus, index_t batch) const {
    return seconds_per_iteration(1, batch) /
           seconds_per_iteration(gpus, batch);
  }
};

/// Model anchored to the paper's P100 and DGX Table VII rows.
MultiGpuModel paper_dgx_model();

}  // namespace ls
