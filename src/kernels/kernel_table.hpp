// Internal: per-ISA table constructors. Each TU is compiled with exactly
// the flags its ISA needs (see src/kernels/CMakeLists.txt); the dispatcher
// only dereferences a table after the cpuid check in level_supported().
#pragma once

#include "kernels/simd.hpp"

namespace ls::simd::detail {

const KernelTable& scalar_table();

#if defined(__x86_64__) || defined(__i386__)
#define LS_KERNELS_X86 1
const KernelTable& avx2_table();
const KernelTable& avx512_table();
#endif

#if defined(__aarch64__)
#define LS_KERNELS_NEON 1
const KernelTable& neon_table();
#endif

}  // namespace ls::simd::detail
