// AVX2+FMA kernel table (W = 4). Compiled with -mavx2 -mfma only for
// this TU; the dispatcher installs it only after __builtin_cpu_supports
// confirms the host has both.
#include "kernels/kernel_table.hpp"

#if defined(LS_KERNELS_X86)

#include <immintrin.h>

#include "kernels/vector_kernels.hpp"

namespace ls::simd::detail {

namespace {

struct Avx2Ops {
  using reg = __m256d;
  static constexpr int W = 4;

  static reg zero() { return _mm256_setzero_pd(); }
  static reg loadu(const double* p) { return _mm256_loadu_pd(p); }
  static void storeu(double* p, reg v) { _mm256_storeu_pd(p, v); }
  static reg broadcast(double a) { return _mm256_set1_pd(a); }
  static reg fmadd(reg a, reg b, reg c) { return _mm256_fmadd_pd(a, b, c); }
  static reg add(reg a, reg b) { return _mm256_add_pd(a, b); }
  static reg gather(const double* base, const index_t* idx) {
    const __m256i vi =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(idx));
    return _mm256_i64gather_pd(base, vi, 8);
  }
};

}  // namespace

const KernelTable& avx2_table() {
  static const KernelTable table = make_vector_table<Avx2Ops>(SimdLevel::kAVX2);
  return table;
}

}  // namespace ls::simd::detail

#endif  // LS_KERNELS_X86
