// AVX-512F kernel table (W = 8). Compiled with -mavx512f only for this
// TU; the dispatcher installs it only after __builtin_cpu_supports
// confirms the host has it. No masked loads anywhere — tails run scalar,
// so the kernels never read past the caller's buffers (ASan-clean on
// arbitrary CSR row offsets).
#include "kernels/kernel_table.hpp"

#if defined(LS_KERNELS_X86)

#include <immintrin.h>

#include "kernels/vector_kernels.hpp"

namespace ls::simd::detail {

namespace {

struct Avx512Ops {
  using reg = __m512d;
  static constexpr int W = 8;

  static reg zero() { return _mm512_setzero_pd(); }
  static reg loadu(const double* p) { return _mm512_loadu_pd(p); }
  static void storeu(double* p, reg v) { _mm512_storeu_pd(p, v); }
  static reg broadcast(double a) { return _mm512_set1_pd(a); }
  static reg fmadd(reg a, reg b, reg c) { return _mm512_fmadd_pd(a, b, c); }
  static reg add(reg a, reg b) { return _mm512_add_pd(a, b); }
  static reg gather(const double* base, const index_t* idx) {
    const __m512i vi = _mm512_loadu_si512(idx);
    return _mm512_i64gather_pd(vi, base, 8);
  }
};

}  // namespace

const KernelTable& avx512_table() {
  static const KernelTable table =
      make_vector_table<Avx512Ops>(SimdLevel::kAVX512);
  return table;
}

}  // namespace ls::simd::detail

#endif  // LS_KERNELS_X86
