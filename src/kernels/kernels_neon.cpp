// AArch64 NEON kernel table (W = 2). NEON has no hardware gather for
// doubles; the wrapper emulates it with two scalar loads, which still
// pays off in the batched kernels (the q loop vectorises) and keeps the
// accumulation-order contract identical to the x86 tables.
#include "kernels/kernel_table.hpp"

#if defined(LS_KERNELS_NEON)

#include <arm_neon.h>

#include "kernels/vector_kernels.hpp"

namespace ls::simd::detail {

namespace {

struct NeonOps {
  using reg = float64x2_t;
  static constexpr int W = 2;

  static reg zero() { return vdupq_n_f64(0.0); }
  static reg loadu(const double* p) { return vld1q_f64(p); }
  static void storeu(double* p, reg v) { vst1q_f64(p, v); }
  static reg broadcast(double a) { return vdupq_n_f64(a); }
  static reg fmadd(reg a, reg b, reg c) { return vfmaq_f64(c, a, b); }
  static reg add(reg a, reg b) { return vaddq_f64(a, b); }
  static reg gather(const double* base, const index_t* idx) {
    const double t[2] = {base[idx[0]], base[idx[1]]};
    return vld1q_f64(t);
  }
};

}  // namespace

const KernelTable& neon_table() {
  static const KernelTable table = make_vector_table<NeonOps>(SimdLevel::kNEON);
  return table;
}

}  // namespace ls::simd::detail

#endif  // LS_KERNELS_NEON
