// Portable reference kernels (SimdLevel::kScalar, W = 1).
//
// These are the semantic ground truth for the cross-ISA differential
// harness and the bodies the pre-dispatch format loops used verbatim, so
// the scalar level reproduces the historical results bit for bit. Every
// loop is a plain sequential accumulation; the W-blocked partial-sum
// contract of simd.hpp degenerates to exactly this at W = 1.
#include "kernels/kernel_table.hpp"

namespace ls::simd::detail {

namespace {

real_t dense_row_dot(const real_t* __restrict r, const real_t* __restrict w,
                     index_t n) {
  real_t s = 0.0;
  for (index_t j = 0; j < n; ++j) s += r[j] * w[j];
  return s;
}

real_t sparse_row_dot(const real_t* __restrict v, const index_t* __restrict c,
                      index_t len, const real_t* __restrict w) {
  real_t s = 0.0;
  for (index_t k = 0; k < len; ++k) s += v[k] * w[c[k]];
  return s;
}

void dense_row_batch(const real_t* __restrict r, index_t n,
                     const real_t* __restrict w, index_t b,
                     real_t* __restrict y) {
  for (index_t q = 0; q < b; ++q) y[q] = 0.0;
  for (index_t j = 0; j < n; ++j) {
    const real_t a = r[j];
    const real_t* __restrict wj = w + static_cast<std::size_t>(j * b);
    for (index_t q = 0; q < b; ++q) y[q] += a * wj[q];
  }
}

void sparse_row_batch(const real_t* __restrict v, const index_t* __restrict c,
                      index_t len, const real_t* __restrict w, index_t b,
                      real_t* __restrict y) {
  for (index_t q = 0; q < b; ++q) y[q] = 0.0;
  for (index_t k = 0; k < len; ++k) {
    const real_t a = v[k];
    const real_t* __restrict wj = w + static_cast<std::size_t>(c[k] * b);
    for (index_t q = 0; q < b; ++q) y[q] += a * wj[q];
  }
}

void gather_axpy(const real_t* __restrict v, const index_t* __restrict c,
                 index_t len, const real_t* __restrict w,
                 real_t* __restrict y) {
  for (index_t i = 0; i < len; ++i) y[i] += v[i] * w[c[i]];
}

void gather_scatter_axpy(const real_t* __restrict v,
                         const index_t* __restrict c,
                         const index_t* __restrict rows, index_t len,
                         const real_t* __restrict w, real_t* y) {
  for (index_t i = 0; i < len; ++i) {
    y[static_cast<std::size_t>(rows[i])] += v[i] * w[c[i]];
  }
}

void gather_axpy_batch(const real_t* __restrict v,
                       const index_t* __restrict c, index_t len,
                       const real_t* __restrict w, index_t b,
                       real_t* __restrict y) {
  for (index_t i = 0; i < len; ++i) {
    const real_t a = v[i];
    const real_t* __restrict wj = w + static_cast<std::size_t>(c[i] * b);
    real_t* __restrict yi = y + static_cast<std::size_t>(i * b);
    for (index_t q = 0; q < b; ++q) yi[q] += a * wj[q];
  }
}

void gather_scatter_axpy_batch(const real_t* __restrict v,
                               const index_t* __restrict c,
                               const index_t* __restrict rows, index_t len,
                               const real_t* __restrict w, index_t b,
                               real_t* y) {
  for (index_t i = 0; i < len; ++i) {
    const real_t a = v[i];
    const real_t* __restrict wj = w + static_cast<std::size_t>(c[i] * b);
    real_t* __restrict yi = y + static_cast<std::size_t>(rows[i] * b);
    for (index_t q = 0; q < b; ++q) yi[q] += a * wj[q];
  }
}

}  // namespace

const KernelTable& scalar_table() {
  static const KernelTable table = {
      SimdLevel::kScalar,
      1,
      dense_row_dot,
      sparse_row_dot,
      dense_row_batch,
      sparse_row_batch,
      gather_axpy,
      gather_scatter_axpy,
      gather_axpy_batch,
      gather_scatter_axpy_batch,
  };
  return table;
}

}  // namespace ls::simd::detail
