// Runtime dispatch: cpuid detection, LS_SIMD override, atomic table swap.
#include "kernels/simd.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "common/metrics.hpp"
#include "kernels/kernel_table.hpp"

namespace ls::simd {

namespace {

std::atomic<const KernelTable*> g_active{nullptr};
std::atomic<std::int64_t> g_fallbacks{0};
std::once_flag g_env_once;
std::once_flag g_warn_once;

void warn_fallback(std::string_view requested) {
  g_fallbacks.fetch_add(1, std::memory_order_relaxed);
  metrics::counter_add("simd.fallback_total");
  std::call_once(g_warn_once, [&] {
    std::fprintf(stderr,
                 "[ls] warning: LS_SIMD level \"%.*s\" unknown or unsupported "
                 "on this host; falling back to scalar kernels\n",
                 static_cast<int>(requested.size()), requested.data());
  });
}

const KernelTable* table_for(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return &detail::scalar_table();
#if defined(LS_KERNELS_NEON)
    case SimdLevel::kNEON:
      return &detail::neon_table();
#endif
#if defined(LS_KERNELS_X86)
    case SimdLevel::kAVX2:
      return &detail::avx2_table();
    case SimdLevel::kAVX512:
      return &detail::avx512_table();
#endif
    default:
      return nullptr;
  }
}

// install_* swap the table without touching the env-init once_flag, so the
// env-init lambda can reuse them without call_once re-entrancy.
SimdLevel install_level(SimdLevel want) {
  SimdLevel actual = want;
  if (!level_supported(want)) {
    warn_fallback(level_name(want));
    actual = SimdLevel::kScalar;
  }
  g_active.store(table_for(actual), std::memory_order_release);
  metrics::annotate("simd.active_level", level_name(actual));
  return actual;
}

SimdLevel install_setting(std::string_view setting) {
  SimdLevel want = SimdLevel::kScalar;
  if (!parse_level(setting, &want)) {
    warn_fallback(setting);
    g_active.store(table_for(SimdLevel::kScalar), std::memory_order_release);
    metrics::annotate("simd.active_level", "scalar");
    return SimdLevel::kScalar;
  }
  return install_level(want);
}

void init_from_env() {
  std::call_once(g_env_once, [] {
    const char* env = std::getenv("LS_SIMD");
    if (env == nullptr || env[0] == '\0') {
      g_active.store(table_for(best_supported()), std::memory_order_release);
      return;
    }
    install_setting(env);
  });
}

}  // namespace

std::string_view level_name(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kNEON:
      return "neon";
    case SimdLevel::kAVX2:
      return "avx2";
    case SimdLevel::kAVX512:
      return "avx512";
  }
  return "scalar";
}

bool level_compiled(SimdLevel level) { return table_for(level) != nullptr; }

bool level_supported(SimdLevel level) {
  if (!level_compiled(level)) return false;
  switch (level) {
    case SimdLevel::kScalar:
      return true;
#if defined(LS_KERNELS_NEON)
    case SimdLevel::kNEON:
      return true;  // baseline on AArch64
#endif
#if defined(LS_KERNELS_X86)
    case SimdLevel::kAVX2:
      return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
    case SimdLevel::kAVX512:
      return __builtin_cpu_supports("avx512f") != 0;
#endif
    default:
      return false;
  }
}

SimdLevel best_supported() {
  for (int l = kNumSimdLevels - 1; l > 0; --l) {
    const auto level = static_cast<SimdLevel>(l);
    if (level_supported(level)) return level;
  }
  return SimdLevel::kScalar;
}

bool parse_level(std::string_view name, SimdLevel* out) {
  if (name == "scalar") {
    *out = SimdLevel::kScalar;
  } else if (name == "neon") {
    *out = SimdLevel::kNEON;
  } else if (name == "avx2") {
    *out = SimdLevel::kAVX2;
  } else if (name == "avx512") {
    *out = SimdLevel::kAVX512;
  } else if (name == "native") {
    *out = best_supported();
  } else {
    return false;
  }
  return true;
}

SimdLevel active_level() { return kernels().level; }

SimdLevel set_level(SimdLevel want) {
  init_from_env();
  return install_level(want);
}

SimdLevel apply_setting(std::string_view setting) {
  init_from_env();
  return install_setting(setting);
}

std::int64_t fallback_events() {
  return g_fallbacks.load(std::memory_order_relaxed);
}

const KernelTable& kernels() {
  const KernelTable* t = g_active.load(std::memory_order_acquire);
  if (t == nullptr) {
    init_from_env();
    t = g_active.load(std::memory_order_acquire);
  }
  return *t;
}

}  // namespace ls::simd
