// Runtime-dispatched SIMD micro-kernel layer.
//
// Every format SMSV hot loop (dense row dots, CSR gather-dots, the
// ELL/JDS diagonal strips and all their batched-rhs variants) calls
// through one process-wide KernelTable selected at startup from the CPU's
// capabilities (cpuid) and overridable with LS_SIMD=scalar|avx2|avx512|
// neon|native for tests and ops. The scalar table is always present and
// is the semantic reference the cross-ISA differential harness compares
// every other table against (tests/test_differential.cpp,
// tests/test_simd_fuzz.cpp).
//
// Numerical contract (see DESIGN.md §16): at any fixed level L with
// accumulator width W(L), a dot-style kernel accumulates W partial sums
// p = 0..W-1 over the elements with index ≡ p (mod W) of the full blocks,
// folds them left to right, then adds the tail elements sequentially —
// and the batched kernels replicate exactly that per-lane order with
// fused multiply-adds, so a batched product's lane k is BIT-identical to
// the single-rhs product at the same level. Across levels results differ
// only by accumulation order (ULP-bounded vs scalar).
#pragma once

#include <cstdint>
#include <string_view>

#include "common/types.hpp"

namespace ls::simd {

/// Instruction-set level of a kernel table. Values are stable; order is
/// "preference order" — best_supported() returns the highest supported.
enum class SimdLevel : int {
  kScalar = 0,  ///< portable reference kernels (always available)
  kNEON = 1,    ///< 128-bit AArch64 (2 doubles/vector)
  kAVX2 = 2,    ///< 256-bit x86 AVX2+FMA (4 doubles/vector)
  kAVX512 = 3,  ///< 512-bit x86 AVX-512F (8 doubles/vector)
};

inline constexpr int kNumSimdLevels = 4;

/// Upper bound on the rhs count `b` a batched kernel call accepts (the
/// batched kernels block their accumulators at this width). Mirrors
/// ls::kMaxSmsvBatch — a static_assert in formats/dense.cpp ties them.
inline constexpr int kMaxKernelBatch = 64;

/// Dispatch table of the format micro-kernels at one ISA level.
///
/// Pointer arguments never require alignment (CSR row starts land on
/// arbitrary offsets); every vector kernel uses unaligned loads. `w` is
/// the dense workspace (single-rhs kernels) or the interleaved rhs block
/// (batched kernels: entry j of rhs q at w[j*b + q]).
struct KernelTable {
  SimdLevel level;
  int width;  ///< doubles per vector accumulator block W(L)

  /// sum_j r[j] * w[j] over j in [0, n) — the DEN row dot.
  real_t (*dense_row_dot)(const real_t* r, const real_t* w, index_t n);

  /// sum_k v[k] * w[c[k]] over k in [0, len) — the CSR row gather-dot.
  real_t (*sparse_row_dot)(const real_t* v, const index_t* c, index_t len,
                           const real_t* w);

  /// y[q] = sum_j r[j] * w[j*b + q] for q in [0, b) (overwrites y).
  void (*dense_row_batch)(const real_t* r, index_t n, const real_t* w,
                          index_t b, real_t* y);

  /// y[q] = sum_k v[k] * w[c[k]*b + q] for q in [0, b) (overwrites y).
  void (*sparse_row_batch)(const real_t* v, const index_t* c, index_t len,
                           const real_t* w, index_t b, real_t* y);

  /// y[i] += v[i] * w[c[i]] for i in [0, len) — an ELL/HYB diagonal strip.
  void (*gather_axpy)(const real_t* v, const index_t* c, index_t len,
                      const real_t* w, real_t* y);

  /// y[rows[i]] += v[i] * w[c[i]] for i in [0, len) — a JDS diagonal
  /// strip. Precondition: rows[0..len) are pairwise distinct (JDS
  /// diagonals touch each permuted row at most once).
  void (*gather_scatter_axpy)(const real_t* v, const index_t* c,
                              const index_t* rows, index_t len,
                              const real_t* w, real_t* y);

  /// y[i*b + q] += v[i] * w[c[i]*b + q] — batched ELL/HYB strip.
  void (*gather_axpy_batch)(const real_t* v, const index_t* c, index_t len,
                            const real_t* w, index_t b, real_t* y);

  /// y[rows[i]*b + q] += v[i] * w[c[i]*b + q] — batched JDS strip.
  /// Rows may repeat (lanes are updated per i, in i order).
  void (*gather_scatter_axpy_batch)(const real_t* v, const index_t* c,
                                    const index_t* rows, index_t len,
                                    const real_t* w, index_t b, real_t* y);
};

/// Lower-case level name ("scalar", "neon", "avx2", "avx512").
std::string_view level_name(SimdLevel level);

/// True when this binary carries a table for `level` (compile-time arch).
bool level_compiled(SimdLevel level);

/// True when `level` is compiled in AND the running CPU supports it.
bool level_supported(SimdLevel level);

/// Highest supported level on this host ("native").
SimdLevel best_supported();

/// Parses "scalar" / "neon" / "avx2" / "avx512" / "native". Returns false
/// on anything else (caller decides the fallback).
bool parse_level(std::string_view name, SimdLevel* out);

/// The level the active table actually runs at (initialises from LS_SIMD
/// on first use; unset or "native" means best_supported()).
SimdLevel active_level();

/// Installs the table for `want`; returns the level actually installed.
/// An unsupported level falls back to scalar, increments the fallback
/// counter and warns once on stderr. Thread-safe (atomic table swap);
/// callers racing kernels against a level switch see either table, never
/// a torn one.
SimdLevel set_level(SimdLevel want);

/// Applies one LS_SIMD-style setting string ("avx2", "native", ...). An
/// unparsable string falls back to scalar with a warning + counter, per
/// the dispatch-matrix contract. Returns the installed level. Exposed so
/// the env-init path is testable in-process.
SimdLevel apply_setting(std::string_view setting);

/// Number of times a requested level (env or set_level) was unknown or
/// unsupported and the dispatcher fell back to scalar.
std::int64_t fallback_events();

/// The active dispatch table.
const KernelTable& kernels();

/// RAII level override for tests and benches: installs `want` (with the
/// usual clamp-to-supported) and restores the previous level on scope
/// exit.
class ScopedSimdLevel {
 public:
  explicit ScopedSimdLevel(SimdLevel want)
      : previous_(active_level()), installed_(set_level(want)) {}
  ~ScopedSimdLevel() { set_level(previous_); }
  ScopedSimdLevel(const ScopedSimdLevel&) = delete;
  ScopedSimdLevel& operator=(const ScopedSimdLevel&) = delete;

  /// The level actually installed (scalar when `want` was unsupported).
  SimdLevel installed() const { return installed_; }

 private:
  SimdLevel previous_;
  SimdLevel installed_;
};

}  // namespace ls::simd
