// Internal: the vector kernel bodies, written once as templates over a
// per-ISA vector-ops wrapper `V` and instantiated inside each ISA's TU
// (kernels_avx2.cpp / kernels_avx512.cpp / kernels_neon.cpp) so every
// instantiation is compiled with exactly that ISA's flags.
//
// `V` provides:
//   using reg            — the vector register type (W doubles)
//   static constexpr int W
//   reg  zero()
//   reg  loadu(const double*)          — unaligned load of W doubles
//   void storeu(double*, reg)
//   reg  broadcast(double)
//   reg  fmadd(reg a, reg b, reg c)    — fused a*b + c, per lane
//   reg  add(reg, reg)
//   reg  gather(const double* base, const index_t* idx)
//                                      — {base[idx[0]], ..., base[idx[W-1]]}
//
// Sharing one body per kernel across ISAs is what enforces the
// accumulation-order contract of simd.hpp: at width W, W partial sums
// over the full blocks (partial p owns elements ≡ p mod W), folded left
// to right, tail elements added sequentially with fused multiply-adds —
// and the batched variants replicate that order per lane, so batch lane
// q is bit-identical to the single-rhs kernel at the same level.
#pragma once

#include <cmath>
#include <cstddef>

#include "kernels/simd.hpp"

namespace ls::simd::detail {

template <class V>
real_t vk_dense_row_dot(const real_t* __restrict r,
                        const real_t* __restrict w, index_t n) {
  constexpr int W = V::W;
  if (n < W) {
    // No full blocks: the W partials stay zero and fold to 0.0, so the
    // sequential tail alone is bit-identical — skip the vector setup,
    // which otherwise dominates short CSR rows.
    real_t s = 0.0;
    for (index_t j = 0; j < n; ++j) s = std::fma(r[j], w[j], s);
    return s;
  }
  typename V::reg acc = V::zero();
  index_t j = 0;
  for (; j + W <= n; j += W) {
    acc = V::fmadd(V::loadu(r + j), V::loadu(w + j), acc);
  }
  alignas(64) double t[W];
  V::storeu(t, acc);
  double s = t[0];
  for (int p = 1; p < W; ++p) s += t[p];
  for (; j < n; ++j) s = std::fma(r[j], w[j], s);
  return s;
}

template <class V>
real_t vk_sparse_row_dot(const real_t* __restrict v,
                         const index_t* __restrict c, index_t len,
                         const real_t* __restrict w) {
  constexpr int W = V::W;
  if (len < W) {
    real_t s = 0.0;
    for (index_t k = 0; k < len; ++k) s = std::fma(v[k], w[c[k]], s);
    return s;
  }
  typename V::reg acc = V::zero();
  index_t k = 0;
  for (; k + W <= len; k += W) {
    acc = V::fmadd(V::loadu(v + k), V::gather(w, c + k), acc);
  }
  alignas(64) double t[W];
  V::storeu(t, acc);
  double s = t[0];
  for (int p = 1; p < W; ++p) s += t[p];
  for (; k < len; ++k) s = std::fma(v[k], w[c[k]], s);
  return s;
}

/// Shared body of the two batched dot kernels: `col(e)` maps element e to
/// its rhs-block row (e itself for dense, c[e] for sparse).
template <class V, class ColFn>
void vk_row_batch(const real_t* __restrict x, index_t n, ColFn&& col,
                  const real_t* __restrict w, index_t b,
                  real_t* __restrict y) {
  constexpr int W = V::W;
  if (n < W) {
    // No full blocks: all blocked partials fold to zero, so zeroing y and
    // running the sequential tail is bit-identical (see vk_dense_row_dot).
    for (index_t q = 0; q < b; ++q) y[q] = 0.0;
    for (index_t j = 0; j < n; ++j) {
      const double a = x[j];
      const typename V::reg av = V::broadcast(a);
      const real_t* __restrict wj = w + static_cast<std::size_t>(col(j) * b);
      index_t t = 0;
      for (; t + W <= b; t += W) {
        V::storeu(y + t, V::fmadd(av, V::loadu(wj + t), V::loadu(y + t)));
      }
      for (; t < b; ++t) y[t] = std::fma(a, wj[t], y[t]);
    }
    return;
  }
  double acc[W][kMaxKernelBatch];
  for (int p = 0; p < W; ++p) {
    for (index_t q = 0; q < b; ++q) acc[p][q] = 0.0;
  }
  index_t j = 0;
  for (; j + W <= n; j += W) {
    for (int p = 0; p < W; ++p) {
      const double a = x[j + p];
      const typename V::reg av = V::broadcast(a);
      const real_t* __restrict wj =
          w + static_cast<std::size_t>(col(j + p) * b);
      index_t q = 0;
      for (; q + W <= b; q += W) {
        V::storeu(&acc[p][q],
                  V::fmadd(av, V::loadu(wj + q), V::loadu(&acc[p][q])));
      }
      for (; q < b; ++q) acc[p][q] = std::fma(a, wj[q], acc[p][q]);
    }
  }
  // Fold the W partials left to right (lane-wise: the same ((t0+t1)+t2)+...
  // sequence the single-rhs kernel applies to its folded scalars).
  index_t q = 0;
  for (; q + W <= b; q += W) {
    typename V::reg s = V::loadu(&acc[0][q]);
    for (int p = 1; p < W; ++p) s = V::add(s, V::loadu(&acc[p][q]));
    V::storeu(y + q, s);
  }
  for (; q < b; ++q) {
    double s = acc[0][q];
    for (int p = 1; p < W; ++p) s += acc[p][q];
    y[q] = s;
  }
  // Tail elements, sequential per lane.
  for (; j < n; ++j) {
    const double a = x[j];
    const typename V::reg av = V::broadcast(a);
    const real_t* __restrict wj = w + static_cast<std::size_t>(col(j) * b);
    index_t t = 0;
    for (; t + W <= b; t += W) {
      V::storeu(y + t, V::fmadd(av, V::loadu(wj + t), V::loadu(y + t)));
    }
    for (; t < b; ++t) y[t] = std::fma(a, wj[t], y[t]);
  }
}

template <class V>
void vk_dense_row_batch(const real_t* __restrict r, index_t n,
                        const real_t* __restrict w, index_t b,
                        real_t* __restrict y) {
  vk_row_batch<V>(r, n, [](index_t e) { return e; }, w, b, y);
}

template <class V>
void vk_sparse_row_batch(const real_t* __restrict v,
                         const index_t* __restrict c, index_t len,
                         const real_t* __restrict w, index_t b,
                         real_t* __restrict y) {
  vk_row_batch<V>(v, len, [c](index_t e) { return c[e]; }, w, b, y);
}

template <class V>
void vk_gather_axpy(const real_t* __restrict v, const index_t* __restrict c,
                    index_t len, const real_t* __restrict w,
                    real_t* __restrict y) {
  constexpr int W = V::W;
  index_t i = 0;
  for (; i + W <= len; i += W) {
    V::storeu(y + i,
              V::fmadd(V::loadu(v + i), V::gather(w, c + i), V::loadu(y + i)));
  }
  for (; i < len; ++i) y[i] = std::fma(v[i], w[c[i]], y[i]);
}

template <class V>
void vk_gather_scatter_axpy(const real_t* __restrict v,
                            const index_t* __restrict c,
                            const index_t* __restrict rows, index_t len,
                            const real_t* __restrict w, real_t* y) {
  constexpr int W = V::W;
  index_t i = 0;
  // The gather of w is the memory-bound part and vectorises; the scatter
  // into y stays scalar (per-lane fused multiply-add, so the update is
  // the same operation the batched strip applies per lane) — which also
  // makes duplicate-free-ness of `rows` within one vector irrelevant for
  // correctness of the arithmetic itself.
  alignas(64) double tw[W];
  for (; i + W <= len; i += W) {
    V::storeu(tw, V::gather(w, c + i));
    for (int l = 0; l < W; ++l) {
      const auto row = static_cast<std::size_t>(rows[i + l]);
      y[row] = std::fma(v[i + l], tw[l], y[row]);
    }
  }
  for (; i < len; ++i) {
    const auto row = static_cast<std::size_t>(rows[i]);
    y[row] = std::fma(v[i], w[c[i]], y[row]);
  }
}

/// Shared body of the two batched strip kernels: `dst(i)` maps strip slot
/// i to the output row (i for ELL, rows[i] for JDS).
template <class V, class DstFn>
void vk_strip_batch(const real_t* __restrict v, const index_t* __restrict c,
                    DstFn&& dst, index_t len, const real_t* __restrict w,
                    index_t b, real_t* y) {
  constexpr int W = V::W;
  for (index_t i = 0; i < len; ++i) {
    const double a = v[i];
    const typename V::reg av = V::broadcast(a);
    const real_t* __restrict wj = w + static_cast<std::size_t>(c[i] * b);
    real_t* __restrict yi = y + static_cast<std::size_t>(dst(i) * b);
    index_t q = 0;
    for (; q + W <= b; q += W) {
      V::storeu(yi + q, V::fmadd(av, V::loadu(wj + q), V::loadu(yi + q)));
    }
    for (; q < b; ++q) yi[q] = std::fma(a, wj[q], yi[q]);
  }
}

template <class V>
void vk_gather_axpy_batch(const real_t* __restrict v,
                          const index_t* __restrict c, index_t len,
                          const real_t* __restrict w, index_t b,
                          real_t* __restrict y) {
  vk_strip_batch<V>(v, c, [](index_t i) { return i; }, len, w, b, y);
}

template <class V>
void vk_gather_scatter_axpy_batch(const real_t* __restrict v,
                                  const index_t* __restrict c,
                                  const index_t* __restrict rows, index_t len,
                                  const real_t* __restrict w, index_t b,
                                  real_t* y) {
  vk_strip_batch<V>(v, c, [rows](index_t i) { return rows[i]; }, len, w, b,
                    y);
}

/// Builds the dispatch table for vector-ops wrapper V at `level`.
template <class V>
KernelTable make_vector_table(SimdLevel level) {
  return KernelTable{
      level,
      V::W,
      &vk_dense_row_dot<V>,
      &vk_sparse_row_dot<V>,
      &vk_dense_row_batch<V>,
      &vk_sparse_row_batch<V>,
      &vk_gather_axpy<V>,
      &vk_gather_scatter_axpy<V>,
      &vk_gather_axpy_batch<V>,
      &vk_gather_scatter_axpy_batch<V>,
  };
}

}  // namespace ls::simd::detail
