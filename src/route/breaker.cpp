#include "route/breaker.hpp"

#include "common/metrics.hpp"

namespace ls::route {

const char* breaker_state_name(BreakerState s) {
  switch (s) {
    case BreakerState::kClosed: return "closed";
    case BreakerState::kOpen: return "open";
    case BreakerState::kHalfOpen: return "half_open";
  }
  return "?";
}

CircuitBreaker::CircuitBreaker(BreakerOptions opts) : opts_(opts) {
  if (opts_.failure_threshold < 1) opts_.failure_threshold = 1;
  if (opts_.half_open_trials < 1) opts_.half_open_trials = 1;
}

void CircuitBreaker::open_locked(double now_ms) {
  state_ = BreakerState::kOpen;
  opened_at_ms_ = now_ms;
  trials_in_flight_ = 0;
  ++opens_;
  metrics::counter_add("route.breaker.open_total");
}

bool CircuitBreaker::allow(double now_ms) {
  std::lock_guard<std::mutex> lk(mu_);
  if (state_ == BreakerState::kClosed) return true;
  if (state_ == BreakerState::kOpen) {
    if (now_ms - opened_at_ms_ < opts_.open_ms) return false;
    state_ = BreakerState::kHalfOpen;
    trials_in_flight_ = 0;
    metrics::counter_add("route.breaker.half_open_total");
  }
  if (trials_in_flight_ >= opts_.half_open_trials) return false;
  ++trials_in_flight_;
  return true;
}

void CircuitBreaker::record_success(double) {
  std::lock_guard<std::mutex> lk(mu_);
  failures_ = 0;
  trials_in_flight_ = 0;
  if (state_ != BreakerState::kClosed) {
    state_ = BreakerState::kClosed;
    metrics::counter_add("route.breaker.close_total");
  }
}

void CircuitBreaker::record_failure(double now_ms) {
  std::lock_guard<std::mutex> lk(mu_);
  switch (state_) {
    case BreakerState::kClosed:
      if (++failures_ >= opts_.failure_threshold) open_locked(now_ms);
      break;
    case BreakerState::kHalfOpen:
      // The trial failed: back to a full cooldown.
      open_locked(now_ms);
      break;
    case BreakerState::kOpen:
      // A straggler that was admitted before the trip; the cooldown is
      // already running and is not extended (traffic is blocked anyway).
      break;
  }
}

void CircuitBreaker::force_open(double now_ms) {
  std::lock_guard<std::mutex> lk(mu_);
  failures_ = opts_.failure_threshold;
  open_locked(now_ms);
}

BreakerState CircuitBreaker::state(double now_ms) const {
  std::lock_guard<std::mutex> lk(mu_);
  if (state_ == BreakerState::kOpen &&
      now_ms - opened_at_ms_ >= opts_.open_ms) {
    return BreakerState::kHalfOpen;
  }
  return state_;
}

int CircuitBreaker::consecutive_failures() const {
  std::lock_guard<std::mutex> lk(mu_);
  return failures_;
}

std::int64_t CircuitBreaker::opens_total() const {
  std::lock_guard<std::mutex> lk(mu_);
  return opens_;
}

}  // namespace ls::route
