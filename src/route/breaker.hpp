// Per-replica circuit breaker: the fast path of failure detection.
//
// The health prober notices a dead replica within one probe interval; the
// breaker notices within `failure_threshold` consecutive request failures,
// which under load is milliseconds. Between the two, a sick replica stops
// receiving traffic almost immediately and is retried on a controlled
// budget instead of by every caller at once.
//
// States:
//
//   kClosed    traffic flows; consecutive classified failures are counted
//              and `failure_threshold` of them trips the breaker
//   kOpen      traffic is short-circuited (allow() == false) for open_ms
//   kHalfOpen  after the cooldown, up to `half_open_trials` requests are
//              let through as trials; one success closes the breaker, one
//              failure re-opens it for another cooldown
//
// Only *classified transport failures* (serve::IoError: timeout, torn,
// closed, reset) should be recorded as failures — an application-level
// kShuttingDown or kOverloaded reply proves the replica is alive and must
// not trip the breaker.
//
// Time is passed in explicitly (milliseconds on any monotone clock), so
// every transition is a pure deterministic function unit-testable without
// sleeping. The router feeds it steady_now_ms() (replica.hpp).
#pragma once

#include <cstdint>
#include <mutex>

namespace ls::route {

/// Breaker tuning.
struct BreakerOptions {
  /// Consecutive classified failures that trip kClosed -> kOpen.
  int failure_threshold = 5;
  /// Cooldown before an open breaker admits half-open trials.
  double open_ms = 1000.0;
  /// Concurrent trial requests admitted in kHalfOpen.
  int half_open_trials = 1;
};

enum class BreakerState : std::uint8_t { kClosed, kOpen, kHalfOpen };

/// Human-readable state name for stats and logs.
const char* breaker_state_name(BreakerState s);

/// Thread-safe three-state circuit breaker. Metrics: every trip adds to
/// route.breaker.open_total, every recovery to route.breaker.close_total,
/// every cooldown expiry to route.breaker.half_open_total.
class CircuitBreaker {
 public:
  explicit CircuitBreaker(BreakerOptions opts = {});

  /// True when a request may proceed. In kOpen this performs the
  /// cooldown-expiry transition to kHalfOpen; in kHalfOpen it claims one
  /// trial slot (callers MUST report the outcome via record_success() /
  /// record_failure(), or the slot stays claimed).
  bool allow(double now_ms);

  /// Reports a successful exchange: resets the failure streak and closes
  /// the breaker from any state.
  void record_success(double now_ms);

  /// Reports one classified transport failure.
  void record_failure(double now_ms);

  /// Trips the breaker immediately (failpoint / operator hook).
  void force_open(double now_ms);

  /// Current state; reflects an elapsed cooldown as kHalfOpen without
  /// mutating (allow() performs the real transition).
  BreakerState state(double now_ms) const;

  int consecutive_failures() const;
  std::int64_t opens_total() const;

 private:
  mutable std::mutex mu_;
  BreakerOptions opts_;
  BreakerState state_ = BreakerState::kClosed;
  int failures_ = 0;           ///< consecutive, in kClosed
  int trials_in_flight_ = 0;   ///< claimed slots, in kHalfOpen
  double opened_at_ms_ = 0.0;
  std::int64_t opens_ = 0;

  void open_locked(double now_ms);
};

}  // namespace ls::route
