#include "route/prober.hpp"

#include <algorithm>
#include <chrono>

#include "common/failpoint.hpp"
#include "common/metrics.hpp"

namespace ls::route {

HealthProber::HealthProber(std::vector<std::shared_ptr<Replica>> replicas,
                           ProberOptions opts)
    : replicas_(std::move(replicas)), opts_(opts) {
  if (opts_.interval_ms < 1.0) opts_.interval_ms = 1.0;
  if (opts_.backoff_max_ms < opts_.interval_ms) {
    opts_.backoff_max_ms = opts_.interval_ms;
  }
  opts_.jitter_frac = std::clamp(opts_.jitter_frac, 0.0, 0.9);
  rng_state_ = opts_.seed ? opts_.seed : 1;
}

HealthProber::~HealthProber() { stop(); }

void HealthProber::start() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (running_) return;
    running_ = true;
  }
  thread_ = std::thread([this] { loop(); });
}

void HealthProber::stop() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (!running_) return;
    running_ = false;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

double HealthProber::jitter_factor() {
  std::lock_guard<std::mutex> lk(mu_);
  std::uint64_t s = rng_state_;  // xorshift64
  s ^= s << 13;
  s ^= s >> 7;
  s ^= s << 17;
  rng_state_ = s;
  const double u =
      static_cast<double>(s >> 11) * (1.0 / 9007199254740992.0);
  return 1.0 + opts_.jitter_frac * (2.0 * u - 1.0);
}

void HealthProber::probe_now(Replica& r) {
  const double started = steady_now_ms();
  bool ok = false;
  ReplicaState probed = ReplicaState::kDown;
  try {
    // Injectable probe weather: delay simulates a slow health endpoint,
    // error a probe that fails before any socket traffic.
    LS_FAILPOINT("route.probe.delay");
    serve::ClientOptions copts;
    copts.connect_timeout_ms = opts_.probe_timeout_ms;
    copts.request_timeout_ms = opts_.probe_timeout_ms;
    copts.max_retries = 0;  // the backoff schedule is the retry policy
    serve::ServeClient probe = r.endpoint.connect(copts);
    probed = replica_state_from_health(probe.health());
    ok = true;
  } catch (const std::exception&) {
    ok = false;
  }

  const double now = steady_now_ms();
  if (ok) {
    r.probe_ok_total.fetch_add(1, std::memory_order_release);
    metrics::counter_add("route.probe.ok_total");
    r.probe_failures.store(0, std::memory_order_release);
    r.state.store(probed, std::memory_order_release);
    if (replica_state_routable(probed)) {
      // A full health round trip is as good as a successful trial
      // request: close a tripped breaker instead of waiting for real
      // traffic to risk the half-open slot.
      r.breaker.record_success(now);
    }
    r.next_probe_ms.store(now + opts_.interval_ms * jitter_factor(),
                          std::memory_order_release);
  } else {
    r.probe_fail_total.fetch_add(1, std::memory_order_release);
    metrics::counter_add("route.probe.fail_total");
    const int fails =
        r.probe_failures.fetch_add(1, std::memory_order_acq_rel) + 1;
    r.state.store(ReplicaState::kDown, std::memory_order_release);
    // Exponential backoff, capped: a dead replica is re-checked on a calm
    // schedule instead of at the base cadence.
    double pause = opts_.interval_ms;
    for (int k = 1; k < fails && pause < opts_.backoff_max_ms; ++k) {
      pause *= 2.0;
    }
    pause = std::min(pause, opts_.backoff_max_ms);
    if (pause > opts_.interval_ms) {
      metrics::counter_add("route.probe.backoff_total");
    }
    r.next_probe_ms.store(now + pause * jitter_factor(),
                          std::memory_order_release);
  }
  (void)started;
}

void HealthProber::loop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lk(mu_);
      if (!running_) return;
      // Tick at a fraction of the base interval: due times move as
      // backoffs change, so a fixed short tick beats computing the exact
      // next deadline under churn.
      cv_.wait_for(lk, std::chrono::duration<double, std::milli>(
                           std::min(opts_.interval_ms / 4.0, 50.0)),
                   [&] { return !running_; });
      if (!running_) return;
    }
    const double now = steady_now_ms();
    for (const auto& r : replicas_) {
      if (now >= r->next_probe_ms.load(std::memory_order_acquire)) {
        probe_now(*r);
      }
      {
        std::lock_guard<std::mutex> lk(mu_);
        if (!running_) return;
      }
    }
  }
}

}  // namespace ls::route
