// Background health prober of the router tier.
//
// One thread polls every replica's protocol-v2 health verb and writes the
// parsed state into the shared Replica records. Three properties keep the
// prober from becoming its own availability hazard:
//
//   - every probe runs under a short hard deadline (connect + request),
//     so one wedged replica cannot stall the probe loop past it;
//   - per-replica intervals are jittered, so N routers (or one router's N
//     replicas) never synchronize into probe bursts;
//   - repeated failures back off exponentially (capped), so a dead
//     replica is re-checked on a calm schedule instead of being hammered
//     at the base cadence by every prober that noticed it (no
//     thundering-herd re-probe).
//
// A successful probe of a tripped replica also feeds the circuit breaker
// (record_success), so recovery does not have to wait for a half-open
// trial request to happen to land there.
//
// Failpoint: "route.probe.delay" is evaluated at the top of every probe —
// a delay action simulates a slow health endpoint, an error action a
// probe that fails without any socket traffic.
//
// Metrics: route.probe.ok_total / route.probe.fail_total /
// route.probe.backoff_total (probes deferred beyond the base interval).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "route/replica.hpp"

namespace ls::route {

/// Prober tuning.
struct ProberOptions {
  /// Base probe cadence per healthy replica.
  double interval_ms = 200.0;
  /// Hard per-probe deadline (connect and request budgets both).
  double probe_timeout_ms = 250.0;
  /// Cap of the exponential per-replica failure backoff.
  double backoff_max_ms = 2000.0;
  /// Intervals are scaled by a uniform factor in [1-jitter, 1+jitter].
  double jitter_frac = 0.2;
  /// Seed of the deterministic jitter stream.
  std::uint64_t seed = 0x9E3779B97F4A7C15ULL;
};

/// Owns the probe thread; replicas are shared with the router.
class HealthProber {
 public:
  HealthProber(std::vector<std::shared_ptr<Replica>> replicas,
               ProberOptions opts);
  ~HealthProber();

  HealthProber(const HealthProber&) = delete;
  HealthProber& operator=(const HealthProber&) = delete;

  /// Spawns the probe thread (idempotent).
  void start();

  /// Stops and joins it (idempotent; the destructor calls it).
  void stop();

  /// One synchronous probe of `r`, updating its state, counters and next
  /// due time. Exposed for tests and for the loop itself.
  void probe_now(Replica& r);

 private:
  void loop();
  /// Uniform jitter factor in [1-jitter_frac, 1+jitter_frac].
  double jitter_factor();

  std::vector<std::shared_ptr<Replica>> replicas_;
  ProberOptions opts_;
  std::thread thread_;
  std::mutex mu_;  ///< guards rng_state_ and the stop wait
  std::condition_variable cv_;
  bool running_ = false;
  std::uint64_t rng_state_;
};

}  // namespace ls::route
