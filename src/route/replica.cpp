#include "route/replica.hpp"

#include <chrono>

#include "common/error.hpp"

namespace ls::route {

const char* replica_state_name(ReplicaState s) {
  switch (s) {
    case ReplicaState::kUnknown: return "unknown";
    case ReplicaState::kReady: return "ready";
    case ReplicaState::kLive: return "live";
    case ReplicaState::kDegraded: return "degraded";
    case ReplicaState::kDraining: return "draining";
    case ReplicaState::kDown: return "down";
  }
  return "?";
}

ReplicaState replica_state_from_health(std::string_view text) {
  if (text == "ready") return ReplicaState::kReady;
  if (text == "live") return ReplicaState::kLive;
  if (text == "degraded") return ReplicaState::kDegraded;
  if (text == "draining") return ReplicaState::kDraining;
  return ReplicaState::kDown;
}

bool replica_state_routable(ReplicaState s) {
  switch (s) {
    case ReplicaState::kUnknown:
    case ReplicaState::kReady:
    case ReplicaState::kLive:      // may still answer kUnknownModel, but it
    case ReplicaState::kDegraded:  // is up and truthful — let it speak
      return true;
    case ReplicaState::kDraining:
    case ReplicaState::kDown:
      return false;
  }
  return false;
}

std::string ReplicaEndpoint::id() const {
  return unix_path.empty() ? "tcp:" + std::to_string(tcp_port)
                           : "unix:" + unix_path;
}

serve::ServeClient ReplicaEndpoint::connect(
    const serve::ClientOptions& opts) const {
  return unix_path.empty() ? serve::ServeClient::connect_tcp(tcp_port, opts)
                           : serve::ServeClient::connect_unix(unix_path,
                                                              opts);
}

ReplicaEndpoint parse_replica_endpoint(std::string_view spec) {
  LS_CHECK(!spec.empty(), "empty replica endpoint");
  const auto all_digits = [](std::string_view s) {
    if (s.empty()) return false;
    for (const char c : s) {
      if (c < '0' || c > '9') return false;
    }
    return true;
  };
  ReplicaEndpoint ep;
  if (spec.rfind("unix:", 0) == 0) {
    ep.unix_path = std::string(spec.substr(5));
    LS_CHECK(!ep.unix_path.empty(), "replica endpoint 'unix:' has no path");
    return ep;
  }
  if (spec.rfind("tcp:", 0) == 0) {
    const std::string_view port = spec.substr(4);
    LS_CHECK(all_digits(port) && port.size() <= 5,
             "replica endpoint '" << std::string(spec)
                                  << "' has a bad tcp port");
    ep.tcp_port = std::stoi(std::string(port));
    return ep;
  }
  if (all_digits(spec) && spec.size() <= 5) {  // bare port number
    ep.tcp_port = std::stoi(std::string(spec));
    return ep;
  }
  ep.unix_path = std::string(spec);  // bare filesystem path
  return ep;
}

std::vector<ReplicaEndpoint> parse_replica_list(std::string_view specs) {
  std::vector<ReplicaEndpoint> out;
  std::size_t pos = 0;
  while (pos <= specs.size()) {
    std::size_t comma = specs.find(',', pos);
    if (comma == std::string_view::npos) comma = specs.size();
    const std::string_view item = specs.substr(pos, comma - pos);
    if (!item.empty()) out.push_back(parse_replica_endpoint(item));
    pos = comma + 1;
  }
  LS_CHECK(!out.empty(), "replica list names no endpoints");
  return out;
}

double steady_now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace ls::route
