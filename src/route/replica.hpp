// Shared per-replica record of the router tier.
//
// One Replica aggregates everything the router knows about one upstream
// serve-engine process: where it listens, the latest probed health state,
// its circuit breaker, and request/probe counters. The prober writes the
// state, the request path consults it and drives the breaker; all shared
// fields are atomics (or internally locked), so there is no replica-wide
// lock on the request path.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "route/breaker.hpp"
#include "serve/client.hpp"

namespace ls::route {

/// Probed lifecycle state of a replica (the serve health verb's answer,
/// plus kUnknown before the first probe and kDown for unreachable).
enum class ReplicaState : std::uint8_t {
  kUnknown,   ///< never probed yet — optimistically routable
  kReady,     ///< serving traffic
  kLive,      ///< process up but not serving models yet
  kDegraded,  ///< serving on a stale model version (reload failed)
  kDraining,  ///< refusing new work; do not route to it
  kDown,      ///< probe could not reach it
};

const char* replica_state_name(ReplicaState s);

/// Maps a health-verb reply ("live"/"ready"/"draining"/"degraded") to a
/// state; anything unrecognized is treated as kDown.
ReplicaState replica_state_from_health(std::string_view text);

/// True when requests may be routed to a replica in this state. The
/// breaker is a second, independent gate on top.
bool replica_state_routable(ReplicaState s);

/// Where one replica listens. Parsed from "unix:/path", a bare "/path",
/// "tcp:PORT" or a bare port number.
struct ReplicaEndpoint {
  std::string unix_path;
  int tcp_port = -1;

  /// Canonical id ("unix:/path" or "tcp:PORT") — the ring member name.
  std::string id() const;

  /// Opens a client to this endpoint (throws serve::IoError on failure).
  serve::ServeClient connect(const serve::ClientOptions& opts) const;
};

/// Throws ls::Error on an empty or malformed spec.
ReplicaEndpoint parse_replica_endpoint(std::string_view spec);

/// Parses a comma-separated replica list ("unix:/a.sock,tcp:9000,...").
std::vector<ReplicaEndpoint> parse_replica_list(std::string_view specs);

/// Monotone wall time in milliseconds — the clock fed to the breakers.
double steady_now_ms();

/// One upstream replica as the router sees it.
struct Replica {
  Replica(ReplicaEndpoint ep, const BreakerOptions& bopts)
      : endpoint(std::move(ep)), id(endpoint.id()), breaker(bopts) {}

  const ReplicaEndpoint endpoint;
  const std::string id;
  CircuitBreaker breaker;

  std::atomic<ReplicaState> state{ReplicaState::kUnknown};
  /// Consecutive failed probes — drives the prober's backoff.
  std::atomic<int> probe_failures{0};
  /// steady_now_ms() timestamp of the next due probe.
  std::atomic<double> next_probe_ms{0.0};

  std::atomic<std::int64_t> probe_ok_total{0};
  std::atomic<std::int64_t> probe_fail_total{0};
  std::atomic<std::int64_t> requests_total{0};   ///< answered by this replica
  std::atomic<std::int64_t> failures_total{0};   ///< transport failures

  /// State-gate of the routing decision (the breaker gate is separate,
  /// because CircuitBreaker::allow() claims half-open trial slots).
  bool routable_state() const {
    return replica_state_routable(state.load(std::memory_order_acquire));
  }
};

}  // namespace ls::route
