#include "route/ring.hpp"

#include <algorithm>

namespace ls::route {

namespace {

/// splitmix64 finalizer: FNV-1a alone clusters for short similar strings
/// (replica ids differ in a few characters); the avalanche spreads them.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace

std::uint64_t HashRing::hash_key(std::string_view key) {
  std::uint64_t h = 0xCBF29CE484222325ULL;  // FNV-1a 64
  for (const char c : key) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ULL;
  }
  return mix(h);
}

HashRing::HashRing(RingOptions opts) : opts_(opts) {
  if (opts_.vnodes < 1) opts_.vnodes = 1;
}

void HashRing::rebuild_locked() {
  points_.clear();
  points_.reserve(members_.size() * static_cast<std::size_t>(opts_.vnodes));
  for (std::uint32_t m = 0; m < members_.size(); ++m) {
    for (int v = 0; v < opts_.vnodes; ++v) {
      points_.push_back(
          Point{hash_key(members_[m] + '#' + std::to_string(v)), m});
    }
  }
  // Tie-break equal hashes by member id so the point order — and with it
  // every key's preference order — is a function of the membership set
  // alone, not of insertion history.
  std::sort(points_.begin(), points_.end(),
            [&](const Point& a, const Point& b) {
              if (a.hash != b.hash) return a.hash < b.hash;
              return members_[a.member] < members_[b.member];
            });
}

void HashRing::add(const std::string& replica) {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it =
      std::lower_bound(members_.begin(), members_.end(), replica);
  if (it != members_.end() && *it == replica) return;
  members_.insert(it, replica);
  rebuild_locked();
}

bool HashRing::remove(const std::string& replica) {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it =
      std::lower_bound(members_.begin(), members_.end(), replica);
  if (it == members_.end() || *it != replica) return false;
  members_.erase(it);
  rebuild_locked();
  return true;
}

std::vector<std::string> HashRing::members() const {
  std::lock_guard<std::mutex> lk(mu_);
  return members_;
}

std::size_t HashRing::size() const {
  std::lock_guard<std::mutex> lk(mu_);
  return members_.size();
}

std::vector<std::string> HashRing::route(std::string_view key,
                                         std::size_t n) const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<std::string> out;
  if (members_.empty() || n == 0) return out;
  n = std::min(n, members_.size());
  out.reserve(n);

  const std::uint64_t h = hash_key(key);
  auto it = std::upper_bound(
      points_.begin(), points_.end(), h,
      [](std::uint64_t lhs, const Point& p) { return lhs < p.hash; });

  std::vector<bool> seen(members_.size(), false);
  for (std::size_t walked = 0; walked < points_.size() && out.size() < n;
       ++walked, ++it) {
    if (it == points_.end()) it = points_.begin();
    if (seen[it->member]) continue;
    seen[it->member] = true;
    out.push_back(members_[it->member]);
  }
  return out;
}

std::string HashRing::owner(std::string_view key) const {
  const std::vector<std::string> r = route(key, 1);
  return r.empty() ? std::string() : r.front();
}

}  // namespace ls::route
