// Consistent-hash ring: the placement function of the router tier.
//
// Each replica contributes `vnodes` virtual points on a 64-bit hash
// circle; a key routes to the first point clockwise of its own hash, and
// its failover order is the sequence of *distinct* replicas encountered
// continuing clockwise. Two properties make this the right structure for
// replicated serving:
//
//   - bounded remap: adding or removing one replica only remaps the keys
//     whose owning arc changed (~1/N of the keyspace), so a membership
//     change never reshuffles every client's affinity — hot per-replica
//     caches and hot-reload state stay warm for everyone else;
//   - deterministic preference order: the failover sequence for a key is
//     a pure function of the membership set, independent of add/remove
//     history, so every router instance (and every test) agrees.
//
// Membership changes rebuild the point table under a mutex; route() also
// takes the mutex, which is fine because a routing decision costs one
// binary search and a request costs a network round trip. Sick replicas
// are NOT removed here — the router skips them in preference order
// (probe state + circuit breaker), which is equivalent to removal for the
// affected keys while keeping everyone else's mapping untouched.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace ls::route {

/// Ring construction knobs.
struct RingOptions {
  /// Virtual points per replica. More vnodes → tighter load spread at the
  /// cost of a larger point table; 64 keeps the max/mean share under ~1.5
  /// for small clusters.
  int vnodes = 64;
};

/// Thread-safe consistent-hash ring over replica ids.
class HashRing {
 public:
  explicit HashRing(RingOptions opts = {});

  /// Adds a replica (idempotent: re-adding an existing id is a no-op).
  void add(const std::string& replica);

  /// Removes a replica; returns false when it was not a member.
  bool remove(const std::string& replica);

  /// Current membership, sorted by id.
  std::vector<std::string> members() const;

  std::size_t size() const;
  bool empty() const { return size() == 0; }

  /// The first `n` distinct replicas clockwise of hash(key) — the key's
  /// owner followed by its failover order. `n >= size()` yields the full
  /// preference order (a permutation of the membership).
  std::vector<std::string> route(std::string_view key, std::size_t n) const;

  /// route(key, 1), or "" on an empty ring.
  std::string owner(std::string_view key) const;

  /// The ring's key/vnode hash (FNV-1a 64 with an avalanche finalizer);
  /// exposed for tests that reason about placement.
  static std::uint64_t hash_key(std::string_view key);

 private:
  /// One virtual point: a position on the circle owned by members_[member].
  struct Point {
    std::uint64_t hash;
    std::uint32_t member;
  };

  void rebuild_locked();

  RingOptions opts_;
  mutable std::mutex mu_;
  std::vector<std::string> members_;  ///< sorted by id
  std::vector<Point> points_;         ///< sorted by (hash, member id)
};

}  // namespace ls::route
