#include "route/router.hpp"

#include <sstream>
#include <utility>

#include "common/error.hpp"
#include "common/failpoint.hpp"
#include "common/metrics.hpp"

namespace ls::route {

using serve::Frame;
using serve::FrameContext;
using serve::FrameDisposition;
using serve::IoError;
using serve::MsgType;
using serve::PredictResult;
using serve::Status;

namespace {

/// Per-thread upstream connection cache. Handler threads are
/// per-connection and die with it, so the cache's lifetime is exactly one
/// downstream client session — which is also what gives that client a
/// persistent (warm) path to its ring replica.
thread_local std::map<std::string, std::unique_ptr<serve::ServeClient>>
    tl_upstreams;

}  // namespace

Router::Router(const std::vector<ReplicaEndpoint>& replicas,
               RouterOptions opts)
    : opts_(std::move(opts)), ring_(opts_.ring) {
  LS_CHECK(!replicas.empty(), "router needs at least one replica");
  for (const ReplicaEndpoint& ep : replicas) {
    auto rep = std::make_shared<Replica>(ep, opts_.breaker);
    LS_CHECK(by_id_.emplace(rep->id, rep).second,
             "duplicate replica endpoint " << rep->id);
    replicas_.push_back(std::move(rep));
    ring_.add(replicas_.back()->id);
  }
  prober_ = std::make_unique<HealthProber>(replicas_, opts_.probe);
}

Router::~Router() { stop(); }

void Router::start() { prober_->start(); }

void Router::stop() { prober_->stop(); }

serve::ClientOptions Router::upstream_options() const {
  serve::ClientOptions copts;
  copts.connect_timeout_ms = opts_.upstream_connect_timeout_ms;
  copts.request_timeout_ms = opts_.upstream_request_timeout_ms;
  copts.max_retries = 0;  // failover to the next replica IS the retry
  return copts;
}

serve::ServeClient* Router::upstream(const Replica& r) {
  auto it = tl_upstreams.find(r.id);
  if (it == tl_upstreams.end()) {
    it = tl_upstreams
             .emplace(r.id, std::make_unique<serve::ServeClient>(
                                r.endpoint.connect(upstream_options())))
             .first;
  }
  return it->second.get();
}

void Router::drop_upstream(const Replica& r) { tl_upstreams.erase(r.id); }

std::string Router::route_predict(const std::string& model,
                                  std::uint64_t conn_id,
                                  const std::string& payload) {
  requests_total_.fetch_add(1, std::memory_order_release);
  metrics::counter_add("route.requests_total");

  // (model, client) is the placement key: one client's stream for one
  // model sticks to one replica until membership or health moves it.
  const std::string key = model + '\x1f' + std::to_string(conn_id);
  const std::vector<std::string> order = ring_.route(key, ring_.size());
  const std::size_t max_attempts =
      opts_.max_failover > 0
          ? std::min<std::size_t>(order.size(),
                                  static_cast<std::size_t>(
                                      opts_.max_failover))
          : order.size();

  std::size_t attempts = 0;
  for (const std::string& id : order) {
    if (attempts >= max_attempts) break;
    const auto it = by_id_.find(id);
    if (it == by_id_.end()) continue;  // ring raced a membership change
    Replica& rep = *it->second;
    if (!rep.routable_state()) continue;

    double now = steady_now_ms();
    try {
      // Operator/test hook: force this replica's breaker open without
      // needing a sick process behind it.
      LS_FAILPOINT("route.breaker.force_open");
    } catch (const std::exception&) {
      rep.breaker.force_open(now);
    }
    if (!rep.breaker.allow(now)) {
      breaker_short_circuit_total_.fetch_add(1, std::memory_order_release);
      metrics::counter_add("route.breaker.short_circuit_total");
      continue;
    }

    ++attempts;
    try {
      serve::ServeClient* up = upstream(rep);
      const Frame reply =
          up->forward(MsgType::kPredictReq, payload, MsgType::kPredictResp);
      const PredictResult r = serve::decode_predict_response(reply.payload);
      now = steady_now_ms();
      // Transport worked either way — the breaker only counts transport.
      rep.breaker.record_success(now);
      if (r.status == Status::kShuttingDown) {
        // Healthy refusal: the replica is draining for a restart. Remember
        // that ahead of the next probe and move on — predict is
        // idempotent, the next replica can answer it.
        rep.state.store(ReplicaState::kDraining,
                        std::memory_order_release);
        failover_total_.fetch_add(1, std::memory_order_release);
        metrics::counter_add("route.failover_total");
        continue;
      }
      rep.requests_total.fetch_add(1, std::memory_order_release);
      proxied_ok_total_.fetch_add(1, std::memory_order_release);
      return reply.payload;
    } catch (const IoError&) {
      // Classified transport failure: feed the breaker, drop the dead
      // connection, try the next replica in ring order.
      rep.failures_total.fetch_add(1, std::memory_order_release);
      rep.breaker.record_failure(steady_now_ms());
      drop_upstream(rep);
      failover_total_.fetch_add(1, std::memory_order_release);
      metrics::counter_add("route.failover_total");
      continue;
    } catch (const std::exception&) {
      // Malformed upstream reply: not transport weather, but this replica
      // cannot be trusted with the request either.
      rep.failures_total.fetch_add(1, std::memory_order_release);
      drop_upstream(rep);
      failover_total_.fetch_add(1, std::memory_order_release);
      metrics::counter_add("route.failover_total");
      continue;
    }
  }

  // Every replica is down, draining, tripped or failed: answer with the
  // retryable refusal so a client with retries bridges the gap (exactly
  // how it would bridge a single restarting server).
  exhausted_total_.fetch_add(1, std::memory_order_release);
  metrics::counter_add("route.exhausted_total");
  return serve::encode_predict_response(
      PredictResult{Status::kShuttingDown, 0.0, 0.0});
}

std::pair<Status, std::string> Router::fan_out_reload(
    const std::string& payload) {
  reload_fanouts_total_.fetch_add(1, std::memory_order_release);
  metrics::counter_add("route.reload_fanouts_total");
  bool all_ok = true;
  std::ostringstream report;
  for (const auto& rep : replicas_) {
    Status s = Status::kInternal;
    std::string text;
    try {
      // A fresh connection per replica: reload is rare and must not ride
      // (or poison) the request path's cached connections.
      serve::ServeClient c = rep->endpoint.connect(upstream_options());
      const Frame reply =
          c.forward(MsgType::kReloadReq, payload, MsgType::kStatusResp);
      serve::decode_status_response(reply.payload, s, text);
    } catch (const std::exception& e) {
      s = Status::kInternal;
      text = e.what();
    }
    if (s != Status::kOk) all_ok = false;
    report << rep->id << ": " << serve::status_name(s)
           << (text.empty() ? "" : " " + text) << '\n';
  }
  return {all_ok ? Status::kOk : Status::kInternal, report.str()};
}

std::pair<Status, std::string> Router::fan_out_models() {
  bool all_ok = true;
  std::ostringstream report;
  for (const auto& rep : replicas_) {
    Status s = Status::kInternal;
    std::string text;
    try {
      // Fresh connection per replica, like reload: inventory reads are
      // rare control-plane traffic and must not poison the request path's
      // cached connections.
      serve::ServeClient c = rep->endpoint.connect(upstream_options());
      const Frame reply =
          c.forward(MsgType::kModelsReq, "", MsgType::kStatusResp);
      serve::decode_status_response(reply.payload, s, text);
    } catch (const std::exception& e) {
      s = Status::kInternal;
      text = e.what();
    }
    if (s != Status::kOk) all_ok = false;
    report << "replica " << rep->id << ": " << serve::status_name(s) << '\n';
    if (!text.empty()) report << text;
  }
  return {all_ok ? Status::kOk : Status::kInternal, report.str()};
}

FrameDisposition Router::on_frame(const FrameContext& ctx,
                                  const Frame& frame) {
  const int fd = ctx.fd;
  const serve::FrameTimeouts& t = ctx.timeouts;
  switch (frame.type) {
    case MsgType::kPredictReq: {
      std::string model;
      try {
        model = serve::decode_predict_model(frame.payload);
      } catch (const std::exception&) {
        ctx.server->note_protocol_error();
        serve::write_frame(fd, MsgType::kPredictResp,
                           serve::encode_predict_response(
                               PredictResult{Status::kBadFrame, 0.0, 0.0}),
                           t);
        return FrameDisposition::kKeep;
      }
      if (ctx.draining) {
        serve::write_frame(
            fd, MsgType::kPredictResp,
            serve::encode_predict_response(
                PredictResult{Status::kShuttingDown, 0.0, 0.0}),
            t);
        return FrameDisposition::kKeep;
      }
      const std::string reply =
          route_predict(model, ctx.conn_id, frame.payload);
      serve::write_frame(fd, MsgType::kPredictResp, reply, t);
      return FrameDisposition::kKeep;
    }
    case MsgType::kReloadReq: {
      const auto [status, report] = fan_out_reload(frame.payload);
      serve::write_frame(fd, MsgType::kStatusResp,
                         serve::encode_status_response(status, report), t);
      return FrameDisposition::kKeep;
    }
    case MsgType::kStatsReq:
      serve::write_frame(
          fd, MsgType::kStatusResp,
          serve::encode_status_response(
              Status::kOk, stats_text() + ctx.server->stats_text()),
          t);
      return FrameDisposition::kKeep;
    case MsgType::kHealthReq:
      serve::write_frame(
          fd, MsgType::kStatusResp,
          serve::encode_status_response(
              Status::kOk, ctx.draining ? "draining" : health_name()),
          t);
      return FrameDisposition::kKeep;
    case MsgType::kModelsReq: {
      const auto [status, report] = fan_out_models();
      serve::write_frame(fd, MsgType::kStatusResp,
                         serve::encode_status_response(status, report), t);
      return FrameDisposition::kKeep;
    }
    case MsgType::kIngestReq:
      // Training ingest goes to the trainer daemon, not the serving fleet.
      serve::write_frame(
          fd, MsgType::kStatusResp,
          serve::encode_status_response(Status::kBadFrame,
                                        "ingest not supported here"),
          t);
      return FrameDisposition::kKeep;
    case MsgType::kPingReq:
      serve::write_frame(fd, MsgType::kStatusResp,
                         serve::encode_status_response(Status::kOk, "pong"),
                         t);
      return FrameDisposition::kKeep;
    case MsgType::kShutdownReq:
      // Stops the router tier only — replicas have their own lifecycles.
      serve::write_frame(
          fd, MsgType::kStatusResp,
          serve::encode_status_response(Status::kOk, "router shutting down"),
          t);
      return FrameDisposition::kStopServer;
    case MsgType::kPredictResp:
    case MsgType::kStatusResp:
      ctx.server->note_protocol_error();
      serve::write_frame(
          fd, MsgType::kStatusResp,
          serve::encode_status_response(Status::kBadFrame,
                                        "response type sent as request"),
          t);
      return FrameDisposition::kKeep;
  }
  return FrameDisposition::kKeep;
}

const char* Router::health_name() const {
  std::size_t routable = 0;
  for (const auto& rep : replicas_) {
    if (rep->routable_state()) ++routable;
  }
  if (routable == replicas_.size()) return "ready";
  if (routable > 0) return "degraded";
  return "live";
}

RouterStats Router::stats() const {
  RouterStats s;
  s.requests_total = requests_total_.load(std::memory_order_acquire);
  s.proxied_ok_total = proxied_ok_total_.load(std::memory_order_acquire);
  s.failover_total = failover_total_.load(std::memory_order_acquire);
  s.exhausted_total = exhausted_total_.load(std::memory_order_acquire);
  s.breaker_short_circuit_total =
      breaker_short_circuit_total_.load(std::memory_order_acquire);
  s.reload_fanouts_total =
      reload_fanouts_total_.load(std::memory_order_acquire);
  s.replicas = replicas_.size();
  for (const auto& rep : replicas_) {
    if (rep->routable_state()) ++s.routable_replicas;
  }
  return s;
}

std::string Router::stats_text() const {
  const RouterStats s = stats();
  const double now = steady_now_ms();
  std::ostringstream os;
  os << "router_replicas " << s.replicas << '\n'
     << "router_routable_replicas " << s.routable_replicas << '\n'
     << "route_requests_total " << s.requests_total << '\n'
     << "route_proxied_ok_total " << s.proxied_ok_total << '\n'
     << "route_failover_total " << s.failover_total << '\n'
     << "route_exhausted_total " << s.exhausted_total << '\n'
     << "route_breaker_short_circuit_total "
     << s.breaker_short_circuit_total << '\n'
     << "route_reload_fanouts_total " << s.reload_fanouts_total << '\n';
  for (const auto& rep : replicas_) {
    os << "replica " << rep->id << " state="
       << replica_state_name(rep->state.load(std::memory_order_acquire))
       << " breaker=" << breaker_state_name(rep->breaker.state(now))
       << " breaker_opens="
       << rep->breaker.opens_total()
       << " probe_failures="
       << rep->probe_failures.load(std::memory_order_acquire)
       << " probe_ok=" << rep->probe_ok_total.load(std::memory_order_acquire)
       << " probe_fail="
       << rep->probe_fail_total.load(std::memory_order_acquire)
       << " requests="
       << rep->requests_total.load(std::memory_order_acquire)
       << " failures="
       << rep->failures_total.load(std::memory_order_acquire) << '\n';
  }
  return os.str();
}

}  // namespace ls::route
