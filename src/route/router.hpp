// Router: the replicated-serving front door.
//
// A Router is a serve::FrameHandler, so a stock serve::ServeServer gives
// it the hardened socket front-end (deadline-bounded frame I/O,
// connection governance, graceful drain) for free, and clients speak the
// unchanged LSRV protocol — a client cannot tell a router from a single
// serve_tool daemon. Behind the handler:
//
//   placement   consistent-hash ring over replica ids, keyed by
//               (model, connection): one client's stream for one model
//               sticks to one replica (warm caches, hot-reload affinity),
//               and membership changes remap only the affected arc
//   health      a background HealthProber drives per-replica lifecycle
//               state off the protocol-v2 health verb (jittered, deadline-
//               bounded, backing off on failure)
//   containment a per-replica circuit breaker trips on consecutive
//               classified transport failures, short-circuiting a sick
//               replica out of the rotation within milliseconds
//   failover    predict is idempotent, so a kShuttingDown reply, an open
//               breaker or any transport failure moves the request to the
//               next distinct replica in the key's ring order; a rolling
//               restart of every replica in sequence loses zero requests
//
// What is and is not forwarded:
//   predict   proxied pass-through (payload forwarded verbatim; only the
//             model-name prefix is peeked for the ring key), failover on
//   reload    fanned out to EVERY replica — a hot reload must land on the
//             whole fleet or report which part of it it missed; never
//             retried (not idempotent from the operator's view)
//   stats     answered by the router: route.* counters, per-replica state
//             lines, then the socket layer's own block
//   ping      answered by the router ("pong" — the router is alive)
//   health    answered by the router: aggregate of the replica states
//   shutdown  stops the ROUTER only; replicas are owned by their own
//             operators/supervisors
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "route/prober.hpp"
#include "route/replica.hpp"
#include "route/ring.hpp"
#include "serve/server.hpp"

namespace ls::route {

/// Router configuration.
struct RouterOptions {
  RingOptions ring;
  BreakerOptions breaker;
  ProberOptions probe;
  /// Per-attempt budget for one upstream exchange (0 = unbounded). Kept
  /// separate from the client's own end-to-end deadline: a short upstream
  /// budget converts a wedged replica into a fast failover.
  double upstream_request_timeout_ms = 2000.0;
  /// Budget for opening one upstream connection.
  double upstream_connect_timeout_ms = 1000.0;
  /// Max distinct replicas tried per predict (0 = all of them).
  int max_failover = 0;
};

/// Point-in-time router statistics.
struct RouterStats {
  std::int64_t requests_total = 0;    ///< predicts arriving at the router
  std::int64_t proxied_ok_total = 0;  ///< answered by some replica
  std::int64_t failover_total = 0;    ///< attempts moved to the next replica
  std::int64_t exhausted_total = 0;   ///< no replica could answer
  std::int64_t breaker_short_circuit_total = 0;  ///< skipped: breaker open
  std::int64_t reload_fanouts_total = 0;
  std::size_t replicas = 0;
  std::size_t routable_replicas = 0;  ///< state-routable right now
};

/// The router tier's frame handler. Construct, start(), then hand it to a
/// serve::ServeServer. Thread-safe: on_frame runs on the server's
/// per-connection handler threads concurrently with the prober.
class Router final : public serve::FrameHandler {
 public:
  Router(const std::vector<ReplicaEndpoint>& replicas,
         RouterOptions opts = {});
  ~Router() override;

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Starts the health prober (idempotent).
  void start();

  /// Stops it (idempotent; the destructor calls it).
  void stop();

  serve::FrameDisposition on_frame(const serve::FrameContext& ctx,
                                   const serve::Frame& frame) override;

  /// Aggregate health: "ready" when every replica is routable, "degraded"
  /// when only some are, "live" when none is (router up, fleet dark).
  const char* health_name() const;

  RouterStats stats() const;

  /// Human-readable stats block (route.* counters + one line per
  /// replica); the stats verb appends the socket layer's block to it.
  std::string stats_text() const;

  /// Shared replica records (tests and tools poke probe/breaker state).
  const std::vector<std::shared_ptr<Replica>>& replicas() const {
    return replicas_;
  }

  HashRing& ring() { return ring_; }

 private:
  /// Proxies one predict payload along the key's ring order; returns the
  /// raw upstream response payload (or an encoded local error reply).
  std::string route_predict(const std::string& model, std::uint64_t conn_id,
                            const std::string& payload);

  /// Fans a reload out to every replica; returns (status, report).
  std::pair<serve::Status, std::string> fan_out_reload(
      const std::string& payload);

  /// Fans a models inventory request out to every replica; returns
  /// (status, per-replica report). The trainer reads this back through
  /// the same reload/models round trip it uses against a single replica.
  std::pair<serve::Status, std::string> fan_out_models();

  /// Thread-local persistent upstream connection for `r` (created on
  /// first use per handler thread, dropped on transport failure).
  serve::ServeClient* upstream(const Replica& r);
  void drop_upstream(const Replica& r);
  serve::ClientOptions upstream_options() const;

  RouterOptions opts_;
  std::vector<std::shared_ptr<Replica>> replicas_;
  std::map<std::string, std::shared_ptr<Replica>> by_id_;
  HashRing ring_;
  std::unique_ptr<HealthProber> prober_;

  std::atomic<std::int64_t> requests_total_{0};
  std::atomic<std::int64_t> proxied_ok_total_{0};
  std::atomic<std::int64_t> failover_total_{0};
  std::atomic<std::int64_t> exhausted_total_{0};
  std::atomic<std::int64_t> breaker_short_circuit_total_{0};
  std::atomic<std::int64_t> reload_fanouts_total_{0};
};

}  // namespace ls::route
