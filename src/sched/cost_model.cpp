#include "sched/cost_model.hpp"

#include <algorithm>
#include <cstdio>

#include "common/rng.hpp"
#include "common/timer.hpp"
#include "data/synthetic.hpp"
#include "formats/any_matrix.hpp"

namespace ls {

double modeled_flops(Format f, const MatrixFeatures& feat) {
  const double m = static_cast<double>(feat.m);
  const double n = static_cast<double>(feat.n);
  const double nnz = static_cast<double>(feat.nnz);
  switch (f) {
    case Format::kDEN: return m * n;
    case Format::kCSR: return nnz;
    case Format::kCOO: return nnz;
    case Format::kELL: return m * static_cast<double>(feat.mdim);
    case Format::kDIA:
      return static_cast<double>(feat.ndig) * std::min(m, n);
    case Format::kCSC:
      // Only columns in the sparse right-hand side's support run, but the
      // support is unknown until runtime; model the dense-rhs upper bound.
      return nnz;
    case Format::kBCSR:
      // Fill is structure-dependent; model the pessimistic one-nonzero-per-
      // tile bound capped at the fully tiled matrix (4x4 default tiles).
      return std::min(nnz * 16.0, m * n);
    case Format::kHYB:
      // Auto-width slab (width = ceil(adim)): padding is bounded by ~M and
      // the overflow adds no padding at all.
      return nnz + m;
    case Format::kJDS:
      return nnz;  // no padding by construction
  }
  return 0.0;
}

double modeled_bytes(Format f, const MatrixFeatures& feat) {
  const double m = static_cast<double>(feat.m);
  const double flops = modeled_flops(f, feat);
  const double vb = static_cast<double>(kRealBytes);
  const double ib = static_cast<double>(kIndexBytes);
  switch (f) {
    case Format::kDEN: return flops * vb;              // values only
    case Format::kCSR: return flops * (vb + ib) + (m + 1) * ib;
    case Format::kCOO: return flops * (vb + 2 * ib);   // value + row + col
    case Format::kELL: return flops * (vb + ib);       // padded value + col
    case Format::kDIA:
      return flops * vb + static_cast<double>(feat.ndig) * ib;
    case Format::kCSC:
      return flops * (vb + ib) + (static_cast<double>(feat.n) + 1) * ib;
    case Format::kBCSR:
      // One block-column index per 16 slots plus the block-row pointer.
      return flops * vb + flops / 16.0 * ib + (m / 4.0 + 1) * ib;
    case Format::kHYB:
      return flops * (vb + ib) + m * ib;  // + per-row occupancy
    case Format::kJDS:
      return flops * (vb + ib) +
             (static_cast<double>(feat.mdim) + 1 + 2 * m) * ib;
  }
  return 0.0;
}

CostCalibration CostCalibration::measure() {
  CostCalibration cal;
  Rng rng(0xCA11B8A7Eull);

  // Probe matrices chosen so each format runs in its "natural" regime:
  // moderate size, structure the format stores without pathological padding.
  // What we extract is the per-multiply-add cost of each format's inner
  // loop (indirection, strided access, accumulation pattern).
  const index_t m = 512, n = 512;
  std::vector<index_t> lens(static_cast<std::size_t>(m), 24);
  const CooMatrix sparse = make_random_sparse(m, n, lens, rng);
  const CooMatrix dense = make_dense_matrix(256, 256, rng);
  const CooMatrix banded =
      make_banded(1024, 1024, {0, 1, -1, 2, -2, 3, -3, 4}, 1.0, rng);

  std::vector<real_t> w;
  std::vector<real_t> y;
  auto time_format = [&](const CooMatrix& coo, Format f) {
    const AnyMatrix mat = AnyMatrix::from_coo(coo, f);
    w.assign(static_cast<std::size_t>(mat.cols()), 0.0);
    y.assign(static_cast<std::size_t>(mat.rows()), 0.0);
    for (std::size_t j = 0; j < w.size(); j += 3) w[j] = 0.5;  // sparse-ish w
    const double secs = time_best([&] { mat.multiply_dense(w, y); }, 5, 0.005);
    const double ops = static_cast<double>(mat.work_flops());
    cal.seconds_per_op_[static_cast<std::size_t>(f)] =
        ops > 0 ? secs / ops : 1e-9;

    // Batched dimension: same matrix, kCalibrationBatchRows interleaved
    // right-hand sides, cost normalised per op per rhs.
    const auto b = static_cast<std::size_t>(kCalibrationBatchRows);
    w.assign(static_cast<std::size_t>(mat.cols()) * b, 0.0);
    y.assign(static_cast<std::size_t>(mat.rows()) * b, 0.0);
    for (std::size_t j = 0; j < w.size(); j += 3) w[j] = 0.5;
    const double batch_secs = time_best(
        [&] { mat.multiply_dense_batch(w, kCalibrationBatchRows, y); }, 5,
        0.005);
    cal.batch_seconds_per_op_[static_cast<std::size_t>(f)] =
        ops > 0 ? batch_secs / (ops * static_cast<double>(b)) : 1e-9;
  };

  time_format(dense, Format::kDEN);
  time_format(sparse, Format::kCSR);
  time_format(sparse, Format::kCOO);
  time_format(sparse, Format::kELL);
  time_format(banded, Format::kDIA);
  time_format(sparse, Format::kCSC);
  time_format(banded, Format::kBCSR);
  time_format(sparse, Format::kHYB);
  time_format(sparse, Format::kJDS);
  return cal;
}

CostCalibration CostCalibration::uniform() {
  CostCalibration cal;
  cal.seconds_per_op_.fill(1.0);
  cal.batch_seconds_per_op_.fill(1.0);
  return cal;
}

const CostCalibration& CostCalibration::instance() {
  static const CostCalibration cal = measure();
  return cal;
}

std::string CostCalibration::to_string() const {
  std::string out = "seconds/op:";
  for (Format f : kExtendedFormats) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), " %s=%.3g",
                  std::string(format_name(f)).c_str(), seconds_per_op(f));
    out += buf;
  }
  out += "; batched seconds/op/rhs (b=" +
         std::to_string(kCalibrationBatchRows) + "):";
  for (Format f : kExtendedFormats) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), " %s=%.3g",
                  std::string(format_name(f)).c_str(),
                  batch_seconds_per_op(f));
    out += buf;
  }
  return out;
}

CostPrediction predict_cost(const MatrixFeatures& feat,
                            const CostCalibration& cal) {
  CostPrediction p;
  for (Format f : kAllFormats) {
    const auto i = static_cast<std::size_t>(f);
    p.flops[i] = modeled_flops(f, feat);
    p.bytes[i] = modeled_bytes(f, feat);
    p.seconds[i] = p.flops[i] * cal.seconds_per_op(f);
    p.batch_seconds[i] = p.flops[i] * cal.batch_seconds_per_op(f);
  }
  return p;
}

std::array<double, kNumFormats> predicted_arm_priors(
    const MatrixFeatures& feat, const CostCalibration& cal) {
  // All nine formats, not just the paper's five: the bandit's arm set is
  // configurable and a prior of 0.0 would read as "free".
  std::array<double, kNumFormats> priors{};
  for (Format f : kExtendedFormats) {
    const auto i = static_cast<std::size_t>(f);
    priors[i] = modeled_flops(f, feat) * cal.batch_seconds_per_op(f);
  }
  return priors;
}

}  // namespace ls
