#include "sched/cost_model.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>

#include "common/aligned_buffer.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "data/synthetic.hpp"
#include "formats/any_matrix.hpp"

namespace ls {

double modeled_flops(Format f, const MatrixFeatures& feat) {
  const double m = static_cast<double>(feat.m);
  const double n = static_cast<double>(feat.n);
  const double nnz = static_cast<double>(feat.nnz);
  switch (f) {
    case Format::kDEN: return m * n;
    case Format::kCSR: return nnz;
    case Format::kCOO: return nnz;
    case Format::kELL: return m * static_cast<double>(feat.mdim);
    case Format::kDIA:
      return static_cast<double>(feat.ndig) * std::min(m, n);
    case Format::kCSC:
      // Only columns in the sparse right-hand side's support run, but the
      // support is unknown until runtime; model the dense-rhs upper bound.
      return nnz;
    case Format::kBCSR:
      // Fill is structure-dependent; model the pessimistic one-nonzero-per-
      // tile bound capped at the fully tiled matrix (4x4 default tiles).
      return std::min(nnz * 16.0, m * n);
    case Format::kHYB:
      // Auto-width slab (width = ceil(adim)): padding is bounded by ~M and
      // the overflow adds no padding at all.
      return nnz + m;
    case Format::kJDS:
      return nnz;  // no padding by construction
  }
  return 0.0;
}

double modeled_bytes(Format f, const MatrixFeatures& feat) {
  const double m = static_cast<double>(feat.m);
  const double flops = modeled_flops(f, feat);
  const double vb = static_cast<double>(kRealBytes);
  const double ib = static_cast<double>(kIndexBytes);
  switch (f) {
    case Format::kDEN: return flops * vb;              // values only
    case Format::kCSR: return flops * (vb + ib) + (m + 1) * ib;
    case Format::kCOO: return flops * (vb + 2 * ib);   // value + row + col
    case Format::kELL: return flops * (vb + ib);       // padded value + col
    case Format::kDIA:
      return flops * vb + static_cast<double>(feat.ndig) * ib;
    case Format::kCSC:
      return flops * (vb + ib) + (static_cast<double>(feat.n) + 1) * ib;
    case Format::kBCSR:
      // One block-column index per 16 slots plus the block-row pointer.
      return flops * vb + flops / 16.0 * ib + (m / 4.0 + 1) * ib;
    case Format::kHYB:
      return flops * (vb + ib) + m * ib;  // + per-row occupancy
    case Format::kJDS:
      return flops * (vb + ib) +
             (static_cast<double>(feat.mdim) + 1 + 2 * m) * ib;
  }
  return 0.0;
}

CostCalibration CostCalibration::measure() {
  CostCalibration cal;
  Rng rng(0xCA11B8A7Eull);

  // Probe matrices chosen so each format runs in its "natural" regime:
  // moderate size, structure the format stores without pathological padding.
  // What we extract is the per-multiply-add cost of each format's inner
  // loop (indirection, strided access, accumulation pattern).
  const index_t m = 512, n = 512;
  std::vector<index_t> lens(static_cast<std::size_t>(m), 24);
  const CooMatrix sparse = make_random_sparse(m, n, lens, rng);
  const CooMatrix dense = make_dense_matrix(256, 256, rng);
  const CooMatrix banded =
      make_banded(1024, 1024, {0, 1, -1, 2, -2, 3, -3, 4}, 1.0, rng);

  std::vector<real_t> w;
  std::vector<real_t> y;
  auto time_format = [&](const CooMatrix& coo, Format f) {
    const AnyMatrix mat = AnyMatrix::from_coo(coo, f);
    w.assign(static_cast<std::size_t>(mat.cols()), 0.0);
    y.assign(static_cast<std::size_t>(mat.rows()), 0.0);
    for (std::size_t j = 0; j < w.size(); j += 3) w[j] = 0.5;  // sparse-ish w
    const double secs = time_best([&] { mat.multiply_dense(w, y); }, 5, 0.005);
    const double ops = static_cast<double>(mat.work_flops());
    cal.seconds_per_op_[static_cast<std::size_t>(f)] =
        ops > 0 ? secs / ops : 1e-9;

    // Batched dimension: same matrix, kCalibrationBatchRows interleaved
    // right-hand sides, cost normalised per op per rhs.
    const auto b = static_cast<std::size_t>(kCalibrationBatchRows);
    w.assign(static_cast<std::size_t>(mat.cols()) * b, 0.0);
    y.assign(static_cast<std::size_t>(mat.rows()) * b, 0.0);
    for (std::size_t j = 0; j < w.size(); j += 3) w[j] = 0.5;
    const double batch_secs = time_best(
        [&] { mat.multiply_dense_batch(w, kCalibrationBatchRows, y); }, 5,
        0.005);
    cal.batch_seconds_per_op_[static_cast<std::size_t>(f)] =
        ops > 0 ? batch_secs / (ops * static_cast<double>(b)) : 1e-9;
  };

  time_format(dense, Format::kDEN);
  time_format(sparse, Format::kCSR);
  time_format(sparse, Format::kCOO);
  time_format(sparse, Format::kELL);
  time_format(banded, Format::kDIA);
  time_format(sparse, Format::kCSC);
  time_format(banded, Format::kBCSR);
  time_format(sparse, Format::kHYB);
  time_format(sparse, Format::kJDS);

  // ISA probes: the active dispatch level's streamed vs gathered cost per
  // element, measured on the level's own micro-kernels. The ratio feeds
  // CostPrediction.gather_cost_ratio; the level tag makes staleness
  // detectable after an LS_SIMD switch.
  const simd::KernelTable& kt = simd::kernels();
  cal.simd_level_ = kt.level;
  cal.vector_width_ = kt.width;
  {
    const index_t pn = 1 << 16;
    AlignedBuffer<real_t> av(static_cast<std::size_t>(pn));
    AlignedBuffer<real_t> wv(static_cast<std::size_t>(pn));
    AlignedBuffer<index_t> idx(static_cast<std::size_t>(pn));
    for (index_t i = 0; i < pn; ++i) {
      av[static_cast<std::size_t>(i)] = rng.uniform(-1.0, 1.0);
      wv[static_cast<std::size_t>(i)] = rng.uniform(-1.0, 1.0);
      idx[static_cast<std::size_t>(i)] = rng.uniform_int(0, pn - 1);
    }
    volatile real_t sink = 0.0;
    const double stream_secs = time_best(
        [&] { sink = sink + kt.dense_row_dot(av.data(), wv.data(), pn); }, 5,
        0.002);
    const double gather_secs = time_best(
        [&] {
          sink = sink + kt.sparse_row_dot(av.data(), idx.data(), pn, wv.data());
        },
        5, 0.002);
    const double dn = static_cast<double>(pn);
    cal.stream_seconds_per_elem_ = stream_secs / dn;
    cal.gather_seconds_per_elem_ = gather_secs / dn;
  }
  return cal;
}

CostCalibration CostCalibration::uniform() {
  CostCalibration cal;
  cal.seconds_per_op_.fill(1.0);
  cal.batch_seconds_per_op_.fill(1.0);
  cal.level_agnostic_ = true;
  return cal;
}

const CostCalibration& CostCalibration::instance() {
  static std::mutex mu;
  static std::map<simd::SimdLevel, std::unique_ptr<const CostCalibration>>
      per_level;
  const simd::SimdLevel level = simd::active_level();
  std::lock_guard<std::mutex> lock(mu);
  auto& slot = per_level[level];
  if (slot == nullptr) {
    slot = std::make_unique<const CostCalibration>(measure());
  }
  return *slot;
}

std::string CostCalibration::to_string() const {
  std::string out = "seconds/op:";
  for (Format f : kExtendedFormats) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), " %s=%.3g",
                  std::string(format_name(f)).c_str(), seconds_per_op(f));
    out += buf;
  }
  out += "; batched seconds/op/rhs (b=" +
         std::to_string(kCalibrationBatchRows) + "):";
  for (Format f : kExtendedFormats) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), " %s=%.3g",
                  std::string(format_name(f)).c_str(),
                  batch_seconds_per_op(f));
    out += buf;
  }
  if (level_agnostic_) {
    out += "; simd=any";
  } else {
    char buf[96];
    std::snprintf(buf, sizeof(buf), "; simd=%s width=%d gather/stream=%.2f",
                  std::string(simd::level_name(simd_level_)).c_str(),
                  vector_width_, gather_cost_ratio());
    out += buf;
  }
  return out;
}

CostPrediction predict_cost(const MatrixFeatures& feat,
                            const CostCalibration& cal) {
  LS_CHECK(cal.valid_for_active(),
           "stale-ISA cost calibration: measured under LS_SIMD level '" +
               std::string(simd::level_name(cal.simd_level())) +
               "' but the active level is '" +
               std::string(simd::level_name(simd::active_level())) +
               "' — refit via CostCalibration::instance()");
  CostPrediction p;
  p.simd_level = cal.simd_level();
  p.vector_width = cal.vector_width();
  p.gather_cost_ratio = cal.gather_cost_ratio();
  for (Format f : kAllFormats) {
    const auto i = static_cast<std::size_t>(f);
    p.flops[i] = modeled_flops(f, feat);
    p.bytes[i] = modeled_bytes(f, feat);
    p.seconds[i] = p.flops[i] * cal.seconds_per_op(f);
    p.batch_seconds[i] = p.flops[i] * cal.batch_seconds_per_op(f);
  }
  return p;
}

std::array<double, kNumFormats> predicted_arm_priors(
    const MatrixFeatures& feat, const CostCalibration& cal) {
  // All nine formats, not just the paper's five: the bandit's arm set is
  // configurable and a prior of 0.0 would read as "free".
  std::array<double, kNumFormats> priors{};
  for (Format f : kExtendedFormats) {
    const auto i = static_cast<std::size_t>(f);
    priors[i] = modeled_flops(f, feat) * cal.batch_seconds_per_op(f);
  }
  return priors;
}

}  // namespace ls
