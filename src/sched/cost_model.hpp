// Analytic per-format cost model driven by the nine influencing parameters.
//
// The model has two halves, mirroring Equation (7) of the paper
// (time >= transferred memory / bandwidth):
//   * work(f): multiply-adds one SMSV performs in format f — a pure function
//     of the Table IV features (padding included for ELL/DIA, M*N for DEN);
//   * cost_per_op(f): measured seconds per multiply-add for format f on this
//     machine, calibrated once per process by timing probe matrices. This
//     captures the bandwidth/indirection differences the paper measured
//     (e.g. 25.3 GB/s for ELL vs 63.9 GB/s for CSR on gisette) without
//     hard-coding another machine's constants.
#pragma once

#include <array>
#include <string>

#include "common/types.hpp"
#include "data/features.hpp"
#include "formats/format.hpp"
#include "kernels/simd.hpp"

namespace ls {

/// Right-hand-side count used to calibrate the batched-kernel dimension.
inline constexpr index_t kCalibrationBatchRows = 8;

/// Predicted cost of one SMSV (y = X * w) in each format.
struct CostPrediction {
  std::array<double, kNumFormats> seconds{};  // indexed by Format
  std::array<double, kNumFormats> flops{};    // modelled multiply-adds
  std::array<double, kNumFormats> bytes{};    // modelled bytes streamed
  /// Predicted seconds per *row* of one batched SMSV at
  /// kCalibrationBatchRows right-hand sides (amortised matrix streaming).
  std::array<double, kNumFormats> batch_seconds{};

  /// ISA terms inherited from the calibration the prediction was made
  /// with: the dispatch level and accumulator width the measured
  /// per-format costs embody, and how much a vector gather costs relative
  /// to a contiguous stream at that level (drives the CSR-vs-ELL/DEN
  /// trade-off — gathers get comparatively cheaper with hardware gather).
  simd::SimdLevel simd_level = simd::SimdLevel::kScalar;
  int vector_width = 1;
  double gather_cost_ratio = 1.0;

  double seconds_of(Format f) const {
    return seconds[static_cast<std::size_t>(f)];
  }
  double batch_seconds_of(Format f) const {
    return batch_seconds[static_cast<std::size_t>(f)];
  }
};

/// Modelled multiply-add count of one SMSV in format `f` for a matrix with
/// these features. DIA uses the ndig * min(M, N) stripe bound.
double modeled_flops(Format f, const MatrixFeatures& feat);

/// Modelled bytes streamed by one SMSV in format `f` (matrix data + index
/// structures; the workspace vector is shared by all formats and omitted).
double modeled_bytes(Format f, const MatrixFeatures& feat);

/// Per-format seconds per multiply-add, calibrated by timing probe matrices.
class CostCalibration {
 public:
  /// Runs the probe measurements (a few milliseconds per format).
  /// Deterministic probe shapes; timing is machine-dependent by design.
  static CostCalibration measure();

  /// Returns a calibration with uniform cost 1.0 per op — turns the cost
  /// model into a pure flop counter (useful for tests and ablations).
  /// Level-agnostic: valid under any active dispatch level.
  static CostCalibration uniform();

  /// Process-wide lazily-measured calibration for the *active* SIMD
  /// dispatch level. Kept per level: switching LS_SIMD levels mid-process
  /// (tests, benches, ops override) refits on first use instead of
  /// replaying timings measured under different kernels.
  static const CostCalibration& instance();

  double seconds_per_op(Format f) const {
    return seconds_per_op_[static_cast<std::size_t>(f)];
  }

  /// Dispatch level the timings were measured under.
  simd::SimdLevel simd_level() const { return simd_level_; }

  /// Accumulator width (doubles) of that level's kernels.
  int vector_width() const { return vector_width_; }

  /// True for synthetic calibrations (uniform()) that carry no machine
  /// timings and are therefore valid under any dispatch level.
  bool level_agnostic() const { return level_agnostic_; }

  /// Measured cost of one gathered element relative to one streamed
  /// element at this level (>= 1.0 in practice; smaller on levels with
  /// hardware gather).
  double gather_cost_ratio() const {
    return stream_seconds_per_elem_ > 0.0
               ? gather_seconds_per_elem_ / stream_seconds_per_elem_
               : 1.0;
  }

  /// True when this calibration may be used under the currently active
  /// dispatch level. predict_cost refuses stale-ISA calibrations: costs
  /// measured under one level do not transfer to another (AVX-512 makes
  /// DEN ~2x cheaper per op while COO stays scalar, say), so replaying
  /// them would silently skew every schedule.
  bool valid_for_active() const {
    return level_agnostic_ || simd_level_ == simd::active_level();
  }

  /// Seconds per multiply-add per right-hand side when the format runs its
  /// batched kernel (multiply_dense_batch) at kCalibrationBatchRows rhs.
  /// Lower than seconds_per_op where batching amortises matrix streaming.
  double batch_seconds_per_op(Format f) const {
    return batch_seconds_per_op_[static_cast<std::size_t>(f)];
  }

  std::string to_string() const;

 private:
  std::array<double, kNumFormats> seconds_per_op_{};
  std::array<double, kNumFormats> batch_seconds_per_op_{};
  simd::SimdLevel simd_level_ = simd::SimdLevel::kScalar;
  int vector_width_ = 1;
  bool level_agnostic_ = false;
  double gather_seconds_per_elem_ = 1.0;
  double stream_seconds_per_elem_ = 1.0;
};

/// Full prediction for all five formats. Throws when `cal` was measured
/// under a dispatch level other than the active one (stale-ISA
/// calibration) — refit via CostCalibration::instance() after a level
/// switch.
CostPrediction predict_cost(const MatrixFeatures& feat,
                            const CostCalibration& cal);

/// Bandit arm priors: predicted per-row batched-SMSV seconds for every
/// format, from the calibrated cost model. The serving-side rescheduler
/// seeds its UCB1 arms with these so an unexplored layout starts at its
/// *predicted* cost instead of infinity (or zero) — exploration is guided
/// by the model instead of being uniform, and a layout the model already
/// knows to be hopeless is never worth a live experiment.
std::array<double, kNumFormats> predicted_arm_priors(
    const MatrixFeatures& feat, const CostCalibration& cal);

}  // namespace ls
