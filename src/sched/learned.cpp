#include "sched/learned.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <numeric>

#include "common/error.hpp"
#include "data/synthetic.hpp"
#include "kernels/simd.hpp"

namespace ls {

std::array<double, kNumTreeFeatures> tree_inputs(const MatrixFeatures& f) {
  auto lg = [](double x) { return std::log1p(std::max(0.0, x)); };
  return {lg(static_cast<double>(f.m)),
          lg(static_cast<double>(f.n)),
          lg(static_cast<double>(f.nnz)),
          lg(static_cast<double>(f.ndig)),
          lg(f.dnnz),
          lg(static_cast<double>(f.mdim)),
          lg(f.adim),
          lg(f.vdim),
          f.density};
}

const char* tree_input_name(int index) {
  static const char* names[kNumTreeFeatures] = {
      "log M",    "log N",    "log nnz", "log ndig", "log dnnz",
      "log mdim", "log adim", "log vdim", "density"};
  LS_CHECK(index >= 0 && index < kNumTreeFeatures, "bad tree feature index");
  return names[index];
}

namespace {

/// Gini impurity of a class histogram.
double gini(const std::array<int, kNumFormats>& counts, int total) {
  if (total == 0) return 0.0;
  double g = 1.0;
  for (int c : counts) {
    const double p = static_cast<double>(c) / total;
    g -= p * p;
  }
  return g;
}

Format majority(const std::array<int, kNumFormats>& counts) {
  int best = 0;
  for (int k = 1; k < kNumFormats; ++k) {
    if (counts[static_cast<std::size_t>(k)] >
        counts[static_cast<std::size_t>(best)]) {
      best = k;
    }
  }
  return static_cast<Format>(best);
}

std::array<int, kNumFormats> histogram(
    const std::vector<TrainingExample>& corpus, const std::vector<int>& ids) {
  std::array<int, kNumFormats> counts{};
  for (int id : ids) {
    ++counts[static_cast<std::size_t>(
        corpus[static_cast<std::size_t>(id)].best)];
  }
  return counts;
}

}  // namespace

int DecisionTree::fit_node(const std::vector<TrainingExample>& corpus,
                           std::vector<int>& ids, int depth, int max_depth,
                           int min_leaf) {
  const auto counts = histogram(corpus, ids);
  const int total = static_cast<int>(ids.size());
  const int node_id = static_cast<int>(nodes_.size());
  nodes_.push_back({});
  nodes_[static_cast<std::size_t>(node_id)].label = majority(counts);

  if (depth >= max_depth || total < 2 * min_leaf ||
      gini(counts, total) == 0.0) {
    return node_id;  // leaf
  }

  // Exhaustive search: best (feature, threshold) by weighted gini.
  double best_score = gini(counts, total) - 1e-9;  // must strictly improve
  int best_feature = -1;
  double best_threshold = 0.0;

  std::vector<std::pair<double, int>> order(ids.size());
  for (int fidx = 0; fidx < kNumTreeFeatures; ++fidx) {
    for (std::size_t k = 0; k < ids.size(); ++k) {
      const auto& ex = corpus[static_cast<std::size_t>(ids[k])];
      order[k] = {tree_inputs(ex.features)[static_cast<std::size_t>(fidx)],
                  ids[k]};
    }
    std::sort(order.begin(), order.end());

    std::array<int, kNumFormats> left{};
    std::array<int, kNumFormats> right = counts;
    for (std::size_t k = 0; k + 1 < order.size(); ++k) {
      const Format label =
          corpus[static_cast<std::size_t>(order[k].second)].best;
      ++left[static_cast<std::size_t>(label)];
      --right[static_cast<std::size_t>(label)];
      // Only split between distinct values.
      if (order[k].first == order[k + 1].first) continue;
      const int nl = static_cast<int>(k) + 1;
      const int nr = total - nl;
      if (nl < min_leaf || nr < min_leaf) continue;
      const double score =
          (nl * gini(left, nl) + nr * gini(right, nr)) / total;
      if (score < best_score) {
        best_score = score;
        best_feature = fidx;
        best_threshold = 0.5 * (order[k].first + order[k + 1].first);
      }
    }
  }

  if (best_feature < 0) return node_id;  // no useful split

  std::vector<int> left_ids, right_ids;
  for (int id : ids) {
    const auto& ex = corpus[static_cast<std::size_t>(id)];
    const double v =
        tree_inputs(ex.features)[static_cast<std::size_t>(best_feature)];
    (v <= best_threshold ? left_ids : right_ids).push_back(id);
  }

  const int left = fit_node(corpus, left_ids, depth + 1, max_depth, min_leaf);
  const int right =
      fit_node(corpus, right_ids, depth + 1, max_depth, min_leaf);
  Node& node = nodes_[static_cast<std::size_t>(node_id)];
  node.feature = best_feature;
  node.threshold = best_threshold;
  node.left = left;
  node.right = right;
  return node_id;
}

DecisionTree DecisionTree::fit(const std::vector<TrainingExample>& corpus,
                               int max_depth, int min_leaf) {
  LS_CHECK(!corpus.empty(), "cannot fit a tree on an empty corpus");
  LS_CHECK(max_depth >= 1 && min_leaf >= 1, "bad tree hyper-parameters");
  DecisionTree tree;
  std::vector<int> ids(corpus.size());
  std::iota(ids.begin(), ids.end(), 0);
  tree.fit_node(corpus, ids, 0, max_depth, min_leaf);
  return tree;
}

Format DecisionTree::predict(const MatrixFeatures& f) const {
  LS_CHECK(!nodes_.empty(), "predict on an unfitted tree");
  const auto inputs = tree_inputs(f);
  int node = 0;
  while (nodes_[static_cast<std::size_t>(node)].feature >= 0) {
    const Node& n = nodes_[static_cast<std::size_t>(node)];
    node = inputs[static_cast<std::size_t>(n.feature)] <= n.threshold
               ? n.left
               : n.right;
  }
  return nodes_[static_cast<std::size_t>(node)].label;
}

double DecisionTree::accuracy(
    const std::vector<TrainingExample>& corpus) const {
  LS_CHECK(!corpus.empty(), "accuracy on an empty corpus");
  int correct = 0;
  for (const auto& ex : corpus) {
    correct += predict(ex.features) == ex.best;
  }
  return static_cast<double>(correct) / static_cast<double>(corpus.size());
}

void DecisionTree::dump(int node, int indent, std::string& out) const {
  const Node& n = nodes_[static_cast<std::size_t>(node)];
  const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  if (n.feature < 0) {
    out += pad + "-> " + std::string(format_name(n.label)) + "\n";
    return;
  }
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%sif %s <= %.3f:\n", pad.c_str(),
                tree_input_name(n.feature), n.threshold);
  out += buf;
  dump(n.left, indent + 1, out);
  out += pad + "else:\n";
  dump(n.right, indent + 1, out);
}

std::string DecisionTree::to_string() const {
  std::string out;
  if (!nodes_.empty()) dump(0, 0, out);
  return out;
}

std::vector<TrainingExample> make_training_corpus(
    int per_family, Rng& rng, const AutotuneOptions& opts) {
  LS_CHECK(per_family >= 1, "need at least one example per family");
  std::vector<CooMatrix> matrices;

  for (int k = 0; k < per_family; ++k) {
    // Family 1: dense rectangles of assorted aspect ratios.
    const index_t dm = rng.uniform_int(24, 160);
    const index_t dn = rng.uniform_int(24, 160);
    matrices.push_back(make_dense_matrix(dm, dn, rng));

    // Family 2: scattered sparse with balanced rows.
    const index_t sm = rng.uniform_int(200, 1200);
    const index_t sn = rng.uniform_int(64, 800);
    const index_t per_row = rng.uniform_int(2, std::min<index_t>(32, sn));
    std::vector<index_t> lens(static_cast<std::size_t>(sm), per_row);
    matrices.push_back(make_random_sparse(sm, sn, lens, rng));

    // Family 3: banded.
    const index_t bn = rng.uniform_int(256, 1024);
    std::vector<index_t> offsets = {0};
    const index_t extra = rng.uniform_int(1, 6);
    for (index_t e = 1; e <= extra; ++e) {
      offsets.push_back(e);
      offsets.push_back(-e);
    }
    matrices.push_back(make_banded(bn, bn, offsets, 0.9, rng));

    // Family 4: skewed row lengths (high vdim).
    const index_t vm = rng.uniform_int(256, 1024);
    matrices.push_back(make_vdim_spread(vm, vm, vm * 8,
                                        rng.uniform_int(1, 8),
                                        rng.uniform(0.2, 0.8), rng));
  }

  std::vector<TrainingExample> corpus;
  corpus.reserve(matrices.size());
  const EmpiricalAutotuner tuner(opts);
  for (const CooMatrix& x : matrices) {
    TrainingExample ex;
    ex.features = extract_features(x);
    ex.best = tuner.choose(x).format;  // measured ground truth
    corpus.push_back(std::move(ex));
  }
  return corpus;
}

const LearnedSelector& LearnedSelector::instance() {
  static const LearnedSelector selector = [] {
    Rng rng(0x1EA12ED);
    AutotuneOptions opts;
    opts.trials = 2;  // keep the one-time training cost low
    return LearnedSelector(
        DecisionTree::fit(make_training_corpus(6, rng, opts)));
  }();
  return selector;
}

ScheduleDecision LearnedSelector::choose(const MatrixFeatures& f) const {
  ScheduleDecision d;
  d.format = tree_.predict(f);
  d.rationale = "learned decision tree: predicted best format (" +
                std::string(format_name(d.format)) + ")";
  return d;
}

TelemetryIngest& TelemetryIngest::instance() {
  static TelemetryIngest sink;
  return sink;
}

namespace {

/// Signature of a matrix for telemetry grouping: two matrices with the
/// same shape and nonzero count are the same arm table for our purposes
/// (the rescheduler reports one matrix per model, so collisions are rare
/// and harmless — they just merge timings of near-identical matrices).
/// The active SIMD level is part of the key: per-format timings measured
/// under different kernel ISAs are different distributions and must not
/// be merged into one training example.
std::string feature_signature(const MatrixFeatures& f) {
  return std::to_string(f.m) + "x" + std::to_string(f.n) + ":" +
         std::to_string(f.nnz) + "@" +
         std::string(simd::level_name(simd::active_level()));
}

}  // namespace

void TelemetryIngest::record(const MatrixFeatures& feat, Format format,
                             double row_seconds) {
  if (!(row_seconds > 0.0) || !std::isfinite(row_seconds)) return;
  std::lock_guard<std::mutex> lk(mu_);
  Entry& e = entries_[feature_signature(feat)];
  e.features = feat;
  e.row_seconds[static_cast<std::size_t>(format)] = row_seconds;
}

std::vector<TrainingExample> TelemetryIngest::harvest() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<TrainingExample> out;
  for (const auto& [sig, e] : entries_) {
    int observed = 0;
    Format best = Format::kCSR;
    double best_s = std::numeric_limits<double>::infinity();
    for (Format f : kExtendedFormats) {
      const double s = e.row_seconds[static_cast<std::size_t>(f)];
      if (!std::isfinite(s)) continue;
      ++observed;
      if (s < best_s) {
        best_s = s;
        best = f;
      }
    }
    // One observed format is not a comparison — it would just teach the
    // tree "whatever layout we happened to serve in".
    if (observed < 2) continue;
    TrainingExample ex;
    ex.features = e.features;
    ex.best = best;
    out.push_back(std::move(ex));
  }
  return out;
}

std::size_t TelemetryIngest::observations() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::size_t n = 0;
  for (const auto& [sig, e] : entries_) {
    for (double s : e.row_seconds) n += std::isfinite(s) ? 1 : 0;
  }
  return n;
}

void TelemetryIngest::clear() {
  std::lock_guard<std::mutex> lk(mu_);
  entries_.clear();
}

}  // namespace ls
