// Learned format selector — the natural extension of the paper's decision
// system: instead of hand-weighting the Table IV correlations, fit a small
// CART decision tree on a corpus of synthetic matrices labelled by the
// empirical autotuner (measured ground truth on *this* machine).
//
// The tree consumes the same nine influencing parameters and predicts a
// Format in O(depth); bench/ablation_selector compares it against the
// heuristic and empirical policies.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "data/features.hpp"
#include "formats/format.hpp"
#include "sched/selector.hpp"

namespace ls {

/// One labelled corpus entry.
struct TrainingExample {
  MatrixFeatures features;
  Format best = Format::kCSR;
};

/// Number of numeric inputs the tree sees (log-scaled Table IV parameters).
inline constexpr int kNumTreeFeatures = 9;

/// Maps the nine influencing parameters to the tree's input vector
/// (log-scaled so splits are scale-free across dataset sizes).
std::array<double, kNumTreeFeatures> tree_inputs(const MatrixFeatures& f);

/// Human-readable names of the tree inputs (for to_string dumps).
const char* tree_input_name(int index);

/// Depth-limited CART classifier with gini splits.
class DecisionTree {
 public:
  /// Fits a tree; `max_depth` bounds size, `min_leaf` stops tiny splits.
  static DecisionTree fit(const std::vector<TrainingExample>& corpus,
                          int max_depth = 6, int min_leaf = 3);

  /// Predicted best format for a feature vector.
  Format predict(const MatrixFeatures& f) const;

  /// Fraction of corpus entries the tree classifies correctly.
  double accuracy(const std::vector<TrainingExample>& corpus) const;

  index_t node_count() const { return static_cast<index_t>(nodes_.size()); }

  /// Indented if/else dump of the fitted tree.
  std::string to_string() const;

 private:
  struct Node {
    int feature = -1;       // -1 = leaf
    double threshold = 0.0; // go left when input <= threshold
    int left = -1;
    int right = -1;
    Format label = Format::kCSR;  // leaf prediction
  };

  int fit_node(const std::vector<TrainingExample>& corpus,
               std::vector<int>& ids, int depth, int max_depth, int min_leaf);
  void dump(int node, int indent, std::string& out) const;

  std::vector<Node> nodes_;
};

/// Generates a labelled corpus: synthetic matrices spanning the families
/// the generators cover (dense, scattered sparse, banded, skewed rows),
/// each labelled by the empirical autotuner's measured pick.
std::vector<TrainingExample> make_training_corpus(int per_family, Rng& rng,
                                                  const AutotuneOptions& opts = {});

/// Selector wrapping a fitted tree.
class LearnedSelector {
 public:
  explicit LearnedSelector(DecisionTree tree) : tree_(std::move(tree)) {}

  /// Lazily trained process-wide instance (trains a default corpus on
  /// first use; a few seconds of measurement).
  static const LearnedSelector& instance();

  ScheduleDecision choose(const MatrixFeatures& f) const;

  const DecisionTree& tree() const { return tree_; }

 private:
  DecisionTree tree_;
};

}  // namespace ls
