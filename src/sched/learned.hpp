// Learned format selector — the natural extension of the paper's decision
// system: instead of hand-weighting the Table IV correlations, fit a small
// CART decision tree on a corpus of synthetic matrices labelled by the
// empirical autotuner (measured ground truth on *this* machine).
//
// The tree consumes the same nine influencing parameters and predicts a
// Format in O(depth); bench/ablation_selector compares it against the
// heuristic and empirical policies.
#pragma once

#include <array>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "data/features.hpp"
#include "formats/format.hpp"
#include "sched/selector.hpp"

namespace ls {

/// One labelled corpus entry.
struct TrainingExample {
  MatrixFeatures features;
  Format best = Format::kCSR;
};

/// Number of numeric inputs the tree sees (log-scaled Table IV parameters).
inline constexpr int kNumTreeFeatures = 9;

/// Maps the nine influencing parameters to the tree's input vector
/// (log-scaled so splits are scale-free across dataset sizes).
std::array<double, kNumTreeFeatures> tree_inputs(const MatrixFeatures& f);

/// Human-readable names of the tree inputs (for to_string dumps).
const char* tree_input_name(int index);

/// Depth-limited CART classifier with gini splits.
class DecisionTree {
 public:
  /// Fits a tree; `max_depth` bounds size, `min_leaf` stops tiny splits.
  static DecisionTree fit(const std::vector<TrainingExample>& corpus,
                          int max_depth = 6, int min_leaf = 3);

  /// Predicted best format for a feature vector.
  Format predict(const MatrixFeatures& f) const;

  /// Fraction of corpus entries the tree classifies correctly.
  double accuracy(const std::vector<TrainingExample>& corpus) const;

  index_t node_count() const { return static_cast<index_t>(nodes_.size()); }

  /// Indented if/else dump of the fitted tree.
  std::string to_string() const;

 private:
  struct Node {
    int feature = -1;       // -1 = leaf
    double threshold = 0.0; // go left when input <= threshold
    int left = -1;
    int right = -1;
    Format label = Format::kCSR;  // leaf prediction
  };

  int fit_node(const std::vector<TrainingExample>& corpus,
               std::vector<int>& ids, int depth, int max_depth, int min_leaf);
  void dump(int node, int indent, std::string& out) const;

  std::vector<Node> nodes_;
};

/// Generates a labelled corpus: synthetic matrices spanning the families
/// the generators cover (dense, scattered sparse, banded, skewed rows),
/// each labelled by the empirical autotuner's measured pick.
std::vector<TrainingExample> make_training_corpus(int per_family, Rng& rng,
                                                  const AutotuneOptions& opts = {});

/// Telemetry-ingestion hook: the bridge from production timings to the
/// learned selector (the "selector v2" feedback pipeline). Live
/// subsystems — today the serving-side layout rescheduler — upsert the
/// latest measured per-row seconds for a (matrix signature, format) pair;
/// harvest() turns every signature that has seen at least two formats
/// into a TrainingExample labelled with the measured-fastest format, i.e.
/// ground truth from real traffic instead of offline probe matrices,
/// ready for DecisionTree::fit.
///
/// Thread-safe; record() is upsert (last write wins), so callers report
/// running means rather than raw samples and the table stays bounded by
/// the number of distinct matrices observed, not by traffic volume.
class TelemetryIngest {
 public:
  /// Process-wide sink (collection is always on; it is O(#matrices)).
  static TelemetryIngest& instance();

  /// Upserts the latest mean per-row seconds observed for `format` on a
  /// matrix with these features.
  void record(const MatrixFeatures& feat, Format format, double row_seconds);

  /// Labelled examples for every signature with >= 2 observed formats.
  std::vector<TrainingExample> harvest() const;

  /// Number of (signature, format) cells currently populated.
  std::size_t observations() const;

  void clear();

 private:
  struct Entry {
    MatrixFeatures features;
    std::array<double, kNumFormats> row_seconds;
    Entry() { row_seconds.fill(std::numeric_limits<double>::infinity()); }
  };

  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;  ///< keyed by matrix signature
};

/// Selector wrapping a fitted tree.
class LearnedSelector {
 public:
  explicit LearnedSelector(DecisionTree tree) : tree_(std::move(tree)) {}

  /// Lazily trained process-wide instance (trains a default corpus on
  /// first use; a few seconds of measurement).
  static const LearnedSelector& instance();

  ScheduleDecision choose(const MatrixFeatures& f) const;

  const DecisionTree& tree() const { return tree_; }

 private:
  DecisionTree tree_;
};

}  // namespace ls
