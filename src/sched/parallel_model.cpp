#include "sched/parallel_model.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.hpp"

namespace ls {

std::vector<double> per_row_ops(Format f, const std::vector<index_t>& row_nnz,
                                index_t n) {
  const index_t m = static_cast<index_t>(row_nnz.size());
  std::vector<double> ops(row_nnz.size());
  switch (f) {
    case Format::kDEN:
      std::fill(ops.begin(), ops.end(), static_cast<double>(n));
      break;
    case Format::kCSR:
    case Format::kCOO:
      for (std::size_t i = 0; i < ops.size(); ++i) {
        ops[i] = static_cast<double>(row_nnz[i]);
      }
      break;
    case Format::kELL: {
      index_t mdim = 0;
      for (index_t d : row_nnz) mdim = std::max(mdim, d);
      std::fill(ops.begin(), ops.end(), static_cast<double>(mdim));
      break;
    }
    case Format::kBCSR:
    case Format::kHYB:
    case Format::kJDS:
      // Approximation: these formats do ~nnz work per row (BCSR fill and
      // HYB slab padding are structure-dependent lower-order terms).
      for (std::size_t i = 0; i < ops.size(); ++i) {
        ops[i] = static_cast<double>(row_nnz[i]);
      }
      break;
    case Format::kDIA:
    case Format::kCSC: {
      // Not row-decomposable (DIA splits by stripe, CSC by column with
      // scatter conflicts); callers use the dedicated paths in
      // simulate_makespan.
      (void)m;
      std::fill(ops.begin(), ops.end(), 0.0);
      break;
    }
  }
  return ops;
}

MakespanResult simulate_makespan(Format f,
                                 const std::vector<index_t>& row_nnz,
                                 index_t n, index_t ndig, int threads,
                                 const CostCalibration& cal) {
  LS_CHECK(threads >= 1, "need at least one thread");
  const index_t m = static_cast<index_t>(row_nnz.size());
  LS_CHECK(m > 0, "empty matrix");
  MakespanResult r;

  if (f == Format::kDIA) {
    // Stripe-parallel: ndig stripes of min(M, N) slots, blocked statically.
    const double stripe = static_cast<double>(std::min(m, n));
    const double total = static_cast<double>(ndig) * stripe;
    const index_t per_thread = (ndig + threads - 1) / threads;
    r.total_ops = total;
    r.critical_ops = static_cast<double>(per_thread) * stripe;
  } else if (f == Format::kCOO) {
    // Nonzero-parallel: "all the non-zero elements in data array can be
    // processed in parallel" (Section III-B). This models the segmented-
    // reduction / atomic-update COO kernel the paper's MIC implementation
    // uses, where a chunk boundary can fall inside a row — so the work
    // splits perfectly regardless of row-length skew.
    double total = 0.0;
    for (index_t l : row_nnz) total += static_cast<double>(l);
    r.total_ops = total;
    r.critical_ops = std::ceil(total / threads);
  } else if (f == Format::kCSC) {
    // Column-outer scatter updates conflict on y; without atomics the
    // kernel is serial, so the critical path is the whole multiply.
    double total = 0.0;
    for (index_t l : row_nnz) total += static_cast<double>(l);
    r.total_ops = total;
    r.critical_ops = total;
  } else {
    // Row-parallel static blocks (DEN, CSR, ELL).
    const std::vector<double> ops = per_row_ops(f, row_nnz, n);
    const double total = std::accumulate(ops.begin(), ops.end(), 0.0);
    r.total_ops = total;
    double worst = 0.0;
    for (int c = 0; c < threads; ++c) {
      const std::size_t lo = row_nnz.size() * static_cast<std::size_t>(c) /
                             static_cast<std::size_t>(threads);
      const std::size_t hi = row_nnz.size() *
                             (static_cast<std::size_t>(c) + 1) /
                             static_cast<std::size_t>(threads);
      double block = 0.0;
      for (std::size_t i = lo; i < hi; ++i) block += ops[i];
      worst = std::max(worst, block);
    }
    r.critical_ops = worst;
  }

  r.seconds = r.critical_ops * cal.seconds_per_op(f);
  const double fair = r.total_ops / threads;
  r.imbalance = fair > 0.0 ? r.critical_ops / fair : 1.0;
  return r;
}

}  // namespace ls
