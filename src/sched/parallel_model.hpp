// Simulated many-core execution model.
//
// The paper ran on a 24-core Ivy Bridge + 61-core Xeon Phi; this repository
// runs wherever it is built (possibly one core). Some of the paper's
// effects — notably Fig. 4, where COO overtakes CSR as vdim grows — are
// *load balance* effects: CSR/ELL/DEN parallelise over rows (so one heavy
// row starves all other threads), while COO parallelises over nonzeros and
// DIA over stripes.
//
// This model computes the static-partition makespan each format would see
// on a P-thread machine: contiguous row blocks for row-parallel formats
// (the rule of the real OpenMP kernels), stripe blocks for DIA, and an
// even nonzero split for COO (modelling the segmented-reduction COO kernel
// whose perfect balance the paper's Section III-B argument relies on).
// The critical path's operation count is multiplied by the calibrated
// per-op cost. The substitution is documented in DESIGN.md section 3.
#pragma once

#include <vector>

#include "common/types.hpp"
#include "formats/format.hpp"
#include "sched/cost_model.hpp"

namespace ls {

/// Work decomposition summary for one format on one matrix.
struct MakespanResult {
  double critical_ops = 0.0;  ///< multiply-adds on the slowest thread
  double total_ops = 0.0;     ///< multiply-adds across all threads
  double seconds = 0.0;       ///< critical_ops * calibrated cost/op
  double imbalance = 0.0;     ///< critical_ops / (total_ops / threads)
};

/// Per-row operation counts of one SMSV in format `f` (padding included).
/// row_nnz is the dim_i vector; `n` is the column count.
std::vector<double> per_row_ops(Format f, const std::vector<index_t>& row_nnz,
                                index_t n);

/// Static-partition makespan of one SMSV in format `f` on `threads` threads.
///
/// Row-parallel formats (DEN, CSR, ELL) split rows into `threads` contiguous
/// blocks; COO splits nonzeros into row-aligned chunks (matching
/// CooMatrix::multiply_dense); DIA is stripe-parallel with ndig stripes of
/// min(M, N) slots.
MakespanResult simulate_makespan(Format f,
                                 const std::vector<index_t>& row_nnz,
                                 index_t n, index_t ndig, int threads,
                                 const CostCalibration& cal);

}  // namespace ls
