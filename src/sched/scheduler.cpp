#include "sched/scheduler.hpp"

#include "common/error.hpp"
#include "sched/learned.hpp"

namespace ls {

ScheduleDecision LayoutScheduler::decide(const CooMatrix& x) const {
  switch (opts_.policy) {
    case SchedulePolicy::kEmpirical:
      return EmpiricalAutotuner(opts_.autotune).choose(x);
    case SchedulePolicy::kHeuristic:
      return HeuristicSelector().choose(extract_features(x));
    case SchedulePolicy::kLearned:
      return LearnedSelector::instance().choose(extract_features(x));
    case SchedulePolicy::kFixed: {
      ScheduleDecision d;
      d.format = opts_.fixed_format;
      d.rationale = "fixed format (non-adaptive): " +
                    std::string(format_name(d.format));
      return d;
    }
  }
  throw Error("invalid schedule policy");
}

SchedulePolicy parse_policy(const std::string& name) {
  if (name == "empirical") return SchedulePolicy::kEmpirical;
  if (name == "heuristic") return SchedulePolicy::kHeuristic;
  if (name == "learned") return SchedulePolicy::kLearned;
  if (name == "fixed") return SchedulePolicy::kFixed;
  throw Error("unknown schedule policy '" + name +
              "' (expected empirical, heuristic, learned or fixed)");
}

}  // namespace ls
