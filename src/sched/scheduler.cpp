#include "sched/scheduler.hpp"

#include <cmath>
#include <new>

#include "common/error.hpp"
#include "common/failpoint.hpp"
#include "common/metrics.hpp"
#include "common/trace.hpp"
#include "kernels/simd.hpp"
#include "sched/learned.hpp"

namespace ls {

ScheduleDecision LayoutScheduler::decide(const CooMatrix& x) const {
  metrics::ScopedTimer decide_timer("sched.decide_seconds");
  trace::ScopedEvent decide_span("decide", "sched");
  switch (opts_.policy) {
    case SchedulePolicy::kEmpirical:
      // Degrade, don't die: when every empirical candidate fails (injected
      // faults, memory pressure, budgets), the heuristic cost model still
      // yields a valid format from features alone.
      try {
        return EmpiricalAutotuner(opts_.autotune).choose(x);
      } catch (const Error& e) {
        ScheduleDecision d = HeuristicSelector().choose(extract_features(x));
        d.degraded = true;
        d.dropped.push_back(e.what());
        d.rationale = "degraded: empirical autotune failed, fell back to "
                      "heuristic cost model (" +
                      std::string(format_name(d.format)) + ")";
        return d;
      } catch (const std::bad_alloc&) {
        ScheduleDecision d = HeuristicSelector().choose(extract_features(x));
        d.degraded = true;
        d.dropped.push_back("empirical autotune: allocation failure");
        d.rationale = "degraded: empirical autotune ran out of memory, fell "
                      "back to heuristic cost model (" +
                      std::string(format_name(d.format)) + ")";
        return d;
      }
    case SchedulePolicy::kHeuristic:
      return HeuristicSelector().choose(extract_features(x));
    case SchedulePolicy::kLearned:
      return LearnedSelector::instance().choose(extract_features(x));
    case SchedulePolicy::kFixed: {
      ScheduleDecision d;
      d.format = opts_.fixed_format;
      d.rationale = "fixed format (non-adaptive): " +
                    std::string(format_name(d.format));
      return d;
    }
  }
  throw Error("invalid schedule policy");
}

AnyMatrix LayoutScheduler::materialize(const CooMatrix& x,
                                       const ScheduleDecision& d) const {
  LS_FAILPOINT("sched.materialize");
  metrics::ScopedTimer mat_timer("sched.materialize_seconds");
  trace::ScopedEvent mat_span("materialize:" +
                                  std::string(format_name(d.format)),
                              "sched");
  return AnyMatrix::from_coo(x, d.format);
}

AnyMatrix LayoutScheduler::materialize_or_degrade(const CooMatrix& x,
                                                  ScheduleDecision& d) const {
  try {
    return materialize(x, d);
  } catch (const std::exception& e) {
    if (d.format == Format::kCSR) throw;  // no simpler format to retry with
    d.dropped.push_back(std::string(format_name(d.format)) +
                        ": materialisation failed: " + e.what());
    d.format = Format::kCSR;
    d.degraded = true;
    d.rationale += "; degraded: chosen format failed to materialise, "
                   "fell back to CSR";
    return AnyMatrix::from_coo(x, Format::kCSR);
  }
}

AnyMatrix LayoutScheduler::schedule(const CooMatrix& x,
                                    ScheduleDecision* decision) const {
  ScheduleDecision d = decide(x);
  AnyMatrix m = materialize_or_degrade(x, d);
  record_decision_metrics(d);
  if (decision != nullptr) *decision = std::move(d);
  return m;
}

void record_decision_metrics(const ScheduleDecision& d) {
  if (!metrics::enabled()) return;
  metrics::counter_add("sched.decisions_total");
  if (d.degraded) metrics::counter_add("sched.decisions_degraded_total");
  metrics::counter_add("sched.chosen_total." +
                       std::string(format_name(d.format)));
  // Per-candidate scores: measured (empirical) or predicted (heuristic)
  // seconds per SMSV. Unprobed candidates sit at 0 or inf — skip both.
  for (Format f : kExtendedFormats) {
    const double s = d.score_of(f);
    if (std::isfinite(s) && s > 0.0) {
      metrics::gauge_set("sched.score_seconds." +
                             std::string(format_name(f)),
                         s);
    }
    const double bs = d.batch_score_of(f);
    if (std::isfinite(bs) && bs > 0.0) {
      metrics::gauge_set("sched.batch_score_seconds." +
                             std::string(format_name(f)),
                         bs);
    }
  }
  if (d.probe_batch_rows > 1) {
    metrics::gauge_set("sched.probe_batch_rows",
                       static_cast<double>(d.probe_batch_rows));
  }
  metrics::gauge_set("sched.degraded", d.degraded ? 1.0 : 0.0);
  metrics::annotate("sched.chosen_format", format_name(d.format));
  metrics::annotate("sched.rationale", d.rationale);
  metrics::annotate("sched.simd_level", simd::level_name(simd::active_level()));
  if (!d.dropped.empty()) {
    std::string joined;
    for (const std::string& note : d.dropped) {
      if (!joined.empty()) joined += " | ";
      joined += note;
    }
    metrics::annotate("sched.dropped", joined);
  }
  if (trace::enabled()) {
    trace::emit_instant("decision:" + std::string(format_name(d.format)),
                        "sched",
                        {{"rationale", d.rationale},
                         {"degraded", d.degraded ? "true" : "false"}});
  }
}

SchedulerOptions tuned_for_deployment(SchedulerOptions base,
                                      DeploymentHint hint) {
  if (base.policy == SchedulePolicy::kEmpirical) {
    // The probe dimension is the serving regime: a latency deployment
    // scores one request per SMSV, a throughput deployment streams the
    // SV matrix once per micro-batch.
    base.autotune.batch_rows =
        hint == DeploymentHint::kThroughput ? kMaxSmsvBatch : 1;
  }
  return base;
}

DeploymentHint parse_deployment_hint(const std::string& name) {
  if (name == "latency") return DeploymentHint::kLatency;
  if (name == "throughput") return DeploymentHint::kThroughput;
  throw Error("unknown deployment hint '" + name +
              "' (expected latency or throughput)");
}

const char* deployment_hint_name(DeploymentHint hint) {
  switch (hint) {
    case DeploymentHint::kLatency: return "latency";
    case DeploymentHint::kThroughput: return "throughput";
  }
  return "?";
}

SchedulePolicy parse_policy(const std::string& name) {
  if (name == "empirical") return SchedulePolicy::kEmpirical;
  if (name == "heuristic") return SchedulePolicy::kHeuristic;
  if (name == "learned") return SchedulePolicy::kLearned;
  if (name == "fixed") return SchedulePolicy::kFixed;
  throw Error("unknown schedule policy '" + name +
              "' (expected empirical, heuristic, learned or fixed)");
}

}  // namespace ls
