#include "sched/scheduler.hpp"

#include <new>

#include "common/error.hpp"
#include "common/failpoint.hpp"
#include "sched/learned.hpp"

namespace ls {

ScheduleDecision LayoutScheduler::decide(const CooMatrix& x) const {
  switch (opts_.policy) {
    case SchedulePolicy::kEmpirical:
      // Degrade, don't die: when every empirical candidate fails (injected
      // faults, memory pressure, budgets), the heuristic cost model still
      // yields a valid format from features alone.
      try {
        return EmpiricalAutotuner(opts_.autotune).choose(x);
      } catch (const Error& e) {
        ScheduleDecision d = HeuristicSelector().choose(extract_features(x));
        d.degraded = true;
        d.dropped.push_back(e.what());
        d.rationale = "degraded: empirical autotune failed, fell back to "
                      "heuristic cost model (" +
                      std::string(format_name(d.format)) + ")";
        return d;
      } catch (const std::bad_alloc&) {
        ScheduleDecision d = HeuristicSelector().choose(extract_features(x));
        d.degraded = true;
        d.dropped.push_back("empirical autotune: allocation failure");
        d.rationale = "degraded: empirical autotune ran out of memory, fell "
                      "back to heuristic cost model (" +
                      std::string(format_name(d.format)) + ")";
        return d;
      }
    case SchedulePolicy::kHeuristic:
      return HeuristicSelector().choose(extract_features(x));
    case SchedulePolicy::kLearned:
      return LearnedSelector::instance().choose(extract_features(x));
    case SchedulePolicy::kFixed: {
      ScheduleDecision d;
      d.format = opts_.fixed_format;
      d.rationale = "fixed format (non-adaptive): " +
                    std::string(format_name(d.format));
      return d;
    }
  }
  throw Error("invalid schedule policy");
}

AnyMatrix LayoutScheduler::materialize(const CooMatrix& x,
                                       const ScheduleDecision& d) const {
  LS_FAILPOINT("sched.materialize");
  return AnyMatrix::from_coo(x, d.format);
}

AnyMatrix LayoutScheduler::materialize_or_degrade(const CooMatrix& x,
                                                  ScheduleDecision& d) const {
  try {
    return materialize(x, d);
  } catch (const std::exception& e) {
    if (d.format == Format::kCSR) throw;  // no simpler format to retry with
    d.dropped.push_back(std::string(format_name(d.format)) +
                        ": materialisation failed: " + e.what());
    d.format = Format::kCSR;
    d.degraded = true;
    d.rationale += "; degraded: chosen format failed to materialise, "
                   "fell back to CSR";
    return AnyMatrix::from_coo(x, Format::kCSR);
  }
}

AnyMatrix LayoutScheduler::schedule(const CooMatrix& x,
                                    ScheduleDecision* decision) const {
  ScheduleDecision d = decide(x);
  AnyMatrix m = materialize_or_degrade(x, d);
  if (decision != nullptr) *decision = std::move(d);
  return m;
}

SchedulePolicy parse_policy(const std::string& name) {
  if (name == "empirical") return SchedulePolicy::kEmpirical;
  if (name == "heuristic") return SchedulePolicy::kHeuristic;
  if (name == "learned") return SchedulePolicy::kLearned;
  if (name == "fixed") return SchedulePolicy::kFixed;
  throw Error("unknown schedule policy '" + name +
              "' (expected empirical, heuristic, learned or fixed)");
}

}  // namespace ls
