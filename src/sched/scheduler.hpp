// Top-level runtime layout scheduler — the public entry point that ties
// feature extraction, selection policy and materialisation together.
//
// Typical use (what the quickstart example does):
//
//   LayoutScheduler sched;                       // empirical policy
//   AnyMatrix X = sched.schedule(dataset.X);     // decide + materialise
//   SvmModel model = train_svm(X, dataset.y, params);
#pragma once

#include <string>

#include "data/features.hpp"
#include "formats/any_matrix.hpp"
#include "formats/coo.hpp"
#include "sched/selector.hpp"

namespace ls {

/// Selection policy.
enum class SchedulePolicy {
  kEmpirical,  ///< time real SMSVs per candidate (default; ground truth)
  kHeuristic,  ///< calibrated analytic cost model (O(1) after features)
  kLearned,    ///< decision tree fitted on an autotuned corpus
  kFixed,      ///< always use `fixed_format` (the non-adaptive baseline)
};

/// Scheduler configuration.
struct SchedulerOptions {
  SchedulePolicy policy = SchedulePolicy::kEmpirical;
  Format fixed_format = Format::kCSR;  ///< used by kFixed only
  AutotuneOptions autotune;            ///< used by kEmpirical only
};

/// Runtime data-layout scheduler.
///
/// The empirical policy degrades gracefully rather than failing: a
/// candidate format that throws, exhausts memory, or busts its budget is
/// dropped; if every empirical candidate fails, decide() falls back to the
/// heuristic cost model; and if even the chosen format cannot be
/// materialised, materialize_or_degrade() falls back to CSR. Every
/// fallback is recorded in the returned ScheduleDecision (`degraded`,
/// `dropped`, rationale) so callers can observe the path taken.
class LayoutScheduler {
 public:
  explicit LayoutScheduler(SchedulerOptions opts = {}) : opts_(opts) {}

  /// Chooses a format for `x` under the configured policy. Under the
  /// empirical policy, falls back to the heuristic model (decision flagged
  /// `degraded`) when no empirical candidate survives.
  ScheduleDecision decide(const CooMatrix& x) const;

  /// Materialises `x` in the decided format; throws on failure.
  AnyMatrix materialize(const CooMatrix& x, const ScheduleDecision& d) const;

  /// Materialises `x` in d.format, falling back to CSR (and flagging `d`
  /// as degraded) when that format cannot be built.
  AnyMatrix materialize_or_degrade(const CooMatrix& x,
                                   ScheduleDecision& d) const;

  /// decide() + materialize_or_degrade() in one call. When `decision` is
  /// non-null the final (possibly degraded) decision is stored there.
  AnyMatrix schedule(const CooMatrix& x,
                     ScheduleDecision* decision = nullptr) const;

  const SchedulerOptions& options() const { return opts_; }

 private:
  SchedulerOptions opts_;
};

/// Parses a policy name ("empirical", "heuristic", "fixed").
SchedulePolicy parse_policy(const std::string& name);

/// Deployment shape of a model loaded for serving: what the layout
/// decision should optimise for.
enum class DeploymentHint {
  kLatency,     ///< single-request path: race the single-rhs SMSV
  kThroughput,  ///< micro-batched path: race multiply_dense_batch
};

/// Load-time decision API for the serving subsystem: returns `base` tuned
/// for the deployment shape. Latency-optimized probes candidates on the
/// single-rhs SMSV a lone request issues; throughput-optimized probes the
/// batched kernel (kMaxSmsvBatch right-hand sides) the micro-batcher runs,
/// which can prefer a different format (see bench/ablation_batch_rows).
/// Only the empirical policy has a probe dimension to tune; other policies
/// pass through unchanged.
SchedulerOptions tuned_for_deployment(SchedulerOptions base,
                                      DeploymentHint hint);

/// Parses a hint name ("latency", "throughput").
DeploymentHint parse_deployment_hint(const std::string& name);

/// Hint name for logs and metrics annotations.
const char* deployment_hint_name(DeploymentHint hint);

/// Records a *final* schedule decision into the metrics registry: chosen
/// format, per-candidate scores, degradation flag and drop notes. Called by
/// the trainer facade and LayoutScheduler::schedule once per decision — a
/// no-op when metrics collection is disabled.
void record_decision_metrics(const ScheduleDecision& d);

}  // namespace ls
