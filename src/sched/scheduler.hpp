// Top-level runtime layout scheduler — the public entry point that ties
// feature extraction, selection policy and materialisation together.
//
// Typical use (what the quickstart example does):
//
//   LayoutScheduler sched;                       // empirical policy
//   AnyMatrix X = sched.schedule(dataset.X);     // decide + materialise
//   SvmModel model = train_svm(X, dataset.y, params);
#pragma once

#include <string>

#include "data/features.hpp"
#include "formats/any_matrix.hpp"
#include "formats/coo.hpp"
#include "sched/selector.hpp"

namespace ls {

/// Selection policy.
enum class SchedulePolicy {
  kEmpirical,  ///< time real SMSVs per candidate (default; ground truth)
  kHeuristic,  ///< calibrated analytic cost model (O(1) after features)
  kLearned,    ///< decision tree fitted on an autotuned corpus
  kFixed,      ///< always use `fixed_format` (the non-adaptive baseline)
};

/// Scheduler configuration.
struct SchedulerOptions {
  SchedulePolicy policy = SchedulePolicy::kEmpirical;
  Format fixed_format = Format::kCSR;  ///< used by kFixed only
  AutotuneOptions autotune;            ///< used by kEmpirical only
};

/// Runtime data-layout scheduler.
///
/// The empirical policy degrades gracefully rather than failing: a
/// candidate format that throws, exhausts memory, or busts its budget is
/// dropped; if every empirical candidate fails, decide() falls back to the
/// heuristic cost model; and if even the chosen format cannot be
/// materialised, materialize_or_degrade() falls back to CSR. Every
/// fallback is recorded in the returned ScheduleDecision (`degraded`,
/// `dropped`, rationale) so callers can observe the path taken.
class LayoutScheduler {
 public:
  explicit LayoutScheduler(SchedulerOptions opts = {}) : opts_(opts) {}

  /// Chooses a format for `x` under the configured policy. Under the
  /// empirical policy, falls back to the heuristic model (decision flagged
  /// `degraded`) when no empirical candidate survives.
  ScheduleDecision decide(const CooMatrix& x) const;

  /// Materialises `x` in the decided format; throws on failure.
  AnyMatrix materialize(const CooMatrix& x, const ScheduleDecision& d) const;

  /// Materialises `x` in d.format, falling back to CSR (and flagging `d`
  /// as degraded) when that format cannot be built.
  AnyMatrix materialize_or_degrade(const CooMatrix& x,
                                   ScheduleDecision& d) const;

  /// decide() + materialize_or_degrade() in one call. When `decision` is
  /// non-null the final (possibly degraded) decision is stored there.
  AnyMatrix schedule(const CooMatrix& x,
                     ScheduleDecision* decision = nullptr) const;

  const SchedulerOptions& options() const { return opts_; }

 private:
  SchedulerOptions opts_;
};

/// Parses a policy name ("empirical", "heuristic", "fixed").
SchedulePolicy parse_policy(const std::string& name);

/// Records a *final* schedule decision into the metrics registry: chosen
/// format, per-candidate scores, degradation flag and drop notes. Called by
/// the trainer facade and LayoutScheduler::schedule once per decision — a
/// no-op when metrics collection is disabled.
void record_decision_metrics(const ScheduleDecision& d);

}  // namespace ls
