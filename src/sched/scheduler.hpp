// Top-level runtime layout scheduler — the public entry point that ties
// feature extraction, selection policy and materialisation together.
//
// Typical use (what the quickstart example does):
//
//   LayoutScheduler sched;                       // empirical policy
//   AnyMatrix X = sched.schedule(dataset.X);     // decide + materialise
//   SvmModel model = train_svm(X, dataset.y, params);
#pragma once

#include <string>

#include "data/features.hpp"
#include "formats/any_matrix.hpp"
#include "formats/coo.hpp"
#include "sched/selector.hpp"

namespace ls {

/// Selection policy.
enum class SchedulePolicy {
  kEmpirical,  ///< time real SMSVs per candidate (default; ground truth)
  kHeuristic,  ///< calibrated analytic cost model (O(1) after features)
  kLearned,    ///< decision tree fitted on an autotuned corpus
  kFixed,      ///< always use `fixed_format` (the non-adaptive baseline)
};

/// Scheduler configuration.
struct SchedulerOptions {
  SchedulePolicy policy = SchedulePolicy::kEmpirical;
  Format fixed_format = Format::kCSR;  ///< used by kFixed only
  AutotuneOptions autotune;            ///< used by kEmpirical only
};

/// Runtime data-layout scheduler.
class LayoutScheduler {
 public:
  explicit LayoutScheduler(SchedulerOptions opts = {}) : opts_(opts) {}

  /// Chooses a format for `x` under the configured policy.
  ScheduleDecision decide(const CooMatrix& x) const;

  /// Materialises `x` in the decided format.
  AnyMatrix materialize(const CooMatrix& x, const ScheduleDecision& d) const {
    return AnyMatrix::from_coo(x, d.format);
  }

  /// decide() + materialize() in one call.
  AnyMatrix schedule(const CooMatrix& x) const {
    return materialize(x, decide(x));
  }

  const SchedulerOptions& options() const { return opts_; }

 private:
  SchedulerOptions opts_;
};

/// Parses a policy name ("empirical", "heuristic", "fixed").
SchedulePolicy parse_policy(const std::string& name);

}  // namespace ls
