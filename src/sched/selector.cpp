#include "sched/selector.hpp"

#include <algorithm>
#include <limits>
#include <new>
#include <span>
#include <vector>

#include "common/error.hpp"
#include "common/failpoint.hpp"
#include "common/metrics.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "common/trace.hpp"
#include "formats/any_matrix.hpp"
#include "formats/sparse_vector.hpp"
#include "formats/storage.hpp"
#include "kernels/simd.hpp"

namespace ls {

namespace {

/// Storage words each format would need, from features alone. BCSR's tile
/// count is structure-dependent; use the pessimistic one-nonzero-per-tile
/// bound capped at the fully tiled matrix.
double modeled_storage_words(Format f, const MatrixFeatures& feat) {
  StorageShape s;
  s.rows = feat.m;
  s.cols = feat.n;
  s.nnz = feat.nnz;
  s.ndig = feat.ndig;
  s.mdim = feat.mdim;
  s.nblocks = std::min(feat.nnz, ((feat.m + 3) / 4) * ((feat.n + 3) / 4));
  // HYB guard approximation: auto width = ceil(adim), overflow <= nnz.
  s.hyb_width = feat.m > 0 ? (feat.nnz + feat.m - 1) / feat.m : 0;
  s.hyb_overflow = 0;
  return static_cast<double>(storage_words(f, s));
}

bool storage_admissible(Format f, const MatrixFeatures& feat, double ratio) {
  const double csr = std::max(
      1.0, modeled_storage_words(Format::kCSR, feat));
  return modeled_storage_words(f, feat) <= ratio * csr;
}

}  // namespace

ScheduleDecision HeuristicSelector::choose(const MatrixFeatures& feat,
                                           double max_storage_ratio) const {
  const CostPrediction pred = predict_cost(feat, *cal_);
  ScheduleDecision d;
  d.score_seconds = pred.seconds;
  d.batch_score_seconds = pred.batch_seconds;
  d.probe_batch_rows = kCalibrationBatchRows;

  double best = std::numeric_limits<double>::infinity();
  for (Format f : kAllFormats) {
    if (!storage_admissible(f, feat, max_storage_ratio)) {
      // Leave the score visible but never select the format.
      continue;
    }
    const double s = pred.seconds_of(f);
    if (s < best) {
      best = s;
      d.format = f;
    }
  }
  d.rationale = "heuristic cost model: min predicted SMSV time (" +
                std::string(format_name(d.format)) + ") at simd=" +
                std::string(simd::level_name(pred.simd_level)) + " width=" +
                std::to_string(pred.vector_width);
  return d;
}

ScheduleDecision EmpiricalAutotuner::choose(const CooMatrix& x) const {
  LS_CHECK(x.rows() > 0 && x.cols() > 0, "cannot autotune an empty matrix");
  trace::ScopedEvent tune_span("autotune", "sched");
  const MatrixFeatures feat = [&x] {
    metrics::ScopedTimer feat_timer("sched.features_seconds");
    trace::ScopedEvent feat_span("extract_features", "sched");
    return extract_features(x);
  }();

  // Probe window: a contiguous block of rows preserves the row-length and
  // diagonal structure, unlike random row sampling.
  const CooMatrix* probe = &x;
  CooMatrix window;
  double scale = 1.0;
  if (opts_.sample_rows > 0 && x.rows() > opts_.sample_rows) {
    std::vector<Triplet> triplets;
    const auto rows = x.row_indices();
    const auto cols = x.col_indices();
    const auto vals = x.values();
    for (std::size_t k = 0; k < vals.size(); ++k) {
      if (rows[k] < opts_.sample_rows) {
        triplets.push_back({rows[k], cols[k], vals[k]});
      }
    }
    window = CooMatrix(opts_.sample_rows, x.cols(), std::move(triplets));
    probe = &window;
    scale = static_cast<double>(x.rows()) /
            static_cast<double>(opts_.sample_rows);
  }

  // Workspace seeded with a real gathered row — the SMSV right-hand side in
  // SMO is always a row of the matrix, so the probe multiplies match the
  // training access pattern exactly.
  std::vector<real_t> w(static_cast<std::size_t>(probe->cols()), 0.0);
  std::vector<real_t> y(static_cast<std::size_t>(probe->rows()), 0.0);
  Rng rng(0x5E1EC7ull);
  SparseVector row;
  probe->gather_row(rng.uniform_int(0, probe->rows() - 1), row);
  row.scatter(w);

  // Optional batched probe dimension: the same gathered row replicated as
  // an interleaved block of `batch_rows` right-hand sides. When enabled the
  // race is decided on the per-row batched score, the regime batch_predict
  // and the SMO prefetch pipeline actually run in.
  const index_t batch_rows =
      std::clamp<index_t>(opts_.batch_rows, 1, kMaxSmsvBatch);
  std::vector<real_t> wb;
  std::vector<real_t> yb;
  if (batch_rows > 1) {
    wb.assign(w.size() * static_cast<std::size_t>(batch_rows), 0.0);
    yb.assign(y.size() * static_cast<std::size_t>(batch_rows), 0.0);
    for (std::size_t j = 0; j < w.size(); ++j) {
      for (index_t q = 0; q < batch_rows; ++q) {
        wb[j * static_cast<std::size_t>(batch_rows) +
           static_cast<std::size_t>(q)] = w[j];
      }
    }
  }

  ScheduleDecision d;
  d.score_seconds.fill(std::numeric_limits<double>::infinity());
  d.batch_score_seconds.fill(std::numeric_limits<double>::infinity());
  d.probe_batch_rows = batch_rows;
  double best = std::numeric_limits<double>::infinity();
  bool any = false;
  const std::span<const Format> candidates =
      opts_.include_extended ? std::span<const Format>(kExtendedFormats)
                             : std::span<const Format>(kAllFormats);
  for (Format f : candidates) {
    const std::string fname(format_name(f));
    if (!storage_admissible(f, feat, opts_.max_storage_ratio)) continue;
    if (opts_.candidate_bytes_budget > 0) {
      const double bytes = modeled_storage_words(f, feat) *
                           static_cast<double>(kRealBytes);
      if (bytes > static_cast<double>(opts_.candidate_bytes_budget)) {
        d.dropped.push_back(fname + ": modelled storage " +
                            std::to_string(bytes) + " B over budget");
        metrics::counter_add("sched.candidates_dropped_total");
        continue;
      }
    }
    // One failed candidate must not abort the race: a build that throws,
    // runs out of memory, or busts its wall-clock budget is dropped and
    // the remaining candidates keep competing.
    trace::ScopedEvent probe_span("probe:" + fname, "sched");
    try {
      LS_FAILPOINT("sched.candidate.materialize");
      Timer candidate_timer;
      const AnyMatrix mat = AnyMatrix::from_coo(*probe, f);
      const double secs =
          time_best([&] { mat.multiply_dense(w, y); }, opts_.trials, 0.002) *
          scale;
      double batch_secs = std::numeric_limits<double>::infinity();
      if (batch_rows > 1) {
        // Per-row batched score: time the whole block, divide by b.
        batch_secs = time_best([&] { mat.multiply_dense_batch(
                                   wb, batch_rows, yb); },
                               opts_.trials, 0.002) *
                     scale / static_cast<double>(batch_rows);
        probe_span.arg("batch_score_seconds", std::to_string(batch_secs));
      }
      metrics::timer_record("sched.probe_seconds." + fname,
                            candidate_timer.seconds());
      probe_span.arg("score_seconds", std::to_string(secs));
      if (opts_.candidate_seconds_budget > 0 &&
          candidate_timer.seconds() > opts_.candidate_seconds_budget) {
        d.dropped.push_back(fname + ": busted " +
                            std::to_string(opts_.candidate_seconds_budget) +
                            " s candidate budget");
        metrics::counter_add("sched.candidates_dropped_total");
        continue;
      }
      d.score_seconds[static_cast<std::size_t>(f)] = secs;
      d.batch_score_seconds[static_cast<std::size_t>(f)] = batch_secs;
      const double race_score = batch_rows > 1 ? batch_secs : secs;
      if (race_score < best) {
        best = race_score;
        d.format = f;
        any = true;
      }
    } catch (const Error& e) {
      d.dropped.push_back(fname + ": " + e.what());
      metrics::counter_add("sched.candidates_dropped_total");
      probe_span.arg("dropped", e.what());
    } catch (const std::bad_alloc&) {
      d.dropped.push_back(fname + ": allocation failure");
      metrics::counter_add("sched.candidates_dropped_total");
      probe_span.arg("dropped", "allocation failure");
    }
  }
  if (!any) {
    std::string detail;
    for (const std::string& note : d.dropped) {
      detail += "; " + note;
    }
    throw Error("empirical autotune: no candidate survived (storage guards"
                " or per-candidate failures)" + detail);
  }
  d.rationale =
      batch_rows > 1
          ? "empirical autotune: min measured batched SMSV time/row at b=" +
                std::to_string(batch_rows) + " (" +
                std::string(format_name(d.format)) + ")"
          : "empirical autotune: min measured SMSV time (" +
                std::string(format_name(d.format)) + ")";
  return d;
}

}  // namespace ls
