// Format selection policies — the decision system of Section III-B.
//
// Two selectors are provided and benchmarked against each other
// (bench/ablation_selector):
//   * HeuristicSelector: O(1) after feature extraction; ranks formats by the
//     calibrated analytic cost model. This is the "influencing parameter"
//     decision system the paper describes.
//   * EmpiricalAutotuner: times real SMSV iterations of each candidate
//     format on (a sample of) the actual matrix and picks the fastest —
//     ground truth at the price of building candidate formats up front.
//     Because SMO then runs thousands of iterations over the chosen layout,
//     the tuning cost is amortised away (the paper's "runtime scheduling").
#pragma once

#include <array>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "data/features.hpp"
#include "formats/coo.hpp"
#include "formats/format.hpp"
#include "sched/cost_model.hpp"

namespace ls {

/// Outcome of a selection: the chosen format plus per-format scores
/// (predicted or measured seconds per SMSV) for reporting.
struct ScheduleDecision {
  Format format = Format::kCSR;
  std::array<double, kNumFormats> score_seconds{};
  /// Per-format seconds per *row* when the format runs its batched kernel
  /// (multiply_dense_batch). Heuristic: predicted from the batched
  /// calibration dimension. Empirical: measured when
  /// AutotuneOptions::batch_rows > 1, else left infinite.
  std::array<double, kNumFormats> batch_score_seconds{};
  /// Right-hand sides per probe multiply that produced batch_score_seconds
  /// (1 = batched dimension not probed).
  index_t probe_batch_rows = 1;
  std::string rationale;
  /// True when a fallback path produced this decision (empirical candidates
  /// all failed, or the chosen format could not be materialised). The
  /// decision is still valid — callers observe the degradation rather than
  /// an exception.
  bool degraded = false;
  /// One human-readable note per candidate that was dropped (threw, ran
  /// out of memory, or busted its time/space budget) on the way here.
  std::vector<std::string> dropped;

  double score_of(Format f) const {
    return score_seconds[static_cast<std::size_t>(f)];
  }
  double batch_score_of(Format f) const {
    return batch_score_seconds[static_cast<std::size_t>(f)];
  }
};

/// Cost-model-driven selector.
class HeuristicSelector {
 public:
  explicit HeuristicSelector(const CostCalibration& cal)
      : cal_(&cal) {}
  HeuristicSelector() : cal_(&CostCalibration::instance()) {}

  /// Picks the format with the lowest predicted SMSV time. Formats whose
  /// storage would exceed `max_storage_ratio` times the CSR storage are
  /// disqualified first (guards against e.g. DEN on sector blowing memory).
  ScheduleDecision choose(const MatrixFeatures& feat,
                          double max_storage_ratio = 64.0) const;

 private:
  const CostCalibration* cal_;
};

/// Options for the measurement-based autotuner.
struct AutotuneOptions {
  /// Maximum rows of the probe window (0 = use the whole matrix). A
  /// contiguous row window preserves the diagonal / row-length structure
  /// that drives DIA and ELL costs.
  index_t sample_rows = 2048;
  /// Timed SMSV repetitions per candidate.
  int trials = 3;
  /// Skip candidates whose modelled storage exceeds this multiple of the
  /// matrix's CSR storage (avoids materialising absurd layouts).
  double max_storage_ratio = 64.0;
  /// Also consider the derived formats (CSC, BCSR) beyond the paper's five
  /// basic formats.
  bool include_extended = false;
  /// Per-candidate wall-clock budget in seconds (0 = unlimited). A
  /// candidate whose build + probe time busts the budget is dropped from
  /// the race instead of aborting the whole autotune.
  double candidate_seconds_budget = 0.0;
  /// Per-candidate modelled storage budget in bytes (0 = unlimited);
  /// candidates above it are dropped before any allocation happens.
  std::size_t candidate_bytes_budget = 0;
  /// Right-hand sides per probe multiply. 1 probes the single-rhs SMSV the
  /// solver's hot loop issues; > 1 (clamped to kMaxSmsvBatch) additionally
  /// probes multiply_dense_batch and races candidates on the per-row
  /// batched score — the regime batch_predict and the prefetch pipeline
  /// run in.
  index_t batch_rows = 1;
};

/// Measurement-based selector.
class EmpiricalAutotuner {
 public:
  explicit EmpiricalAutotuner(AutotuneOptions opts = {}) : opts_(opts) {}

  /// Builds each admissible candidate format for (a window of) `x`, times
  /// real SMSV products with a gathered-row workspace, and picks the
  /// fastest. Scores are extrapolated to full-matrix seconds.
  ScheduleDecision choose(const CooMatrix& x) const;

 private:
  AutotuneOptions opts_;
};

}  // namespace ls
