#include "serve/batcher.hpp"

#include <algorithm>
#include <limits>
#include <string>
#include <utility>

namespace ls::serve {

namespace {

std::future<PredictResult> ready_future(Status s) {
  std::promise<PredictResult> p;
  p.set_value(PredictResult{s, 0.0, 0.0});
  return p.get_future();
}

}  // namespace

MicroBatcher::MicroBatcher(BatcherOptions opts) : opts_(opts) {
  opts_.max_batch = std::max<index_t>(1, opts_.max_batch);
  opts_.max_queue = std::max<std::size_t>(1, opts_.max_queue);
}

std::optional<std::future<PredictResult>> MicroBatcher::submit(
    std::shared_ptr<const LoadedModel> model, SparseVector x,
    double deadline_ms, SubmitReject* reject) {
  if (reject) *reject = SubmitReject::kNone;
  BatchRequest req;
  req.model = std::move(model);
  req.x = std::move(x);
  req.deadline_ms = deadline_ms;
  req.enqueued = std::chrono::steady_clock::now();
  std::future<PredictResult> fut = req.done.get_future();
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (stopped_) return ready_future(Status::kShuttingDown);
    if (queue_.size() >= opts_.max_queue) {
      if (reject) *reject = SubmitReject::kQueueFull;
      return std::nullopt;
    }
    const LoadedModel* key = req.model.get();
    const std::string& name = req.model->name;
    auto [it, inserted] = tenants_.try_emplace(name);
    if (opts_.max_per_model > 0 && it->second.queued >= opts_.max_per_model) {
      if (reject) *reject = SubmitReject::kModelQuota;
      return std::nullopt;
    }
    if (it->second.queued == 0) {
      // Tenant just became active: start its virtual clock at the current
      // virtual time so idle periods bank no service credit.
      it->second.service =
          std::max(it->second.service, virtual_time_ * weight_of(name));
    }
    ++it->second.queued;
    queue_.push_back(std::move(req));
    ++cohort_counts_[key];
  }
  cv_.notify_one();
  return fut;
}

bool MicroBatcher::next_batch(std::vector<BatchRequest>& out) {
  out.clear();
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    cv_.wait(lk, [&] { return stopped_ || !queue_.empty(); });
    if (stopped_) return false;

    // A batch is open: it flushes when the same-model cohort at the front
    // is full, or when its oldest member has waited out the deadline.
    // Greedy mode (deadline 0) takes whatever is pending right away —
    // under load, batches still form while the workers are busy scoring.
    if (opts_.deadline_ms > 0) {
      const auto flush_at =
          queue_.front().enqueued +
          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              std::chrono::duration<double, std::milli>(opts_.deadline_ms));
      // The "full" test must be cohort-aware: a flush only ever takes the
      // front request's model, so a queue full of interleaved models is
      // not a full batch — counting raw queue depth here used to flush a
      // tiny cohort the moment mixed traffic crossed max_batch. A queue at
      // the admission limit still flushes (shedding at the door while
      // waiting out a deadline would be worse than a partial batch).
      const bool full_or_stopped = cv_.wait_until(lk, flush_at, [&] {
        return stopped_ || queue_.empty() ||
               (opts_.fair ? any_cohort_full_locked()
                           : front_cohort_full_locked()) ||
               queue_.size() >= opts_.max_queue;
      });
      if (stopped_) return false;
      if (queue_.empty()) continue;  // another worker drained the queue
      (void)full_or_stopped;  // timeout = deadline flush, equally valid
    }

    // Choose the cohort to flush: plain mode takes the front request's
    // model (FIFO); fair mode takes the least-served tenant's frontmost
    // model so a flooding tenant cannot push a trickling one behind its
    // whole backlog. Extraction preserves arrival order within the cohort.
    const LoadedModel* cohort =
        opts_.fair ? fair_cohort_locked() : queue_.front().model.get();
    std::deque<BatchRequest> rest;
    while (!queue_.empty() &&
           static_cast<index_t>(out.size()) < opts_.max_batch) {
      if (queue_.front().model.get() == cohort) {
        // Leaving the queue for good: release its per-model count. The
        // skipped other-model requests are re-prepended below and keep
        // theirs.
        cohort_release_locked(cohort);
        out.push_back(std::move(queue_.front()));
      } else {
        rest.push_back(std::move(queue_.front()));
      }
      queue_.pop_front();
    }
    // Re-prepend the skipped other-model requests in their original order.
    for (auto it = rest.rbegin(); it != rest.rend(); ++it) {
      queue_.push_front(std::move(*it));
    }
    // Advance the served tenant's virtual clock and release its queued
    // quota slots.
    if (!out.empty()) {
      const std::string& name = out.front().model->name;
      const auto it = tenants_.find(name);
      if (it != tenants_.end()) {
        it->second.service +=
            static_cast<double>(out.size()) / weight_of(name);
        virtual_time_ = it->second.service / weight_of(name);
        it->second.queued -= std::min(it->second.queued, out.size());
        if (it->second.queued == 0) tenants_.erase(it);
      }
    }
    if (!queue_.empty()) {
      // Leftover work (other models, or overflow past max_batch): hand it
      // to another worker instead of waiting for the next submit.
      cv_.notify_one();
    }
    // Claim the in-flight slot before the lock drops: from here until
    // batch_done() the batcher is not quiesced, with no gap in between.
    ++in_flight_;
    return true;
  }
}

void MicroBatcher::batch_done() {
  std::lock_guard<std::mutex> lk(mu_);
  --in_flight_;
}

bool MicroBatcher::quiesced() const {
  std::lock_guard<std::mutex> lk(mu_);
  return queue_.empty() && in_flight_ == 0;
}

bool MicroBatcher::front_cohort_full_locked() const {
  const auto it = cohort_counts_.find(queue_.front().model.get());
  return it != cohort_counts_.end() && it->second >= opts_.max_batch;
}

bool MicroBatcher::any_cohort_full_locked() const {
  for (const auto& [model, count] : cohort_counts_) {
    if (count >= opts_.max_batch) return true;
  }
  return false;
}

const LoadedModel* MicroBatcher::fair_cohort_locked() const {
  // Least normalised service among tenants with queued work. The queue is
  // non-empty here, so at least one queued tenant exists.
  double best = std::numeric_limits<double>::infinity();
  for (const auto& [name, st] : tenants_) {
    if (st.queued == 0) continue;
    best = std::min(best, st.service / weight_of(name));
  }
  // The chosen tenant's frontmost request names the model version to flush
  // (a tenant can span two versions across a reload; the older one queued
  // first). Ties across tenants resolve FIFO: first match from the front.
  for (const BatchRequest& r : queue_) {
    const auto it = tenants_.find(r.model->name);
    if (it != tenants_.end() &&
        it->second.service / weight_of(r.model->name) <= best) {
      return r.model.get();
    }
  }
  return queue_.front().model.get();  // unreachable fallback
}

double MicroBatcher::weight_of(const std::string& name) const {
  const auto it = opts_.weights.find(name);
  const double w = it == opts_.weights.end() ? 1.0 : it->second;
  return w > 0.0 ? w : 1.0;
}

void MicroBatcher::cohort_release_locked(const LoadedModel* m) {
  const auto it = cohort_counts_.find(m);
  if (it == cohort_counts_.end()) return;
  if (--it->second <= 0) cohort_counts_.erase(it);
}

void MicroBatcher::stop() {
  std::deque<BatchRequest> drained;
  {
    std::lock_guard<std::mutex> lk(mu_);
    stopped_ = true;
    drained.swap(queue_);
    cohort_counts_.clear();
    tenants_.clear();
  }
  cv_.notify_all();
  for (BatchRequest& req : drained) {
    req.done.set_value(PredictResult{Status::kShuttingDown, 0.0, 0.0});
  }
}

std::size_t MicroBatcher::depth() const {
  std::lock_guard<std::mutex> lk(mu_);
  return queue_.size();
}

}  // namespace ls::serve
