#include "serve/batcher.hpp"

#include <algorithm>
#include <utility>

namespace ls::serve {

namespace {

std::future<PredictResult> ready_future(Status s) {
  std::promise<PredictResult> p;
  p.set_value(PredictResult{s, 0.0, 0.0});
  return p.get_future();
}

}  // namespace

MicroBatcher::MicroBatcher(BatcherOptions opts) : opts_(opts) {
  opts_.max_batch = std::max<index_t>(1, opts_.max_batch);
  opts_.max_queue = std::max<std::size_t>(1, opts_.max_queue);
}

std::optional<std::future<PredictResult>> MicroBatcher::submit(
    std::shared_ptr<const LoadedModel> model, SparseVector x,
    double deadline_ms) {
  BatchRequest req;
  req.model = std::move(model);
  req.x = std::move(x);
  req.deadline_ms = deadline_ms;
  req.enqueued = std::chrono::steady_clock::now();
  std::future<PredictResult> fut = req.done.get_future();
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (stopped_) return ready_future(Status::kShuttingDown);
    if (queue_.size() >= opts_.max_queue) return std::nullopt;
    const LoadedModel* key = req.model.get();
    queue_.push_back(std::move(req));
    ++cohort_counts_[key];
  }
  cv_.notify_one();
  return fut;
}

bool MicroBatcher::next_batch(std::vector<BatchRequest>& out) {
  out.clear();
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    cv_.wait(lk, [&] { return stopped_ || !queue_.empty(); });
    if (stopped_) return false;

    // A batch is open: it flushes when the same-model cohort at the front
    // is full, or when its oldest member has waited out the deadline.
    // Greedy mode (deadline 0) takes whatever is pending right away —
    // under load, batches still form while the workers are busy scoring.
    if (opts_.deadline_ms > 0) {
      const auto flush_at =
          queue_.front().enqueued +
          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              std::chrono::duration<double, std::milli>(opts_.deadline_ms));
      // The "full" test must be cohort-aware: a flush only ever takes the
      // front request's model, so a queue full of interleaved models is
      // not a full batch — counting raw queue depth here used to flush a
      // tiny cohort the moment mixed traffic crossed max_batch. A queue at
      // the admission limit still flushes (shedding at the door while
      // waiting out a deadline would be worse than a partial batch).
      const bool full_or_stopped = cv_.wait_until(lk, flush_at, [&] {
        return stopped_ || queue_.empty() || front_cohort_full_locked() ||
               queue_.size() >= opts_.max_queue;
      });
      if (stopped_) return false;
      if (queue_.empty()) continue;  // another worker drained the queue
      (void)full_or_stopped;  // timeout = deadline flush, equally valid
    }

    // Extract the front request's model cohort, preserving arrival order.
    const LoadedModel* cohort = queue_.front().model.get();
    std::deque<BatchRequest> rest;
    while (!queue_.empty() &&
           static_cast<index_t>(out.size()) < opts_.max_batch) {
      if (queue_.front().model.get() == cohort) {
        // Leaving the queue for good: release its per-model count. The
        // skipped other-model requests are re-prepended below and keep
        // theirs.
        cohort_release_locked(cohort);
        out.push_back(std::move(queue_.front()));
      } else {
        rest.push_back(std::move(queue_.front()));
      }
      queue_.pop_front();
    }
    // Re-prepend the skipped other-model requests in their original order.
    for (auto it = rest.rbegin(); it != rest.rend(); ++it) {
      queue_.push_front(std::move(*it));
    }
    if (!queue_.empty()) {
      // Leftover work (other models, or overflow past max_batch): hand it
      // to another worker instead of waiting for the next submit.
      cv_.notify_one();
    }
    // Claim the in-flight slot before the lock drops: from here until
    // batch_done() the batcher is not quiesced, with no gap in between.
    ++in_flight_;
    return true;
  }
}

void MicroBatcher::batch_done() {
  std::lock_guard<std::mutex> lk(mu_);
  --in_flight_;
}

bool MicroBatcher::quiesced() const {
  std::lock_guard<std::mutex> lk(mu_);
  return queue_.empty() && in_flight_ == 0;
}

bool MicroBatcher::front_cohort_full_locked() const {
  const auto it = cohort_counts_.find(queue_.front().model.get());
  return it != cohort_counts_.end() && it->second >= opts_.max_batch;
}

void MicroBatcher::cohort_release_locked(const LoadedModel* m) {
  const auto it = cohort_counts_.find(m);
  if (it == cohort_counts_.end()) return;
  if (--it->second <= 0) cohort_counts_.erase(it);
}

void MicroBatcher::stop() {
  std::deque<BatchRequest> drained;
  {
    std::lock_guard<std::mutex> lk(mu_);
    stopped_ = true;
    drained.swap(queue_);
    cohort_counts_.clear();
  }
  cv_.notify_all();
  for (BatchRequest& req : drained) {
    req.done.set_value(PredictResult{Status::kShuttingDown, 0.0, 0.0});
  }
}

std::size_t MicroBatcher::depth() const {
  std::lock_guard<std::mutex> lk(mu_);
  return queue_.size();
}

}  // namespace ls::serve
