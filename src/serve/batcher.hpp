// Adaptive micro-batcher: the bounded request queue of the serving engine.
//
// Concurrent predict requests are coalesced into batches that the worker
// pool scores with one multiply_dense_batch stream instead of one SMSV per
// request. Flush policy (the batcher state machine, DESIGN.md §12):
//
//   empty   --submit-->  filling
//   filling --pending >= max_batch--------------->  flush (full)
//   filling --oldest pending older than deadline-->  flush (deadline)
//   filling --deadline == 0----------------------->  flush (greedy: take
//                                                    whatever is pending)
//
// A flush extracts the longest same-model prefix cohort (batches never mix
// models — they share one BatchPredictor call), up to max_batch requests.
// Admission control happens at submit(): when the queue already holds
// max_queue requests the submission is rejected immediately — shedding at
// the door is cheaper than timing out after queueing (the PR 1 degradation
// philosophy applied to traffic).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "formats/sparse_vector.hpp"
#include "serve/protocol.hpp"
#include "serve/registry.hpp"

namespace ls::serve {

/// One queued request: the model version pinned at submit time, the
/// request vector, the client's remaining latency budget (0 = none) and
/// the promise the worker fulfills.
struct BatchRequest {
  std::shared_ptr<const LoadedModel> model;
  SparseVector x;
  double deadline_ms = 0.0;
  std::chrono::steady_clock::time_point enqueued;
  std::promise<PredictResult> done;
};

/// Batcher configuration.
struct BatcherOptions {
  /// Requests per flush; also the SMSV batch width (clamped to
  /// [1, kMaxSmsvBatch] by the engine).
  index_t max_batch = 64;
  /// Maximum time a pending request waits for its batch to fill before a
  /// partial flush. 0 = greedy: flush whatever is pending as soon as a
  /// worker is free (batches still form naturally while workers are busy).
  double deadline_ms = 2.0;
  /// Admission limit: submissions beyond this queue depth are shed.
  std::size_t max_queue = 1024;
  /// Per-tenant admission quota: a model name with this many requests
  /// already queued has further submissions shed (kOverloaded) even while
  /// the shared queue has room — one tenant's burst cannot monopolise the
  /// queue. 0 = no per-tenant limit (default).
  std::size_t max_per_model = 0;
  /// Weighted-fair extraction (DESIGN.md §17): instead of always flushing
  /// the front request's cohort, pick the queued tenant with the least
  /// normalised service (service / weight, start-time virtual clock), so a
  /// flooding tenant cannot starve a trickling one. Off by default — the
  /// plain FIFO cohort policy has lower jitter for cooperating tenants.
  bool fair = false;
  /// Tenant weights for fair mode, keyed by model name; absent = 1.0.
  /// A tenant with weight 2 receives twice the service share of weight 1.
  std::unordered_map<std::string, double> weights;
};

/// Why submit() rejected a request (reported via its out-parameter so the
/// engine can count queue sheds and quota sheds separately).
enum class SubmitReject : std::uint8_t {
  kNone = 0,
  kQueueFull = 1,
  kModelQuota = 2,
};

/// Bounded, deadline-flushed request queue (thread-safe).
class MicroBatcher {
 public:
  explicit MicroBatcher(BatcherOptions opts);

  /// Enqueues a request and returns the future its worker will fulfill, or
  /// std::nullopt when the queue is full or the model's tenant quota is
  /// exhausted (admission control; the caller maps that to
  /// Status::kOverloaded, with the reject kind reported through `reject`
  /// when non-null). After stop() the returned future is already satisfied
  /// with kShuttingDown.
  std::optional<std::future<PredictResult>> submit(
      std::shared_ptr<const LoadedModel> model, SparseVector x,
      double deadline_ms = 0.0, SubmitReject* reject = nullptr);

  /// Blocks until a batch is ready under the flush policy, then moves it
  /// into `out` (previous contents discarded). Returns false when the
  /// batcher was stopped and the queue fully drained — the worker's exit
  /// signal. A successful extraction claims one in-flight batch *under the
  /// queue lock*, so there is no instant at which a batch has left the
  /// queue but is not yet accounted for — the drain predicate
  /// (quiesced()) can never observe "empty and idle" while a batch is
  /// about to be scored. The worker releases the claim with batch_done().
  bool next_batch(std::vector<BatchRequest>& out);

  /// Releases the in-flight claim of one extracted batch once its every
  /// request has been answered.
  void batch_done();

  /// True when no request is queued and no extracted batch is still being
  /// scored — evaluated under one lock, so it is an atomic statement about
  /// both conditions (the engine's drain predicate).
  bool quiesced() const;

  /// Fails every queued request with kShuttingDown and wakes all waiting
  /// workers, whose next_batch() calls then return false. Idempotent;
  /// submissions after stop() are rejected with kShuttingDown.
  void stop();

  /// Current queue depth (requests admitted but not yet extracted).
  std::size_t depth() const;

  const BatcherOptions& options() const { return opts_; }

 private:
  /// True when the front request's model has a full cohort queued (the
  /// only thing a flush can actually take). One hash lookup against the
  /// incrementally maintained per-model counts — this runs inside the
  /// deadline-mode cv_ wait predicate on every submit notification, so it
  /// must not scan the queue (an O(queue) scan there goes quadratic under
  /// deep mixed-model queues). mu_ held.
  bool front_cohort_full_locked() const;
  /// Fair-mode flush test: true when ANY queued cohort is full — fair
  /// extraction may take a cohort other than the front's, so the front-only
  /// test would sleep through a full cohort further back. O(#distinct
  /// queued model versions), which tenancy keeps small. mu_ held.
  bool any_cohort_full_locked() const;
  /// Fair-mode cohort choice: the model of the frontmost queued request
  /// belonging to the tenant with minimal normalised service. mu_ held.
  const LoadedModel* fair_cohort_locked() const;
  /// Drops one queued-request count for `m`, erasing the entry at zero so
  /// the map tracks only models currently queued. mu_ held.
  void cohort_release_locked(const LoadedModel* m);
  /// Tenant weight (1.0 unless configured).
  double weight_of(const std::string& name) const;

  BatcherOptions opts_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<BatchRequest> queue_;
  /// Queued (not yet extracted) requests per model identity — maintained
  /// on every push/pop so the flush predicate is O(1). Invariant: for
  /// every model pointer, cohort_counts_[m] == number of queue_ entries
  /// whose request pins m, and absent means zero (mu_).
  std::unordered_map<const LoadedModel*, index_t> cohort_counts_;
  /// Per-tenant accounting, keyed by model *name* (a tenant spans versions
  /// across reloads). `queued` backs the admission quota; `service` is the
  /// weighted-fair virtual clock: it advances by batch_size / weight on
  /// every extraction, and a tenant going from idle to active starts at the
  /// current virtual time (start-time fairness — an idle tenant banks no
  /// credit). Entries are erased at queued == 0, so the map only holds
  /// active tenants (mu_).
  struct TenantState {
    double service = 0.0;
    std::size_t queued = 0;
  };
  std::unordered_map<std::string, TenantState> tenants_;
  /// Normalised service of the most recently served tenant (mu_).
  double virtual_time_ = 0.0;
  /// Batches extracted by next_batch() but not yet batch_done() (mu_).
  int in_flight_ = 0;
  bool stopped_ = false;
};

}  // namespace ls::serve
