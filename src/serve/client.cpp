#include "serve/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "common/error.hpp"
#include "common/metrics.hpp"

namespace ls::serve {

namespace {

double elapsed_ms(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

ServeClient ServeClient::connect_unix(const std::string& path,
                                      ClientOptions opts) {
  Endpoint ep;
  ep.unix_path = path;
  ServeClient c(std::move(ep), opts);
  c.ensure_connected();
  return c;
}

ServeClient ServeClient::connect_tcp(int port, ClientOptions opts) {
  Endpoint ep;
  ep.tcp_port = port;
  ServeClient c(std::move(ep), opts);
  c.ensure_connected();
  return c;
}

ServeClient::ServeClient(Endpoint ep, ClientOptions opts)
    : ep_(std::move(ep)), opts_(opts) {
  rng_state_ = opts_.jitter_seed ? opts_.jitter_seed : 1;
}

ServeClient::ServeClient(ServeClient&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      ep_(std::move(other.ep_)),
      opts_(other.opts_),
      rng_state_(other.rng_state_),
      retries_(other.retries_) {}

ServeClient& ServeClient::operator=(ServeClient&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    ep_ = std::move(other.ep_);
    opts_ = other.opts_;
    rng_state_ = other.rng_state_;
    retries_ = other.retries_;
  }
  return *this;
}

ServeClient::~ServeClient() { close(); }

void ServeClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

int ServeClient::open_socket() {
  int fd = -1;
  sockaddr_un ua{};
  sockaddr_in ta{};
  const sockaddr* addr = nullptr;
  socklen_t addr_len = 0;
  std::string where;
  if (!ep_.unix_path.empty()) {
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    LS_CHECK(fd >= 0,
             "serve client: socket() failed: " << std::strerror(errno));
    ua.sun_family = AF_UNIX;
    if (ep_.unix_path.size() >= sizeof(ua.sun_path)) {
      ::close(fd);
      throw Error("unix socket path too long: " + ep_.unix_path);
    }
    std::strncpy(ua.sun_path, ep_.unix_path.c_str(),
                 sizeof(ua.sun_path) - 1);
    addr = reinterpret_cast<const sockaddr*>(&ua);
    addr_len = sizeof(ua);
    where = ep_.unix_path;
  } else {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    LS_CHECK(fd >= 0,
             "serve client: socket() failed: " << std::strerror(errno));
    ta.sin_family = AF_INET;
    ta.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    ta.sin_port = htons(static_cast<std::uint16_t>(ep_.tcp_port));
    addr = reinterpret_cast<const sockaddr*>(&ta);
    addr_len = sizeof(ta);
    where = "127.0.0.1:" + std::to_string(ep_.tcp_port);
  }

  try {
    // Nonblocking connect + poll: a dead or unreachable endpoint costs at
    // most connect_timeout_ms, never the kernel's multi-minute default.
    make_nonblocking(fd);
    if (::connect(fd, addr, addr_len) != 0) {
      const int err = errno;
      // EINTR on a nonblocking connect leaves it proceeding in the
      // background, exactly like EINPROGRESS.
      if (err != EINPROGRESS && err != EINTR) {
        throw IoError(IoErrorKind::kSys, "serve client: connect(" + where +
                                             ") failed: " +
                                             std::strerror(err));
      }
      if (!wait_fd_ready(fd, POLLOUT, opts_.connect_timeout_ms)) {
        throw IoError(IoErrorKind::kTimeout,
                      "serve client: connect(" + where + ") timed out");
      }
      int soerr = 0;
      socklen_t slen = sizeof(soerr);
      if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &soerr, &slen) != 0) {
        soerr = errno;
      }
      if (soerr != 0) {
        throw IoError(IoErrorKind::kSys, "serve client: connect(" + where +
                                             ") failed: " +
                                             std::strerror(soerr));
      }
    }
  } catch (...) {
    ::close(fd);
    throw;
  }
  return fd;
}

void ServeClient::ensure_connected() {
  if (fd_ < 0) fd_ = open_socket();
}

double ServeClient::jitter() {
  // xorshift64: cheap, deterministic per seed, plenty for backoff jitter.
  std::uint64_t s = rng_state_;
  s ^= s << 13;
  s ^= s >> 7;
  s ^= s << 17;
  rng_state_ = s;
  return static_cast<double>(s >> 11) * (1.0 / 9007199254740992.0);
}

void ServeClient::note_retry() {
  ++retries_;
  metrics::counter_add("serve.client.retries_total");
}

void ServeClient::backoff_sleep(int attempt) {
  double pause = opts_.backoff_base_ms;
  for (int k = 0; k < attempt && pause < opts_.backoff_max_ms; ++k) {
    pause *= 2.0;
  }
  pause = std::min(pause, opts_.backoff_max_ms);
  // Jitter in [0.5, 1.0): concurrent clients retrying after one server
  // event must not resynchronise into a thundering herd.
  pause *= 0.5 + 0.5 * jitter();
  if (pause > 0) {
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(pause));
  }
}

Frame ServeClient::round_trip_once(MsgType type, std::string_view payload,
                                   MsgType expected) {
  LS_CHECK(fd_ >= 0, "serve client: not connected");
  const auto t0 = std::chrono::steady_clock::now();
  const double budget = opts_.request_timeout_ms;
  FrameTimeouts send;
  send.write_ms = budget;
  write_frame(fd_, type, payload, send);
  FrameTimeouts recv;
  if (budget > 0) {
    // Whatever the send left of the budget bounds the wait for the reply.
    const double rem = std::max(budget - elapsed_ms(t0), 1.0);
    recv.read_ms = rem;
    recv.idle_ms = rem;
  }
  Frame reply;
  if (!read_frame(fd_, reply, recv)) {
    throw IoError(IoErrorKind::kClosed,
                  "serve client: server closed the connection");
  }
  LS_CHECK(reply.type == expected,
           "serve client: expected message type "
               << static_cast<int>(expected) << ", got "
               << static_cast<int>(reply.type));
  return reply;
}

Frame ServeClient::round_trip_retry(MsgType type, std::string_view payload,
                                    MsgType expected) {
  for (int attempt = 0;; ++attempt) {
    try {
      ensure_connected();
      return round_trip_once(type, payload, expected);
    } catch (const IoError&) {
      // Transient by definition (timeout / torn / closed / reset): the
      // connection state is unknown, so drop it and redo the whole
      // exchange on a fresh one. Decode errors propagate — never retried.
      close();
      if (attempt >= opts_.max_retries) throw;
      note_retry();
      backoff_sleep(attempt);
    }
  }
}

PredictResult ServeClient::predict(std::string_view model,
                                   const SparseVector& x) {
  // The request deadline travels in the header: the server sheds the work
  // when the budget expires in its queue instead of scoring it for a
  // caller that has already timed out.
  const std::string payload =
      encode_predict_request(model, x, opts_.request_timeout_ms);
  for (int attempt = 0;; ++attempt) {
    try {
      ensure_connected();
      const Frame reply =
          round_trip_once(MsgType::kPredictReq, payload, MsgType::kPredictResp);
      const PredictResult r = decode_predict_response(reply.payload);
      if (r.status == Status::kShuttingDown && attempt < opts_.max_retries) {
        // Draining or restarting server: its successor (same endpoint)
        // will take the request. Predict is idempotent, so resending is
        // safe.
        close();
        note_retry();
        backoff_sleep(attempt);
        continue;
      }
      return r;
    } catch (const IoError&) {
      close();
      if (attempt >= opts_.max_retries) throw;
      note_retry();
      backoff_sleep(attempt);
    }
  }
}

Status ServeClient::reload(std::string_view model, std::string* message) {
  ensure_connected();
  const Frame reply = round_trip_once(MsgType::kReloadReq,
                                      encode_reload_request(model),
                                      MsgType::kStatusResp);
  Status status = Status::kInternal;
  std::string text;
  decode_status_response(reply.payload, status, text);
  if (message) *message = std::move(text);
  return status;
}

std::string ServeClient::stats() {
  const Frame reply =
      round_trip_retry(MsgType::kStatsReq, "", MsgType::kStatusResp);
  Status status = Status::kInternal;
  std::string text;
  decode_status_response(reply.payload, status, text);
  LS_CHECK(status == Status::kOk, "serve client: stats returned "
                                      << status_name(status));
  return text;
}

std::string ServeClient::models() {
  const Frame reply =
      round_trip_retry(MsgType::kModelsReq, "", MsgType::kStatusResp);
  Status status = Status::kInternal;
  std::string text;
  decode_status_response(reply.payload, status, text);
  LS_CHECK(status == Status::kOk, "serve client: models returned "
                                      << status_name(status));
  return text;
}

Status ServeClient::ingest(std::string_view model, std::int64_t example_id,
                           real_t label, const SparseVector& x,
                           std::string* message) {
  const std::string payload = encode_ingest_request(model, example_id, label, x);
  // A negative id opts out of trainer-side dedup, so resending could
  // double-count the example — one shot only, exactly the pre-v4 contract.
  if (example_id < 0) {
    ensure_connected();
    const Frame reply =
        round_trip_once(MsgType::kIngestReq, payload, MsgType::kStatusResp);
    Status status = Status::kInternal;
    std::string text;
    decode_status_response(reply.payload, status, text);
    if (message) *message = std::move(text);
    return status;
  }
  // Dedup id supplied: the trainer recognises a resend (even across its own
  // restart, via the replayed journal), so ingest retries exactly like
  // predict — including through a draining/restarting trainer.
  for (int attempt = 0;; ++attempt) {
    try {
      ensure_connected();
      const Frame reply =
          round_trip_once(MsgType::kIngestReq, payload, MsgType::kStatusResp);
      Status status = Status::kInternal;
      std::string text;
      decode_status_response(reply.payload, status, text);
      if (status == Status::kShuttingDown && attempt < opts_.max_retries) {
        close();
        note_retry();
        backoff_sleep(attempt);
        continue;
      }
      if (message) *message = std::move(text);
      return status;
    } catch (const IoError&) {
      close();
      if (attempt >= opts_.max_retries) throw;
      note_retry();
      backoff_sleep(attempt);
    }
  }
}

std::string ServeClient::health() {
  const Frame reply =
      round_trip_retry(MsgType::kHealthReq, "", MsgType::kStatusResp);
  Status status = Status::kInternal;
  std::string text;
  decode_status_response(reply.payload, status, text);
  LS_CHECK(status == Status::kOk, "serve client: health returned "
                                      << status_name(status));
  return text;
}

bool ServeClient::ping() {
  const Frame reply =
      round_trip_retry(MsgType::kPingReq, "", MsgType::kStatusResp);
  Status status = Status::kInternal;
  std::string text;
  decode_status_response(reply.payload, status, text);
  return status == Status::kOk && text == "pong";
}

Frame ServeClient::forward(MsgType type, std::string_view payload,
                           MsgType expected) {
  ensure_connected();
  try {
    return round_trip_once(type, payload, expected);
  } catch (const IoError&) {
    // The connection state is unknown; the caller decides where (and
    // whether) to resend, so only the teardown happens here.
    close();
    throw;
  }
}

Status ServeClient::shutdown_server() {
  ensure_connected();
  const Frame reply = round_trip_once(MsgType::kShutdownReq, "",
                                      MsgType::kStatusResp);
  Status status = Status::kInternal;
  std::string text;
  decode_status_response(reply.payload, status, text);
  return status;
}

}  // namespace ls::serve
