#include "serve/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/error.hpp"

namespace ls::serve {

ServeClient ServeClient::connect_unix(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  LS_CHECK(fd >= 0, "serve client: socket() failed: " << std::strerror(errno));
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  LS_CHECK(path.size() < sizeof(addr.sun_path),
           "unix socket path too long: " << path);
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd);
    throw Error("serve client: connect(" + path +
                ") failed: " + std::strerror(err));
  }
  return ServeClient(fd);
}

ServeClient ServeClient::connect_tcp(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  LS_CHECK(fd >= 0, "serve client: socket() failed: " << std::strerror(errno));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd);
    throw Error("serve client: connect(127.0.0.1:" + std::to_string(port) +
                ") failed: " + std::strerror(err));
  }
  return ServeClient(fd);
}

ServeClient::ServeClient(ServeClient&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)) {}

ServeClient& ServeClient::operator=(ServeClient&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

ServeClient::~ServeClient() { close(); }

void ServeClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Frame ServeClient::round_trip(MsgType type, std::string_view payload,
                              MsgType expected) {
  LS_CHECK(fd_ >= 0, "serve client: not connected");
  write_frame(fd_, type, payload);
  Frame reply;
  LS_CHECK(read_frame(fd_, reply),
           "serve client: server closed the connection");
  LS_CHECK(reply.type == expected,
           "serve client: expected message type "
               << static_cast<int>(expected) << ", got "
               << static_cast<int>(reply.type));
  return reply;
}

PredictResult ServeClient::predict(std::string_view model,
                                   const SparseVector& x) {
  const Frame reply = round_trip(MsgType::kPredictReq,
                                 encode_predict_request(model, x),
                                 MsgType::kPredictResp);
  return decode_predict_response(reply.payload);
}

Status ServeClient::reload(std::string_view model, std::string* message) {
  const Frame reply = round_trip(MsgType::kReloadReq,
                                 encode_reload_request(model),
                                 MsgType::kStatusResp);
  Status status = Status::kInternal;
  std::string text;
  decode_status_response(reply.payload, status, text);
  if (message) *message = std::move(text);
  return status;
}

std::string ServeClient::stats() {
  const Frame reply = round_trip(MsgType::kStatsReq, "", MsgType::kStatusResp);
  Status status = Status::kInternal;
  std::string text;
  decode_status_response(reply.payload, status, text);
  LS_CHECK(status == Status::kOk, "serve client: stats returned "
                                      << status_name(status));
  return text;
}

bool ServeClient::ping() {
  const Frame reply = round_trip(MsgType::kPingReq, "", MsgType::kStatusResp);
  Status status = Status::kInternal;
  std::string text;
  decode_status_response(reply.payload, status, text);
  return status == Status::kOk && text == "pong";
}

Status ServeClient::shutdown_server() {
  const Frame reply = round_trip(MsgType::kShutdownReq, "",
                                 MsgType::kStatusResp);
  Status status = Status::kInternal;
  std::string text;
  decode_status_response(reply.payload, status, text);
  return status;
}

}  // namespace ls::serve
