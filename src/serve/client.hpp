// Blocking client for the serving protocol — the library behind
// examples/serve_client, the load/chaos benches and the serve tests.
//
// One ServeClient owns one connection and issues one request at a time
// (the protocol is strict request/response per connection); concurrency
// comes from opening one client per thread, which is exactly how the
// closed-loop bench and the server's per-connection handlers pair up.
//
// Resilience model (ClientOptions):
//   - connect() is poll()-based and bounded by connect_timeout_ms;
//   - every request is bounded by request_timeout_ms end to end, and that
//     budget is propagated inside the predict request header so the server
//     can shed the work when it expires in the queue;
//   - idempotent verbs (predict / ping / stats / health, and ingest when
//     the caller supplies a dedup id) are retried up to
//     max_retries times on transient failures — any IoError (timeout, torn
//     frame, closed or reset connection) and kShuttingDown predict
//     responses — with exponential backoff plus jitter, reconnecting to
//     the stored endpoint each attempt. Payload decode errors are never
//     retried: a malformed reply is a bug, not weather.
//   - reload and shutdown_server never retry (not idempotent from the
//     operator's point of view).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "serve/protocol.hpp"

namespace ls::serve {

/// Client-side resilience knobs. The defaults keep the old behaviour for
/// existing callers: no retries, no request deadline.
struct ClientOptions {
  /// Budget for establishing one connection (0 = unbounded).
  double connect_timeout_ms = 5000.0;
  /// End-to-end budget for one request attempt: send + server + receive.
  /// Also propagated in the predict header as the server-side deadline.
  /// 0 = unbounded.
  double request_timeout_ms = 0.0;
  /// Additional attempts after the first for idempotent verbs.
  int max_retries = 0;
  /// First backoff pause; attempt k sleeps ~ base * 2^k, capped below.
  double backoff_base_ms = 10.0;
  double backoff_max_ms = 500.0;
  /// Seed of the per-client jitter stream (deterministic for tests; give
  /// each bench thread its own seed to decorrelate retry storms).
  std::uint64_t jitter_seed = 0x5EEDBEEFCAFEF00DULL;
};

/// Connected protocol client. Methods throw IoError (an ls::Error with a
/// transient-failure kind) on connection-level failures once retries are
/// exhausted; application-level failures come back as Status codes.
class ServeClient {
 public:
  /// Connects to a Unix-domain socket path.
  static ServeClient connect_unix(const std::string& path,
                                  ClientOptions opts = {});

  /// Connects to a loopback TCP port.
  static ServeClient connect_tcp(int port, ClientOptions opts = {});

  ServeClient(ServeClient&& other) noexcept;
  ServeClient& operator=(ServeClient&& other) noexcept;
  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;
  ~ServeClient();

  /// Scores one sparse sample against a hosted model. Retries transient
  /// failures (including a draining/restarting server answering
  /// kShuttingDown) up to max_retries times — safe because predict is
  /// idempotent.
  PredictResult predict(std::string_view model, const SparseVector& x);

  /// Asks the server to hot-reload `model` from its source path.
  /// Returns the server's status and human-readable message. Never
  /// retried.
  Status reload(std::string_view model, std::string* message = nullptr);

  /// Fetches the engine + socket-layer stats block (retried).
  std::string stats();

  /// Fetches the per-model inventory block — one line per hosted model
  /// with name, version, content generation and active layout (retried).
  std::string models();

  /// Streams one labeled example into a trainer daemon's sliding window.
  /// Returns the trainer's status. `example_id` is the client-chosen
  /// identity the trainer dedups on: with a non-negative id the call is
  /// idempotent and retried like every other verb (including across a
  /// trainer restart — the journal-backed dedup set survives it). Pass a
  /// negative id to opt out of dedup; such sends are never retried, since
  /// a duplicated append would silently skew the training window.
  Status ingest(std::string_view model, std::int64_t example_id, real_t label,
                const SparseVector& x, std::string* message = nullptr);

  /// Lifecycle probe: "live" / "ready" / "draining" / "degraded"
  /// (retried).
  std::string health();

  /// Round-trip liveness check (retried).
  bool ping();

  /// Requests a server shutdown; returns the acknowledged status. Never
  /// retried.
  Status shutdown_server();

  /// Proxy pass-through: one request/response exchange with an
  /// already-encoded payload, no retries and no payload interpretation.
  /// The router tier forwards predict payloads verbatim through this and
  /// owns its own failover policy (next ring replica, not resend-here).
  /// Throws IoError on transport failure.
  Frame forward(MsgType type, std::string_view payload, MsgType expected);

  void close();
  bool connected() const { return fd_ >= 0; }

  /// Retries performed over this client's lifetime (reconnect + resend).
  std::int64_t retries_observed() const { return retries_; }

  const ClientOptions& options() const { return opts_; }

 private:
  /// Reconnect target: exactly one of the two fields is set.
  struct Endpoint {
    std::string unix_path;
    int tcp_port = -1;
  };

  ServeClient(Endpoint ep, ClientOptions opts);

  /// Opens, connects (nonblocking + poll, bounded by connect_timeout_ms)
  /// and returns a fresh socket to the stored endpoint.
  int open_socket();
  /// Reconnects if the previous attempt closed the connection.
  void ensure_connected();
  /// One request/response exchange under request_timeout_ms. Throws
  /// IoError on any transport failure (no retry at this level).
  Frame round_trip_once(MsgType type, std::string_view payload,
                        MsgType expected);
  /// round_trip_once with the retry/backoff/reconnect loop — only for
  /// idempotent verbs.
  Frame round_trip_retry(MsgType type, std::string_view payload,
                         MsgType expected);
  void note_retry();
  void backoff_sleep(int attempt);
  /// Uniform [0,1) from the deterministic per-client jitter stream.
  double jitter();

  int fd_ = -1;
  Endpoint ep_;
  ClientOptions opts_;
  std::uint64_t rng_state_ = 1;
  std::int64_t retries_ = 0;
};

}  // namespace ls::serve
