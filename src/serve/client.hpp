// Blocking client for the serving protocol — the library behind
// examples/serve_client, the load bench and the serve tests.
//
// One ServeClient owns one connection and issues one request at a time
// (the protocol is strict request/response per connection); concurrency
// comes from opening one client per thread, which is exactly how the
// closed-loop bench and the server's per-connection handlers pair up.
#pragma once

#include <string>
#include <string_view>

#include "serve/protocol.hpp"

namespace ls::serve {

/// Connected protocol client. Methods throw ls::Error on connection-level
/// failures; application-level failures come back as Status codes.
class ServeClient {
 public:
  /// Connects to a Unix-domain socket path.
  static ServeClient connect_unix(const std::string& path);

  /// Connects to a loopback TCP port.
  static ServeClient connect_tcp(int port);

  ServeClient(ServeClient&& other) noexcept;
  ServeClient& operator=(ServeClient&& other) noexcept;
  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;
  ~ServeClient();

  /// Scores one sparse sample against a hosted model.
  PredictResult predict(std::string_view model, const SparseVector& x);

  /// Asks the server to hot-reload `model` from its source path.
  /// Returns the server's status and human-readable message.
  Status reload(std::string_view model, std::string* message = nullptr);

  /// Fetches the engine's stats block.
  std::string stats();

  /// Round-trip liveness check.
  bool ping();

  /// Requests a server shutdown; returns the acknowledged status.
  Status shutdown_server();

  void close();
  bool connected() const { return fd_ >= 0; }

 private:
  explicit ServeClient(int fd) : fd_(fd) {}
  /// Sends one frame and reads the one response frame of expected type.
  Frame round_trip(MsgType type, std::string_view payload,
                   MsgType expected);

  int fd_ = -1;
};

}  // namespace ls::serve
