#include "serve/engine.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <sstream>
#include <utility>

#include "common/error.hpp"
#include "common/failpoint.hpp"
#include "common/metrics.hpp"
#include "formats/format.hpp"
#include "kernels/simd.hpp"

namespace ls::serve {

namespace {

PredictResult immediate(Status s) { return PredictResult{s, 0.0, 0.0}; }

std::future<PredictResult> ready_future(PredictResult r) {
  std::promise<PredictResult> p;
  p.set_value(r);
  return p.get_future();
}

double ms_since(std::chrono::steady_clock::time_point t0,
                std::chrono::steady_clock::time_point t1) {
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

}  // namespace

const char* engine_health_name(EngineHealth h) {
  switch (h) {
    case EngineHealth::kLive: return "live";
    case EngineHealth::kReady: return "ready";
    case EngineHealth::kDegraded: return "degraded";
  }
  return "?";
}

ServeEngine::ServeEngine(ServeOptions opts)
    : opts_(opts),
      predictor_batch_rows_(
          std::clamp<index_t>(opts.batcher.max_batch, 1, kMaxSmsvBatch)),
      batcher_(opts.batcher) {
  opts_.workers = std::max(1, opts_.workers);
  opts_.sched = tuned_for_deployment(opts_.sched, opts_.hint);
  metrics::annotate("serve.deployment_hint", deployment_hint_name(opts_.hint));
  if (opts_.reschedule.enabled) {
    rescheduler_ = std::make_unique<LayoutRescheduler>(
        registry_, predictor_batch_rows_, opts_.reschedule);
  }
}

ServeEngine::~ServeEngine() { stop(); }

void ServeEngine::start() {
  bool expected = false;
  if (!running_.compare_exchange_strong(expected, true)) return;
  workers_.reserve(static_cast<std::size_t>(opts_.workers));
  for (int w = 0; w < opts_.workers; ++w) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  if (rescheduler_) rescheduler_->start();
}

void ServeEngine::stop() {
  // Policy thread first: a layout swap concurrent with drain is harmless,
  // but there is no point re-materialising models nobody will query.
  if (rescheduler_) rescheduler_->stop();
  batcher_.stop();
  running_.store(false);
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
  workers_.clear();
}

void ServeEngine::load_model(const std::string& name,
                             const std::string& path) {
  LS_FAILPOINT("serve.load_model");
  const bool previous = registry_.get(name) != nullptr;
  // Reserve the version AND content generation BEFORE the expensive build:
  // concurrent reloads of the same name each get distinct, strictly
  // increasing numbers, so the snapshot-then-put race (two loads minting
  // the same version, or an older build clobbering a newer one) cannot
  // occur. The expensive part — deserialize + layout decision +
  // materialise — still happens off the registry lock; traffic keeps
  // hitting the previous version until the single-pointer swap below.
  const LoadTicket ticket = registry_.reserve_load(name);
  auto loaded = std::make_shared<LoadedModel>(name, path, opts_.sched,
                                              predictor_batch_rows_,
                                              ticket.version,
                                              ticket.content_gen);
  if (!registry_.put_if_newer(std::move(loaded))) {
    // A concurrent load that reserved a later content generation already
    // finished: its content is at least as fresh as ours, so losing this
    // race is a success from the caller's point of view — just account
    // for it. (A rescheduler re-layout of older content can NOT cause
    // this: put_if_newer re-mints our version past it and installs — new
    // on-disk content is never clobbered by a re-layout of old weights.)
    metrics::counter_add("serve.stale_loads_total");
  }
  {
    // A successful load clears any degraded flag a failed reload left.
    std::lock_guard<std::mutex> lk(degraded_mu_);
    degraded_.erase(name);
  }
  if (previous) {
    reloads_total_.fetch_add(1, std::memory_order_release);
    metrics::counter_add("serve.reloads_total");
  }
}

void ServeEngine::reload_model(const std::string& name) {
  const auto current = registry_.get(name);
  LS_CHECK(current != nullptr, "cannot reload unknown model '" << name << "'");
  try {
    load_model(name, current->source_path);
  } catch (const std::exception&) {
    // Last-good version keeps serving; report it through the health verb.
    reload_failures_total_.fetch_add(1, std::memory_order_release);
    metrics::counter_add("serve.reload_failures_total");
    {
      std::lock_guard<std::mutex> lk(degraded_mu_);
      degraded_.insert(name);
    }
    throw;
  }
}

bool ServeEngine::unload_model(const std::string& name) {
  return registry_.erase(name);
}

std::shared_ptr<const LoadedModel> ServeEngine::model(
    const std::string& name) const {
  return registry_.get(name);
}

std::vector<std::shared_ptr<const LoadedModel>> ServeEngine::models() const {
  return registry_.list();
}

std::future<PredictResult> ServeEngine::predict_async(const std::string& model,
                                                      SparseVector x,
                                                      double deadline_ms) {
  requests_total_.fetch_add(1, std::memory_order_release);
  metrics::counter_add("serve.requests_total");
  if (!running_.load(std::memory_order_acquire)) {
    return ready_future(immediate(Status::kShuttingDown));
  }
  auto loaded = registry_.get(model);
  if (!loaded) {
    unknown_model_total_.fetch_add(1, std::memory_order_release);
    metrics::counter_add("serve.unknown_model_total");
    return ready_future(immediate(Status::kUnknownModel));
  }
  // Dimension gate: a request vector wider than the model would scatter
  // out of bounds in the dense SMSV workspace. Reject it as a protocol
  // error instead of reading past the buffer.
  if (!loaded->model.accepts(x)) {
    bad_dimension_total_.fetch_add(1, std::memory_order_release);
    metrics::counter_add("serve.bad_dimension_total");
    return ready_future(immediate(Status::kBadDimension));
  }
  SubmitReject reject = SubmitReject::kNone;
  auto fut =
      batcher_.submit(std::move(loaded), std::move(x), deadline_ms, &reject);
  if (!fut) {
    metrics::counter_add("serve.shed_total");
    if (reject == SubmitReject::kModelQuota) {
      shed_quota_total_.fetch_add(1, std::memory_order_release);
      metrics::counter_add("serve.shed_quota_total");
    } else {
      shed_queue_total_.fetch_add(1, std::memory_order_release);
      metrics::counter_add("serve.shed_queue_total");
    }
    return ready_future(immediate(Status::kOverloaded));
  }
  return std::move(*fut);
}

PredictResult ServeEngine::predict(const std::string& model, SparseVector x,
                                   double deadline_ms) {
  return predict_async(model, std::move(x), deadline_ms).get();
}

bool ServeEngine::idle() const {
  // Queue emptiness and in-flight batches are judged under one lock — a
  // batch is claimed in-flight by next_batch() in the same critical
  // section that pops it, so there is no instant where a popped-but-not-
  // yet-counted batch makes the engine look idle.
  return batcher_.quiesced();
}

EngineHealth ServeEngine::health() const {
  {
    std::lock_guard<std::mutex> lk(degraded_mu_);
    if (!degraded_.empty()) return EngineHealth::kDegraded;
  }
  if (running_.load(std::memory_order_acquire) && registry_.size() > 0) {
    return EngineHealth::kReady;
  }
  return EngineHealth::kLive;
}

void ServeEngine::worker_loop() {
  std::vector<BatchRequest> batch;
  // next_batch() claims the batch in-flight under the batcher's lock;
  // batch_done() releases the claim once every promise is fulfilled.
  while (batcher_.next_batch(batch)) {
    score_batch(batch);
    batcher_.batch_done();
  }
}

void ServeEngine::score_batch(std::vector<BatchRequest>& batch) {
  const auto now = std::chrono::steady_clock::now();

  // Deadline + latency-budget shedding: a request whose propagated client
  // deadline already expired in the queue, or that overstayed the server's
  // own latency budget, is answered kOverloaded without spending compute
  // on it — the client has given up (or will before the reply lands).
  std::vector<BatchRequest*> live;
  live.reserve(batch.size());
  for (BatchRequest& req : batch) {
    const double waited_ms = ms_since(req.enqueued, now);
    if (req.deadline_ms > 0 && waited_ms > req.deadline_ms) {
      shed_expired_total_.fetch_add(1, std::memory_order_release);
      metrics::counter_add("serve.shed_total");
      metrics::counter_add("serve.shed_expired_total");
      req.done.set_value(immediate(Status::kOverloaded));
    } else if (opts_.latency_budget_ms > 0 &&
               waited_ms > opts_.latency_budget_ms) {
      shed_deadline_total_.fetch_add(1, std::memory_order_release);
      metrics::counter_add("serve.shed_total");
      metrics::counter_add("serve.shed_deadline_total");
      req.done.set_value(immediate(Status::kOverloaded));
    } else {
      live.push_back(&req);
    }
  }
  if (live.empty()) return;

  const LoadedModel& model = *live.front()->model;
  std::vector<SparseVector> rows;
  std::vector<real_t> values(live.size());
  rows.reserve(live.size());
  for (BatchRequest* req : live) rows.push_back(std::move(req->x));

  batches_total_.fetch_add(1, std::memory_order_release);
  batched_rows_total_.fetch_add(static_cast<std::int64_t>(live.size()),
                                std::memory_order_release);
  metrics::counter_add("serve.batches_total");
  metrics::counter_add("serve.batched_rows_total",
                       static_cast<std::int64_t>(live.size()));
  metrics::gauge_set("serve.batch_occupancy",
                     static_cast<double>(live.size()));
  metrics::gauge_set("serve.queue_depth",
                     static_cast<double>(batcher_.depth()));

  double compute_seconds = 0.0;
  try {
    LS_FAILPOINT("serve.batch.compute");
    const auto t0 = std::chrono::steady_clock::now();
    model.predictor.decision_values(rows, values);
    compute_seconds = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    metrics::timer_record("serve.batch_seconds", compute_seconds);
    if (metrics::enabled()) {
      metrics::timer_record(
          "serve.batch_seconds." + model.name + "." +
              std::string(format_name(model.predictor.layout())),
          compute_seconds);
    }
  } catch (const std::exception&) {
    // Scoring died (failpoint, OOM, ...): fail this batch, keep serving.
    for (BatchRequest* req : live) {
      internal_error_total_.fetch_add(1, std::memory_order_release);
      metrics::counter_add("serve.internal_error_total");
      req->done.set_value(immediate(Status::kInternal));
    }
    return;
  }

  // Telemetry for the online layout policy: this batch's rows took
  // compute_seconds in the model's current layout.
  if (rescheduler_) {
    rescheduler_->observe(model, static_cast<index_t>(live.size()),
                          compute_seconds);
  }

  const auto done = std::chrono::steady_clock::now();
  for (std::size_t k = 0; k < live.size(); ++k) {
    PredictResult r;
    r.status = Status::kOk;
    r.decision = values[k];
    r.label = values[k] >= 0 ? 1.0 : -1.0;
    ok_total_.fetch_add(1, std::memory_order_release);
    metrics::timer_record("serve.request_seconds",
                          ms_since(live[k]->enqueued, done) / 1e3);
    live[k]->done.set_value(r);
  }
}

ServeStats ServeEngine::stats() const {
  ServeStats s;
  // Outcome counters are read BEFORE requests_total: every outcome
  // increment happens after its request's requests_total increment, so
  // this order keeps `ok + shed + errors <= requests_total` true in any
  // snapshot taken while traffic is in flight (the reverse order can
  // observe outcomes of requests it has not counted yet).
  s.ok_total = ok_total_.load(std::memory_order_acquire);
  s.shed_queue_total = shed_queue_total_.load(std::memory_order_acquire);
  s.shed_quota_total = shed_quota_total_.load(std::memory_order_acquire);
  s.shed_deadline_total =
      shed_deadline_total_.load(std::memory_order_acquire);
  s.shed_expired_total = shed_expired_total_.load(std::memory_order_acquire);
  s.unknown_model_total =
      unknown_model_total_.load(std::memory_order_acquire);
  s.bad_dimension_total =
      bad_dimension_total_.load(std::memory_order_acquire);
  s.internal_error_total =
      internal_error_total_.load(std::memory_order_acquire);
  s.requests_total = requests_total_.load(std::memory_order_acquire);
  s.batches_total = batches_total_.load(std::memory_order_acquire);
  s.batched_rows_total = batched_rows_total_.load(std::memory_order_acquire);
  s.reloads_total = reloads_total_.load(std::memory_order_acquire);
  s.reload_failures_total =
      reload_failures_total_.load(std::memory_order_acquire);
  if (rescheduler_) {
    s.reschedules_total = rescheduler_->reschedules_total();
    s.reschedule_failures_total = rescheduler_->reschedule_failures_total();
  }
  {
    std::lock_guard<std::mutex> lk(degraded_mu_);
    s.degraded_models = degraded_.size();
  }
  s.queue_depth = batcher_.depth();
  s.models = registry_.size();
  return s;
}

std::string ServeEngine::stats_text() const {
  const ServeStats s = stats();
  std::ostringstream os;
  os << "requests_total " << s.requests_total << '\n'
     << "ok_total " << s.ok_total << '\n'
     << "shed_queue_total " << s.shed_queue_total << '\n'
     << "shed_quota_total " << s.shed_quota_total << '\n'
     << "shed_deadline_total " << s.shed_deadline_total << '\n'
     << "shed_expired_total " << s.shed_expired_total << '\n'
     << "unknown_model_total " << s.unknown_model_total << '\n'
     << "bad_dimension_total " << s.bad_dimension_total << '\n'
     << "internal_error_total " << s.internal_error_total << '\n'
     << "batches_total " << s.batches_total << '\n'
     << "batched_rows_total " << s.batched_rows_total << '\n'
     << "mean_batch_occupancy " << s.mean_batch_occupancy() << '\n'
     << "reloads_total " << s.reloads_total << '\n'
     << "reload_failures_total " << s.reload_failures_total << '\n'
     << "reschedules_total " << s.reschedules_total << '\n'
     << "reschedule_failures_total " << s.reschedule_failures_total << '\n'
     << "degraded_models " << s.degraded_models << '\n'
     << "health " << health_name() << '\n'
     << "queue_depth " << s.queue_depth << '\n'
     << "simd " << simd::level_name(simd::active_level()) << " width "
     << simd::kernels().width << '\n'
     << "simd_fallbacks_total " << simd::fallback_events() << '\n'
     << "models " << s.models << '\n';
  for (const auto& m : registry_.list()) {
    os << "model " << m->name << " version " << m->version << " format "
       << format_name(m->predictor.layout()) << " num_features "
       << m->model.num_features << " num_sv "
       << m->model.support_vectors.size() << '\n';
  }
  if (rescheduler_) {
    for (const ModelBanditStats& mb : rescheduler_->stats()) {
      os << "bandit " << mb.model << " current "
         << format_name(mb.current) << " switches " << mb.switches << '\n';
      for (const ArmStats& a : mb.arms) {
        os << "arm " << mb.model << ' ' << format_name(a.format)
           << " pulls " << a.pulls << " rows " << a.rows
           << " mean_row_seconds " << a.mean_row_seconds
           << " prior_row_seconds " << a.prior_row_seconds << '\n';
      }
    }
  }
  return os.str();
}

std::string ServeEngine::models_text() const {
  std::ostringstream os;
  for (const auto& m : registry_.list()) {
    os << "model " << m->name << " version " << m->version << " content_gen "
       << m->content_gen << " layout " << format_name(m->predictor.layout())
       << " num_features " << m->model.num_features << " num_sv "
       << m->model.support_vectors.size() << '\n';
  }
  return os.str();
}

}  // namespace ls::serve
