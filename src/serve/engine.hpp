// ServeEngine: the persistent in-process prediction-serving runtime.
//
// The one-shot CLI path pays the scheduler's layout decision and the
// support-vector materialisation on every invocation; the engine pays them
// once per model *load* and then amortises them over a long-lived request
// stream — the paper's runtime-scheduling argument applied to inference.
// Components:
//
//   ModelRegistry   N hosted models, layouts chosen at load time
//                   (latency- or throughput-optimized, sched hint)
//   MicroBatcher    bounded queue; coalesces concurrent requests
//   worker pool     scores batches via BatchPredictor's re-entrant
//                   span API (one multiply_dense_batch per flush)
//   admission ctl   queue-depth shedding at submit, latency-budget
//                   shedding at dequeue
//
// All statistics are atomics written with release and read with acquire,
// so stats() is a race-free snapshot while workers run (TSan-clean).
#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "sched/scheduler.hpp"
#include "serve/batcher.hpp"
#include "serve/protocol.hpp"
#include "serve/registry.hpp"
#include "serve/rescheduler.hpp"

namespace ls::serve {

/// Engine configuration.
struct ServeOptions {
  int workers = 2;                  ///< scoring threads
  BatcherOptions batcher;           ///< flush policy + admission limit
  /// Requests that already waited longer than this when a worker dequeues
  /// them are shed with kOverloaded instead of scored — compute spent on a
  /// request the client has given up on is pure waste. 0 disables.
  double latency_budget_ms = 0.0;
  /// Load-time layout decision shape (see sched::tuned_for_deployment).
  DeploymentHint hint = DeploymentHint::kThroughput;
  /// Base scheduler options; the hint tunes these at load time.
  SchedulerOptions sched;
  /// Online layout re-scheduling policy (off unless reschedule.enabled).
  ReschedulerOptions reschedule;
};

/// Engine-level health, surfaced through the protocol's health verb (the
/// server adds the "draining" state on top).
enum class EngineHealth {
  kLive,      ///< process up, but not serving (no models or not started)
  kReady,     ///< serving traffic
  kDegraded,  ///< serving, but the latest reload of >=1 model failed and
              ///< the last-good version is still live
};

/// Human-readable health-state name (the health verb's reply text).
const char* engine_health_name(EngineHealth h);

/// Race-free point-in-time statistics snapshot.
struct ServeStats {
  std::int64_t requests_total = 0;       ///< admitted + rejected
  std::int64_t ok_total = 0;             ///< scored successfully
  std::int64_t shed_queue_total = 0;     ///< rejected at submit (queue full)
  std::int64_t shed_quota_total = 0;     ///< rejected at submit (tenant quota)
  std::int64_t shed_deadline_total = 0;  ///< dropped at dequeue (stale)
  std::int64_t shed_expired_total = 0;   ///< client deadline already blown
  std::int64_t unknown_model_total = 0;
  std::int64_t bad_dimension_total = 0;
  std::int64_t internal_error_total = 0;
  std::int64_t batches_total = 0;
  std::int64_t batched_rows_total = 0;   ///< sum of batch occupancies
  std::int64_t reloads_total = 0;        ///< load_model calls that replaced
  std::int64_t reload_failures_total = 0;
  std::int64_t reschedules_total = 0;    ///< online layout swaps performed
  std::int64_t reschedule_failures_total = 0;
  std::size_t degraded_models = 0;       ///< models serving a stale version
  std::size_t queue_depth = 0;
  std::size_t models = 0;

  /// Mean requests per flush — the micro-batching payoff indicator.
  double mean_batch_occupancy() const {
    return batches_total > 0 ? static_cast<double>(batched_rows_total) /
                                   static_cast<double>(batches_total)
                             : 0.0;
  }
  std::int64_t shed_total() const {
    return shed_queue_total + shed_quota_total + shed_deadline_total +
           shed_expired_total;
  }
};

/// Persistent serving engine. start() spawns the worker pool; predict()
/// blocks the calling thread (one server connection handler each) until
/// its batch is scored. Thread-safe throughout.
class ServeEngine {
 public:
  explicit ServeEngine(ServeOptions opts = {});
  ~ServeEngine();

  ServeEngine(const ServeEngine&) = delete;
  ServeEngine& operator=(const ServeEngine&) = delete;

  /// Spawns the worker pool (idempotent).
  void start();

  /// Drains the queue (pending requests fail with kShuttingDown) and joins
  /// the workers. Idempotent; the destructor calls it.
  void stop();

  /// Loads (or hot-reloads) `name` from `path`: deserializes the
  /// CRC-verified model file, runs the load-time layout decision under the
  /// deployment hint, and atomically swaps the registry entry. In-flight
  /// requests keep the version they resolved at submit. Throws ls::Error
  /// on unreadable/corrupt files — the previously served version (if any)
  /// stays live, so a bad reload never takes a model down.
  void load_model(const std::string& name, const std::string& path);

  /// Reloads `name` from the path it was originally loaded from. On
  /// failure the previous version keeps serving and the model is flagged
  /// degraded (cleared by the next successful load).
  void reload_model(const std::string& name);

  /// Removes `name`; returns false when it was not hosted.
  bool unload_model(const std::string& name);

  /// Current version of a hosted model (nullptr when absent).
  std::shared_ptr<const LoadedModel> model(const std::string& name) const;

  /// Every hosted model, ordered by name.
  std::vector<std::shared_ptr<const LoadedModel>> models() const;

  /// Validates and enqueues one request; the future resolves when a worker
  /// scores its batch (or immediately for rejections — unknown model, bad
  /// dimension, shed, shutting down). Never throws on bad requests: the
  /// status codes are the error contract.
  /// `deadline_ms` is the client's remaining latency budget (propagated
  /// from the request header; 0 = none): a request still queued past it is
  /// shed with kOverloaded before any compute is spent on it.
  std::future<PredictResult> predict_async(const std::string& model,
                                           SparseVector x,
                                           double deadline_ms = 0.0);

  /// Blocking convenience wrapper around predict_async().
  PredictResult predict(const std::string& model, SparseVector x,
                        double deadline_ms = 0.0);

  /// True when no request is queued and no batch is being scored — the
  /// drain predicate of the socket server.
  bool idle() const;

  EngineHealth health() const;
  const char* health_name() const { return engine_health_name(health()); }

  ServeStats stats() const;

  /// Human-readable stats block (the kStatsReq reply).
  std::string stats_text() const;

  /// Per-model inventory block (the kModelsReq reply): one line per hosted
  /// model with its name, version, content generation and active layout —
  /// the fields scripts need to verify that a published reload actually
  /// landed (version moved) versus a re-layout (generation unchanged).
  std::string models_text() const;

  const ServeOptions& options() const { return opts_; }

  /// The online layout policy, or nullptr when opts.reschedule.enabled is
  /// false. Exposed so tests and tools can drive tick()/inspect stats().
  LayoutRescheduler* rescheduler() { return rescheduler_.get(); }
  const LayoutRescheduler* rescheduler() const { return rescheduler_.get(); }

 private:
  void worker_loop();
  void score_batch(std::vector<BatchRequest>& batch);

  ServeOptions opts_;
  index_t predictor_batch_rows_;  ///< SMSV width models are built with
  ModelRegistry registry_;
  MicroBatcher batcher_;
  std::unique_ptr<LayoutRescheduler> rescheduler_;  ///< null when disabled
  std::vector<std::thread> workers_;
  std::atomic<bool> running_{false};

  // Statistics: release on write, acquire on read (stats()).
  std::atomic<std::int64_t> requests_total_{0};
  std::atomic<std::int64_t> ok_total_{0};
  std::atomic<std::int64_t> shed_queue_total_{0};
  std::atomic<std::int64_t> shed_quota_total_{0};
  std::atomic<std::int64_t> shed_deadline_total_{0};
  std::atomic<std::int64_t> shed_expired_total_{0};
  std::atomic<std::int64_t> unknown_model_total_{0};
  std::atomic<std::int64_t> bad_dimension_total_{0};
  std::atomic<std::int64_t> internal_error_total_{0};
  std::atomic<std::int64_t> batches_total_{0};
  std::atomic<std::int64_t> batched_rows_total_{0};
  std::atomic<std::int64_t> reloads_total_{0};
  std::atomic<std::int64_t> reload_failures_total_{0};

  /// Models whose latest reload failed (last-good version still serving).
  mutable std::mutex degraded_mu_;
  std::set<std::string> degraded_;
};

}  // namespace ls::serve
