#include "serve/protocol.hpp"

#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <limits>

#include "common/error.hpp"
#include "common/failpoint.hpp"

namespace ls::serve {

namespace {

// Appenders build payloads in a std::string; readers walk a Cursor with
// hard bounds checks so a truncated or hostile payload surfaces as
// ls::Error (mapped to Status::kBadFrame by the server), never as a read
// past the buffer.

void put_u8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}

template <class T>
void put_raw(std::string& out, T v) {
  char buf[sizeof(T)];
  std::memcpy(buf, &v, sizeof(T));
  out.append(buf, sizeof(T));
}

struct Cursor {
  std::string_view data;
  std::size_t pos = 0;

  void need(std::size_t n, const char* what) const {
    LS_CHECK(pos + n <= data.size(),
             "truncated payload while reading " << what);
  }

  std::uint8_t get_u8(const char* what) {
    need(1, what);
    return static_cast<std::uint8_t>(data[pos++]);
  }

  template <class T>
  T get_raw(const char* what) {
    need(sizeof(T), what);
    T v;
    std::memcpy(&v, data.data() + pos, sizeof(T));
    pos += sizeof(T);
    return v;
  }

  std::string get_string(std::size_t n, const char* what) {
    need(n, what);
    std::string s(data.substr(pos, n));
    pos += n;
    return s;
  }

  void expect_end() const {
    LS_CHECK(pos == data.size(),
             "payload has " << data.size() - pos << " trailing bytes");
  }
};

}  // namespace

const char* status_name(Status s) {
  switch (s) {
    case Status::kOk: return "ok";
    case Status::kUnknownModel: return "unknown_model";
    case Status::kBadDimension: return "bad_dimension";
    case Status::kOverloaded: return "overloaded";
    case Status::kBadFrame: return "bad_frame";
    case Status::kInternal: return "internal_error";
    case Status::kShuttingDown: return "shutting_down";
  }
  return "?";
}

std::string encode_predict_request(std::string_view model,
                                   const SparseVector& x) {
  LS_CHECK(model.size() <= std::numeric_limits<std::uint16_t>::max(),
           "model name too long for the wire format");
  std::string out;
  out.reserve(2 + model.size() + 4 +
              static_cast<std::size_t>(x.nnz()) * (4 + sizeof(real_t)));
  put_raw(out, static_cast<std::uint16_t>(model.size()));
  out.append(model);
  put_raw(out, static_cast<std::uint32_t>(x.nnz()));
  const auto idx = x.indices();
  const auto val = x.values();
  for (index_t k = 0; k < x.nnz(); ++k) {
    const index_t i = idx[static_cast<std::size_t>(k)];
    LS_CHECK(i >= 0 && i <= std::numeric_limits<std::uint32_t>::max(),
             "feature index " << i << " does not fit the wire format");
    put_raw(out, static_cast<std::uint32_t>(i));
    put_raw(out, val[static_cast<std::size_t>(k)]);
  }
  return out;
}

void decode_predict_request(std::string_view payload, std::string& model,
                            SparseVector& x) {
  Cursor c{payload};
  const auto name_len = c.get_raw<std::uint16_t>("model name length");
  model = c.get_string(name_len, "model name");
  const auto nnz = c.get_raw<std::uint32_t>("nnz");
  // Structural bound before trusting nnz: every entry needs 12 bytes.
  LS_CHECK(static_cast<std::size_t>(nnz) * (4 + sizeof(real_t)) <=
               payload.size(),
           "nnz " << nnz << " exceeds the payload size");
  x.clear();
  index_t prev = -1;
  for (std::uint32_t k = 0; k < nnz; ++k) {
    const auto idx = static_cast<index_t>(c.get_raw<std::uint32_t>("index"));
    const auto value = c.get_raw<real_t>("value");
    LS_CHECK(idx > prev, "request indices must be strictly increasing");
    prev = idx;
    x.push_back(idx, value);
  }
  c.expect_end();
}

std::string encode_predict_response(const PredictResult& r) {
  std::string out;
  put_u8(out, static_cast<std::uint8_t>(r.status));
  put_raw(out, r.decision);
  put_raw(out, r.label);
  return out;
}

PredictResult decode_predict_response(std::string_view payload) {
  Cursor c{payload};
  PredictResult r;
  const std::uint8_t status = c.get_u8("status");
  LS_CHECK(status <= static_cast<std::uint8_t>(Status::kShuttingDown),
           "unknown status code " << int{status});
  r.status = static_cast<Status>(status);
  r.decision = c.get_raw<real_t>("decision");
  r.label = c.get_raw<real_t>("label");
  c.expect_end();
  return r;
}

std::string encode_reload_request(std::string_view model) {
  LS_CHECK(model.size() <= std::numeric_limits<std::uint16_t>::max(),
           "model name too long for the wire format");
  std::string out;
  put_raw(out, static_cast<std::uint16_t>(model.size()));
  out.append(model);
  return out;
}

std::string decode_reload_request(std::string_view payload) {
  Cursor c{payload};
  const auto name_len = c.get_raw<std::uint16_t>("model name length");
  std::string model = c.get_string(name_len, "model name");
  c.expect_end();
  return model;
}

std::string encode_status_response(Status status, std::string_view text) {
  std::string out;
  put_u8(out, static_cast<std::uint8_t>(status));
  put_raw(out, static_cast<std::uint32_t>(text.size()));
  out.append(text);
  return out;
}

void decode_status_response(std::string_view payload, Status& status,
                            std::string& text) {
  Cursor c{payload};
  const std::uint8_t s = c.get_u8("status");
  LS_CHECK(s <= static_cast<std::uint8_t>(Status::kShuttingDown),
           "unknown status code " << int{s});
  status = static_cast<Status>(s);
  const auto len = c.get_raw<std::uint32_t>("text length");
  text = c.get_string(len, "text");
  c.expect_end();
}

namespace {

// Frame header layout; serialized field by field so padding never leaks.
struct Header {
  std::uint32_t magic;
  std::uint8_t version;
  std::uint8_t type;
  std::uint16_t reserved;
  std::uint32_t length;
};
constexpr std::size_t kHeaderBytes = 12;

void write_all(int fd, const char* data, std::size_t size) {
  while (size > 0) {
    const ssize_t n = ::write(fd, data, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw Error(std::string("serve: write failed: ") + std::strerror(errno));
    }
    data += n;
    size -= static_cast<std::size_t>(n);
  }
}

/// Reads exactly `size` bytes. Returns false on immediate EOF (nothing
/// read); throws on EOF after a partial read or on errors.
bool read_exact(int fd, char* data, std::size_t size) {
  std::size_t got = 0;
  while (got < size) {
    const ssize_t n = ::read(fd, data + got, size - got);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw Error(std::string("serve: read failed: ") + std::strerror(errno));
    }
    if (n == 0) {
      if (got == 0) return false;
      throw Error("serve: connection closed mid-frame");
    }
    got += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

void write_frame(int fd, MsgType type, std::string_view payload) {
  LS_FAILPOINT("serve.frame.write");
  LS_CHECK(payload.size() <= kMaxPayload,
           "frame payload of " << payload.size() << " bytes exceeds the "
                               << kMaxPayload << "-byte limit");
  std::string buf;
  buf.reserve(kHeaderBytes + payload.size());
  put_raw(buf, kMagic);
  put_u8(buf, kVersion);
  put_u8(buf, static_cast<std::uint8_t>(type));
  put_raw(buf, std::uint16_t{0});
  put_raw(buf, static_cast<std::uint32_t>(payload.size()));
  buf.append(payload);
  // One write_all for header + payload: a frame is either fully queued to
  // the kernel or the connection is declared broken.
  write_all(fd, buf.data(), buf.size());
}

bool read_frame(int fd, Frame& out) {
  LS_FAILPOINT("serve.frame.read");
  char header[kHeaderBytes];
  if (!read_exact(fd, header, kHeaderBytes)) return false;
  Cursor c{std::string_view(header, kHeaderBytes)};
  const auto magic = c.get_raw<std::uint32_t>("magic");
  LS_CHECK(magic == kMagic, "bad frame magic 0x" << std::hex << magic);
  const auto version = c.get_u8("version");
  LS_CHECK(version == kVersion, "unsupported protocol version "
                                    << int{version});
  const auto type = c.get_u8("type");
  LS_CHECK(type >= static_cast<std::uint8_t>(MsgType::kPredictReq) &&
               type <= static_cast<std::uint8_t>(MsgType::kStatusResp),
           "unknown message type " << int{type});
  (void)c.get_raw<std::uint16_t>("reserved");
  const auto length = c.get_raw<std::uint32_t>("length");
  LS_CHECK(length <= kMaxPayload, "frame payload of "
                                      << length << " bytes exceeds the "
                                      << kMaxPayload << "-byte limit");
  out.type = static_cast<MsgType>(type);
  out.payload.resize(length);
  if (length > 0 && !read_exact(fd, out.payload.data(), length)) {
    throw Error("serve: connection closed mid-frame");
  }
  return true;
}

}  // namespace ls::serve
