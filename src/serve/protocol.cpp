#include "serve/protocol.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <limits>

#include "common/error.hpp"
#include "common/failpoint.hpp"

namespace ls::serve {

namespace {

// Appenders build payloads in a std::string; readers walk a Cursor with
// hard bounds checks so a truncated or hostile payload surfaces as
// ls::Error (mapped to Status::kBadFrame by the server), never as a read
// past the buffer.

void put_u8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}

template <class T>
void put_raw(std::string& out, T v) {
  char buf[sizeof(T)];
  std::memcpy(buf, &v, sizeof(T));
  out.append(buf, sizeof(T));
}

struct Cursor {
  std::string_view data;
  std::size_t pos = 0;

  void need(std::size_t n, const char* what) const {
    LS_CHECK(pos + n <= data.size(),
             "truncated payload while reading " << what);
  }

  std::uint8_t get_u8(const char* what) {
    need(1, what);
    return static_cast<std::uint8_t>(data[pos++]);
  }

  template <class T>
  T get_raw(const char* what) {
    need(sizeof(T), what);
    T v;
    std::memcpy(&v, data.data() + pos, sizeof(T));
    pos += sizeof(T);
    return v;
  }

  std::string get_string(std::size_t n, const char* what) {
    need(n, what);
    std::string s(data.substr(pos, n));
    pos += n;
    return s;
  }

  void expect_end() const {
    LS_CHECK(pos == data.size(),
             "payload has " << data.size() - pos << " trailing bytes");
  }
};

}  // namespace

const char* status_name(Status s) {
  switch (s) {
    case Status::kOk: return "ok";
    case Status::kUnknownModel: return "unknown_model";
    case Status::kBadDimension: return "bad_dimension";
    case Status::kOverloaded: return "overloaded";
    case Status::kBadFrame: return "bad_frame";
    case Status::kInternal: return "internal_error";
    case Status::kShuttingDown: return "shutting_down";
  }
  return "?";
}

const char* io_error_kind_name(IoErrorKind k) {
  switch (k) {
    case IoErrorKind::kTimeout: return "timeout";
    case IoErrorKind::kIdle: return "idle";
    case IoErrorKind::kClosed: return "closed";
    case IoErrorKind::kTorn: return "torn";
    case IoErrorKind::kSys: return "sys";
  }
  return "?";
}

std::string encode_predict_request(std::string_view model,
                                   const SparseVector& x,
                                   double deadline_ms) {
  LS_CHECK(model.size() <= std::numeric_limits<std::uint16_t>::max(),
           "model name too long for the wire format");
  std::string out;
  out.reserve(2 + model.size() + 8 + 4 +
              static_cast<std::size_t>(x.nnz()) * (4 + sizeof(real_t)));
  put_raw(out, static_cast<std::uint16_t>(model.size()));
  out.append(model);
  put_raw(out, deadline_ms);
  put_raw(out, static_cast<std::uint32_t>(x.nnz()));
  const auto idx = x.indices();
  const auto val = x.values();
  for (index_t k = 0; k < x.nnz(); ++k) {
    const index_t i = idx[static_cast<std::size_t>(k)];
    LS_CHECK(i >= 0 && i <= std::numeric_limits<std::uint32_t>::max(),
             "feature index " << i << " does not fit the wire format");
    put_raw(out, static_cast<std::uint32_t>(i));
    put_raw(out, val[static_cast<std::size_t>(k)]);
  }
  return out;
}

void decode_predict_request(std::string_view payload, std::string& model,
                            SparseVector& x, double* deadline_ms) {
  Cursor c{payload};
  const auto name_len = c.get_raw<std::uint16_t>("model name length");
  model = c.get_string(name_len, "model name");
  const double deadline = c.get_raw<double>("deadline");
  LS_CHECK(deadline >= 0.0 && deadline == deadline,
           "negative or NaN request deadline");
  if (deadline_ms) *deadline_ms = deadline;
  const auto nnz = c.get_raw<std::uint32_t>("nnz");
  // Structural bound before trusting nnz: every entry needs 12 bytes.
  LS_CHECK(static_cast<std::size_t>(nnz) * (4 + sizeof(real_t)) <=
               payload.size(),
           "nnz " << nnz << " exceeds the payload size");
  x.clear();
  index_t prev = -1;
  for (std::uint32_t k = 0; k < nnz; ++k) {
    const auto idx = static_cast<index_t>(c.get_raw<std::uint32_t>("index"));
    const auto value = c.get_raw<real_t>("value");
    LS_CHECK(idx > prev, "request indices must be strictly increasing");
    prev = idx;
    x.push_back(idx, value);
  }
  c.expect_end();
}

std::string decode_predict_model(std::string_view payload) {
  Cursor c{payload};
  const auto name_len = c.get_raw<std::uint16_t>("model name length");
  return c.get_string(name_len, "model name");
}

std::string encode_predict_response(const PredictResult& r) {
  std::string out;
  put_u8(out, static_cast<std::uint8_t>(r.status));
  put_raw(out, r.decision);
  put_raw(out, r.label);
  return out;
}

PredictResult decode_predict_response(std::string_view payload) {
  Cursor c{payload};
  PredictResult r;
  const std::uint8_t status = c.get_u8("status");
  LS_CHECK(status <= static_cast<std::uint8_t>(Status::kShuttingDown),
           "unknown status code " << int{status});
  r.status = static_cast<Status>(status);
  r.decision = c.get_raw<real_t>("decision");
  r.label = c.get_raw<real_t>("label");
  c.expect_end();
  return r;
}

std::string encode_reload_request(std::string_view model) {
  LS_CHECK(model.size() <= std::numeric_limits<std::uint16_t>::max(),
           "model name too long for the wire format");
  std::string out;
  put_raw(out, static_cast<std::uint16_t>(model.size()));
  out.append(model);
  return out;
}

std::string decode_reload_request(std::string_view payload) {
  Cursor c{payload};
  const auto name_len = c.get_raw<std::uint16_t>("model name length");
  std::string model = c.get_string(name_len, "model name");
  c.expect_end();
  return model;
}

std::string encode_status_response(Status status, std::string_view text) {
  std::string out;
  put_u8(out, static_cast<std::uint8_t>(status));
  put_raw(out, static_cast<std::uint32_t>(text.size()));
  out.append(text);
  return out;
}

void decode_status_response(std::string_view payload, Status& status,
                            std::string& text) {
  Cursor c{payload};
  const std::uint8_t s = c.get_u8("status");
  LS_CHECK(s <= static_cast<std::uint8_t>(Status::kShuttingDown),
           "unknown status code " << int{s});
  status = static_cast<Status>(s);
  const auto len = c.get_raw<std::uint32_t>("text length");
  text = c.get_string(len, "text");
  c.expect_end();
}

std::string encode_ingest_request(std::string_view model,
                                  std::int64_t example_id, real_t label,
                                  const SparseVector& x) {
  LS_CHECK(model.size() <= std::numeric_limits<std::uint16_t>::max(),
           "model name too long for the wire format");
  LS_CHECK(!std::isnan(label), "ingest label must not be NaN");
  std::string out;
  out.reserve(2 + model.size() + 8 + sizeof(real_t) + 4 +
              static_cast<std::size_t>(x.nnz()) * (4 + sizeof(real_t)));
  put_raw(out, static_cast<std::uint16_t>(model.size()));
  out.append(model);
  put_raw(out, example_id);
  put_raw(out, label);
  put_raw(out, static_cast<std::uint32_t>(x.nnz()));
  const auto idx = x.indices();
  const auto val = x.values();
  for (index_t k = 0; k < x.nnz(); ++k) {
    const index_t i = idx[static_cast<std::size_t>(k)];
    LS_CHECK(i >= 0 && i <= std::numeric_limits<std::uint32_t>::max(),
             "feature index " << i << " does not fit the wire format");
    put_raw(out, static_cast<std::uint32_t>(i));
    put_raw(out, val[static_cast<std::size_t>(k)]);
  }
  return out;
}

void decode_ingest_request(std::string_view payload, std::string& model,
                           std::int64_t& example_id, real_t& label,
                           SparseVector& x) {
  Cursor c{payload};
  const auto name_len = c.get_raw<std::uint16_t>("model name length");
  model = c.get_string(name_len, "model name");
  example_id = c.get_raw<std::int64_t>("example id");
  label = c.get_raw<real_t>("label");
  LS_CHECK(label == label, "NaN example label");
  const auto nnz = c.get_raw<std::uint32_t>("nnz");
  // Structural bound before trusting nnz: every entry needs 12 bytes.
  LS_CHECK(static_cast<std::size_t>(nnz) * (4 + sizeof(real_t)) <=
               payload.size(),
           "nnz " << nnz << " exceeds the payload size");
  x.clear();
  index_t prev = -1;
  for (std::uint32_t k = 0; k < nnz; ++k) {
    const auto idx = static_cast<index_t>(c.get_raw<std::uint32_t>("index"));
    const auto value = c.get_raw<real_t>("value");
    LS_CHECK(idx > prev, "example indices must be strictly increasing");
    prev = idx;
    x.push_back(idx, value);
  }
  c.expect_end();
}

namespace {

// Frame header layout; serialized field by field so padding never leaks.
constexpr std::size_t kHeaderBytes = 12;

using Clock = std::chrono::steady_clock;

/// Absolute deadline for one frame's worth of I/O; unbounded when the
/// configured budget is 0.
struct Deadline {
  bool bounded = false;
  Clock::time_point at{};

  static Deadline after_ms(double ms) {
    Deadline d;
    if (ms > 0.0) {
      d.bounded = true;
      d.at = Clock::now() +
             std::chrono::duration_cast<Clock::duration>(
                 std::chrono::duration<double, std::milli>(ms));
    }
    return d;
  }

  /// Remaining budget as a poll() timeout: -1 = unbounded, else >= 0 ms
  /// (rounded up so a 0.4 ms remainder still polls once, not busy-spins).
  int poll_ms() const {
    if (!bounded) return -1;
    const auto rem = std::chrono::duration_cast<std::chrono::milliseconds>(
                         at - Clock::now())
                         .count() +
                     1;
    if (rem <= 0) return 0;
    return rem > std::numeric_limits<int>::max()
               ? std::numeric_limits<int>::max()
               : static_cast<int>(rem);
  }
};

[[noreturn]] void throw_sys(const char* op) {
  const int err = errno;
  const IoErrorKind kind = (err == EPIPE || err == ECONNRESET)
                               ? IoErrorKind::kClosed
                               : IoErrorKind::kSys;
  throw IoError(kind, std::string("serve: ") + op +
                          " failed: " + std::strerror(err));
}

/// Waits until `fd` is ready for `events` or `dl` expires. Returns false on
/// timeout. POLLERR/POLLHUP count as ready: the following read()/write()
/// surfaces the actual condition.
bool wait_ready(int fd, short events, const Deadline& dl) {
  for (;;) {
    pollfd p{};
    p.fd = fd;
    p.events = events;
    const int rc = ::poll(&p, 1, dl.poll_ms());
    if (rc < 0) {
      if (errno == EINTR) continue;
      throw_sys("poll");
    }
    if (rc == 0) {
      if (dl.bounded && Clock::now() >= dl.at) return false;
      continue;  // poll_ms() rounding woke us a hair early
    }
    return true;
  }
}

/// Reads 1..size bytes (whatever is available). Returns 0 on clean EOF.
/// Throws IoError(`timeout_kind`) when `dl` expires first.
std::size_t read_some(int fd, char* data, std::size_t size,
                      const Deadline& dl, IoErrorKind timeout_kind,
                      const char* what) {
  for (;;) {
    if (!wait_ready(fd, POLLIN, dl)) {
      throw IoError(timeout_kind, std::string("serve: ") + what);
    }
    const ssize_t n = ::read(fd, data, size);
    if (n > 0) return static_cast<std::size_t>(n);
    if (n == 0) return 0;
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
    if (errno == ECONNRESET) {
      throw IoError(IoErrorKind::kClosed,
                    "serve: connection reset by peer");
    }
    throw_sys("read");
  }
}

/// Reads exactly `size` bytes under `dl`; mid-stream EOF is kClosed, a
/// stall is kTimeout.
void read_exact(int fd, char* data, std::size_t size, const Deadline& dl,
                const char* what) {
  std::size_t got = 0;
  while (got < size) {
    const std::size_t n = read_some(fd, data + got, size - got, dl,
                                    IoErrorKind::kTimeout, what);
    if (n == 0) {
      throw IoError(IoErrorKind::kClosed,
                    "serve: connection closed mid-frame");
    }
    got += n;
  }
}

/// Writes exactly `size` bytes under `dl`. MSG_NOSIGNAL: a dead peer is an
/// IoError(kClosed), never a process-killing SIGPIPE.
void write_all(int fd, const char* data, std::size_t size,
               const Deadline& dl) {
  while (size > 0) {
    if (!wait_ready(fd, POLLOUT, dl)) {
      throw IoError(IoErrorKind::kTimeout,
                    "serve: write stalled past its deadline");
    }
    const ssize_t n = ::send(fd, data, size, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
        continue;
      }
      throw_sys("write");
    }
    data += n;
    size -= static_cast<std::size_t>(n);
  }
}

}  // namespace

void make_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  LS_CHECK(flags >= 0, "serve: fcntl(F_GETFL) failed: "
                           << std::strerror(errno));
  LS_CHECK(::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0,
           "serve: fcntl(F_SETFL) failed: " << std::strerror(errno));
}

bool wait_fd_ready(int fd, short events, double timeout_ms) {
  return wait_ready(fd, events, Deadline::after_ms(timeout_ms));
}

void write_frame(int fd, MsgType type, std::string_view payload,
                 const FrameTimeouts& t) {
  LS_FAILPOINT("serve.frame.write");
  LS_CHECK(payload.size() <= kMaxPayload,
           "frame payload of " << payload.size() << " bytes exceeds the "
                               << kMaxPayload << "-byte limit");
  std::string buf;
  buf.reserve(kHeaderBytes + payload.size());
  put_raw(buf, kMagic);
  put_u8(buf, kVersion);
  put_u8(buf, static_cast<std::uint8_t>(type));
  put_raw(buf, std::uint16_t{0});
  put_raw(buf, static_cast<std::uint32_t>(payload.size()));
  buf.append(payload);
  const Deadline dl = Deadline::after_ms(t.write_ms);
  // Torn-frame injection for the chaos harness: push a prefix of the frame
  // into the socket, then fail the connection so the peer observes a
  // genuine mid-frame cut instead of a clean close.
  bool tear = false;
  try {
    LS_FAILPOINT("serve.frame.partial");
  } catch (const std::exception&) {
    tear = true;
  }
  if (tear) {
    write_all(fd, buf.data(), buf.size() / 2, dl);
    throw IoError(IoErrorKind::kTorn, "serve: injected torn frame");
  }
  // One write_all for header + payload: a frame is either fully queued to
  // the kernel or the connection is declared broken.
  write_all(fd, buf.data(), buf.size(), dl);
}

bool read_frame(int fd, Frame& out, const FrameTimeouts& t) {
  LS_FAILPOINT("serve.frame.read");
  char header[kHeaderBytes];
  // Phase 1 — wait for the first byte of the next frame under the idle
  // budget. A timeout here means the peer simply has nothing to say.
  const std::size_t first =
      read_some(fd, header, kHeaderBytes, Deadline::after_ms(t.idle_ms),
                IoErrorKind::kIdle, "idle timeout waiting for a frame");
  if (first == 0) return false;  // clean EOF at a frame boundary
  // Phase 2 — the frame has started: the rest of the header and the whole
  // payload must arrive within the read budget (anti-slow-loris).
  const Deadline dl = Deadline::after_ms(t.read_ms);
  read_exact(fd, header + first, kHeaderBytes - first, dl, "frame header");
  Cursor c{std::string_view(header, kHeaderBytes)};
  const auto magic = c.get_raw<std::uint32_t>("magic");
  if (magic != kMagic) {
    throw IoError(IoErrorKind::kTorn, "serve: bad frame magic");
  }
  const auto version = c.get_u8("version");
  if (version != kVersion) {
    throw IoError(IoErrorKind::kTorn,
                  "serve: unsupported protocol version " +
                      std::to_string(int{version}));
  }
  const auto type = c.get_u8("type");
  if (type < static_cast<std::uint8_t>(MsgType::kPredictReq) ||
      type > kMaxMsgType) {
    throw IoError(IoErrorKind::kTorn, "serve: unknown message type " +
                                          std::to_string(int{type}));
  }
  (void)c.get_raw<std::uint16_t>("reserved");
  const auto length = c.get_raw<std::uint32_t>("length");
  if (length > kMaxPayload) {
    throw IoError(IoErrorKind::kTorn,
                  "serve: frame payload of " + std::to_string(length) +
                      " bytes exceeds the limit");
  }
  out.type = static_cast<MsgType>(type);
  out.payload.resize(length);
  if (length > 0) {
    read_exact(fd, out.payload.data(), length, dl, "frame payload");
  }
  return true;
}

}  // namespace ls::serve
