// Wire protocol of the prediction-serving subsystem.
//
// Every message is one length-prefixed binary frame:
//
//   [u32 magic "LSRV"][u8 version][u8 type][u16 reserved][u32 payload_len]
//   [payload_len bytes of payload]
//
// Integers and doubles are native-endian (the server and its clients share
// a machine or at least an architecture — this is a local serving protocol,
// not an interchange format). The payload layout per message type:
//
//   kPredictReq   u16 name_len, name, u32 nnz, nnz x (u32 index, f64 value)
//   kPredictResp  u8 status, f64 decision, f64 label
//   kReloadReq    u16 name_len, name
//   kStatsReq / kPingReq / kShutdownReq    (empty)
//   kStatusResp   u8 status, u32 text_len, text
//                 (reload / stats / ping / shutdown / error responses)
//
// Encoding and decoding are pure functions over byte strings so they are
// unit-testable without sockets; read_frame()/write_frame() add the POSIX
// fd plumbing shared by the server and the client.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "formats/sparse_vector.hpp"

namespace ls::serve {

/// Frame magic ("LSRV" little-endian) and protocol version.
inline constexpr std::uint32_t kMagic = 0x5652534C;
inline constexpr std::uint8_t kVersion = 1;

/// Frames larger than this are rejected before any allocation happens, so a
/// corrupt or hostile length prefix cannot OOM the server.
inline constexpr std::uint32_t kMaxPayload = 16u << 20;

/// Message types.
enum class MsgType : std::uint8_t {
  kPredictReq = 1,
  kPredictResp = 2,
  kReloadReq = 3,
  kStatsReq = 4,
  kPingReq = 5,
  kShutdownReq = 6,
  kStatusResp = 7,  ///< status + text; reply to reload/stats/ping/shutdown
};

/// Result codes carried in responses (the serving error contract).
enum class Status : std::uint8_t {
  kOk = 0,
  kUnknownModel = 1,   ///< no model registered under the requested name
  kBadDimension = 2,   ///< request vector indices exceed the model's width
  kOverloaded = 3,     ///< shed: queue full or latency budget exceeded
  kBadFrame = 4,       ///< malformed frame or payload
  kInternal = 5,       ///< scoring failed server-side
  kShuttingDown = 6,   ///< engine is stopping; request not served
};

/// Human-readable status name for logs and tool output.
const char* status_name(Status s);

/// One decoded frame.
struct Frame {
  MsgType type = MsgType::kPingReq;
  std::string payload;
};

/// Outcome of one predict call (engine-level and wire-level).
struct PredictResult {
  Status status = Status::kInternal;
  real_t decision = 0.0;
  real_t label = 0.0;
};

// --- payload encoders (pure) ---

std::string encode_predict_request(std::string_view model,
                                   const SparseVector& x);
std::string encode_predict_response(const PredictResult& r);
std::string encode_reload_request(std::string_view model);
std::string encode_status_response(Status status, std::string_view text);

// --- payload decoders (pure; throw ls::Error on malformed input) ---

void decode_predict_request(std::string_view payload, std::string& model,
                            SparseVector& x);
PredictResult decode_predict_response(std::string_view payload);
std::string decode_reload_request(std::string_view payload);
void decode_status_response(std::string_view payload, Status& status,
                            std::string& text);

// --- framed fd I/O ---

/// Writes one complete frame to `fd`; throws ls::Error on I/O failure.
void write_frame(int fd, MsgType type, std::string_view payload);

/// Reads one complete frame. Returns false on clean EOF at a frame
/// boundary; throws ls::Error on bad magic/version, oversized payloads,
/// truncation mid-frame, or I/O errors.
bool read_frame(int fd, Frame& out);

}  // namespace ls::serve
