// Wire protocol of the prediction-serving subsystem.
//
// Every message is one length-prefixed binary frame:
//
//   [u32 magic "LSRV"][u8 version][u8 type][u16 reserved][u32 payload_len]
//   [payload_len bytes of payload]
//
// Integers and doubles are native-endian (the server and its clients share
// a machine or at least an architecture — this is a local serving protocol,
// not an interchange format). The payload layout per message type:
//
//   kPredictReq   u16 name_len, name, f64 deadline_ms,
//                 u32 nnz, nnz x (u32 index, f64 value)
//   kPredictResp  u8 status, f64 decision, f64 label
//   kReloadReq    u16 name_len, name
//   kStatsReq / kPingReq / kShutdownReq / kHealthReq / kModelsReq   (empty)
//   kStatusResp   u8 status, u32 text_len, text
//                 (reload / stats / ping / health / shutdown / models / error)
//   kIngestReq    u16 name_len, name, i64 example_id, f64 label,
//                 u32 nnz, nnz x (u32 index, f64 value)
//
// `example_id` is the client-chosen identity of the example. The trainer
// dedups by (model, example_id), which makes ingest idempotent: a client
// that lost the ack can resend the same id across reconnects and restarts
// without double-counting the example. A negative id opts out of dedup
// (every send is a distinct example — the pre-v4 behaviour).
//
// `deadline_ms` is the client's remaining latency budget when it sent the
// request (0 = no deadline). The server sheds a request whose queue wait
// already exceeded the propagated deadline instead of scoring work the
// caller has given up on.
//
// Encoding and decoding are pure functions over byte strings so they are
// unit-testable without sockets; read_frame()/write_frame() add the POSIX
// fd plumbing shared by the server and the client. All fd I/O is
// poll()-based and deadline-aware (FrameTimeouts): a stalled or dead peer
// surfaces as an IoError with a classified kind instead of pinning the
// calling thread forever.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/error.hpp"
#include "formats/sparse_vector.hpp"

namespace ls::serve {

/// Frame magic ("LSRV" little-endian) and protocol version. Version 2
/// added the predict-request deadline field and the health verb; version 3
/// added the models inventory verb and the trainer ingest verb; version 4
/// added the client-supplied example id to ingest, making it idempotent
/// (and therefore safely retryable).
inline constexpr std::uint32_t kMagic = 0x5652534C;
inline constexpr std::uint8_t kVersion = 4;

/// Frames larger than this are rejected before any allocation happens, so a
/// corrupt or hostile length prefix cannot OOM the server.
inline constexpr std::uint32_t kMaxPayload = 16u << 20;

/// Message types.
enum class MsgType : std::uint8_t {
  kPredictReq = 1,
  kPredictResp = 2,
  kReloadReq = 3,
  kStatsReq = 4,
  kPingReq = 5,
  kShutdownReq = 6,
  kStatusResp = 7,  ///< status + text; reply to reload/stats/ping/shutdown
  kHealthReq = 8,   ///< lifecycle probe: live / ready / draining / degraded
  kModelsReq = 9,   ///< per-model inventory: name, version, gen, layout
  kIngestReq = 10,  ///< streamed labeled example for the trainer daemon
};

/// Highest MsgType value read_frame() accepts; anything above is a torn
/// stream. Keep in sync with the enum above when adding verbs.
inline constexpr std::uint8_t kMaxMsgType =
    static_cast<std::uint8_t>(MsgType::kIngestReq);

/// Result codes carried in responses (the serving error contract).
enum class Status : std::uint8_t {
  kOk = 0,
  kUnknownModel = 1,   ///< no model registered under the requested name
  kBadDimension = 2,   ///< request vector indices exceed the model's width
  kOverloaded = 3,     ///< shed: queue full, latency budget or deadline hit
  kBadFrame = 4,       ///< malformed frame or payload
  kInternal = 5,       ///< scoring failed server-side
  kShuttingDown = 6,   ///< engine is stopping or draining; request not served
};

/// Human-readable status name for logs and tool output.
const char* status_name(Status s);

/// Classification of connection-level failures. The retry policy keys off
/// this: every kind is transient from the client's point of view (close the
/// connection, reconnect, resend), while payload decode errors stay plain
/// ls::Error and are never retried.
enum class IoErrorKind : std::uint8_t {
  kTimeout,  ///< frame stalled mid-transfer (read or write budget hit)
  kIdle,     ///< no next frame arrived within the idle window
  kClosed,   ///< peer closed the connection (mid-frame, or EPIPE/ECONNRESET)
  kTorn,     ///< stream desync: bad magic/version/type or oversized length
  kSys,      ///< errno-level socket failure
};

/// Human-readable kind name for logs and metrics.
const char* io_error_kind_name(IoErrorKind k);

/// Connection-level I/O failure with a retry-relevant classification.
class IoError : public Error {
 public:
  IoError(IoErrorKind kind, const std::string& what)
      : Error(what), kind_(kind) {}
  IoErrorKind kind() const { return kind_; }

 private:
  IoErrorKind kind_;
};

/// Per-frame I/O budgets in milliseconds; 0 disables that bound.
///
/// Timeout hierarchy (outermost first):
///   idle_ms   how long read_frame() waits for the FIRST byte of the next
///             frame — the "is this connection still alive" bound;
///   read_ms   total budget to receive the rest of a frame once its first
///             byte arrived — defeats slow-loris half-frames;
///   write_ms  total budget to push one frame into the socket — defeats
///             peers that stop draining their receive buffer.
struct FrameTimeouts {
  double read_ms = 0.0;
  double write_ms = 0.0;
  double idle_ms = 0.0;
};

/// One decoded frame.
struct Frame {
  MsgType type = MsgType::kPingReq;
  std::string payload;
};

/// Outcome of one predict call (engine-level and wire-level).
struct PredictResult {
  Status status = Status::kInternal;
  real_t decision = 0.0;
  real_t label = 0.0;
};

// --- payload encoders (pure) ---

std::string encode_predict_request(std::string_view model,
                                   const SparseVector& x,
                                   double deadline_ms = 0.0);
std::string encode_predict_response(const PredictResult& r);
std::string encode_reload_request(std::string_view model);
std::string encode_status_response(Status status, std::string_view text);
std::string encode_ingest_request(std::string_view model,
                                  std::int64_t example_id, real_t label,
                                  const SparseVector& x);

// --- payload decoders (pure; throw ls::Error on malformed input) ---

void decode_predict_request(std::string_view payload, std::string& model,
                            SparseVector& x, double* deadline_ms = nullptr);
/// Reads only the model-name prefix of a predict-request payload. The
/// router tier needs the consistent-hash key without paying for (and
/// without re-validating) the full vector decode — the payload itself is
/// forwarded to a replica verbatim, which validates it as usual.
std::string decode_predict_model(std::string_view payload);
PredictResult decode_predict_response(std::string_view payload);
std::string decode_reload_request(std::string_view payload);
void decode_status_response(std::string_view payload, Status& status,
                            std::string& text);
void decode_ingest_request(std::string_view payload, std::string& model,
                           std::int64_t& example_id, real_t& label,
                           SparseVector& x);

// --- framed fd I/O ---

/// Sets O_NONBLOCK so the poll()-based frame I/O can never block past its
/// deadline in the read()/write() call itself.
void make_nonblocking(int fd);

/// poll()-based readiness wait with EINTR retry. `timeout_ms <= 0` waits
/// forever. Returns false on timeout; throws IoError(kSys) on poll failure.
bool wait_fd_ready(int fd, short events, double timeout_ms);

/// Writes one complete frame to `fd` under `t.write_ms`; throws IoError on
/// timeout or connection failure. Writes use MSG_NOSIGNAL, so a dead peer
/// produces IoError(kClosed) instead of SIGPIPE.
void write_frame(int fd, MsgType type, std::string_view payload,
                 const FrameTimeouts& t = {});

/// Reads one complete frame. Returns false on clean EOF at a frame
/// boundary. Throws IoError with a classified kind on idle timeout (kIdle),
/// mid-frame stall (kTimeout), mid-frame close (kClosed), stream desync /
/// oversized payloads (kTorn) or socket errors (kSys).
bool read_frame(int fd, Frame& out, const FrameTimeouts& t = {});

}  // namespace ls::serve
