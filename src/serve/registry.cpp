#include "serve/registry.hpp"

#include <utility>

#include "common/failpoint.hpp"
#include "common/metrics.hpp"
#include "svm/serialize.hpp"

namespace ls::serve {

namespace {

SchedulerOptions fixed_layout_options(Format f) {
  SchedulerOptions o;
  o.policy = SchedulePolicy::kFixed;
  o.fixed_format = f;
  return o;
}

}  // namespace

LoadedModel::LoadedModel(std::string name_, std::string path_,
                         const SchedulerOptions& sched,
                         index_t predictor_batch_rows, std::int64_t version_,
                         std::int64_t content_gen_)
    : name(std::move(name_)),
      source_path(std::move(path_)),
      version(version_),
      content_gen(content_gen_),
      model((LS_FAILPOINT("serve.model.load"), load_model_file(source_path))),
      predictor(model, sched, predictor_batch_rows),
      loaded_at(std::chrono::system_clock::now()) {
  metrics::counter_add("serve.models_loaded_total");
  metrics::annotate("serve.model." + name + ".format",
                    format_name(predictor.layout()));
}

LoadedModel::LoadedModel(const LoadedModel& basis, Format layout,
                         index_t predictor_batch_rows, std::int64_t version_)
    : name(basis.name),
      source_path(basis.source_path),
      version(version_),
      content_gen(basis.content_gen),
      model((LS_FAILPOINT("serve.reschedule.materialize"), basis.model)),
      predictor(model, fixed_layout_options(layout), predictor_batch_rows),
      loaded_at(std::chrono::system_clock::now()) {
  metrics::counter_add("serve.models_rematerialized_total");
  metrics::annotate("serve.model." + name + ".format",
                    format_name(predictor.layout()));
}

std::int64_t ModelRegistry::reserve_version_locked(const std::string& name) {
  std::int64_t& next = next_version_[name];
  if (next == 0) {
    // First reservation since the registry was built: continue from the
    // hosted entry's version if one is already installed.
    const auto it = models_.find(name);
    if (it != models_.end()) next = it->second->version;
  }
  return ++next;
}

LoadTicket ModelRegistry::reserve_load(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  LoadTicket t;
  t.version = reserve_version_locked(name);
  std::int64_t& gen = next_content_gen_[name];
  if (gen == 0) {
    const auto it = models_.find(name);
    if (it != models_.end()) gen = it->second->content_gen;
  }
  t.content_gen = ++gen;
  return t;
}

std::int64_t ModelRegistry::reserve_version(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  return reserve_version_locked(name);
}

bool ModelRegistry::put_if_newer(std::shared_ptr<LoadedModel> m) {
  std::lock_guard<std::mutex> lk(mu_);
  auto& slot = models_[m->name];
  if (slot) {
    // Content decides: a hosted entry with a newer generation came from a
    // load that read the file after we reserved — ours is stale. An equal
    // generation with an equal-or-newer version is already installed.
    if (slot->content_gen > m->content_gen) return false;
    if (slot->content_gen == m->content_gen && slot->version >= m->version) {
      return false;
    }
    if (slot->version >= m->version) {
      // The hosted entry is a re-layout of *older* content that reserved a
      // later version while our load was building. Our content is fresher
      // and must win — re-mint a version above the hosted one (under this
      // same lock) so installs stay strictly version-increasing. `m` is
      // not yet shared, so the write is unobservable.
      std::int64_t& next = next_version_[m->name];
      next = std::max(next, slot->version);
      m->version = ++next;
    }
  }
  slot = std::move(m);
  return true;
}

bool ModelRegistry::replace_if_current(const LoadedModel* expected,
                                       std::shared_ptr<const LoadedModel> m) {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = models_.find(m->name);
  if (it == models_.end() || it->second.get() != expected) return false;
  if (it->second->version >= m->version) return false;  // belt and braces
  it->second = std::move(m);
  return true;
}

std::shared_ptr<const LoadedModel> ModelRegistry::get(
    const std::string& name) const {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = models_.find(name);
  return it == models_.end() ? nullptr : it->second;
}

bool ModelRegistry::erase(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  return models_.erase(name) > 0;
}

std::vector<std::shared_ptr<const LoadedModel>> ModelRegistry::list() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<std::shared_ptr<const LoadedModel>> out;
  out.reserve(models_.size());
  for (const auto& [name, m] : models_) out.push_back(m);
  return out;
}

std::size_t ModelRegistry::size() const {
  std::lock_guard<std::mutex> lk(mu_);
  return models_.size();
}

}  // namespace ls::serve
