#include "serve/registry.hpp"

#include <utility>

#include "common/failpoint.hpp"
#include "common/metrics.hpp"
#include "svm/serialize.hpp"

namespace ls::serve {

LoadedModel::LoadedModel(std::string name_, std::string path_,
                         const SchedulerOptions& sched,
                         index_t predictor_batch_rows, std::int64_t version_)
    : name(std::move(name_)),
      source_path(std::move(path_)),
      version(version_),
      model((LS_FAILPOINT("serve.model.load"), load_model_file(source_path))),
      predictor(model, sched, predictor_batch_rows),
      loaded_at(std::chrono::system_clock::now()) {
  metrics::counter_add("serve.models_loaded_total");
  metrics::annotate("serve.model." + name + ".format",
                    format_name(predictor.layout()));
}

void ModelRegistry::put(std::shared_ptr<const LoadedModel> m) {
  std::lock_guard<std::mutex> lk(mu_);
  models_[m->name] = std::move(m);
}

std::shared_ptr<const LoadedModel> ModelRegistry::get(
    const std::string& name) const {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = models_.find(name);
  return it == models_.end() ? nullptr : it->second;
}

bool ModelRegistry::erase(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  return models_.erase(name) > 0;
}

std::vector<std::shared_ptr<const LoadedModel>> ModelRegistry::list() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<std::shared_ptr<const LoadedModel>> out;
  out.reserve(models_.size());
  for (const auto& [name, m] : models_) out.push_back(m);
  return out;
}

std::size_t ModelRegistry::size() const {
  std::lock_guard<std::mutex> lk(mu_);
  return models_.size();
}

}  // namespace ls::serve
