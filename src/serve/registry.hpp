// Model registry: the set of models a ServeEngine currently hosts.
//
// Each entry is an immutable LoadedModel — the deserialized (CRC-verified)
// SvmModel plus a BatchPredictor whose support-vector matrix was laid out
// by the scheduler at load time. Hot reload builds a fresh LoadedModel off
// the request path and swaps the shared_ptr under a short-lived mutex;
// in-flight batches keep scoring against the version they resolved at
// submit time, so a reload can never tear a running prediction.
#pragma once

#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "sched/scheduler.hpp"
#include "svm/batch_predict.hpp"
#include "svm/model.hpp"

namespace ls::serve {

/// One immutable, fully materialised model. Not movable: the predictor
/// holds a pointer to `model`, so instances live behind shared_ptr from
/// construction on.
struct LoadedModel {
  /// Deserializes `path` (atomic-write + CRC32-verified via fs_atomic) and
  /// materialises the support vectors under `sched`'s policy.
  /// `predictor_batch_rows` is the SMSV block size the batcher will score
  /// with (clamped inside BatchPredictor).
  LoadedModel(std::string name_, std::string path_,
              const SchedulerOptions& sched, index_t predictor_batch_rows,
              std::int64_t version_);

  /// Re-materialisation constructor for the layout rescheduler: copies the
  /// already-deserialized model of `basis` and lays its support vectors
  /// out in `layout` — no file I/O, no layout probe. The result scores the
  /// same requests as `basis` (same kernel, coefficients and rho); only
  /// the storage format of the support-vector matrix changes.
  LoadedModel(const LoadedModel& basis, Format layout,
              index_t predictor_batch_rows, std::int64_t version_);

  LoadedModel(const LoadedModel&) = delete;
  LoadedModel& operator=(const LoadedModel&) = delete;

  std::string name;
  std::string source_path;
  std::int64_t version = 1;
  SvmModel model;
  BatchPredictor predictor;
  std::chrono::system_clock::time_point loaded_at;
};

/// Thread-safe name -> LoadedModel map with atomic replacement.
///
/// Version discipline: every installed version is minted by
/// reserve_version() under the registry lock, and installs go through
/// put_if_newer() / replace_if_current(), which reject stale candidates.
/// Together these make the hosted version of a name strictly increasing no
/// matter how many loads, reloads and layout swaps race — the guarantee
/// the hot-reload path documents and the rescheduler's swap depends on.
class ModelRegistry {
 public:
  /// Mints the next version number for `name` under the registry lock.
  /// Counters are per name, monotone over the registry's lifetime (they
  /// survive erase()), so two concurrent loads can never mint the same
  /// version. Versions are reserved before the expensive materialisation
  /// starts; a load that fails simply leaves a gap.
  std::int64_t reserve_version(const std::string& name);

  /// Installs `m` unless the hosted entry is already newer — i.e. a
  /// concurrent load that reserved a later version finished first. Returns
  /// false when `m` was stale and dropped, so an older LoadedModel can
  /// never clobber a newer one.
  bool put_if_newer(std::shared_ptr<const LoadedModel> m);

  /// Compare-and-swap for the rescheduler: installs `m` only while
  /// `expected` is still the hosted entry for `m->name`. A re-materialised
  /// layout of model content X can therefore never replace a hot reload
  /// that shipped new content Y while the re-materialisation ran. Returns
  /// false when the entry moved on (or was unloaded).
  bool replace_if_current(const LoadedModel* expected,
                          std::shared_ptr<const LoadedModel> m);

  /// Current version for `name`, or nullptr when absent. The returned
  /// shared_ptr pins the model for the caller's lifetime regardless of
  /// later reloads.
  std::shared_ptr<const LoadedModel> get(const std::string& name) const;

  /// Removes `name`; returns false when it was not present.
  bool erase(const std::string& name);

  /// Snapshot of every hosted model, ordered by name.
  std::vector<std::shared_ptr<const LoadedModel>> list() const;

  std::size_t size() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<const LoadedModel>> models_;
  /// Per-name version counters (mu_), surviving erase() so a reloaded name
  /// continues its sequence instead of reusing old version numbers.
  std::map<std::string, std::int64_t> next_version_;
};

}  // namespace ls::serve
