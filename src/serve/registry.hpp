// Model registry: the set of models a ServeEngine currently hosts.
//
// Each entry is an immutable LoadedModel — the deserialized (CRC-verified)
// SvmModel plus a BatchPredictor whose support-vector matrix was laid out
// by the scheduler at load time. Hot reload builds a fresh LoadedModel off
// the request path and swaps the shared_ptr under a short-lived mutex;
// in-flight batches keep scoring against the version they resolved at
// submit time, so a reload can never tear a running prediction.
#pragma once

#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "sched/scheduler.hpp"
#include "svm/batch_predict.hpp"
#include "svm/model.hpp"

namespace ls::serve {

/// One immutable, fully materialised model. Not movable: the predictor
/// holds a pointer to `model`, so instances live behind shared_ptr from
/// construction on.
struct LoadedModel {
  /// Deserializes `path` (atomic-write + CRC32-verified via fs_atomic) and
  /// materialises the support vectors under `sched`'s policy.
  /// `predictor_batch_rows` is the SMSV block size the batcher will score
  /// with (clamped inside BatchPredictor).
  LoadedModel(std::string name_, std::string path_,
              const SchedulerOptions& sched, index_t predictor_batch_rows,
              std::int64_t version_);

  LoadedModel(const LoadedModel&) = delete;
  LoadedModel& operator=(const LoadedModel&) = delete;

  std::string name;
  std::string source_path;
  std::int64_t version = 1;
  SvmModel model;
  BatchPredictor predictor;
  std::chrono::system_clock::time_point loaded_at;
};

/// Thread-safe name -> LoadedModel map with atomic replacement.
class ModelRegistry {
 public:
  /// Inserts or replaces the entry for `m->name` (the hot-reload swap).
  void put(std::shared_ptr<const LoadedModel> m);

  /// Current version for `name`, or nullptr when absent. The returned
  /// shared_ptr pins the model for the caller's lifetime regardless of
  /// later reloads.
  std::shared_ptr<const LoadedModel> get(const std::string& name) const;

  /// Removes `name`; returns false when it was not present.
  bool erase(const std::string& name);

  /// Snapshot of every hosted model, ordered by name.
  std::vector<std::shared_ptr<const LoadedModel>> list() const;

  std::size_t size() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<const LoadedModel>> models_;
};

}  // namespace ls::serve
