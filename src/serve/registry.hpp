// Model registry: the set of models a ServeEngine currently hosts.
//
// Each entry is an immutable LoadedModel — the deserialized (CRC-verified)
// SvmModel plus a BatchPredictor whose support-vector matrix was laid out
// by the scheduler at load time. Hot reload builds a fresh LoadedModel off
// the request path and swaps the shared_ptr under a short-lived mutex;
// in-flight batches keep scoring against the version they resolved at
// submit time, so a reload can never tear a running prediction.
#pragma once

#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "sched/scheduler.hpp"
#include "svm/batch_predict.hpp"
#include "svm/model.hpp"

namespace ls::serve {

/// One immutable, fully materialised model. Not movable: the predictor
/// holds a pointer to `model`, so instances live behind shared_ptr from
/// construction on.
struct LoadedModel {
  /// Deserializes `path` (atomic-write + CRC32-verified via fs_atomic) and
  /// materialises the support vectors under `sched`'s policy.
  /// `predictor_batch_rows` is the SMSV block size the batcher will score
  /// with (clamped inside BatchPredictor). `content_gen_` is the content
  /// generation minted by ModelRegistry::reserve_load (defaulted only for
  /// tests that never race loads against layout swaps).
  LoadedModel(std::string name_, std::string path_,
              const SchedulerOptions& sched, index_t predictor_batch_rows,
              std::int64_t version_, std::int64_t content_gen_ = 1);

  /// Re-materialisation constructor for the layout rescheduler: copies the
  /// already-deserialized model of `basis` and lays its support vectors
  /// out in `layout` — no file I/O, no layout probe. The result scores the
  /// same requests as `basis` (same kernel, coefficients and rho); only
  /// the storage format of the support-vector matrix changes, so it keeps
  /// `basis`'s content generation.
  LoadedModel(const LoadedModel& basis, Format layout,
              index_t predictor_batch_rows, std::int64_t version_);

  LoadedModel(const LoadedModel&) = delete;
  LoadedModel& operator=(const LoadedModel&) = delete;

  std::string name;
  std::string source_path;
  std::int64_t version = 1;
  /// Which *content* (on-disk bytes) this entry carries. Every disk load
  /// mints a fresh generation; a layout re-materialisation inherits its
  /// basis's. Versions order *installs* (they bump on layout swaps too);
  /// generations order *content* — the distinction lets the registry tell
  /// "lost to a newer load" from "lost to a re-layout of older weights".
  std::int64_t content_gen = 1;
  SvmModel model;
  BatchPredictor predictor;
  std::chrono::system_clock::time_point loaded_at;
};

/// Version + content-generation ticket for one disk load, minted
/// atomically by ModelRegistry::reserve_load.
struct LoadTicket {
  std::int64_t version = 0;
  std::int64_t content_gen = 0;
};

/// Thread-safe name -> LoadedModel map with atomic replacement.
///
/// Version discipline: every installed version is minted by
/// reserve_load() / reserve_version() under the registry lock, and
/// installs go through put_if_newer() / replace_if_current(), which reject
/// stale candidates. Together these make the hosted version of a name
/// strictly increasing no matter how many loads, reloads and layout swaps
/// race — the guarantee the hot-reload path documents and the
/// rescheduler's swap depends on.
///
/// Content discipline: generations order on-disk content across loads,
/// while versions also bump on layout-only swaps. put_if_newer compares
/// generations, so a reload that reserved its version early can never be
/// silently beaten by a rescheduler re-layout of *older* weights that
/// happened to reserve a later version while the reload was building.
class ModelRegistry {
 public:
  /// Mints the next version number AND the next content generation for
  /// `name` under one registry lock — the ticket a disk load installs
  /// with. Counters are per name, monotone over the registry's lifetime
  /// (they survive erase()), so two concurrent loads can never mint the
  /// same version or generation. Tickets are reserved before the
  /// expensive materialisation starts; a load that fails leaves a gap.
  LoadTicket reserve_load(const std::string& name);

  /// Mints the next version number only — for layout re-materialisations,
  /// which carry their basis's content generation unchanged.
  std::int64_t reserve_version(const std::string& name);

  /// Installs `m` unless the hosted entry carries newer *content* — i.e. a
  /// concurrent load that reserved a later generation finished first.
  /// Returns false when `m` was stale and dropped, so an older load can
  /// never clobber a newer one. When the hosted entry is a re-layout of
  /// older content that raced to a higher version while `m` was building,
  /// `m` still wins: the registry re-mints `m->version` above the hosted
  /// one under the lock (hence the non-const pointer — `m` must not be
  /// shared before installation), keeping versions strictly increasing.
  bool put_if_newer(std::shared_ptr<LoadedModel> m);

  /// Compare-and-swap for the rescheduler: installs `m` only while
  /// `expected` is still the hosted entry for `m->name`. A re-materialised
  /// layout of model content X can therefore never replace a hot reload
  /// that shipped new content Y while the re-materialisation ran. Returns
  /// false when the entry moved on (or was unloaded).
  bool replace_if_current(const LoadedModel* expected,
                          std::shared_ptr<const LoadedModel> m);

  /// Current version for `name`, or nullptr when absent. The returned
  /// shared_ptr pins the model for the caller's lifetime regardless of
  /// later reloads.
  std::shared_ptr<const LoadedModel> get(const std::string& name) const;

  /// Removes `name`; returns false when it was not present.
  bool erase(const std::string& name);

  /// Snapshot of every hosted model, ordered by name.
  std::vector<std::shared_ptr<const LoadedModel>> list() const;

  std::size_t size() const;

 private:
  std::int64_t reserve_version_locked(const std::string& name);

  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<const LoadedModel>> models_;
  /// Per-name version / content-generation counters (mu_), surviving
  /// erase() so a reloaded name continues its sequences instead of
  /// reusing old numbers.
  std::map<std::string, std::int64_t> next_version_;
  std::map<std::string, std::int64_t> next_content_gen_;
};

}  // namespace ls::serve
