#include "serve/rescheduler.hpp"

#include <algorithm>
#include <cmath>
#include <exception>
#include <limits>
#include <utility>

#include "common/metrics.hpp"
#include "common/trace.hpp"
#include "data/features.hpp"
#include "sched/cost_model.hpp"
#include "sched/learned.hpp"
#include "svm/reschedule.hpp"

namespace ls::serve {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

std::chrono::steady_clock::duration ms_duration(double ms) {
  return std::chrono::duration_cast<std::chrono::steady_clock::duration>(
      std::chrono::duration<double, std::milli>(ms));
}

}  // namespace

std::vector<Format> rescheduler_arms(const ReschedulerOptions& opts) {
  if (opts.include_extended) {
    return {kExtendedFormats.begin(), kExtendedFormats.end()};
  }
  return {kAllFormats.begin(), kAllFormats.end()};
}

LayoutRescheduler::LayoutRescheduler(ModelRegistry& registry,
                                     index_t predictor_batch_rows,
                                     ReschedulerOptions opts)
    : registry_(&registry),
      predictor_batch_rows_(predictor_batch_rows),
      opts_(opts) {
  opts_.interval_ms = std::max(1.0, opts_.interval_ms);
  opts_.min_observations = std::max<std::int64_t>(1, opts_.min_observations);
  opts_.switch_threshold = std::max(1.0, opts_.switch_threshold);
}

LayoutRescheduler::~LayoutRescheduler() { stop(); }

void LayoutRescheduler::start() {
  bool expected = false;
  if (!running_.compare_exchange_strong(expected, true)) return;
  {
    std::lock_guard<std::mutex> lk(wake_mu_);
    stop_requested_ = false;
  }
  policy_thread_ = std::thread([this] { policy_loop(); });
}

void LayoutRescheduler::stop() {
  {
    std::lock_guard<std::mutex> lk(wake_mu_);
    stop_requested_ = true;
  }
  wake_cv_.notify_all();
  if (policy_thread_.joinable()) policy_thread_.join();
  running_.store(false);
}

void LayoutRescheduler::policy_loop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lk(wake_mu_);
      wake_cv_.wait_for(lk, ms_duration(opts_.interval_ms),
                        [&] { return stop_requested_; });
      if (stop_requested_) return;
    }
    tick();
  }
}

void LayoutRescheduler::observe(const LoadedModel& model, index_t rows,
                                double seconds) {
  observe_arm(model.name, model.content_gen, model.predictor.layout(), rows,
              seconds);
}

void LayoutRescheduler::observe_arm(const std::string& model,
                                    std::int64_t content_gen, Format layout,
                                    index_t rows, double seconds) {
  if (rows <= 0 || !(seconds >= 0.0)) return;
  std::lock_guard<std::mutex> lk(mu_);
  ModelState& s = models_[model];
  if (content_gen < s.content_gen) return;  // batch of replaced content
  if (content_gen > s.content_gen) {
    if (s.content_gen != 0) {
      // A content-generation bump: a hot reload shipped different weights
      // — every timing the arms hold describes the old model. Start the
      // bandit over (priors survive only if the shape is unchanged;
      // cheapest is to reseed). Our own layout swaps keep the generation,
      // so a worker observing a freshly swapped-in model — even before
      // consider() finishes bookkeeping — lands here with an *equal*
      // generation and the arms survive, as they must: they still
      // describe the same weights.
      s.arms = {};
      s.priors_ready = false;
    }
    s.content_gen = content_gen;
  }
  Arm& arm = s.arms[static_cast<std::size_t>(layout)];
  arm.pulls += 1;
  arm.rows += rows;
  arm.total_seconds += seconds;
}

void LayoutRescheduler::seed_priors(const std::string& name,
                                    const LoadedModel& model) {
  // Feature extraction and calibration run outside mu_ — the first pass
  // pays the one-time cost-model calibration, which must not block the
  // telemetry hook.
  const MatrixFeatures feat =
      extract_features(support_vector_matrix(model.model));
  const std::array<double, kNumFormats> priors =
      predicted_arm_priors(feat, CostCalibration::instance());
  std::lock_guard<std::mutex> lk(mu_);
  ModelState& s = models_[name];
  s.priors = priors;
  s.features = feat;
  s.priors_ready = true;
}

double LayoutRescheduler::arm_exploit_locked(const ModelState& s,
                                             Format f) const {
  const auto i = static_cast<std::size_t>(f);
  const Arm& arm = s.arms[i];
  // Measured mean once the arm has been pulled, cost-model prior before
  // that (the seeding that replaces UCB1's "play every arm once").
  return arm.rows > 0 ? arm.mean_row_seconds()
                      : (s.priors[i] > 0.0 ? s.priors[i] : kInf);
}

double LayoutRescheduler::arm_value_locked(const ModelState& s,
                                           Format f) const {
  const auto i = static_cast<std::size_t>(f);
  const Arm& arm = s.arms[i];
  const double value = arm_exploit_locked(s, f);
  if (!std::isfinite(value)) return value;
  if (opts_.ucb_exploration <= 0.0) return value;
  // UCB1 for minimisation: optimism subtracts the confidence radius. The
  // radius is scaled by the best prior so it lives in the same unit as the
  // values (seconds per row) regardless of model size.
  std::int64_t total_pulls = 0;
  for (const Arm& a : s.arms) total_pulls += a.pulls;
  double scale = kInf;
  for (double p : s.priors) {
    if (p > 0.0) scale = std::min(scale, p);
  }
  if (!std::isfinite(scale)) scale = value;
  const double radius =
      opts_.ucb_exploration * scale *
      std::sqrt(std::log(static_cast<double>(total_pulls) + 1.0) /
                (static_cast<double>(arm.pulls) + 1.0));
  return value - radius;
}

std::optional<Format> LayoutRescheduler::best_arm_locked(
    const ModelState& s) const {
  if (!s.priors_ready) return std::nullopt;
  std::optional<Format> best;
  double best_value = kInf;
  for (Format f : rescheduler_arms(opts_)) {
    const double v = arm_value_locked(s, f);
    if (v < best_value) {
      best_value = v;
      best = f;
    }
  }
  return best;
}

std::optional<Format> LayoutRescheduler::preferred(
    const std::string& model) const {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = models_.find(model);
  if (it == models_.end()) return std::nullopt;
  return best_arm_locked(it->second);
}

void LayoutRescheduler::tick() {
  for (const auto& m : registry_->list()) consider(m);
}

void LayoutRescheduler::consider(
    const std::shared_ptr<const LoadedModel>& current) {
  const std::string& name = current->name;
  metrics::counter_add("serve.reschedule.checks_total");

  bool need_priors = false;
  {
    std::lock_guard<std::mutex> lk(mu_);
    const auto it = models_.find(name);
    // No telemetry yet: nothing to judge (and nothing worth seeding).
    if (it == models_.end()) return;
    need_priors = !it->second.priors_ready;
  }
  if (need_priors) seed_priors(name, *current);

  const auto now = std::chrono::steady_clock::now();
  Format target = Format::kCSR;
  double current_mean = 0.0;
  double candidate_value = 0.0;
  {
    std::lock_guard<std::mutex> lk(mu_);
    ModelState& s = models_[name];
    // Feed the selector-v2 telemetry sink with whatever this model has
    // measured so far (upsert, so repeating each tick is free of growth).
    if (s.priors_ready) {
      for (Format f : kExtendedFormats) {
        const Arm& a = s.arms[static_cast<std::size_t>(f)];
        if (a.rows > 0) {
          TelemetryIngest::instance().record(s.features, f,
                                             a.mean_row_seconds());
        }
      }
    }
    // Arms describing other content than the hosted entry (a reload we
    // have not observed yet, or in-flight telemetry of replaced weights)
    // must not drive a swap of THIS entry.
    if (s.content_gen != current->content_gen) return;
    if (s.switches >= opts_.max_switches) return;
    if (s.switched_once && now - s.last_switch < ms_duration(
                                                     opts_.hysteresis_ms)) {
      return;
    }
    const Format cur = current->predictor.layout();
    const Arm& cur_arm = s.arms[static_cast<std::size_t>(cur)];
    if (cur_arm.pulls < opts_.min_observations) return;
    const auto best = best_arm_locked(s);
    if (!best || *best == cur) return;
    // The gate compares exploitation estimates on both sides: the UCB
    // exploration bonus steers which arm gets *considered*, but a
    // re-materialisation must be justified by the candidate's measured
    // mean (or its cost-model prior) actually clearing the threshold —
    // optimism alone, on an arm with zero measurements, is not a reason
    // to spend a swap.
    candidate_value = arm_exploit_locked(s, *best);
    current_mean = cur_arm.mean_row_seconds();
    if (!decisively_better(current_mean, candidate_value,
                           opts_.switch_threshold)) {
      return;
    }
    target = *best;
  }

  // Decisive: re-materialise the model in the target layout off-path. The
  // version is reserved first so the swap obeys the same monotone-version
  // discipline as hot reload; a failed build just leaves a gap.
  const std::int64_t version = registry_->reserve_version(name);
  std::shared_ptr<const LoadedModel> fresh;
  try {
    fresh = std::make_shared<const LoadedModel>(*current, target,
                                                predictor_batch_rows_,
                                                version);
  } catch (const std::exception&) {
    // Re-materialisation failed (failpoint, OOM, ...): the last-good
    // layout keeps serving; back off for one hysteresis window so a
    // persistently failing build cannot spin the policy thread.
    reschedule_failures_total_.fetch_add(1, std::memory_order_release);
    metrics::counter_add("serve.reschedule_failures_total");
    std::lock_guard<std::mutex> lk(mu_);
    ModelState& s = models_[name];
    s.last_switch = now;
    s.switched_once = true;
    return;
  }

  if (!registry_->replace_if_current(current.get(), fresh)) {
    // A hot reload replaced the entry while we were re-materialising: its
    // content wins, our layout opinion is stale. Drop the build.
    metrics::counter_add("serve.reschedule.lost_races_total");
    return;
  }

  reschedules_total_.fetch_add(1, std::memory_order_release);
  metrics::counter_add("serve.reschedules_total");
  metrics::annotate("serve.model." + name + ".reschedule",
                    std::string(format_name(current->predictor.layout())) +
                        "->" + std::string(format_name(target)));
  trace::emit_instant(
      "serve.reschedule:" + name + ":" +
          std::string(format_name(current->predictor.layout())) + "->" +
          std::string(format_name(target)),
      "serve");
  std::lock_guard<std::mutex> lk(mu_);
  ModelState& s = models_[name];
  // No generation bookkeeping: the swap changed layout only, `fresh`
  // carries the same content generation, so the arms keep applying and a
  // worker's observe() of the new entry is indistinguishable from one of
  // the old — no window in which it could be mistaken for a hot reload.
  s.switches += 1;
  s.last_switch = now;
  s.switched_once = true;
}

std::vector<ModelBanditStats> LayoutRescheduler::stats() const {
  std::vector<ModelBanditStats> out;
  const auto hosted = registry_->list();
  std::lock_guard<std::mutex> lk(mu_);
  for (const auto& m : hosted) {
    const auto it = models_.find(m->name);
    ModelBanditStats mb;
    mb.model = m->name;
    mb.current = m->predictor.layout();
    if (it != models_.end()) {
      const ModelState& s = it->second;
      mb.switches = s.switches;
      for (Format f : rescheduler_arms(opts_)) {
        const auto i = static_cast<std::size_t>(f);
        ArmStats a;
        a.format = f;
        a.pulls = s.arms[i].pulls;
        a.rows = s.arms[i].rows;
        a.mean_row_seconds = s.arms[i].mean_row_seconds();
        a.prior_row_seconds = s.priors_ready ? s.priors[i] : 0.0;
        mb.arms.push_back(a);
      }
    }
    out.push_back(std::move(mb));
  }
  return out;
}

}  // namespace ls::serve
