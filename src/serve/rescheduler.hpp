// Online layout re-scheduling for the serving engine — the paper's
// runtime-scheduling claim closed into a loop over live traffic.
//
// The load-time layout decision (DeploymentHint + scheduler probe) is made
// once, against probe matrices, before a single real request has arrived.
// This module revisits it continuously: the engine reports every batch it
// scores (model, layout, rows, seconds) through observe(), a background
// policy thread runs a UCB1 bandit per model over candidate layouts, and
// when another layout is decisively better the model is re-materialised in
// that layout OFF the request path and swapped in through the registry's
// compare-and-swap — zero downtime, in-flight batches keep the version
// they resolved at submit.
//
//   telemetry        observe(): mean per-row seconds per (model, layout)
//   priors           sched/cost_model::predicted_arm_priors — unexplored
//                    arms start at their *predicted* cost, not infinity
//   bandit           UCB1 for minimisation: value - c * scale * sqrt(
//                    ln(total)/pulls); the exploration bonus shrinks as an
//                    arm accumulates pulls
//   switch gate      decisively_better() (shared with svm/reschedule) +
//                    dwell-time hysteresis + a per-model max-switch budget,
//                    so near-ties never flap and a pathological workload
//                    cannot make the engine re-materialise forever
//   swap             LoadedModel re-materialisation ctor + ModelRegistry::
//                    replace_if_current — a swap loses (and is dropped) if
//                    a hot reload shipped new content meanwhile
//
// bench/ablation_serve_reschedule measures the recovery when serving
// starts from a deliberately bad layout; scripts/check.sh smoke-tests the
// full daemon loop.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "data/features.hpp"
#include "formats/format.hpp"
#include "serve/registry.hpp"

namespace ls::serve {

/// Policy knobs, mirroring the training-side RescheduleOptions.
struct ReschedulerOptions {
  /// Master switch; a disabled rescheduler is never constructed.
  bool enabled = false;
  /// Cadence of the background policy thread's decision pass.
  double interval_ms = 100.0;
  /// Batches observed on a model's *current* layout before the bandit may
  /// judge it — the measured mean needs support before it can lose.
  std::int64_t min_observations = 8;
  /// Re-materialise only when the chosen arm is at least this much faster
  /// than the current layout (see decisively_better()).
  double switch_threshold = 1.2;
  /// Per-model lifetime switch budget (0 = rescheduling effectively off).
  index_t max_switches = 4;
  /// Minimum dwell time after any switch of a model before the next one —
  /// time-domain hysteresis on top of the threshold.
  double hysteresis_ms = 500.0;
  /// UCB1 exploration weight c: the bonus is c * prior_scale *
  /// sqrt(ln(total_pulls) / arm_pulls). 0 = pure exploitation.
  double ucb_exploration = 0.25;
  /// Candidate arms: the paper's five basic formats, or all nine.
  bool include_extended = false;
};

/// One bandit arm's public statistics (the stats verb's per-model lines).
struct ArmStats {
  Format format = Format::kCSR;
  std::int64_t pulls = 0;         ///< batches observed in this layout
  std::int64_t rows = 0;          ///< requests those batches carried
  double mean_row_seconds = 0.0;  ///< 0 when unobserved
  double prior_row_seconds = 0.0; ///< cost-model seed
};

/// Point-in-time per-model bandit state.
struct ModelBanditStats {
  std::string model;
  Format current = Format::kCSR;
  index_t switches = 0;
  std::vector<ArmStats> arms;
};

/// Background layout policy of one ServeEngine. Construction is cheap;
/// start() spawns the policy thread. observe() is the telemetry hook the
/// engine's workers call once per scored batch — one mutex acquisition,
/// no allocation on the steady path.
class LayoutRescheduler {
 public:
  /// `registry` must outlive the rescheduler. `predictor_batch_rows` is
  /// the SMSV width re-materialised predictors are built with (the same
  /// width the engine loads models with, so a swap changes layout only).
  LayoutRescheduler(ModelRegistry& registry, index_t predictor_batch_rows,
                    ReschedulerOptions opts);
  ~LayoutRescheduler();

  LayoutRescheduler(const LayoutRescheduler&) = delete;
  LayoutRescheduler& operator=(const LayoutRescheduler&) = delete;

  /// Spawns the policy thread (idempotent).
  void start();

  /// Stops and joins the policy thread (idempotent; destructor calls it).
  void stop();

  /// Telemetry hook: one scored batch of `rows` requests took `seconds`
  /// on `model`'s current layout. Called by the engine's workers.
  void observe(const LoadedModel& model, index_t rows, double seconds);

  /// Test seam: credit `seconds` for `rows` requests to an explicit
  /// (model, layout) arm, bypassing the "current layout" attribution.
  /// `content_gen` is the content generation the timing was measured on —
  /// a generation bump (hot reload: new weights) resets the arms, while a
  /// layout-only swap keeps the generation and therefore the arms.
  void observe_arm(const std::string& model, std::int64_t content_gen,
                   Format layout, index_t rows, double seconds);

  /// One decision pass over every hosted model — what the policy thread
  /// runs each interval. Public so tests and benches can drive the policy
  /// deterministically without racing a timer.
  void tick();

  /// The bandit's current lowest-UCB arm for `model` (nullopt before any
  /// priors/observations exist). Exposed for tests.
  std::optional<Format> preferred(const std::string& model) const;

  std::int64_t reschedules_total() const {
    return reschedules_total_.load(std::memory_order_acquire);
  }
  std::int64_t reschedule_failures_total() const {
    return reschedule_failures_total_.load(std::memory_order_acquire);
  }

  /// Per-model bandit state snapshot, ordered by model name.
  std::vector<ModelBanditStats> stats() const;

  const ReschedulerOptions& options() const { return opts_; }

 private:
  struct Arm {
    std::int64_t pulls = 0;
    std::int64_t rows = 0;
    double total_seconds = 0.0;
    double mean_row_seconds() const {
      return rows > 0 ? total_seconds / static_cast<double>(rows) : 0.0;
    }
  };

  struct ModelState {
    /// Content generation whose timings the arms describe. A generation
    /// bump (a hot reload — new weights, possibly a different best
    /// layout) resets the arms; our own layout swaps keep the generation,
    /// so telemetry from workers racing a swap can never be misread as a
    /// reload (version numbers bump on both and cannot tell them apart).
    std::int64_t content_gen = 0;
    std::array<Arm, kNumFormats> arms{};
    std::array<double, kNumFormats> priors{};
    MatrixFeatures features{};  ///< SV-matrix features (telemetry key)
    bool priors_ready = false;
    index_t switches = 0;
    std::chrono::steady_clock::time_point last_switch{};
    bool switched_once = false;  ///< last_switch is meaningful
  };

  void policy_loop();
  /// Decision pass for one model. mu_ NOT held (takes it as needed).
  void consider(const std::shared_ptr<const LoadedModel>& current);
  /// Lowest-UCB arm given state. mu_ held.
  std::optional<Format> best_arm_locked(const ModelState& s) const;
  /// Optimistic per-row seconds of one arm (exploitation value minus the
  /// exploration bonus) — steers arm *selection* only. mu_ held.
  double arm_value_locked(const ModelState& s, Format f) const;
  /// Exploitation estimate of one arm: measured mean once pulled, the
  /// cost-model prior before that, no optimism — what the switch gate
  /// compares, so the threshold margin is real. mu_ held.
  double arm_exploit_locked(const ModelState& s, Format f) const;
  /// Ensures priors are seeded from the cost model. mu_ held by caller?
  /// No — computes features outside the lock, then stores under it.
  void seed_priors(const std::string& name, const LoadedModel& model);

  ModelRegistry* registry_;
  index_t predictor_batch_rows_;
  ReschedulerOptions opts_;

  mutable std::mutex mu_;  ///< guards models_
  std::map<std::string, ModelState> models_;

  std::atomic<std::int64_t> reschedules_total_{0};
  std::atomic<std::int64_t> reschedule_failures_total_{0};

  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  bool stop_requested_ = false;  ///< wake_mu_
  std::thread policy_thread_;
  std::atomic<bool> running_{false};
};

/// The candidate arm set under `opts`.
std::vector<Format> rescheduler_arms(const ReschedulerOptions& opts);

}  // namespace ls::serve
